bin/amdrel_flow.ml: Arg Bitstream Cmd Cmdliner Core Filename Format Fpga_arch List Netlist Pack Power Printf Route String Sys Term Tool_common
