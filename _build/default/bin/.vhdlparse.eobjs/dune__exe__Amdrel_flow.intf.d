bin/amdrel_flow.mli:
