bin/amdrel_sim.ml: Arg Cmd Cmdliner Filename Hashtbl List Netlist Printf Scanf String Synth Term Tool_common Util
