bin/amdrel_sim.mli:
