bin/dagger.ml: Arg Bitstream Cmd Cmdliner Fpga_arch Netlist Pack Place Printf Route Term Tool_common
