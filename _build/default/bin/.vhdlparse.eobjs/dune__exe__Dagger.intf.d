bin/dagger.mli:
