bin/diviner.ml: Arg Cmd Cmdliner Format Netlist Synth Term Tool_common
