bin/diviner.mli:
