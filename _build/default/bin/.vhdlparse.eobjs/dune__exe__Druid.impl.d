bin/druid.ml: Arg Cmd Cmdliner Printf Synth Term Tool_common
