bin/druid.mli:
