bin/dutys.ml: Arg Cmd Cmdliner Fpga_arch Printf Term Tool_common
