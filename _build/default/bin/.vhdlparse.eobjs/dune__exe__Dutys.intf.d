bin/dutys.mli:
