bin/e2fmt.ml: Arg Cmd Cmdliner Printf Synth Term Tool_common
