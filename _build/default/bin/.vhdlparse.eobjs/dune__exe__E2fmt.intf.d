bin/e2fmt.mli:
