bin/powermodel.ml: Arg Cmd Cmdliner Format Fpga_arch List Netlist Pack Place Power Printf Route Term Tool_common
