bin/powermodel.mli:
