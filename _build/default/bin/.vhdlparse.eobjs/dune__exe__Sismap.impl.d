bin/sismap.ml: Arg Cmd Cmdliner Format Netlist Techmap Term Tool_common
