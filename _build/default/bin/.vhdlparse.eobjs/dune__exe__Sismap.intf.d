bin/sismap.mli:
