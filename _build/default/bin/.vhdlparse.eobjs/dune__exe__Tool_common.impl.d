bin/tool_common.ml: Fpga_arch Netlist Pack Printf Synth
