bin/tvpack.ml: Arg Cmd Cmdliner Netlist Pack Printf Term Tool_common
