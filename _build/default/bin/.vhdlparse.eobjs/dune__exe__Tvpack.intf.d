bin/tvpack.mli:
