bin/vhdlparse.ml: Arg Cmd Cmdliner List Netlist Printf Term Tool_common
