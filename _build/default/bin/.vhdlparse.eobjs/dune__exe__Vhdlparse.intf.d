bin/vhdlparse.mli:
