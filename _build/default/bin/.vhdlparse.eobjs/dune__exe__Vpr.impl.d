bin/vpr.ml: Arg Array Cmd Cmdliner Fpga_arch Netlist Pack Place Printf Route Term Tool_common
