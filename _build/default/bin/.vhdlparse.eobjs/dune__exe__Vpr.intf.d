bin/vpr.mli:
