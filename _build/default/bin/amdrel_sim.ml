(* Design simulator: run a VHDL or BLIF design cycle by cycle and dump a
   VCD waveform — the flow's functional-verification companion.

   Stimulus file format (one directive per line, '#' comments):
     @<cycle> <signal>=<value>      value: 0/1 for bits, decimal for vectors
   Assignments hold until overridden.  Without a stimulus file the inputs
   are driven with seeded random values each cycle. *)

open Cmdliner

let parse_stimulus text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun line ->
         try Scanf.sscanf line "@%d %[^=]=%d" (fun c nm v -> (c, nm, v))
         with Scanf.Scan_failure _ | End_of_file ->
           failwith ("bad stimulus line: " ^ line))

let load_design path =
  let text = Tool_common.read_file path in
  if Filename.check_suffix path ".blif" then Netlist.Blif.of_string text
  else Synth.Diviner.synthesize text

let run input cycles seed stimulus_path vcd_path =
  let net = load_design input in
  let st = Netlist.Logic.sim_init net in
  let rec_ = Netlist.Vcd.create net in
  let tbl = Hashtbl.create 16 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  let stimulus =
    match stimulus_path with
    | Some p -> parse_stimulus (Tool_common.read_file p)
    | None -> []
  in
  let rng = Util.Prng.create seed in
  let inputs = Netlist.Logic.inputs net in
  let outputs = Netlist.Logic.outputs net in
  Printf.printf "%-6s" "cycle";
  List.iter (fun o -> Printf.printf " %s" (Netlist.Logic.name net o)) outputs;
  print_newline ();
  for cycle = 0 to cycles - 1 do
    if stimulus = [] then
      List.iter
        (fun i ->
          Hashtbl.replace tbl (Netlist.Logic.name net i) (Util.Prng.bool rng))
        inputs
    else
      List.iter
        (fun (c, nm, v) ->
          if c = cycle then
            match Netlist.Logic.find net nm with
            | Some _ -> Hashtbl.replace tbl nm (v <> 0)
            | None ->
                (* vector assignment *)
                let bits = Netlist.Logic.find_vector net nm in
                if bits = [] then failwith ("unknown stimulus signal " ^ nm);
                Netlist.Logic.set_vector_inputs net tbl nm (List.length bits) v)
        stimulus;
    Netlist.Logic.sim_eval net st input_of;
    Netlist.Vcd.sample rec_ st ~time:cycle;
    Printf.printf "%-6d" cycle;
    List.iter
      (fun o ->
        Printf.printf " %d" (if Netlist.Logic.sim_value st o then 1 else 0))
      outputs;
    print_newline ();
    Netlist.Logic.sim_step net st
  done;
  (match vcd_path with
  | Some p ->
      Netlist.Vcd.to_file p rec_;
      Printf.printf "waveform -> %s\n" p
  | None -> ())

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN.vhd|.blif")

let cycles_arg =
  Arg.(value & opt int 16 & info [ "cycles" ] ~doc:"clock cycles to run")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random stimulus seed")

let stim_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "stimulus" ] ~docv:"FILE" ~doc:"stimulus file (see tool help)")

let vcd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"OUT.vcd" ~doc:"write a VCD waveform")

let cmd =
  Cmd.v
    (Cmd.info "amdrel_sim" ~doc:"Simulate a design and dump waveforms")
    Term.(
      const (fun i c s st v -> Tool_common.protect (fun () -> run i c s st v))
      $ input_arg $ cycles_arg $ seed_arg $ stim_arg $ vcd_arg)

let () = exit (Cmd.eval cmd)
