(* DAGGER: generate (and verify) the configuration bitstream. *)

open Cmdliner

let run blif_path net_path arch_path output seed fuse_map =
  let net = Netlist.Blif.of_string (Tool_common.read_file blif_path) in
  let packing = Pack.Netfile.of_string net (Tool_common.read_file net_path) in
  let params =
    match arch_path with
    | Some p -> Fpga_arch.Archfile.of_file p
    | None -> Fpga_arch.Params.amdrel
  in
  let problem = Place.Problem.build ~io_rat:params.Fpga_arch.Params.io_rat packing in
  let anneal =
    Place.Anneal.run ~options:{ Place.Anneal.seed; inner_num = 1.0 } problem
  in
  let routed = Route.Router.route_min_width params anneal.Place.Anneal.placement in
  let generated = Bitstream.Dagger.generate routed in
  Bitstream.Dagger.to_file output generated;
  print_endline (Bitstream.Dagger.summary generated);
  if fuse_map then print_string (Bitstream.Dagger.fuse_map generated);
  match Bitstream.Dagger.verify routed generated.Bitstream.Dagger.bytes with
  | Bitstream.Dagger.Verified ->
      Printf.printf "%s: structure verified\n" output;
      if Bitstream.Dagger.verify_functional routed
           generated.Bitstream.Dagger.bytes
      then print_endline "fabric emulation: functionally equivalent"
      else begin
        print_endline "fabric emulation: FUNCTIONAL MISMATCH";
        exit 1
      end
  | Bitstream.Dagger.Corrupted msg ->
      Printf.printf "%s: CORRUPTED (%s)\n" output msg;
      exit 1
  | Bitstream.Dagger.Config_mismatch ->
      Printf.printf "%s: CONFIG MISMATCH\n" output;
      exit 1

let blif_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MAPPED.blif")

let net_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"PACKED.net")

let arch_arg =
  Arg.(value & opt (some file) None & info [ "arch" ] ~docv:"FPGA.arch")

let output_arg =
  Arg.(
    value
    & opt string "design.bit"
    & info [ "o"; "output" ] ~docv:"OUTPUT.bit" ~doc:"bitstream file")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"placement seed")

let fuse_arg =
  Arg.(value & flag & info [ "fuse-map" ] ~doc:"print the fuse-map report")

let cmd =
  Cmd.v
    (Cmd.info "dagger" ~doc:"Generate the FPGA configuration bitstream")
    Term.(
      const (fun b n a o s f -> Tool_common.protect (fun () -> run b n a o s f))
      $ blif_arg $ net_arg $ arch_arg $ output_arg $ seed_arg $ fuse_arg)

let () = exit (Cmd.eval cmd)
