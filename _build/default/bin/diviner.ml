(* DIVINER: behavioural VHDL synthesis to an EDIF netlist. *)

open Cmdliner

let run input output =
  let text = Tool_common.read_file input in
  let net = Synth.Diviner.synthesize text in
  let edif = Netlist.Edif.of_logic net in
  Netlist.Edif.to_file output edif;
  Format.printf "%s -> %s: %a@." input output Netlist.Logic.pp_stats
    (Netlist.Logic.stats net)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.vhd")

let output_arg =
  Arg.(
    value
    & opt string "out.edf"
    & info [ "o"; "output" ] ~docv:"OUTPUT.edf" ~doc:"EDIF output path")

let cmd =
  Cmd.v
    (Cmd.info "diviner" ~doc:"Synthesize behavioural VHDL into an EDIF netlist")
    Term.(
      const (fun i o -> Tool_common.protect (fun () -> run i o))
      $ input_arg $ output_arg)

let () = exit (Cmd.eval cmd)
