(* DRUID: normalise commercial-tool EDIF for the downstream academic flow. *)

open Cmdliner

let run input output =
  let text = Tool_common.read_file input in
  let normalized = Synth.Druid.normalize_string text in
  Tool_common.write_file output normalized;
  Printf.printf "%s -> %s (normalised)\n" input output

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.edf")

let output_arg =
  Arg.(
    value
    & opt string "out.edf"
    & info [ "o"; "output" ] ~docv:"OUTPUT.edf" ~doc:"EDIF output path")

let cmd =
  Cmd.v
    (Cmd.info "druid" ~doc:"Normalise an EDIF netlist for the academic flow")
    Term.(
      const (fun i o -> Tool_common.protect (fun () -> run i o))
      $ input_arg $ output_arg)

let () = exit (Cmd.eval cmd)
