(* DUTYS: generate the architecture file describing the target FPGA. *)

open Cmdliner

let run output k n i_opt seg width =
  let i =
    match i_opt with
    | Some i -> i
    | None -> Fpga_arch.Params.recommended_inputs ~k ~n
  in
  let params =
    Fpga_arch.Params.validate
      {
        Fpga_arch.Params.amdrel with
        Fpga_arch.Params.k;
        n;
        i;
        segment_length = seg;
        switch_width = width;
      }
  in
  Fpga_arch.Archfile.to_file output params;
  Printf.printf "%s: K=%d N=%d I=%d seg=%d switch=%gx (%d config bits/CLB)\n"
    output k n i seg width
    (Fpga_arch.Params.clb_config_bits params)

let output_arg =
  Arg.(
    value
    & opt string "fpga.arch"
    & info [ "o"; "output" ] ~docv:"OUTPUT.arch" ~doc:"architecture file")

let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~doc:"LUT inputs")
let n_arg = Arg.(value & opt int 5 & info [ "n" ] ~doc:"BLEs per CLB")

let i_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "i" ] ~doc:"CLB inputs (default: the (K/2)(N+1) rule)")

let seg_arg =
  Arg.(value & opt int 1 & info [ "segment" ] ~doc:"wire segment length")

let width_arg =
  Arg.(
    value & opt float 10.0
    & info [ "switch-width" ] ~doc:"routing switch width (x minimum)")

let cmd =
  Cmd.v
    (Cmd.info "dutys" ~doc:"Generate the FPGA architecture description file")
    Term.(
      const (fun o k n i s w -> Tool_common.protect (fun () -> run o k n i s w))
      $ output_arg $ k_arg $ n_arg $ i_arg $ seg_arg $ width_arg)

let () = exit (Cmd.eval cmd)
