(* E2FMT: EDIF to BLIF translation. *)

open Cmdliner

let run input output =
  let text = Tool_common.read_file input in
  let blif = Synth.E2fmt.edif_to_blif text in
  Tool_common.write_file output blif;
  Printf.printf "%s -> %s\n" input output

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.edf")

let output_arg =
  Arg.(
    value
    & opt string "out.blif"
    & info [ "o"; "output" ] ~docv:"OUTPUT.blif" ~doc:"BLIF output path")

let cmd =
  Cmd.v
    (Cmd.info "e2fmt" ~doc:"Translate an EDIF netlist to BLIF")
    Term.(
      const (fun i o -> Tool_common.protect (fun () -> run i o))
      $ input_arg $ output_arg)

let () = exit (Cmd.eval cmd)
