(* PowerModel: dynamic, short-circuit and leakage power estimation of the
   placed-and-routed design. *)

open Cmdliner

let run blif_path net_path arch_path freq_mhz seed =
  let net = Netlist.Blif.of_string (Tool_common.read_file blif_path) in
  let packing = Pack.Netfile.of_string net (Tool_common.read_file net_path) in
  let params =
    match arch_path with
    | Some p -> Fpga_arch.Archfile.of_file p
    | None -> Fpga_arch.Params.amdrel
  in
  let problem = Place.Problem.build ~io_rat:params.Fpga_arch.Params.io_rat packing in
  let anneal =
    Place.Anneal.run ~options:{ Place.Anneal.seed; inner_num = 1.0 } problem
  in
  let routed = Route.Router.route_min_width params anneal.Place.Anneal.placement in
  let options =
    { Power.Model.default_options with Power.Model.frequency = freq_mhz *. 1e6 }
  in
  let report = Power.Model.estimate ~options routed in
  Format.printf "%a@." Power.Model.pp report;
  print_endline "top nets by switched energy (J/cycle):";
  List.iter
    (fun (nm, e) -> Printf.printf "  %-24s %.3g\n" nm e)
    report.Power.Model.net_energy_breakdown

let blif_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MAPPED.blif")

let net_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"PACKED.net")

let arch_arg =
  Arg.(value & opt (some file) None & info [ "arch" ] ~docv:"FPGA.arch")

let freq_arg =
  Arg.(value & opt float 100.0 & info [ "freq" ] ~docv:"MHZ" ~doc:"data rate")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"placement seed")

let cmd =
  Cmd.v
    (Cmd.info "powermodel"
       ~doc:"Estimate power of the placed-and-routed design")
    Term.(
      const (fun b n a f s -> Tool_common.protect (fun () -> run b n a f s))
      $ blif_arg $ net_arg $ arch_arg $ freq_arg $ seed_arg)

let () = exit (Cmd.eval cmd)
