(* The SIS stage: technology-independent optimisation plus FlowMap K-LUT
   mapping, BLIF to BLIF. *)

open Cmdliner

let run input output k no_verify =
  let text = Tool_common.read_file input in
  let mapped, report = Techmap.Mapper.map_blif ~k ~verify:(not no_verify) text in
  Tool_common.write_file output mapped;
  Format.printf "%s -> %s@.  before: %a@.  after:  %a (depth bound %d)@." input
    output Netlist.Logic.pp_stats report.Techmap.Mapper.before
    Netlist.Logic.pp_stats report.Techmap.Mapper.after
    report.Techmap.Mapper.predicted_depth

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.blif")

let output_arg =
  Arg.(
    value
    & opt string "mapped.blif"
    & info [ "o"; "output" ] ~docv:"OUTPUT.blif" ~doc:"mapped BLIF output")

let k_arg =
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"LUT input count")

let no_verify_arg =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"skip equivalence checking")

let cmd =
  Cmd.v
    (Cmd.info "sismap" ~doc:"Optimise and map a BLIF netlist into K-LUTs")
    Term.(
      const (fun i o k nv -> Tool_common.protect (fun () -> run i o k nv))
      $ input_arg $ output_arg $ k_arg $ no_verify_arg)

let () = exit (Cmd.eval cmd)
