(* Shared helpers for the standalone tool executables. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline msg;
      exit 1

(* Uniform handling of the flow's exceptions for tool main functions. *)
let protect f =
  try f () with
  | Netlist.Vhdl_lexer.Lex_error (line, msg) ->
      Printf.eprintf "lexical error, line %d: %s\n" line msg;
      exit 1
  | Netlist.Vhdl_parser.Parse_error (line, msg) ->
      Printf.eprintf "syntax error, line %d: %s\n" line msg;
      exit 1
  | Synth.Elaborate.Elab_error msg ->
      Printf.eprintf "elaboration error: %s\n" msg;
      exit 1
  | Netlist.Blif.Parse_error (line, msg) ->
      Printf.eprintf "BLIF error, line %d: %s\n" line msg;
      exit 1
  | Netlist.Edif.Invalid_edif msg ->
      Printf.eprintf "EDIF error: %s\n" msg;
      exit 1
  | Netlist.Sexp.Parse_error (line, msg) ->
      Printf.eprintf "EDIF syntax error, line %d: %s\n" line msg;
      exit 1
  | Synth.Druid.Druid_error msg ->
      Printf.eprintf "DRUID error: %s\n" msg;
      exit 1
  | Fpga_arch.Params.Invalid_params msg | Fpga_arch.Archfile.Parse_error msg ->
      Printf.eprintf "architecture error: %s\n" msg;
      exit 1
  | Pack.Cluster.Infeasible msg ->
      Printf.eprintf "packing error: %s\n" msg;
      exit 1
  | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
