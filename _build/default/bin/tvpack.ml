(* T-VPack: pack a mapped BLIF netlist into BLE clusters. *)

open Cmdliner

let run input output n i =
  let text = Tool_common.read_file input in
  let net = Netlist.Blif.of_string text in
  let packing = Pack.Cluster.pack ~n ~i net in
  Pack.Netfile.to_file output packing;
  Printf.printf
    "%s -> %s: %d BLEs in %d clusters (N=%d, I=%d, utilisation %.1f%%)\n" input
    output
    (Pack.Cluster.ble_count packing)
    (Pack.Cluster.cluster_count packing)
    n i
    (100.0 *. Pack.Cluster.utilization packing)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MAPPED.blif")

let output_arg =
  Arg.(
    value
    & opt string "packed.net"
    & info [ "o"; "output" ] ~docv:"OUTPUT.net" ~doc:"packed netlist output")

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"BLEs per cluster")

let i_arg =
  Arg.(value & opt int 12 & info [ "i" ] ~docv:"I" ~doc:"cluster inputs")

let cmd =
  Cmd.v
    (Cmd.info "tvpack" ~doc:"Pack LUTs and flip-flops into BLEs and clusters")
    Term.(
      const (fun f o n i -> Tool_common.protect (fun () -> run f o n i))
      $ input_arg $ output_arg $ n_arg $ i_arg)

let () = exit (Cmd.eval cmd)
