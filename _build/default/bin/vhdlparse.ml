(* VHDL Parser tool: syntax checking of VHDL input files. *)

open Cmdliner

let run path =
  let text = Tool_common.read_file path in
  match Netlist.Vhdl_parser.check text with
  | Netlist.Vhdl_parser.Ok d ->
      Printf.printf "%s: syntax OK (entity %s, %d ports, %d statements)\n" path
        d.Netlist.Vhdl_ast.entity.Netlist.Vhdl_ast.entity_name
        (List.length d.Netlist.Vhdl_ast.entity.Netlist.Vhdl_ast.ports)
        (List.length d.Netlist.Vhdl_ast.arch.Netlist.Vhdl_ast.stmts)
  | Netlist.Vhdl_parser.Error (line, msg) ->
      Printf.printf "%s:%d: syntax error: %s\n" path line msg;
      exit 1

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.vhd")

let cmd =
  Cmd.v
    (Cmd.info "vhdlparse" ~doc:"Check the syntax of a VHDL source file")
    Term.(const (fun p -> Tool_common.protect (fun () -> run p)) $ path_arg)

let () = exit (Cmd.eval cmd)
