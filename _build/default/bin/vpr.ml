(* VPR: placement and routing of a packed netlist onto the target FPGA. *)

open Cmdliner

let run blif_path net_path arch_path seed fixed_width =
  let net = Netlist.Blif.of_string (Tool_common.read_file blif_path) in
  let packing = Pack.Netfile.of_string net (Tool_common.read_file net_path) in
  let params =
    match arch_path with
    | Some p -> Fpga_arch.Archfile.of_file p
    | None -> Fpga_arch.Params.amdrel
  in
  let problem = Place.Problem.build ~io_rat:params.Fpga_arch.Params.io_rat packing in
  Printf.printf "grid: %dx%d CLBs, %d blocks, %d nets\n"
    problem.Place.Problem.grid.Fpga_arch.Grid.nx
    problem.Place.Problem.grid.Fpga_arch.Grid.ny
    (Array.length problem.Place.Problem.blocks)
    (Array.length problem.Place.Problem.nets);
  let anneal =
    Place.Anneal.run ~options:{ Place.Anneal.seed; inner_num = 1.0 } problem
  in
  Printf.printf "placement: cost %.2f -> %.2f (%d moves, %d accepted)\n"
    anneal.Place.Anneal.initial_cost anneal.Place.Anneal.final_cost
    anneal.Place.Anneal.moves anneal.Place.Anneal.accepted;
  let routed =
    match fixed_width with
    | Some w -> Route.Router.route_fixed params anneal.Place.Anneal.placement ~width:w
    | None -> Route.Router.route_min_width params anneal.Place.Anneal.placement
  in
  let st = Route.Router.stats routed in
  Printf.printf "routing: channel width %d%s, %d wire tiles, %d switches\n"
    st.Route.Router.channel_width
    (match st.Route.Router.minimum_width with
    | Some w -> Printf.sprintf " (minimum %d)" w
    | None -> "")
    st.Route.Router.total_wire_tiles st.Route.Router.switches_used;
  Printf.printf "critical path: %.3f ns\n"
    (st.Route.Router.critical_path_s *. 1e9)

let blif_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MAPPED.blif")

let net_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"PACKED.net")

let arch_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "arch" ] ~docv:"FPGA.arch" ~doc:"architecture file (DUTYS)")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"placement seed")

let width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "route-width" ]
        ~doc:"route at a fixed channel width instead of searching the minimum")

let cmd =
  Cmd.v
    (Cmd.info "vpr" ~doc:"Place and route a packed netlist")
    Term.(
      const (fun b n a s w -> Tool_common.protect (fun () -> run b n a s w))
      $ blif_arg $ net_arg $ arch_arg $ seed_arg $ width_arg)

let () = exit (Cmd.eval cmd)
