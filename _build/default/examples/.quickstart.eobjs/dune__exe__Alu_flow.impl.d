examples/alu_flow.ml: Bitstream Core Edif Format Fpga_arch Hashtbl List Logic Netlist Pack Place Power Printf Route Synth Techmap Vhdl_parser
