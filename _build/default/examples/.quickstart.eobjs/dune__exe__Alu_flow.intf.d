examples/alu_flow.mli:
