examples/architecture_explore.ml: Core List Printf Util
