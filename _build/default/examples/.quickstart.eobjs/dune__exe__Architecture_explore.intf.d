examples/architecture_explore.mli:
