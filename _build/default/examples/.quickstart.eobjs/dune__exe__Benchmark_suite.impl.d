examples/benchmark_suite.ml: Bitstream Core Fpga_arch List Netlist Power Printexc Printf Route Util
