examples/benchmark_suite.mli:
