examples/bitstream_tour.ml: Bitstream Bytes Char Core Format Logic Netlist Printf String
