examples/bitstream_tour.mli:
