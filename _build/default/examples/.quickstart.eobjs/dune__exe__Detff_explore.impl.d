examples/detff_explore.ml: Clocking Detff Ff_bench List Printf Spice Util
