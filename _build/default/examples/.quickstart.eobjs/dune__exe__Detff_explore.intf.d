examples/detff_explore.mli:
