examples/quickstart.ml: Bitstream Core Hashtbl Netlist Printf String
