examples/quickstart.mli:
