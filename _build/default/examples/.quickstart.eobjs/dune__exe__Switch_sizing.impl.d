examples/switch_sizing.ml: Core Float List Printf Routing_exp Spice String Tech
