(* Domain example: an 8-bit registered ALU taken through each flow stage
   explicitly, using the per-tool APIs rather than the one-call driver —
   the "each tool can operate standalone" usage of the paper.

   Run with: dune exec examples/alu_flow.exe *)

open Netlist

let vhdl = Core.Bench_circuits.alu 8

let () =
  print_endline "== 8-bit ALU, stage by stage ==";
  (* 1. VHDL Parser *)
  (match Vhdl_parser.check vhdl with
  | Vhdl_parser.Ok _ -> print_endline "1. vhdlparse: syntax OK"
  | Vhdl_parser.Error (l, m) -> failwith (Printf.sprintf "line %d: %s" l m));
  (* 2. DIVINER: synthesis to EDIF *)
  let net = Synth.Diviner.synthesize vhdl in
  let edif = Edif.of_logic net in
  Format.printf "2. diviner: %a -> EDIF (%d instances)@." Logic.pp_stats
    (Logic.stats net)
    (List.length edif.Edif.instances);
  (* 3. DRUID: normalisation *)
  let edif = Synth.Druid.normalize edif in
  Printf.printf "3. druid: %d instances, %d nets\n"
    (List.length edif.Edif.instances)
    (List.length edif.Edif.nets);
  (* 4. E2FMT: EDIF -> BLIF/logic *)
  let net = Edif.to_logic edif in
  Format.printf "4. e2fmt: %a@." Logic.pp_stats (Logic.stats net);
  (* 5. SIS: LUT mapping (with equivalence checking) *)
  let mapped, report = Techmap.Mapper.map_network ~k:4 net in
  Format.printf "5. sismap: %a (FlowMap depth %d)@." Logic.pp_stats
    (Logic.stats mapped) report.Techmap.Mapper.predicted_depth;
  (* 6. T-VPack *)
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  Printf.printf "6. tvpack: %d clusters, %.1f%% utilisation\n"
    (Pack.Cluster.cluster_count packing)
    (100.0 *. Pack.Cluster.utilization packing);
  (* 7. DUTYS *)
  let params = Fpga_arch.Params.amdrel in
  Printf.printf "7. dutys: %d config bits per CLB\n"
    (Fpga_arch.Params.clb_config_bits params);
  (* 8. VPR: place *)
  let problem = Place.Problem.build packing in
  let anneal = Place.Anneal.run problem in
  Printf.printf "8. vpr place: %dx%d grid, cost %.1f -> %.1f\n"
    problem.Place.Problem.grid.Fpga_arch.Grid.nx
    problem.Place.Problem.grid.Fpga_arch.Grid.ny
    anneal.Place.Anneal.initial_cost anneal.Place.Anneal.final_cost;
  (* 9. VPR: route with channel-width search *)
  let routed = Route.Router.route_min_width params anneal.Place.Anneal.placement in
  let st = Route.Router.stats routed in
  Printf.printf "9. vpr route: Wmin=%s, %d wire tiles, critical path %.2f ns\n"
    (match st.Route.Router.minimum_width with
    | Some w -> string_of_int w
    | None -> "-")
    st.Route.Router.total_wire_tiles
    (st.Route.Router.critical_path_s *. 1e9);
  (* 10. PowerModel *)
  let power = Power.Model.estimate routed in
  Format.printf "10. powermodel: %a@." Power.Model.pp power;
  (* 11. DAGGER *)
  let bit = Bitstream.Dagger.generate routed in
  Printf.printf "11. dagger: %s\n" (Bitstream.Dagger.summary bit);
  (match Bitstream.Dagger.verify routed bit.Bitstream.Dagger.bytes with
  | Bitstream.Dagger.Verified -> print_endline "    bitstream verified"
  | _ -> failwith "bitstream verification failed");
  (* 12. end-to-end functional check: mapped netlist behaves like an ALU *)
  let st12 = Logic.sim_init mapped in
  let inputs = Hashtbl.create 20 in
  let input_of nm =
    match Hashtbl.find_opt inputs nm with Some v -> v | None -> false
  in
  let set_vec nm width v = Logic.set_vector_inputs mapped inputs nm width v in
  let read_y () = Logic.read_vector mapped st12 "y" in
  set_vec "a" 8 0x5A;
  set_vec "b" 8 0x0F;
  List.iter
    (fun (op, expect, nmop) ->
      set_vec "op" 2 op;
      Logic.sim_eval mapped st12 input_of;
      Logic.sim_step mapped st12;
      Logic.sim_eval mapped st12 input_of;
      let y = read_y () in
      Printf.printf "12. 0x5A %s 0x0F = 0x%02X (expect 0x%02X) %s\n" nmop y
        expect
        (if y = expect then "ok" else "MISMATCH"))
    [ (0, 0x0A, "and"); (1, 0x5F, "or"); (2, 0x55, "xor"); (3, 0x69, "+") ]
