(* Architecture exploration: re-run the paper's CLB-level studies through
   the full flow — cluster size (paper: N = 5), LUT size (paper: K = 4)
   and the I = (K/2)(N+1) input rule (paper: ~98% utilisation).

   Run with: dune exec examples/architecture_explore.exe *)

let print_sweep title points =
  Printf.printf "\n%s:\n" title;
  Util.Tablefmt.print
    [ "point"; "power (mW)"; "crit (ns)"; "CLBs"; "Wmin"; "util" ]
    (List.map
       (fun (p : Core.Explore.sweep_point) ->
         [
           p.label;
           Util.Tablefmt.f3 p.avg_power_mw;
           Util.Tablefmt.f2 p.avg_crit_ns;
           Util.Tablefmt.f1 p.avg_clusters;
           Util.Tablefmt.f1 p.avg_min_width;
           Util.Tablefmt.f2 p.avg_utilization;
         ])
       points)

let () =
  print_endline "== Architecture exploration ==";
  (* a compact circuit subset keeps this example fast *)
  let circuits =
    [
      ("counter8", Core.Bench_circuits.counter 8);
      ("alu8", Core.Bench_circuits.alu 8);
      ("lfsr12", Core.Bench_circuits.lfsr 12);
      ("accum12", Core.Bench_circuits.accumulator 12);
    ]
  in
  print_sweep "cluster size N (K = 4, I by the rule)"
    (Core.Explore.cluster_size_sweep ~circuits ());
  print_sweep "LUT size K (N = 5, I by the rule)"
    (Core.Explore.lut_size_sweep ~circuits ());
  print_endline "\ninput rule I = (K/2)(N+1) = 12 (BLE utilisation vs I):";
  Util.Tablefmt.print
    [ "I"; "utilisation"; "avg CLBs" ]
    (List.map
       (fun (p : Core.Explore.input_rule_point) ->
         [
           (if p.i_value = p.rule_value then
              Printf.sprintf "%d (rule)" p.i_value
            else string_of_int p.i_value);
           Util.Tablefmt.f2 p.utilization;
           Util.Tablefmt.f1 p.clusters;
         ])
       (Core.Explore.input_rule_sweep ~circuits ()))
