(* Run the full benchmark suite through the complete flow and print the
   quality-of-results table (the evaluation a VPR-era paper reports:
   LUTs, CLBs, grid, minimum channel width, critical path, power).

   Run with: dune exec examples/benchmark_suite.exe *)

let () =
  print_endline "== Benchmark suite through the complete flow ==";
  let rows =
    List.filter_map
      (fun (name, vhdl) ->
        match Core.Flow.run_vhdl vhdl with
        | r ->
            Some
              [
                name;
                string_of_int r.Core.Flow.mapped_stats.Netlist.Logic.n_gates;
                string_of_int r.Core.Flow.mapped_stats.Netlist.Logic.n_latches;
                string_of_int r.Core.Flow.n_clusters;
                Printf.sprintf "%dx%d" r.Core.Flow.grid.Fpga_arch.Grid.nx
                  r.Core.Flow.grid.Fpga_arch.Grid.ny;
                (match r.Core.Flow.route_stats.Route.Router.minimum_width with
                | Some w -> string_of_int w
                | None -> "-");
                Util.Tablefmt.f2
                  (r.Core.Flow.route_stats.Route.Router.critical_path_s *. 1e9);
                Util.Tablefmt.f3 (r.Core.Flow.power.Power.Model.total_w *. 1e3);
                string_of_int r.Core.Flow.bitstream.Bitstream.Dagger.bits;
                (if r.Core.Flow.bitstream_verified then "yes" else "NO");
              ]
        | exception Core.Flow.Flow_error (stage, e) ->
            Printf.printf "%s: FAILED at %s (%s)\n" name stage
              (Printexc.to_string e);
            None)
      Core.Bench_circuits.suite
  in
  Util.Tablefmt.print
    [
      "circuit"; "LUTs"; "FFs"; "CLBs"; "grid"; "Wmin"; "crit (ns)";
      "power (mW)"; "bits"; "verified";
    ]
    rows
