(* Bitstream tour: what DAGGER produces and what a device does with it.

   A small design goes through the flow; we then dissect the bitstream —
   frames, CRC, fuse map — reload it into the fabric model, watch the
   reconstructed netlist run, and corrupt one LUT bit to see the
   verification stack catch it.

   Run with: dune exec examples/bitstream_tour.exe *)

open Netlist

let () =
  print_endline "== DAGGER bitstream tour ==";
  let r = Core.Flow.run_vhdl (Core.Bench_circuits.gray_counter 4) in
  let g = r.Core.Flow.bitstream in
  let params = Core.Flow.default_config.Core.Flow.params in
  (* 1. the raw artefact *)
  Printf.printf "1. %s\n" (Bitstream.Dagger.summary g);
  Printf.printf "   CRC-32 protected, %d bytes\n\n"
    (String.length g.Bitstream.Dagger.bytes);
  (* 2. the fuse map *)
  print_endline "2. fuse map:";
  print_string (Bitstream.Dagger.fuse_map g);
  (* 3. reload into the fabric model and run it *)
  print_endline "\n3. fabric emulation (connectivity from the ON pass transistors):";
  let fabric = Bitstream.Dagger.emulate params g.Bitstream.Dagger.bytes in
  Format.printf "   reconstructed netlist: %a@." Logic.pp_stats
    (Logic.stats fabric);
  let st = Logic.sim_init fabric in
  let input_of = function "rst" -> false | _ -> false in
  print_string "   gray sequence from the fabric:";
  for _ = 1 to 8 do
    Logic.sim_eval fabric st input_of;
    Printf.printf " %d" (Logic.read_vector fabric st "g");
    Logic.sim_step fabric st
  done;
  print_newline ();
  Printf.printf "   functionally equivalent to the design: %b\n"
    (Bitstream.Dagger.verify_functional r.Core.Flow.routed
       g.Bitstream.Dagger.bytes);
  (* 4. corruption is caught *)
  print_endline "\n4. flip one byte:";
  let bytes = Bytes.of_string g.Bitstream.Dagger.bytes in
  Bytes.set bytes (Bytes.length bytes / 2)
    (Char.chr (Char.code (Bytes.get bytes (Bytes.length bytes / 2)) lxor 0x01));
  (match Bitstream.Dagger.verify r.Core.Flow.routed (Bytes.to_string bytes) with
  | Bitstream.Dagger.Corrupted msg -> Printf.printf "   rejected: %s\n" msg
  | Bitstream.Dagger.Config_mismatch -> print_endline "   config mismatch"
  | Bitstream.Dagger.Verified -> print_endline "   UNDETECTED (bug!)")
