(* Flip-flop exploration (the study behind Table 1): simulate the five
   published DETFFs at the transistor level, reproduce the
   energy/delay/energy-delay-product comparison, and show why the platform
   selected the Llopis-1 flip-flop.

   Run with: dune exec examples/detff_explore.exe *)

open Spice

let () =
  print_endline "== DETFF exploration (Table 1 study) ==";
  Printf.printf
    "stimulus: %.1f GHz clock, data toggling on every edge for %d cycles\n\n"
    (1e-9 /. Ff_bench.period) Ff_bench.toggle_cycles;
  let results = Ff_bench.table1 () in
  let rows =
    List.map
      (fun (r : Ff_bench.result) ->
        [
          Detff.name r.kind;
          Util.Tablefmt.f1 r.energy_fj;
          Util.Tablefmt.f1 r.delay_ps;
          Util.Tablefmt.f1 (r.edp /. 1000.0);
          string_of_int r.transistors;
        ])
      results
  in
  Util.Tablefmt.print
    [ "cell"; "energy (fJ)"; "delay (ps)"; "EDP (fJ*ns)"; "transistors" ]
    rows;
  let by_energy =
    List.sort (fun (a : Ff_bench.result) b -> compare a.energy_fj b.energy_fj)
      results
  in
  let by_edp =
    List.sort (fun (a : Ff_bench.result) b -> compare a.edp b.edp) results
  in
  (match (by_energy, by_edp) with
  | e :: _, d :: _ ->
      Printf.printf "\nlowest energy: %s\nlowest EDP:    %s\n"
        (Detff.name e.kind) (Detff.name d.kind);
      Printf.printf
        "selected:      %s — lowest total energy and the simplest structure\n"
        (Detff.name Detff.Llopis1)
  | _ -> ());
  print_endline
    "\nDET vs SET at matched data rate (clock at f/2 for the DETFF):";
  List.iter
    (fun (p : Ff_bench.det_vs_set) ->
      Printf.printf "  activity %.2f: DET %.1f fJ  SET %.1f fJ  (%+.0f%%)\n"
        p.activity p.det_energy_fj p.set_energy_fj
        (100.0 *. ((p.det_energy_fj /. p.set_energy_fj) -. 1.0)))
    (Ff_bench.det_vs_set_sweep ());
  (* also show the gated-clock effect on the selected flip-flop (Table 2) *)
  print_endline "\nBLE-level gated clock on the selected flip-flop:";
  List.iter
    (fun (row : Clocking.table2_row) ->
      Printf.printf "  %-24s %6.2f fJ/cycle\n" row.label row.energy_fj)
    (Clocking.table2 ())
