(* Quickstart: synthesize a small VHDL design and carry it through the
   complete flow — VHDL, synthesis, LUT mapping, packing, placement,
   routing, power estimation and bitstream generation — using the public
   API only.

   Run with: dune exec examples/quickstart.exe *)

let vhdl =
  {|-- A 4-bit loadable counter.
entity quickstart is
  port ( clk  : in std_logic;
         rst  : in std_logic;
         load : in std_logic;
         d    : in std_logic_vector(3 downto 0);
         q    : out std_logic_vector(3 downto 0) );
end quickstart;
architecture rtl of quickstart is
  signal cnt : std_logic_vector(3 downto 0);
begin
  process(clk, rst) begin
    if rst = '1' then
      cnt <= "0000";
    elsif rising_edge(clk) then
      if load = '1' then
        cnt <= d;
      else
        cnt <= cnt + 1;
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
|}

let () =
  print_endline "== AMDREL framework quickstart ==";
  (* Step 1: the complete flow in one call. *)
  let r = Core.Flow.run_vhdl vhdl in
  print_endline (Core.Flow.summary r);
  (* Step 2: the intermediate products are all available. *)
  Printf.printf "\nEDIF netlist: %d bytes\n" (String.length r.Core.Flow.edif);
  Printf.printf "mapped BLIF:\n%s\n" r.Core.Flow.blif_mapped;
  (* Step 3: simulate the mapped netlist to watch it count. *)
  let net = r.Core.Flow.mapped in
  let st = Netlist.Logic.sim_init net in
  let inputs = Hashtbl.create 4 in
  let input_of nm =
    match Hashtbl.find_opt inputs nm with Some v -> v | None -> false
  in
  Hashtbl.replace inputs "rst" false;
  Hashtbl.replace inputs "load" false;
  print_string "counting:";
  for _ = 1 to 6 do
    Netlist.Logic.sim_eval net st input_of;
    Netlist.Logic.sim_step net st;
    Netlist.Logic.sim_eval net st input_of;
    Printf.printf " %d" (Netlist.Logic.read_vector net st "q")
  done;
  print_newline ();
  (* Step 4: the bitstream round-trips. *)
  Printf.printf "bitstream: %s\n"
    (Bitstream.Dagger.summary r.Core.Flow.bitstream)
