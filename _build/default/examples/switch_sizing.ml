(* Routing-switch sizing (the study behind Figs. 8-10): sweep the pass
   transistor width for several wire lengths and metal configurations,
   plotting energy-delay-area product curves, and compare against tri-state
   buffer switches at the selected operating point.

   Run with: dune exec examples/switch_sizing.exe *)

open Spice

let plot_curve (cv : Routing_exp.curve) =
  Printf.printf "  wire length %d (optimal %gx):\n" cv.wire_length
    (Routing_exp.optimal_width cv);
  let finite =
    List.filter (fun (p : Routing_exp.point) -> Float.is_finite p.eda)
      cv.points
  in
  let max_eda =
    List.fold_left (fun m (p : Routing_exp.point) -> Float.max m p.eda) 0.0
      finite
  in
  List.iter
    (fun (p : Routing_exp.point) ->
      if Float.is_finite p.eda then begin
        let bar = int_of_float (40.0 *. p.eda /. max_eda) in
        Printf.printf "    W=%4gx %s %.3g\n" p.width (String.make (max bar 1) '#')
          p.eda
      end)
    cv.points

let () =
  print_endline "== Routing switch sizing (Figs. 8-10 study) ==";
  (* a faster subset: two wire lengths per configuration *)
  let widths = [ 2.0; 4.0; 8.0; 10.0; 16.0; 32.0; 64.0 ] in
  List.iter
    (fun config ->
      Printf.printf "\n%s:\n" (Tech.wire_config_name config);
      let curves = Routing_exp.sweep ~widths ~lengths:[ 1; 8 ] ~config () in
      List.iter plot_curve curves)
    [
      Tech.Min_width_min_spacing;
      Tech.Min_width_double_spacing;
      Tech.Double_width_double_spacing;
    ];
  print_endline "\npass transistor vs tri-state buffer at the selected point:";
  List.iter
    (fun (p : Core.Explore.switch_point) ->
      Printf.printf "  %-18s E=%7.1f fJ  D=%7.1f ps  A=%6.1f  EDA=%.3g\n"
        (match p.style with
        | Routing_exp.Pass_transistor -> "pass transistor"
        | Routing_exp.Tristate_buffer -> "tri-state buffer")
        p.energy_fj p.delay_ps p.area p.eda)
    (Core.Explore.switch_style_comparison ());
  print_endline
    "\nconclusion: 10x-minimum pass transistors on length-1, min-width/\n\
     double-spacing wires — the platform the paper selected."
