lib/bitstream/crc.ml: Array Bytes Char Int32 Lazy
