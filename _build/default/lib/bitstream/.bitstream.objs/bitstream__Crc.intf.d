lib/bitstream/crc.mli:
