lib/bitstream/dagger.ml: Array Buffer Fabric Fpga_arch Frames Layout List Pack Place Printf Route String
