lib/bitstream/dagger.mli: Fpga_arch Layout Netlist Route
