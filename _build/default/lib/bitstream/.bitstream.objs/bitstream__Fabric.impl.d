lib/bitstream/fabric.ml: Array Fpga_arch Frames Hashtbl Layout Lazy List Logic Netlist Printf Techmap Tt Util
