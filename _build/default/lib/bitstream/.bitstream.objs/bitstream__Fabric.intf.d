lib/bitstream/fabric.mli: Fpga_arch Layout Netlist
