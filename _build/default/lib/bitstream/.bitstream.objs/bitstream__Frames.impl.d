lib/bitstream/frames.ml: Array Buffer Char Crc Fpga_arch Int32 Layout List String
