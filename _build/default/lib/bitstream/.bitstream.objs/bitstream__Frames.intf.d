lib/bitstream/frames.mli: Fpga_arch Layout
