lib/bitstream/layout.ml: Array Fpga_arch Hashtbl List Logic Netlist Pack Place Route Tt
