lib/bitstream/layout.mli: Fpga_arch Netlist Route
