(* CRC-32 (IEEE 802.3 polynomial), protecting bitstream frames the way
   device programmers do. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc bytes =
  let tbl = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  Bytes.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor tbl.(idx) (Int32.shift_right_logical !c 8))
    bytes;
  Int32.logxor !c 0xFFFFFFFFl

let of_bytes bytes = update 0l bytes

let of_string s = of_bytes (Bytes.of_string s)
