(** CRC-32 (IEEE 802.3 polynomial), protecting bitstream frames the way
    device programmers do. *)

val update : int32 -> bytes -> int32
(** Extend a running CRC with more data. *)

val of_bytes : bytes -> int32

val of_string : string -> int32
(** CRC32("123456789") = 0xCBF43926l (the standard check vector). *)
