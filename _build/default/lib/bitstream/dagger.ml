(* DAGGER: configuration bitstream generation and verification.

   [generate] turns a placed-and-routed design into the binary bitstream;
   [verify] decodes it and checks it reproduces exactly the configuration
   extracted from the implementation (the round-trip property a device
   programmer relies on). *)

type generated = {
  bytes : string;
  config : Layout.config;
  bits : int;
}

let generate (routed : Route.Router.routed) =
  let params = routed.Route.Router.graph.Route.Rrgraph.params in
  let config = Layout.extract routed in
  let bytes = Frames.encode params config in
  { bytes; config; bits = Layout.bit_count params config }

let to_file path (g : generated) =
  let oc = open_out_bin path in
  output_string oc g.bytes;
  close_out oc

type verdict = Verified | Corrupted of string | Config_mismatch

let verify (routed : Route.Router.routed) bytes =
  match Frames.decode bytes with
  | exception Frames.Corrupt msg -> Corrupted msg
  | decoded ->
      let expect = Layout.extract routed in
      if decoded = expect then Verified else Config_mismatch

(* Load the bitstream into the fabric model and reconstruct the implemented
   logic (see Fabric). *)
let emulate (params : Fpga_arch.Params.t) bytes = Fabric.of_bitstream params bytes

(* Functional sign-off: the configured fabric simulates identically to the
   mapped netlist. *)
let verify_functional (routed : Route.Router.routed) bytes =
  let params = routed.Route.Router.graph.Route.Rrgraph.params in
  let reference =
    routed.Route.Router.problem.Place.Problem.packing.Pack.Cluster.net
  in
  Fabric.functionally_equivalent params ~reference bytes

(* Human-readable fuse map: the per-tile configuration in the form the
   paper's DAGGER reports (LUT contents, register/clock-enable selects,
   crossbar codes, switch usage). *)
let fuse_map (g : generated) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "fuse map for %s (%dx%d array, %d tracks)\n" g.config.Layout.design
    g.config.Layout.nx g.config.Layout.ny g.config.Layout.width;
  List.iter
    (fun (clb : Layout.clb_config) ->
      add "CLB (%d,%d) cluster %d:\n" clb.Layout.x clb.Layout.y
        clb.Layout.cluster;
      Array.iteri
        (fun j (b : Layout.ble_config) ->
          if b.Layout.lut_bits <> 0 || b.Layout.registered then
            add "  BLE %d: LUT=%04X %s%s  in=[%s]\n" j b.Layout.lut_bits
              (if b.Layout.registered then "REG" else "comb")
              (if b.Layout.clock_enable then "+CE" else "")
              (String.concat ","
                 (Array.to_list
                    (Array.map string_of_int b.Layout.input_sources)))
          else add "  BLE %d: (unused)\n" j)
        clb.Layout.bles)
    g.config.Layout.clbs;
  add "pads:\n";
  List.iter
    (fun (p : Layout.pad_config) ->
      add "  (%d,%d,%d) %s %s\n" p.Layout.pad_x p.Layout.pad_y
        p.Layout.pad_sub
        (if p.Layout.pad_is_input then "in " else "out")
        p.Layout.pad_name)
    g.config.Layout.pads;
  add "%d routing switches ON, %d pin links ON\n"
    (List.length g.config.Layout.switches)
    (List.length g.config.Layout.pin_links);
  Buffer.contents buf

(* Human-readable summary (the paper's tools print similar reports). *)
let summary (g : generated) =
  Printf.sprintf
    "design %s: %dx%d array, channel width %d, %d CLBs, %d routing switches, \
     %d pin links, %d config bits, %d bitstream bytes"
    g.config.Layout.design g.config.Layout.nx g.config.Layout.ny
    g.config.Layout.width
    (List.length g.config.Layout.clbs)
    (List.length g.config.Layout.switches)
    (List.length g.config.Layout.pin_links)
    g.bits (String.length g.bytes)
