(** DAGGER: configuration bitstream generation and verification. *)

type generated = {
  bytes : string;        (** the framed binary bitstream *)
  config : Layout.config;
  bits : int;            (** configuration bit count *)
}

val generate : Route.Router.routed -> generated

val to_file : string -> generated -> unit

type verdict = Verified | Corrupted of string | Config_mismatch

val verify : Route.Router.routed -> string -> verdict
(** Structural round trip: decode and compare against the configuration
    extracted from the implementation. *)

val emulate : Fpga_arch.Params.t -> string -> Netlist.Logic.t
(** Load the bitstream into the fabric model (see {!Fabric}). *)

val verify_functional : Route.Router.routed -> string -> bool
(** Functional sign-off: the configured fabric simulates identically to
    the mapped netlist. *)

val fuse_map : generated -> string
(** Per-tile configuration report: LUT contents, register/clock-enable
    selects, crossbar codes, pads and switch usage. *)

val summary : generated -> string
