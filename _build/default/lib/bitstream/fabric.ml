(* Fabric emulation: load a decoded bitstream into a software model of the
   FPGA and reconstruct the logic it implements.

   This is the strongest verification DAGGER offers: connectivity is
   derived purely from the configuration — the ON pass transistors and
   connection-box switches form electrical nets exactly as they would in
   silicon (pass transistors are bidirectional, so a routed net is simply a
   connected component of configured switches), LUT contents come from the
   LUT bits, and the local crossbar codes select each LUT input.  The
   resulting Logic network can be simulated against the original design. *)

open Netlist

exception Invalid_configuration of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_configuration s)) fmt

(* Build the configured netlist.  [params] is the device's architecture
   (K, N, I), as a programmer would know it from the architecture file. *)
let to_logic (params : Fpga_arch.Params.t) (cfg : Layout.config) =
  let k = params.Fpga_arch.Params.k in
  let n = params.Fpga_arch.Params.n in
  let i_pins = params.Fpga_arch.Params.i in
  (* ---- electrical nets: connected components of configured switches ---- *)
  let descs = Hashtbl.create 256 in
  let touch d =
    if not (Hashtbl.mem descs d) then Hashtbl.replace descs d (Hashtbl.length descs)
  in
  List.iter (fun (a, b) -> touch a; touch b) cfg.Layout.switches;
  List.iter (fun (a, b) -> touch a; touch b) cfg.Layout.pin_links;
  let uf = Util.Union_find.create (max 1 (Hashtbl.length descs)) in
  let union a b = Util.Union_find.union uf (Hashtbl.find descs a) (Hashtbl.find descs b) in
  List.iter (fun (a, b) -> union a b) cfg.Layout.switches;
  List.iter (fun (a, b) -> union a b) cfg.Layout.pin_links;
  let component d =
    match Hashtbl.find_opt descs d with
    | Some idx -> Some (Util.Union_find.find uf idx)
    | None -> None
  in
  (* ---- the reconstructed network ---- *)
  let net = Logic.create ~model:(cfg.Layout.design ^ "_fabric") () in
  (* driver signal of each electrical component, keyed by component root *)
  let comp_driver = Hashtbl.create 64 in
  (* BLE output signals: (block, slot) -> signal id (created lazily so
     feedback and cross-CLB references resolve in any order) *)
  let ble_out = Hashtbl.create 64 in
  List.iter
    (fun (clb : Layout.clb_config) ->
      Array.iteri
        (fun j (_ : Layout.ble_config) ->
          let nm = Printf.sprintf "clb%d_ble%d" clb.Layout.block j in
          Hashtbl.replace ble_out (clb.Layout.block, j) (Logic.add_input net nm))
        clb.Layout.bles)
    cfg.Layout.clbs;
  (* input pads drive their components *)
  List.iter
    (fun (p : Layout.pad_config) ->
      if p.Layout.pad_is_input then begin
        let id = Logic.add_input net p.Layout.pad_name in
        match component (2, p.Layout.pad_block, 0, 0, 0) with
        | Some root -> Hashtbl.replace comp_driver root id
        | None -> () (* an unconnected input pad is legal *)
      end)
    cfg.Layout.pads;
  (* CLB output pins drive their components *)
  List.iter
    (fun (clb : Layout.clb_config) ->
      Array.iteri
        (fun j (ble : Layout.ble_config) ->
          ignore ble;
          match component (2, clb.Layout.block, j, 0, 0) with
          | Some root ->
              Hashtbl.replace comp_driver root
                (Hashtbl.find ble_out (clb.Layout.block, j))
          | None -> ())
        clb.Layout.bles)
    cfg.Layout.clbs;
  (* signal arriving at an input pin, if its component is driven *)
  let at_ipin block pin =
    match component (3, block, pin, 0, 0) with
    | Some root -> Hashtbl.find_opt comp_driver root
    | None -> None
  in
  let const0 = lazy (Logic.add_const net (Logic.fresh_name net "gnd") false) in
  (* ---- realise each BLE ---- *)
  List.iter
    (fun (clb : Layout.clb_config) ->
      Array.iteri
        (fun j (ble : Layout.ble_config) ->
          let out = Hashtbl.find ble_out (clb.Layout.block, j) in
          if ble.Layout.lut_bits = 0 && not ble.Layout.registered then
            (* unused slot: tie low *)
            Logic.set_driver net out (Logic.Const false)
          else begin
            (* resolve the K crossbar codes *)
            let fanins =
              Array.map
                (fun code ->
                  if code < i_pins then
                    match at_ipin clb.Layout.block code with
                    | Some s -> s
                    | None ->
                        fail "CLB %d input pin %d selected but undriven"
                          clb.Layout.block code
                  else if code < i_pins + n then
                    Hashtbl.find ble_out (clb.Layout.block, code - i_pins)
                  else Lazy.force const0)
                ble.Layout.input_sources
            in
            if Array.length fanins <> k then
              fail "CLB %d BLE %d has %d sources" clb.Layout.block j
                (Array.length fanins);
            let tt = Tt.create k ble.Layout.lut_bits in
            (* drop don't-care inputs so the fabric netlist stays tidy *)
            let tt, sup = Tt.compact tt in
            let fanins = Array.of_list (List.map (fun s -> fanins.(s)) sup) in
            if ble.Layout.registered then begin
              let d =
                if Tt.arity tt = 0 then
                  Logic.add_const net (Logic.fresh_name net "c")
                    (Tt.is_const1 tt)
                else
                  Logic.add_gate net (Logic.fresh_name net "lut") tt fanins
              in
              Logic.set_driver net out
                (Logic.Latch { data = d; init = ble.Layout.ff_init })
            end
            else if Tt.arity tt = 0 then
              Logic.set_driver net out (Logic.Const (Tt.is_const1 tt))
            else Logic.set_driver net out (Logic.Gate { tt; fanins })
          end)
        clb.Layout.bles)
    cfg.Layout.clbs;
  (* ---- output pads ---- *)
  List.iter
    (fun (p : Layout.pad_config) ->
      if not p.Layout.pad_is_input then begin
        let src =
          match at_ipin p.Layout.pad_block 0 with
          | Some s -> s
          | None -> fail "output pad %s is undriven" p.Layout.pad_name
        in
        (* a pad-to-pad passthrough makes the output name coincide with the
           input pad's signal: mark that signal as the output directly *)
        if Logic.name net src = p.Layout.pad_name then Logic.set_output net src
        else begin
          let id = Logic.add_gate net p.Layout.pad_name Tt.buf [| src |] in
          Logic.set_output net id
        end
      end)
    cfg.Layout.pads;
  net

(* Emulate a raw bitstream string directly. *)
let of_bitstream (params : Fpga_arch.Params.t) bytes =
  to_logic params (Frames.decode bytes)

(* The programmer's final check: the configured fabric must behave exactly
   like the mapped netlist the flow produced. *)
let functionally_equivalent ?(vectors = 64) ?(cycles = 8)
    (params : Fpga_arch.Params.t) ~reference bytes =
  let fabric = of_bitstream params bytes in
  (* the fabric has no clock pin; output names match the reference's
     primary outputs, input pads its primary inputs *)
  Techmap.Simcheck.is_equivalent ~vectors ~cycles reference fabric
