(** Bitstream serialisation: framed binary with a CRC-32 trailer.

    Layout: magic "AMD1"; header (design name, nx, ny, width, K, N, I);
    CLB frames; pad table; routing switch and pin-link descriptors;
    CRC-32 of everything above. *)

exception Corrupt of string

val magic : string

val encode : Fpga_arch.Params.t -> Layout.config -> string

val decode : string -> Layout.config
(** @raise Corrupt on truncation, bad magic or CRC mismatch. *)
