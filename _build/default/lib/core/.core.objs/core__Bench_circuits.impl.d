lib/core/bench_circuits.ml: List Printf String
