lib/core/bench_circuits.mli:
