lib/core/explore.ml: Array Bench_circuits Flow Fpga_arch List Option Power Printexc Printf Route Spice Util
