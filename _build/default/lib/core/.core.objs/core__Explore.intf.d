lib/core/explore.mli: Flow Spice
