lib/core/flow.ml: Bitstream Fpga_arch List Logic Netlist Pack Place Power Printf Route Synth Sys Techmap
