lib/core/flow.mli: Bitstream Fpga_arch Netlist Pack Power Route
