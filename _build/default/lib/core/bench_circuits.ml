(* Benchmark circuit generators: the workload suite standing in for the
   MCNC LGSynth93 circuits the paper references (see DESIGN.md §4).

   Each generator emits synthesizable VHDL in the subset the front end
   accepts, covering the circuit families the original suite spans:
   arithmetic (adders, accumulators, multipliers), random logic (parity,
   priority encoders, decoders), shift/LFSR structures and FSM control. *)

let counter bits =
  Printf.sprintf
    {|entity counter%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         en  : in std_logic;
         q   : out std_logic_vector(%d downto 0) );
end counter%d;
architecture rtl of counter%d is
  signal cnt : std_logic_vector(%d downto 0);
begin
  process(clk, rst) begin
    if rst = '1' then
      cnt <= %s;
    elsif rising_edge(clk) then
      if en = '1' then
        cnt <= cnt + 1;
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
|}
    bits (bits - 1) bits bits (bits - 1)
    ("\"" ^ String.make bits '0' ^ "\"")

let shift_register bits =
  Printf.sprintf
    {|entity shiftreg%d is
  port ( clk : in std_logic;
         sin : in std_logic;
         q   : out std_logic_vector(%d downto 0) );
end shiftreg%d;
architecture rtl of shiftreg%d is
  signal r : std_logic_vector(%d downto 0);
begin
  process(clk) begin
    if rising_edge(clk) then
      r <= r(%d downto 0) & sin;
    end if;
  end process;
  q <= r;
end rtl;
|}
    bits (bits - 1) bits bits (bits - 1) (bits - 2)

(* Fibonacci LFSR with taps at the two top bits (plus bit 0 for width > 4). *)
let lfsr bits =
  let feedback =
    if bits > 4 then
      Printf.sprintf "r(%d) xor r(%d) xor r(0)" (bits - 1) (bits - 2)
    else Printf.sprintf "r(%d) xor r(%d)" (bits - 1) (bits - 2)
  in
  Printf.sprintf
    {|entity lfsr%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         q   : out std_logic_vector(%d downto 0) );
end lfsr%d;
architecture rtl of lfsr%d is
  signal r : std_logic_vector(%d downto 0);
  signal fb : std_logic;
begin
  fb <= %s;
  process(clk, rst) begin
    if rst = '1' then
      r <= %s;
    elsif rising_edge(clk) then
      r <= r(%d downto 0) & fb;
    end if;
  end process;
  q <= r;
end rtl;
|}
    bits (bits - 1) bits bits (bits - 1) feedback
    ("\"" ^ String.make (bits - 1) '0' ^ "1\"")
    (bits - 2)

let alu bits =
  Printf.sprintf
    {|entity alu%d is
  port ( clk : in std_logic;
         a  : in std_logic_vector(%d downto 0);
         b  : in std_logic_vector(%d downto 0);
         op : in std_logic_vector(1 downto 0);
         y  : out std_logic_vector(%d downto 0) );
end alu%d;
architecture rtl of alu%d is
  signal r : std_logic_vector(%d downto 0);
begin
  process(clk) begin
    if rising_edge(clk) then
      if op = "00" then
        r <= a and b;
      elsif op = "01" then
        r <= a or b;
      elsif op = "10" then
        r <= a xor b;
      else
        r <= a + b;
      end if;
    end if;
  end process;
  y <= r;
end rtl;
|}
    bits (bits - 1) (bits - 1) (bits - 1) bits bits (bits - 1)

let parity bits =
  let terms =
    String.concat " xor " (List.init bits (fun i -> Printf.sprintf "d(%d)" i))
  in
  Printf.sprintf
    {|entity parity%d is
  port ( d : in std_logic_vector(%d downto 0);
         p : out std_logic );
end parity%d;
architecture rtl of parity%d is
begin
  p <= %s;
end rtl;
|}
    bits (bits - 1) bits bits terms

let decoder bits =
  let outs = 1 lsl bits in
  let cases =
    String.concat "\n"
      (List.init outs (fun v ->
           let pattern =
             String.init bits (fun j ->
                 if (v lsr (bits - 1 - j)) land 1 = 1 then '1' else '0')
           in
           let onehot =
             String.init outs (fun j -> if outs - 1 - j = v then '1' else '0')
           in
           Printf.sprintf "      when \"%s\" => y <= \"%s\";" pattern onehot))
  in
  Printf.sprintf
    {|entity decoder%d is
  port ( a : in std_logic_vector(%d downto 0);
         y : out std_logic_vector(%d downto 0) );
end decoder%d;
architecture rtl of decoder%d is
begin
  process(a) begin
    case a is
%s
      when others => y <= %s;
    end case;
  end process;
end rtl;
|}
    bits (bits - 1) (outs - 1) bits bits cases
    ("\"" ^ String.make outs '0' ^ "\"")

let priority_encoder bits =
  let enc_bits =
    let rec log2up v acc = if v <= 1 then acc else log2up ((v + 1) / 2) (acc + 1) in
    max 1 (log2up bits 0)
  in
  let branches =
    String.concat "\n"
      (List.init bits (fun k ->
           let i = bits - 1 - k in
           let code =
             String.init enc_bits (fun j ->
                 if (i lsr (enc_bits - 1 - j)) land 1 = 1 then '1' else '0')
           in
           Printf.sprintf "    %s d(%d) = '1' then y <= \"%s\"; v <= '1';"
             (if k = 0 then "if" else "elsif")
             i code))
  in
  Printf.sprintf
    {|entity prienc%d is
  port ( d : in std_logic_vector(%d downto 0);
         y : out std_logic_vector(%d downto 0);
         v : out std_logic );
end prienc%d;
architecture rtl of prienc%d is
begin
  process(d) begin
%s
    else y <= %s; v <= '0';
    end if;
  end process;
end rtl;
|}
    bits (bits - 1) (enc_bits - 1) bits bits branches
    ("\"" ^ String.make enc_bits '0' ^ "\"")

(* Shift-and-add multiplier, combinational, registered output. *)
let multiplier bits =
  let partials =
    String.concat "\n"
      (List.init bits (fun i ->
           (* partial product i: (bits-i) leading zeros, a, i trailing zeros *)
           Printf.sprintf
             "  pp%d <= (%s) when b(%d) = '1' else \"%s\";" i
             (if i = 0 then "zeros & a"
              else
                Printf.sprintf "zeros(%d downto 0) & a & zeros(%d downto 0)"
                  (bits - 1 - i) (i - 1))
             i
             (String.make (2 * bits) '0')))
  in
  let sums =
    String.concat "\n"
      (List.init (bits - 1) (fun i ->
           if i = 0 then "  s0 <= pp0 + pp1;"
           else Printf.sprintf "  s%d <= s%d + pp%d;" i (i - 1) (i + 1)))
  in
  let pp_decls =
    String.concat ";\n  "
      (List.init bits (fun i ->
           Printf.sprintf "signal pp%d : std_logic_vector(%d downto 0)" i
             ((2 * bits) - 1)))
  in
  let s_decls =
    String.concat ";\n  "
      (List.init (bits - 1) (fun i ->
           Printf.sprintf "signal s%d : std_logic_vector(%d downto 0)" i
             ((2 * bits) - 1)))
  in
  Printf.sprintf
    {|entity mult%d is
  port ( clk : in std_logic;
         a : in std_logic_vector(%d downto 0);
         b : in std_logic_vector(%d downto 0);
         p : out std_logic_vector(%d downto 0) );
end mult%d;
architecture rtl of mult%d is
  signal zeros : std_logic_vector(%d downto 0);
  %s;
  %s;
  signal r : std_logic_vector(%d downto 0);
begin
  zeros <= "%s";
%s
%s
  process(clk) begin
    if rising_edge(clk) then
      r <= s%d;
    end if;
  end process;
  p <= r;
end rtl;
|}
    bits (bits - 1) (bits - 1) ((2 * bits) - 1) bits bits (bits - 1) pp_decls
    s_decls
    ((2 * bits) - 1)
    (String.make bits '0')
    partials sums (bits - 2)

let gray_counter bits =
  Printf.sprintf
    {|entity gray%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         g   : out std_logic_vector(%d downto 0) );
end gray%d;
architecture rtl of gray%d is
  signal cnt : std_logic_vector(%d downto 0);
begin
  process(clk, rst) begin
    if rst = '1' then
      cnt <= %s;
    elsif rising_edge(clk) then
      cnt <= cnt + 1;
    end if;
  end process;
  g <= cnt xor ('0' & cnt(%d downto 1));
end rtl;
|}
    bits (bits - 1) bits bits (bits - 1)
    ("\"" ^ String.make bits '0' ^ "\"")
    (bits - 1)

(* A small Moore FSM (traffic-light controller with a pedestrian request):
   the control-dominated benchmark class. *)
let traffic_fsm =
  {|entity traffic is
  port ( clk : in std_logic;
         rst : in std_logic;
         req : in std_logic;
         lights : out std_logic_vector(2 downto 0) );
end traffic;
architecture rtl of traffic is
  signal state : std_logic_vector(1 downto 0);
  signal timer : std_logic_vector(2 downto 0);
begin
  process(clk, rst) begin
    if rst = '1' then
      state <= "00";
      timer <= "000";
    elsif rising_edge(clk) then
      if timer = "111" then
        timer <= "000";
        case state is
          when "00" =>
            if req = '1' then state <= "01"; end if;
          when "01" => state <= "10";
          when "10" => state <= "11";
          when others => state <= "00";
        end case;
      else
        timer <= timer + 1;
      end if;
    end if;
  end process;
  process(state) begin
    case state is
      when "00" => lights <= "100";
      when "01" => lights <= "110";
      when "10" => lights <= "001";
      when others => lights <= "010";
    end case;
  end process;
end rtl;
|}

let accumulator bits =
  Printf.sprintf
    {|entity accum%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         d   : in std_logic_vector(%d downto 0);
         sum : out std_logic_vector(%d downto 0) );
end accum%d;
architecture rtl of accum%d is
  signal acc : std_logic_vector(%d downto 0);
begin
  process(clk, rst) begin
    if rst = '1' then
      acc <= %s;
    elsif rising_edge(clk) then
      acc <= acc + d;
    end if;
  end process;
  sum <= acc;
end rtl;
|}
    bits (bits - 1) (bits - 1) bits bits (bits - 1)
    ("\"" ^ String.make bits '0' ^ "\"")

(* PWM generator: a free-running counter compared against a duty-cycle
   input — exercises the relational operators. *)
let pwm bits =
  Printf.sprintf
    {|entity pwm%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         duty : in std_logic_vector(%d downto 0);
         pulse : out std_logic );
end pwm%d;
architecture rtl of pwm%d is
  signal cnt : std_logic_vector(%d downto 0);
begin
  process(clk, rst) begin
    if rst = '1' then
      cnt <= (others => '0');
    elsif rising_edge(clk) then
      cnt <= cnt + 1;
    end if;
  end process;
  pulse <= '1' when cnt < duty else '0';
end rtl;
|}
    bits (bits - 1) bits bits (bits - 1)

(* A hierarchical design: an accumulating datapath built from entity
   instances (adder + register bank), exercising DIVINER's hierarchy
   support the way structural MCNC netlists exercise the original tools. *)
let datapath bits =
  Printf.sprintf
    {|entity dp_adder%d is
  port ( a : in std_logic_vector(%d downto 0);
         b : in std_logic_vector(%d downto 0);
         s : out std_logic_vector(%d downto 0) );
end dp_adder%d;
architecture rtl of dp_adder%d is
begin
  s <= a + b;
end rtl;

entity dp_reg%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         d : in std_logic_vector(%d downto 0);
         q : out std_logic_vector(%d downto 0) );
end dp_reg%d;
architecture rtl of dp_reg%d is
begin
  process(clk, rst) begin
    if rst = '1' then
      q <= %s;
    elsif rising_edge(clk) then
      q <= d;
    end if;
  end process;
end rtl;

entity datapath%d is
  port ( clk : in std_logic;
         rst : in std_logic;
         din : in std_logic_vector(%d downto 0);
         acc : out std_logic_vector(%d downto 0) );
end datapath%d;
architecture rtl of datapath%d is
  component dp_adder%d
    port ( a : in std_logic_vector(%d downto 0);
           b : in std_logic_vector(%d downto 0);
           s : out std_logic_vector(%d downto 0) );
  end component;
  signal state : std_logic_vector(%d downto 0);
  signal sum : std_logic_vector(%d downto 0);
begin
  u_add : dp_adder%d port map ( a => state, b => din, s => sum );
  u_reg : entity work.dp_reg%d port map ( clk, rst, sum, state );
  acc <= state;
end rtl;
|}
    bits (bits - 1) (bits - 1) (bits - 1) bits bits
    bits (bits - 1) (bits - 1) bits bits
    ("\"" ^ String.make bits '0' ^ "\"")
    bits (bits - 1) (bits - 1) bits bits
    bits (bits - 1) (bits - 1) (bits - 1)
    (bits - 1) (bits - 1)
    bits bits

(* Structural ripple-carry adder: a for-generate loop of full-adder
   instances with index arithmetic in the carry chain — the structural
   style of the MCNC netlists. *)
let gen_adder bits =
  Printf.sprintf
    {|entity ga_fa is
  port ( a : in std_logic; b : in std_logic; cin : in std_logic;
         s : out std_logic; cout : out std_logic );
end ga_fa;
architecture rtl of ga_fa is
begin
  s <= a xor b xor cin;
  cout <= (a and b) or (a and cin) or (b and cin);
end rtl;

entity gen_adder%d is
  port ( a : in std_logic_vector(%d downto 0);
         b : in std_logic_vector(%d downto 0);
         s : out std_logic_vector(%d downto 0);
         cout : out std_logic );
end gen_adder%d;
architecture rtl of gen_adder%d is
  component ga_fa
    port ( a : in std_logic; b : in std_logic; cin : in std_logic;
           s : out std_logic; cout : out std_logic );
  end component;
  signal carry : std_logic_vector(%d downto 0);
begin
  carry(0) <= '0';
  g : for i in 0 to %d generate
    u : ga_fa port map ( a => a(i), b => b(i), cin => carry(i),
                         s => s(i), cout => carry(i + 1) );
  end generate;
  cout <= carry(%d);
end rtl;
|}
    bits (bits - 1) (bits - 1) (bits - 1) bits bits bits (bits - 1) bits

(* The benchmark suite used by the flow evaluation and benches. *)
let suite =
  [
    ("counter8", counter 8);
    ("counter16", counter 16);
    ("shiftreg16", shift_register 16);
    ("lfsr12", lfsr 12);
    ("alu8", alu 8);
    ("parity16", parity 16);
    ("decoder4", decoder 4);
    ("prienc8", priority_encoder 8);
    ("mult4", multiplier 4);
    ("gray8", gray_counter 8);
    ("traffic", traffic_fsm);
    ("accum12", accumulator 12);
    ("datapath8", datapath 8);
    ("pwm8", pwm 8);
    ("gen_adder8", gen_adder 8);
  ]

(* A smaller subset for quick tests. *)
let quick_suite =
  [ ("counter8", counter 8); ("parity16", parity 16); ("traffic", traffic_fsm) ]
