(** Benchmark circuit generators: the workload suite standing in for the
    MCNC LGSynth93 circuits the paper references (DESIGN.md §4).

    Each generator emits synthesizable VHDL covering the circuit families
    the original suite spans: arithmetic, random logic, shift/LFSR
    structures, FSM control and a hierarchical datapath. *)

val counter : int -> string
(** n-bit counter with enable and asynchronous reset. *)

val shift_register : int -> string

val lfsr : int -> string
(** Fibonacci LFSR seeded to 1 on reset. *)

val alu : int -> string
(** Registered and/or/xor/add ALU. *)

val parity : int -> string

val decoder : int -> string
(** n-to-2^n one-hot decoder (case statement). *)

val priority_encoder : int -> string

val multiplier : int -> string
(** Shift-and-add array multiplier, registered output. *)

val gray_counter : int -> string

val traffic_fsm : string
(** A small Moore FSM (control-dominated class). *)

val accumulator : int -> string

val pwm : int -> string
(** Counter + magnitude comparator (relational operators). *)

val datapath : int -> string
(** Hierarchical: adder + register bank composed by entity instances. *)

val gen_adder : int -> string
(** Structural ripple adder: for-generate over full-adder instances. *)

val suite : (string * string) list
(** The evaluation suite (name, VHDL). *)

val quick_suite : (string * string) list
(** A 3-circuit subset for fast tests. *)
