lib/fpga_arch/archfile.ml: List Params Printf String
