lib/fpga_arch/archfile.mli: Params
