lib/fpga_arch/grid.ml: List
