lib/fpga_arch/grid.mli:
