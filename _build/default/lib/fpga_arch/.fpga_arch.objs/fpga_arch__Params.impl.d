lib/fpga_arch/params.ml:
