lib/fpga_arch/params.mli:
