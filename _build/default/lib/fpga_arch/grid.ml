(* Die floorplan: a square nx x ny array of CLBs surrounded by an IO ring.

   Coordinates follow the VPR convention: CLBs at (1..nx, 1..ny); IO pads on
   the perimeter at x = 0, x = nx+1, y = 0 or y = ny+1 (corners unused).
   Each perimeter position holds [io_rat] pads, addressed by a sub-index. *)

type location = Clb of int * int | Pad of int * int * int (* x, y, sub *)

type t = {
  nx : int;
  ny : int;
  io_rat : int;
}

(* Smallest square grid fitting [n_clbs] CLBs and [n_ios] pads. *)
let size_for ~n_clbs ~n_ios ~io_rat =
  let rec grow d =
    let pads = 4 * d * io_rat in
    if d * d >= n_clbs && pads >= n_ios then d else grow (d + 1)
  in
  let d = grow 1 in
  { nx = d; ny = d; io_rat }

let clb_positions t =
  List.concat_map
    (fun x -> List.map (fun y -> (x, y)) (List.init t.ny (fun i -> i + 1)))
    (List.init t.nx (fun i -> i + 1))

(* Perimeter pad slots in clockwise order. *)
let pad_positions t =
  let top = List.init t.nx (fun i -> (i + 1, t.ny + 1)) in
  let right = List.init t.ny (fun i -> (t.nx + 1, t.ny - i)) in
  let bottom = List.init t.nx (fun i -> (t.nx - i, 0)) in
  let left = List.init t.ny (fun i -> (0, i + 1)) in
  List.concat_map
    (fun (x, y) -> List.init t.io_rat (fun sub -> (x, y, sub)))
    (top @ right @ bottom @ left)

let n_clb_slots t = t.nx * t.ny

let n_pad_slots t = 2 * (t.nx + t.ny) * t.io_rat

let is_perimeter t (x, y) =
  (x = 0 || x = t.nx + 1 || y = 0 || y = t.ny + 1)
  && not ((x = 0 || x = t.nx + 1) && (y = 0 || y = t.ny + 1))

let in_clb_range t (x, y) = x >= 1 && x <= t.nx && y >= 1 && y <= t.ny
