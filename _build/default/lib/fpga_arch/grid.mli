(** Die floorplan: a square array of CLBs surrounded by an IO ring.

    VPR conventions: CLBs at (1..nx, 1..ny); pads on the perimeter at
    x = 0, x = nx+1, y = 0 or y = ny+1 (corners unused), [io_rat] pads per
    perimeter position. *)

type location = Clb of int * int | Pad of int * int * int (** x, y, sub *)

type t = { nx : int; ny : int; io_rat : int }

val size_for : n_clbs:int -> n_ios:int -> io_rat:int -> t
(** Smallest square grid fitting the given block counts. *)

val clb_positions : t -> (int * int) list

val pad_positions : t -> (int * int * int) list
(** Perimeter pad slots in clockwise order. *)

val n_clb_slots : t -> int
val n_pad_slots : t -> int

val is_perimeter : t -> int * int -> bool
val in_clb_range : t -> int * int -> bool
