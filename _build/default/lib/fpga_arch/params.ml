(* FPGA architecture parameters (what DUTYS captures in the architecture
   file).  Defaults are the platform the paper selected in §3:
   K = 4, N = 5, I = 12, pass-transistor switches at 10x minimum width,
   length-1 segments, disjoint switch boxes (Fs = 3), Fc = 1. *)

type switch_kind = Pass_transistor | Tristate_buffer

type t = {
  name : string;
  k : int;                 (* LUT inputs *)
  n : int;                 (* BLEs per CLB *)
  i : int;                 (* CLB inputs *)
  fc_in : float;           (* fraction of tracks an input pin connects to *)
  fc_out : float;          (* fraction of tracks an output pin connects to *)
  fs : int;                (* switch-box fanout per incoming wire *)
  segment_length : int;    (* logic blocks spanned by one wire segment *)
  switch : switch_kind;
  switch_width : float;    (* multiples of the minimum transistor width *)
  io_rat : int;            (* IO pads per perimeter grid position *)
  registered_outputs : bool;  (* all CLB outputs can be registered *)
  gated_clock : bool;         (* BLE + CLB gated clocks (paper Tables 2-3) *)
}

(* The paper's empirical rule: I = (K/2)(N+1) gives ~98% BLE utilisation. *)
let recommended_inputs ~k ~n = k * (n + 1) / 2

let amdrel =
  {
    name = "amdrel_018";
    k = 4;
    n = 5;
    i = recommended_inputs ~k:4 ~n:5;
    fc_in = 1.0;
    fc_out = 1.0;
    fs = 3;
    segment_length = 1;
    switch = Pass_transistor;
    switch_width = 10.0;
    io_rat = 2;
    registered_outputs = true;
    gated_clock = true;
  }

exception Invalid_params of string

let validate p =
  let fail msg = raise (Invalid_params msg) in
  if p.k < 2 || p.k > 5 then fail "K must be between 2 and 5";
  if p.n < 1 then fail "N must be positive";
  if p.i < p.k then fail "I must be at least K";
  if p.i > p.k * p.n then fail "I must not exceed K*N (a full crossbar)";
  if p.fc_in <= 0.0 || p.fc_in > 1.0 then fail "Fc_in must be in (0, 1]";
  if p.fc_out <= 0.0 || p.fc_out > 1.0 then fail "Fc_out must be in (0, 1]";
  if p.fs <> 3 then fail "only the disjoint switch box (Fs = 3) is supported";
  if p.segment_length < 1 then fail "segment length must be positive";
  if p.switch_width < 1.0 then fail "switch width below minimum";
  if p.io_rat < 1 then fail "io_rat must be positive";
  p

(* Follows the paper's utilisation rule? (informational) *)
let follows_input_rule p = p.i = recommended_inputs ~k:p.k ~n:p.n

(* Configuration bits per CLB tile, from the platform description in §3:
   - each BLE: 2^K LUT bits, 1 output-register select, 1 clock enable;
   - fully connected local crossbar: each of the N*K LUT inputs picks one
     of I + N sources (a (I+N)-to-1 mux, encoded one-hot-free in
     ceil(log2 (I+N+1)) bits — the +1 is the unconnected state). *)
let clb_config_bits p =
  let mux_inputs = p.i + p.n + 1 in
  let bits_per_mux =
    let rec log2up v acc = if v <= 1 then acc else log2up ((v + 1) / 2) (acc + 1) in
    log2up mux_inputs 0
  in
  (p.n * ((1 lsl p.k) + 2)) + (p.n * p.k * bits_per_mux)
