(** FPGA architecture parameters (what DUTYS captures in the architecture
    file).  Defaults are the platform the paper selected in §3. *)

type switch_kind = Pass_transistor | Tristate_buffer

type t = {
  name : string;
  k : int;                 (** LUT inputs *)
  n : int;                 (** BLEs per CLB *)
  i : int;                 (** CLB inputs *)
  fc_in : float;           (** fraction of tracks an input pin connects to *)
  fc_out : float;
  fs : int;                (** switch-box fanout per incoming wire *)
  segment_length : int;    (** logic blocks spanned by one wire segment *)
  switch : switch_kind;
  switch_width : float;    (** multiples of the minimum transistor width *)
  io_rat : int;            (** IO pads per perimeter grid position *)
  registered_outputs : bool;
  gated_clock : bool;      (** BLE + CLB gated clocks (Tables 2-3) *)
}

val recommended_inputs : k:int -> n:int -> int
(** The paper's empirical rule I = (K/2)(N+1) (~98 % BLE utilisation). *)

val amdrel : t
(** The selected platform: K=4, N=5, I=12, Fc=1, Fs=3, length-1 segments,
    10x pass-transistor switches, gated clocks. *)

exception Invalid_params of string

val validate : t -> t
(** Identity on valid parameters. @raise Invalid_params otherwise. *)

val follows_input_rule : t -> bool

val clb_config_bits : t -> int
(** Configuration bits per CLB tile: LUT contents, register/clock-enable
    selects, and the fully connected input crossbar codes. *)
