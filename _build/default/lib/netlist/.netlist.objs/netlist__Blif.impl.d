lib/netlist/blif.ml: Array Buffer List Logic Printf Qm String Tt
