lib/netlist/blif.mli: Logic
