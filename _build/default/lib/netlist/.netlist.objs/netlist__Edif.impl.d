lib/netlist/edif.ml: Array Gatelib Hashtbl List Logic Printf Sexp String Tt
