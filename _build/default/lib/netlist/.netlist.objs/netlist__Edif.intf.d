lib/netlist/edif.mli: Logic Sexp
