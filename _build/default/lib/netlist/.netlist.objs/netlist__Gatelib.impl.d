lib/netlist/gatelib.ml: List Tt
