lib/netlist/gatelib.mli: Tt
