lib/netlist/logic.ml: Array Format Hashtbl List Printf String Tt
