lib/netlist/logic.mli: Format Hashtbl Tt
