lib/netlist/qm.ml: Array Hashtbl List Tt
