lib/netlist/qm.mli: Tt
