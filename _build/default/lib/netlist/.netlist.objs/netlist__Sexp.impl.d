lib/netlist/sexp.ml: Buffer List Printf String
