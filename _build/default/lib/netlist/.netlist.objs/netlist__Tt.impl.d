lib/netlist/tt.ml: Array List Stdlib String
