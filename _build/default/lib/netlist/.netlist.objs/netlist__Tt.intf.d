lib/netlist/tt.mli:
