lib/netlist/vcd.ml: Array Buffer Char List Logic Printf String
