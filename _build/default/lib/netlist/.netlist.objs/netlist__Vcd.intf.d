lib/netlist/vcd.mli: Logic
