lib/netlist/vhdl_ast.ml:
