lib/netlist/vhdl_lexer.ml: List Printf String
