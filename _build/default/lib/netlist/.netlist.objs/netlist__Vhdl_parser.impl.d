lib/netlist/vhdl_parser.ml: List Printf String Vhdl_ast Vhdl_lexer
