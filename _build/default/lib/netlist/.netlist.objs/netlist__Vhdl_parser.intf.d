lib/netlist/vhdl_parser.mli: Vhdl_ast
