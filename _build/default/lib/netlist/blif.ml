(* BLIF (Berkeley Logic Interchange Format) reader and writer.

   Supports the subset every tool in the flow exchanges: .model, .inputs,
   .outputs, .names with SOP covers (on-set, '1' output; off-set '0' output
   also accepted), .latch (re/fe/as triggering ignored — single implicit
   clock), .end, '#' comments and '\' line continuations. *)

exception Parse_error of int * string
(** Line number and message. *)

let fail line msg = raise (Parse_error (line, msg))

(* Tokenised logical lines (continuations folded, comments stripped). *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec fold acc pending pending_line lineno = function
    | [] ->
        let acc =
          if pending = "" then acc else (pending_line, pending) :: acc
        in
        List.rev acc
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        let lineno' = lineno + 1 in
        if line = "" then
          if pending = "" then fold acc "" 0 lineno' rest
          else fold acc pending pending_line lineno' rest
        else if String.length line > 0 && line.[String.length line - 1] = '\\'
        then begin
          let part = String.sub line 0 (String.length line - 1) in
          let start = if pending = "" then lineno else pending_line in
          fold acc (pending ^ part ^ " ") start lineno' rest
        end
        else begin
          let full = pending ^ line in
          let start = if pending = "" then lineno else pending_line in
          fold ((start, full) :: acc) "" 0 lineno' rest
        end
  in
  fold [] "" 0 1 raw

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* A raw .names body line: input pattern plus output value. *)
type cover_line = { pattern : string; value : char }

type raw_names = { out : string; ins : string list; cover : cover_line list }

let parse_cover_line line toks =
  match toks with
  | [ pat; v ] when String.length v = 1 && (v = "0" || v = "1") ->
      { pattern = pat; value = v.[0] }
  | [ v ] when v = "0" || v = "1" ->
      (* constant function: empty input list *)
      { pattern = ""; value = v.[0] }
  | _ -> fail line ("bad cover line: " ^ String.concat " " toks)

let literal_of_char line = function
  | '0' -> Tt.Zero
  | '1' -> Tt.One
  | '-' -> Tt.Dash
  | ch -> fail line (Printf.sprintf "bad cover character %c" ch)

(* Convert a parsed .names into a truth table. *)
let tt_of_names line (r : raw_names) =
  let n = List.length r.ins in
  if n > Tt.max_vars then
    fail line
      (Printf.sprintf ".names %s has %d inputs; max supported is %d" r.out n
         Tt.max_vars);
  let on_set = List.filter (fun c -> c.value = '1') r.cover in
  let off_set = List.filter (fun c -> c.value = '0') r.cover in
  match (on_set, off_set) with
  | [], [] -> Tt.const0 n
  | _ :: _, [] ->
      let cubes =
        List.map
          (fun c ->
            if String.length c.pattern <> n then
              fail line ("cover width mismatch for " ^ r.out);
            Array.init n (fun i -> literal_of_char line c.pattern.[i]))
          on_set
      in
      Tt.of_cubes n cubes
  | [], _ :: _ ->
      let cubes =
        List.map
          (fun c ->
            if String.length c.pattern <> n then
              fail line ("cover width mismatch for " ^ r.out);
            Array.init n (fun i -> literal_of_char line c.pattern.[i]))
          off_set
      in
      Tt.lnot (Tt.of_cubes n cubes)
  | _ -> fail line (".names " ^ r.out ^ " mixes on-set and off-set lines")

type statement =
  | Model of string
  | Inputs of string list
  | Outputs of string list
  | Names of int * raw_names
  | LatchStmt of { input : string; output : string; init : bool }
  | Clock of string
  | End

let parse_statements text =
  let lines = logical_lines text in
  let rec go acc = function
    | [] -> List.rev acc
    | (ln, line) :: rest -> (
        match tokens line with
        | ".model" :: [ nm ] -> go (Model nm :: acc) rest
        | ".inputs" :: ins -> go (Inputs ins :: acc) rest
        | ".outputs" :: outs -> go (Outputs outs :: acc) rest
        | ".clock" :: [ clk ] -> go (Clock clk :: acc) rest
        | ".latch" :: args ->
            let input, output, init =
              match args with
              | [ i; o ] -> (i, o, false)
              | [ i; o; init ] -> (i, o, init = "1")
              | [ i; o; _type; _ctl; init ] -> (i, o, init = "1")
              | [ i; o; _type; _ctl ] -> (i, o, false)
              | _ -> fail ln "bad .latch"
            in
            go (LatchStmt { input; output; init } :: acc) rest
        | ".names" :: sigs -> (
            match List.rev sigs with
            | out :: rev_ins ->
                let ins = List.rev rev_ins in
                (* gather cover lines until the next dot-directive *)
                let rec covers cov = function
                  | (ln2, l2) :: more when String.length l2 > 0 && l2.[0] <> '.'
                    ->
                      covers (parse_cover_line ln2 (tokens l2) :: cov) more
                  | remaining -> (List.rev cov, remaining)
                in
                let cover, remaining = covers [] rest in
                go (Names (ln, { out; ins; cover }) :: acc) remaining
            | [] -> fail ln ".names without signals")
        | ".end" :: _ -> go (End :: acc) rest
        | ".exdc" :: _ -> go acc rest (* don't-care networks ignored *)
        | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
            fail ln ("unsupported directive " ^ tok)
        | _ -> fail ln ("unexpected line: " ^ line))
  in
  go [] lines

(* Build a Logic network.  Signals may be referenced before their driver is
   seen, so unresolved references become provisional inputs upgraded later. *)
let of_string text =
  let stmts = parse_statements text in
  let net = Logic.create () in
  let declared_inputs = ref [] in
  let declared_outputs = ref [] in
  let lookup nm =
    match Logic.find net nm with
    | Some id -> id
    | None -> Logic.add_input net nm
  in
  List.iter
    (function
      | Model nm -> net.Logic.model <- nm
      | Inputs ins ->
          declared_inputs := !declared_inputs @ ins;
          List.iter (fun nm -> ignore (lookup nm)) ins
      | Outputs outs -> declared_outputs := !declared_outputs @ outs
      | Clock clk -> net.Logic.clock <- Some clk
      | Names (ln, r) ->
          let tt = tt_of_names ln r in
          let fanins = Array.of_list (List.map lookup r.ins) in
          let id = lookup r.out in
          (match Logic.driver net id with
          | Logic.Input when not (List.mem r.out !declared_inputs) ->
              if Array.length fanins = 0 then
                Logic.set_driver net id (Logic.Const (Tt.is_const1 tt))
              else Logic.set_driver net id (Logic.Gate { tt; fanins })
          | Logic.Input -> fail ln (r.out ^ " is a declared input")
          | _ -> fail ln ("multiple drivers for " ^ r.out))
      | LatchStmt { input; output; init } ->
          let data = lookup input in
          let id = lookup output in
          (match Logic.driver net id with
          | Logic.Input when not (List.mem output !declared_inputs) ->
              Logic.set_driver net id (Logic.Latch { data; init })
          | _ -> fail 0 ("multiple drivers for latch " ^ output))
      | End -> ())
    stmts;
  List.iter (fun nm -> Logic.set_output net (lookup nm)) !declared_outputs;
  net

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* ---------- writer ---------- *)

let string_of_cube cube =
  String.init (Array.length cube) (fun i ->
      match cube.(i) with Tt.Zero -> '0' | Tt.One -> '1' | Tt.Dash -> '-')

let to_buffer buf (net : Logic.t) =
  let add = Buffer.add_string buf in
  add (Printf.sprintf ".model %s\n" net.Logic.model);
  let ins = Logic.inputs net in
  if ins <> [] then begin
    add ".inputs";
    List.iter (fun id -> add (" " ^ Logic.name net id)) ins;
    add "\n"
  end;
  if Logic.outputs net <> [] then begin
    add ".outputs";
    List.iter (fun id -> add (" " ^ Logic.name net id)) (Logic.outputs net);
    add "\n"
  end;
  (match net.Logic.clock with
  | Some clk -> add (Printf.sprintf ".clock %s\n" clk)
  | None -> ());
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Input -> ()
    | Logic.Const b ->
        add (Printf.sprintf ".names %s\n" (Logic.name net id));
        if b then add "1\n"
    | Logic.Latch { data; init } ->
        add
          (Printf.sprintf ".latch %s %s %d\n" (Logic.name net data)
             (Logic.name net id)
             (if init then 1 else 0))
    | Logic.Gate { tt; fanins } ->
        add ".names";
        Array.iter (fun f -> add (" " ^ Logic.name net f)) fanins;
        add (" " ^ Logic.name net id ^ "\n");
        if Tt.is_const1 tt then
          (* constant-1 over n inputs: one all-dash cube keeps the cover
             width consistent with the fanin list *)
          add
            (if Array.length fanins = 0 then "1\n"
             else String.make (Array.length fanins) '-' ^ " 1\n")
        else
          (* minimum SOP cover (exact Quine-McCluskey; espresso's role) *)
          List.iter
            (fun cube -> add (string_of_cube cube ^ " 1\n"))
            (Qm.min_cover tt)
  done;
  add ".end\n"

let to_string net =
  let buf = Buffer.create 1024 in
  to_buffer buf net;
  Buffer.contents buf

let to_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
