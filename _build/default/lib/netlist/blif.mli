(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supports the subset the flow's tools exchange: [.model], [.inputs],
    [.outputs], [.names] with SOP covers (on-set or off-set), [.latch],
    [.clock], [.end], comments and line continuations. *)

exception Parse_error of int * string
(** Line number and message. *)

val of_string : string -> Logic.t
(** @raise Parse_error on malformed input. *)

val of_file : string -> Logic.t

val to_string : Logic.t -> string
(** Gate covers are written as on-set cubes via {!Tt.to_cubes}. *)

val to_file : string -> Logic.t -> unit
