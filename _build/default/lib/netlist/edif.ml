(* EDIF 2.0.0 netlists over the generic gate library.

   The representation keeps exactly what the flow needs: the design name,
   the top-level ports, gate/DFF instances and the nets joining ports.
   [to_sexp]/[of_sexp] give the concrete EDIF syntax; [of_logic]/[to_logic]
   convert to and from the Logic IR (the network must already be expressed
   in library gates — DIVINER's decomposition guarantees that). *)

type direction = In | Out

type instance = { inst_name : string; cell : string }

(* A connection point: (Some instance, port) or (None, top-level port). *)
type portref = { instance : string option; port : string }

type net = { net_name : string; joined : portref list }

type t = {
  design : string;
  ports : (string * direction) list;
  instances : instance list;
  nets : net list;
}

exception Invalid_edif of string

let fail msg = raise (Invalid_edif msg)

(* ---------- conversion to the concrete EDIF syntax ---------- *)

let library_name = "AMDREL_LIB"
let design_library = "DESIGNS"

let port_sexp (name, dir) =
  Sexp.List
    [
      Sexp.Atom "port";
      Sexp.Atom name;
      Sexp.List
        [
          Sexp.Atom "direction";
          Sexp.Atom (match dir with In -> "INPUT" | Out -> "OUTPUT");
        ];
    ]

let cell_sexp (c : Gatelib.cell) =
  let ports =
    List.map (fun p -> (p, In)) c.Gatelib.in_ports
    @ [ (c.Gatelib.out_port, Out) ]
  in
  Sexp.List
    [
      Sexp.Atom "cell";
      Sexp.Atom c.Gatelib.cell_name;
      Sexp.List [ Sexp.Atom "cellType"; Sexp.Atom "GENERIC" ];
      Sexp.List
        [
          Sexp.Atom "view";
          Sexp.Atom "net";
          Sexp.List [ Sexp.Atom "viewType"; Sexp.Atom "NETLIST" ];
          Sexp.List (Sexp.Atom "interface" :: List.map port_sexp ports);
        ];
    ]

let dff_cell_sexp =
  Sexp.List
    [
      Sexp.Atom "cell";
      Sexp.Atom Gatelib.dff_name;
      Sexp.List [ Sexp.Atom "cellType"; Sexp.Atom "GENERIC" ];
      Sexp.List
        [
          Sexp.Atom "view";
          Sexp.Atom "net";
          Sexp.List [ Sexp.Atom "viewType"; Sexp.Atom "NETLIST" ];
          Sexp.List
            (Sexp.Atom "interface"
            :: List.map port_sexp
                 [ (Gatelib.dff_in, In); (Gatelib.dff_out, Out) ]);
        ];
    ]

let portref_sexp (r : portref) =
  match r.instance with
  | None -> Sexp.List [ Sexp.Atom "portRef"; Sexp.Atom r.port ]
  | Some inst ->
      Sexp.List
        [
          Sexp.Atom "portRef";
          Sexp.Atom r.port;
          Sexp.List [ Sexp.Atom "instanceRef"; Sexp.Atom inst ];
        ]

let to_sexp t =
  let instance_sexp (i : instance) =
    Sexp.List
      [
        Sexp.Atom "instance";
        Sexp.Atom i.inst_name;
        Sexp.List
          [
            Sexp.Atom "viewRef";
            Sexp.Atom "net";
            Sexp.List
              [
                Sexp.Atom "cellRef";
                Sexp.Atom i.cell;
                Sexp.List [ Sexp.Atom "libraryRef"; Sexp.Atom library_name ];
              ];
          ];
      ]
  in
  let net_sexp (n : net) =
    Sexp.List
      [
        Sexp.Atom "net";
        Sexp.Atom n.net_name;
        Sexp.List (Sexp.Atom "joined" :: List.map portref_sexp n.joined);
      ]
  in
  Sexp.List
    [
      Sexp.Atom "edif";
      Sexp.Atom t.design;
      Sexp.List
        [ Sexp.Atom "edifVersion"; Sexp.Atom "2"; Sexp.Atom "0"; Sexp.Atom "0" ];
      Sexp.List [ Sexp.Atom "edifLevel"; Sexp.Atom "0" ];
      Sexp.List
        [
          Sexp.Atom "keywordMap";
          Sexp.List [ Sexp.Atom "keywordLevel"; Sexp.Atom "0" ];
        ];
      Sexp.List
        (Sexp.Atom "library" :: Sexp.Atom library_name
        :: Sexp.List [ Sexp.Atom "edifLevel"; Sexp.Atom "0" ]
        :: (List.map cell_sexp Gatelib.comb_cells @ [ dff_cell_sexp ]));
      Sexp.List
        [
          Sexp.Atom "library";
          Sexp.Atom design_library;
          Sexp.List [ Sexp.Atom "edifLevel"; Sexp.Atom "0" ];
          Sexp.List
            [
              Sexp.Atom "cell";
              Sexp.Atom t.design;
              Sexp.List [ Sexp.Atom "cellType"; Sexp.Atom "GENERIC" ];
              Sexp.List
                [
                  Sexp.Atom "view";
                  Sexp.Atom "net";
                  Sexp.List [ Sexp.Atom "viewType"; Sexp.Atom "NETLIST" ];
                  Sexp.List (Sexp.Atom "interface" :: List.map port_sexp t.ports);
                  Sexp.List
                    (Sexp.Atom "contents"
                    :: (List.map instance_sexp t.instances
                       @ List.map net_sexp t.nets));
                ];
            ];
        ];
      Sexp.List
        [
          Sexp.Atom "design";
          Sexp.Atom t.design;
          Sexp.List
            [
              Sexp.Atom "cellRef";
              Sexp.Atom t.design;
              Sexp.List [ Sexp.Atom "libraryRef"; Sexp.Atom design_library ];
            ];
        ];
    ]

let to_string t = Sexp.to_string (to_sexp t)

let to_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc

(* ---------- parsing ---------- *)

let atom_exn msg = function
  | Some (Sexp.Atom a) -> a
  | _ -> fail msg

let of_sexp sexp =
  if Sexp.keyword sexp <> Some "edif" then fail "not an EDIF file";
  let design =
    match Sexp.body sexp with
    | Sexp.Atom d :: _ -> d
    | _ -> fail "missing design name"
  in
  (* find the design cell: the cell whose name matches the (design ...)
     cellRef, or failing that the last cell of the last library *)
  let libraries = Sexp.children "library" sexp in
  let top_cell_name =
    match Sexp.child "design" sexp with
    | Some d -> (
        match Sexp.child "cellref" d with
        | Some cr -> atom_exn "bad cellRef" (List.nth_opt (Sexp.body cr) 0)
        | None -> design)
    | None -> design
  in
  let cells = List.concat_map (Sexp.children "cell") libraries in
  let top_cell =
    match
      List.find_opt
        (fun c ->
          match Sexp.body c with
          | Sexp.Atom n :: _ -> n = top_cell_name
          | _ -> false)
        cells
    with
    | Some c -> c
    | None -> (
        (* fall back to the only cell that has contents *)
        match
          List.find_opt
            (fun c ->
              match Sexp.child "view" c with
              | Some v -> Sexp.child "contents" v <> None
              | None -> false)
            cells
        with
        | Some c -> c
        | None -> fail ("cannot find design cell " ^ top_cell_name))
  in
  let view =
    match Sexp.child "view" top_cell with
    | Some v -> v
    | None -> fail "design cell has no view"
  in
  let ports =
    match Sexp.child "interface" view with
    | None -> []
    | Some itf ->
        List.map
          (fun p ->
            let name = atom_exn "bad port" (List.nth_opt (Sexp.body p) 0) in
            let dir =
              match Sexp.child "direction" p with
              | Some d -> (
                  match List.nth_opt (Sexp.body d) 0 with
                  | Some (Sexp.Atom a) when String.uppercase_ascii a = "OUTPUT"
                    ->
                      Out
                  | _ -> In)
              | None -> In
            in
            (name, dir))
          (Sexp.children "port" itf)
  in
  let contents =
    match Sexp.child "contents" view with
    | Some c -> c
    | None -> fail "design cell has no contents"
  in
  let instances =
    List.map
      (fun i ->
        let inst_name = atom_exn "bad instance" (List.nth_opt (Sexp.body i) 0) in
        let cell =
          match Sexp.child "viewref" i with
          | Some vr -> (
              match Sexp.child "cellref" vr with
              | Some cr -> atom_exn "bad cellRef" (List.nth_opt (Sexp.body cr) 0)
              | None -> fail ("instance " ^ inst_name ^ " without cellRef"))
          | None -> (
              (* some writers put cellRef directly under instance *)
              match Sexp.child "cellref" i with
              | Some cr -> atom_exn "bad cellRef" (List.nth_opt (Sexp.body cr) 0)
              | None -> fail ("instance " ^ inst_name ^ " without cellRef"))
        in
        { inst_name; cell })
      (Sexp.children "instance" contents)
  in
  let nets =
    List.map
      (fun nt ->
        let net_name = atom_exn "bad net" (List.nth_opt (Sexp.body nt) 0) in
        let joined =
          match Sexp.child "joined" nt with
          | None -> []
          | Some j ->
              List.map
                (fun pr ->
                  let port =
                    atom_exn "bad portRef" (List.nth_opt (Sexp.body pr) 0)
                  in
                  let instance =
                    match Sexp.child "instanceref" pr with
                    | Some ir ->
                        Some (atom_exn "bad instanceRef"
                                (List.nth_opt (Sexp.body ir) 0))
                    | None -> None
                  in
                  { instance; port })
                (Sexp.children "portref" j)
        in
        { net_name; joined })
      (Sexp.children "net" contents)
  in
  { design; ports; instances; nets }

let of_string text = of_sexp (Sexp.of_string text)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* ---------- Logic conversion ---------- *)

(* EDIF identifiers: letters, digits, underscore; must not start with a
   digit.  (DRUID applies this as part of netlist normalisation.) *)
let sanitize_ident nm =
  let nm =
    String.map
      (fun ch ->
        if (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9') || ch = '_'
        then ch
        else '_')
      nm
  in
  if nm = "" then "_"
  else if nm.[0] >= '0' && nm.[0] <= '9' then "n" ^ nm
  else nm

(* Convert a Logic network (already in library gates) to EDIF. *)
let of_logic (net : Logic.t) =
  (* unique sanitized names per signal *)
  let used = Hashtbl.create 64 in
  let signal_name = Array.make (Logic.signal_count net) "" in
  for id = 0 to Logic.signal_count net - 1 do
    let base = sanitize_ident (Logic.name net id) in
    let rec unique nm k =
      if Hashtbl.mem used nm then unique (Printf.sprintf "%s_%d" base k) (k + 1)
      else nm
    in
    let nm = unique base 0 in
    Hashtbl.replace used nm ();
    signal_name.(id) <- nm
  done;
  let ports =
    List.map (fun id -> (signal_name.(id), In)) (Logic.inputs net)
    @ List.map (fun id -> (signal_name.(id), Out)) (Logic.outputs net)
  in
  let instances = ref [] and nets = Hashtbl.create 64 in
  (* nets keyed by driving signal id: accumulate portrefs *)
  let touch id = if not (Hashtbl.mem nets id) then Hashtbl.replace nets id [] in
  let join id r = touch id; Hashtbl.replace nets id (r :: Hashtbl.find nets id) in
  (* top-level port connections *)
  List.iter (fun id -> join id { instance = None; port = signal_name.(id) })
    (Logic.inputs net);
  List.iter (fun id -> join id { instance = None; port = signal_name.(id) })
    (Logic.outputs net);
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Input -> touch id
    | Logic.Const b ->
        let inst = "I_" ^ signal_name.(id) in
        instances :=
          { inst_name = inst; cell = (if b then "CONST1" else "CONST0") }
          :: !instances;
        join id { instance = Some inst; port = "Y" }
    | Logic.Latch { data; init = _ } ->
        let inst = "I_" ^ signal_name.(id) in
        instances := { inst_name = inst; cell = Gatelib.dff_name } :: !instances;
        join id { instance = Some inst; port = Gatelib.dff_out };
        join data { instance = Some inst; port = Gatelib.dff_in }
    | Logic.Gate { tt; fanins } -> (
        match Gatelib.of_tt tt with
        | None ->
            fail
              (Printf.sprintf "signal %s is not a library gate (tt %s)"
                 (Logic.name net id) (Tt.to_string tt))
        | Some cell ->
            let inst = "I_" ^ signal_name.(id) in
            instances := { inst_name = inst; cell = cell.Gatelib.cell_name }
                         :: !instances;
            join id { instance = Some inst; port = cell.Gatelib.out_port };
            List.iteri
              (fun k port -> join fanins.(k) { instance = Some inst; port })
              cell.Gatelib.in_ports)
  done;
  let nets =
    Hashtbl.fold
      (fun id joined acc ->
        { net_name = signal_name.(id); joined = List.rev joined } :: acc)
      nets []
    |> List.sort (fun a b -> compare a.net_name b.net_name)
  in
  {
    design = sanitize_ident net.Logic.model;
    ports;
    instances = List.rev !instances;
    nets;
  }

(* Convert parsed EDIF back to a Logic network. *)
let to_logic t =
  let net = Logic.create ~model:t.design () in
  (* map connection point -> net; find each net's driver *)
  let point_key r =
    match r.instance with
    | None -> "@top:" ^ r.port
    | Some i -> i ^ ":" ^ r.port
  in
  let net_of_point = Hashtbl.create 64 in
  List.iter
    (fun n ->
      List.iter (fun r -> Hashtbl.replace net_of_point (point_key r) n.net_name)
        n.joined)
    t.nets;
  let cell_of_inst = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace cell_of_inst i.inst_name i.cell)
    t.instances;
  (* every net becomes a signal; resolve drivers afterwards *)
  let signal nm =
    match Logic.find net nm with
    | Some id -> id
    | None -> Logic.add_input net nm
  in
  let net_for r =
    match Hashtbl.find_opt net_of_point (point_key r) with
    | Some n -> n
    | None -> fail ("unconnected port " ^ point_key r)
  in
  (* top input ports drive their nets *)
  List.iter
    (fun (p, dir) ->
      if dir = In then ignore (signal (net_for { instance = None; port = p })))
    t.ports;
  (* instances drive nets from their output ports *)
  List.iter
    (fun (i : instance) ->
      if i.cell = Gatelib.dff_name then begin
        let q = signal (net_for { instance = Some i.inst_name; port = Gatelib.dff_out }) in
        let d = signal (net_for { instance = Some i.inst_name; port = Gatelib.dff_in }) in
        Logic.set_driver net q (Logic.Latch { data = d; init = false })
      end
      else begin
        let cell = Gatelib.find_exn i.cell in
        let y = signal (net_for { instance = Some i.inst_name; port = cell.Gatelib.out_port }) in
        let fanins =
          Array.of_list
            (List.map
               (fun p -> signal (net_for { instance = Some i.inst_name; port = p }))
               cell.Gatelib.in_ports)
        in
        if cell.Gatelib.in_ports = [] then
          Logic.set_driver net y (Logic.Const (Tt.is_const1 cell.Gatelib.tt))
        else Logic.set_driver net y (Logic.Gate { tt = cell.Gatelib.tt; fanins })
      end)
    t.instances;
  (* top output ports *)
  List.iter
    (fun (p, dir) ->
      if dir = Out then
        Logic.set_output net (signal (net_for { instance = None; port = p })))
    t.ports;
  net
