(** EDIF 2.0.0 netlists over the generic gate library ({!Gatelib}).

    The representation keeps what the flow needs: design name, top-level
    ports, gate/DFF instances and the nets joining ports.  Conversion to
    and from the Logic IR requires the network to be expressed in library
    gates (DIVINER's decomposition guarantees that). *)

type direction = In | Out

type instance = { inst_name : string; cell : string }

type portref = { instance : string option; port : string }
(** A connection point: (Some instance, port) or (None, top-level port). *)

type net = { net_name : string; joined : portref list }

type t = {
  design : string;
  ports : (string * direction) list;
  instances : instance list;
  nets : net list;
}

exception Invalid_edif of string

val library_name : string
val design_library : string

val to_sexp : t -> Sexp.t
val to_string : t -> string
val to_file : string -> t -> unit

val of_sexp : Sexp.t -> t
(** @raise Invalid_edif on a structurally invalid netlist. *)

val of_string : string -> t
val of_file : string -> t

val sanitize_ident : string -> string
(** EDIF identifier discipline: alphanumerics and underscore, not starting
    with a digit (applied by DRUID as part of normalisation). *)

val of_logic : Logic.t -> t
(** @raise Invalid_edif if a gate is not a library cell. *)

val to_logic : t -> Logic.t
(** Signals take the EDIF net names.
    @raise Invalid_edif on dangling ports or unknown cells. *)
