(* The generic gate library shared by DIVINER's EDIF output, DRUID and
   E2FMT.  Each combinational cell has ordered input ports, one output port
   and a defining truth table; DFF is the one sequential cell. *)

type cell = {
  cell_name : string;
  in_ports : string list;
  out_port : string;
  tt : Tt.t; (* over the in_ports, in order *)
}

let comb_cells =
  [
    { cell_name = "CONST0"; in_ports = []; out_port = "Y"; tt = Tt.const0 0 };
    { cell_name = "CONST1"; in_ports = []; out_port = "Y"; tt = Tt.const1 0 };
    { cell_name = "BUF"; in_ports = [ "A" ]; out_port = "Y"; tt = Tt.buf };
    { cell_name = "INV"; in_ports = [ "A" ]; out_port = "Y"; tt = Tt.inv };
    { cell_name = "AND2"; in_ports = [ "A"; "B" ]; out_port = "Y"; tt = Tt.and_n 2 };
    { cell_name = "OR2"; in_ports = [ "A"; "B" ]; out_port = "Y"; tt = Tt.or_n 2 };
    { cell_name = "XOR2"; in_ports = [ "A"; "B" ]; out_port = "Y"; tt = Tt.xor_n 2 };
    { cell_name = "NAND2"; in_ports = [ "A"; "B" ]; out_port = "Y"; tt = Tt.nand_n 2 };
    { cell_name = "NOR2"; in_ports = [ "A"; "B" ]; out_port = "Y"; tt = Tt.nor_n 2 };
    { cell_name = "XNOR2"; in_ports = [ "A"; "B" ]; out_port = "Y"; tt = Tt.xnor_n 2 };
    { cell_name = "AND3"; in_ports = [ "A"; "B"; "C" ]; out_port = "Y"; tt = Tt.and_n 3 };
    { cell_name = "OR3"; in_ports = [ "A"; "B"; "C" ]; out_port = "Y"; tt = Tt.or_n 3 };
    (* MUX2: Y = S ? A : B *)
    { cell_name = "MUX2"; in_ports = [ "S"; "A"; "B" ]; out_port = "Y"; tt = Tt.mux2 };
  ]

(* The sequential cell: D in, Q out; the clock is an implicit global. *)
let dff_name = "DFF"
let dff_in = "D"
let dff_out = "Q"

let find name =
  List.find_opt (fun c -> c.cell_name = name) comb_cells

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg ("Gatelib: unknown cell " ^ name)

(* Cell whose truth table equals [tt] exactly (ports in fanin order). *)
let of_tt tt = List.find_opt (fun c -> Tt.equal c.tt tt) comb_cells
