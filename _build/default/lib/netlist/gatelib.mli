(** The generic gate library shared by DIVINER's EDIF output, DRUID and
    E2FMT.  Each combinational cell has ordered input ports, one output
    port and a defining truth table; DFF is the one sequential cell. *)

type cell = {
  cell_name : string;
  in_ports : string list;
  out_port : string;
  tt : Tt.t; (** over the in_ports, in order *)
}

val comb_cells : cell list

val dff_name : string
val dff_in : string
val dff_out : string

val find : string -> cell option

val find_exn : string -> cell
(** @raise Invalid_argument on an unknown cell name. *)

val of_tt : Tt.t -> cell option
(** The cell whose table equals the argument exactly (fanin order). *)
