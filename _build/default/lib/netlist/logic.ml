(* Generic logic network: the interchange IR of the whole CAD flow.

   A network is a set of named signals; each signal is driven by a primary
   input, a constant, a combinational gate (truth table over fanins), or a
   latch (the flow's flip-flops).  BLIF, EDIF and the VHDL elaborator all
   read/write this structure; SIS-style optimisation and LUT mapping
   transform it in place or into a fresh network. *)

type driver =
  | Input
  | Const of bool
  | Gate of { tt : Tt.t; fanins : int array }
  | Latch of { data : int; init : bool }

type t = {
  mutable model : string;
  mutable drivers : driver array;  (* indexed by signal id *)
  mutable names : string array;
  mutable count : int;
  by_name : (string, int) Hashtbl.t;
  mutable outputs : int list;      (* primary outputs, in declaration order *)
  mutable clock : string option;   (* single clock domain, by convention *)
}

let create ?(model = "top") () =
  {
    model;
    drivers = Array.make 16 Input;
    names = Array.make 16 "";
    count = 0;
    by_name = Hashtbl.create 64;
    outputs = [];
    clock = None;
  }

let signal_count t = t.count

let name t id = t.names.(id)

let driver t id = t.drivers.(id)

let find t nm = Hashtbl.find_opt t.by_name nm

let find_exn t nm =
  match find t nm with
  | Some id -> id
  | None -> invalid_arg ("Logic: unknown signal " ^ nm)

let grow t =
  let cap = Array.length t.drivers in
  if t.count >= cap then begin
    let nd = Array.make (2 * cap) Input and nn = Array.make (2 * cap) "" in
    Array.blit t.drivers 0 nd 0 t.count;
    Array.blit t.names 0 nn 0 t.count;
    t.drivers <- nd;
    t.names <- nn
  end

let add t nm drv =
  if Hashtbl.mem t.by_name nm then invalid_arg ("Logic.add: duplicate " ^ nm);
  grow t;
  let id = t.count in
  t.drivers.(id) <- drv;
  t.names.(id) <- nm;
  t.count <- t.count + 1;
  Hashtbl.replace t.by_name nm id;
  id

let fresh_name t prefix =
  let rec go k =
    let nm = Printf.sprintf "%s_%d" prefix k in
    if Hashtbl.mem t.by_name nm then go (k + 1) else nm
  in
  if Hashtbl.mem t.by_name prefix then go 0 else prefix

let add_input t nm = add t nm Input

let add_const t nm v = add t nm (Const v)

let add_gate t nm tt fanins =
  if Tt.arity tt <> Array.length fanins then
    invalid_arg "Logic.add_gate: arity mismatch";
  add t nm (Gate { tt; fanins })

let add_latch t nm ~data ~init = add t nm (Latch { data; init })

(* Replace the driver of an existing signal (used by optimisation passes). *)
let set_driver t id drv = t.drivers.(id) <- drv

let set_output t id =
  if not (List.mem id t.outputs) then t.outputs <- t.outputs @ [ id ]

let outputs t = t.outputs

let inputs t =
  List.filter
    (fun id -> match t.drivers.(id) with Input -> true | _ -> false)
    (List.init t.count (fun i -> i))

let latches t =
  List.filter
    (fun id -> match t.drivers.(id) with Latch _ -> true | _ -> false)
    (List.init t.count (fun i -> i))

let gates t =
  List.filter
    (fun id -> match t.drivers.(id) with Gate _ -> true | _ -> false)
    (List.init t.count (fun i -> i))

let fanins t id =
  match t.drivers.(id) with
  | Gate g -> Array.to_list g.fanins
  | Latch l -> [ l.data ]
  | Input | Const _ -> []

(* Fanout counts over gates, latches and primary outputs. *)
let fanout_counts t =
  let counts = Array.make t.count 0 in
  for id = 0 to t.count - 1 do
    List.iter (fun f -> counts.(f) <- counts.(f) + 1) (fanins t id)
  done;
  List.iter (fun o -> counts.(o) <- counts.(o) + 1) t.outputs;
  counts

exception Combinational_cycle of string

(* Topological order of the combinational part: inputs, constants and
   latches are sources; gate fanins must precede the gate. *)
let topo_order t =
  let state = Array.make t.count 0 in
  (* 0 unvisited, 1 visiting, 2 done *)
  let order = ref [] in
  let rec visit id =
    if state.(id) = 1 then raise (Combinational_cycle t.names.(id));
    if state.(id) = 0 then begin
      state.(id) <- 1;
      (match t.drivers.(id) with
      | Gate g -> Array.iter visit g.fanins
      | Input | Const _ | Latch _ -> ());
      state.(id) <- 2;
      order := id :: !order
    end
  in
  for id = 0 to t.count - 1 do
    visit id
  done;
  List.rev !order

(* Logic depth (levels of gates; inputs/latches at level 0). *)
let depth t =
  let level = Array.make t.count 0 in
  List.iter
    (fun id ->
      match t.drivers.(id) with
      | Gate g ->
          level.(id) <-
            1 + Array.fold_left (fun m f -> max m level.(f)) 0 g.fanins
      | Input | Const _ | Latch _ -> level.(id) <- 0)
    (topo_order t);
  Array.fold_left max 0 level

(* Deep copy (drivers are immutable values, arrays are rebuilt). *)
let copy t =
  {
    model = t.model;
    drivers = Array.sub t.drivers 0 (Array.length t.drivers);
    names = Array.sub t.names 0 (Array.length t.names);
    count = t.count;
    by_name = Hashtbl.copy t.by_name;
    outputs = t.outputs;
    clock = t.clock;
  }

(* ---------- simulation ---------- *)

type sim_state = {
  values : bool array;        (* current signal values *)
  order : int list;           (* cached topo order *)
}

let sim_init t =
  let st = { values = Array.make t.count false; order = topo_order t } in
  (* latches start at their initial values *)
  List.iter
    (fun id ->
      match t.drivers.(id) with
      | Latch l -> st.values.(id) <- l.init
      | _ -> ())
    (List.init t.count (fun i -> i));
  st

(* Evaluate the combinational logic for the given input assignment (a
   function name -> bool); latches keep their current outputs. *)
let sim_eval t st input_of =
  List.iter
    (fun id ->
      match t.drivers.(id) with
      | Input -> st.values.(id) <- input_of t.names.(id)
      | Const b -> st.values.(id) <- b
      | Gate g ->
          let row = ref 0 in
          Array.iteri
            (fun i f -> if st.values.(f) then row := !row lor (1 lsl i))
            g.fanins;
          st.values.(id) <- Tt.eval g.tt !row
      | Latch _ -> ())
    st.order

(* Clock edge: every latch captures its data input (call after sim_eval). *)
let sim_step t st =
  let next =
    List.filter_map
      (fun id ->
        match t.drivers.(id) with
        | Latch l -> Some (id, st.values.(l.data))
        | _ -> None)
      (List.init t.count (fun i -> i))
  in
  List.iter (fun (id, v) -> st.values.(id) <- v) next

let sim_value st id = st.values.(id)

(* Bit index of a vector signal name: accepts both the elaborator's
   "base[i]" and the EDIF-sanitised "base_i_" forms. *)
let vector_bit ~base nm =
  let n = String.length nm and bn = String.length base in
  if n <= bn || String.sub nm 0 bn <> base then None
  else
    let rest = String.sub nm bn (n - bn) in
    let digits =
      if String.length rest >= 3 && rest.[0] = '[' && rest.[String.length rest - 1] = ']'
      then Some (String.sub rest 1 (String.length rest - 2))
      else if String.length rest >= 3 && rest.[0] = '_'
              && rest.[String.length rest - 1] = '_'
      then Some (String.sub rest 1 (String.length rest - 2))
      else None
    in
    match digits with
    | Some d when d <> "" && String.for_all (fun c -> c >= '0' && c <= '9') d ->
        Some (int_of_string d)
    | _ -> None

(* All signals forming vector [base], as (bit index, signal id). *)
let find_vector t base =
  let out = ref [] in
  for id = 0 to t.count - 1 do
    match vector_bit ~base t.names.(id) with
    | Some i -> out := (i, id) :: !out
    | None -> ()
  done;
  List.sort compare !out

(* Read a vector's integer value from a simulation state (output/any bits). *)
let read_vector t st base =
  List.fold_left
    (fun acc (i, id) -> if sim_value st id then acc lor (1 lsl i) else acc)
    0 (find_vector t base)

(* Drive a vector input in an input table keyed by signal name. *)
let set_vector_inputs t tbl base width v =
  ignore width;
  List.iter
    (fun (i, id) -> Hashtbl.replace tbl t.names.(id) ((v lsr i) land 1 = 1))
    (find_vector t base)

(* One-call combinational simulation: returns output values by name. *)
let simulate_comb t input_of =
  let st = sim_init t in
  sim_eval t st input_of;
  List.map (fun id -> (t.names.(id), st.values.(id))) t.outputs

(* ---------- statistics ---------- *)

type stats = {
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  n_latches : int;
  levels : int;
}

let stats t =
  {
    n_inputs = List.length (inputs t);
    n_outputs = List.length t.outputs;
    n_gates = List.length (gates t);
    n_latches = List.length (latches t);
    levels = depth t;
  }

let pp_stats fmt s =
  Format.fprintf fmt "%d PI, %d PO, %d gates, %d latches, depth %d"
    s.n_inputs s.n_outputs s.n_gates s.n_latches s.levels
