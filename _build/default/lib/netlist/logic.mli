(** Generic logic network: the interchange IR of the whole CAD flow.

    A network is a set of named signals; each signal is driven by a
    primary input, a constant, a combinational gate (truth table over
    fanins) or a latch.  BLIF, EDIF and the VHDL elaborator read/write
    this structure; optimisation and LUT mapping transform it. *)

type driver =
  | Input
  | Const of bool
  | Gate of { tt : Tt.t; fanins : int array }
  | Latch of { data : int; init : bool }

type t = {
  mutable model : string;
  mutable drivers : driver array;
  mutable names : string array;
  mutable count : int;
  by_name : (string, int) Hashtbl.t;
  mutable outputs : int list;     (** primary outputs, declaration order *)
  mutable clock : string option;  (** the single clock domain, by name *)
}

val create : ?model:string -> unit -> t

val signal_count : t -> int

val name : t -> int -> string

val driver : t -> int -> driver

val find : t -> string -> int option

val find_exn : t -> string -> int
(** @raise Invalid_argument on an unknown name. *)

val add : t -> string -> driver -> int
(** @raise Invalid_argument on a duplicate name. *)

val fresh_name : t -> string -> string
(** [prefix] itself if unused, else ["prefix_<k>"]. *)

val add_input : t -> string -> int
val add_const : t -> string -> bool -> int

val add_gate : t -> string -> Tt.t -> int array -> int
(** @raise Invalid_argument if the table arity and fanin count differ. *)

val add_latch : t -> string -> data:int -> init:bool -> int

val set_driver : t -> int -> driver -> unit
(** Replace a signal's driver (optimisation passes). *)

val set_output : t -> int -> unit
(** Mark a primary output (idempotent; order preserved). *)

val outputs : t -> int list
val inputs : t -> int list
val latches : t -> int list
val gates : t -> int list

val fanins : t -> int -> int list
(** Gate fanins, a latch's data, or [] for sources. *)

val fanout_counts : t -> int array
(** References per signal from gates, latches and primary outputs. *)

exception Combinational_cycle of string
(** Raised (with a signal name) by {!topo_order} on a combinational loop. *)

val topo_order : t -> int list
(** Topological order; inputs, constants and latches are sources. *)

val depth : t -> int
(** Combinational gate levels (sources at level 0). *)

val copy : t -> t
(** Independent deep copy. *)

(** {2 Vector-name helpers}

    Vector bits are named ["base[i]"] by the elaborator and ["base_i_"]
    after EDIF sanitisation; both forms resolve. *)

val vector_bit : base:string -> string -> int option
val find_vector : t -> string -> (int * int) list
(** (bit index, signal id) sorted by bit. *)

(** {2 Simulation} *)

type sim_state

val sim_init : t -> sim_state
(** Fresh state; latches start at their initial values. *)

val sim_eval : t -> sim_state -> (string -> bool) -> unit
(** Settle the combinational logic under the given input assignment. *)

val sim_step : t -> sim_state -> unit
(** Clock edge: every latch captures its data (call after {!sim_eval}). *)

val sim_value : sim_state -> int -> bool

val simulate_comb : t -> (string -> bool) -> (string * bool) list
(** One-call combinational evaluation; output values by name. *)

val read_vector : t -> sim_state -> string -> int
(** Integer value of a named vector in the state. *)

val set_vector_inputs :
  t -> (string, bool) Hashtbl.t -> string -> int -> int -> unit
(** Drive a vector in an input table keyed by signal name. *)

(** {2 Statistics} *)

type stats = {
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  n_latches : int;
  levels : int;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
