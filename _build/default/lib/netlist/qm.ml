(* Exact two-level minimisation: Quine-McCluskey prime generation followed
   by branch-and-bound unate covering.

   This plays the role SIS's espresso plays when the flow writes SOP
   covers: the BLIF emitted after mapping carries minimum covers instead
   of the greedy expansion {!Tt.to_cubes} produces.  With at most
   Tt.max_vars = 5 variables (32 minterms) the exact algorithm is cheap. *)

(* A cube as (mask, value): mask bit set = the variable is specified and
   must equal the corresponding value bit. *)
type cube = { mask : int; value : int }

let cube_covers cube row = row land cube.mask = cube.value

(* All prime implicants of [tt] by iterated pairwise merging. *)
let primes (tt : Tt.t) =
  let n = Tt.arity tt in
  let full = (1 lsl n) - 1 in
  let on_set =
    List.filter (fun r -> Tt.eval tt r) (List.init (1 lsl n) (fun r -> r))
  in
  if on_set = [] then []
  else begin
    (* generations of cubes; a cube is prime if no merge consumed it *)
    let current = ref (List.map (fun r -> { mask = full; value = r }) on_set) in
    let primes = ref [] in
    let continue_ = ref true in
    while !continue_ do
      let merged = Hashtbl.create 16 in
      let next = Hashtbl.create 16 in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a.mask = b.mask then begin
                let diff = a.value lxor b.value in
                (* merge when the values differ in exactly one specified bit *)
                if diff <> 0 && diff land (diff - 1) = 0 && diff land a.mask <> 0
                then begin
                  let c = { mask = a.mask land lnot diff;
                            value = a.value land lnot diff } in
                  Hashtbl.replace next (c.mask, c.value) c;
                  Hashtbl.replace merged (a.mask, a.value) ();
                  Hashtbl.replace merged (b.mask, b.value) ()
                end
              end)
            !current)
        !current;
      List.iter
        (fun c ->
          if not (Hashtbl.mem merged (c.mask, c.value)) then
            primes := c :: !primes)
        !current;
      current := Hashtbl.fold (fun _ c acc -> c :: acc) next [];
      if !current = [] then continue_ := false
    done;
    List.sort_uniq compare !primes
  end

(* Exact minimum cover of the on-set by primes, by branch and bound on
   cover size.  The search is budgeted: functions with pathologically many
   primes fall back to the greedy cover (still correct, possibly larger),
   keeping worst-case runtime bounded. *)
let search_budget = 20_000

let min_cover (tt : Tt.t) =
  let n = Tt.arity tt in
  let on_set =
    List.filter (fun r -> Tt.eval tt r) (List.init (1 lsl n) (fun r -> r))
  in
  if on_set = [] then []
  else begin
    let ps = Array.of_list (primes tt) in
    let covers_of_row =
      List.map
        (fun row ->
          ( row,
            List.filter
              (fun i -> cube_covers ps.(i) row)
              (List.init (Array.length ps) (fun i -> i)) ))
        on_set
    in
    (* branch and bound over remaining rows *)
    let best = ref None in
    let best_size = ref max_int in
    let nodes = ref 0 in
    let exception Budget in
    let rec search chosen remaining =
      incr nodes;
      if !nodes > search_budget then raise Budget;
      let size = List.length chosen in
      if size >= !best_size then ()
      else
        match remaining with
        | [] ->
            best := Some chosen;
            best_size := size
        | _ ->
            (* pick the uncovered row with the fewest candidate primes *)
            let row, candidates =
              List.fold_left
                (fun (br, bc) (r, c) ->
                  if List.length c < List.length bc then (r, c) else (br, bc))
                (List.hd remaining) (List.tl remaining)
            in
            ignore row;
            List.iter
              (fun i ->
                let remaining' =
                  List.filter (fun (r, _) -> not (cube_covers ps.(i) r)) remaining
                in
                search (i :: chosen) remaining')
              candidates
    in
    (match search [] covers_of_row with
    | () -> ()
    | exception Budget -> ());
    match !best with
    | None ->
        (* budget exhausted before any full cover: fall back to greedy *)
        Tt.to_cubes tt
    | Some chosen ->
        List.rev_map
          (fun i ->
            let c = ps.(i) in
            Array.init n (fun bit ->
                if c.mask land (1 lsl bit) = 0 then Tt.Dash
                else if c.value land (1 lsl bit) <> 0 then Tt.One
                else Tt.Zero))
          chosen
  end

(* Sanity helper: a cover's function. *)
let cover_function n cubes = Tt.of_cubes n cubes

(* Literal count of a cover (the area metric two-level minimisers report). *)
let literal_count cubes =
  List.fold_left
    (fun acc cube ->
      acc
      + Array.fold_left
          (fun a lit -> match lit with Tt.Dash -> a | _ -> a + 1)
          0 cube)
    0 cubes
