(** Exact two-level minimisation: Quine-McCluskey prime generation plus
    branch-and-bound unate covering.

    Plays espresso's role when the flow writes SOP covers; with at most
    {!Tt.max_vars} = 5 variables the exact algorithm is cheap. *)

type cube = { mask : int; value : int }
(** A cube as (mask, value): a set mask bit means the variable is
    specified and must equal the value bit. *)

val cube_covers : cube -> int -> bool

val primes : Tt.t -> cube list
(** All prime implicants of the on-set. *)

val search_budget : int
(** Branch-and-bound node budget; beyond it the greedy cover is used. *)

val min_cover : Tt.t -> Tt.literal array list
(** A minimum-cardinality prime cover of the on-set (BLIF literal form);
    [] for the constant-0 function.  Within {!search_budget} the cover is
    exactly minimum; pathological functions fall back to the greedy cover
    (correct, possibly larger). *)

val cover_function : int -> Tt.literal array list -> Tt.t

val literal_count : Tt.literal array list -> int
