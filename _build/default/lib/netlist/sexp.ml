(* S-expressions: the concrete syntax of EDIF. *)

type t = Atom of string | List of t list

exception Parse_error of int * string

(* EDIF atoms may contain letters, digits and a few punctuation characters;
   strings are double-quoted. *)
let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let line = ref 1 in
  let fail msg = raise (Parse_error (!line, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () =
    if !pos < n then begin
      if text.[!pos] = '\n' then incr line;
      incr pos
    end
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let atom_char c =
    match c with
    | '(' | ')' | ' ' | '\t' | '\n' | '\r' | '"' -> false
    | _ -> true
  in
  let read_atom () =
    let start = !pos in
    while (match peek () with Some c -> atom_char c | None -> false) do
      advance ()
    done;
    Atom (String.sub text start (!pos - start))
  in
  let read_string () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Atom (Printf.sprintf "%S" (Buffer.contents buf))
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_ws ();
          match peek () with
          | None -> fail "unterminated list"
          | Some ')' ->
              advance ();
              List (List.rev acc)
          | Some _ -> items (read_sexp () :: acc)
        in
        items []
    | Some '"' -> read_string ()
    | Some ')' -> fail "unexpected )"
    | Some _ -> read_atom ()
  in
  let result = read_sexp () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  result

let rec to_buffer ?(indent = 0) buf t =
  let pad k = Buffer.add_string buf (String.make k ' ') in
  match t with
  | Atom a -> Buffer.add_string buf a
  | List items ->
      Buffer.add_char buf '(';
      let simple =
        List.for_all (function Atom _ -> true | List _ -> false) items
        && List.length items <= 6
      in
      if simple then
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ' ';
            to_buffer ~indent buf item)
          items
      else
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf '\n';
              pad (indent + 2)
            end;
            to_buffer ~indent:(indent + 2) buf item)
          items;
      Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

(* Accessors used by the EDIF reader. *)
let atom = function Atom a -> Some a | List _ -> None

let keyword = function
  | List (Atom k :: _) -> Some (String.lowercase_ascii k)
  | _ -> None

(* All sub-lists whose head atom matches [k] (case-insensitive). *)
let children k = function
  | List (_ :: rest) ->
      List.filter (fun s -> keyword s = Some (String.lowercase_ascii k)) rest
  | _ -> []

let child k sexp = match children k sexp with s :: _ -> Some s | [] -> None

(* Body of a list node: elements after the head keyword. *)
let body = function List (_ :: rest) -> rest | _ -> []
