(** S-expressions: the concrete syntax of EDIF. *)

type t = Atom of string | List of t list

exception Parse_error of int * string

val of_string : string -> t
(** Parse one s-expression (strings are kept quoted in the atom).
    @raise Parse_error on malformed input or trailing characters. *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit

val to_string : t -> string
(** Pretty-printed with two-space indentation for non-trivial lists. *)

(** {2 Accessors used by the EDIF reader} *)

val atom : t -> string option

val keyword : t -> string option
(** Lowercased head atom of a list node. *)

val children : string -> t -> t list
(** Sub-lists whose head matches (case-insensitive). *)

val child : string -> t -> t option

val body : t -> t list
(** Elements after the head keyword. *)
