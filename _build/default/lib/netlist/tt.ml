(* Truth tables over up to 6 variables, packed into one int.

   Bit [i] of [bits] is the function value on the input assignment whose
   binary encoding is [i] (variable 0 is the least significant input).
   Six variables need 64 bits; OCaml's 63-bit int covers our K <= 6 LUTs
   because we cap [max_vars] at 5... no: we keep 6 by using Int64-free
   masking — 2^6 = 64 rows exceed 62 usable bits, so the cap is 5 for a
   plain int.  LUT size in this framework is K = 4, and every algorithm
   (FlowMap, packing) is bounded by K + 1, so [max_vars] = 5 is sufficient
   headroom and keeps the representation allocation-free. *)

let max_vars = 5

type t = { n : int; bits : int }

let rows n = 1 lsl n

let mask n = (1 lsl rows n) - 1

let create n bits =
  if n < 0 || n > max_vars then invalid_arg "Tt.create: bad arity";
  { n; bits = bits land mask n }

let arity t = t.n

let bits t = t.bits

let const0 n = create n 0

let const1 n = create n (mask n)

(* Projection onto variable [i]: f(x) = x_i. *)
let var n i =
  if i < 0 || i >= n then invalid_arg "Tt.var: index out of range";
  let b = ref 0 in
  for row = 0 to rows n - 1 do
    if row land (1 lsl i) <> 0 then b := !b lor (1 lsl row)
  done;
  create n !b

let same_arity a b =
  if a.n <> b.n then invalid_arg "Tt: arity mismatch"

let lnot a = create a.n (lnot a.bits)

let land_ a b = same_arity a b; create a.n (a.bits land b.bits)

let lor_ a b = same_arity a b; create a.n (a.bits lor b.bits)

let lxor_ a b = same_arity a b; create a.n (a.bits lxor b.bits)

let equal a b = a.n = b.n && a.bits = b.bits

let is_const0 t = t.bits = 0

let is_const1 t = t.bits = mask t.n

(* Value on one input assignment given as a bit vector (bit i = input i). *)
let eval t assignment =
  (t.bits lsr (assignment land (rows t.n - 1))) land 1 = 1

(* Positive/negative cofactor with respect to variable [i] (same arity). *)
let cofactor t i value =
  let b = ref 0 in
  for row = 0 to rows t.n - 1 do
    let row' =
      if value then row lor (1 lsl i) else row land Stdlib.lnot (1 lsl i)
    in
    if (t.bits lsr row') land 1 = 1 then b := !b lor (1 lsl row)
  done;
  create t.n !b

(* Does the function actually depend on variable [i]? *)
let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

(* Variables in the true support. *)
let support t = List.filter (depends_on t) (List.init t.n (fun i -> i))

(* Re-express [t] over a new variable list: [perm.(j)] gives, for new input
   j, the old input index it corresponds to.  The new arity is the length of
   [perm]; old variables not mentioned must be outside the support. *)
let permute t perm =
  let n' = Array.length perm in
  if n' > max_vars then invalid_arg "Tt.permute: too many variables";
  let b = ref 0 in
  for row' = 0 to rows n' - 1 do
    (* build an old-row with don't-care variables at 0 *)
    let old_row = ref 0 in
    Array.iteri
      (fun j i -> if row' land (1 lsl j) <> 0 then old_row := !old_row lor (1 lsl i))
      perm;
    if (t.bits lsr !old_row) land 1 = 1 then b := !b lor (1 lsl row')
  done;
  create n' !b

(* Shrink to the true support; returns (new table, support list). *)
let compact t =
  let sup = support t in
  (permute t (Array.of_list sup), sup)

(* Build an n-ary function by composing a 2-input operation left to right. *)
let reduce op = function
  | [] -> invalid_arg "Tt.reduce: empty"
  | first :: rest -> List.fold_left op first rest

(* SOP cover: list of cubes, each cube an array of [`Zero | `One | `Dash]
   of length n, in BLIF's on-set convention. *)
type literal = Zero | One | Dash

let cube_matches cube row =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      let bit = (row lsr i) land 1 in
      match lit with
      | Zero -> if bit <> 0 then ok := false
      | One -> if bit <> 1 then ok := false
      | Dash -> ())
    cube;
  !ok

let of_cubes n cubes =
  let b = ref 0 in
  for row = 0 to rows n - 1 do
    if List.exists (fun cube -> cube_matches cube row) cubes then
      b := !b lor (1 lsl row)
  done;
  create n !b

(* Simple cube extraction: start from minterms and greedily grow each cube
   by dropping literals while it stays inside the on-set.  Not minimal, but
   compact enough for readable BLIF output. *)
let to_cubes t =
  let n = t.n in
  let covered = Array.make (rows n) false in
  let inside cube =
    let ok = ref true in
    for row = 0 to rows n - 1 do
      if cube_matches cube row && not (eval t row) then ok := false
    done;
    !ok
  in
  let out = ref [] in
  for row = 0 to rows n - 1 do
    if eval t row && not covered.(row) then begin
      let cube =
        Array.init n (fun i -> if (row lsr i) land 1 = 1 then One else Zero)
      in
      (* greedy literal dropping *)
      for i = 0 to n - 1 do
        let saved = cube.(i) in
        cube.(i) <- Dash;
        if not (inside cube) then cube.(i) <- saved
      done;
      for r = 0 to rows n - 1 do
        if cube_matches cube r then covered.(r) <- true
      done;
      out := Array.copy cube :: !out
    end
  done;
  List.rev !out

let to_string t =
  String.init (rows t.n) (fun i -> if eval t i then '1' else '0')

(* Common gate functions. *)
let and_n n = reduce land_ (List.init n (var n))
let or_n n = reduce lor_ (List.init n (var n))
let xor_n n = reduce lxor_ (List.init n (var n))
let nand_n n = lnot (and_n n)
let nor_n n = lnot (or_n n)
let xnor_n n = lnot (xor_n n)
let buf = var 1 0
let inv = lnot buf
(* mux: inputs (sel, a, b) -> sel ? a : b *)
let mux2 =
  let sel = var 3 0 and a = var 3 1 and b = var 3 2 in
  lor_ (land_ sel a) (land_ (lnot sel) b)
