(** Truth tables over up to {!max_vars} variables, packed into one [int].

    Bit [i] of the table is the function value on the input assignment
    whose binary encoding is [i] (variable 0 is the least significant
    input).  LUT size in this framework is K = 4 and every algorithm is
    bounded by K + 1, so the 5-variable cap keeps the representation
    allocation-free. *)

type t

val max_vars : int
(** Maximum arity (5). *)

val create : int -> int -> t
(** [create n bits] over [n] variables; excess bits are masked.
    @raise Invalid_argument if [n] is out of range. *)

val arity : t -> int

val bits : t -> int
(** The packed table (low [2^arity] bits). *)

val const0 : int -> t
val const1 : int -> t

val var : int -> int -> t
(** [var n i] is the projection x_i over [n] variables. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t
(** Pointwise connectives. @raise Invalid_argument on arity mismatch. *)

val equal : t -> t -> bool
val is_const0 : t -> bool
val is_const1 : t -> bool

val eval : t -> int -> bool
(** [eval t row] with [row]'s bit [i] the value of variable [i]. *)

val cofactor : t -> int -> bool -> t
(** Cofactor with respect to one variable (same arity). *)

val depends_on : t -> int -> bool

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val permute : t -> int array -> t
(** [permute t perm] re-expresses [t] over new variables where
    [perm.(j)] is the old index of new input [j]; old variables not
    mentioned must be outside the support. *)

val compact : t -> t * int list
(** Shrink to the true support; returns the smaller table and the support. *)

val reduce : (t -> t -> t) -> t list -> t
(** Left fold of a binary connective. @raise Invalid_argument on []. *)

(** {2 Sum-of-products covers (BLIF's cube notation)} *)

type literal = Zero | One | Dash

val cube_matches : literal array -> int -> bool

val of_cubes : int -> literal array list -> t
(** On-set union of the cubes. *)

val to_cubes : t -> literal array list
(** A (non-minimal but compact) cover: minterm seeds greedily expanded by
    literal dropping. *)

val to_string : t -> string
(** Row-ordered 0/1 string, row 0 first. *)

(** {2 Common gate functions} *)

val and_n : int -> t
val or_n : int -> t
val xor_n : int -> t
val nand_n : int -> t
val nor_n : int -> t
val xnor_n : int -> t
val buf : t
val inv : t

val mux2 : t
(** Inputs (sel, a, b): sel ? a : b. *)
