(** VCD (Value Change Dump) writer for logic-network simulations.

    One scalar wire per recorded signal; viewers reconstruct vectors from
    the ["base\[i\]"] names. *)

type recorder

val create : ?signals:int list -> Logic.t -> recorder
(** Record the given signals (default: inputs, latches and outputs). *)

val sample : ?timescale:string -> recorder -> Logic.sim_state -> time:int -> unit
(** Record the state at [time]; only changes are emitted.  The header is
    written on the first sample. *)

val contents : recorder -> string

val to_file : string -> recorder -> unit
