(* AST for the synthesizable VHDL subset accepted by the flow's front end
   (the paper's VHDL Parser + DIVINER stages).

   Supported: entity/architecture pairs; std_logic and std_logic_vector
   ports and signals; concurrent (conditional) signal assignments; logical,
   comparison and unsigned-add/sub operators; concatenation and indexing;
   processes with rising_edge clocks, async resets, if/elsif/else and case
   statements. *)

type typ = Std_logic | Std_logic_vector of int * int (* hi downto lo *)

let width = function Std_logic -> 1 | Std_logic_vector (hi, lo) -> hi - lo + 1

type direction = In | Out

type port = { port_name : string; dir : direction; typ : typ }

type binop =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Add
  | Sub
  | Eq
  | Neq
  | Lt   (* unsigned vector/bit comparisons *)
  | Gt
  | Le
  | Ge

type expr =
  | Name of string
  | Indexed of string * expr    (* index must elaborate to a constant *)
  | Slice of string * expr * expr (* hi downto lo, constant bounds *)
  | Char_lit of char            (* '0' | '1' *)
  | String_lit of string        (* "0101", MSB first *)
  | Int_lit of int              (* for  = integer comparisons, e.g. counters *)
  | Not of expr
  | Binop of binop * expr * expr
  | Concat of expr * expr
  | Call of string * expr list  (* rising_edge(clk), falling_edge(clk) *)
  | Aggregate_others of char    (* (others => '0') / (others => '1') *)

type seq_stmt =
  | Assign of expr * expr (* target <= value *)
  | If of (expr * seq_stmt list) list * seq_stmt list (* branches, else *)
  | Case of expr * (case_choice * seq_stmt list) list

and case_choice = Choice of expr | Others

type association = Named of string * expr | Positional of expr

type concurrent =
  | Cond_assign of { target : expr; branches : (expr * expr) list; default : expr }
      (* target <= v1 when c1 else v2 when c2 else vd *)
  | Process of { sensitivity : string list; body : seq_stmt list }
  | Instance of { label : string; component : string; port_map : association list }
      (* u1 : counter4 port map (clk => clk, q => q1); *)
  | Generate of { label : string; var : string; lo : expr; hi : expr;
                  body : concurrent list }
      (* g : for i in 0 to 7 generate ... end generate; *)

type entity = { entity_name : string; ports : port list }

type architecture = {
  arch_name : string;
  of_entity : string;
  signals : (string * typ) list;
  stmts : concurrent list;
}

type design = { entity : entity; arch : architecture }

(* A source file may hold several entity/architecture pairs; the last one
   is the default top. *)
type file = design list

let binop_name = function
  | And -> "and" | Or -> "or" | Nand -> "nand" | Nor -> "nor"
  | Xor -> "xor" | Xnor -> "xnor" | Add -> "+" | Sub -> "-"
  | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
