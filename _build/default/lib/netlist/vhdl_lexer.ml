(* Hand-written lexer for the VHDL subset.  VHDL is case-insensitive:
   identifiers and keywords are lowercased. *)

type token =
  | Ident of string
  | Int of int
  | Char_lit of char
  | String_lit of string
  | Lparen
  | Rparen
  | Semicolon
  | Colon
  | Comma
  | Assign   (* <= *)
  | Arrow    (* => *)
  | Eq       (* = *)
  | Neq      (* /= *)
  | Amp      (* & *)
  | Plus
  | Minus
  | Lt       (* < *)
  | Gt       (* > *)
  | Ge       (* >= *)
  | Eof

type lexeme = { tok : token; line : int }

exception Lex_error of int * string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

(* '.' admits selected names (work.foo, ieee.std_logic_1164.all) as single
   identifiers; only context clauses use them and those are skipped. *)
let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '_' || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize text =
  let n = String.length text in
  let pos = ref 0 and line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let peek k = if !pos + k < n then Some text.[!pos + k] else None in
  while !pos < n do
    let c = text.[!pos] in
    if c = '\n' then begin incr line; incr pos end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* comment to end of line *)
      while !pos < n && text.[!pos] <> '\n' do incr pos done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char text.[!pos] do incr pos done;
      emit (Ident (String.lowercase_ascii (String.sub text start (!pos - start))))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit text.[!pos] do incr pos done;
      emit (Int (int_of_string (String.sub text start (!pos - start))))
    end
    else if c = '\'' then begin
      (* char literal: '0' or '1' (attributes are not supported) *)
      match (peek 1, peek 2) with
      | Some v, Some '\'' when v = '0' || v = '1' ->
          emit (Char_lit v);
          pos := !pos + 3
      | _ -> raise (Lex_error (!line, "bad character literal"))
    end
    else if c = '"' then begin
      let start = !pos + 1 in
      let close = ref start in
      while !close < n && text.[!close] <> '"' do incr close done;
      if !close >= n then raise (Lex_error (!line, "unterminated string"));
      let s = String.sub text start (!close - start) in
      String.iter
        (fun ch ->
          if ch <> '0' && ch <> '1' then
            raise (Lex_error (!line, "bit-string literals may contain only 0/1")))
        s;
      emit (String_lit s);
      pos := !close + 1
    end
    else begin
      let two = if !pos + 1 < n then String.sub text !pos 2 else "" in
      match two with
      | "<=" -> emit Assign; pos := !pos + 2
      | "=>" -> emit Arrow; pos := !pos + 2
      | "/=" -> emit Neq; pos := !pos + 2
      | ">=" -> emit Ge; pos := !pos + 2
      | _ -> (
          (match c with
          | '(' -> emit Lparen
          | ')' -> emit Rparen
          | ';' -> emit Semicolon
          | ':' -> emit Colon
          | ',' -> emit Comma
          | '=' -> emit Eq
          | '&' -> emit Amp
          | '+' -> emit Plus
          | '-' -> emit Minus
          | '<' -> emit Lt
          | '>' -> emit Gt
          | _ ->
              raise
                (Lex_error (!line, Printf.sprintf "unexpected character %c" c)));
          incr pos)
    end
  done;
  emit Eof;
  List.rev !out

let token_name = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int i -> Printf.sprintf "integer %d" i
  | Char_lit c -> Printf.sprintf "'%c'" c
  | String_lit s -> Printf.sprintf "\"%s\"" s
  | Lparen -> "(" | Rparen -> ")" | Semicolon -> ";" | Colon -> ":"
  | Comma -> "," | Assign -> "<=" | Arrow -> "=>" | Eq -> "=" | Neq -> "/="
  | Amp -> "&" | Plus -> "+" | Minus -> "-" | Lt -> "<" | Gt -> ">"
  | Ge -> ">=" | Eof -> "end of file"
