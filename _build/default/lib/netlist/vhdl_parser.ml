(* Recursive-descent parser for the VHDL subset (see Vhdl_ast).

   Also exposes [check] — the paper's standalone "VHDL Parser" tool, which
   only reports syntax validity. *)

open Vhdl_ast
open Vhdl_lexer

exception Parse_error of int * string

type state = { mutable toks : lexeme list }

let fail st msg =
  let line = match st.toks with l :: _ -> l.line | [] -> 0 in
  raise (Parse_error (line, msg))

let peek st = match st.toks with l :: _ -> l.tok | [] -> Eof

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s" (token_name tok)
         (token_name (peek st)))

let expect_kw st kw =
  match peek st with
  | Ident k when k = kw -> advance st
  | t -> fail st (Printf.sprintf "expected '%s', found %s" kw (token_name t))

let ident st =
  match peek st with
  | Ident k -> advance st; k
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (token_name t))

let int_lit st =
  match peek st with
  | Int i -> advance st; i
  | t -> fail st (Printf.sprintf "expected integer, found %s" (token_name t))

let keywords =
  [ "entity"; "is"; "port"; "in"; "out"; "end"; "architecture"; "of";
    "signal"; "begin"; "process"; "if"; "then"; "elsif"; "else"; "case";
    "when"; "others"; "and"; "or"; "nand"; "nor"; "xor"; "xnor"; "not";
    "downto"; "std_logic"; "std_logic_vector" ]

let is_keyword k = List.mem k keywords

(* ---------- types ---------- *)

let parse_type st =
  match peek st with
  | Ident "std_logic" -> advance st; Std_logic
  | Ident "std_logic_vector" ->
      advance st;
      expect st Lparen;
      let hi = int_lit st in
      expect_kw st "downto";
      let lo = int_lit st in
      expect st Rparen;
      if lo <> 0 then fail st "only (N downto 0) vectors are supported";
      Std_logic_vector (hi, lo)
  | t -> fail st ("expected a type, found " ^ token_name t)

(* ---------- expressions ---------- *)

(* primary := literal | name | name(int[ downto int]) | call(args) | (expr) *)
let rec parse_primary st =
  match peek st with
  | Char_lit c -> advance st; Vhdl_ast.Char_lit c
  | String_lit s -> advance st; Vhdl_ast.String_lit s
  | Int i -> advance st; Vhdl_ast.Int_lit i
  | Lparen ->
      advance st;
      (* aggregate (others => '0'|'1') or a parenthesised expression *)
      (match peek st with
      | Ident "others" ->
          advance st;
          expect st Arrow;
          let c =
            match peek st with
            | Char_lit c -> advance st; c
            | t -> fail st ("expected '0' or '1', found " ^ token_name t)
          in
          expect st Rparen;
          Aggregate_others c
      | _ ->
          let e = parse_expr st in
          expect st Rparen;
          e)
  | Ident "not" ->
      advance st;
      Not (parse_primary st)
  | Ident nm when not (is_keyword nm) ->
      advance st;
      if peek st = Lparen then begin
        advance st;
        (* name(expr), name(hi downto lo), or call(expr {, expr}) *)
        let first = parse_expr st in
        match peek st with
        | Ident "downto" ->
            advance st;
            let lo = parse_expr st in
            expect st Rparen;
            Slice (nm, first, lo)
        | Comma ->
            let rec args acc =
              advance st;
              let a = parse_expr st in
              if peek st = Comma then args (a :: acc)
              else List.rev (a :: acc)
            in
            let rest = args [ first ] in
            expect st Rparen;
            Call (nm, rest)
        | Rparen ->
            advance st;
            (* single parenthesised argument: an index for signals, a call
               for the clock-edge predicates *)
            if nm = "rising_edge" || nm = "falling_edge" then Call (nm, [ first ])
            else Indexed (nm, first)
        | t -> fail st ("unexpected " ^ token_name t)
      end
      else Name nm
  | t -> fail st ("expected an expression, found " ^ token_name t)

(* factor := primary  (not handled in primary for tightest binding) *)
and parse_addend st =
  let rec go lhs =
    match peek st with
    | Plus -> advance st; go (Binop (Add, lhs, parse_primary st))
    | Minus -> advance st; go (Binop (Sub, lhs, parse_primary st))
    | Amp -> advance st; go (Concat (lhs, parse_primary st))
    | _ -> lhs
  in
  go (parse_primary st)

and parse_relation st =
  let lhs = parse_addend st in
  match peek st with
  | Eq -> advance st; Binop (Eq, lhs, parse_addend st)
  | Neq -> advance st; Binop (Neq, lhs, parse_addend st)
  | Lt -> advance st; Binop (Vhdl_ast.Lt, lhs, parse_addend st)
  | Gt -> advance st; Binop (Vhdl_ast.Gt, lhs, parse_addend st)
  | Ge -> advance st; Binop (Vhdl_ast.Ge, lhs, parse_addend st)
  (* "<=" in expression position is less-or-equal (assignment targets are
     parsed before their <= token, so no ambiguity arises here) *)
  | Assign -> advance st; Binop (Vhdl_ast.Le, lhs, parse_addend st)
  | _ -> lhs

and parse_expr st =
  let op_of = function
    | "and" -> Some And | "or" -> Some Or | "nand" -> Some Nand
    | "nor" -> Some Nor | "xor" -> Some Xor | "xnor" -> Some Xnor
    | _ -> None
  in
  let rec go lhs =
    match peek st with
    | Ident k -> (
        match op_of k with
        | Some op ->
            advance st;
            go (Binop (op, lhs, parse_relation st))
        | None -> lhs)
    | _ -> lhs
  in
  go (parse_relation st)

(* assignment target: name, name(i) or name(hi downto lo) *)
let parse_target st =
  let nm = ident st in
  if peek st = Lparen then begin
    advance st;
    let hi = parse_expr st in
    match peek st with
    | Ident "downto" ->
        advance st;
        let lo = parse_expr st in
        expect st Rparen;
        Slice (nm, hi, lo)
    | _ ->
        expect st Rparen;
        Indexed (nm, hi)
  end
  else Name nm

(* ---------- sequential statements ---------- *)

let rec parse_seq_stmts st stop =
  (* parse until one of the stop keywords is next *)
  let rec go acc =
    match peek st with
    | Ident k when List.mem k stop -> List.rev acc
    | _ -> go (parse_seq_stmt st :: acc)
  in
  go []

and parse_seq_stmt st =
  match peek st with
  | Ident "if" -> parse_if st
  | Ident "case" -> parse_case st
  | Ident "null" ->
      advance st;
      expect st Semicolon;
      If ([], []) (* no-op *)
  | _ ->
      let target = parse_target st in
      expect st Assign;
      let value = parse_expr st in
      expect st Semicolon;
      Assign (target, value)

and parse_if st =
  expect_kw st "if";
  let cond = parse_expr st in
  expect_kw st "then";
  let body = parse_seq_stmts st [ "elsif"; "else"; "end" ] in
  let rec branches acc =
    match peek st with
    | Ident "elsif" ->
        advance st;
        let c = parse_expr st in
        expect_kw st "then";
        let b = parse_seq_stmts st [ "elsif"; "else"; "end" ] in
        branches ((c, b) :: acc)
    | Ident "else" ->
        advance st;
        let b = parse_seq_stmts st [ "end" ] in
        (List.rev acc, b)
    | _ -> (List.rev acc, [])
  in
  let rest, els = branches [ (cond, body) ] in
  expect_kw st "end";
  expect_kw st "if";
  expect st Semicolon;
  If (rest, els)

and parse_case st =
  expect_kw st "case";
  let subject = parse_expr st in
  expect_kw st "is";
  let rec alts acc =
    match peek st with
    | Ident "when" ->
        advance st;
        let choice =
          match peek st with
          | Ident "others" -> advance st; Others
          | _ -> Choice (parse_expr st)
        in
        expect st Arrow;
        let body = parse_seq_stmts st [ "when"; "end" ] in
        alts ((choice, body) :: acc)
    | _ -> List.rev acc
  in
  let alternatives = alts [] in
  expect_kw st "end";
  expect_kw st "case";
  expect st Semicolon;
  Case (subject, alternatives)

(* ---------- concurrent statements ---------- *)

let parse_process st =
  expect_kw st "process";
  let sensitivity =
    if peek st = Lparen then begin
      advance st;
      let rec go acc =
        let nm = ident st in
        if peek st = Comma then begin advance st; go (nm :: acc) end
        else List.rev (nm :: acc)
      in
      let l = go [] in
      expect st Rparen;
      l
    end
    else []
  in
  (match peek st with Ident "is" -> advance st | _ -> ());
  expect_kw st "begin";
  let body = parse_seq_stmts st [ "end" ] in
  expect_kw st "end";
  expect_kw st "process";
  expect st Semicolon;
  Process { sensitivity; body }

let parse_cond_assign st =
  let target = parse_target st in
  expect st Assign;
  (* v1 [when c1 else v2 [when c2 else ...]] ; *)
  let rec go branches =
    let v = parse_expr st in
    match peek st with
    | Ident "when" ->
        advance st;
        let c = parse_expr st in
        expect_kw st "else";
        go ((v, c) :: branches)
    | _ ->
        expect st Semicolon;
        (List.rev_map (fun (v, c) -> (c, v)) branches, v)
  in
  let branches, default = go [] in
  Cond_assign { target; branches; default }

(* label : component port map ( ... );  or  label : entity work.name ... *)
let parse_instance st =
  let label = ident st in
  expect st Colon;
  let component =
    match peek st with
    | Ident "entity" ->
        advance st;
        let nm = ident st in
        (* strip a library prefix: work.counter4 -> counter4 *)
        (match String.rindex_opt nm '.' with
        | Some i -> String.sub nm (i + 1) (String.length nm - i - 1)
        | None -> nm)
    | _ -> ident st
  in
  expect_kw st "port";
  expect_kw st "map";
  expect st Lparen;
  let rec assocs acc =
    let a =
      match peek st with
      | Ident nm when not (is_keyword nm) -> (
          (* could be "formal => actual" or a positional expression *)
          let saved = st.toks in
          advance st;
          match peek st with
          | Arrow ->
              advance st;
              Named (nm, parse_expr st)
          | _ ->
              st.toks <- saved;
              Positional (parse_expr st))
      | _ -> Positional (parse_expr st)
    in
    if peek st = Comma then begin
      advance st;
      assocs (a :: acc)
    end
    else List.rev (a :: acc)
  in
  let port_map = assocs [] in
  expect st Rparen;
  expect st Semicolon;
  Instance { label; component; port_map }

(* label : for VAR in LO to HI generate <concurrent...> end generate; *)
let rec parse_generate st =
  let label = ident st in
  expect st Colon;
  expect_kw st "for";
  let var = ident st in
  expect_kw st "in";
  let lo = parse_expr st in
  expect_kw st "to";
  let hi = parse_expr st in
  expect_kw st "generate";
  let rec stmts acc =
    match peek st with
    | Ident "end" -> List.rev acc
    | _ -> stmts (parse_concurrent st :: acc)
  in
  let body = stmts [] in
  expect_kw st "end";
  expect_kw st "generate";
  (match peek st with
  | Ident nm when nm = label -> advance st
  | _ -> ());
  expect st Semicolon;
  Generate { label; var; lo; hi; body }

and parse_concurrent st =
  match peek st with
  | Ident "process" -> parse_process st
  | Ident nm when not (is_keyword nm) -> (
      (* lookahead: "label :" introduces an instantiation or a generate *)
      match st.toks with
      | _ :: { tok = Colon; _ } :: { tok = Ident "for"; _ } :: _ ->
          ignore nm;
          parse_generate st
      | _ :: { tok = Colon; _ } :: _ ->
          ignore nm;
          parse_instance st
      | _ -> parse_cond_assign st)
  | _ -> parse_cond_assign st

(* ---------- design units ---------- *)

let parse_port st =
  let rec names acc =
    let nm = ident st in
    if peek st = Comma then begin advance st; names (nm :: acc) end
    else List.rev (nm :: acc)
  in
  let nms = names [] in
  expect st Colon;
  let dir =
    match peek st with
    | Ident "in" -> advance st; In
    | Ident "out" -> advance st; Out
    | t -> fail st ("expected port direction, found " ^ token_name t)
  in
  let typ = parse_type st in
  List.map (fun port_name -> { port_name; dir; typ }) nms

let parse_entity st =
  expect_kw st "entity";
  let entity_name = ident st in
  expect_kw st "is";
  let ports =
    match peek st with
    | Ident "port" ->
        advance st;
        expect st Lparen;
        let rec go acc =
          let ps = parse_port st in
          if peek st = Semicolon then begin advance st; go (acc @ ps) end
          else acc @ ps
        in
        let ps = go [] in
        expect st Rparen;
        expect st Semicolon;
        ps
    | _ -> []
  in
  expect_kw st "end";
  (match peek st with
  | Ident "entity" -> advance st
  | Ident nm when nm = entity_name -> advance st
  | _ -> ());
  (match peek st with
  | Ident nm when nm = entity_name -> advance st
  | _ -> ());
  expect st Semicolon;
  { entity_name; ports }

let parse_architecture st =
  expect_kw st "architecture";
  let arch_name = ident st in
  expect_kw st "of";
  let of_entity = ident st in
  expect_kw st "is";
  let rec decls acc =
    match peek st with
    | Ident "signal" ->
        advance st;
        let rec names ns =
          let nm = ident st in
          if peek st = Comma then begin advance st; names (nm :: ns) end
          else List.rev (nm :: ns)
        in
        let nms = names [] in
        expect st Colon;
        let typ = parse_type st in
        expect st Semicolon;
        decls (acc @ List.map (fun nm -> (nm, typ)) nms)
    | Ident "component" ->
        (* component declarations repeat the entity interface; the
           elaborator resolves instances against the entity itself, so the
           declaration is checked for syntax and skipped *)
        advance st;
        let cname = ident st in
        (match peek st with Ident "is" -> advance st | _ -> ());
        (match peek st with
        | Ident "port" ->
            advance st;
            expect st Lparen;
            let rec skip_ports () =
              ignore (parse_port st);
              if peek st = Semicolon then begin advance st; skip_ports () end
            in
            skip_ports ();
            expect st Rparen;
            expect st Semicolon
        | _ -> ());
        expect_kw st "end";
        expect_kw st "component";
        (match peek st with
        | Ident nm when nm = cname -> advance st
        | _ -> ());
        expect st Semicolon;
        decls acc
    | _ -> acc
  in
  let signals = decls [] in
  expect_kw st "begin";
  let rec stmts acc =
    match peek st with
    | Ident "end" -> List.rev acc
    | _ -> stmts (parse_concurrent st :: acc)
  in
  let body = stmts [] in
  expect_kw st "end";
  (match peek st with
  | Ident "architecture" -> advance st
  | Ident nm when nm = arch_name -> advance st
  | _ -> ());
  (match peek st with
  | Ident nm when nm = arch_name -> advance st
  | _ -> ());
  expect st Semicolon;
  { arch_name; of_entity; signals; stmts = body }

(* library/use clauses are recognised and skipped *)
let skip_context st =
  let rec go () =
    match peek st with
    | Ident "library" | Ident "use" ->
        let rec to_semi () =
          if peek st <> Semicolon && peek st <> Eof then begin
            advance st;
            to_semi ()
          end
        in
        to_semi ();
        expect st Semicolon;
        go ()
    | _ -> ()
  in
  go ()

let parse_design st =
  skip_context st;
  let entity = parse_entity st in
  skip_context st;
  let arch = parse_architecture st in
  if arch.of_entity <> entity.entity_name then
    fail st
      (Printf.sprintf "architecture %s is of entity %s, not %s" arch.arch_name
         arch.of_entity entity.entity_name);
  { entity; arch }

(* A file: one or more entity/architecture pairs. *)
let parse_file st =
  let rec go acc =
    skip_context st;
    match peek st with
    | Eof -> List.rev acc
    | _ -> go (parse_design st :: acc)
  in
  match go [] with
  | [] -> fail st "empty design file"
  | designs -> designs

let file_of_string text =
  let st = { toks = tokenize text } in
  parse_file st

let of_string text =
  match file_of_string text with
  | [ d ] -> d
  | designs -> List.nth designs (List.length designs - 1)
(* multiple units: the last is the top; the library is available through
   [file_of_string] *)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* The standalone VHDL Parser tool: syntax check only. *)
type check_result = Ok of design | Error of int * string

let check text =
  match of_string text with
  | d -> Ok d
  | exception Parse_error (line, msg) -> Error (line, msg)
  | exception Lex_error (line, msg) -> Error (line, msg)
