(** Recursive-descent parser for the VHDL subset (see {!Vhdl_ast}).

    Also exposes {!check} — the paper's standalone "VHDL Parser" tool,
    which only reports syntax validity. *)

exception Parse_error of int * string
(** Line number and message. *)

val file_of_string : string -> Vhdl_ast.file
(** Parse a file of one or more entity/architecture pairs.
    @raise Parse_error / {!Vhdl_lexer.Lex_error} on malformed input. *)

val of_string : string -> Vhdl_ast.design
(** The last design unit of the file (the conventional top). *)

val of_file : string -> Vhdl_ast.design

type check_result = Ok of Vhdl_ast.design | Error of int * string

val check : string -> check_result
(** Syntax check without raising. *)
