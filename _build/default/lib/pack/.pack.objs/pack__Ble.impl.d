lib/pack/ble.ml: Array Hashtbl List Logic Netlist
