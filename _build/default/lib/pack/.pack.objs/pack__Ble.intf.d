lib/pack/ble.mli: Netlist
