lib/pack/cluster.ml: Array Ble Hashtbl List Logic Netlist Option Printf
