lib/pack/cluster.mli: Ble Hashtbl Netlist
