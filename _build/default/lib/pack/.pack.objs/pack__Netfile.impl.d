lib/pack/netfile.ml: Array Ble Buffer Cluster Hashtbl List Logic Netlist Option Printf String
