lib/pack/netfile.mli: Cluster Netlist
