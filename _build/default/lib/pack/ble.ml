(* Basic Logic Element formation (first half of T-VPack).

   A BLE holds one K-LUT and one flip-flop.  A LUT and the latch it feeds
   merge into one BLE when the latch is the LUT's only fanout (the classic
   packing rule); otherwise each gets its own BLE with the other half
   unused. *)

open Netlist

type t = {
  index : int;
  lut : int option;        (* mapped-network signal computed by the LUT *)
  ff : int option;         (* latch signal registered in this BLE *)
  output : int;            (* the signal this BLE drives *)
  inputs : int list;       (* distinct input signals (LUT fanins or FF data) *)
  name : string;
}

let uses_ff t = t.ff <> None

(* Build BLEs from a K-LUT network. *)
let form (net : Logic.t) =
  let fanout = Logic.fanout_counts net in
  let absorbed = Hashtbl.create 16 in
  (* LUT signals absorbed into a register BLE *)
  let bles = ref [] in
  let next = ref 0 in
  let add ~lut ~ff ~output ~inputs =
    let index = !next in
    incr next;
    bles :=
      { index; lut; ff; output; inputs = List.sort_uniq compare inputs;
        name = Logic.name net output }
      :: !bles
  in
  (* pass 1: latches *)
  List.iter
    (fun l ->
      match Logic.driver net l with
      | Logic.Latch { data; _ } -> (
          match Logic.driver net data with
          | Logic.Gate { fanins; _ }
            when fanout.(data) = 1 && not (List.mem data (Logic.outputs net)) ->
              (* LUT + FF fused *)
              Hashtbl.replace absorbed data ();
              add ~lut:(Some data) ~ff:(Some l) ~output:l
                ~inputs:(Array.to_list fanins)
          | _ ->
              (* FF alone; the LUT input routes through the BLE *)
              add ~lut:None ~ff:(Some l) ~output:l ~inputs:[ data ])
      | _ -> ())
    (Logic.latches net);
  (* pass 2: remaining LUTs *)
  List.iter
    (fun g ->
      if not (Hashtbl.mem absorbed g) then
        match Logic.driver net g with
        | Logic.Gate { fanins; _ } ->
            add ~lut:(Some g) ~ff:None ~output:g ~inputs:(Array.to_list fanins)
        | _ -> ())
    (Logic.gates net);
  (* pass 3: constants that are consumed or exported need a generator BLE
     (a LUT programmed to a constant function, as on real devices) *)
  let fanout = Logic.fanout_counts net in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Const _ when fanout.(id) > 0 ->
        add ~lut:(Some id) ~ff:None ~output:id ~inputs:[]
    | _ -> ()
  done;
  Array.of_list (List.rev !bles)
