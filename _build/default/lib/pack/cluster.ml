(* Greedy attraction-based clustering (second half of T-VPack).

   Clusters are filled one at a time: an unclustered BLE with the most used
   inputs seeds the cluster; BLEs sharing the most nets with the cluster are
   absorbed while the cluster stays within its size (N) and distinct-input
   (I) limits.  Inputs generated inside the cluster stop counting against I
   — the input-sharing effect the I = (K/2)(N+1) rule builds on. *)

open Netlist

type t = {
  id : int;
  bles : Ble.t list;           (* at most N *)
  input_nets : int list;       (* signals entering the cluster *)
  output_nets : int list;      (* BLE outputs used outside the cluster *)
}

type packing = {
  net : Logic.t;               (* the mapped network the packing refers to *)
  clusters : t array;
  n : int;                     (* cluster size limit *)
  i : int;                     (* cluster input limit *)
  cluster_of_ble : (int, int) Hashtbl.t; (* BLE index -> cluster id *)
}

exception Infeasible of string

(* Distinct external inputs if [candidate] joins [members]. *)
let external_inputs members candidate =
  let all = candidate :: members in
  let produced = List.map (fun (b : Ble.t) -> b.Ble.output) all in
  List.concat_map (fun (b : Ble.t) -> b.Ble.inputs) all
  |> List.filter (fun s -> not (List.mem s produced))
  |> List.sort_uniq compare

(* Nets a BLE touches (inputs plus output). *)
let nets_of (b : Ble.t) = List.sort_uniq compare (b.Ble.output :: b.Ble.inputs)

let attraction cluster_nets b =
  List.length (List.filter (fun s -> List.mem s cluster_nets) (nets_of b))

let pack ?(n = 5) ?(i = 12) (net : Logic.t) =
  let bles = Ble.form net in
  List.iter
    (fun (b : Ble.t) ->
      let need = List.length b.Ble.inputs in
      if need > i then
        raise
          (Infeasible
             (Printf.sprintf "BLE %s needs %d inputs; the CLB provides %d"
                b.Ble.name need i)))
    (Array.to_list bles);
  let unclustered = Hashtbl.create 64 in
  Array.iter (fun (b : Ble.t) -> Hashtbl.replace unclustered b.Ble.index b) bles;
  let cluster_of_ble = Hashtbl.create 64 in
  let clusters = ref [] in
  let next_id = ref 0 in
  while Hashtbl.length unclustered > 0 do
    (* seed: most inputs *)
    let seed =
      Hashtbl.fold
        (fun _ b best ->
          match best with
          | None -> Some b
          | Some cur ->
              if List.length b.Ble.inputs > List.length cur.Ble.inputs then
                Some b
              else best)
        unclustered None
    in
    let seed = Option.get seed in
    Hashtbl.remove unclustered seed.Ble.index;
    let members = ref [ seed ] in
    let full = ref false in
    while (not !full) && List.length !members < n do
      let cluster_nets =
        List.sort_uniq compare (List.concat_map nets_of !members)
      in
      (* best feasible candidate by attraction *)
      let best =
        Hashtbl.fold
          (fun _ b best ->
            if List.length (external_inputs !members b) <= i then
              let a = attraction cluster_nets b in
              match best with
              | Some (cur_a, _) when cur_a >= a -> best
              | _ -> Some (a, b)
            else best)
          unclustered None
      in
      match best with
      | Some (_, b) ->
          Hashtbl.remove unclustered b.Ble.index;
          members := b :: !members
      | None -> full := true
    done;
    let id = !next_id in
    incr next_id;
    let members = List.rev !members in
    List.iter (fun (b : Ble.t) -> Hashtbl.replace cluster_of_ble b.Ble.index id)
      members;
    clusters := (id, members) :: !clusters
  done;
  (* compute per-cluster input/output nets *)
  let fanout_users = Hashtbl.create 64 in
  (* signal -> BLE indices using it as input *)
  Array.iter
    (fun (b : Ble.t) ->
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt fanout_users s) ~default:[] in
          Hashtbl.replace fanout_users s (b.Ble.index :: cur))
        b.Ble.inputs)
    bles;
  let outputs_of_net = Logic.outputs net in
  let finalize (id, members) =
    let produced = List.map (fun (b : Ble.t) -> b.Ble.output) members in
    let input_nets =
      List.concat_map (fun (b : Ble.t) -> b.Ble.inputs) members
      |> List.filter (fun s -> not (List.mem s produced))
      |> List.sort_uniq compare
    in
    let output_nets =
      List.filter
        (fun s ->
          List.mem s outputs_of_net
          || List.exists
               (fun user -> Hashtbl.find cluster_of_ble user <> id)
               (Option.value (Hashtbl.find_opt fanout_users s) ~default:[]))
        produced
    in
    { id; bles = members; input_nets; output_nets }
  in
  let clusters = List.rev_map finalize !clusters |> List.rev in
  {
    net;
    clusters = Array.of_list (List.rev clusters);
    n;
    i;
    cluster_of_ble;
  }

(* ---------- statistics and invariants ---------- *)

let cluster_count p = Array.length p.clusters

let ble_count p =
  Array.fold_left (fun acc c -> acc + List.length c.bles) 0 p.clusters

(* Check the N / I / single-driver invariants (used by tests). *)
let check p =
  Array.for_all
    (fun c ->
      List.length c.bles <= p.n && List.length c.input_nets <= p.i)
    p.clusters
  &&
  (* every BLE in exactly one cluster *)
  let seen = Hashtbl.create 64 in
  Array.for_all
    (fun c ->
      List.for_all
        (fun (b : Ble.t) ->
          if Hashtbl.mem seen b.Ble.index then false
          else begin
            Hashtbl.replace seen b.Ble.index ();
            true
          end)
        c.bles)
    p.clusters

(* Average fraction of occupied BLE slots. *)
let utilization p =
  if Array.length p.clusters = 0 then 1.0
  else
    float_of_int (ble_count p)
    /. float_of_int (Array.length p.clusters * p.n)
