(* T-VPack netlist file: the textual interchange between the packer and
   VPR (placement & routing), mirroring the role of VPR's .net format.

   Format (one directive per line, '#' comments):

     .model <name>
     .n <N> .i <I>
     .cluster <id>
       .ble <output-signal> lut=<signal|-> ff=<signal|-> in=<sig,sig,...>
     .endcluster
 *)

open Netlist

let to_string (p : Cluster.packing) =
  let buf = Buffer.create 1024 in
  let nm id = Logic.name p.Cluster.net id in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" p.Cluster.net.Logic.model);
  Buffer.add_string buf (Printf.sprintf ".n %d .i %d\n" p.Cluster.n p.Cluster.i);
  Array.iter
    (fun (c : Cluster.t) ->
      Buffer.add_string buf (Printf.sprintf ".cluster %d\n" c.Cluster.id);
      List.iter
        (fun (b : Ble.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  .ble %s lut=%s ff=%s in=%s\n" (nm b.Ble.output)
               (match b.Ble.lut with Some l -> nm l | None -> "-")
               (match b.Ble.ff with Some f -> nm f | None -> "-")
               (String.concat "," (List.map nm b.Ble.inputs))))
        c.Cluster.bles;
      Buffer.add_string buf ".endcluster\n")
    p.Cluster.clusters;
  Buffer.contents buf

let to_file path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

exception Parse_error of string

(* Rebuild a packing against [net] (the mapped network the file refers to). *)
let of_string (net : Logic.t) text =
  let sig_of nm =
    match Logic.find net nm with
    | Some id -> id
    | None -> raise (Parse_error ("unknown signal " ^ nm))
  in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let n = ref 5 and i = ref 12 in
  let clusters = ref [] in
  let current = ref None in
  let ble_index = ref 0 in
  List.iter
    (fun line ->
      let toks =
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      in
      match toks with
      | ".model" :: _ -> ()
      | [ ".n"; nv; ".i"; iv ] ->
          n := int_of_string nv;
          i := int_of_string iv
      | [ ".cluster"; id ] -> current := Some (int_of_string id, [])
      | [ ".endcluster" ] -> (
          match !current with
          | Some (id, bles) ->
              clusters := (id, List.rev bles) :: !clusters;
              current := None
          | None -> raise (Parse_error ".endcluster without .cluster"))
      | ".ble" :: out :: rest -> (
          let get prefix =
            match
              List.find_opt
                (fun t -> String.length t >= String.length prefix
                          && String.sub t 0 (String.length prefix) = prefix)
                rest
            with
            | Some t ->
                String.sub t (String.length prefix)
                  (String.length t - String.length prefix)
            | None -> raise (Parse_error ("missing " ^ prefix))
          in
          let lut = get "lut=" and ff = get "ff=" and ins = get "in=" in
          let inputs =
            if ins = "" then []
            else List.map sig_of (String.split_on_char ',' ins)
          in
          let b =
            {
              Ble.index = !ble_index;
              lut = (if lut = "-" then None else Some (sig_of lut));
              ff = (if ff = "-" then None else Some (sig_of ff));
              output = sig_of out;
              inputs = List.sort_uniq compare inputs;
              name = out;
            }
          in
          incr ble_index;
          match !current with
          | Some (id, bles) -> current := Some (id, b :: bles)
          | None -> raise (Parse_error ".ble outside .cluster"))
      | _ -> raise (Parse_error ("bad line: " ^ line)))
    lines;
  let cluster_of_ble = Hashtbl.create 64 in
  let outputs_of_net = Logic.outputs net in
  let all = List.rev !clusters in
  List.iter
    (fun (id, bles) ->
      List.iter (fun (b : Ble.t) -> Hashtbl.replace cluster_of_ble b.Ble.index id)
        bles)
    all;
  let fanout_users = Hashtbl.create 64 in
  List.iter
    (fun (_, bles) ->
      List.iter
        (fun (b : Ble.t) ->
          List.iter
            (fun s ->
              let cur =
                Option.value (Hashtbl.find_opt fanout_users s) ~default:[]
              in
              Hashtbl.replace fanout_users s (b.Ble.index :: cur))
            b.Ble.inputs)
        bles)
    all;
  let finalize (id, members) =
    let produced = List.map (fun (b : Ble.t) -> b.Ble.output) members in
    let input_nets =
      List.concat_map (fun (b : Ble.t) -> b.Ble.inputs) members
      |> List.filter (fun s -> not (List.mem s produced))
      |> List.sort_uniq compare
    in
    let output_nets =
      List.filter
        (fun s ->
          List.mem s outputs_of_net
          || List.exists
               (fun user -> Hashtbl.find cluster_of_ble user <> id)
               (Option.value (Hashtbl.find_opt fanout_users s) ~default:[]))
        produced
    in
    { Cluster.id; bles = members; input_nets; output_nets }
  in
  {
    Cluster.net;
    clusters = Array.of_list (List.map finalize all);
    n = !n;
    i = !i;
    cluster_of_ble;
  }
