(** T-VPack netlist file: the textual interchange between the packer and
    VPR, mirroring the role of VPR's .net format. *)

exception Parse_error of string

val to_string : Cluster.packing -> string
val to_file : string -> Cluster.packing -> unit

val of_string : Netlist.Logic.t -> string -> Cluster.packing
(** Rebuild a packing against the mapped network the file refers to.
    @raise Parse_error on malformed input or unknown signals. *)
