lib/place/anneal.ml: Array Float Fpga_arch Hashtbl List Placement Problem Td_timing Util
