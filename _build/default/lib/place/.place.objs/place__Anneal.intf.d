lib/place/anneal.mli: Fpga_arch Placement Problem Td_timing
