lib/place/placement.ml: Array Fpga_arch Hashtbl Problem Util
