lib/place/placement.mli: Fpga_arch Hashtbl Problem
