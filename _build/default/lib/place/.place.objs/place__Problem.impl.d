lib/place/problem.ml: Array Fpga_arch Hashtbl List Logic Netlist Option Pack Printf
