lib/place/problem.mli: Fpga_arch Netlist Pack
