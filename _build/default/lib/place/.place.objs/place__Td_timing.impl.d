lib/place/td_timing.ml: Array Float Hashtbl List Logic Netlist Option Pack Problem
