lib/place/td_timing.mli: Hashtbl Problem
