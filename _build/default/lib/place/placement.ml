(* A placement assignment plus the bounding-box wirelength cost. *)

type t = {
  problem : Problem.t;
  loc : Fpga_arch.Grid.location array;       (* per block *)
  clb_at : int array array;                  (* (x, y) -> block or -1 *)
  pad_at : (int * int * int, int) Hashtbl.t; (* (x, y, sub) -> block *)
}

let location t b = t.loc.(b)

let coords t b =
  match t.loc.(b) with
  | Fpga_arch.Grid.Clb (x, y) -> (x, y)
  | Fpga_arch.Grid.Pad (x, y, _) -> (x, y)

(* Random initial placement. *)
let initial ?(seed = 1) (problem : Problem.t) =
  let rng = Util.Prng.create seed in
  let grid = problem.Problem.grid in
  let clb_slots = Array.of_list (Fpga_arch.Grid.clb_positions grid) in
  let pad_slots = Array.of_list (Fpga_arch.Grid.pad_positions grid) in
  Util.Prng.shuffle rng clb_slots;
  Util.Prng.shuffle rng pad_slots;
  let loc =
    Array.make (Array.length problem.Problem.blocks) (Fpga_arch.Grid.Clb (0, 0))
  in
  let clb_at = Array.make_matrix (grid.Fpga_arch.Grid.nx + 2)
      (grid.Fpga_arch.Grid.ny + 2) (-1) in
  let pad_at = Hashtbl.create 64 in
  let next_clb = ref 0 and next_pad = ref 0 in
  Array.iteri
    (fun b kind ->
      match kind with
      | Problem.Cluster_block _ ->
          let x, y = clb_slots.(!next_clb) in
          incr next_clb;
          loc.(b) <- Fpga_arch.Grid.Clb (x, y);
          clb_at.(x).(y) <- b
      | Problem.Input_pad _ | Problem.Output_pad _ ->
          let x, y, sub = pad_slots.(!next_pad) in
          incr next_pad;
          loc.(b) <- Fpga_arch.Grid.Pad (x, y, sub);
          Hashtbl.replace pad_at (x, y, sub) b)
    problem.Problem.blocks;
  { problem; loc; clb_at; pad_at }

(* ---------- cost ---------- *)

(* VPR's bounding-box wirelength: half-perimeter scaled by a fanout
   correction factor q (Cheng's values, linearised above 3 terminals). *)
let q_factor terminals =
  if terminals <= 3 then 1.0
  else 0.8624 +. (0.1 *. float_of_int (terminals - 3))

let net_bbox t (net : Problem.net) =
  let x0, y0 = coords t net.Problem.driver in
  let xmin = ref x0 and xmax = ref x0 and ymin = ref y0 and ymax = ref y0 in
  Array.iter
    (fun s ->
      let x, y = coords t s in
      if x < !xmin then xmin := x;
      if x > !xmax then xmax := x;
      if y < !ymin then ymin := y;
      if y > !ymax then ymax := y)
    net.Problem.sinks;
  (!xmin, !xmax, !ymin, !ymax)

let net_cost t net =
  let xmin, xmax, ymin, ymax = net_bbox t net in
  let terminals = 1 + Array.length net.Problem.sinks in
  q_factor terminals *. float_of_int (xmax - xmin + (ymax - ymin))

let total_cost t =
  Array.fold_left (fun acc net -> acc +. net_cost t net) 0.0
    t.problem.Problem.nets

(* ---------- legality (used by tests) ---------- *)

let legal t =
  let grid = t.problem.Problem.grid in
  let ok = ref true in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun b kind ->
      (match (kind, t.loc.(b)) with
      | Problem.Cluster_block _, Fpga_arch.Grid.Clb (x, y) ->
          if not (Fpga_arch.Grid.in_clb_range grid (x, y)) then ok := false
      | (Problem.Input_pad _ | Problem.Output_pad _), Fpga_arch.Grid.Pad (x, y, sub)
        ->
          if not (Fpga_arch.Grid.is_perimeter grid (x, y)) then ok := false;
          if sub < 0 || sub >= grid.Fpga_arch.Grid.io_rat then ok := false
      | _ -> ok := false);
      if Hashtbl.mem seen t.loc.(b) then ok := false;
      Hashtbl.replace seen t.loc.(b) ())
    t.problem.Problem.blocks;
  !ok
