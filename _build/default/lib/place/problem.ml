(* The placement problem: blocks (clusters and IO pads) and the nets
   connecting them, extracted from a T-VPack packing.

   The clock is distributed on a dedicated global network (the platform has
   one clock per CLB), so it does not appear as a routable net. *)

open Netlist

type block =
  | Cluster_block of int (* cluster id *)
  | Input_pad of int     (* signal id *)
  | Output_pad of int    (* signal id *)

type net = {
  signal : int;          (* signal id in the mapped network *)
  driver : int;          (* block index *)
  sinks : int array;     (* block indices *)
}

type t = {
  packing : Pack.Cluster.packing;
  blocks : block array;
  nets : net array;
  grid : Fpga_arch.Grid.t;
}

let block_name problem idx =
  let nm s = Logic.name problem.packing.Pack.Cluster.net s in
  match problem.blocks.(idx) with
  | Cluster_block c -> Printf.sprintf "clb_%d" c
  | Input_pad s -> Printf.sprintf "ipad_%s" (nm s)
  | Output_pad s -> Printf.sprintf "opad_%s" (nm s)

let is_pad = function Input_pad _ | Output_pad _ -> true | Cluster_block _ -> false

(* Signals excluded from routing: the clock (global network). *)
let global_signals (net : Logic.t) =
  match net.Logic.clock with
  | Some clk -> (
      match Logic.find net clk with Some id -> [ id ] | None -> [])
  | None -> []

let build ?(io_rat = 2) (p : Pack.Cluster.packing) =
  let lnet = p.Pack.Cluster.net in
  let globals = global_signals lnet in
  let blocks = ref [] in
  let n_blocks = ref 0 in
  let add b =
    blocks := b :: !blocks;
    incr n_blocks;
    !n_blocks - 1
  in
  (* clusters *)
  let cluster_block = Array.make (Array.length p.Pack.Cluster.clusters) (-1) in
  Array.iter
    (fun (c : Pack.Cluster.t) ->
      cluster_block.(c.Pack.Cluster.id) <- add (Cluster_block c.Pack.Cluster.id))
    p.Pack.Cluster.clusters;
  (* input pads: primary inputs, except globals *)
  let input_block = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (List.mem s globals) then
        Hashtbl.replace input_block s (add (Input_pad s)))
    (Logic.inputs lnet);
  (* output pads *)
  let output_block = Hashtbl.create 16 in
  List.iter
    (fun s -> Hashtbl.replace output_block s (add (Output_pad s)))
    (Logic.outputs lnet);
  let blocks = Array.of_list (List.rev !blocks) in
  (* signal -> producing block *)
  let producer = Hashtbl.create 64 in
  Hashtbl.iter (fun s b -> Hashtbl.replace producer s b) input_block;
  Array.iter
    (fun (c : Pack.Cluster.t) ->
      List.iter
        (fun (b : Pack.Ble.t) ->
          Hashtbl.replace producer b.Pack.Ble.output
            cluster_block.(c.Pack.Cluster.id))
        c.Pack.Cluster.bles)
    p.Pack.Cluster.clusters;
  (* nets: any signal consumed by a block other than its producer *)
  let sinks_of = Hashtbl.create 64 in
  let add_sink s b =
    if not (List.mem s globals) then begin
      let cur = Option.value (Hashtbl.find_opt sinks_of s) ~default:[] in
      if not (List.mem b cur) then Hashtbl.replace sinks_of s (b :: cur)
    end
  in
  Array.iter
    (fun (c : Pack.Cluster.t) ->
      List.iter
        (fun s -> add_sink s cluster_block.(c.Pack.Cluster.id))
        c.Pack.Cluster.input_nets)
    p.Pack.Cluster.clusters;
  Hashtbl.iter (fun s b -> add_sink s b) output_block;
  let nets =
    Hashtbl.fold
      (fun s sinks acc ->
        match Hashtbl.find_opt producer s with
        | Some driver ->
            let sinks = List.filter (fun b -> b <> driver) sinks in
            if sinks = [] then acc
            else { signal = s; driver; sinks = Array.of_list sinks } :: acc
        | None -> acc)
      sinks_of []
    |> List.sort (fun a b -> compare a.signal b.signal)
    |> Array.of_list
  in
  let n_clbs = Array.length p.Pack.Cluster.clusters in
  let n_ios = Hashtbl.length input_block + Hashtbl.length output_block in
  let grid = Fpga_arch.Grid.size_for ~n_clbs ~n_ios ~io_rat in
  { packing = p; blocks; nets; grid }
