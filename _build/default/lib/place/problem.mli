(** The placement problem: blocks (clusters and IO pads) and the nets
    connecting them, extracted from a T-VPack packing.

    The clock is distributed on a dedicated global network (the platform
    has one clock per CLB), so it does not appear as a routable net. *)

type block =
  | Cluster_block of int (** cluster id *)
  | Input_pad of int     (** signal id *)
  | Output_pad of int    (** signal id *)

type net = {
  signal : int;       (** signal id in the mapped network *)
  driver : int;       (** block index *)
  sinks : int array;  (** block indices *)
}

type t = {
  packing : Pack.Cluster.packing;
  blocks : block array;
  nets : net array;
  grid : Fpga_arch.Grid.t;
}

val block_name : t -> int -> string

val is_pad : block -> bool

val global_signals : Netlist.Logic.t -> int list
(** Signals excluded from routing (the clock). *)

val build : ?io_rat:int -> Pack.Cluster.packing -> t
(** Derive blocks, nets and a fitting grid. *)
