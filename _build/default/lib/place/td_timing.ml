(* Pre-route static timing for timing-driven placement (T-VPlace style).

   Interconnect delays are estimated from placement distance (a linear
   per-tile model); a forward/backward pass over the mapped netlist yields
   per-connection slacks, and criticality = 1 - slack / Dmax weights the
   placement cost so critical connections pull their endpoints together. *)

open Netlist

type delay_model = {
  t_local : float;    (* intra-cluster connection, s *)
  t_per_tile : float; (* per Manhattan tile of separation, s *)
  t_fixed : float;    (* pin/buffer overhead of any inter-block hop, s *)
  t_logic : float;    (* LUT delay, s *)
  t_clk_q : float;
  t_setup : float;
}

let default_model =
  {
    t_local = 0.18e-9;
    t_per_tile = 0.25e-9;
    t_fixed = 0.35e-9;
    t_logic = 0.45e-9;
    t_clk_q = 0.20e-9;
    t_setup = 0.10e-9;
  }

(* Per-signal producing block (clusters and input pads). *)
let block_of_signal (problem : Problem.t) =
  let packing = problem.Problem.packing in
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun bidx kind ->
      match kind with
      | Problem.Cluster_block cid ->
          List.iter
            (fun (b : Pack.Ble.t) ->
              Hashtbl.replace tbl b.Pack.Ble.output bidx)
            packing.Pack.Cluster.clusters.(cid).Pack.Cluster.bles
      | Problem.Input_pad s -> Hashtbl.replace tbl s bidx
      | Problem.Output_pad _ -> ())
    problem.Problem.blocks;
  tbl

type analysis = {
  dmax : float;
  (* criticality of each (net index, sink block): flattened per net *)
  criticality : float array array;
}

(* Run STA for the given block coordinates. *)
let analyze ?(model = default_model) (problem : Problem.t) ~coords =
  let lnet = problem.Problem.packing.Pack.Cluster.net in
  let producer = block_of_signal problem in
  let conn_delay src_sig dst_sig =
    match (Hashtbl.find_opt producer src_sig, Hashtbl.find_opt producer dst_sig) with
    | Some a, Some b when a = b -> model.t_local
    | Some a, Some b ->
        let ax, ay = coords a and bx, by = coords b in
        model.t_fixed
        +. (model.t_per_tile *. float_of_int (abs (ax - bx) + abs (ay - by)))
    | _ -> model.t_local
  in
  (* forward: arrival times *)
  let n = Logic.signal_count lnet in
  let arrival = Array.make n 0.0 in
  let order = Logic.topo_order lnet in
  List.iter
    (fun id ->
      match Logic.driver lnet id with
      | Logic.Input | Logic.Const _ -> arrival.(id) <- 0.0
      | Logic.Latch _ -> arrival.(id) <- model.t_clk_q
      | Logic.Gate { fanins; _ } ->
          arrival.(id) <-
            model.t_logic
            +. Array.fold_left
                 (fun acc f -> Float.max acc (arrival.(f) +. conn_delay f id))
                 0.0 fanins)
    order;
  (* endpoint arrival: latch data (plus setup) and output pads *)
  let endpoint_delay id extra = arrival.(id) +. extra in
  let dmax = ref 1e-12 in
  List.iter
    (fun l ->
      match Logic.driver lnet l with
      | Logic.Latch { data; _ } ->
          dmax :=
            Float.max !dmax
              (endpoint_delay data (conn_delay data l +. model.t_setup))
      | _ -> ())
    (Logic.latches lnet);
  Array.iteri
    (fun bidx kind ->
      match kind with
      | Problem.Output_pad s ->
          let d =
            match Hashtbl.find_opt producer s with
            | Some a when a <> bidx ->
                let ax, ay = coords a and bx, by = coords bidx in
                model.t_fixed
                +. (model.t_per_tile
                   *. float_of_int (abs (ax - bx) + abs (ay - by)))
            | _ -> model.t_local
          in
          dmax := Float.max !dmax (arrival.(s) +. d)
      | _ -> ())
    problem.Problem.blocks;
  (* backward: required times *)
  let required = Array.make n infinity in
  let relax id t = if t < required.(id) then required.(id) <- t in
  List.iter
    (fun l ->
      match Logic.driver lnet l with
      | Logic.Latch { data; _ } ->
          relax data (!dmax -. conn_delay data l -. model.t_setup)
      | _ -> ())
    (Logic.latches lnet);
  Array.iteri
    (fun bidx kind ->
      match kind with
      | Problem.Output_pad s ->
          let d =
            match Hashtbl.find_opt producer s with
            | Some a when a <> bidx ->
                let ax, ay = coords a and bx, by = coords bidx in
                model.t_fixed
                +. (model.t_per_tile
                   *. float_of_int (abs (ax - bx) + abs (ay - by)))
            | _ -> model.t_local
          in
          relax s (!dmax -. d)
      | _ -> ())
    problem.Problem.blocks;
  List.iter
    (fun id ->
      match Logic.driver lnet id with
      | Logic.Gate { fanins; _ } ->
          let r = required.(id) -. model.t_logic in
          Array.iter (fun f -> relax f (r -. conn_delay f id)) fanins
      | _ -> ())
    (List.rev order);
  (* criticality per routed connection: for each net, for each sink block,
     the worst criticality over signals consumed there *)
  let consumers_at = Hashtbl.create 64 in
  (* (signal, block) -> consuming signal ids *)
  List.iter
    (fun id ->
      List.iter
        (fun f ->
          match Hashtbl.find_opt producer id with
          | Some b ->
              let key = (f, b) in
              let cur = Option.value (Hashtbl.find_opt consumers_at key) ~default:[] in
              Hashtbl.replace consumers_at key (id :: cur)
          | None -> ())
        (Logic.fanins lnet id))
    (List.init n (fun i -> i));
  let crit_of_connection s sink_block =
    let users = Option.value (Hashtbl.find_opt consumers_at (s, sink_block)) ~default:[] in
    List.fold_left
      (fun acc u ->
        let slack = required.(u) -. model.t_logic -. conn_delay s u -. arrival.(s) in
        let c = 1.0 -. (Float.max 0.0 slack /. !dmax) in
        Float.max acc (Float.min 1.0 (Float.max 0.0 c)))
      0.0 users
  in
  let criticality =
    Array.map
      (fun (net : Problem.net) ->
        Array.map
          (fun sink_block ->
            match problem.Problem.blocks.(sink_block) with
            | Problem.Output_pad _ ->
                let slack = required.(net.Problem.signal) -. arrival.(net.Problem.signal) in
                Float.min 1.0 (Float.max 0.0 (1.0 -. (Float.max 0.0 slack /. !dmax)))
            | _ -> crit_of_connection net.Problem.signal sink_block)
          net.Problem.sinks)
      problem.Problem.nets
  in
  { dmax = !dmax; criticality }
