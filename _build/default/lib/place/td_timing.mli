(** Pre-route static timing for timing-driven placement (T-VPlace style).

    Interconnect delays are estimated from placement distance (a linear
    per-tile model); a forward/backward pass over the mapped netlist
    yields per-connection slacks, and criticality = 1 - slack / Dmax
    weights the placement cost. *)

type delay_model = {
  t_local : float;    (** intra-cluster connection, s *)
  t_per_tile : float; (** per Manhattan tile of separation, s *)
  t_fixed : float;    (** pin/buffer overhead of an inter-block hop, s *)
  t_logic : float;    (** LUT delay, s *)
  t_clk_q : float;
  t_setup : float;
}

val default_model : delay_model

val block_of_signal : Problem.t -> (int, int) Hashtbl.t
(** Producing block of every cluster-output / input-pad signal. *)

type analysis = {
  dmax : float;  (** estimated critical path, s *)
  criticality : float array array;
      (** per (net index, sink position): in [0, 1] *)
}

val analyze :
  ?model:delay_model -> Problem.t -> coords:(int -> int * int) -> analysis
