lib/power/activity.ml: Array Float Hashtbl List Logic Netlist Tt Util
