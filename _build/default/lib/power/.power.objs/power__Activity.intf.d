lib/power/activity.mli: Netlist
