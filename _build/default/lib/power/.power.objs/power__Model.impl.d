lib/power/model.ml: Activity Array Format Fpga_arch Hashtbl List Logic Netlist Pack Place Route Spice
