lib/power/model.mli: Format Route
