(* Switching-activity estimation by random-vector simulation (the approach
   of the Poon/Wilton FPGA power model's default mode).

   The mapped network is clocked for [cycles] cycles with fresh random
   primary inputs each cycle; every signal's transition count and high-state
   occupancy are accumulated.  Activities are transitions per clock cycle. *)

open Netlist

type t = {
  activity : float array;     (* signal id -> transitions per cycle *)
  probability : float array;  (* signal id -> P(high) *)
  cycles : int;
}

(* ---------- analytic mode ----------

   The model's probabilistic mode: static probabilities propagate exactly
   through each gate's truth table under an input-independence assumption.
   In the zero-delay synchronous model with i.i.d. input vectors, a
   signal's per-cycle toggle probability is then 2 p (1 - p) — the same
   quantity the random-vector simulation measures.  (Najm's transition
   density, which additionally counts glitching, is available through
   [boolean_difference] for callers that want it.)  Latch statistics
   iterate to a fixed point. *)

(* P(f = 1) given independent input probabilities. *)
let tt_probability tt p =
  let n = Tt.arity tt in
  let total = ref 0.0 in
  for row = 0 to (1 lsl n) - 1 do
    if Tt.eval tt row then begin
      let pr = ref 1.0 in
      for i = 0 to n - 1 do
        pr := !pr *. (if (row lsr i) land 1 = 1 then p.(i) else 1.0 -. p.(i))
      done;
      total := !total +. !pr
    end
  done;
  !total

(* P(boolean difference wrt input i) = P(f_xi=1 <> f_xi=0). *)
let boolean_difference tt i p =
  let f1 = Tt.cofactor tt i true and f0 = Tt.cofactor tt i false in
  tt_probability (Tt.lxor_ f1 f0) p

let estimate_static ?(iterations = 16) (net : Logic.t) =
  let n = Logic.signal_count net in
  let prob = Array.make n 0.5 in
  let dens = Array.make n 1.0 in
  let order = Logic.topo_order net in
  (* latch outputs converge over a few sweeps (their values feed back) *)
  let toggle p = 2.0 *. p *. (1.0 -. p) in
  for _ = 1 to iterations do
    List.iter
      (fun id ->
        match Logic.driver net id with
        | Logic.Input -> prob.(id) <- 0.5; dens.(id) <- toggle 0.5
        | Logic.Const b -> prob.(id) <- (if b then 1.0 else 0.0); dens.(id) <- 0.0
        | Logic.Gate { tt; fanins } ->
            let p = Array.map (fun f -> prob.(f)) fanins in
            prob.(id) <- tt_probability tt p;
            dens.(id) <- toggle prob.(id)
        | Logic.Latch _ -> ())
      order;
    (* a register fires at most once per cycle: its toggle probability is
       that of its data, bounded by the data's own activity *)
    List.iter
      (fun l ->
        match Logic.driver net l with
        | Logic.Latch { data; _ } ->
            prob.(l) <- prob.(data);
            dens.(l) <- Float.min dens.(data) (toggle prob.(data))
        | _ -> ())
      (Logic.latches net)
  done;
  { activity = dens; probability = prob; cycles = 0 }

let estimate ?(cycles = 512) ?(seed = 7) (net : Logic.t) =
  let rng = Util.Prng.create seed in
  let n = Logic.signal_count net in
  let transitions = Array.make n 0 in
  let highs = Array.make n 0 in
  let st = Logic.sim_init net in
  let prev = Array.make n false in
  let inputs = Logic.inputs net in
  let tbl = Hashtbl.create 16 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  for _ = 1 to cycles do
    List.iter
      (fun id -> Hashtbl.replace tbl (Logic.name net id) (Util.Prng.bool rng))
      inputs;
    Logic.sim_eval net st input_of;
    for id = 0 to n - 1 do
      let v = Logic.sim_value st id in
      if v <> prev.(id) then transitions.(id) <- transitions.(id) + 1;
      if v then highs.(id) <- highs.(id) + 1;
      prev.(id) <- v
    done;
    Logic.sim_step net st
  done;
  {
    activity =
      Array.map (fun t -> float_of_int t /. float_of_int cycles) transitions;
    probability =
      Array.map (fun h -> float_of_int h /. float_of_int cycles) highs;
    cycles;
  }
