lib/route/pathfinder.ml: Array List Rrgraph Util
