lib/route/pathfinder.mli: Rrgraph
