lib/route/render.ml: Array Buffer Fpga_arch Hashtbl List Option Pack Pathfinder Place Printf Router Rrgraph Util
