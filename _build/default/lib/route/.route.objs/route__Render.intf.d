lib/route/render.mli: Hashtbl Router
