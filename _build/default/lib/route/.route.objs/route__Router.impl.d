lib/route/router.ml: Array Float Fpga_arch Hashtbl List Pack Pathfinder Place Printf Rrgraph Timing
