lib/route/router.mli: Fpga_arch Pathfinder Place Rrgraph Timing
