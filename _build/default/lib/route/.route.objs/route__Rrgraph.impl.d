lib/route/rrgraph.ml: Array Float Fpga_arch Hashtbl List Option Pack Place
