lib/route/rrgraph.mli: Fpga_arch Hashtbl Place
