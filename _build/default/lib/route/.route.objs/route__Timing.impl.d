lib/route/timing.ml: Array Float Fpga_arch Hashtbl List Logic Netlist Option Pack Pathfinder Place Rrgraph Spice
