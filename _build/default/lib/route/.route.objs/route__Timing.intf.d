lib/route/timing.mli: Fpga_arch Hashtbl Pathfinder Place Rrgraph Spice
