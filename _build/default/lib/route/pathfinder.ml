(* PathFinder negotiated-congestion routing (McMurchie & Ebeling), the
   algorithm VPR uses.

   Each iteration rips up and reroutes every net with Dijkstra over node
   costs  base * (1 + acc_fac * history) * present,  where [present]
   penalises current overuse and grows geometrically between iterations.
   Convergence = no node used beyond its capacity. *)

type net_spec = {
  index : int;               (* position in the problem's net array *)
  source : int;              (* driver OPIN node *)
  sinks : int list;          (* SINK nodes *)
  crit : float;              (* timing criticality in [0,1]; 0 = pure
                                congestion-driven routing *)
}

type route_tree = {
  net_index : int;
  nodes : int list;          (* all RR nodes of the net's routing *)
  parents : (int * int) list; (* (node, parent-node) edges of the tree *)
}

type result = {
  graph : Rrgraph.t;
  trees : route_tree array;
  iterations : int;
  success : bool;
}

type state = {
  occ : int array;
  history : float array;
  mutable pres_fac : float;
}

let node_cost (g : Rrgraph.t) st n ~extra =
  let node = g.Rrgraph.nodes.(n) in
  let over = st.occ.(n) + extra + 1 - node.Rrgraph.capacity in
  let present = if over > 0 then 1.0 +. (float_of_int over *. st.pres_fac) else 1.0 in
  node.Rrgraph.base_cost *. (1.0 +. st.history.(n)) *. present

(* Timing-driven blend (the VPR router's cost): a critical net weighs node
   delay, a non-critical net weighs congestion. *)
let blended_cost (g : Rrgraph.t) st ?node_delay ~crit n =
  match node_delay with
  | Some delays when crit > 0.0 ->
      (crit *. delays.(n) /. 1e-11)
      +. ((1.0 -. crit) *. node_cost g st n ~extra:0)
  | _ -> node_cost g st n ~extra:0

(* Scratch buffers shared across nets within one [route] call. *)
type scratch = {
  dist : float array;
  prev : int array;
  in_tree : bool array;
  is_sink : bool array;
  heap : int Util.Pqueue.t;
}

let make_scratch n =
  {
    dist = Array.make n infinity;
    prev = Array.make n (-1);
    in_tree = Array.make n false;
    is_sink = Array.make n false;
    heap = Util.Pqueue.create ();
  }

(* Route one net: grow a tree from the driver OPIN to every sink.
   [bounds], if given, restricts the search to nodes intersecting the
   rectangle (VPR's bounding-box routing). *)
let route_net (g : Rrgraph.t) st sc ?node_delay ?bounds ~crit ~source ~sinks () =
  let inside =
    match bounds with
    | None -> fun _ -> true
    | Some (bx0, bx1, by0, by1) ->
        fun v ->
          g.Rrgraph.xhi.(v) >= bx0 && g.Rrgraph.xlo.(v) <= bx1
          && g.Rrgraph.yhi.(v) >= by0 && g.Rrgraph.ylo.(v) <= by1
  in
  let n = Rrgraph.node_count g in
  let tree_nodes = ref [ source ] in
  let tree_parents = ref [] in
  sc.in_tree.(source) <- true;
  List.iter (fun t -> sc.is_sink.(t) <- true) sinks;
  let n_remaining = ref (List.length sinks) in
  let cleanup () =
    List.iter (fun t -> sc.is_sink.(t) <- false) sinks;
    List.iter (fun t -> sc.in_tree.(t) <- false) !tree_nodes
  in
  (try
     while !n_remaining > 0 do
       (* multi-source Dijkstra from the current tree *)
       Array.fill sc.dist 0 n infinity;
       Array.fill sc.prev 0 n (-1);
       Util.Pqueue.clear sc.heap;
       List.iter
         (fun t ->
           sc.dist.(t) <- 0.0;
           Util.Pqueue.push sc.heap 0.0 t)
         !tree_nodes;
       let target = ref (-1) in
       (try
          while not (Util.Pqueue.is_empty sc.heap) do
            let d, u = Util.Pqueue.pop sc.heap in
            if d <= sc.dist.(u) then begin
              if sc.is_sink.(u) then begin
                target := u;
                raise Exit
              end;
              Array.iter
                (fun v ->
                  if inside v then begin
                    let c = blended_cost g st ?node_delay ~crit v in
                    let nd = d +. c in
                    if nd < sc.dist.(v) then begin
                      sc.dist.(v) <- nd;
                      sc.prev.(v) <- u;
                      Util.Pqueue.push sc.heap nd v
                    end
                  end)
                g.Rrgraph.edges.(u)
            end
          done
        with Exit -> ());
       if !target < 0 then raise Not_found;
       (* trace back, adding path nodes to the tree *)
       let rec back v =
         if not sc.in_tree.(v) then begin
           sc.in_tree.(v) <- true;
           tree_nodes := v :: !tree_nodes;
           tree_parents := (v, sc.prev.(v)) :: !tree_parents;
           back sc.prev.(v)
         end
       in
       back !target;
       sc.is_sink.(!target) <- false;
       decr n_remaining
     done
   with e -> cleanup (); raise e);
  cleanup ();
  (List.sort_uniq compare !tree_nodes, !tree_parents)

let occupy st nodes = List.iter (fun nd -> st.occ.(nd) <- st.occ.(nd) + 1) nodes

let release st nodes = List.iter (fun nd -> st.occ.(nd) <- st.occ.(nd) - 1) nodes

let route ?(max_iterations = 30) ?(pres_fac0 = 0.5) ?(pres_mult = 1.6)
    ?(acc_fac = 0.4) ?node_delay (g : Rrgraph.t) (nets : net_spec array) =
  let n = Rrgraph.node_count g in
  let st = { occ = Array.make n 0; history = Array.make n 0.0; pres_fac = pres_fac0 } in
  let trees =
    Array.map (fun spec -> { net_index = spec.index; nodes = []; parents = [] }) nets
  in
  let sc = make_scratch n in
  let iteration = ref 0 in
  let done_ = ref false in
  let hopeless = ref false in
  (* early exit on stagnation: congestion that stops improving will not
     converge at this width, so stop burning iterations (VPR does the same) *)
  let best_overuse = ref max_int in
  let since_improvement = ref 0 in
  let total_overuse () =
    let k = ref 0 in
    Array.iteri
      (fun i used ->
        let over = used - g.Rrgraph.nodes.(i).Rrgraph.capacity in
        if over > 0 then k := !k + over)
      st.occ;
    !k
  in
  let feasible () = total_overuse () = 0 in
  while (not !done_) && (not !hopeless) && !iteration < max_iterations do
    incr iteration;
    Array.iteri
      (fun idx spec ->
        release st trees.(idx).nodes;
        (* bounding box of the net's terminals, expanded by 3 tiles; a net
           that cannot route inside it retries unrestricted *)
        let terminals = spec.source :: spec.sinks in
        let margin = 3 in
        let bounds =
          ( List.fold_left (fun m t -> min m g.Rrgraph.xlo.(t)) max_int terminals
            - margin,
            List.fold_left (fun m t -> max m g.Rrgraph.xhi.(t)) 0 terminals
            + margin,
            List.fold_left (fun m t -> min m g.Rrgraph.ylo.(t)) max_int terminals
            - margin,
            List.fold_left (fun m t -> max m g.Rrgraph.yhi.(t)) 0 terminals
            + margin )
        in
        let nodes, parents =
          match
            route_net g st sc ?node_delay ~bounds ~crit:spec.crit
              ~source:spec.source ~sinks:spec.sinks ()
          with
          | r -> r
          | exception Not_found ->
              route_net g st sc ?node_delay ~crit:spec.crit
                ~source:spec.source ~sinks:spec.sinks ()
        in
        occupy st nodes;
        trees.(idx) <- { net_index = spec.index; nodes; parents })
      nets;
    if feasible () then done_ := true
    else begin
      let over = total_overuse () in
      if over < !best_overuse then begin
        best_overuse := over;
        since_improvement := 0
      end
      else incr since_improvement;
      if !since_improvement >= 8 then hopeless := true;
      (* update history on overused nodes, sharpen the present penalty *)
      Array.iteri
        (fun i used ->
          let o = used - g.Rrgraph.nodes.(i).Rrgraph.capacity in
          if o > 0 then
            st.history.(i) <- st.history.(i) +. (acc_fac *. float_of_int o))
        st.occ;
      st.pres_fac <- st.pres_fac *. pres_mult
    end
  done;
  { graph = g; trees; iterations = !iteration; success = !done_ }

(* ---------- verification helpers ---------- *)

(* No node is used beyond capacity. *)
let no_overuse (r : result) =
  let n = Rrgraph.node_count r.graph in
  let occ = Array.make n 0 in
  Array.iter
    (fun tr -> List.iter (fun nd -> occ.(nd) <- occ.(nd) + 1) tr.nodes)
    r.trees;
  let ok = ref true in
  for i = 0 to n - 1 do
    if occ.(i) > r.graph.Rrgraph.nodes.(i).Rrgraph.capacity then ok := false
  done;
  !ok

(* Every tree is connected and reaches its sinks. *)
let tree_connects ~source ~sinks tr =
  let member v = List.mem v tr.nodes in
  member source
  && List.for_all member sinks
  && List.for_all (fun (v, p) -> member v && member p) tr.parents
