(** PathFinder negotiated-congestion routing (McMurchie & Ebeling), the
    algorithm VPR uses.

    Each iteration rips up and reroutes every net with Dijkstra over node
    costs base x (1 + acc x history) x present; the present-overuse
    penalty grows geometrically between iterations.  Convergence = no
    node used beyond its capacity.  With [node_delay], nets blend in a
    criticality-weighted delay term (the timing-driven router). *)

type net_spec = {
  index : int;     (** position in the problem's net array *)
  source : int;    (** driver OPIN node *)
  sinks : int list;
  crit : float;    (** timing criticality in [0,1]; 0 = congestion only *)
}

type route_tree = {
  net_index : int;
  nodes : int list;
  parents : (int * int) list; (** (node, parent) edges of the tree *)
}

type result = {
  graph : Rrgraph.t;
  trees : route_tree array;
  iterations : int;
  success : bool;
}

val route :
  ?max_iterations:int -> ?pres_fac0:float -> ?pres_mult:float ->
  ?acc_fac:float -> ?node_delay:float array -> Rrgraph.t ->
  net_spec array -> result
(** @raise Not_found if some sink is unreachable in the graph. *)

val no_overuse : result -> bool
(** Independent capacity re-check (used by tests). *)

val tree_connects : source:int -> sinks:int list -> route_tree -> bool
