(* ASCII rendering of the placed-and-routed FPGA — the textual counterpart
   of VPR's graphics window (and of the paper's GUI placement view).

   Each tile prints as a small cell: CLBs show their cluster id and BLE
   occupancy, pads their direction, channels their track usage. *)

let channel_usage (routed : Router.routed) =
  let g = routed.Router.graph in
  (* per (is_x, coord-x, coord-y): used tracks *)
  let used = Hashtbl.create 64 in
  Array.iter
    (fun (tr : Pathfinder.route_tree) ->
      List.iter
        (fun nd ->
          let node = g.Rrgraph.nodes.(nd) in
          match node.Rrgraph.kind with
          | Rrgraph.Chanx (xs, y, _) ->
              for x = xs to xs + node.Rrgraph.wire_tiles - 1 do
                let key = (true, x, y) in
                Hashtbl.replace used key
                  (1 + Option.value (Hashtbl.find_opt used key) ~default:0)
              done
          | Rrgraph.Chany (x, ys, _) ->
              for y = ys to ys + node.Rrgraph.wire_tiles - 1 do
                let key = (false, x, y) in
                Hashtbl.replace used key
                  (1 + Option.value (Hashtbl.find_opt used key) ~default:0)
              done
          | _ -> ())
        tr.Pathfinder.nodes)
    routed.Router.result.Pathfinder.trees;
  used

(* Render the array: rows from y = ny+1 (top pads) down to 0. *)
let to_string (routed : Router.routed) =
  let problem = routed.Router.problem in
  let placement = routed.Router.placement in
  let grid = problem.Place.Problem.grid in
  let nx = grid.Fpga_arch.Grid.nx and ny = grid.Fpga_arch.Grid.ny in
  let used = channel_usage routed in
  let usage_x x y =
    Option.value (Hashtbl.find_opt used (true, x, y)) ~default:0
  in
  let usage_y x y =
    Option.value (Hashtbl.find_opt used (false, x, y)) ~default:0
  in
  (* block occupancy maps *)
  let clb_label = Hashtbl.create 16 in
  let pad_label = Hashtbl.create 16 in
  Array.iteri
    (fun b kind ->
      match (kind, Place.Placement.location placement b) with
      | Place.Problem.Cluster_block cid, Fpga_arch.Grid.Clb (x, y) ->
          let n_bles =
            List.length
              problem.Place.Problem.packing.Pack.Cluster.clusters.(cid)
                .Pack.Cluster.bles
          in
          Hashtbl.replace clb_label (x, y) (Printf.sprintf "C%-2d:%d" cid n_bles)
      | Place.Problem.Input_pad _, Fpga_arch.Grid.Pad (x, y, _) ->
          let cur = Option.value (Hashtbl.find_opt pad_label (x, y)) ~default:"" in
          Hashtbl.replace pad_label (x, y) (cur ^ "I")
      | Place.Problem.Output_pad _, Fpga_arch.Grid.Pad (x, y, _) ->
          let cur = Option.value (Hashtbl.find_opt pad_label (x, y)) ~default:"" in
          Hashtbl.replace pad_label (x, y) (cur ^ "O")
      | _ -> ())
    problem.Place.Problem.blocks;
  let buf = Buffer.create 1024 in
  let cell_w = 6 in
  let pad s = Util.Tablefmt.pad Util.Tablefmt.Left cell_w s in
  let tile x y =
    if x >= 1 && x <= nx && y >= 1 && y <= ny then
      match Hashtbl.find_opt clb_label (x, y) with
      | Some l -> pad ("[" ^ l ^ "]" |> fun s -> s)
      | None -> pad "[ .  ]"
    else
      match Hashtbl.find_opt pad_label (x, y) with
      | Some l -> pad ("(" ^ l ^ ")")
      | None ->
          if (x = 0 || x = nx + 1) && (y = 0 || y = ny + 1) then pad " "
          else pad "( )"
  in
  for y = ny + 1 downto 0 do
    (* tile row *)
    for x = 0 to nx + 1 do
      Buffer.add_string buf (tile x y);
      (* vertical channel to the right of tile column x (chany x, rows) *)
      if x <= nx && y >= 1 && y <= ny then
        Buffer.add_string buf (Printf.sprintf "|%d " (usage_y x y))
      else if x <= nx then Buffer.add_string buf "   "
    done;
    Buffer.add_char buf '\n';
    (* horizontal channel below row y (chanx at y-1) *)
    if y >= 1 then begin
      for x = 0 to nx + 1 do
        if x >= 1 && x <= nx then
          Buffer.add_string buf (pad (Printf.sprintf "-%d-" (usage_x x (y - 1))))
        else Buffer.add_string buf (pad "");
        if x <= nx then Buffer.add_string buf "   "
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "\nCxx:n = cluster xx with n BLEs; (I)/(O) = pads; |n -n- = tracks \
        in use (of %d)\n"
       routed.Router.width);
  Buffer.contents buf
