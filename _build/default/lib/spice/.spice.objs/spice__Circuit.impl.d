lib/spice/circuit.ml: Hashtbl List Option Printf Tech Waveform
