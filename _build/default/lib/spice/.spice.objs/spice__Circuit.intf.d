lib/spice/circuit.mli: Hashtbl Tech Waveform
