lib/spice/clocking.ml: Circuit Detff List Measure Printf Stdcell Tech Transient Waveform
