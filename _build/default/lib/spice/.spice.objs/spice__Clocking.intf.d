lib/spice/clocking.mli: Circuit Detff
