lib/spice/deck.ml: Array Buffer Circuit List Printf String Tech Waveform
