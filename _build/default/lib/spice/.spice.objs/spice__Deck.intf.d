lib/spice/deck.mli: Circuit
