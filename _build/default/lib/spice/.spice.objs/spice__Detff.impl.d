lib/spice/detff.ml: Circuit Stdcell
