lib/spice/detff.mli: Circuit
