lib/spice/device.ml: Circuit Tech
