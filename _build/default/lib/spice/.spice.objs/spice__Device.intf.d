lib/spice/device.mli: Circuit Tech
