lib/spice/ff_bench.ml: Circuit Detff Hashtbl List Measure Setff Stdcell Tech Transient Waveform
