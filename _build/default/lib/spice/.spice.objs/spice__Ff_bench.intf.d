lib/spice/ff_bench.mli: Circuit Detff
