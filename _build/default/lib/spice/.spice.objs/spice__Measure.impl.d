lib/spice/measure.ml: Array Float List Transient
