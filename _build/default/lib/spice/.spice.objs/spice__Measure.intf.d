lib/spice/measure.mli: Transient
