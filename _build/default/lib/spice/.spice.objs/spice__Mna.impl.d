lib/spice/mna.ml: Array Circuit Device List Util Waveform
