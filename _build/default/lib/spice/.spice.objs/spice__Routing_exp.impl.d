lib/spice/routing_exp.ml: Circuit Float List Measure Stdcell Tech Transient Waveform
