lib/spice/routing_exp.mli: Circuit Tech
