lib/spice/setff.ml: Circuit Stdcell
