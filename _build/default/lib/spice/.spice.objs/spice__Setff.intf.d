lib/spice/setff.mli: Circuit
