lib/spice/stdcell.ml: Circuit Option Tech
