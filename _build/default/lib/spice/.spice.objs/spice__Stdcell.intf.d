lib/spice/stdcell.mli: Circuit Waveform
