lib/spice/tech.ml:
