lib/spice/tech.mli:
