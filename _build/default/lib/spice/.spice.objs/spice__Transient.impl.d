lib/spice/transient.ml: Array Circuit Float Hashtbl List Mna Util Waveform
