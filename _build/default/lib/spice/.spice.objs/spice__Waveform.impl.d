lib/spice/waveform.ml: Array Float
