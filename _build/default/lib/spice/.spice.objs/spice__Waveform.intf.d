lib/spice/waveform.mli:
