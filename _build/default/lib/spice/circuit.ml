(* Transistor-level circuit netlists.

   A circuit is a bag of devices over integer nodes; node 0 is ground.
   Builders return the nodes they create so cells compose functionally. *)

type node = int

let gnd : node = 0

type mos_type = Nmos | Pmos

type mosfet = {
  typ : mos_type;
  d : node;
  g : node;
  s : node;
  w : float; (* channel width, m *)
  l : float; (* channel length, m *)
}

type t = {
  tech : Tech.t;
  mutable n_nodes : int;
  names : (string, node) Hashtbl.t;
  node_names : (node, string) Hashtbl.t;
  mutable resistors : (node * node * float) list;
  mutable capacitors : (node * node * float) list;
  mutable mosfets : mosfet list;
  mutable vsources : (string * node * node * Waveform.t) list;
}

let create tech =
  {
    tech;
    n_nodes = 1; (* ground *)
    names = Hashtbl.create 64;
    node_names = Hashtbl.create 64;
    resistors = [];
    capacitors = [];
    mosfets = [];
    vsources = [];
  }

let n_nodes t = t.n_nodes

let fresh_node ?(name = "") t =
  let id = t.n_nodes in
  t.n_nodes <- t.n_nodes + 1;
  let name = if name = "" then Printf.sprintf "n%d" id else name in
  Hashtbl.replace t.names name id;
  Hashtbl.replace t.node_names id name;
  id

(* Named node: returns the existing node of that name or creates it. *)
let node t name =
  match Hashtbl.find_opt t.names name with
  | Some id -> id
  | None -> fresh_node ~name t

let node_name t id =
  if id = gnd then "0"
  else match Hashtbl.find_opt t.node_names id with
    | Some s -> s
    | None -> Printf.sprintf "n%d" id

let resistor t a b r =
  if r <= 0.0 then invalid_arg "Circuit.resistor: non-positive resistance";
  t.resistors <- (a, b, r) :: t.resistors

let capacitor t a b c =
  if c < 0.0 then invalid_arg "Circuit.capacitor: negative capacitance";
  if c > 0.0 then t.capacitors <- (a, b, c) :: t.capacitors

let mosfet t typ ~d ~g ~s ~w ?l () =
  let l = Option.value l ~default:t.tech.Tech.l_min in
  if w <= 0.0 || l <= 0.0 then invalid_arg "Circuit.mosfet: non-positive geometry";
  t.mosfets <- { typ; d; g; s; w; l } :: t.mosfets

let nmos t ~d ~g ~s ~w ?l () = mosfet t Nmos ~d ~g ~s ~w ?l ()
let pmos t ~d ~g ~s ~w ?l () = mosfet t Pmos ~d ~g ~s ~w ?l ()

let vsource t name ~pos ~neg wave =
  t.vsources <- (name, pos, neg, wave) :: t.vsources

(* Supply rail: a named node held at VDD by a dedicated source. *)
let vdd_rail ?(name = "vdd") t =
  let nd = node t name in
  if not (List.exists (fun (n, _, _, _) -> n = name) t.vsources) then
    vsource t name ~pos:nd ~neg:gnd (Waveform.dc t.tech.Tech.vdd);
  nd

let device_count t =
  List.length t.resistors + List.length t.capacitors + List.length t.mosfets
  + List.length t.vsources

let mosfet_count t = List.length t.mosfets
