(** Transistor-level circuit netlists.

    A circuit is a bag of devices over integer nodes; node 0 is ground.
    Builders return the nodes they create so larger cells compose
    functionally (see {!Stdcell} and {!Detff}). *)

type node = int

val gnd : node

type mos_type = Nmos | Pmos

type mosfet = {
  typ : mos_type;
  d : node;
  g : node;
  s : node;
  w : float; (** channel width, m *)
  l : float; (** channel length, m *)
}

type t = {
  tech : Tech.t;
  mutable n_nodes : int;
  names : (string, node) Hashtbl.t;
  node_names : (node, string) Hashtbl.t;
  mutable resistors : (node * node * float) list;
  mutable capacitors : (node * node * float) list;
  mutable mosfets : mosfet list;
  mutable vsources : (string * node * node * Waveform.t) list;
}

val create : Tech.t -> t

val n_nodes : t -> int

val fresh_node : ?name:string -> t -> node
(** A new node (auto-named ["n<i>"] unless [name] is given). *)

val node : t -> string -> node
(** The named node, created on first use. *)

val node_name : t -> node -> string

val resistor : t -> node -> node -> float -> unit
(** @raise Invalid_argument on a non-positive resistance. *)

val capacitor : t -> node -> node -> float -> unit
(** Zero capacitance is silently dropped.
    @raise Invalid_argument on a negative capacitance. *)

val mosfet :
  t -> mos_type -> d:node -> g:node -> s:node -> w:float -> ?l:float ->
  unit -> unit
(** Channel length defaults to the process minimum.
    @raise Invalid_argument on non-positive geometry. *)

val nmos : t -> d:node -> g:node -> s:node -> w:float -> ?l:float -> unit -> unit
val pmos : t -> d:node -> g:node -> s:node -> w:float -> ?l:float -> unit -> unit

val vsource : t -> string -> pos:node -> neg:node -> Waveform.t -> unit

val vdd_rail : ?name:string -> t -> node
(** A named supply node held at VDD by a dedicated DC source (added once). *)

val device_count : t -> int

val mosfet_count : t -> int
