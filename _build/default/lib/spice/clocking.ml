(* Gated-clock experiments of Tables 2 and 3.

   Table 2 (BLE level, Fig. 5): one flip-flop clocked either through a plain
   inverter (single clock) or through a NAND gate with a CLOCK_ENABLE input
   (gated clock).  The NAND's larger input capacitance costs a little when
   enabled; when disabled the whole FF clock load stops switching.

   Table 3 (CLB level, Fig. 6): the CLB's local clock network (wire plus the
   five BLE-level gated-clock loads) driven either directly (single clock)
   or through a CLB-level NAND (gated clock array). *)

type table2_row = { label : string; energy_fj : float }

type condition = All_off | One_on | All_on

let condition_name = function
  | All_off -> "all F/Fs \"OFF\""
  | One_on -> "One F/F \"ON\""
  | All_on -> "all F/Fs \"ON\""

type table3_row = {
  condition : condition;
  single_fj : float;
  gated_fj : float;
}

let ff_kind = Detff.Llopis1 (* the flip-flop the paper selected *)
let period = 1.0e-9
let slew = 50e-12
let cycles = 4
let settle_cycles = 2 (* initial cycles excluded from the energy window *)

let t_stop = float_of_int (settle_cycles + cycles) *. period +. (period /. 2.0)

let clock_wave vdd = Waveform.clock ~vdd ~period ~slew ~delay:(period /. 2.0)

(* Enable waveforms.  A disabled flip-flop is still clocked during the
   settle cycles so its latches hold a written value before the clock is
   gated off — exactly how a real BLE reaches its idle state (the paper's
   flip-flops also carry an MR reset).  Gating an untouched latch loop off
   from t = 0 would instead leave it at its metastable point, which burns
   unphysical crowbar current in a deterministic simulator. *)
let enable_wave vdd enabled =
  if enabled then Waveform.dc vdd
  else begin
    let t_off = (period /. 2.0) +. (float_of_int settle_cycles *. period) in
    Waveform.pwl
      [ (0.0, vdd); (t_off -. (period /. 4.0), vdd);
        (t_off -. (period /. 4.0) +. slew, 0.0) ]
  end

(* The paper's Tables 2 and 3 isolate the *clock-path* energy: the data
   input is held static (with CLOCK_ENABLE = 0 the flip-flop produces no
   output transitions at all, yet a finite energy is still reported — the
   residual clock-network switching).  We therefore tie D low. *)
let static_data = Waveform.dc 0.0

let measure_energy c =
  let trace = Transient.run ~h:1e-12 ~t_stop ~probes:[] c in
  (* measure whole cycles in steady state, skipping the settle interval *)
  let t0 = (period /. 2.0) +. (float_of_int settle_cycles *. period) in
  let t1 = t0 +. (float_of_int cycles *. period) in
  Measure.femto (Measure.source_energy ~t0 ~t1 trace "vdd")
  /. float_of_int cycles

(* -------- Table 2: BLE level -------- *)

(* Shared front end of Fig. 5: the paper's shaded inverter, which exposes
   the input-capacitance difference between the final inverter and the
   NAND replacing it. *)
let front_end c ~vdd =
  let clk = Circuit.node c "clk" in
  Stdcell.driver c "vclk" ~node:clk (clock_wave c.Circuit.tech.Tech.vdd);
  Stdcell.inverter_chain c ~vdd ~input:clk ~n:1 ~wn:1.0 ()

let build_single () =
  let c = Circuit.create Tech.stm018 in
  let vdd = Circuit.vdd_rail c in
  let chain_out = front_end c ~vdd in
  let clk_ff = Circuit.fresh_node c in
  (* final chain stage: a small inverter *)
  Stdcell.inverter c ~vdd ~input:chain_out ~output:clk_ff ~wn:1.0 ();
  let d = Circuit.node c "d" in
  Stdcell.driver c "vd" ~node:d static_data;
  let _q = Detff.instantiate c ff_kind ~vdd ~d ~clk:clk_ff in
  c

let build_gated ~enable =
  let c = Circuit.create Tech.stm018 in
  let vdd = Circuit.vdd_rail c in
  let chain_out = front_end c ~vdd in
  let en = Circuit.node c "en" in
  Stdcell.driver c "ven" ~node:en (enable_wave c.tech.Tech.vdd enable);
  let clk_ff = Circuit.fresh_node c in
  (* the NAND replacing the final inverter: matched drive needs wider
     (stacked) devices, so its input capacitance exceeds the inverter's —
     the source of the paper's 6.2 % penalty when enabled *)
  Stdcell.nand2 c ~vdd ~a:chain_out ~b:en ~output:clk_ff ~wn:2.0 ~wp:2.5 ();
  let d = Circuit.node c "d" in
  Stdcell.driver c "vd" ~node:d static_data;
  let _q = Detff.instantiate c ff_kind ~vdd ~d ~clk:clk_ff in
  c

let table2 () =
  [
    { label = "Single clock"; energy_fj = measure_energy (build_single ()) };
    {
      label = "Gated, CLOCK_ENABLE=1";
      energy_fj = measure_energy (build_gated ~enable:true);
    };
    {
      label = "Gated, CLOCK_ENABLE=0";
      energy_fj = measure_energy (build_gated ~enable:false);
    };
  ]

(* -------- Table 3: CLB level -------- *)

let n_bles = 5
let local_clock_wire_cap = 20e-15 (* CLB-local clock net, F *)

(* Number of enabled flip-flops per condition. *)
let enabled_count = function All_off -> 0 | One_on -> 1 | All_on -> n_bles

(* The five-BLE local clock network.  [clb_gated] inserts the CLB-level NAND
   of Fig. 6b between the clock buffer and the local net. *)
let build_clb ~clb_gated ~condition =
  let c = Circuit.create Tech.stm018 in
  let vdd = Circuit.vdd_rail c in
  let clk = Circuit.node c "clk" in
  Stdcell.driver c "vclk" ~node:clk (clock_wave c.tech.Tech.vdd);
  let chain_out = Stdcell.inverter_chain c ~vdd ~input:clk ~n:1 ~wn:1.0 () in
  let n_on = enabled_count condition in
  let local_net = Circuit.node c "local_clk" in
  if clb_gated then begin
    let clb_en = Circuit.node c "clb_en" in
    Stdcell.driver c "vclben" ~node:clb_en
      (enable_wave c.tech.Tech.vdd (n_on > 0));
    (* the root NAND must drive the whole local network: stacked devices
       sized up, hence the heavier input load and internal energy that cost
       ~30 % whenever the network runs (the paper's Table 3 penalty) *)
    Stdcell.nand2 c ~vdd ~a:chain_out ~b:clb_en ~output:local_net ~wn:12.0
      ~wp:15.0 ()
  end
  else
    Stdcell.inverter c ~vdd ~input:chain_out ~output:local_net ~wn:4.0 ();
  Circuit.capacitor c local_net Circuit.gnd local_clock_wire_cap;
  let d = Circuit.node c "d" in
  Stdcell.driver c "vd" ~node:d static_data;
  for i = 0 to n_bles - 1 do
    let en = Circuit.node c (Printf.sprintf "en%d" i) in
    Stdcell.driver c (Printf.sprintf "ven%d" i) ~node:en
      (enable_wave c.tech.Tech.vdd (i < n_on));
    (* BLE-level gated clock (adopted per Table 2) feeding each DETFF *)
    let _q, _ = Detff.with_gated_clock c ff_kind ~vdd ~d ~clk:local_net ~enable:en in
    ()
  done;
  c

let table3 () =
  List.map
    (fun condition ->
      {
        condition;
        single_fj = measure_energy (build_clb ~clb_gated:false ~condition);
        gated_fj = measure_energy (build_clb ~clb_gated:true ~condition);
      })
    [ All_off; One_on; All_on ]
