(** Gated-clock experiments of Tables 2 and 3.

    Table 2 (BLE level, Fig. 5): one flip-flop clocked through a plain
    inverter (single clock) or a NAND with a CLOCK_ENABLE (gated clock).
    Table 3 (CLB level, Fig. 6): the CLB's local clock network — wire plus
    five BLE-level gated-clock loads — driven directly or through a
    CLB-level NAND. *)

type table2_row = { label : string; energy_fj : float }

type condition = All_off | One_on | All_on

val condition_name : condition -> string

type table3_row = {
  condition : condition;
  single_fj : float;
  gated_fj : float;
}

val ff_kind : Detff.kind
(** The platform's selected flip-flop (Llopis-1). *)

val period : float
val t_stop : float

val build_single : unit -> Circuit.t
(** Fig. 5a: inverter-driven clock. *)

val build_gated : enable:bool -> Circuit.t
(** Fig. 5b: NAND-gated clock.  A disabled flip-flop is clocked during the
    settle cycles so its latches hold a written value before gating. *)

val build_clb : clb_gated:bool -> condition:condition -> Circuit.t
(** Fig. 6: the five-BLE local clock network. *)

val table2 : unit -> table2_row list
(** Rows: single clock; gated EN=1; gated EN=0 (fJ per clock cycle). *)

val table3 : unit -> table3_row list
(** Rows for all-off / one-on / all-on. *)
