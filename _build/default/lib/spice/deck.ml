(* SPICE-deck export: write a Circuit.t as a standard .sp netlist so the
   platform's cells and experiments can be re-simulated in an external
   SPICE (the "technology independence" the paper lists — the framework's
   circuits are not locked to the built-in engine). *)

let fmt_f = Printf.sprintf "%.6g"

let fmt_wave = function
  | Waveform.Dc v -> Printf.sprintf "DC %s" (fmt_f v)
  | Waveform.Pulse p ->
      Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (fmt_f p.Waveform.v0)
        (fmt_f p.Waveform.v1) (fmt_f p.Waveform.delay) (fmt_f p.Waveform.rise)
        (fmt_f p.Waveform.fall) (fmt_f p.Waveform.width)
        (fmt_f p.Waveform.period)
  | Waveform.Pwl pts ->
      let body =
        Array.to_list pts
        |> List.map (fun (t, v) -> Printf.sprintf "%s %s" (fmt_f t) (fmt_f v))
        |> String.concat " "
      in
      Printf.sprintf "PWL(%s)" body

let to_string ?(title = "amdrel circuit") (c : Circuit.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let node nd = if nd = Circuit.gnd then "0" else Circuit.node_name c nd in
  add "* %s\n" title;
  let tech = c.Circuit.tech in
  add ".MODEL NMOS NMOS (LEVEL=1 VTO=%s KP=%s LAMBDA=%s)\n"
    (fmt_f tech.Tech.vt_n) (fmt_f tech.Tech.kp_n) (fmt_f tech.Tech.lambda_n);
  add ".MODEL PMOS PMOS (LEVEL=1 VTO=-%s KP=%s LAMBDA=%s)\n"
    (fmt_f tech.Tech.vt_p) (fmt_f tech.Tech.kp_p) (fmt_f tech.Tech.lambda_p);
  let idx = ref 0 in
  let next () = incr idx; !idx in
  List.iter
    (fun (m : Circuit.mosfet) ->
      add "M%d %s %s %s %s %s W=%s L=%s\n" (next ()) (node m.Circuit.d)
        (node m.Circuit.g) (node m.Circuit.s)
        (match m.Circuit.typ with Circuit.Nmos -> "0" | Circuit.Pmos -> node m.Circuit.s)
        (match m.Circuit.typ with Circuit.Nmos -> "NMOS" | Circuit.Pmos -> "PMOS")
        (fmt_f m.Circuit.w) (fmt_f m.Circuit.l))
    (List.rev c.Circuit.mosfets);
  List.iter
    (fun (a, b, r) -> add "R%d %s %s %s\n" (next ()) (node a) (node b) (fmt_f r))
    (List.rev c.Circuit.resistors);
  List.iter
    (fun (a, b, cap) ->
      add "C%d %s %s %s\n" (next ()) (node a) (node b) (fmt_f cap))
    (List.rev c.Circuit.capacitors);
  List.iter
    (fun (nm, pos, neg, wave) ->
      add "V%s %s %s %s\n" nm (node pos) (node neg) (fmt_wave wave))
    (List.rev c.Circuit.vsources);
  add ".end\n";
  Buffer.contents buf

let to_file ?title path c =
  let oc = open_out path in
  output_string oc (to_string ?title c);
  close_out oc
