(** SPICE-deck export: write a {!Circuit.t} as a standard .sp netlist so
    the platform's cells and experiments can be re-simulated in an
    external SPICE (the paper's "technology independence" feature). *)

val to_string : ?title:string -> Circuit.t -> string
(** Level-1 .MODEL cards come from the circuit's process parameters;
    bulks are tied to ground (NMOS) / source (PMOS). *)

val to_file : ?title:string -> string -> Circuit.t -> unit
