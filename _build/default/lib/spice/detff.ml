(* The five double-edge-triggered flip-flops compared in Table 1, plus the
   structural skeleton they share.

   All five are static dual-latch DETFFs: one level-sensitive latch is
   transparent while CLK = 1, the other while CLK = 0, and an output
   multiplexer selects whichever latch is currently opaque (holding), so a
   new value appears at Q after *every* clock edge.  The variants differ in
   the tri-state-inverter style used in the latches (Fig. 3 of the paper),
   in the feedback arrangement, and in buffering — which is what drives
   their different clock loads, energies and CLK-to-Q delays. *)

open Circuit

type kind = Chung1 | Chung2 | Llopis1 | Llopis2 | Strollo

let kinds = [ Chung1; Chung2; Llopis1; Llopis2; Strollo ]

let name = function
  | Chung1 -> "Chung 1 [20]"
  | Chung2 -> "Chung 2 [20]"
  | Llopis1 -> "Llopis 1 [19]"
  | Llopis2 -> "Llopis 2 [19]"
  | Strollo -> "Strollo [15]"

let short_name = function
  | Chung1 -> "chung1"
  | Chung2 -> "chung2"
  | Llopis1 -> "llopis1"
  | Llopis2 -> "llopis2"
  | Strollo -> "strollo"

type style =
  | C2mos      (* clocked-inverter latch: input + feedback both C2MOS *)
  | Tg_inv     (* inverter + transmission-gate tri-states *)
  | Ratioed_tg (* TG input, weak always-on feedback (Llopis-style) *)
  | Clocked_tg (* TG input, clocked TG feedback *)

(* One static level-sensitive latch.  Transparent when en = 1.
   [out] equals D while transparent (an even number of inversions from D);
   [store] is the raw storage node (equal to NOT D for the inverting styles,
   D for the TG-input styles). *)
type latch_nodes = { store : node; out : node }

let latch c ~vdd ~style ~d ~en ~en_b ~out_w ~fb_w =
  let m = fresh_node c in
  (* storage node *)
  let out = fresh_node c in
  begin
    match style with
    | C2mos ->
        (* m = NOT d when transparent; C2MOS feedback holds m.  The stacked
           clocked devices need upsizing for drive, which is precisely what
           loads the clock more than the TG styles. *)
        Stdcell.c2mos_inverter c ~vdd ~input:d ~output:m ~en ~en_b ~wn:1.5 ();
        Stdcell.inverter c ~vdd ~input:m ~output:out ~wn:out_w ();
        Stdcell.c2mos_inverter c ~vdd ~input:out ~output:m ~en:en_b ~en_b:en
          ~wn:1.5 ()
    | Tg_inv ->
        Stdcell.tg_tristate_inverter c ~vdd ~input:d ~output:m ~en ~en_b ();
        Stdcell.inverter c ~vdd ~input:m ~output:out ~wn:out_w ();
        Stdcell.tg_tristate_inverter c ~vdd ~input:out ~output:m ~en:en_b
          ~en_b:en ~wn:fb_w ()
    | Ratioed_tg ->
        (* TG passes D onto m; a weak inverter pair keeps m static and is
           simply overpowered on writes.  Only two clocked devices. *)
        let fb = fresh_node c in
        Stdcell.tgate c ~a:d ~b:m ~en ~en_b ~wn:2.0 ();
        Stdcell.inverter c ~vdd ~input:m ~output:fb ();
        Stdcell.weak_inverter c ~vdd ~input:fb ~output:m;
        Stdcell.inverter c ~vdd ~input:fb ~output:out ~wn:out_w ()
    | Clocked_tg ->
        (* TG input plus a clocked-TG feedback loop: more clocked devices
           than Ratioed_tg, hence higher clock energy. *)
        let fb = fresh_node c in
        Stdcell.tgate c ~a:d ~b:m ~en ~en_b ~wn:2.0 ();
        Stdcell.inverter c ~vdd ~input:m ~output:fb ();
        let fb2 = fresh_node c in
        Stdcell.inverter c ~vdd ~input:fb ~output:fb2 ~wn:1.5 ();
        Stdcell.tgate c ~a:fb2 ~b:m ~en:en_b ~en_b:en ~wn:1.5 ();
        Stdcell.inverter c ~vdd ~input:fb ~output:out ~wn:out_w ()
  end;
  { store = m; out }

(* Assemble a dual-latch DETFF given the latch style, the multiplexer and
   output-buffer sizing, and optional extra clock/data conditioning stages.
   Returns the Q node. *)
let dual_latch c ~vdd ~d ~clk ~style ~mux_w ~out1 ~out2 ?(latch_out_w = 1.0)
    ?(mux_storage = false) ?(clkb_w = 1.0) ?(fb_w = 1.0) ?(clk_chain_w = 1.5)
    ~buffer_clock ~buffer_data () =
  (* internal complement clock (and optional regeneration) *)
  let clk_i =
    if buffer_clock then
      Stdcell.inverter_chain c ~vdd ~input:clk ~n:2 ~wn:clk_chain_w ()
    else clk
  in
  let clk_b = fresh_node c in
  Stdcell.inverter c ~vdd ~input:clk_i ~output:clk_b ~wn:clkb_w ();
  let d_i =
    if buffer_data then
      Stdcell.inverter_chain c ~vdd ~input:d ~n:2 ~wn:1.0 ()
    else d
  in
  (* latch P transparent while clk = 1; latch N transparent while clk = 0 *)
  let lp =
    latch c ~vdd ~style ~d:d_i ~en:clk_i ~en_b:clk_b ~out_w:latch_out_w ~fb_w
  in
  let ln =
    latch c ~vdd ~style ~d:d_i ~en:clk_b ~en_b:clk_i ~out_w:latch_out_w ~fb_w
  in
  (* after a rising edge latch N holds the sample: select it while clk = 1 *)
  let mux_out = fresh_node c in
  if mux_storage then begin
    (* multiplex the storage nodes directly (the published TG-based DETFF
       does this): one inversion from the mux to Q, the fastest CLK-to-Q *)
    Stdcell.mux2_tg c ~a:ln.store ~b:lp.store ~sel:clk_i ~sel_b:clk_b
      ~output:mux_out ~wn:mux_w ();
    let q = fresh_node c in
    Stdcell.inverter c ~vdd ~input:mux_out ~output:q ~wn:out2 ();
    q
  end
  else begin
    Stdcell.mux2_tg c ~a:ln.out ~b:lp.out ~sel:clk_i ~sel_b:clk_b
      ~output:mux_out ~wn:mux_w ();
    let qb = fresh_node c and q = fresh_node c in
    Stdcell.inverter c ~vdd ~input:mux_out ~output:qb ~wn:out1 ();
    Stdcell.inverter c ~vdd ~input:qb ~output:q ~wn:out2 ();
    q
  end

(* Instantiate one of the five published DETFFs.  [d] and [clk] are existing
   nodes; returns the Q output node. *)
let instantiate c kind ~vdd ~d ~clk =
  match kind with
  | Chung1 ->
      (* C2MOS latches with the published local clk/clkb regeneration pair,
         minimum output sizing *)
      dual_latch c ~vdd ~d ~clk ~style:C2mos ~mux_w:1.0 ~out1:1.0 ~out2:1.0
        ~clk_chain_w:1.0 ~buffer_clock:true ~buffer_data:false ()
  | Chung2 ->
      (* TG-style tri-states decouple the clock from the charging path; a
         wide mux and a tapered output buffer give the fastest CLK-to-Q and
         the best energy-delay product of the five *)
      dual_latch c ~vdd ~d ~clk ~style:Tg_inv ~mux_w:2.5 ~out1:1.0 ~out2:4.0
        ~mux_storage:true ~clkb_w:3.0 ~fb_w:2.5 ~buffer_clock:false
        ~buffer_data:false ()
  | Llopis1 ->
      (* ratioed feedback: only two clocked devices per latch -> the lowest
         clock load and total energy; the structure the paper selected.
         The Llopis design conditions its clock internally (its testability
         feature), which costs CLK-to-Q delay. *)
      dual_latch c ~vdd ~d ~clk ~style:Ratioed_tg ~mux_w:1.0 ~out1:1.0
        ~out2:1.2 ~clk_chain_w:1.0 ~buffer_clock:true ~buffer_data:false ()
  | Llopis2 ->
      (* clocked-TG feedback variant: same family, more clocked devices *)
      dual_latch c ~vdd ~d ~clk ~style:Clocked_tg ~mux_w:1.0 ~out1:1.0
        ~out2:1.2 ~clk_chain_w:1.0 ~buffer_clock:true ~buffer_data:false ()
  | Strollo ->
      (* internally regenerated clock and buffered data: robust but the
         heaviest clock/data load of the five *)
      dual_latch c ~vdd ~d ~clk ~style:C2mos ~mux_w:1.0 ~out1:1.5 ~out2:2.0
        ~buffer_clock:true ~buffer_data:true ()

(* A DETFF with a gated clock: clk_eff = NOT (NOT clk NAND en)... i.e. the
   paper's Fig. 5b arrangement, clock AND enable through a NAND + inverter.
   Returns (q, gated_clock_node). *)
let with_gated_clock c kind ~vdd ~d ~clk ~enable =
  let nand_out = fresh_node c in
  Stdcell.nand2 c ~vdd ~a:clk ~b:enable ~output:nand_out ();
  let clk_g = fresh_node c in
  Stdcell.inverter c ~vdd ~input:nand_out ~output:clk_g ();
  let q = instantiate c kind ~vdd ~d ~clk:clk_g in
  (q, clk_g)
