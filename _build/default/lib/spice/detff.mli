(** The five double-edge-triggered flip-flops compared in Table 1.

    All five are static dual-latch DETFFs: one level-sensitive latch is
    transparent while CLK = 1, the other while CLK = 0, and an output
    multiplexer selects whichever latch currently holds, so a new value
    appears at Q after every clock edge.  The variants differ in the
    tri-state-inverter style of their latches (Fig. 3 of the paper), the
    feedback arrangement and buffering — which drives their different
    clock loads, energies and CLK-to-Q delays. *)

type kind = Chung1 | Chung2 | Llopis1 | Llopis2 | Strollo

val kinds : kind list
(** All five, in Table 1 order. *)

val name : kind -> string
(** Display name with the paper's citation, e.g. ["Llopis 1 \[19\]"]. *)

val short_name : kind -> string

val instantiate :
  Circuit.t -> kind -> vdd:Circuit.node -> d:Circuit.node ->
  clk:Circuit.node -> Circuit.node
(** Build the flip-flop at transistor level; returns the Q node. *)

val with_gated_clock :
  Circuit.t -> kind -> vdd:Circuit.node -> d:Circuit.node ->
  clk:Circuit.node -> enable:Circuit.node -> Circuit.node * Circuit.node
(** The flip-flop behind a BLE-level clock gate (Fig. 5b): NAND of clock
    and enable plus restoring inverter.  Returns (Q, gated clock node). *)
