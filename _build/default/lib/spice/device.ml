(* Level-1 (square-law) MOSFET evaluation with channel-length modulation.

   [eval] returns the drain current I (flowing into the drain terminal and
   out of the source) together with its partial derivatives with respect to
   the three terminal voltages — exactly what the Newton linearisation in
   Mna.stamp_mosfet needs.  The device is treated as symmetric: when the
   nominal drain sits below the nominal source the roles swap, which is
   essential for pass-transistor and transmission-gate circuits. *)

type eval = {
  i : float;    (* current into drain, A *)
  di_dvd : float;
  di_dvg : float;
  di_dvs : float;
}

(* Square law for an n-channel device in normal mode (vds >= 0).
   Returns (ids, gm, gds). *)
let square_law ~kp ~vt ~lambda ~wl vgs vds =
  if vgs <= vt then (0.0, 0.0, 0.0)
  else begin
    let vov = vgs -. vt in
    let clm = 1.0 +. (lambda *. vds) in
    if vds < vov then begin
      (* triode *)
      let ids = kp *. wl *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. clm in
      let gm = kp *. wl *. vds *. clm in
      let gds =
        (kp *. wl *. (vov -. vds) *. clm)
        +. (kp *. wl *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. lambda)
      in
      (ids, gm, gds)
    end
    else begin
      (* saturation *)
      let ids = 0.5 *. kp *. wl *. vov *. vov *. clm in
      let gm = kp *. wl *. vov *. clm in
      let gds = 0.5 *. kp *. wl *. vov *. vov *. lambda in
      (ids, gm, gds)
    end
  end

(* NMOS current into the [d] terminal given real terminal voltages. *)
let nmos_eval ~kp ~vt ~lambda ~wl vd vg vs =
  if vd >= vs then begin
    let ids, gm, gds = square_law ~kp ~vt ~lambda ~wl (vg -. vs) (vd -. vs) in
    { i = ids; di_dvd = gds; di_dvg = gm; di_dvs = -.(gm +. gds) }
  end
  else begin
    (* reverse mode: the physical source is the [d] terminal *)
    let ids, gm, gds = square_law ~kp ~vt ~lambda ~wl (vg -. vd) (vs -. vd) in
    { i = -.ids; di_dvd = gm +. gds; di_dvg = -.gm; di_dvs = -.gds }
  end

(* PMOS via the voltage-mirror identity: a p-device at (vd, vg, vs) behaves
   as an n-device at (-vd, -vg, -vs) with the current direction reversed.
   If I_p(v) = -I_n(-v) then dI_p/dv_x = +dI_n/du_x evaluated at u = -v. *)
let pmos_eval ~kp ~vt ~lambda ~wl vd vg vs =
  let e = nmos_eval ~kp ~vt ~lambda ~wl (-.vd) (-.vg) (-.vs) in
  { i = -.e.i; di_dvd = e.di_dvd; di_dvg = e.di_dvg; di_dvs = e.di_dvs }

let eval (tech : Tech.t) (m : Circuit.mosfet) vd vg vs =
  let wl = m.w /. m.l in
  match m.typ with
  | Circuit.Nmos ->
      nmos_eval ~kp:tech.kp_n ~vt:tech.vt_n ~lambda:tech.lambda_n ~wl vd vg vs
  | Circuit.Pmos ->
      pmos_eval ~kp:tech.kp_p ~vt:tech.vt_p ~lambda:tech.lambda_p ~wl vd vg vs

(* Lumped parasitic capacitances: gate cap (oxide + overlaps) at the gate,
   junction cap at drain and source, all referenced to ground.  Grounded
   parasitics keep the MNA matrix diagonally dominant and are the standard
   switch-level approximation. *)
let gate_cap (tech : Tech.t) (m : Circuit.mosfet) =
  (tech.cox *. m.w *. m.l) +. (2.0 *. tech.cgdo *. m.w)

let junction_cap (tech : Tech.t) (m : Circuit.mosfet) = tech.cj *. m.w
