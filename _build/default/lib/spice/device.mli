(** Level-1 (square-law) MOSFET evaluation with channel-length modulation.

    The device is treated as symmetric: when the nominal drain sits below
    the nominal source the roles swap, which is essential for pass
    transistors and transmission gates. *)

type eval = {
  i : float;       (** current into the drain terminal, A *)
  di_dvd : float;  (** partial derivatives for the Newton linearisation *)
  di_dvg : float;
  di_dvs : float;
}

val square_law :
  kp:float -> vt:float -> lambda:float -> wl:float -> float -> float ->
  float * float * float
(** [square_law ~kp ~vt ~lambda ~wl vgs vds] for an n-channel device in
    normal mode (vds >= 0): [(ids, gm, gds)]. *)

val eval : Tech.t -> Circuit.mosfet -> float -> float -> float -> eval
(** [eval tech m vd vg vs]: current and derivatives at the given terminal
    voltages. *)

val gate_cap : Tech.t -> Circuit.mosfet -> float
(** Lumped gate capacitance (oxide plus overlaps), F. *)

val junction_cap : Tech.t -> Circuit.mosfet -> float
(** Lumped drain/source junction capacitance, F. *)
