(* Table 1 experiment: energy, worst-case CLK-to-Q delay and energy-delay
   product of the five DETFFs under the paper's Fig. 4 style stimulus
   (a data pattern that exercises an output transition on every clock edge,
   followed by a quiet tail that exposes pure clock-load energy). *)

type result = {
  kind : Detff.kind;
  energy_fj : float;       (* total supply energy over the input sequence *)
  delay_ps : float;        (* worst CLK-to-Q across both edge polarities *)
  edp : float;             (* fJ * ps, as printed in Table 1 *)
  transistors : int;
}

let period = 1.0e-9 (* 1 GHz clock; the DETFF moves data at 2 Gb/s *)
let slew = 50e-12

(* Toggle phase: 4 full cycles (8 edges) with data changing every half cycle;
   quiet phase: 2 cycles with data static. *)
let toggle_cycles = 4
let quiet_cycles = 2

let t_stop = float_of_int (toggle_cycles + quiet_cycles + 1) *. period

(* Data waveform: toggles a quarter period before each clock edge so setup is
   comfortably met on both edges. *)
let data_wave vdd =
  let points = ref [ (0.0, 0.0) ] in
  let n_toggles = 2 * toggle_cycles in
  for k = 0 to n_toggles - 1 do
    (* clock edges sit at (k+1) * period/2 + period/2 offset; toggle 250 ps
       before each edge *)
    let edge = (float_of_int (k + 1) *. (period /. 2.0)) +. (period /. 2.0) in
    let t = edge -. (period /. 4.0) in
    let level = if k mod 2 = 0 then vdd else 0.0 in
    points := (t +. slew, level) :: (t, if k mod 2 = 0 then 0.0 else vdd) :: !points
  done;
  Waveform.pwl (List.rev !points)

let build kind =
  let c = Circuit.create Tech.stm018 in
  let vdd = Circuit.vdd_rail c in
  let clk_in = Circuit.node c "clk_in" in
  let d_in = Circuit.node c "d_in" in
  Stdcell.driver c "vclk" ~node:clk_in
    (Waveform.clock ~vdd:c.tech.Tech.vdd ~period ~slew ~delay:(period /. 2.0));
  Stdcell.driver c "vd" ~node:d_in (data_wave c.tech.Tech.vdd);
  (* identical vdd-powered pin buffers for every design: the energy a design
     externalises onto its clock/data pins is burnt here, so supply-only
     accounting compares the five flip-flops uniformly (an ideal stimulus
     source behind a small resistor is quasi-lossless and would hide it) *)
  let clk = Stdcell.inverter_chain c ~vdd ~input:clk_in ~n:2 ~wn:2.0 () in
  let d = Stdcell.inverter_chain c ~vdd ~input:d_in ~n:2 ~wn:1.5 () in
  Hashtbl.replace c.names "clk" clk;
  Hashtbl.replace c.names "d" d;
  let before = Circuit.mosfet_count c in
  let q = Detff.instantiate c kind ~vdd ~d ~clk in
  let ff_transistors = Circuit.mosfet_count c - before in
  Hashtbl.replace c.names "q" q;
  (* representative fanout: a small inverter plus wire load on Q *)
  let qload = Circuit.fresh_node c in
  Stdcell.inverter c ~vdd ~input:q ~output:qload ();
  Circuit.capacitor c q Circuit.gnd 3e-15;
  (c, ff_transistors)

let measure ?(h = 1.0e-12) kind =
  let c, ff_transistors = build kind in
  let trace = Transient.run ~h ~t_stop ~probes:[ "clk"; "d"; "q" ] c in
  let vdd = c.tech.Tech.vdd in
  (* skip the first cycle (initial settling), measure to the end.  Energy is
     totalled over ALL sources — supply plus clock and data drivers — so a
     design that leaves its clock pin unbuffered is charged for the clock
     load it externalises exactly like one that buffers internally. *)
  let t0 = period and t1 = t_stop in
  let energy = Measure.source_energy ~t0 ~t1 trace "vdd" in
  let clk = Transient.probe trace "clk" and q = Transient.probe trace "q" in
  (* delay: clock edges during the toggle phase, starting from the first edge
     preceded by a data change (the very first edge only re-samples the reset
     value, so it produces no Q transition) *)
  let toggle_end =
    (float_of_int toggle_cycles *. period) +. (period /. 2.0)
  in
  let delay =
    match
      Measure.worst_prop_delay ~vdd
        ~window:(period *. 0.9, toggle_end +. (period /. 2.0))
        ~max_delay:(period /. 4.0) trace.Transient.times clk q
    with
    | Some dly -> dly
    | None -> nan
  in
  {
    kind;
    energy_fj = Measure.femto energy;
    delay_ps = Measure.pico delay;
    edp = Measure.femto energy *. Measure.pico delay;
    transistors = ff_transistors;
  }

(* Full Table 1. *)
let table1 ?h () = List.map (fun k -> measure ?h k) Detff.kinds

(* ---------- DET vs SET: the platform's motivating comparison ----------

   Same data rate for both flip-flops; the DETFF's clock runs at half the
   frequency.  Energies are measured per transferred bit over a window
   with data toggling at the full rate. *)

type det_vs_set = {
  activity : float;        (* fraction of cycles the data toggles *)
  det_energy_fj : float;   (* per data cycle *)
  set_energy_fj : float;
}

let build_det_vs_set ~set ~activity =
  let c = Circuit.create Tech.stm018 in
  let vdd = Circuit.vdd_rail c in
  let clk_in = Circuit.node c "clk_in" in
  let d_in = Circuit.node c "d_in" in
  (* data rate 1 Gb/s in both cases: the SET FF needs a 1 GHz clock, the
     DET FF a 500 MHz clock *)
  let clk_period = if set then period else 2.0 *. period in
  Stdcell.driver c "vclk" ~node:clk_in
    (Waveform.clock ~vdd:c.tech.Tech.vdd ~period:clk_period ~slew
       ~delay:(period /. 2.0));
  (* data toggling on a fraction [activity] of the data cycles: realised
     by a slower square wave — activity a means toggling every 1/a cycles *)
  let toggle_period =
    if activity <= 0.0 then 1.0 (* effectively static *)
    else 2.0 *. period /. activity
  in
  Stdcell.driver c "vd" ~node:d_in
    (Waveform.pulse ~v1:c.tech.Tech.vdd
       ~delay:(3.0 *. period /. 4.0)
       ~rise:slew ~fall:slew
       ~width:((toggle_period /. 2.0) -. slew)
       ~period:toggle_period ());
  let clk = Stdcell.inverter_chain c ~vdd ~input:clk_in ~n:2 ~wn:2.0 () in
  let d = Stdcell.inverter_chain c ~vdd ~input:d_in ~n:2 ~wn:1.5 () in
  let q =
    if set then Setff.instantiate c ~vdd ~d ~clk
    else Detff.instantiate c Detff.Llopis1 ~vdd ~d ~clk
  in
  let qload = Circuit.fresh_node c in
  Stdcell.inverter c ~vdd ~input:q ~output:qload ();
  Circuit.capacitor c q Circuit.gnd 3e-15;
  c

(* Energy per data cycle at the given toggle activity. *)
let det_vs_set_point ?(h = 1e-12) ~activity () =
  let cycles = 8 in
  let t_stop = (float_of_int cycles +. 1.5) *. period in
  let energy set =
    let c = build_det_vs_set ~set ~activity in
    let trace = Transient.run ~h ~t_stop ~probes:[] c in
    let t0 = 1.5 *. period in
    let e =
      Measure.source_energy ~t0 ~t1:(t0 +. (float_of_int cycles *. period))
        trace "vdd"
    in
    Measure.femto e /. float_of_int cycles
  in
  {
    activity;
    det_energy_fj = energy false;
    set_energy_fj = energy true;
  }

let det_vs_set_sweep ?(activities = [ 0.0; 0.25; 0.5; 1.0 ]) ?h () =
  List.map (fun activity -> det_vs_set_point ?h ~activity ()) activities

(* Sanity predicate used by tests and the bench harness: the paper's
   conclusions are that Llopis-1 has the lowest total energy and that the
   selected flip-flop therefore is Llopis-1. *)
let llopis1_has_lowest_energy results =
  match
    List.sort (fun a b -> compare a.energy_fj b.energy_fj) results
  with
  | best :: _ -> best.kind = Detff.Llopis1
  | [] -> false
