(** The Table 1 experiment: energy, worst-case CLK-to-Q delay and
    energy-delay product of the five DETFFs under the paper's Fig. 4 style
    stimulus (a data pattern exercising an output transition on every
    clock edge, followed by a quiet tail). *)

type result = {
  kind : Detff.kind;
  energy_fj : float;  (** total supply energy over the input sequence *)
  delay_ps : float;   (** worst CLK-to-Q across both edge polarities *)
  edp : float;        (** fJ x ps, as printed in Table 1 *)
  transistors : int;  (** flip-flop devices only (testbench excluded) *)
}

val period : float
(** Clock period of the stimulus (1 ns: the DETFF moves data at 2 Gb/s). *)

val toggle_cycles : int
val quiet_cycles : int
val t_stop : float

val build : Detff.kind -> Circuit.t * int
(** The testbench circuit for one candidate and its flip-flop transistor
    count.  Identical vdd-powered clock/data pin buffers are included for
    every design so externalised pin loads are billed uniformly. *)

val measure : ?h:float -> Detff.kind -> result
(** Simulate and measure one candidate ([h] is the integration step). *)

val table1 : ?h:float -> unit -> result list
(** All five candidates, in Table 1 order. *)

val llopis1_has_lowest_energy : result list -> bool
(** The paper's headline ordering (asserted by tests and benches). *)

(** {2 DET vs SET: the platform's motivating comparison}

    Same data rate; the DETFF's clock runs at half the frequency. *)

type det_vs_set = {
  activity : float;      (** fraction of data cycles that toggle *)
  det_energy_fj : float; (** per data cycle *)
  set_energy_fj : float;
}

val det_vs_set_point : ?h:float -> activity:float -> unit -> det_vs_set

val det_vs_set_sweep :
  ?activities:float list -> ?h:float -> unit -> det_vs_set list
