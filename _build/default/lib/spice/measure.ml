(* Waveform measurements: threshold crossings, propagation delay, energy. *)

type edge = Rising | Falling

(* Times at which [wave] crosses [threshold] in the given direction, linearly
   interpolated between samples. *)
let crossings ?edge ~threshold (times : float array) (wave : float array) =
  let out = ref [] in
  for i = 1 to Array.length wave - 1 do
    let a = wave.(i - 1) and b = wave.(i) in
    let rising = a < threshold && b >= threshold in
    let falling = a > threshold && b <= threshold in
    let keep =
      match edge with
      | None -> rising || falling
      | Some Rising -> rising
      | Some Falling -> falling
    in
    if keep && b <> a then begin
      let frac = (threshold -. a) /. (b -. a) in
      let t = times.(i - 1) +. (frac *. (times.(i) -. times.(i - 1))) in
      out := t :: !out
    end
  done;
  List.rev !out

(* First crossing after [after]. *)
let crossing_after ?edge ~threshold ~after times wave =
  List.find_opt (fun t -> t >= after) (crossings ?edge ~threshold times wave)

(* Propagation delay: for each input crossing, time to the next output
   crossing; returns the worst (max) delay over all matched edges within
   [window].  Measured at 50 % of [vdd] as in the paper's worst-case CLK-to-Q
   characterisation.  An input edge with no output crossing within
   [max_delay] produced no output transition and is skipped (e.g. a clock
   edge for which the data did not change). *)
let worst_prop_delay ~vdd ?(window = (0.0, infinity)) ?(max_delay = infinity)
    times input output =
  let lo, hi = window in
  let th = vdd /. 2.0 in
  let in_edges =
    List.filter (fun t -> t >= lo && t <= hi) (crossings ~threshold:th times input)
  in
  let out_edges = crossings ~threshold:th times output in
  let delays =
    List.filter_map
      (fun ti ->
        match List.find_opt (fun t -> t > ti) out_edges with
        | Some t_out when t_out <= hi && t_out -. ti <= max_delay ->
            Some (t_out -. ti)
        | _ -> None)
      in_edges
  in
  match delays with [] -> None | l -> Some (List.fold_left Float.max 0.0 l)

(* Trapezoidal integral of a sampled signal over [t0, t1]. *)
let integrate ~t0 ~t1 (times : float array) (samples : float array) =
  let acc = ref 0.0 in
  for i = 1 to Array.length times - 1 do
    let ta = times.(i - 1) and tb = times.(i) in
    let a = Float.max ta t0 and b = Float.min tb t1 in
    if b > a then begin
      (* linear interpolation of samples at the clipped bounds *)
      let va =
        samples.(i - 1)
        +. ((samples.(i) -. samples.(i - 1)) *. (a -. ta) /. (tb -. ta))
      in
      let vb =
        samples.(i - 1)
        +. ((samples.(i) -. samples.(i - 1)) *. (b -. ta) /. (tb -. ta))
      in
      acc := !acc +. (0.5 *. (va +. vb) *. (b -. a))
    end
  done;
  !acc

(* Energy delivered by source [name] over [t0, t1], J. *)
let source_energy ?(t0 = 0.0) ?(t1 = infinity) (trace : Transient.trace) name =
  let p = Transient.power trace name in
  let t1 = Float.min t1 trace.times.(Array.length trace.times - 1) in
  integrate ~t0 ~t1 trace.times p

(* Total energy from all supply sources whose name passes [filter]. *)
let total_supply_energy ?(t0 = 0.0) ?(t1 = infinity)
    ?(filter = fun _ -> true) (trace : Transient.trace) =
  Array.to_list trace.src_names
  |> List.filter filter
  |> List.fold_left (fun acc n -> acc +. source_energy ~t0 ~t1 trace n) 0.0

let femto x = x *. 1e15
let pico x = x *. 1e12
