(** Waveform measurements: threshold crossings, propagation delay, energy. *)

type edge = Rising | Falling

val crossings :
  ?edge:edge -> threshold:float -> float array -> float array -> float list
(** Times at which the waveform crosses [threshold], linearly interpolated
    between samples. *)

val crossing_after :
  ?edge:edge -> threshold:float -> after:float -> float array ->
  float array -> float option

val worst_prop_delay :
  vdd:float -> ?window:float * float -> ?max_delay:float ->
  float array -> float array -> float array -> float option
(** Worst input-to-output delay at the 50 % threshold over all matched
    edges within [window].  An input edge with no output crossing within
    [max_delay] produced no transition and is skipped. *)

val integrate : t0:float -> t1:float -> float array -> float array -> float
(** Trapezoidal integral of a sampled signal over [t0, t1]. *)

val source_energy :
  ?t0:float -> ?t1:float -> Transient.trace -> string -> float
(** Energy delivered by the named source over the window, J. *)

val total_supply_energy :
  ?t0:float -> ?t1:float -> ?filter:(string -> bool) ->
  Transient.trace -> float
(** Total energy over all sources passing [filter]. *)

val femto : float -> float
(** Scale J to fJ (or s to fs). *)

val pico : float -> float
(** Scale s to ps (or J to pJ). *)
