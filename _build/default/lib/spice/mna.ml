(* Modified nodal analysis: matrix assembly for one Newton iteration.

   Unknowns: node voltages for nodes 1..n-1 (ground excluded) followed by one
   branch current per voltage source.  The sign convention for the branch
   current is "flowing from the + node through the source to the - node", so
   the power a source delivers to the circuit is -V * i. *)

type t = {
  circuit : Circuit.t;
  n_v : int;                     (* voltage unknowns *)
  n_src : int;
  size : int;
  vsrcs : (string * int * int * Waveform.t) array;
  mosfets : Circuit.mosfet array;
  resistors : (int * int * float) array;
  (* explicit caps plus device parasitics, flattened to (a, b, c) branches *)
  caps : (int * int * float) array;
  g : float array array;         (* system matrix, reused between solves *)
  rhs : float array;
}

let gmin = 1e-9  (* drain-source shunt aiding Newton convergence *)

(* Every node to ground.  Large enough that gate-only nodes (pure
   capacitive loads, which contribute nothing to the DC conductance matrix)
   keep the system comfortably non-singular; small enough that its leakage
   is far below any energy being measured. *)
let gshunt = 1e-9

let build (c : Circuit.t) =
  let n_v = Circuit.n_nodes c - 1 in
  let vsrcs = Array.of_list (List.rev c.vsources) in
  let n_src = Array.length vsrcs in
  let size = n_v + n_src in
  let parasitics =
    List.concat_map
      (fun (m : Circuit.mosfet) ->
        [
          (m.g, Circuit.gnd, Device.gate_cap c.tech m);
          (m.d, Circuit.gnd, Device.junction_cap c.tech m);
          (m.s, Circuit.gnd, Device.junction_cap c.tech m);
        ])
      c.mosfets
  in
  {
    circuit = c;
    n_v;
    n_src;
    size;
    vsrcs;
    mosfets = Array.of_list (List.rev c.mosfets);
    resistors = Array.of_list (List.rev c.resistors);
    caps = Array.of_list (List.rev c.capacitors @ parasitics);
    g = Array.make_matrix size size 0.0;
    rhs = Array.make size 0.0;
  }

(* Row/column index of a node; ground contributes nothing. *)
let idx node = node - 1

let add t r c v = if r >= 0 && c >= 0 then t.g.(r).(c) <- t.g.(r).(c) +. v

let add_rhs t r v = if r >= 0 then t.rhs.(r) <- t.rhs.(r) +. v

let stamp_conductance t a b g =
  let ia = idx a and ib = idx b in
  add t ia ia g;
  add t ib ib g;
  add t ia ib (-.g);
  add t ib ia (-.g)

(* Current [i] injected into node [a] and drawn from node [b]. *)
let stamp_current t a b i =
  add_rhs t (idx a) i;
  add_rhs t (idx b) (-.i)

let stamp_mosfet t (m : Circuit.mosfet) v =
  let vd = v.(m.d) and vg = v.(m.g) and vs = v.(m.s) in
  let e = Device.eval t.circuit.tech m vd vg vs in
  let id_ = idx m.d and ig = idx m.g and is_ = idx m.s in
  (* current into drain: i = ieq + di_dvd*vd + di_dvg*vg + di_dvs*vs *)
  let ieq = e.i -. (e.di_dvd *. vd) -. (e.di_dvg *. vg) -. (e.di_dvs *. vs) in
  (* KCL at drain: +i leaves through the channel *)
  add t id_ id_ e.di_dvd;
  add t id_ ig e.di_dvg;
  add t id_ is_ e.di_dvs;
  add_rhs t id_ (-.ieq);
  (* KCL at source: -i *)
  add t is_ id_ (-.e.di_dvd);
  add t is_ ig (-.e.di_dvg);
  add t is_ is_ (-.e.di_dvs);
  add_rhs t is_ ieq;
  stamp_conductance t m.d m.s gmin

(* Assemble the linear system for one Newton iteration.

   [v] is the current voltage guess (indexed by node id, v.(0) = 0).
   [cap_geq]/[cap_ih] are the per-capacitor companion conductance and history
   current for this timestep (computed once per step by the integrator); for
   a DC solve pass zeros. [time] selects the source values. *)
let assemble t ~v ~cap_geq ~cap_ih ~time =
  for r = 0 to t.size - 1 do
    t.rhs.(r) <- 0.0;
    Array.fill t.g.(r) 0 t.size 0.0
  done;
  for n = 1 to t.n_v do
    add t (idx n) (idx n) gshunt
  done;
  Array.iter (fun (a, b, r) -> stamp_conductance t a b (1.0 /. r)) t.resistors;
  Array.iteri
    (fun k (a, b, _) ->
      stamp_conductance t a b cap_geq.(k);
      stamp_current t a b cap_ih.(k))
    t.caps;
  Array.iter (fun m -> stamp_mosfet t m v) t.mosfets;
  Array.iteri
    (fun k (_, p, n, wave) ->
      let row = t.n_v + k in
      let ip = idx p and in_ = idx n in
      (* branch current enters the + node row with +1 *)
      add t ip row 1.0;
      add t in_ row (-1.0);
      add t row ip 1.0;
      add t row in_ (-1.0);
      add_rhs t row (Waveform.value wave time))
    t.vsrcs

(* Solve the assembled system; returns the raw unknown vector. *)
let solve t = Util.Lu.solve_system t.g t.rhs
