(* A conventional single-edge-triggered flip-flop: the transmission-gate
   master-slave PET FF every standard-cell library ships.

   It exists as the baseline for the platform's headline argument (§3.1):
   a DETFF moves the same data rate at half the clock frequency, so the
   clock network burns roughly half the power. *)

open Circuit

(* Positive-edge-triggered master-slave DFF; returns Q. *)
let instantiate c ~vdd ~d ~clk =
  let clk_b = fresh_node c in
  Stdcell.inverter c ~vdd ~input:clk ~output:clk_b ();
  (* master: transparent while clk = 0, ratioed hold *)
  let m = fresh_node c in
  let m_fb = fresh_node c in
  Stdcell.tgate c ~a:d ~b:m ~en:clk_b ~en_b:clk ~wn:2.0 ();
  Stdcell.inverter c ~vdd ~input:m ~output:m_fb ();
  Stdcell.weak_inverter c ~vdd ~input:m_fb ~output:m;
  (* slave: transparent while clk = 1; captures NOT d on the rising edge *)
  let s = fresh_node c in
  let s_fb = fresh_node c in
  Stdcell.tgate c ~a:m_fb ~b:s ~en:clk ~en_b:clk_b ~wn:2.0 ();
  Stdcell.inverter c ~vdd ~input:s ~output:s_fb ();
  Stdcell.weak_inverter c ~vdd ~input:s_fb ~output:s;
  (* polarity: m = d, m_fb = NOT d, s = NOT d, s_fb = d; buffer for drive *)
  let qb = fresh_node c and q = fresh_node c in
  Stdcell.inverter c ~vdd ~input:s_fb ~output:qb ();
  Stdcell.inverter c ~vdd ~input:qb ~output:q ~wn:1.2 ();
  q
