(** A conventional single-edge-triggered flip-flop (transmission-gate
    master-slave), the baseline for the platform's DETFF argument: a
    DETFF moves the same data rate at half the clock frequency. *)

val instantiate :
  Circuit.t -> vdd:Circuit.node -> d:Circuit.node -> clk:Circuit.node ->
  Circuit.node
(** Positive-edge-triggered master-slave DFF; returns the Q node. *)
