(* Transistor-level standard cells.

   All widths are given in multiples of the technology's minimum contactable
   width (the paper sizes everything relative to that 0.28 um minimum).
   Channel length is always minimum.  Cells take and return nodes so larger
   structures (latches, flip-flops, LUTs) compose functionally. *)

open Circuit

(* Default P/N width ratio compensating the mobility gap. *)
let beta = 2.5

let width (c : Circuit.t) mult = mult *. c.tech.Tech.w_min

(* Static CMOS inverter; [wn] in multiples of Wmin, PMOS gets [beta] times
   that unless [wp] is given. *)
let inverter c ~vdd ~input ~output ?(wn = 1.0) ?wp () =
  let wp = Option.value wp ~default:(beta *. wn) in
  nmos c ~d:output ~g:input ~s:gnd ~w:(width c wn) ();
  pmos c ~d:output ~g:input ~s:vdd ~w:(width c wp) ()

(* Chain of [n] inverters from [input]; returns the final output node.
   [taper] scales each successive stage. *)
let inverter_chain c ~vdd ~input ?(n = 2) ?(wn = 1.0) ?(taper = 1.0) () =
  let rec build node i w =
    if i = 0 then node
    else begin
      let out = fresh_node c in
      inverter c ~vdd ~input:node ~output:out ~wn:w ();
      build out (i - 1) (w *. taper)
    end
  in
  build input n wn

let nand2 c ~vdd ~a ~b ~output ?(wn = 2.0) ?wp () =
  let wp = Option.value wp ~default:(beta *. wn /. 2.0) in
  let mid = fresh_node c in
  nmos c ~d:output ~g:a ~s:mid ~w:(width c wn) ();
  nmos c ~d:mid ~g:b ~s:gnd ~w:(width c wn) ();
  pmos c ~d:output ~g:a ~s:vdd ~w:(width c wp) ();
  pmos c ~d:output ~g:b ~s:vdd ~w:(width c wp) ()

let nor2 c ~vdd ~a ~b ~output ?(wn = 1.0) ?wp () =
  let wp = Option.value wp ~default:(beta *. wn *. 2.0) in
  let mid = fresh_node c in
  pmos c ~d:output ~g:a ~s:mid ~w:(width c wp) ();
  pmos c ~d:mid ~g:b ~s:vdd ~w:(width c wp) ();
  nmos c ~d:output ~g:a ~s:gnd ~w:(width c wn) ();
  nmos c ~d:output ~g:b ~s:gnd ~w:(width c wn) ()

(* Transmission gate between [a] and [b]; conducts when en = 1, en_b = 0. *)
let tgate c ~a ~b ~en ~en_b ?(wn = 1.0) ?wp () =
  let wp = Option.value wp ~default:wn in
  nmos c ~d:a ~g:en ~s:b ~w:(width c wn) ();
  pmos c ~d:a ~g:en_b ~s:b ~w:(width c wp) ()

(* Bare NMOS pass transistor (the routing-switch style selected in §3.3). *)
let pass_nmos c ~a ~b ~gate ~wn = nmos c ~d:a ~g:gate ~s:b ~w:(width c wn) ()

(* C2MOS tri-state inverter (Fig. 3, clocked-inverter style): drives
   [output] with NOT input when en = 1/en_b = 0, high-Z otherwise. *)
let c2mos_inverter c ~vdd ~input ~output ~en ~en_b ?(wn = 1.0) ?wp () =
  let wp = Option.value wp ~default:(beta *. wn) in
  let np = fresh_node c and nn = fresh_node c in
  pmos c ~d:np ~g:input ~s:vdd ~w:(width c wp) ();
  pmos c ~d:output ~g:en_b ~s:np ~w:(width c wp) ();
  nmos c ~d:output ~g:en ~s:nn ~w:(width c wn) ();
  nmos c ~d:nn ~g:input ~s:gnd ~w:(width c wn) ()

(* Tri-state inverter, transmission-gate style (Fig. 3, second type):
   a static inverter followed by a TG.  Same function as C2MOS but the
   clocked devices are out of the charging path. *)
let tg_tristate_inverter c ~vdd ~input ~output ~en ~en_b ?(wn = 1.0) ?wp () =
  let mid = fresh_node c in
  inverter c ~vdd ~input ~output:mid ~wn ?wp ();
  tgate c ~a:mid ~b:output ~en ~en_b ~wn ()

(* Weak always-on inverter for ratioed feedback (long channel, so the
   write path overpowers it cheaply). *)
let weak_inverter c ~vdd ~input ~output =
  let l = 4.0 *. c.tech.Tech.l_min in
  nmos c ~d:output ~g:input ~s:gnd ~w:(width c 1.0) ~l ();
  pmos c ~d:output ~g:input ~s:vdd ~w:(width c 1.0) ~l ()

(* 2-to-1 transmission-gate multiplexer: out = sel ? a : b. *)
let mux2_tg c ~a ~b ~sel ~sel_b ~output ?(wn = 1.0) () =
  tgate c ~a ~b:output ~en:sel ~en_b:sel_b ~wn ();
  tgate c ~a:b ~b:output ~en:sel_b ~en_b:sel ~wn ()

(* Ideal-ish input driver: a voltage source behind a small resistance, so
   stimulus nodes still present realistic edges to the circuit under test. *)
let driver c name ~node:nd wave =
  let src = fresh_node c in
  vsource c name ~pos:src ~neg:gnd wave;
  resistor c src nd 100.0
