(** Transistor-level standard cells.

    All widths are in multiples of the technology's minimum contactable
    width (the paper sizes everything relative to that 0.28 um minimum).
    Channel length is always minimum.  Cells take and return nodes so
    larger structures (latches, flip-flops, LUTs) compose functionally. *)

val beta : float
(** Default P/N width ratio compensating the mobility gap. *)

val width : Circuit.t -> float -> float
(** [width c mult] is [mult] times the process minimum width, in metres. *)

val inverter :
  Circuit.t -> vdd:Circuit.node -> input:Circuit.node ->
  output:Circuit.node -> ?wn:float -> ?wp:float -> unit -> unit
(** Static CMOS inverter; PMOS defaults to [beta * wn]. *)

val inverter_chain :
  Circuit.t -> vdd:Circuit.node -> input:Circuit.node -> ?n:int ->
  ?wn:float -> ?taper:float -> unit -> Circuit.node
(** Chain of [n] inverters; returns the final output node.  [taper]
    scales each successive stage. *)

val nand2 :
  Circuit.t -> vdd:Circuit.node -> a:Circuit.node -> b:Circuit.node ->
  output:Circuit.node -> ?wn:float -> ?wp:float -> unit -> unit

val nor2 :
  Circuit.t -> vdd:Circuit.node -> a:Circuit.node -> b:Circuit.node ->
  output:Circuit.node -> ?wn:float -> ?wp:float -> unit -> unit

val tgate :
  Circuit.t -> a:Circuit.node -> b:Circuit.node -> en:Circuit.node ->
  en_b:Circuit.node -> ?wn:float -> ?wp:float -> unit -> unit
(** Transmission gate between [a] and [b]; conducts when en = 1. *)

val pass_nmos :
  Circuit.t -> a:Circuit.node -> b:Circuit.node -> gate:Circuit.node ->
  wn:float -> unit
(** Bare NMOS pass transistor (the routing-switch style of §3.3). *)

val c2mos_inverter :
  Circuit.t -> vdd:Circuit.node -> input:Circuit.node ->
  output:Circuit.node -> en:Circuit.node -> en_b:Circuit.node ->
  ?wn:float -> ?wp:float -> unit -> unit
(** C2MOS tri-state inverter (Fig. 3, clocked-inverter style). *)

val tg_tristate_inverter :
  Circuit.t -> vdd:Circuit.node -> input:Circuit.node ->
  output:Circuit.node -> en:Circuit.node -> en_b:Circuit.node ->
  ?wn:float -> ?wp:float -> unit -> unit
(** Tri-state inverter, transmission-gate style (Fig. 3, second type):
    the clocked devices sit outside the charging path. *)

val weak_inverter :
  Circuit.t -> vdd:Circuit.node -> input:Circuit.node ->
  output:Circuit.node -> unit
(** Weak always-on inverter (long channel) for ratioed feedback. *)

val mux2_tg :
  Circuit.t -> a:Circuit.node -> b:Circuit.node -> sel:Circuit.node ->
  sel_b:Circuit.node -> output:Circuit.node -> ?wn:float -> unit -> unit
(** Transmission-gate 2:1 multiplexer: out = sel ? a : b. *)

val driver : Circuit.t -> string -> node:Circuit.node -> Waveform.t -> unit
(** Stimulus source behind a small series resistance, so driven nodes see
    realistic edges. *)
