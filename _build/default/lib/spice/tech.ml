(* Process parameters of an 0.18 um-class CMOS node.

   These stand in for the STM 0.18 um 6-metal process the paper simulated in
   Cadence (see DESIGN.md, substitutions).  The values are textbook-level
   constants for that generation; the experiments built on top only rely on
   relative comparisons, not on matching a foundry kit. *)

type t = {
  vdd : float;       (* supply voltage, V *)
  vt_n : float;      (* NMOS threshold, V *)
  vt_p : float;      (* PMOS threshold magnitude, V *)
  kp_n : float;      (* NMOS transconductance kp = mu_n * Cox, A/V^2 *)
  kp_p : float;      (* PMOS transconductance, A/V^2 *)
  lambda_n : float;  (* channel-length modulation, 1/V *)
  lambda_p : float;
  cox : float;       (* gate oxide capacitance, F/m^2 *)
  cgdo : float;      (* gate-drain/source overlap capacitance, F/m *)
  cj : float;        (* junction capacitance per device width, F/m *)
  l_min : float;     (* minimum channel length, m *)
  w_min : float;     (* minimum contactable width, m (paper: 0.28 um) *)
}

let stm018 = {
  vdd = 1.8;
  vt_n = 0.45;
  vt_p = 0.45;
  kp_n = 170e-6;
  kp_p = 60e-6;
  lambda_n = 0.08;
  lambda_p = 0.11;
  cox = 8.5e-3;     (* 8.5 fF/um^2 *)
  cgdo = 0.35e-9;   (* 0.35 fF/um *)
  cj = 0.9e-9;      (* 0.9 fF/um of device width, lumped S/D junction *)
  l_min = 0.18e-6;
  w_min = 0.28e-6;
}

(* Metal wiring options explored in Figs. 8-10.  The routing wires are laid
   out in metal 3 (lowest-capacitance routing layer of the process). *)
type wire_config = Min_width_min_spacing | Min_width_double_spacing | Double_width_double_spacing

let wire_config_name = function
  | Min_width_min_spacing -> "min width / min spacing"
  | Min_width_double_spacing -> "min width / double spacing"
  | Double_width_double_spacing -> "double width / double spacing"

(* Per-unit-length metal-3 RC for each configuration.

   Doubling the spacing cuts the coupling component of the capacitance;
   doubling the width halves the sheet resistance but adds area (parallel
   plate) capacitance.  Values are representative of 0.18 um metal 3. *)
let wire_r_per_m = function
  | Min_width_min_spacing -> 170e3        (* ohm/m: 0.075 ohm/sq at 0.44 um width *)
  | Min_width_double_spacing -> 170e3
  | Double_width_double_spacing -> 85e3

let wire_c_per_m = function
  | Min_width_min_spacing -> 330e-12      (* F/m: area + heavy coupling *)
  | Min_width_double_spacing -> 230e-12   (* coupling halved by spacing *)
  | Double_width_double_spacing -> 270e-12 (* more area cap, still low coupling *)

(* Metal pitch in multiples of the minimum pitch; channel area grows with it. *)
let wire_pitch_factor = function
  | Min_width_min_spacing -> 1.0
  | Min_width_double_spacing -> 1.5
  | Double_width_double_spacing -> 2.0

(* Physical span of one logic-block tile along a routing track. *)
let tile_length = 116e-6
