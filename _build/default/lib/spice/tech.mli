(** Process parameters of an 0.18 um-class CMOS node.

    These stand in for the STM 0.18 um 6-metal process the paper simulated
    in Cadence (DESIGN.md, substitutions): textbook-level constants for
    that generation.  The experiments built on top only rely on relative
    comparisons, not on matching a foundry kit. *)

type t = {
  vdd : float;       (** supply voltage, V *)
  vt_n : float;      (** NMOS threshold, V *)
  vt_p : float;      (** PMOS threshold magnitude, V *)
  kp_n : float;      (** NMOS transconductance mu_n * Cox, A/V^2 *)
  kp_p : float;      (** PMOS transconductance, A/V^2 *)
  lambda_n : float;  (** channel-length modulation, 1/V *)
  lambda_p : float;
  cox : float;       (** gate oxide capacitance, F/m^2 *)
  cgdo : float;      (** gate-drain/source overlap capacitance, F/m *)
  cj : float;        (** junction capacitance per device width, F/m *)
  l_min : float;     (** minimum channel length, m *)
  w_min : float;     (** minimum contactable width, m (paper: 0.28 um) *)
}

val stm018 : t
(** The default 0.18 um-class process. *)

(** Metal wiring options explored in Figs. 8-10 (routing wires are laid
    out in metal 3, the lowest-capacitance routing layer). *)
type wire_config =
  | Min_width_min_spacing
  | Min_width_double_spacing
  | Double_width_double_spacing

val wire_config_name : wire_config -> string

val wire_r_per_m : wire_config -> float
(** Wire resistance per metre. *)

val wire_c_per_m : wire_config -> float
(** Wire capacitance per metre (area plus coupling). *)

val wire_pitch_factor : wire_config -> float
(** Metal pitch in multiples of the minimum pitch; channel area grows
    with it. *)

val tile_length : float
(** Physical span of one logic-block tile along a routing track, m. *)
