(* Transient analysis: trapezoidal integration with Newton iteration.

   The solver assembles the companion-linearised MNA system at each Newton
   iteration; the solution of that system IS the new voltage guess (not a
   delta), which is the standard companion formulation.  If Newton fails to
   converge on a step the step is recursively quartered (stiff edges). *)

type trace = {
  h : float;
  times : float array;
  probe_names : string array;
  probe_waves : float array array;     (* probe index -> samples *)
  src_names : string array;
  src_power : float array array;       (* source index -> delivered power, W *)
}

exception No_convergence of float
(** Raised with the simulation time at which Newton diverged beyond rescue. *)

let damp_limit = 0.5 (* max voltage change per Newton iteration, V *)

(* One Newton solve at [time] given cap companions; updates [v] in place.
   Returns true on convergence. *)
let newton (m : Mna.t) ~v ~cap_geq ~cap_ih ~time ~tol ~max_iter =
  let n_nodes = m.n_v + 1 in
  let rec iterate k =
    if k >= max_iter then false
    else begin
      Mna.assemble m ~v ~cap_geq ~cap_ih ~time;
      match Mna.solve m with
      | exception Util.Lu.Singular _ ->
          (* a numerically singular Jacobian at this operating point is a
             convergence failure like any other: let the caller substep *)
          false
      | x ->
      let delta = ref 0.0 in
      for node = 1 to n_nodes - 1 do
        let target = x.(node - 1) in
        let d = target -. v.(node) in
        let d = Float.max (-.damp_limit) (Float.min damp_limit d) in
        if Float.abs d > !delta then delta := Float.abs d;
        v.(node) <- v.(node) +. d
      done;
      if !delta < tol then true else iterate (k + 1)
    end
  in
  iterate 0

(* Extract source branch currents for the converged solution. *)
let source_currents (m : Mna.t) ~v ~cap_geq ~cap_ih ~time =
  Mna.assemble m ~v ~cap_geq ~cap_ih ~time;
  let x = Mna.solve m in
  Array.init m.n_src (fun k -> x.(m.n_v + k))

(* DC operating point: Newton with capacitors removed.  Falls back to the
   all-zero state on non-convergence (the caller's stimuli are expected to
   include a settle interval in that case). *)
let dc_operating_point (m : Mna.t) ~tol =
  let v = Array.make (m.n_v + 1) 0.0 in
  let zeros = Array.make (Array.length m.caps) 0.0 in
  let ok = newton m ~v ~cap_geq:zeros ~cap_ih:zeros ~time:0.0 ~tol ~max_iter:300 in
  if not ok then Array.fill v 0 (Array.length v) 0.0;
  v

(* Advance the state (v, cap currents) from [time] by [h], splitting the step
   on Newton failure. *)
let rec advance (m : Mna.t) ~v ~icap ~time ~h ~tol ~depth =
  let ncaps = Array.length m.caps in
  let cap_geq = Array.make ncaps 0.0 in
  let cap_ih = Array.make ncaps 0.0 in
  Array.iteri
    (fun k (a, b, c) ->
      let geq = 2.0 *. c /. h in
      cap_geq.(k) <- geq;
      cap_ih.(k) <- (geq *. (v.(a) -. v.(b))) +. icap.(k))
    m.caps;
  let v_try = Array.copy v in
  let ok =
    newton m ~v:v_try ~cap_geq ~cap_ih ~time:(time +. h) ~tol ~max_iter:100
  in
  if ok then begin
    Array.blit v_try 0 v 0 (Array.length v);
    Array.iteri
      (fun k (a, b, _) ->
        icap.(k) <- (cap_geq.(k) *. (v.(a) -. v.(b))) -. cap_ih.(k))
      m.caps;
    source_currents m ~v ~cap_geq ~cap_ih ~time:(time +. h)
  end
  else if depth < 5 then begin
    (* quarter the step; discard intermediate source currents *)
    let h4 = h /. 4.0 in
    let last = ref [||] in
    for i = 0 to 3 do
      last :=
        advance m ~v ~icap ~time:(time +. (float_of_int i *. h4)) ~h:h4 ~tol
          ~depth:(depth + 1)
    done;
    !last
  end
  else raise (No_convergence time)

(* Run a transient from t = 0 to [t_stop] with fixed output step [h].

   [probes] are node names whose waveforms are recorded.  Per-source
   delivered power (-V * i_branch) is always recorded so energies over
   arbitrary windows can be computed afterwards (see Measure). *)
let run ?(h = 1e-12) ?(tol = 1e-6) ~t_stop ~probes (c : Circuit.t) =
  (* resolve probe names before building the MNA structures: a probe must
     refer to an existing node, not silently create a floating one *)
  List.iter
    (fun name ->
      if not (Hashtbl.mem c.Circuit.names name) then
        invalid_arg ("Transient.run: unknown probe node " ^ name))
    probes;
  let m = Mna.build c in
  let v = dc_operating_point m ~tol in
  let icap = Array.make (Array.length m.caps) 0.0 in
  let steps = int_of_float (Float.ceil (t_stop /. h)) in
  let probe_nodes = Array.of_list (List.map (Circuit.node c) probes) in
  let probe_names = Array.of_list probes in
  let src_names = Array.map (fun (n, _, _, _) -> n) m.vsrcs in
  let times = Array.init (steps + 1) (fun i -> float_of_int i *. h) in
  let probe_waves = Array.map (fun _ -> Array.make (steps + 1) 0.0) probe_nodes in
  let src_power = Array.map (fun _ -> Array.make (steps + 1) 0.0) src_names in
  let record i currents =
    Array.iteri (fun p nd -> probe_waves.(p).(i) <- v.(nd)) probe_nodes;
    Array.iteri
      (fun k (_, _, _, wave) ->
        let volt = Waveform.value wave times.(i) in
        src_power.(k).(i) <- -.volt *. currents.(k))
      m.vsrcs
  in
  (* initial sample: currents at t = 0 from the DC solution *)
  let zeros = Array.make (Array.length m.caps) 0.0 in
  record 0 (source_currents m ~v ~cap_geq:zeros ~cap_ih:zeros ~time:0.0);
  for i = 1 to steps do
    let currents =
      advance m ~v ~icap ~time:times.(i - 1) ~h ~tol ~depth:0
    in
    record i currents
  done;
  { h; times; probe_names; probe_waves; src_names; src_power }

let probe trace name =
  let rec find i =
    if i >= Array.length trace.probe_names then
      invalid_arg ("Transient.probe: unknown probe " ^ name)
    else if trace.probe_names.(i) = name then trace.probe_waves.(i)
    else find (i + 1)
  in
  find 0

let power trace name =
  let rec find i =
    if i >= Array.length trace.src_names then
      invalid_arg ("Transient.power: unknown source " ^ name)
    else if trace.src_names.(i) = name then trace.src_power.(i)
    else find (i + 1)
  in
  find 0
