(** Transient analysis: trapezoidal integration with Newton iteration.

    The solver assembles the companion-linearised MNA system at each Newton
    iteration; if a step fails to converge it is recursively quartered.
    The simulation starts from a DC operating point (capacitors open),
    falling back to the all-zero state if DC does not converge. *)

type trace = {
  h : float;
  times : float array;
  probe_names : string array;
  probe_waves : float array array;  (** probe index -> samples *)
  src_names : string array;
  src_power : float array array;    (** source index -> delivered power, W *)
}

exception No_convergence of float
(** Raised with the simulation time at which Newton diverged beyond
    rescue (after step subdivision). *)

val run :
  ?h:float -> ?tol:float -> t_stop:float -> probes:string list ->
  Circuit.t -> trace
(** Simulate from t = 0 to [t_stop] with fixed step [h] (default 1 ps).
    [probes] are node names whose waveforms are recorded; per-source
    delivered power is always recorded.
    @raise Invalid_argument if a probe names no existing node. *)

val probe : trace -> string -> float array
(** Recorded waveform of a probed node. *)

val power : trace -> string -> float array
(** Delivered-power waveform of a source. *)
