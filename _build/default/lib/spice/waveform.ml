(* Stimulus waveforms for independent voltage sources. *)

type t =
  | Dc of float
  | Pulse of pulse
  | Pwl of (float * float) array
      (* (time, value) pairs sorted by time; linear interpolation, value held
         before the first and after the last point *)

and pulse = {
  v0 : float;      (* initial level *)
  v1 : float;      (* pulsed level *)
  delay : float;   (* time of first rising edge start *)
  rise : float;    (* rise time *)
  fall : float;    (* fall time *)
  width : float;   (* time spent at v1 (after the rise) *)
  period : float;  (* repetition period *)
}

let dc v = Dc v

let pulse ?(v0 = 0.0) ~v1 ~delay ~rise ~fall ~width ~period () =
  if period <= 0.0 then invalid_arg "Waveform.pulse: period must be positive";
  Pulse { v0; v1; delay; rise; fall; width; period }

let pwl points =
  let a = Array.of_list points in
  for i = 1 to Array.length a - 1 do
    if fst a.(i) < fst a.(i - 1) then
      invalid_arg "Waveform.pwl: times must be non-decreasing"
  done;
  Pwl a

(* A clock with 50 % duty cycle and symmetric edges. *)
let clock ~vdd ~period ~slew ~delay =
  pulse ~v1:vdd ~delay ~rise:slew ~fall:slew
    ~width:((period /. 2.0) -. slew)
    ~period ()

let value t time =
  match t with
  | Dc v -> v
  | Pulse p ->
      if time < p.delay then p.v0
      else begin
        let tau = Float.rem (time -. p.delay) p.period in
        if tau < p.rise then
          p.v0 +. ((p.v1 -. p.v0) *. tau /. p.rise)
        else if tau < p.rise +. p.width then p.v1
        else if tau < p.rise +. p.width +. p.fall then
          p.v1 +. ((p.v0 -. p.v1) *. (tau -. p.rise -. p.width) /. p.fall)
        else p.v0
      end
  | Pwl a ->
      let n = Array.length a in
      if n = 0 then 0.0
      else if time <= fst a.(0) then snd a.(0)
      else if time >= fst a.(n - 1) then snd a.(n - 1)
      else begin
        (* binary search for the segment containing [time] *)
        let lo = ref 0 and hi = ref (n - 1) in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if fst a.(mid) <= time then lo := mid else hi := mid
        done;
        let t0, v0 = a.(!lo) and t1, v1 = a.(!hi) in
        if t1 = t0 then v1 else v0 +. ((v1 -. v0) *. (time -. t0) /. (t1 -. t0))
      end
