(** Stimulus waveforms for independent voltage sources. *)

type pulse = {
  v0 : float;      (** initial level *)
  v1 : float;      (** pulsed level *)
  delay : float;   (** time of first rising edge start *)
  rise : float;
  fall : float;
  width : float;   (** time spent at [v1] after the rise *)
  period : float;
}

type t =
  | Dc of float
  | Pulse of pulse
  | Pwl of (float * float) array
      (** (time, value) pairs sorted by time; linear interpolation, value
          held before the first and after the last point *)

val dc : float -> t

val pulse :
  ?v0:float ->
  v1:float ->
  delay:float ->
  rise:float ->
  fall:float ->
  width:float ->
  period:float ->
  unit ->
  t
(** @raise Invalid_argument on a non-positive period. *)

val pwl : (float * float) list -> t
(** @raise Invalid_argument if times decrease. *)

val clock : vdd:float -> period:float -> slew:float -> delay:float -> t
(** A 50 %-duty-cycle clock with symmetric edges. *)

val value : t -> float -> float
(** [value w t] evaluates the waveform at time [t]. *)
