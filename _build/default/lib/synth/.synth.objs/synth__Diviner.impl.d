lib/synth/diviner.ml: Array Edif Elaborate Gatelib Hashtbl List Logic Netlist Opt Tt Vhdl_parser
