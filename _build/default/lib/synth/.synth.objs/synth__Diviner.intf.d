lib/synth/diviner.mli: Netlist
