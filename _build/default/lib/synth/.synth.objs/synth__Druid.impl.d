lib/synth/druid.ml: Edif Netlist Opt
