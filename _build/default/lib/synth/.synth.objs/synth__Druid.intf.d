lib/synth/druid.mli: Netlist
