lib/synth/e2fmt.ml: Blif Edif Netlist
