lib/synth/e2fmt.mli: Netlist
