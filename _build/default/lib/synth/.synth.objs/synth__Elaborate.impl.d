lib/synth/elaborate.ml: Array Hashtbl List Logic Map Netlist Printf String Tt Vhdl_ast
