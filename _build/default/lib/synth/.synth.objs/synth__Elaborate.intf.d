lib/synth/elaborate.mli: Netlist
