lib/synth/opt.ml: Array Hashtbl List Logic Netlist Seq Stdlib Tt
