lib/synth/opt.mli: Netlist
