(* DIVINER: the behavioural VHDL synthesizer of the flow.

   VHDL source -> parse -> elaborate -> optimise -> decompose to library
   gates -> EDIF netlist (the commercial-tool interchange format of the
   paper's Fig. 11). *)

open Netlist

(* Express every gate in library cells.  Optimisation can leave arbitrary
   truth tables (cofactors of muxes etc.); Shannon-expand those into
   MUX2/INV trees, which Gatelib covers. *)
let decompose_to_library (net : Logic.t) =
  let memo = Hashtbl.create 64 in
  (* build a signal computing [tt] over [fanins]; returns its id *)
  let rec build tt fanins =
    let key = (Tt.bits tt, Tt.arity tt, Array.to_list fanins) in
    match Hashtbl.find_opt memo key with
    | Some id -> id
    | None ->
        let id =
          if Tt.is_const0 tt then
            Logic.add_const net (Logic.fresh_name net "c0") false
          else if Tt.is_const1 tt then
            Logic.add_const net (Logic.fresh_name net "c1") true
          else
            match Gatelib.of_tt tt with
            | Some _ ->
                Logic.add_gate net (Logic.fresh_name net "g") tt fanins
            | None ->
                (* Shannon expansion on the last variable *)
                let i = Tt.arity tt - 1 in
                let sub value =
                  let cof = Tt.cofactor tt i value in
                  let cof, sup = Tt.compact cof in
                  let sub_fanins =
                    Array.of_list (List.map (fun j -> fanins.(j)) sup)
                  in
                  build cof sub_fanins
                in
                let t = sub true and e = sub false in
                Logic.add_gate net (Logic.fresh_name net "g") Tt.mux2
                  [| fanins.(i); t; e |]
        in
        Hashtbl.replace memo key id;
        id
  in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Gate { tt; fanins } when Gatelib.of_tt tt = None ->
        if Tt.is_const0 tt then Logic.set_driver net id (Logic.Const false)
        else if Tt.is_const1 tt then Logic.set_driver net id (Logic.Const true)
        else begin
          (* Shannon-expand; the node itself becomes the top multiplexer *)
          let i = Tt.arity tt - 1 in
          let sub value =
            let cof = Tt.cofactor tt i value in
            let cof, sup = Tt.compact cof in
            build cof (Array.of_list (List.map (fun j -> fanins.(j)) sup))
          in
          let t = sub true and e = sub false in
          Logic.set_driver net id
            (Logic.Gate { tt = Tt.mux2; fanins = [| fanins.(i); t; e |] })
        end
    | _ -> ()
  done;
  (* Shannon introduces fresh constants/gates; clean up *)
  Opt.garbage_collect net

(* Synthesis from a parsed design: elaborate, optimise, decompose.
   [library] supplies the other design units instances may reference. *)
let synthesize_ast ?library design =
  let net = Elaborate.elaborate ?library design in
  let net = Opt.optimize net in
  decompose_to_library net

(* Full synthesis: VHDL text to a Logic network in library gates.  The file
   may contain several entities; the last is the top and the others form
   the instantiation library. *)
let synthesize text =
  let file = Vhdl_parser.file_of_string text in
  let top = List.nth file (List.length file - 1) in
  synthesize_ast ~library:file top

(* VHDL text to EDIF (the DIVINER command-line behaviour). *)
let to_edif text = Edif.of_logic (synthesize text)

let to_edif_string text = Edif.to_string (to_edif text)
