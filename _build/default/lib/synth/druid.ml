(* DRUID: EDIF normalisation.

   The paper's DRUID adapts commercial-tool EDIF output so the downstream
   academic tools accept it.  Concretely: identifier sanitisation, library
   cell validation, removal of dangling nets and duplicate logic, and
   canonical net/instance naming — implemented as a round trip through the
   Logic IR with a light cleanup in between. *)

open Netlist

exception Druid_error of string

let normalize (e : Edif.t) =
  let net =
    try Edif.to_logic e with
    | Edif.Invalid_edif msg -> raise (Druid_error msg)
    | Invalid_argument msg -> raise (Druid_error msg)
  in
  let net = Opt.optimize net in
  Edif.of_logic net

let normalize_string text = Edif.to_string (normalize (Edif.of_string text))
