(** DRUID: EDIF normalisation.

    Adapts commercial-tool EDIF output for the downstream academic tools:
    identifier sanitisation, library-cell validation, removal of dangling
    nets and duplicate logic, canonical naming — implemented as a round
    trip through the Logic IR with a cleanup in between. *)

exception Druid_error of string

val normalize : Netlist.Edif.t -> Netlist.Edif.t
(** @raise Druid_error on a netlist the flow cannot accept. *)

val normalize_string : string -> string
