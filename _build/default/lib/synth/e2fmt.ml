(* E2FMT: EDIF to BLIF netlist translation. *)

open Netlist

let to_logic (e : Edif.t) = Edif.to_logic e

let edif_to_blif text =
  let net = to_logic (Edif.of_string text) in
  Blif.to_string net

let file_to_file ~edif_path ~blif_path =
  let net = to_logic (Edif.of_file edif_path) in
  Blif.to_file blif_path net
