(** E2FMT: EDIF to BLIF netlist translation. *)

val to_logic : Netlist.Edif.t -> Netlist.Logic.t

val edif_to_blif : string -> string
(** EDIF text in, BLIF text out. *)

val file_to_file : edif_path:string -> blif_path:string -> unit
