(* VHDL elaboration: AST -> bit-level Logic network (the heart of DIVINER).

   Every VHDL signal of width w becomes w Logic bit-signals named
   "sig" (w = 1) or "sig[i]".  Expressions elaborate to vectors of signal
   ids with index 0 = LSB.  Gates are built strictly from library functions
   (INV/AND2/OR2/XOR2/XNOR2/MUX2), so the result converts directly to EDIF.

   Process semantics: statements execute sequentially over a symbolic
   environment (last assignment wins); 'if' merges the branch environments
   with multiplexers.  Clocked processes follow the two standard shapes

     process(clk) ... if rising_edge(clk) then ... end if;
     process(clk, rst) ... if rst = '1' then ... elsif rising_edge(clk) ...

   Unassigned paths hold the register value in clocked processes and are an
   elaboration error in combinational ones (no implicit latches). *)

open Netlist
open Vhdl_ast

exception Elab_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

type env = {
  net : Logic.t;
  widths : (string, int) Hashtbl.t;       (* VHDL signal name -> width *)
  bits : (string, int array) Hashtbl.t;   (* name -> logic ids, LSB first *)
  genvars : (string, int) Hashtbl.t;      (* generate loop variables *)
  mutable const0 : int option;
  mutable const1 : int option;
  mutable tmp : int;
}

let bit_name nm w i = if w = 1 then nm else Printf.sprintf "%s[%d]" nm i

let fresh env =
  env.tmp <- env.tmp + 1;
  Printf.sprintf "n%d" env.tmp

let const env v =
  match (v, env.const0, env.const1) with
  | false, Some id, _ -> id
  | true, _, Some id -> id
  | false, None, _ ->
      let id = Logic.add_const env.net (Logic.fresh_name env.net "const0") false in
      env.const0 <- Some id;
      id
  | true, _, None ->
      let id = Logic.add_const env.net (Logic.fresh_name env.net "const1") true in
      env.const1 <- Some id;
      id

let gate env tt fanins =
  let id = Logic.add_gate env.net (fresh env) tt (Array.of_list fanins) in
  id

let inv env a = gate env Tt.inv [ a ]
let and2 env a b = gate env (Tt.and_n 2) [ a; b ]
let or2 env a b = gate env (Tt.or_n 2) [ a; b ]
let xor2 env a b = gate env (Tt.xor_n 2) [ a; b ]
let xnor2 env a b = gate env (Tt.xnor_n 2) [ a; b ]
let nand2 env a b = gate env (Tt.nand_n 2) [ a; b ]
let nor2 env a b = gate env (Tt.nor_n 2) [ a; b ]
let mux2 env ~sel ~t ~e = gate env Tt.mux2 [ sel; t; e ]

let reduce_and env = function
  | [] -> const env true
  | first :: rest -> List.fold_left (and2 env) first rest

(* ---------- expression elaboration ---------- *)

let signal_bits env nm =
  match Hashtbl.find_opt env.bits nm with
  | Some ids -> ids
  | None -> fail "unknown signal %s" nm

(* Indices, slice bounds and generate ranges must be compile-time
   constants: integer literals, generate variables, and +/- over them. *)
let rec const_int env e =
  match e with
  | Int_lit v -> v
  | Name nm -> (
      match Hashtbl.find_opt env.genvars nm with
      | Some v -> v
      | None -> fail "%s is not a constant (index expressions must be)" nm)
  | Binop (Add, a, b) -> const_int env a + const_int env b
  | Binop (Sub, a, b) -> const_int env a - const_int env b
  | _ -> fail "index expression is not constant"

let expr_width env e =
  let rec w = function
    | Name nm -> (
        match Hashtbl.find_opt env.widths nm with
        | Some width -> width
        | None ->
            if Hashtbl.mem env.genvars nm then
              fail "generate variable %s needs a vector context" nm
            else fail "unknown signal %s" nm)
    | Indexed _ -> 1
    | Slice (_, hi, lo) -> const_int env hi - const_int env lo + 1
    | Char_lit _ -> 1
    | String_lit s -> String.length s
    | Int_lit _ -> fail "integer literal needs a vector context"
    | Not a -> w a
    | Aggregate_others _ -> fail "aggregate needs a vector context"
    | Binop ((Eq | Neq | Lt | Gt | Le | Ge), _, _) -> 1
    | Binop (_, a, b) -> (
        match (try Some (w a) with Elab_error _ -> None) with
        | Some wa -> wa
        | None -> w b)
    | Concat (a, b) -> w a + w b
    | Call (f, _) -> fail "call %s is not valid here" f
  in
  w e

(* Elaborate [e] to ids, LSB first.  [want] is the width a context imposes
   (for integer literals). *)
let rec elab_expr env ?want e =
  match e with
  | Name nm when Hashtbl.mem env.genvars nm ->
      (* a generate variable used as a value: an integer literal *)
      elab_expr env ?want (Int_lit (Hashtbl.find env.genvars nm))
  | Name nm -> Array.copy (signal_bits env nm)
  | Indexed (nm, ie) ->
      let i = const_int env ie in
      let b = signal_bits env nm in
      if i < 0 || i >= Array.length b then fail "%s(%d) out of range" nm i;
      [| b.(i) |]
  | Slice (nm, hie, loe) ->
      let hi = const_int env hie and lo = const_int env loe in
      let b = signal_bits env nm in
      if lo < 0 || hi >= Array.length b || lo > hi then
        fail "%s(%d downto %d) out of range" nm hi lo;
      Array.init (hi - lo + 1) (fun k -> b.(lo + k))
  | Char_lit c -> [| const env (c = '1') |]
  | String_lit s ->
      let w = String.length s in
      (* the string is written MSB first *)
      Array.init w (fun i -> const env (s.[w - 1 - i] = '1'))
  | Int_lit v ->
      let w =
        match want with
        | Some w -> w
        | None -> fail "integer literal %d needs a vector context" v
      in
      Array.init w (fun i -> const env ((v lsr i) land 1 = 1))
  | Aggregate_others c ->
      let w =
        match want with
        | Some w -> w
        | None -> fail "(others => '%c') needs a vector context" c
      in
      Array.make w (const env (c = '1'))
  | Not a -> Array.map (inv env) (elab_expr env ?want a)
  | Concat (a, b) ->
      let hb = elab_expr env a and lb = elab_expr env b in
      Array.append lb hb (* b holds the low bits *)
  | Binop (op, a, b) -> elab_binop env ?want op a b
  | Call (f, _) -> fail "%s() only allowed as a clock-edge condition" f

and elab_binop env ?want op a b =
  let bitwise f =
    let wa = try Some (expr_width env a) with Elab_error _ -> None in
    let wb = try Some (expr_width env b) with Elab_error _ -> None in
    let want =
      match (wa, wb) with
      | Some w, _ | _, Some w -> Some w
      | None, None -> want
    in
    let va = elab_expr env ?want a and vb = elab_expr env ?want b in
    if Array.length va <> Array.length vb then
      fail "width mismatch in %s: %d vs %d" (binop_name op) (Array.length va)
        (Array.length vb);
    Array.init (Array.length va) (fun i -> f va.(i) vb.(i))
  in
  match op with
  | And -> bitwise (and2 env)
  | Or -> bitwise (or2 env)
  | Xor -> bitwise (xor2 env)
  | Nand -> bitwise (nand2 env)
  | Nor -> bitwise (nor2 env)
  | Xnor -> bitwise (xnor2 env)
  | Eq | Neq ->
      let bits = bitwise (xnor2 env) in
      let eq = reduce_and env (Array.to_list bits) in
      [| (if op = Eq then eq else inv env eq) |]
  | Lt | Gt | Le | Ge ->
      (* unsigned magnitude comparison, MSB first:
         lt := lt OR (eq AND NOT a_i AND b_i); eq := eq AND (a_i XNOR b_i) *)
      let wa = try Some (expr_width env a) with Elab_error _ -> None in
      let wb = try Some (expr_width env b) with Elab_error _ -> None in
      let w =
        match (wa, wb) with
        | Some w, _ | _, Some w -> w
        | None, None -> fail "cannot infer comparison width"
      in
      let va = elab_expr env ~want:w a in
      let vb = elab_expr env ~want:w b in
      if Array.length va <> w || Array.length vb <> w then
        fail "width mismatch in %s" (binop_name op);
      (* swap operands for Gt/Le so only a-less-than-b is built *)
      let va, vb = match op with Gt | Le -> (vb, va) | _ -> (va, vb) in
      let lt = ref (const env false) in
      let eq = ref (const env true) in
      for i = w - 1 downto 0 do
        let ai_lt_bi = and2 env (inv env va.(i)) vb.(i) in
        lt := or2 env !lt (and2 env !eq ai_lt_bi);
        eq := and2 env !eq (xnor2 env va.(i) vb.(i))
      done;
      (match op with
      | Lt | Gt -> [| !lt |]
      | Le | Ge -> [| inv env !lt |]
      | _ -> assert false)
  | Add | Sub ->
      let wa = try Some (expr_width env a) with Elab_error _ -> None in
      let wb = try Some (expr_width env b) with Elab_error _ -> None in
      let w =
        match (wa, wb) with
        | Some w, _ | _, Some w -> w
        | None, None -> fail "cannot infer adder width"
      in
      let va = elab_expr env ~want:w a in
      let vb = elab_expr env ~want:w b in
      if Array.length va <> w || Array.length vb <> w then
        fail "width mismatch in %s" (binop_name op);
      let vb = if op = Sub then Array.map (inv env) vb else vb in
      (* ripple-carry addition; initial carry 1 implements two's-complement
         subtraction *)
      let carry = ref (const env (op = Sub)) in
      Array.init w (fun i ->
          let s1 = xor2 env va.(i) vb.(i) in
          let sum = xor2 env s1 !carry in
          let c_out = or2 env (and2 env va.(i) vb.(i)) (and2 env s1 !carry) in
          carry := c_out;
          sum)

(* condition expression -> single bit *)
let elab_cond env e =
  let v = elab_expr env e in
  if Array.length v <> 1 then fail "condition must be a single bit";
  v.(0)

(* ---------- sequential elaboration ---------- *)

(* Symbolic assignment state: per VHDL bit (name, index) -> logic id. *)
module Bindings = Map.Make (struct
  type t = string * int

  let compare = compare
end)

let target_bits env = function
  | Name nm ->
      let w = Array.length (signal_bits env nm) in
      (nm, Array.init w (fun i -> i))
  | Indexed (nm, ie) -> (nm, [| const_int env ie |])
  | Slice (nm, hie, loe) ->
      let hi = const_int env hie and lo = const_int env loe in
      (nm, Array.init (hi - lo + 1) (fun k -> lo + k))
  | _ -> fail "bad assignment target"

(* Reads in a process see earlier sequential assignments: shadow the signal
   table with the current bindings while elaborating an expression. *)
let with_bindings env bindings f =
  let saved = Hashtbl.copy env.bits in
  Hashtbl.iter
    (fun nm ids ->
      let ids' =
        Array.mapi
          (fun i id ->
            match Bindings.find_opt (nm, i) bindings with
            | Some b -> b
            | None -> id)
          ids
      in
      Hashtbl.replace env.bits nm ids')
    saved;
  let result = f () in
  Hashtbl.reset env.bits;
  Hashtbl.iter (fun k v -> Hashtbl.replace env.bits k v) saved;
  result

(* Execute statements over bindings (last assignment wins).  [on_hold]
   resolves a bit that one branch assigns but another leaves untouched: in a
   clocked process it returns the register output (hold); in a combinational
   process it raises (no implicit latches). *)
let rec exec_stmts env on_hold bindings stmts =
  List.fold_left (exec_stmt env on_hold) bindings stmts

and exec_stmt env on_hold bindings = function
  | Assign (target, value) ->
      let nm, idxs = target_bits env target in
      let v =
        with_bindings env bindings (fun () ->
            elab_expr env ~want:(Array.length idxs) value)
      in
      if Array.length v <> Array.length idxs then
        fail "width mismatch assigning %s" nm;
      let b = ref bindings in
      Array.iteri (fun k i -> b := Bindings.add (nm, i) v.(k) !b) idxs;
      !b
  | If (branches, els) ->
      (* elaborate conditions in the outer binding context *)
      let rec chain = function
        | [] -> exec_stmts env on_hold bindings els
        | (cond, body) :: rest ->
            let c = elab_cond_in env bindings cond in
            let then_b = exec_stmts env on_hold bindings body in
            let else_b = chain rest in
            merge env on_hold bindings c then_b else_b
      in
      chain branches
  | Case (subject, alternatives) ->
      (* desugar to an if/elsif chain of equality tests *)
      let rec chain = function
        | [] -> bindings
        | (Others, body) :: _ -> exec_stmts env on_hold bindings body
        | (Choice e, body) :: rest ->
            let c = elab_cond_in env bindings (Binop (Eq, subject, e)) in
            let then_b = exec_stmts env on_hold bindings body in
            let else_b = chain rest in
            merge env on_hold bindings c then_b else_b
      in
      chain alternatives

and elab_cond_in env bindings cond =
  with_bindings env bindings (fun () -> elab_cond env cond)

(* Merge two branch outcomes under condition [c]. *)
and merge env on_hold outer c then_b else_b =
  let keys =
    Bindings.fold (fun k _ acc -> k :: acc) then_b []
    @ Bindings.fold (fun k _ acc -> k :: acc) else_b []
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc key ->
      let resolve b =
        match Bindings.find_opt key b with
        | Some id -> Some id
        | None -> Bindings.find_opt key outer
      in
      let t = resolve then_b and e = resolve else_b in
      match (t, e) with
      | Some t, Some e when t = e -> Bindings.add key t acc
      | Some t, Some e -> Bindings.add key (mux2 env ~sel:c ~t ~e) acc
      | Some t, None -> Bindings.add key (mux2 env ~sel:c ~t ~e:(on_hold key)) acc
      | None, Some e -> Bindings.add key (mux2 env ~sel:c ~t:(on_hold key) ~e) acc
      | None, None -> acc)
    outer keys

(* ---------- process elaboration ---------- *)

let is_edge_call = function
  | Call (("rising_edge" | "falling_edge"), [ Name clk ]) -> Some clk
  | _ -> None

(* All (name, index) pairs assigned anywhere in a statement list. *)
let rec assigned_bits env stmts =
  List.concat_map
    (function
      | Assign (target, _) ->
          let nm, idxs = target_bits env target in
          Array.to_list (Array.map (fun i -> (nm, i)) idxs)
      | If (branches, els) ->
          List.concat_map (fun (_, body) -> assigned_bits env body) branches
          @ assigned_bits env els
      | Case (_, alts) ->
          List.concat_map (fun (_, body) -> assigned_bits env body) alts)
    stmts

(* A clocked process: returns (clock, async branches, sync body). *)
let classify_process body =
  match body with
  | [ If (branches, []) ] -> (
      (* find the rising_edge branch; everything before it is async control *)
      let rec split acc = function
        | [] -> None
        | (cond, stmts) :: rest -> (
            match is_edge_call cond with
            | Some clk ->
                if rest <> [] then None else Some (clk, List.rev acc, stmts)
            | None -> split ((cond, stmts) :: acc) rest)
      in
      match split [] branches with
      | Some (clk, async, sync) -> `Clocked (clk, async, sync)
      | None -> `Combinational)
  | _ -> `Combinational

(* ---------- top level ---------- *)

(* Elaborate one design unit into [env]'s network.

   [prefix] scopes the Logic signal names of internal signals and output
   ports ("u1/cnt[0]"); [in_bindings] supplies the actual bit vectors for
   the input ports (the top level passes primary-input signals).  Returns
   the bit vectors of the output ports.  Instances recurse through
   [library], guarded against entity recursion by [active]. *)
let rec elab_design env ~library ~active ~prefix (d : design) ~in_bindings =
  if List.mem d.entity.entity_name active then
    fail "recursive instantiation of entity %s" d.entity.entity_name;
  let active = d.entity.entity_name :: active in
  let net = env.net in
  (* fresh scope: save the name tables, restore on exit *)
  let saved_widths = Hashtbl.copy env.widths in
  let saved_bits = Hashtbl.copy env.bits in
  Hashtbl.reset env.widths;
  Hashtbl.reset env.bits;
  let declare nm w mk =
    if Hashtbl.mem env.widths nm then fail "duplicate signal %s" nm;
    Hashtbl.replace env.widths nm w;
    Hashtbl.replace env.bits nm (Array.init w (fun i -> mk (bit_name nm w i)))
  in
  let placeholder nm w =
    declare nm w (fun bit ->
        Logic.add_input net (Logic.fresh_name net (prefix ^ bit)))
  in
  (* ports *)
  List.iter
    (fun p ->
      let w = width p.typ in
      match p.dir with
      | In -> (
          match List.assoc_opt p.port_name in_bindings with
          | Some ids ->
              if Array.length ids <> w then
                fail "instance port %s: width %d expected, %d given"
                  p.port_name w (Array.length ids);
              Hashtbl.replace env.widths p.port_name w;
              Hashtbl.replace env.bits p.port_name (Array.copy ids)
          | None -> fail "input port %s is unconnected" p.port_name)
      | Out ->
          (* placeholder signals, re-driven when assigned *)
          placeholder p.port_name w)
    d.entity.ports;
  (* internal signals: placeholders, re-driven on assignment *)
  List.iter (fun (nm, typ) -> placeholder nm (width typ)) d.arch.signals;
  let driven = Hashtbl.create 32 in
  let drive (nm, i) id =
    let bits = signal_bits env nm in
    if i < 0 || i >= Array.length bits then
      fail "assignment to %s[%d] is out of range" nm i;
    if Hashtbl.mem driven (nm, i) then fail "multiple drivers for %s[%d]" nm i;
    Hashtbl.replace driven (nm, i) ();
    let target = bits.(i) in
    (* the placeholder becomes a buffer of the computed value; the optimiser
       collapses these *)
    Logic.set_driver net target (Logic.Gate { tt = Tt.buf; fanins = [| id |] })
  in
  (* concurrent statements *)
  let rec do_stmt = function
      | Generate { label; var; lo; hi; body } ->
          (* unroll: bind the loop variable and elaborate the body once per
             iteration (shadowing an outer variable of the same name is
             rejected for clarity) *)
          if Hashtbl.mem env.genvars var then
            fail "generate variable %s shadows an outer one" var;
          let lo = const_int env lo and hi = const_int env hi in
          ignore label;
          for k = lo to hi do
            Hashtbl.replace env.genvars var k;
            List.iter do_stmt body
          done;
          Hashtbl.remove env.genvars var
      | Cond_assign { target; branches; default } ->
          let nm, idxs = target_bits env target in
          let w = Array.length idxs in
          let rec chain = function
            | [] -> elab_expr env ~want:w default
            | (cond, value) :: rest ->
                let c = elab_cond env cond in
                let v = elab_expr env ~want:w value in
                let e = chain rest in
                if Array.length v <> w || Array.length e <> w then
                  fail "width mismatch assigning %s" nm;
                Array.init w (fun k -> mux2 env ~sel:c ~t:v.(k) ~e:e.(k))
          in
          let v = chain branches in
          if Array.length v <> w then fail "width mismatch assigning %s" nm;
          Array.iteri (fun k i -> drive (nm, i) v.(k)) idxs
      | Instance { label; component; port_map } ->
          let sub =
            match
              List.find_opt
                (fun (dd : design) -> dd.entity.entity_name = component)
                library
            with
            | Some dd -> dd
            | None -> fail "unknown entity %s (instance %s)" component label
          in
          (* resolve associations to formal names *)
          let formals = List.map (fun p -> p.port_name) sub.entity.ports in
          let assoc =
            List.mapi
              (fun idx a ->
                match a with
                | Named (formal, actual) ->
                    if not (List.mem formal formals) then
                      fail "instance %s: no port %s on %s" label formal
                        component;
                    (formal, actual)
                | Positional actual -> (
                    match List.nth_opt formals idx with
                    | Some formal -> (formal, actual)
                    | None -> fail "instance %s: too many ports" label))
              port_map
          in
          (* input actuals elaborate in this scope *)
          let in_bindings =
            List.filter_map
              (fun p ->
                if p.dir = In then
                  match List.assoc_opt p.port_name assoc with
                  | Some actual ->
                      Some
                        ( p.port_name,
                          elab_expr env ~want:(width p.typ) actual )
                  | None -> None
                else None)
              sub.entity.ports
          in
          let outs =
            elab_design env ~library ~active
              ~prefix:(prefix ^ label ^ "/")
              sub ~in_bindings
          in
          (* output actuals must be assignable targets in this scope *)
          List.iter
            (fun p ->
              if p.dir = Out then
                match List.assoc_opt p.port_name assoc with
                | None -> () (* open output *)
                | Some actual ->
                    let nm, idxs = target_bits env actual in
                    let ids = List.assoc p.port_name outs in
                    if Array.length ids <> Array.length idxs then
                      fail "instance %s: width mismatch on %s" label
                        p.port_name;
                    Array.iteri (fun k i -> drive (nm, i) ids.(k)) idxs)
            sub.entity.ports
      | Process { sensitivity = _; body } -> (
          match classify_process body with
          | `Clocked (clk, async, sync) ->
              if net.Logic.clock = None then net.Logic.clock <- Some clk;
              let targets = List.sort_uniq compare
                  (assigned_bits env sync
                  @ List.concat_map (fun (_, s) -> assigned_bits env s) async)
              in
              (* create the latches first so reads see the register outputs *)
              let latch_ids =
                List.map
                  (fun (nm, i) ->
                    let q = (signal_bits env nm).(i) in
                    (* the placeholder itself becomes the latch *)
                    ((nm, i), q))
                  targets
              in
              (* synchronous next-state values; unassigned paths hold Q *)
              let on_hold (nm, i) = (signal_bits env nm).(i) in
              let sync_b = exec_stmts env on_hold Bindings.empty sync in
              (* async controls (evaluated combinationally) *)
              let final (nm, i) =
                let q = (signal_bits env nm).(i) in
                let d_sync =
                  match Bindings.find_opt (nm, i) sync_b with
                  | Some id -> id
                  | None -> q (* hold *)
                in
                (* fold async branches (highest priority first); an
                   asynchronous clear is realised through the CLB's clear in
                   hardware — in the IR it guards the data input *)
                List.fold_right
                  (fun (cond, stmts) acc ->
                    let c = elab_cond env cond in
                    let b = exec_stmts env on_hold Bindings.empty stmts in
                    match Bindings.find_opt (nm, i) b with
                    | Some v -> mux2 env ~sel:c ~t:v ~e:acc
                    | None -> acc)
                  async d_sync
              in
              List.iter
                (fun ((nm, i), q) ->
                  if Hashtbl.mem driven (nm, i) then
                    fail "multiple drivers for %s[%d]" nm i;
                  Hashtbl.replace driven (nm, i) ();
                  let d = final (nm, i) in
                  Logic.set_driver net q (Logic.Latch { data = d; init = false }))
                latch_ids
          | `Combinational ->
              let on_hold (nm, i) =
                fail
                  "%s[%d] is not assigned on every path (implicit latches \
                   are not supported)"
                  nm i
              in
              let b = exec_stmts env on_hold Bindings.empty body in
              let targets = List.sort_uniq compare (assigned_bits env body) in
              List.iter
                (fun (nm, i) ->
                  match Bindings.find_opt (nm, i) b with
                  | Some id -> drive (nm, i) id
                  | None ->
                      fail
                        "%s[%d] is not assigned on every path (implicit \
                         latches are not supported)"
                        nm i)
                targets)
  in
  List.iter do_stmt d.arch.stmts;
  (* collect output port bits *)
  let outs =
    List.filter_map
      (fun p ->
        if p.dir = Out then
          Some (p.port_name, Array.copy (signal_bits env p.port_name))
        else None)
      d.entity.ports
  in
  (* restore the enclosing scope *)
  Hashtbl.reset env.widths;
  Hashtbl.iter (fun k v -> Hashtbl.replace env.widths k v) saved_widths;
  Hashtbl.reset env.bits;
  Hashtbl.iter (fun k v -> Hashtbl.replace env.bits k v) saved_bits;
  outs

(* Elaborate [d] as the top of the hierarchy; instances resolve against
   [library] (which may include [d]'s own file's other units). *)
let elaborate ?(library = []) (d : design) =
  let net = Logic.create ~model:d.entity.entity_name () in
  let env =
    {
      net;
      widths = Hashtbl.create 32;
      bits = Hashtbl.create 32;
      genvars = Hashtbl.create 4;
      const0 = None;
      const1 = None;
      tmp = 0;
    }
  in
  (* top-level input ports are primary inputs *)
  let in_bindings =
    List.filter_map
      (fun p ->
        if p.dir = In then
          let w = width p.typ in
          Some
            ( p.port_name,
              Array.init w (fun i -> Logic.add_input net (bit_name p.port_name w i)) )
        else None)
      d.entity.ports
  in
  let outs = elab_design env ~library ~active:[] ~prefix:"" d ~in_bindings in
  (* output ports keep their unprefixed names and become primary outputs *)
  List.iter
    (fun p ->
      if p.dir = Out then
        match List.assoc_opt p.port_name outs with
        | Some ids ->
            let w = Array.length ids in
            Array.iteri
              (fun i id ->
                (* ensure the PO carries the expected port name *)
                let want = bit_name p.port_name w i in
                if Logic.name net id = want then Logic.set_output net id
                else begin
                  let po = Logic.add_gate net (Logic.fresh_name net want) Tt.buf [| id |] in
                  Logic.set_output net po
                end)
              ids
        | None -> ())
    d.entity.ports;
  net
