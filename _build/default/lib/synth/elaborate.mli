(** VHDL elaboration: AST to bit-level Logic network (the heart of
    DIVINER).

    Every VHDL signal of width w becomes w Logic bit-signals named
    ["sig"] (w = 1) or ["sig\[i\]"].  Gates are built strictly from library
    functions (INV/AND2/OR2/XOR2/XNOR2/MUX2), so the result converts
    directly to EDIF.

    Process semantics: statements execute sequentially over a symbolic
    environment (last assignment wins); [if] merges branch environments
    with multiplexers.  Clocked processes follow the standard shapes
    (optionally with asynchronous-reset branches ahead of the
    [rising_edge] branch); unassigned paths hold the register value in
    clocked processes and are an elaboration error in combinational ones.

    Instances recurse through the design [library]; instance-internal
    signals get hierarchical names (["u1/cnt\[0\]"]). *)

exception Elab_error of string

val elaborate : ?library:Netlist.Vhdl_ast.design list -> Netlist.Vhdl_ast.design -> Netlist.Logic.t
(** Elaborate a design as the top of the hierarchy.
    @raise Elab_error on semantic errors (width mismatches, multiple
    drivers, implicit latches, unknown/recursive entities, unconnected
    instance inputs). *)
