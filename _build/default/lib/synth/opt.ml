(* Technology-independent netlist optimisation (the SIS-style cleanup pass
   DIVINER runs before writing EDIF, and SIS runs again before mapping).

   Passes: constant propagation, non-support fanin pruning, buffer/alias
   collapsing, common-subexpression elimination and dead-node sweeping.
   [optimize] iterates them to a fixed point and garbage-collects. *)

open Netlist

(* Rewire every reference of signal [from_] to [to_]; returns whether any
   reference actually moved (drives the optimisation fixed point). *)
let rewire (net : Logic.t) ~from_ ~to_ =
  let moved = ref false in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Gate g ->
        if Array.exists (fun f -> f = from_) g.fanins then begin
          moved := true;
          Logic.set_driver net id
            (Logic.Gate
               {
                 g with
                 fanins = Array.map (fun f -> if f = from_ then to_ else f) g.fanins;
               })
        end
    | Logic.Latch l ->
        if l.data = from_ then begin
          moved := true;
          Logic.set_driver net id (Logic.Latch { l with data = to_ })
        end
    | Logic.Input | Logic.Const _ -> ()
  done;
  !moved

(* One local simplification round; returns true if anything changed. *)
let simplify_round (net : Logic.t) =
  let changed = ref false in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Gate { tt; fanins } ->
        (* fold constant fanins into the table *)
        let tt = ref tt and fanins = ref fanins in
        let again = ref true in
        while !again do
          again := false;
          (match
             Array.to_seq !fanins
             |> Seq.mapi (fun i f -> (i, f))
             |> Seq.find_map (fun (i, f) ->
                    match Logic.driver net f with
                    | Logic.Const b -> Some (i, b)
                    | _ -> None)
           with
          | Some (i, b) ->
              let cof = Tt.cofactor !tt i b in
              (* remove variable i *)
              let n = Tt.arity cof in
              let keep =
                Array.of_list
                  (List.filter (fun j -> j <> i) (List.init n (fun j -> j)))
              in
              tt := Tt.permute cof keep;
              fanins :=
                Array.of_list
                  (List.filteri (fun j _ -> j <> i) (Array.to_list !fanins));
              again := true;
              changed := true
          | None -> ());
          (* merge duplicate fanins: substitute x_j := x_i *)
          (let n = Tt.arity !tt in
           let dup = ref None in
           for i2 = 0 to n - 1 do
             for j2 = i2 + 1 to n - 1 do
               if !dup = None && !fanins.(i2) = !fanins.(j2) then
                 dup := Some (i2, j2)
             done
           done;
           match !dup with
           | Some (i2, j2) ->
               (* rebuild the table with variable j2 tied to i2 *)
               let bits = ref 0 in
               for row = 0 to (1 lsl n) - 1 do
                 let vi = (row lsr i2) land 1 in
                 let row' =
                   if vi = 1 then row lor (1 lsl j2)
                   else row land Stdlib.lnot (1 lsl j2)
                 in
                 if Tt.eval !tt row' then bits := !bits lor (1 lsl row)
               done;
               tt := Tt.create n !bits;
               again := true;
               changed := true
           | None -> ());
          (* prune fanins outside the true support *)
          let sup = Tt.support !tt in
          if List.length sup <> Tt.arity !tt then begin
            let perm = Array.of_list sup in
            tt := Tt.permute !tt perm;
            fanins := Array.map (fun j -> !fanins.(j)) perm;
            again := true;
            changed := true
          end
        done;
        if Tt.arity !tt = 0 then begin
          Logic.set_driver net id (Logic.Const (Tt.is_const1 !tt));
          changed := true
        end
        else Logic.set_driver net id (Logic.Gate { tt = !tt; fanins = !fanins })
    | Logic.Input | Logic.Const _ | Logic.Latch _ -> ()
  done;
  !changed

(* Collapse buffers: a gate computing identity of its single fanin is
   replaced by its fanin everywhere.  Output signals keep their own node (a
   named output may not disappear), unless the fanin itself can take over. *)
let collapse_buffers (net : Logic.t) =
  let changed = ref false in
  let is_output id = List.mem id (Logic.outputs net) in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Gate { tt; fanins } when Tt.equal tt Tt.buf && not (is_output id) ->
        if rewire net ~from_:id ~to_:fanins.(0) then changed := true
    | _ -> ()
  done;
  !changed

(* Structural hashing: identical (tt, fanins) gates are merged. *)
let cse (net : Logic.t) =
  let changed = ref false in
  let seen = Hashtbl.create 64 in
  let is_output id = List.mem id (Logic.outputs net) in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Gate { tt; fanins } ->
        let key = (Tt.bits tt, Tt.arity tt, Array.to_list fanins) in
        (match Hashtbl.find_opt seen key with
        | Some prev when prev <> id && not (is_output id) ->
            (* leave the duplicate dangling; the sweep removes it *)
            if rewire net ~from_:id ~to_:prev then changed := true
        | Some _ -> ()
        | None -> Hashtbl.replace seen key id)
    | _ -> ()
  done;
  !changed

(* Rebuild the network without unreferenced signals. *)
let garbage_collect (net : Logic.t) =
  let live = Array.make (Logic.signal_count net) false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      List.iter mark (Logic.fanins net id)
    end
  in
  List.iter mark (Logic.outputs net);
  (* keep all primary inputs: they are part of the interface *)
  List.iter (fun id -> live.(id) <- true) (Logic.inputs net);
  (* latches feeding only latches must stay reachable through outputs; any
     latch not reachable is dead state and goes away with its cone *)
  let fresh = Logic.create ~model:net.Logic.model () in
  fresh.Logic.clock <- net.Logic.clock;
  let map = Array.make (Logic.signal_count net) (-1) in
  (* create signals in topological order so fanins exist first; latches get
     placeholders resolved afterwards *)
  let order = Logic.topo_order net in
  List.iter
    (fun id ->
      if live.(id) then
        let nm = Logic.name net id in
        match Logic.driver net id with
        | Logic.Input -> map.(id) <- Logic.add_input fresh nm
        | Logic.Const b -> map.(id) <- Logic.add_const fresh nm b
        | Logic.Latch _ -> map.(id) <- Logic.add_input fresh nm (* placeholder *)
        | Logic.Gate { tt; fanins } ->
            map.(id) <-
              Logic.add_gate fresh nm tt (Array.map (fun f -> map.(f)) fanins))
    order;
  (* resolve latches *)
  List.iter
    (fun id ->
      if live.(id) then
        match Logic.driver net id with
        | Logic.Latch { data; init } ->
            Logic.set_driver fresh map.(id)
              (Logic.Latch { data = map.(data); init })
        | _ -> ())
    order;
  List.iter (fun o -> Logic.set_output fresh map.(o)) (Logic.outputs net);
  fresh

(* Full optimisation to a fixed point. *)
let optimize (net : Logic.t) =
  let continue_ = ref true in
  while !continue_ do
    let a = simplify_round net in
    let b = collapse_buffers net in
    let c = cse net in
    continue_ := a || b || c
  done;
  garbage_collect net
