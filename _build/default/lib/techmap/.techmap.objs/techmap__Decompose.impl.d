lib/techmap/decompose.ml: Array Hashtbl List Logic Netlist Synth Tt
