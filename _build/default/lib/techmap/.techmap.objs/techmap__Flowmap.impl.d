lib/techmap/flowmap.ml: Array Hashtbl List Logic Netlist Queue Synth Tt
