lib/techmap/flowmap.mli: Netlist
