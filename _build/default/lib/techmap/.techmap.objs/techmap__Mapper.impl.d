lib/techmap/mapper.ml: Blif Decompose Flowmap Logic Netlist Simcheck Synth
