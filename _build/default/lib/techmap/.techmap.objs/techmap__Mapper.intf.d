lib/techmap/mapper.mli: Netlist
