lib/techmap/simcheck.ml: Hashtbl List Logic Netlist Util
