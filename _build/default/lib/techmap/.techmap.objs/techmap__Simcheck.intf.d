lib/techmap/simcheck.mli: Netlist
