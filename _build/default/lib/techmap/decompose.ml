(* Decomposition into two-bounded networks (every gate has at most two
   fanins) — the canonical starting point for FlowMap, standing in for
   SIS's technology decomposition. *)

open Netlist

(* Shannon expansion of a gate node into 2-input gates:
   f = (x AND f1) OR (NOT x AND f0). *)
let decompose2 (net : Logic.t) =
  let and2 = Tt.and_n 2 in
  let or2 = Tt.or_n 2 in
  (* x AND NOT y as a 2-input table: depends on var order (x = input 0) *)
  let and_not = Tt.land_ (Tt.var 2 0) (Tt.lnot (Tt.var 2 1)) in
  let memo = Hashtbl.create 64 in
  let rec build tt fanins =
    let key = (Tt.bits tt, Tt.arity tt, Array.to_list fanins) in
    match Hashtbl.find_opt memo key with
    | Some id -> id
    | None ->
        let id =
          if Tt.arity tt <= 2 then
            if Tt.is_const0 tt then
              Logic.add_const net (Logic.fresh_name net "c0") false
            else if Tt.is_const1 tt then
              Logic.add_const net (Logic.fresh_name net "c1") true
            else Logic.add_gate net (Logic.fresh_name net "d") tt fanins
          else begin
            let i = Tt.arity tt - 1 in
            let sub value =
              let cof = Tt.cofactor tt i value in
              let cof, sup = Tt.compact cof in
              build cof (Array.of_list (List.map (fun j -> fanins.(j)) sup))
            in
            let f1 = sub true and f0 = sub false in
            let a = Logic.add_gate net (Logic.fresh_name net "d") and2
                [| fanins.(i); f1 |] in
            let b = Logic.add_gate net (Logic.fresh_name net "d") and_not
                [| f0; fanins.(i) |] in
            Logic.add_gate net (Logic.fresh_name net "d") or2 [| a; b |]
          end
        in
        Hashtbl.replace memo key id;
        id
  in
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Gate { tt; fanins } when Tt.arity tt > 2 ->
        let i = Tt.arity tt - 1 in
        let sub value =
          let cof = Tt.cofactor tt i value in
          let cof, sup = Tt.compact cof in
          build cof (Array.of_list (List.map (fun j -> fanins.(j)) sup))
        in
        let f1 = sub true and f0 = sub false in
        let a =
          Logic.add_gate net (Logic.fresh_name net "d") and2 [| fanins.(i); f1 |]
        in
        let b =
          Logic.add_gate net (Logic.fresh_name net "d") and_not
            [| f0; fanins.(i) |]
        in
        Logic.set_driver net id (Logic.Gate { tt = or2; fanins = [| a; b |] })
    | _ -> ()
  done;
  Synth.Opt.garbage_collect net

(* Verify the two-bounded invariant (used by tests and as a FlowMap
   precondition). *)
let is_two_bounded (net : Logic.t) =
  List.for_all
    (fun id ->
      match Logic.driver net id with
      | Logic.Gate { fanins; _ } -> Array.length fanins <= 2
      | _ -> true)
    (List.init (Logic.signal_count net) (fun i -> i))
