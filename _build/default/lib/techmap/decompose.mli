(** Decomposition into two-bounded networks (every gate has at most two
    fanins) — the canonical starting point for FlowMap, standing in for
    SIS's technology decomposition. *)

val decompose2 : Netlist.Logic.t -> Netlist.Logic.t
(** Shannon-expand wide gates into 2-input gates.  The input network is
    mutated; the returned network is fresh and function-equivalent. *)

val is_two_bounded : Netlist.Logic.t -> bool
