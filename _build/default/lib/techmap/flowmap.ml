(* FlowMap: depth-optimal K-LUT technology mapping (Cong & Ding, 1994) —
   the role SIS plays in the paper's flow.

   Phase 1 computes, for every gate of a two-bounded network, its label
   (optimal mapped depth) and a K-feasible cut realising it, using the
   classic collapse-and-max-flow argument.  Phase 2 walks from the outputs
   generating one LUT per needed cut, composing the covered cone into a
   truth table over the cut signals. *)

open Netlist

exception Not_two_bounded of string

type cut_info = {
  label : int;
  cut : int list; (* signal ids forming the LUT inputs *)
}

(* ---------- small max-flow on node-split graphs ---------- *)

(* The flow network per FlowMap query is tiny; adjacency lists with
   Edmonds-Karp and early exit once flow exceeds k is plenty. *)
module Flow = struct
  type edge = { dst : int; mutable cap : int; mutable flow : int; inv : int }

  type t = { mutable adj : edge array array; n : int; store : edge list array }

  let create n = { adj = [||]; n; store = Array.make n [] }

  (* add edge u->v with capacity c (and residual v->u with 0) *)
  let add_edge g u v c =
    let e1 = { dst = v; cap = c; flow = 0; inv = List.length g.store.(v) } in
    let e2 = { dst = u; cap = 0; flow = 0; inv = List.length g.store.(u) } in
    g.store.(u) <- g.store.(u) @ [ e1 ];
    g.store.(v) <- g.store.(v) @ [ e2 ]

  let freeze g = g.adj <- Array.map Array.of_list g.store

  (* BFS one augmenting path of capacity >= 1 from s to t; returns true if
     found (and applies it). *)
  let augment g s t =
    let prev = Array.make g.n (-1, -1) in
    let visited = Array.make g.n false in
    visited.(s) <- true;
    let q = Queue.create () in
    Queue.push s q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iteri
        (fun ei e ->
          if (not visited.(e.dst)) && e.cap - e.flow > 0 then begin
            visited.(e.dst) <- true;
            prev.(e.dst) <- (u, ei);
            if e.dst = t then found := true else Queue.push e.dst q
          end)
        g.adj.(u)
    done;
    if !found then begin
      (* unit capacities: push 1 *)
      let rec walk v =
        if v <> s then begin
          let u, ei = prev.(v) in
          let e = g.adj.(u).(ei) in
          e.flow <- e.flow + 1;
          let back = g.adj.(v).(e.inv) in
          back.flow <- back.flow - 1;
          walk u
        end
      in
      walk t;
      true
    end
    else false

  (* nodes reachable from s in the residual graph *)
  let residual_reachable g s =
    let visited = Array.make g.n false in
    visited.(s) <- true;
    let q = Queue.create () in
    Queue.push s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun e ->
          if (not visited.(e.dst)) && e.cap - e.flow > 0 then begin
            visited.(e.dst) <- true;
            Queue.push e.dst q
          end)
        g.adj.(u)
    done;
    visited
end

(* ---------- cone extraction ---------- *)

(* Transitive fanin cone of [v]: gate ids in the cone (including v) and the
   source signals (inputs/latches/consts) feeding it. *)
let cone (net : Logic.t) v =
  let seen = Hashtbl.create 16 in
  let gates = ref [] and sources = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Logic.driver net id with
      | Logic.Gate { fanins; _ } ->
          gates := id :: !gates;
          Array.iter visit fanins
      | Logic.Input | Logic.Const _ | Logic.Latch _ -> sources := id :: !sources
    end
  in
  visit v;
  (!gates, !sources)

(* ---------- labelling ---------- *)

let compute_labels (net : Logic.t) ~k =
  let n = Logic.signal_count net in
  let info = Array.make n { label = 0; cut = [] } in
  let order = Logic.topo_order net in
  List.iter
    (fun v ->
      match Logic.driver net v with
      | Logic.Input | Logic.Const _ | Logic.Latch _ ->
          info.(v) <- { label = 0; cut = [] }
      | Logic.Gate { fanins; _ } ->
          if Array.length fanins > 2 then
            raise (Not_two_bounded (Logic.name net v));
          let gates, sources = cone net v in
          let p =
            Array.fold_left (fun m f -> max m info.(f).label) 0 fanins
          in
          (* Collapse v and every cone gate with label = p into the sink.
             Source signals and remaining gates are split with capacity 1. *)
          let collapsed id =
            id = v
            || (match Logic.driver net id with
               | Logic.Gate _ -> info.(id).label = p
               | _ -> false)
          in
          let cone_gates = gates in
          let members = cone_gates @ sources in
          (* node numbering: S = 0, T = 1; each non-collapsed member m gets
             in = 2 + 2*idx, out = 3 + 2*idx *)
          let index = Hashtbl.create 16 in
          let next = ref 0 in
          List.iter
            (fun id ->
              if not (collapsed id) then begin
                Hashtbl.replace index id !next;
                incr next
              end)
            members;
          let size = 2 + (2 * !next) in
          let g = Flow.create size in
          let node_in id = 2 + (2 * Hashtbl.find index id) in
          let node_out id = node_in id + 1 in
          let big = 1000000 in
          (* split edges *)
          Hashtbl.iter (fun id _ -> Flow.add_edge g (node_in id) (node_out id) 1)
            index;
          (* source feeds all source-signals *)
          List.iter
            (fun id ->
              if collapsed id then Flow.add_edge g 0 1 big
              else Flow.add_edge g 0 (node_in id) big)
            sources;
          (* internal edges: for each cone gate, edges from its fanins *)
          List.iter
            (fun gid ->
              match Logic.driver net gid with
              | Logic.Gate { fanins; _ } ->
                  let dst = if collapsed gid then 1 else node_in gid in
                  Array.iter
                    (fun f ->
                      (* fanin must be in the cone (gate or source) *)
                      let src = if collapsed f then 1 else node_out f in
                      if src = 1 && dst = 1 then ()
                      else if src = 1 then
                        (* edge out of the sink is irrelevant for s-t flow *)
                        ()
                      else Flow.add_edge g src dst big)
                    fanins
              | _ -> ())
            cone_gates;
          Flow.freeze g;
          (* max-flow with early exit at k+1 *)
          let flow = ref 0 in
          while !flow <= k && Flow.augment g 0 1 do
            incr flow
          done;
          if !flow <= k then begin
            (* min cut: members whose in-side is residual-reachable but
               out-side is not *)
            let reach = Flow.residual_reachable g 0 in
            let cut =
              Hashtbl.fold
                (fun id _ acc ->
                  if reach.(node_in id) && not (reach.(node_out id)) then
                    id :: acc
                  else acc)
                index []
            in
            (* a source directly collapsed never appears; the standard
               theory guarantees |cut| = flow <= k *)
            info.(v) <- { label = max p 1; cut = List.sort compare cut }
          end
          else
            (* no K-feasible cut at height p: the node starts a new LUT *)
            info.(v) <-
              { label = p + 1; cut = List.sort compare (Array.to_list fanins) }
    )
    order;
  info

(* ---------- covering phase ---------- *)

(* Truth table of the cone rooted at [v] over the ordered cut signals. *)
let cone_function (net : Logic.t) v cut =
  let cut_index = List.mapi (fun i id -> (id, i)) cut in
  let nvars = List.length cut in
  let memo = Hashtbl.create 16 in
  let rec tt_of id =
    match List.assoc_opt id cut_index with
    | Some i -> Tt.var nvars i
    | None -> (
        match Hashtbl.find_opt memo id with
        | Some t -> t
        | None ->
            let t =
              match Logic.driver net id with
              | Logic.Const b -> if b then Tt.const1 nvars else Tt.const0 nvars
              | Logic.Gate { tt; fanins } ->
                  (* compose: substitute each fanin's table into tt *)
                  let sub = Array.map tt_of fanins in
                  let bits = ref 0 in
                  for row = 0 to (1 lsl nvars) - 1 do
                    let assignment = ref 0 in
                    Array.iteri
                      (fun i s -> if Tt.eval s row then
                          assignment := !assignment lor (1 lsl i))
                      sub;
                    if Tt.eval tt !assignment then bits := !bits lor (1 lsl row)
                  done;
                  Tt.create nvars !bits
              | Logic.Input | Logic.Latch _ ->
                  invalid_arg
                    ("Flowmap: source " ^ Logic.name net id ^ " inside cone")
            in
            Hashtbl.replace memo id t;
            t)
  in
  tt_of v

(* Map the network into K-LUTs.  Latches, inputs, constants and output
   names are preserved. *)
let map ?(k = 4) (net : Logic.t) =
  let info = compute_labels net ~k in
  let mapped = Logic.create ~model:net.Logic.model () in
  mapped.Logic.clock <- net.Logic.clock;
  let translated = Array.make (Logic.signal_count net) (-1) in
  (* every source signal exists in the mapped network up front *)
  for id = 0 to Logic.signal_count net - 1 do
    match Logic.driver net id with
    | Logic.Input -> translated.(id) <- Logic.add_input mapped (Logic.name net id)
    | Logic.Const b -> translated.(id) <- Logic.add_const mapped (Logic.name net id) b
    | Logic.Latch _ ->
        translated.(id) <- Logic.add_input mapped (Logic.name net id)
        (* placeholder; becomes a latch after its data cone is mapped *)
    | Logic.Gate _ -> ()
  done;
  (* generate a LUT for gate [v]; returns the mapped signal id *)
  let rec realize v =
    if translated.(v) >= 0 then translated.(v)
    else
      match Logic.driver net v with
      | Logic.Gate _ ->
          let cut = info.(v).cut in
          let lut_inputs = List.map realize cut in
          let tt = cone_function net v cut in
          (* drop non-support inputs to keep LUTs tight *)
          let tt, sup = Tt.compact tt in
          let lut_inputs =
            List.map (fun i -> List.nth lut_inputs i) sup
          in
          let id =
            if Tt.arity tt = 0 then
              Logic.add_const mapped (Logic.name net v) (Tt.is_const1 tt)
            else
              Logic.add_gate mapped (Logic.name net v) tt
                (Array.of_list lut_inputs)
          in
          translated.(v) <- id;
          id
      | Logic.Input | Logic.Const _ | Logic.Latch _ -> translated.(v)
  in
  (* map cones of all outputs and all latch data inputs *)
  List.iter (fun o -> ignore (realize o)) (Logic.outputs net);
  List.iter
    (fun l ->
      match Logic.driver net l with
      | Logic.Latch { data; _ } -> ignore (realize data)
      | _ -> ())
    (Logic.latches net);
  (* resolve latch placeholders *)
  List.iter
    (fun l ->
      match Logic.driver net l with
      | Logic.Latch { data; init } ->
          Logic.set_driver mapped translated.(l)
            (Logic.Latch { data = translated.(data); init })
      | _ -> ())
    (Logic.latches net);
  List.iter (fun o -> Logic.set_output mapped translated.(o)) (Logic.outputs net);
  Synth.Opt.garbage_collect mapped

(* Depth of the mapped solution predicted by the labels: the worst label
   over every combinational endpoint (primary outputs and latch data). *)
let predicted_depth (net : Logic.t) ~k =
  let info = compute_labels net ~k in
  let label_of id =
    match Logic.driver net id with
    | Logic.Gate _ -> info.(id).label
    | Logic.Latch _ | Logic.Input | Logic.Const _ -> 0
  in
  let endpoints =
    Logic.outputs net
    @ List.filter_map
        (fun l ->
          match Logic.driver net l with
          | Logic.Latch { data; _ } -> Some data
          | _ -> None)
        (Logic.latches net)
  in
  List.fold_left (fun m e -> max m (label_of e)) 0 endpoints
