(** FlowMap: depth-optimal K-LUT technology mapping (Cong & Ding, 1994) —
    the role SIS plays in the paper's flow.

    Phase 1 computes, per gate of a two-bounded network, its label
    (optimal mapped depth) and a K-feasible cut realising it via the
    classic collapse-and-max-flow argument; phase 2 covers the network
    from the outputs, one LUT per needed cut. *)

exception Not_two_bounded of string
(** Raised (with a signal name) when a gate has more than two fanins. *)

type cut_info = {
  label : int;
  cut : int list; (** signal ids forming the LUT inputs *)
}

val compute_labels : Netlist.Logic.t -> k:int -> cut_info array
(** Labels and cuts for every signal (sources get label 0). *)

val cone_function : Netlist.Logic.t -> int -> int list -> Netlist.Tt.t
(** Truth table of the cone rooted at a signal over the ordered cut. *)

val map : ?k:int -> Netlist.Logic.t -> Netlist.Logic.t
(** Map into K-LUTs (default K = 4).  Latches, inputs, constants and
    output names are preserved; function is preserved (property-tested). *)

val predicted_depth : Netlist.Logic.t -> k:int -> int
(** The label bound: worst label over outputs and latch-data endpoints. *)
