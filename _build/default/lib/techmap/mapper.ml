(* The SIS stage of the flow: BLIF in, K-LUT BLIF out.

   optimise -> decompose to two-bounded -> FlowMap -> verify by random
   simulation against the input network. *)

open Netlist

exception Mapping_changed_function

type report = {
  before : Logic.stats;
  after : Logic.stats;
  k : int;
  predicted_depth : int;
}

let map_network ?(k = 4) ?(verify = true) (net : Logic.t) =
  let before = Logic.stats net in
  (* the optimisation passes mutate in place: keep a pristine reference
     network for the equivalence check *)
  let reference = Logic.copy net in
  let opt = Synth.Opt.optimize (Logic.copy net) in
  let two = Decompose.decompose2 opt in
  let depth = Flowmap.predicted_depth two ~k in
  let mapped = Flowmap.map ~k two in
  if verify && not (Simcheck.is_equivalent reference mapped) then
    raise Mapping_changed_function;
  let after = Logic.stats mapped in
  (mapped, { before; after; k; predicted_depth = depth })

let map_blif ?k ?verify text =
  let net = Blif.of_string text in
  let mapped, report = map_network ?k ?verify net in
  (Blif.to_string mapped, report)
