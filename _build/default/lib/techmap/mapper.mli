(** The SIS stage of the flow: BLIF in, K-LUT BLIF out.

    optimise -> decompose to two-bounded -> FlowMap -> verify by random
    simulation against the input network. *)

exception Mapping_changed_function
(** Raised when verification detects a functional difference (a mapper
    bug guard; never expected on healthy inputs). *)

type report = {
  before : Netlist.Logic.stats;
  after : Netlist.Logic.stats;
  k : int;
  predicted_depth : int;
}

val map_network :
  ?k:int -> ?verify:bool -> Netlist.Logic.t -> Netlist.Logic.t * report
(** The input network is left intact (verification uses a pristine copy). *)

val map_blif : ?k:int -> ?verify:bool -> string -> string * report
