(* Functional equivalence checking by random simulation.

   Transform passes (optimisation, decomposition, mapping, packing) must
   preserve circuit function.  Networks are compared by input/output NAME:
   both are driven with the same random input sequences over several clock
   cycles and all primary outputs must agree cycle by cycle.  Latches start
   from their declared initial values, so state trajectories match too. *)

open Netlist

type verdict = Equivalent | Mismatch of { cycle : int; output : string }

let random_inputs rng names =
  let tbl = Hashtbl.create 16 in
  List.iter (fun nm -> Hashtbl.replace tbl nm (Util.Prng.bool rng)) names;
  tbl

let check ?(vectors = 64) ?(cycles = 8) ?(seed = 1) a b =
  let a_inputs = List.map (Logic.name a) (Logic.inputs a) in
  let b_inputs = List.map (Logic.name b) (Logic.inputs b) in
  let input_names = List.sort_uniq compare (a_inputs @ b_inputs) in
  let a_outputs = List.map (Logic.name a) (Logic.outputs a) in
  let b_outputs = List.map (Logic.name b) (Logic.outputs b) in
  if List.sort compare a_outputs <> List.sort compare b_outputs then
    invalid_arg "Simcheck.check: output interfaces differ";
  let rng = Util.Prng.create seed in
  let result = ref Equivalent in
  (try
     for _ = 1 to vectors do
       let sa = Logic.sim_init a and sb = Logic.sim_init b in
       for cycle = 1 to cycles do
         let tbl = random_inputs rng input_names in
         let input_of nm =
           match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
         in
         Logic.sim_eval a sa input_of;
         Logic.sim_eval b sb input_of;
         List.iter
           (fun (oa : int) ->
             let nm = Logic.name a oa in
             let ob = Logic.find_exn b nm in
             if Logic.sim_value sa oa <> Logic.sim_value sb ob then begin
               result := Mismatch { cycle; output = nm };
               raise Exit
             end)
           (Logic.outputs a);
         Logic.sim_step a sa;
         Logic.sim_step b sb
       done
     done
   with Exit -> ());
  !result

let is_equivalent ?vectors ?cycles ?seed a b =
  check ?vectors ?cycles ?seed a b = Equivalent
