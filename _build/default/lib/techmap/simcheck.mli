(** Functional equivalence checking by random simulation.

    Networks are compared by input/output name: both are driven with the
    same random input sequences over several clock cycles and all primary
    outputs must agree cycle by cycle.  Latches start from their declared
    initial values, so state trajectories are compared too. *)

type verdict = Equivalent | Mismatch of { cycle : int; output : string }

val check :
  ?vectors:int -> ?cycles:int -> ?seed:int ->
  Netlist.Logic.t -> Netlist.Logic.t -> verdict
(** @raise Invalid_argument if the output interfaces differ. *)

val is_equivalent :
  ?vectors:int -> ?cycles:int -> ?seed:int ->
  Netlist.Logic.t -> Netlist.Logic.t -> bool
