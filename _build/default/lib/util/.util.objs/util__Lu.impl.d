lib/util/lu.ml: Array Float
