lib/util/lu.mli:
