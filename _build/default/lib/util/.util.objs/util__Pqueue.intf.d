lib/util/pqueue.mli:
