lib/util/prng.mli:
