lib/util/stats.mli:
