lib/util/tablefmt.mli:
