(* Dense LU factorisation with partial pivoting.

   Circuit matrices in this project are small (tens to a few hundred
   unknowns), so a dense O(n^3) solver is simpler and fast enough; sparsity
   is not worth the bookkeeping at this scale. *)

exception Singular of int
(** Raised with the pivot column when a pivot is (numerically) zero. *)

type t = {
  n : int;
  lu : float array array; (* combined L (unit diagonal) and U factors *)
  perm : int array;       (* row permutation applied to right-hand sides *)
}

let eps = 1e-16

(* Factor [a] in place (a copy is taken; the caller's matrix is preserved). *)
let factor a =
  let n = Array.length a in
  let lu = Array.map Array.copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* partial pivoting: pick the largest magnitude in column k *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!piv).(k) then piv := i
    done;
    if !piv <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!piv);
      lu.(!piv) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tp
    end;
    let pivot = lu.(k).(k) in
    if Float.abs pivot < eps then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = lu.(i).(k) /. pivot in
      lu.(i).(k) <- f;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (f *. lu.(k).(j))
        done
    done
  done;
  { n; lu; perm }

(* Solve [t x = b] for one right-hand side. *)
let solve t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let x = Array.make n 0.0 in
  (* forward substitution on the permuted RHS *)
  for i = 0 to n - 1 do
    let s = ref b.(t.perm.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (t.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (t.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. t.lu.(i).(i)
  done;
  x

(* One-shot convenience: factor then solve. *)
let solve_system a b = solve (factor a) b
