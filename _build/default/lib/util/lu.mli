(** Dense LU factorisation with partial pivoting.

    Circuit matrices in this project are small (tens to a few hundred
    unknowns), so a dense O(n^3) solver is simpler and fast enough. *)

exception Singular of int
(** Raised with the pivot column index when a pivot is numerically zero. *)

type t
(** A factorisation, reusable across right-hand sides. *)

val factor : float array array -> t
(** Factor a square matrix (copied; the argument is preserved).
    @raise Singular on a (numerically) singular matrix. *)

val solve : t -> float array -> float array
(** [solve lu b] returns [x] with [A x = b].
    @raise Invalid_argument on dimension mismatch. *)

val solve_system : float array array -> float array -> float array
(** One-shot [factor] + [solve]. *)
