(* Deterministic splitmix64 PRNG.

   Every stochastic algorithm in the framework (simulated annealing, random
   test vectors, workload generation) takes an explicit [t] so that runs are
   reproducible and parallel instances never share state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)

(* Bernoulli trial with success probability [p]. *)
let bernoulli t p = float t < p

(* Fisher-Yates shuffle in place. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
