(** Deterministic splitmix64 pseudo-random number generator.

    Every stochastic algorithm in the framework (simulated annealing,
    random test vectors, workload generation) takes an explicit generator
    so runs are reproducible and parallel instances never share state. *)

type t
(** Generator state (mutable). *)

val create : int -> t
(** [create seed] makes a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform draw from [0, 1). *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] draws uniformly from [lo, hi). *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
