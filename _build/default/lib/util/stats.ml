(* Small descriptive-statistics helpers used by reports and benches. *)

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    s /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min_max a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.min_max: empty";
  let lo = ref a.(0) and hi = ref a.(0) in
  for i = 1 to n - 1 do
    if a.(i) < !lo then lo := a.(i);
    if a.(i) > !hi then hi := a.(i)
  done;
  (!lo, !hi)

(* Geometric mean; all entries must be positive. *)
let geomean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.geomean: empty";
  let s =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry";
        acc +. log x)
      0.0 a
  in
  exp (s /. float_of_int n)

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.median: empty";
  let b = Array.copy a in
  Array.sort compare b;
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
