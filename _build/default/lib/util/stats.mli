(** Descriptive statistics for reports and benches.

    All functions raise [Invalid_argument] on an empty array. *)

val mean : float array -> float

val variance : float array -> float
(** Sample (n-1) variance; 0 for fewer than two points. *)

val stddev : float array -> float

val min_max : float array -> float * float

val geomean : float array -> float
(** Geometric mean; entries must be positive. *)

val median : float array -> float
