(* ASCII table rendering for experiment reports.

   All benches print their rows through this module so paper-table
   reproductions share one look. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

(* Render [header] and [rows] as an aligned table.  Numeric-looking cells are
   right-aligned, everything else left-aligned. *)
let render ?(indent = "") header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let cell r i = try List.nth r i with Failure _ -> "" in
  let widths =
    Array.init cols (fun i ->
        List.fold_left (fun m r -> max m (String.length (cell r i))) 0 all)
  in
  let numeric s =
    s <> ""
    && String.for_all
         (fun c ->
           (c >= '0' && c <= '9')
           || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' || c = 'x'
           || c = '%')
         s
  in
  let line r =
    let cells =
      List.init cols (fun i ->
          let s = cell r i in
          let align = if numeric s then Right else Left in
          pad align widths.(i) s)
    in
    indent ^ String.concat "  " cells
  in
  let sep =
    indent
    ^ String.concat "  "
        (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?indent header rows =
  print_endline (render ?indent header rows)

(* Format helpers shared by the reports. *)
let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f3 x = Printf.sprintf "%.3f" x
let g3 x = Printf.sprintf "%.3g" x
let pct x = Printf.sprintf "%+.1f%%" (100.0 *. x)
