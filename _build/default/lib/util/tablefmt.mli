(** ASCII table rendering for experiment reports.

    All benches print their rows through this module so paper-table
    reproductions share one look: columns aligned, numeric-looking cells
    right-aligned, a dash rule under the header. *)

type align = Left | Right

val pad : align -> int -> string -> string

val render : ?indent:string -> string list -> string list list -> string
(** [render header rows] lays out the table as a string. *)

val print : ?indent:string -> string list -> string list list -> unit

(** Formatting helpers shared by the reports: fixed-point with 1/2/3
    decimals, 3 significant digits, and signed percentage. *)

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string
val g3 : float -> string
val pct : float -> string
