(** Union-find with path compression and union by rank.

    Used for connectivity: routing verification and the bitstream fabric
    model's electrical-net extraction. *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes [0 .. n-1]. *)

val find : t -> int -> int
(** Representative of the class containing the element. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val components : t -> int
(** Number of distinct classes. *)
