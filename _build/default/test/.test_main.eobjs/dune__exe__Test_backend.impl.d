test/test_backend.ml: Alcotest Array Bitstream Bytes Char Core Float Fpga_arch Lazy List Logic Netlist Pack Place Power Printf Route Spice Synth Techmap Tt
