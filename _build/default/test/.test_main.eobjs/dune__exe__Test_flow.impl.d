test/test_flow.ml: Alcotest Array Bitstream Core Fpga_arch List Netlist Pack Place Power Printexc Synth Techmap
