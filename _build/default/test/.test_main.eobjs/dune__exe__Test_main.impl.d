test/test_main.ml: Alcotest Test_backend Test_flow Test_netlist Test_properties Test_spice Test_synth Test_techmap Test_tools Test_util
