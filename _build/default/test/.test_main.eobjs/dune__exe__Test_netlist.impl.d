test/test_netlist.ml: Alcotest Blif Core Edif List Logic Netlist Printf QCheck QCheck_alcotest Qm Sexp Synth Techmap Tt Util Vhdl_ast Vhdl_parser
