test/test_properties.ml: Array Bitstream Blif Edif Float Fpga_arch List Logic Netlist Pack Place Printf QCheck QCheck_alcotest Qm Route String Techmap Tt Util
