test/test_spice.ml: Alcotest Array Circuit Clocking Detff Device Ff_bench Float Hashtbl List Measure Printf QCheck QCheck_alcotest Routing_exp Setff Spice Stdcell Tech Transient Waveform
