test/test_synth.ml: Alcotest Core Edif Gatelib Hashtbl List Logic Netlist Printf String Synth Techmap Tt Vhdl_parser
