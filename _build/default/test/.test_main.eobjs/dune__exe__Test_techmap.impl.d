test/test_techmap.ml: Alcotest Array Core List Logic Netlist Printf QCheck QCheck_alcotest Qm Synth Techmap Tt Util
