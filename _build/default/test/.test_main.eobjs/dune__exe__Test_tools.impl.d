test/test_tools.ml: Alcotest Core Hashtbl Lazy List Logic Netlist Printf Route Spice Str_helpers String Synth Vcd
