(* Tiny string helpers for the test suite (no Str library dependency). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* Split at the first occurrence of [sep]. *)
let split_once haystack sep =
  let nh = String.length haystack and ns = String.length sep in
  let rec go i =
    if i + ns > nh then None
    else if String.sub haystack i ns = sep then
      Some (String.sub haystack 0 i, String.sub haystack (i + ns) (nh - i - ns))
    else go (i + 1)
  in
  go 0
