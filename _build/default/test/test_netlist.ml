(* Tests for truth tables, the logic IR, BLIF, EDIF and the VHDL parser. *)

open Netlist

(* ---------- Tt ---------- *)

let tt_arb =
  QCheck.make
    ~print:(fun (n, bits) -> Printf.sprintf "Tt(%d, %x)" n bits)
    QCheck.Gen.(
      int_range 1 4 >>= fun n ->
      int_bound ((1 lsl (1 lsl n)) - 1) >>= fun bits -> return (n, bits))

let test_tt_consts () =
  Alcotest.(check bool) "const0" true (Tt.is_const0 (Tt.const0 3));
  Alcotest.(check bool) "const1" true (Tt.is_const1 (Tt.const1 3));
  Alcotest.(check bool) "not const" false (Tt.is_const0 (Tt.var 3 1))

let test_tt_var_eval () =
  let v1 = Tt.var 3 1 in
  Alcotest.(check bool) "var set" true (Tt.eval v1 0b010);
  Alcotest.(check bool) "var clear" false (Tt.eval v1 0b101)

let test_tt_gates () =
  let a = Tt.and_n 2 in
  Alcotest.(check bool) "11" true (Tt.eval a 3);
  Alcotest.(check bool) "01" false (Tt.eval a 1);
  let x = Tt.xor_n 2 in
  Alcotest.(check bool) "xor 01" true (Tt.eval x 1);
  Alcotest.(check bool) "xor 11" false (Tt.eval x 3);
  let m = Tt.mux2 in
  (* inputs (sel, a, b): sel ? a : b *)
  Alcotest.(check bool) "mux sel=1 a=1" true (Tt.eval m 0b011);
  Alcotest.(check bool) "mux sel=0 b=1" true (Tt.eval m 0b100);
  Alcotest.(check bool) "mux sel=0 b=0" false (Tt.eval m 0b010)

let prop_tt_demorgan =
  QCheck.Test.make ~count:200 ~name:"Tt: De Morgan" (QCheck.pair tt_arb tt_arb)
    (fun ((n1, b1), (n2, b2)) ->
      let n = max n1 n2 in
      let a = Tt.create n b1 and b = Tt.create n b2 in
      Tt.equal (Tt.lnot (Tt.land_ a b)) (Tt.lor_ (Tt.lnot a) (Tt.lnot b)))

let prop_tt_double_negation =
  QCheck.Test.make ~count:200 ~name:"Tt: double negation" tt_arb
    (fun (n, bits) ->
      let t = Tt.create n bits in
      Tt.equal t (Tt.lnot (Tt.lnot t)))

let prop_tt_shannon =
  QCheck.Test.make ~count:200 ~name:"Tt: Shannon expansion" tt_arb
    (fun (n, bits) ->
      let t = Tt.create n bits in
      let i = 0 in
      let f1 = Tt.cofactor t i true and f0 = Tt.cofactor t i false in
      let x = Tt.var n i in
      Tt.equal t (Tt.lor_ (Tt.land_ x f1) (Tt.land_ (Tt.lnot x) f0)))

let prop_tt_cubes_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Tt: to_cubes/of_cubes round trip" tt_arb
    (fun (n, bits) ->
      let t = Tt.create n bits in
      Tt.equal t (Tt.of_cubes n (Tt.to_cubes t)))

let prop_tt_compact_preserves =
  QCheck.Test.make ~count:200 ~name:"Tt: compact preserves function" tt_arb
    (fun (n, bits) ->
      let t = Tt.create n bits in
      let small, sup = Tt.compact t in
      (* evaluate both on all assignments *)
      List.for_all
        (fun row ->
          let small_row =
            List.fold_left
              (fun acc (j, i) ->
                if (row lsr i) land 1 = 1 then acc lor (1 lsl j) else acc)
              0
              (List.mapi (fun j i -> (j, i)) sup)
          in
          Tt.eval t row = Tt.eval small small_row)
        (List.init (1 lsl n) (fun r -> r)))

let test_tt_support () =
  (* f = x0 AND x2 over three vars: support {0, 2} *)
  let f = Tt.land_ (Tt.var 3 0) (Tt.var 3 2) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Tt.support f)

(* ---------- Logic ---------- *)

let small_net () =
  let net = Logic.create ~model:"t" () in
  let a = Logic.add_input net "a" in
  let b = Logic.add_input net "b" in
  let g = Logic.add_gate net "g" (Tt.and_n 2) [| a; b |] in
  let q = Logic.add_latch net "q" ~data:g ~init:false in
  let o = Logic.add_gate net "o" Tt.inv [| q |] in
  Logic.set_output net o;
  net

let test_logic_stats () =
  let net = small_net () in
  let s = Logic.stats net in
  Alcotest.(check int) "inputs" 2 s.Logic.n_inputs;
  Alcotest.(check int) "gates" 2 s.Logic.n_gates;
  Alcotest.(check int) "latches" 1 s.Logic.n_latches;
  Alcotest.(check int) "outputs" 1 s.Logic.n_outputs

let test_logic_simulation () =
  let net = small_net () in
  let st = Logic.sim_init net in
  let input_of = function "a" -> true | "b" -> true | _ -> false in
  (* cycle 1: latch still 0, output = NOT 0 = 1 *)
  Logic.sim_eval net st input_of;
  let o = Logic.find_exn net "o" in
  Alcotest.(check bool) "before edge" true (Logic.sim_value st o);
  Logic.sim_step net st;
  Logic.sim_eval net st input_of;
  (* latch captured a AND b = 1; output = 0 *)
  Alcotest.(check bool) "after edge" false (Logic.sim_value st o)

let test_logic_cycle_detection () =
  let net = Logic.create () in
  let a = Logic.add_input net "a" in
  let g1 = Logic.add_gate net "g1" (Tt.and_n 2) [| a; a |] in
  let g2 = Logic.add_gate net "g2" (Tt.or_n 2) [| g1; g1 |] in
  (* close a combinational loop *)
  Logic.set_driver net g1 (Logic.Gate { tt = Tt.and_n 2; fanins = [| a; g2 |] });
  Alcotest.check_raises "cycle" (Logic.Combinational_cycle "g1") (fun () ->
      ignore (Logic.topo_order net))

let test_logic_duplicate_name () =
  let net = Logic.create () in
  ignore (Logic.add_input net "x");
  Alcotest.check_raises "duplicate" (Invalid_argument "Logic.add: duplicate x")
    (fun () -> ignore (Logic.add_input net "x"))

let test_vector_helpers () =
  let net = Logic.create () in
  let ids = List.init 4 (fun i -> Logic.add_input net (Printf.sprintf "v[%d]" i)) in
  ignore ids;
  let found = Logic.find_vector net "v" in
  Alcotest.(check int) "four bits" 4 (List.length found);
  Alcotest.(check (option int)) "sanitised form" (Some 2)
    (Logic.vector_bit ~base:"v" "v_2_");
  Alcotest.(check (option int)) "no match" None (Logic.vector_bit ~base:"v" "w[1]")

(* ---------- Blif ---------- *)

let counter_blif =
  {|# a 2-bit counter
.model c2
.inputs en
.outputs q0 q1
.latch d0 q0 0
.latch d1 q1 0
.names en q0 d0
10 1
01 1
.names en q0 q1 d1
110 1
011 1
-01 1
0-1 1
.end
|}

let test_blif_parse () =
  let net = Blif.of_string counter_blif in
  let s = Logic.stats net in
  Alcotest.(check int) "latches" 2 s.Logic.n_latches;
  Alcotest.(check int) "gates" 2 s.Logic.n_gates;
  Alcotest.(check int) "inputs" 1 s.Logic.n_inputs

let test_blif_semantics () =
  let net = Blif.of_string counter_blif in
  (* count 3 enabled cycles: q goes 0,1,2,3 *)
  let st = Logic.sim_init net in
  let input_of = function "en" -> true | _ -> false in
  for _ = 1 to 3 do
    Logic.sim_eval net st input_of;
    Logic.sim_step net st
  done;
  Logic.sim_eval net st input_of;
  let q0 = Logic.sim_value st (Logic.find_exn net "q0") in
  let q1 = Logic.sim_value st (Logic.find_exn net "q1") in
  Alcotest.(check bool) "q0 after 3" true q0;
  Alcotest.(check bool) "q1 after 3" true q1

let test_blif_roundtrip () =
  let net = Blif.of_string counter_blif in
  let net2 = Blif.of_string (Blif.to_string net) in
  Alcotest.(check bool) "equivalent" true
    (Techmap.Simcheck.is_equivalent net net2)

let test_blif_off_set () =
  (* cover given in the off-set: q = NOT a *)
  let net = Blif.of_string ".model m\n.inputs a\n.outputs q\n.names a q\n1 0\n.end\n" in
  let out = Logic.simulate_comb net (fun _ -> true) in
  Alcotest.(check (list (pair string bool))) "off-set" [ ("q", false) ] out

let test_blif_errors () =
  Alcotest.check_raises "bad directive" (Blif.Parse_error (2, "unsupported directive .bogus"))
    (fun () -> ignore (Blif.of_string ".model m\n.bogus x\n.end\n"));
  (match Blif.of_string ".model m\n.inputs a\n.outputs q\n.names a a q\n11 1\n.end\n" with
  | exception Blif.Parse_error _ -> ()
  | _net -> () (* duplicate fanins are legal *));
  Alcotest.check_raises "redefine input"
    (Blif.Parse_error (4, "a is a declared input")) (fun () ->
      ignore (Blif.of_string ".model m\n.inputs a\n.outputs q\n.names q a\n1 1\n.end\n"))

(* ---------- Sexp / Edif ---------- *)

let test_sexp_roundtrip () =
  let text = "(a (b c 12) (d (e \"f g\")) h)" in
  let s = Sexp.of_string text in
  let s2 = Sexp.of_string (Sexp.to_string s) in
  Alcotest.(check bool) "round trip" true (s = s2)

let test_sexp_errors () =
  Alcotest.check_raises "unterminated" (Sexp.Parse_error (1, "unterminated list"))
    (fun () -> ignore (Sexp.of_string "(a (b"));
  Alcotest.check_raises "trailing" (Sexp.Parse_error (1, "trailing characters"))
    (fun () -> ignore (Sexp.of_string "(a) b"))

let test_edif_roundtrip_equivalence () =
  let net = Blif.of_string counter_blif in
  (* express in library gates first *)
  let lib_net = Synth.Diviner.decompose_to_library (Synth.Opt.optimize net) in
  let edif = Edif.of_logic lib_net in
  let parsed = Edif.of_string (Edif.to_string edif) in
  let back = Edif.to_logic parsed in
  (* the reference must use the same (sanitised) interface names *)
  let reference = Edif.to_logic edif in
  Alcotest.(check bool) "function preserved" true
    (Techmap.Simcheck.is_equivalent reference back)

let test_edif_structure () =
  let net = Blif.of_string counter_blif in
  let lib_net = Synth.Diviner.decompose_to_library (Synth.Opt.optimize net) in
  let edif = Edif.of_logic lib_net in
  Alcotest.(check bool) "has instances" true (List.length edif.Edif.instances > 0);
  Alcotest.(check bool) "has nets" true (List.length edif.Edif.nets > 0);
  (* every net's portrefs reference declared instances or top ports *)
  let inst_names =
    List.map (fun (i : Edif.instance) -> i.Edif.inst_name) edif.Edif.instances
  in
  let port_names = List.map fst edif.Edif.ports in
  List.iter
    (fun (n : Edif.net) ->
      List.iter
        (fun (r : Edif.portref) ->
          match r.Edif.instance with
          | Some i ->
              Alcotest.(check bool) "instance exists" true (List.mem i inst_names)
          | None ->
              Alcotest.(check bool) "port exists" true (List.mem r.Edif.port port_names))
        n.Edif.joined)
    edif.Edif.nets

let test_druid_rejects_garbage () =
  Alcotest.check_raises "not edif" (Edif.Invalid_edif "not an EDIF file")
    (fun () -> ignore (Edif.of_string "(banana)"))

(* ---------- VHDL parser ---------- *)

let test_vhdl_ok () =
  match Vhdl_parser.check (Core.Bench_circuits.counter 4) with
  | Vhdl_parser.Ok d ->
      Alcotest.(check string) "entity" "counter4"
        d.Vhdl_ast.entity.Vhdl_ast.entity_name
  | Vhdl_parser.Error (l, m) ->
      Alcotest.failf "unexpected syntax error at %d: %s" l m

let test_vhdl_error_reported () =
  match Vhdl_parser.check "entity x is port ( a : in std_logic ; end x;" with
  | Vhdl_parser.Error (_, _) -> ()
  | Vhdl_parser.Ok _ -> Alcotest.fail "expected a syntax error"

let test_vhdl_case_insensitive () =
  let src =
    "ENTITY t IS PORT ( A : IN STD_LOGIC; Y : OUT STD_LOGIC ); END t;\n\
     ARCHITECTURE rtl OF t IS BEGIN Y <= NOT A; END rtl;"
  in
  match Vhdl_parser.check src with
  | Vhdl_parser.Ok _ -> ()
  | Vhdl_parser.Error (l, m) -> Alcotest.failf "line %d: %s" l m

let test_vhdl_comments_and_context () =
  let src =
    "-- top comment\nlibrary ieee;\nuse ieee.std_logic_1164.all;\n\
     entity t is port ( a : in std_logic; y : out std_logic ); end t;\n\
     architecture rtl of t is begin\n  y <= a; -- passthrough\nend rtl;"
  in
  match Vhdl_parser.check src with
  | Vhdl_parser.Ok _ -> ()
  | Vhdl_parser.Error (l, m) -> Alcotest.failf "line %d: %s" l m

let test_vhdl_all_suite_parses () =
  List.iter
    (fun (name, vhdl) ->
      match Vhdl_parser.check vhdl with
      | Vhdl_parser.Ok _ -> ()
      | Vhdl_parser.Error (l, m) ->
          Alcotest.failf "%s: line %d: %s" name l m)
    Core.Bench_circuits.suite

let test_qm_budget_fallback_correct () =
  (* even when the search budget forces the greedy fallback, the cover is
     correct; simulate by checking a batch of dense 5-var functions *)
  let rng = Util.Prng.create 77 in
  for _ = 1 to 50 do
    let bits = Util.Prng.int rng max_int in
    let tt = Tt.create 5 bits in
    Alcotest.(check bool) "cover correct" true
      (Tt.equal tt (Qm.cover_function 5 (Qm.min_cover tt)))
  done

let test_vhdl_relational_token_disambiguation () =
  (* "<=" is assignment at statement level and less-equal inside an
     expression; both in one line *)
  let src =
    "entity t is port ( a : in std_logic_vector(2 downto 0); y : out \
     std_logic ); end t;\n\
     architecture rtl of t is begin y <= '1' when a <= \"011\" else '0'; \
     end rtl;"
  in
  match Vhdl_parser.check src with
  | Vhdl_parser.Ok _ -> ()
  | Vhdl_parser.Error (l, m) -> Alcotest.failf "line %d: %s" l m

let suite =
  [
    ("tt consts", `Quick, test_tt_consts);
    ("tt var eval", `Quick, test_tt_var_eval);
    ("tt gates", `Quick, test_tt_gates);
    ("tt support", `Quick, test_tt_support);
    ("logic stats", `Quick, test_logic_stats);
    ("logic simulation", `Quick, test_logic_simulation);
    ("logic cycle detection", `Quick, test_logic_cycle_detection);
    ("logic duplicate name", `Quick, test_logic_duplicate_name);
    ("vector helpers", `Quick, test_vector_helpers);
    ("blif parse", `Quick, test_blif_parse);
    ("blif semantics", `Quick, test_blif_semantics);
    ("blif roundtrip", `Quick, test_blif_roundtrip);
    ("blif off-set", `Quick, test_blif_off_set);
    ("blif errors", `Quick, test_blif_errors);
    ("sexp roundtrip", `Quick, test_sexp_roundtrip);
    ("sexp errors", `Quick, test_sexp_errors);
    ("edif roundtrip equivalence", `Quick, test_edif_roundtrip_equivalence);
    ("edif structure", `Quick, test_edif_structure);
    ("edif rejects garbage", `Quick, test_druid_rejects_garbage);
    ("vhdl ok", `Quick, test_vhdl_ok);
    ("vhdl error reported", `Quick, test_vhdl_error_reported);
    ("vhdl case insensitive", `Quick, test_vhdl_case_insensitive);
    ("vhdl comments and context", `Quick, test_vhdl_comments_and_context);
    ("vhdl suite parses", `Quick, test_vhdl_all_suite_parses);
    ("qm budget fallback correct", `Quick, test_qm_budget_fallback_correct);
    ("vhdl <= disambiguation", `Quick, test_vhdl_relational_token_disambiguation);
    QCheck_alcotest.to_alcotest prop_tt_demorgan;
    QCheck_alcotest.to_alcotest prop_tt_double_negation;
    QCheck_alcotest.to_alcotest prop_tt_shannon;
    QCheck_alcotest.to_alcotest prop_tt_cubes_roundtrip;
    QCheck_alcotest.to_alcotest prop_tt_compact_preserves;
  ]
