(* Tests for the transistor-level circuit simulator.

   The analytic checks pin the MNA/transient engine against closed-form RC
   behaviour; the cell tests check logic levels and timing sanity of the
   transistor-level standard cells; the DETFF tests verify dual-edge capture
   functionally. *)

open Spice

let tech = Tech.stm018
let vdd_v = tech.Tech.vdd

(* ---------- analytic RC behaviour ---------- *)

let rc_trace () =
  let c = Circuit.create tech in
  let a = Circuit.node c "a" and b = Circuit.node c "b" in
  Circuit.vsource c "vs" ~pos:a ~neg:Circuit.gnd
    (Waveform.pulse ~v1:1.0 ~delay:0.0 ~rise:1e-15 ~fall:1e-15 ~width:99e-9
       ~period:200e-9 ());
  Circuit.resistor c a b 1000.0;
  Circuit.capacitor c b Circuit.gnd 1e-12;
  Transient.run ~h:5e-12 ~t_stop:5e-9 ~probes:[ "b" ] c

let test_rc_step_response () =
  let tr = rc_trace () in
  let w = Transient.probe tr "b" in
  (* v(t) = 1 - exp(-t / 1ns); compare at several multiples of tau *)
  List.iter
    (fun tau_mult ->
      let t = tau_mult *. 1e-9 in
      let i = int_of_float (t /. 5e-12) in
      let expected = 1.0 -. exp (-.tau_mult) in
      Alcotest.(check (float 0.02))
        (Printf.sprintf "v(%g tau)" tau_mult)
        expected w.(i))
    [ 0.5; 1.0; 2.0; 3.0 ]

let test_rc_energy_conservation () =
  (* the source must deliver ~C*V^2 for a full charge: half stored, half
     dissipated in the resistor *)
  let tr = rc_trace () in
  let e = Measure.source_energy ~t0:0.0 ~t1:5e-9 tr "vs" in
  Alcotest.(check (float 0.05)) "E = C*V^2" 1e-12 e

let test_capacitor_divider () =
  (* two capacitors in series from a step source: V_mid = C1/(C1+C2) * V *)
  let c = Circuit.create tech in
  let a = Circuit.node c "a" and m = Circuit.node c "m" in
  Circuit.vsource c "vs" ~pos:a ~neg:Circuit.gnd
    (Waveform.pulse ~v1:1.0 ~delay:0.1e-9 ~rise:10e-12 ~fall:10e-12
       ~width:50e-9 ~period:100e-9 ());
  Circuit.capacitor c a m 3e-12;
  Circuit.capacitor c m Circuit.gnd 1e-12;
  let tr = Transient.run ~h:5e-12 ~t_stop:2e-9 ~probes:[ "m" ] c in
  let w = Transient.probe tr "m" in
  Alcotest.(check (float 0.02)) "cap divider" 0.75 w.(Array.length w - 1)

let test_resistor_divider_dc () =
  let c = Circuit.create tech in
  let a = Circuit.node c "a" and m = Circuit.node c "m" in
  Circuit.vsource c "vs" ~pos:a ~neg:Circuit.gnd (Waveform.dc 2.0);
  Circuit.resistor c a m 1000.0;
  Circuit.resistor c m Circuit.gnd 3000.0;
  let tr = Transient.run ~h:10e-12 ~t_stop:0.5e-9 ~probes:[ "m" ] c in
  let w = Transient.probe tr "m" in
  Alcotest.(check (float 0.01)) "R divider" 1.5 w.(0)

let test_unknown_probe_rejected () =
  let c = Circuit.create tech in
  let a = Circuit.node c "a" in
  Circuit.vsource c "vs" ~pos:a ~neg:Circuit.gnd (Waveform.dc 1.0);
  Alcotest.check_raises "unknown probe"
    (Invalid_argument "Transient.run: unknown probe node nosuch") (fun () ->
      ignore (Transient.run ~h:1e-12 ~t_stop:1e-12 ~probes:[ "nosuch" ] c))

(* ---------- device model ---------- *)

let test_mosfet_cutoff () =
  let m =
    { Circuit.typ = Circuit.Nmos; d = 1; g = 2; s = 0;
      w = tech.Tech.w_min; l = tech.Tech.l_min }
  in
  let e = Device.eval tech m 1.8 0.0 0.0 in
  Alcotest.(check (float 1e-12)) "cutoff current" 0.0 e.Device.i

let test_mosfet_saturation_positive () =
  let m =
    { Circuit.typ = Circuit.Nmos; d = 1; g = 2; s = 0;
      w = tech.Tech.w_min; l = tech.Tech.l_min }
  in
  let e = Device.eval tech m 1.8 1.8 0.0 in
  Alcotest.(check bool) "conducts" true (e.Device.i > 1e-5);
  Alcotest.(check bool) "gm positive" true (e.Device.di_dvg > 0.0)

let test_mosfet_symmetry () =
  (* swapping drain and source must negate the current *)
  let m =
    { Circuit.typ = Circuit.Nmos; d = 1; g = 2; s = 3;
      w = tech.Tech.w_min; l = tech.Tech.l_min }
  in
  let fwd = Device.eval tech m 1.0 1.8 0.2 in
  let rev = Device.eval tech m 0.2 1.8 1.0 in
  Alcotest.(check (float 1e-9)) "antisymmetric" (-.fwd.Device.i) rev.Device.i

let test_pmos_mirrors_nmos () =
  let n =
    { Circuit.typ = Circuit.Nmos; d = 1; g = 2; s = 0;
      w = tech.Tech.w_min; l = tech.Tech.l_min }
  in
  let p = { n with Circuit.typ = Circuit.Pmos } in
  let t = { tech with kp_p = tech.kp_n; lambda_p = tech.lambda_n } in
  let en = Device.eval t n 1.0 1.5 0.0 in
  let ep = Device.eval t p (-1.0) (-1.5) 0.0 in
  Alcotest.(check (float 1e-9)) "mirror" (-.en.Device.i) ep.Device.i

let prop_mosfet_derivatives =
  QCheck.Test.make ~count:200 ~name:"Device: analytic derivatives match finite differences"
    QCheck.(triple (float_range 0.0 1.8) (float_range 0.0 1.8) (float_range 0.0 1.8))
    (fun (vd, vg, vs) ->
      let m =
        { Circuit.typ = Circuit.Nmos; d = 1; g = 2; s = 3;
          w = 3.0 *. tech.Tech.w_min; l = tech.Tech.l_min }
      in
      let dv = 1e-6 in
      let e = Device.eval tech m vd vg vs in
      let num_dd =
        (Device.eval tech m (vd +. dv) vg vs).Device.i -. e.Device.i in
      let num_dg =
        (Device.eval tech m vd (vg +. dv) vs).Device.i -. e.Device.i in
      let num_ds =
        (Device.eval tech m vd vg (vs +. dv)).Device.i -. e.Device.i in
      let close a b =
        Float.abs (a -. b) < 1e-7 +. (0.05 *. Float.max (Float.abs a) (Float.abs b))
      in
      close (num_dd /. dv) e.Device.di_dvd
      && close (num_dg /. dv) e.Device.di_dvg
      && close (num_ds /. dv) e.Device.di_dvs)

(* ---------- standard cells ---------- *)

(* Build a cell testbench: input pulse, run, return (trace, out wave). *)
let cell_bench build =
  let c = Circuit.create tech in
  let vdd = Circuit.vdd_rail c in
  let input = Circuit.node c "in" in
  Stdcell.driver c "vin" ~node:input
    (Waveform.pulse ~v1:vdd_v ~delay:0.3e-9 ~rise:50e-12 ~fall:50e-12
       ~width:0.95e-9 ~period:2e-9 ());
  let out = Circuit.node c "out" in
  build c ~vdd ~input ~out;
  Circuit.capacitor c out Circuit.gnd 5e-15;
  let tr = Transient.run ~h:1e-12 ~t_stop:2.5e-9 ~probes:[ "in"; "out" ] c in
  (tr, Transient.probe tr "out")

let sample w t = w.(int_of_float (t /. 1e-12))

let test_inverter_levels () =
  let _, out =
    cell_bench (fun c ~vdd ~input ~out ->
        Stdcell.inverter c ~vdd ~input ~output:out ())
  in
  Alcotest.(check (float 0.05)) "out high when in low" vdd_v (sample out 0.2e-9);
  Alcotest.(check (float 0.05)) "out low when in high" 0.0 (sample out 1.0e-9);
  Alcotest.(check (float 0.05)) "out recovers" vdd_v (sample out 2.2e-9)

let test_nand2_truth () =
  (* b tied high: nand acts as inverter; b tied low: output stuck high *)
  List.iter
    (fun (b_level, expect_mid) ->
      let _, out =
        cell_bench (fun c ~vdd ~input ~out ->
            let b = Circuit.node c "b" in
            Circuit.vsource c "vb" ~pos:b ~neg:Circuit.gnd (Waveform.dc b_level);
            Stdcell.nand2 c ~vdd ~a:input ~b ~output:out ())
      in
      Alcotest.(check (float 0.05)) "mid value" expect_mid (sample out 1.0e-9))
    [ (vdd_v, 0.0); (0.0, vdd_v) ]

let test_nor2_truth () =
  List.iter
    (fun (b_level, expect_mid, expect_low_in) ->
      let _, out =
        cell_bench (fun c ~vdd ~input ~out ->
            let b = Circuit.node c "b" in
            Circuit.vsource c "vb" ~pos:b ~neg:Circuit.gnd (Waveform.dc b_level);
            Stdcell.nor2 c ~vdd ~a:input ~b ~output:out ())
      in
      Alcotest.(check (float 0.05)) "in-high value" expect_mid (sample out 1.0e-9);
      Alcotest.(check (float 0.05)) "in-low value" expect_low_in (sample out 0.2e-9))
    [ (0.0, 0.0, vdd_v); (vdd_v, 0.0, 0.0) ]

let test_tgate_passes_and_blocks () =
  List.iter
    (fun (en_level, expect_follow) ->
      let _, out =
        cell_bench (fun c ~vdd:_ ~input ~out ->
            let en = Circuit.node c "en" and en_b = Circuit.node c "enb" in
            Circuit.vsource c "ven" ~pos:en ~neg:Circuit.gnd (Waveform.dc en_level);
            Circuit.vsource c "venb" ~pos:en_b ~neg:Circuit.gnd
              (Waveform.dc (vdd_v -. en_level));
            Stdcell.tgate c ~a:input ~b:out ~en ~en_b ())
      in
      if expect_follow then
        Alcotest.(check (float 0.05)) "follows input" vdd_v (sample out 1.0e-9)
      else
        Alcotest.(check (float 0.2)) "blocked stays low" 0.0 (sample out 1.0e-9))
    [ (vdd_v, true); (0.0, false) ]

let test_c2mos_tristate () =
  List.iter
    (fun (en_level, inverts) ->
      let _, out =
        cell_bench (fun c ~vdd ~input ~out ->
            let en = Circuit.node c "en" and en_b = Circuit.node c "enb" in
            Circuit.vsource c "ven" ~pos:en ~neg:Circuit.gnd (Waveform.dc en_level);
            Circuit.vsource c "venb" ~pos:en_b ~neg:Circuit.gnd
              (Waveform.dc (vdd_v -. en_level));
            Stdcell.c2mos_inverter c ~vdd ~input ~output:out ~en ~en_b ())
      in
      if inverts then begin
        Alcotest.(check (float 0.05)) "inverts high" 0.0 (sample out 1.0e-9);
        Alcotest.(check (float 0.05)) "inverts low" vdd_v (sample out 0.25e-9)
      end
      else
        (* high-Z: output keeps its initial (DC) level all along *)
        Alcotest.(check (float 0.2)) "floating held" (sample out 0.05e-9)
          (sample out 2.0e-9))
    [ (vdd_v, true); (0.0, false) ]

let test_mux2 () =
  let _, out =
    cell_bench (fun c ~vdd ~input ~out ->
        let b = Circuit.node c "b" in
        Circuit.vsource c "vb" ~pos:b ~neg:Circuit.gnd (Waveform.dc vdd_v);
        let sel = Circuit.node c "sel" and sel_b = Circuit.node c "selb" in
        (* select the pulsing input *)
        Circuit.vsource c "vsel" ~pos:sel ~neg:Circuit.gnd (Waveform.dc vdd_v);
        Circuit.vsource c "vselb" ~pos:sel_b ~neg:Circuit.gnd (Waveform.dc 0.0);
        Stdcell.mux2_tg c ~a:input ~b ~sel ~sel_b ~output:out ();
        ignore vdd)
  in
  Alcotest.(check (float 0.1)) "mux passes selected" vdd_v (sample out 1.0e-9)

let test_inverter_chain_parity () =
  List.iter
    (fun (n, expect_mid) ->
      let _, out =
        cell_bench (fun c ~vdd ~input ~out ->
            let last = Stdcell.inverter_chain c ~vdd ~input ~n () in
            (* tie the chain output to the probe node with a wire (0-ohm
               equivalent: tiny resistor) *)
            Circuit.resistor c last out 0.1)
      in
      Alcotest.(check (float 0.05)) "parity" expect_mid (sample out 1.2e-9))
    [ (2, vdd_v); (3, 0.0) ]

(* ---------- DETFF functional behaviour ---------- *)

let detff_capture_test kind () =
  let c, _ = Ff_bench.build kind in
  let tr =
    Transient.run ~h:1e-12 ~t_stop:Ff_bench.t_stop ~probes:[ "clk"; "d"; "q" ] c
  in
  let q = Transient.probe tr "q" and d = Transient.probe tr "d" in
  (* after each clock edge during the toggle phase, q must equal the value d
     held just before the edge: dual-edge capture *)
  for k = 1 to 7 do
    let edge = (float_of_int k *. 0.5e-9) +. 0.5e-9 in
    let before = int_of_float ((edge -. 0.05e-9) /. 1e-12) in
    let after = int_of_float ((edge +. 0.35e-9) /. 1e-12) in
    Alcotest.(check (float 0.15))
      (Printf.sprintf "edge %d captures D" k)
      d.(before) q.(after)
  done

let test_table1_shape () =
  (* coarse grid keeps the test fast; orderings must already hold *)
  let results = Ff_bench.table1 ~h:2e-12 () in
  Alcotest.(check int) "five flip-flops" 5 (List.length results);
  List.iter
    (fun (r : Ff_bench.result) ->
      Alcotest.(check bool) "positive energy" true (r.energy_fj > 0.0);
      Alcotest.(check bool) "sane delay" true
        (r.delay_ps > 10.0 && r.delay_ps < 500.0))
    results;
  Alcotest.(check bool) "Llopis-1 lowest energy" true
    (Ff_bench.llopis1_has_lowest_energy results);
  let edp_min =
    List.fold_left
      (fun (best : Ff_bench.result) (r : Ff_bench.result) ->
        if r.Ff_bench.edp < best.Ff_bench.edp then r else best)
      (List.hd results) (List.tl results)
  in
  Alcotest.(check string) "Chung-2 lowest EDP" "chung2"
    (Detff.short_name edp_min.kind)

let test_gated_clock_saves_when_idle () =
  (* the Table 2 headline: a clock-gated idle BLE burns far less energy *)
  let rows = Clocking.table2 () in
  match rows with
  | [ single; en1; en0 ] ->
      Alcotest.(check bool) "enable=0 saves > 50%" true
        (en0.Clocking.energy_fj < 0.5 *. single.Clocking.energy_fj);
      Alcotest.(check bool) "enable=1 costs a little" true
        (en1.Clocking.energy_fj > single.Clocking.energy_fj
        && en1.Clocking.energy_fj < 1.3 *. single.Clocking.energy_fj)
  | _ -> Alcotest.fail "table2 must have three rows"

let test_setff_functional () =
  (* the SET baseline captures on rising edges only *)
  let c = Circuit.create tech in
  let vdd = Circuit.vdd_rail c in
  let clk = Circuit.node c "clk" in
  let d = Circuit.node c "d" in
  Stdcell.driver c "vclk" ~node:clk
    (Waveform.clock ~vdd:vdd_v ~period:1e-9 ~slew:50e-12 ~delay:0.5e-9);
  (* data toggles every half clock cycle, like the Table-1 stimulus *)
  Stdcell.driver c "vd" ~node:d
    (Waveform.pulse ~v1:vdd_v ~delay:0.75e-9 ~rise:50e-12 ~fall:50e-12
       ~width:(0.5e-9 -. 50e-12) ~period:1e-9 ());
  let q = Setff.instantiate c ~vdd ~d ~clk in
  Hashtbl.replace c.Circuit.names "q" q;
  let tr = Transient.run ~h:1e-12 ~t_stop:4e-9 ~probes:[ "q"; "d" ] c in
  let qw = Transient.probe tr "q" in
  (* rising edges at 1.5ns, 2.5ns...: D just before 1.5 is low (toggled at
     1.25 to 0? D rises at 0.75, falls at 1.25+0.05... sample D at edge-60ps
     and compare Q 300ps after *)
  let dw = Transient.probe tr "d" in
  List.iter
    (fun edge ->
      let before = int_of_float ((edge -. 0.06e-9) /. 1e-12) in
      let after = int_of_float ((edge +. 0.35e-9) /. 1e-12) in
      Alcotest.(check (float 0.2))
        (Printf.sprintf "rising edge at %.1f ns" (edge *. 1e9))
        dw.(before) qw.(after))
    [ 1.5e-9; 2.5e-9; 3.5e-9 ]

let test_det_beats_set_when_idle () =
  (* the platform's motivation: at low data activity the half-rate clock
     of the DETFF wins *)
  let p = Ff_bench.det_vs_set_point ~h:2e-12 ~activity:0.0 () in
  Alcotest.(check bool) "DET cheaper when idle" true
    (p.Ff_bench.det_energy_fj < p.Ff_bench.set_energy_fj)

let test_routing_point_sanity () =
  let p =
    Routing_exp.measure ~h:10e-12 ~wire_length:4 ~width:10.0
      ~config:Tech.Min_width_double_spacing ~style:Routing_exp.Pass_transistor ()
  in
  Alcotest.(check bool) "positive energy" true (p.Routing_exp.energy_j > 0.0);
  Alcotest.(check bool) "positive delay" true (p.Routing_exp.delay_s > 0.0);
  Alcotest.(check bool) "positive area" true (p.Routing_exp.area > 0.0)

let test_routing_width_tradeoff () =
  (* a wider switch must be faster and larger on the same track *)
  let measure w =
    Routing_exp.measure ~h:10e-12 ~wire_length:4 ~width:w
      ~config:Tech.Min_width_min_spacing ~style:Routing_exp.Pass_transistor ()
  in
  let narrow = measure 2.0 and wide = measure 32.0 in
  Alcotest.(check bool) "wide is faster" true
    (wide.Routing_exp.delay_s < narrow.Routing_exp.delay_s);
  Alcotest.(check bool) "wide is larger" true
    (wide.Routing_exp.area > narrow.Routing_exp.area)

let test_waveform_pulse () =
  let w =
    Waveform.pulse ~v1:1.8 ~delay:1e-9 ~rise:0.1e-9 ~fall:0.1e-9 ~width:0.4e-9
      ~period:1e-9 ()
  in
  Alcotest.(check (float 1e-9)) "before delay" 0.0 (Waveform.value w 0.5e-9);
  Alcotest.(check (float 1e-9)) "mid rise" 0.9 (Waveform.value w 1.05e-9);
  Alcotest.(check (float 1e-9)) "plateau" 1.8 (Waveform.value w 1.3e-9);
  Alcotest.(check (float 1e-9)) "fallen" 0.0 (Waveform.value w 1.8e-9);
  Alcotest.(check (float 1e-9)) "periodic" 1.8 (Waveform.value w 2.3e-9)

let test_waveform_pwl () =
  let w = Waveform.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 0.0) ] in
  Alcotest.(check (float 1e-9)) "interp 1" 1.0 (Waveform.value w 0.5);
  Alcotest.(check (float 1e-9)) "interp 2" 1.0 (Waveform.value w 2.0);
  Alcotest.(check (float 1e-9)) "held" 0.0 (Waveform.value w 10.0)

let test_measure_crossings () =
  let times = Array.init 101 (fun i -> float_of_int i) in
  let wave = Array.map (fun t -> sin (t /. 5.0)) times in
  let ups = Measure.crossings ~edge:Measure.Rising ~threshold:0.0 times wave in
  (* sin crosses zero upward at multiples of 10*pi ~ 31.4, 62.8, 94.2 *)
  Alcotest.(check int) "three rising crossings" 3 (List.length ups)

let suite =
  [
    ("rc step response", `Quick, test_rc_step_response);
    ("rc energy conservation", `Quick, test_rc_energy_conservation);
    ("capacitor divider", `Quick, test_capacitor_divider);
    ("resistor divider dc", `Quick, test_resistor_divider_dc);
    ("unknown probe rejected", `Quick, test_unknown_probe_rejected);
    ("mosfet cutoff", `Quick, test_mosfet_cutoff);
    ("mosfet saturation", `Quick, test_mosfet_saturation_positive);
    ("mosfet symmetry", `Quick, test_mosfet_symmetry);
    ("pmos mirrors nmos", `Quick, test_pmos_mirrors_nmos);
    ("inverter levels", `Quick, test_inverter_levels);
    ("nand2 truth", `Quick, test_nand2_truth);
    ("nor2 truth", `Quick, test_nor2_truth);
    ("tgate pass/block", `Quick, test_tgate_passes_and_blocks);
    ("c2mos tristate", `Quick, test_c2mos_tristate);
    ("mux2", `Quick, test_mux2);
    ("inverter chain parity", `Quick, test_inverter_chain_parity);
    ("waveform pulse", `Quick, test_waveform_pulse);
    ("waveform pwl", `Quick, test_waveform_pwl);
    ("measure crossings", `Quick, test_measure_crossings);
    ("detff chung1 captures", `Slow, detff_capture_test Detff.Chung1);
    ("detff chung2 captures", `Slow, detff_capture_test Detff.Chung2);
    ("detff llopis1 captures", `Slow, detff_capture_test Detff.Llopis1);
    ("detff llopis2 captures", `Slow, detff_capture_test Detff.Llopis2);
    ("detff strollo captures", `Slow, detff_capture_test Detff.Strollo);
    ("table1 shape", `Slow, test_table1_shape);
    ("gated clock saves when idle", `Slow, test_gated_clock_saves_when_idle);
    ("setff functional", `Slow, test_setff_functional);
    ("det beats set when idle", `Slow, test_det_beats_set_when_idle);
    ("routing point sanity", `Quick, test_routing_point_sanity);
    ("routing width tradeoff", `Quick, test_routing_width_tradeoff);
    QCheck_alcotest.to_alcotest prop_mosfet_derivatives;
  ]
