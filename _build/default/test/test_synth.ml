(* Tests for elaboration, optimisation and the DIVINER/DRUID/E2FMT chain. *)

open Netlist

let simulate_sequence net ~inputs ~cycles ~read =
  let st = Logic.sim_init net in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  let out = ref [] in
  for cycle = 0 to cycles - 1 do
    List.iter (fun (nm, f) -> Hashtbl.replace tbl nm (f cycle)) inputs;
    Logic.sim_eval net st input_of;
    out := read net st :: !out;
    Logic.sim_step net st
  done;
  List.rev !out

(* ---------- elaboration semantics ---------- *)

let test_counter_counts () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.counter 4) in
  let values =
    simulate_sequence net
      ~inputs:[ ("rst", fun c -> c = 0); ("en", fun _ -> true) ]
      ~cycles:6
      ~read:(fun net st -> Logic.read_vector net st "q")
  in
  Alcotest.(check (list int)) "counting" [ 0; 0; 1; 2; 3; 4 ] values

let test_counter_enable_holds () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.counter 4) in
  let values =
    simulate_sequence net
      ~inputs:[ ("rst", fun c -> c = 0); ("en", fun c -> c < 3) ]
      ~cycles:6
      ~read:(fun net st -> Logic.read_vector net st "q")
  in
  (* enabled on cycles 1,2 only (cycle 0 resets) *)
  Alcotest.(check (list int)) "hold" [ 0; 0; 1; 2; 2; 2 ] values

let test_async_reset_dominates () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.counter 4) in
  let values =
    simulate_sequence net
      ~inputs:[ ("rst", fun c -> c = 0 || c = 3); ("en", fun _ -> true) ]
      ~cycles:6
      ~read:(fun net st -> Logic.read_vector net st "q")
  in
  Alcotest.(check (list int)) "reset mid-run" [ 0; 0; 1; 2; 0; 1 ] values

let test_adder_widths () =
  let vhdl =
    {|entity add3 is
  port ( a : in std_logic_vector(2 downto 0);
         b : in std_logic_vector(2 downto 0);
         s : out std_logic_vector(2 downto 0) );
end add3;
architecture rtl of add3 is
begin
  s <= a + b;
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  for a = 0 to 7 do
    for b = 0 to 7 do
      Logic.set_vector_inputs net tbl "a" 3 a;
      Logic.set_vector_inputs net tbl "b" 3 b;
      let st = Logic.sim_init net in
      Logic.sim_eval net st input_of;
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" a b)
        ((a + b) land 7)
        (Logic.read_vector net st "s")
    done
  done

let test_subtraction () =
  let vhdl =
    {|entity sub4 is
  port ( a : in std_logic_vector(3 downto 0);
         b : in std_logic_vector(3 downto 0);
         d : out std_logic_vector(3 downto 0) );
end sub4;
architecture rtl of sub4 is
begin
  d <= a - b;
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  List.iter
    (fun (a, b) ->
      Logic.set_vector_inputs net tbl "a" 4 a;
      Logic.set_vector_inputs net tbl "b" 4 b;
      let st = Logic.sim_init net in
      Logic.sim_eval net st input_of;
      Alcotest.(check int)
        (Printf.sprintf "%d-%d" a b)
        ((a - b) land 15)
        (Logic.read_vector net st "d"))
    [ (5, 3); (3, 5); (15, 15); (0, 1); (8, 8) ]

let test_concat_and_slice () =
  let vhdl =
    {|entity cs is
  port ( a : in std_logic_vector(3 downto 0);
         y : out std_logic_vector(3 downto 0) );
end cs;
architecture rtl of cs is
begin
  y <= a(1 downto 0) & a(3 downto 2);
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  Logic.set_vector_inputs net tbl "a" 4 0b1001;
  let st = Logic.sim_init net in
  Logic.sim_eval net st input_of;
  (* swap halves: 10|01 -> 01|10 *)
  Alcotest.(check int) "swapped" 0b0110 (Logic.read_vector net st "y")

let test_when_else_priority () =
  let vhdl =
    {|entity we is
  port ( s1 : in std_logic;
         s2 : in std_logic;
         y : out std_logic_vector(1 downto 0) );
end we;
architecture rtl of we is
begin
  y <= "01" when s1 = '1' else "10" when s2 = '1' else "00";
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let eval s1 s2 =
    let input_of = function "s1" -> s1 | "s2" -> s2 | _ -> false in
    let st = Logic.sim_init net in
    Logic.sim_eval net st input_of;
    Logic.read_vector net st "y"
  in
  Alcotest.(check int) "s1 wins" 1 (eval true true);
  Alcotest.(check int) "s2" 2 (eval false true);
  Alcotest.(check int) "default" 0 (eval false false)

let test_case_statement () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.decoder 3) in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  for a = 0 to 7 do
    Logic.set_vector_inputs net tbl "a" 3 a;
    let st = Logic.sim_init net in
    Logic.sim_eval net st input_of;
    Alcotest.(check int) (Printf.sprintf "decode %d" a) (1 lsl a)
      (Logic.read_vector net st "y")
  done

let test_sequential_overwrite_semantics () =
  (* default assignment then conditional overwrite: the VHDL last-wins rule *)
  let vhdl =
    {|entity ow is
  port ( a : in std_logic; b : in std_logic; y : out std_logic );
end ow;
architecture rtl of ow is
begin
  process(a, b) begin
    y <= '0';
    if a = '1' then
      y <= b;
    end if;
  end process;
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let eval a b =
    let input_of = function "a" -> a | "b" -> b | _ -> false in
    List.assoc "y" (Logic.simulate_comb net input_of)
  in
  Alcotest.(check bool) "a=1 passes b" true (eval true true);
  Alcotest.(check bool) "a=1 passes b=0" false (eval true false);
  Alcotest.(check bool) "a=0 default" false (eval false true)

let test_incomplete_comb_assignment_rejected () =
  let vhdl =
    {|entity bad is
  port ( a : in std_logic; y : out std_logic );
end bad;
architecture rtl of bad is
begin
  process(a) begin
    if a = '1' then
      y <= '1';
    end if;
  end process;
end rtl;|}
  in
  match Synth.Diviner.synthesize vhdl with
  | exception Synth.Elaborate.Elab_error _ -> ()
  | _ -> Alcotest.fail "expected an implicit-latch error"

let test_multiple_drivers_rejected () =
  let vhdl =
    {|entity md is
  port ( a : in std_logic; y : out std_logic );
end md;
architecture rtl of md is
begin
  y <= a;
  y <= not a;
end rtl;|}
  in
  match Synth.Diviner.synthesize vhdl with
  | exception Synth.Elaborate.Elab_error _ -> ()
  | _ -> Alcotest.fail "expected a multiple-driver error"

let test_relational_operators () =
  let vhdl =
    {|entity cmp is
  port ( a : in std_logic_vector(3 downto 0);
         b : in std_logic_vector(3 downto 0);
         lt : out std_logic; gt : out std_logic;
         le : out std_logic; ge : out std_logic );
end cmp;
architecture rtl of cmp is
begin
  lt <= '1' when a < b else '0';
  gt <= '1' when a > b else '0';
  le <= '1' when a <= b else '0';
  ge <= '1' when a >= b else '0';
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Logic.set_vector_inputs net tbl "a" 4 a;
      Logic.set_vector_inputs net tbl "b" 4 b;
      let st = Logic.sim_init net in
      Logic.sim_eval net st input_of;
      let g nm = Logic.sim_value st (Logic.find_exn net nm) in
      Alcotest.(check bool) (Printf.sprintf "%d<%d" a b) (a < b) (g "lt");
      Alcotest.(check bool) (Printf.sprintf "%d>%d" a b) (a > b) (g "gt");
      Alcotest.(check bool) (Printf.sprintf "%d<=%d" a b) (a <= b) (g "le");
      Alcotest.(check bool) (Printf.sprintf "%d>=%d" a b) (a >= b) (g "ge")
    done
  done

let test_others_aggregate () =
  let vhdl =
    {|entity agg is
  port ( sel : in std_logic; y : out std_logic_vector(7 downto 0) );
end agg;
architecture rtl of agg is
begin
  y <= (others => '1') when sel = '1' else (others => '0');
end rtl;|}
  in
  let net = Synth.Diviner.synthesize vhdl in
  let eval sel =
    let input_of = function "sel" -> sel | _ -> false in
    let st = Logic.sim_init net in
    Logic.sim_eval net st input_of;
    Logic.read_vector net st "y"
  in
  Alcotest.(check int) "all ones" 255 (eval true);
  Alcotest.(check int) "all zeros" 0 (eval false)

(* ---------- hierarchy ---------- *)

let test_hierarchy_function () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.datapath 8) in
  (* the datapath accumulates din every cycle *)
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  Hashtbl.replace tbl "rst" false;
  Logic.set_vector_inputs net tbl "din" 8 7;
  let st = Logic.sim_init net in
  for _ = 1 to 3 do
    Logic.sim_eval net st input_of;
    Logic.sim_step net st
  done;
  Logic.sim_eval net st input_of;
  Alcotest.(check int) "acc = 3 * 7" 21 (Logic.read_vector net st "acc")

let test_hierarchy_positional_and_named () =
  (* mixed association styles in the datapath generator already cover both;
     verify the instance signal names carry the hierarchy prefix *)
  let file = Vhdl_parser.file_of_string (Core.Bench_circuits.datapath 4) in
  let top = List.nth file (List.length file - 1) in
  let net = Synth.Elaborate.elaborate ~library:file top in
  Alcotest.(check bool) "prefixed names exist" true
    (List.exists
       (fun id ->
         let nm = Logic.name net id in
         String.length nm > 6 && String.sub nm 0 6 = "u_reg/")
       (List.init (Logic.signal_count net) (fun i -> i)))

let test_hierarchy_unknown_entity () =
  let src =
    {|entity t is port ( a : in std_logic; y : out std_logic ); end t;
architecture rtl of t is begin
  u0 : nosuch port map ( a => a, y => y );
end rtl;|}
  in
  match Synth.Diviner.synthesize src with
  | exception Synth.Elaborate.Elab_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-entity error"

let test_hierarchy_recursion_rejected () =
  let src =
    {|entity loopy is port ( a : in std_logic; y : out std_logic ); end loopy;
architecture rtl of loopy is
begin
  u0 : loopy port map ( a => a, y => y );
end rtl;|}
  in
  match Synth.Diviner.synthesize src with
  | exception Synth.Elaborate.Elab_error _ -> ()
  | _ -> Alcotest.fail "expected recursion error"

let test_hierarchy_unconnected_input_rejected () =
  let src =
    {|entity inner is port ( a : in std_logic; y : out std_logic ); end inner;
architecture rtl of inner is begin y <= not a; end rtl;
entity outer is port ( x : in std_logic; z : out std_logic ); end outer;
architecture rtl of outer is
begin
  u0 : inner port map ( y => z );
end rtl;|}
  in
  match Synth.Diviner.synthesize src with
  | exception Synth.Elaborate.Elab_error _ -> ()
  | _ -> Alcotest.fail "expected unconnected-input error"

let test_generate_structural_adder () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.gen_adder 6) in
  let tbl = Hashtbl.create 8 in
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  for a = 0 to 63 do
    for b = 0 to 63 do
      Logic.set_vector_inputs net tbl "a" 6 a;
      Logic.set_vector_inputs net tbl "b" 6 b;
      let st = Logic.sim_init net in
      Logic.sim_eval net st input_of;
      Alcotest.(check int)
        (Printf.sprintf "%d+%d sum" a b)
        ((a + b) land 63)
        (Logic.read_vector net st "s");
      Alcotest.(check bool)
        (Printf.sprintf "%d+%d carry" a b)
        (a + b > 63)
        (Logic.sim_value st (Logic.find_exn net "cout"))
    done
  done

let test_generate_variable_scoping () =
  (* a generate variable must not leak outside its loop *)
  let src =
    {|entity gs is port ( a : in std_logic_vector(3 downto 0);
                          y : out std_logic_vector(3 downto 0) ); end gs;
architecture rtl of gs is
begin
  g : for i in 0 to 3 generate
    y(i) <= not a(i);
  end generate;
end rtl;|}
  in
  let net = Synth.Diviner.synthesize src in
  let tbl = Hashtbl.create 4 in
  Logic.set_vector_inputs net tbl "a" 4 0b1010;
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  let st = Logic.sim_init net in
  Logic.sim_eval net st input_of;
  Alcotest.(check int) "bitwise not" 0b0101 (Logic.read_vector net st "y")

let test_generate_bad_range_rejected () =
  let src =
    {|entity gb is port ( a : in std_logic; y : out std_logic ); end gb;
architecture rtl of gb is
  signal v : std_logic_vector(1 downto 0);
begin
  g : for i in 0 to 5 generate
    v(i) <= a;
  end generate;
  y <= v(0);
end rtl;|}
  in
  match Synth.Diviner.synthesize src with
  | exception Synth.Elaborate.Elab_error _ -> ()
  | _ -> Alcotest.fail "expected an out-of-range error"

(* ---------- optimisation ---------- *)

let test_opt_preserves_function () =
  List.iter
    (fun (name, vhdl) ->
      let file = Vhdl_parser.file_of_string vhdl in
      let design = List.nth file (List.length file - 1) in
      let raw = Synth.Elaborate.elaborate ~library:file design in
      let reference = Logic.copy raw in
      let opt = Synth.Opt.optimize raw in
      Alcotest.(check bool) (name ^ " equivalent") true
        (Techmap.Simcheck.is_equivalent reference opt))
    Core.Bench_circuits.suite

let test_opt_removes_constants () =
  let net = Logic.create () in
  let a = Logic.add_input net "a" in
  let c1 = Logic.add_const net "one" true in
  let g = Logic.add_gate net "g" (Tt.and_n 2) [| a; c1 |] in
  Logic.set_output net g;
  let opt = Synth.Opt.optimize net in
  (* a AND 1 = a: output must be a buffer of the input (or the input) *)
  Alcotest.(check bool) "no const left" true
    (List.for_all
       (fun id ->
         match Logic.driver opt id with Logic.Const _ -> false | _ -> true)
       (List.init (Logic.signal_count opt) (fun i -> i)))

let test_opt_cse () =
  let net = Logic.create () in
  let a = Logic.add_input net "a" in
  let b = Logic.add_input net "b" in
  let g1 = Logic.add_gate net "g1" (Tt.and_n 2) [| a; b |] in
  let g2 = Logic.add_gate net "g2" (Tt.and_n 2) [| a; b |] in
  let o = Logic.add_gate net "o" (Tt.xor_n 2) [| g1; g2 |] in
  Logic.set_output net o;
  let opt = Synth.Opt.optimize net in
  (* XOR of identical signals = 0: the whole cone collapses *)
  let out = List.hd (Logic.outputs opt) in
  match Logic.driver opt out with
  | Logic.Const false -> ()
  | _ ->
      (* at minimum both ANDs must have merged *)
      Alcotest.(check bool) "gates reduced" true
        (List.length (Logic.gates opt) <= 1)

let test_decompose_library_only () =
  List.iter
    (fun (name, vhdl) ->
      let net = Synth.Diviner.synthesize vhdl in
      List.iter
        (fun g ->
          match Logic.driver net g with
          | Logic.Gate { tt; _ } ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s is a library gate" name (Logic.name net g))
                true
                (Gatelib.of_tt tt <> None)
          | _ -> ())
        (Logic.gates net))
    Core.Bench_circuits.quick_suite

let test_full_front_end_equivalence () =
  (* VHDL -> DIVINER -> EDIF -> DRUID -> E2FMT preserves function *)
  List.iter
    (fun (name, vhdl) ->
      let net = Synth.Diviner.synthesize vhdl in
      let edif = Edif.of_logic net in
      let normalized = Synth.Druid.normalize edif in
      let back = Edif.to_logic normalized in
      (* compare against the identically-renamed direct conversion *)
      let reference = Edif.to_logic edif in
      Alcotest.(check bool) (name ^ " front end equivalent") true
        (Techmap.Simcheck.is_equivalent reference back))
    Core.Bench_circuits.quick_suite

let suite =
  [
    ("counter counts", `Quick, test_counter_counts);
    ("counter enable holds", `Quick, test_counter_enable_holds);
    ("async reset dominates", `Quick, test_async_reset_dominates);
    ("adder exhaustive", `Quick, test_adder_widths);
    ("subtraction", `Quick, test_subtraction);
    ("concat and slice", `Quick, test_concat_and_slice);
    ("when/else priority", `Quick, test_when_else_priority);
    ("case statement decoder", `Quick, test_case_statement);
    ("sequential overwrite", `Quick, test_sequential_overwrite_semantics);
    ("implicit latch rejected", `Quick, test_incomplete_comb_assignment_rejected);
    ("multiple drivers rejected", `Quick, test_multiple_drivers_rejected);
    ("relational operators exhaustive", `Quick, test_relational_operators);
    ("others aggregate", `Quick, test_others_aggregate);
    ("generate structural adder", `Quick, test_generate_structural_adder);
    ("generate variable scoping", `Quick, test_generate_variable_scoping);
    ("generate bad range rejected", `Quick, test_generate_bad_range_rejected);
    ("hierarchy function", `Quick, test_hierarchy_function);
    ("hierarchy prefixes", `Quick, test_hierarchy_positional_and_named);
    ("hierarchy unknown entity", `Quick, test_hierarchy_unknown_entity);
    ("hierarchy recursion rejected", `Quick, test_hierarchy_recursion_rejected);
    ("hierarchy unconnected input", `Quick, test_hierarchy_unconnected_input_rejected);
    ("optimize preserves function", `Slow, test_opt_preserves_function);
    ("optimize removes constants", `Quick, test_opt_removes_constants);
    ("optimize cse", `Quick, test_opt_cse);
    ("decompose to library gates", `Quick, test_decompose_library_only);
    ("front-end chain equivalence", `Quick, test_full_front_end_equivalence);
  ]
