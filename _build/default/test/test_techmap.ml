(* Tests for decomposition, FlowMap and equivalence checking. *)

open Netlist

(* Random DAG generator for property tests: [n_inputs] inputs and
   [n_gates] gates with random truth tables over random earlier signals. *)
let random_network rng ~n_inputs ~n_gates =
  let net = Logic.create ~model:"rand" () in
  let pool = ref [] in
  for i = 0 to n_inputs - 1 do
    pool := Logic.add_input net (Printf.sprintf "i%d" i) :: !pool
  done;
  for g = 0 to n_gates - 1 do
    let arity = 1 + Util.Prng.int rng 3 in
    let pool_arr = Array.of_list !pool in
    let fanins = Array.init arity (fun _ -> Util.Prng.pick rng pool_arr) in
    (* distinct truth table bits; avoid triviality is not required *)
    let bits = Util.Prng.int rng (1 lsl (1 lsl arity)) in
    let id = Logic.add_gate net (Printf.sprintf "g%d" g) (Tt.create arity bits) fanins in
    pool := id :: !pool
  done;
  (* a few outputs *)
  let pool_arr = Array.of_list !pool in
  for _ = 0 to 2 do
    Logic.set_output net (Util.Prng.pick rng pool_arr)
  done;
  net

let prop_decompose_preserves =
  QCheck.Test.make ~count:40 ~name:"decompose2 preserves function"
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Util.Prng.create (seed + 1) in
      let net = random_network rng ~n_inputs:5 ~n_gates:15 in
      let reference = Logic.copy net in
      let two = Techmap.Decompose.decompose2 net in
      Techmap.Decompose.is_two_bounded two
      && Techmap.Simcheck.is_equivalent reference two)

let prop_flowmap_preserves =
  QCheck.Test.make ~count:40 ~name:"FlowMap preserves function"
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Util.Prng.create (seed + 101) in
      let net = random_network rng ~n_inputs:6 ~n_gates:20 in
      let reference = Logic.copy net in
      let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
      Techmap.Simcheck.is_equivalent reference mapped)

let prop_flowmap_k_bound =
  QCheck.Test.make ~count:40 ~name:"FlowMap respects the K bound"
    QCheck.(pair (int_bound 10000) (int_range 2 5))
    (fun (seed, k) ->
      let rng = Util.Prng.create (seed + 201) in
      let net = random_network rng ~n_inputs:6 ~n_gates:20 in
      let mapped, _ = Techmap.Mapper.map_network ~k ~verify:false net in
      List.for_all
        (fun g ->
          match Logic.driver mapped g with
          | Logic.Gate { fanins; _ } -> Array.length fanins <= k
          | _ -> true)
        (Logic.gates mapped))

let test_flowmap_depth_optimal_chain () =
  (* a chain of 8 two-input ANDs maps into ceil(7/3)+... at K=4 a chain of
     n 2-input gates has depth ceil(n / 3)?  Instead check against the
     reported bound: mapped depth equals the FlowMap label bound. *)
  let net = Logic.create () in
  let a = Logic.add_input net "a" in
  let prev = ref a in
  for i = 0 to 7 do
    let b = Logic.add_input net (Printf.sprintf "b%d" i) in
    prev := Logic.add_gate net (Printf.sprintf "g%d" i) (Tt.and_n 2) [| !prev; b |]
  done;
  Logic.set_output net !prev;
  let reference = Logic.copy net in
  let mapped, report = Techmap.Mapper.map_network ~k:4 net in
  Alcotest.(check int) "depth equals FlowMap bound"
    report.Techmap.Mapper.predicted_depth
    (Logic.depth mapped);
  (* 8 cascaded 2-input gates = a 9-input AND: needs depth >= 2 at K = 4
     and FlowMap must find depth exactly ceil over the optimal structure *)
  Alcotest.(check bool) "nontrivial depth" true (Logic.depth mapped >= 2);
  Alcotest.(check bool) "still equivalent" true
    (Techmap.Simcheck.is_equivalent reference mapped)

let test_flowmap_single_lut_fits () =
  (* any 4-input function must map to exactly one LUT *)
  let net = Logic.create () in
  let ins = Array.init 4 (fun i -> Logic.add_input net (Printf.sprintf "i%d" i)) in
  let x1 = Logic.add_gate net "x1" (Tt.xor_n 2) [| ins.(0); ins.(1) |] in
  let x2 = Logic.add_gate net "x2" (Tt.xor_n 2) [| ins.(2); ins.(3) |] in
  let o = Logic.add_gate net "o" (Tt.and_n 2) [| x1; x2 |] in
  Logic.set_output net o;
  let mapped, _ = Techmap.Mapper.map_network ~k:4 net in
  Alcotest.(check int) "one LUT" 1 (List.length (Logic.gates mapped));
  Alcotest.(check int) "depth one" 1 (Logic.depth mapped)

let test_simcheck_detects_difference () =
  let mk flip =
    let net = Logic.create () in
    let a = Logic.add_input net "a" in
    let b = Logic.add_input net "b" in
    let tt = if flip then Tt.or_n 2 else Tt.and_n 2 in
    let g = Logic.add_gate net "y" tt [| a; b |] in
    Logic.set_output net g;
    net
  in
  Alcotest.(check bool) "same equivalent" true
    (Techmap.Simcheck.is_equivalent (mk false) (mk false));
  Alcotest.(check bool) "different detected" false
    (Techmap.Simcheck.is_equivalent (mk false) (mk true))

let test_simcheck_sequential () =
  (* two counters with different initial values differ *)
  let mk init =
    let net = Logic.create () in
    let q = Logic.add_input net "q" in
    ignore q;
    let qid = Logic.find_exn net "q" in
    let d = Logic.add_gate net "d" Tt.inv [| qid |] in
    Logic.set_driver net qid (Logic.Latch { data = d; init });
    Logic.set_output net qid;
    net
  in
  Alcotest.(check bool) "same init" true
    (Techmap.Simcheck.is_equivalent (mk false) (mk false));
  Alcotest.(check bool) "different init detected" false
    (Techmap.Simcheck.is_equivalent (mk false) (mk true))

let test_mapper_reduces_suite () =
  (* mapping the synthesized suite always succeeds with verification on *)
  List.iter
    (fun (name, vhdl) ->
      let net = Synth.Diviner.synthesize vhdl in
      let mapped, report = Techmap.Mapper.map_network ~k:4 net in
      Alcotest.(check bool) (name ^ " mapped depth sane") true
        (Logic.depth mapped <= report.Techmap.Mapper.before.Logic.levels
         || report.Techmap.Mapper.before.Logic.levels = 0);
      ignore mapped)
    Core.Bench_circuits.quick_suite

(* ---------- Quine-McCluskey ---------- *)

let tt_arb =
  QCheck.make
    ~print:(fun (n, bits) -> Printf.sprintf "Tt(%d, %x)" n bits)
    QCheck.Gen.(
      int_range 1 5 >>= fun n ->
      int_bound ((1 lsl (1 lsl n)) - 1) >>= fun bits -> return (n, bits))

let prop_qm_cover_exact =
  QCheck.Test.make ~count:300 ~name:"QM: min cover computes the function"
    tt_arb
    (fun (n, bits) ->
      let tt = Tt.create n bits in
      let cover = Qm.min_cover tt in
      Tt.equal tt (Qm.cover_function n cover))

let prop_qm_not_larger_than_greedy =
  QCheck.Test.make ~count:300 ~name:"QM: never larger than the greedy cover"
    tt_arb
    (fun (n, bits) ->
      let tt = Tt.create n bits in
      List.length (Qm.min_cover tt) <= List.length (Tt.to_cubes tt))

let prop_qm_primes_cover =
  QCheck.Test.make ~count:300 ~name:"QM: primes cover exactly the on-set"
    tt_arb
    (fun (n, bits) ->
      let tt = Tt.create n bits in
      let ps = Qm.primes tt in
      List.for_all
        (fun row ->
          Tt.eval tt row = List.exists (fun c -> Qm.cube_covers c row) ps)
        (List.init (1 lsl n) (fun r -> r)))

let test_qm_known_minimum () =
  (* f = a'b + ab' + ab = a + b: minimum cover has 2 cubes? a + b = 2 cubes *)
  let tt = Tt.or_n 2 in
  Alcotest.(check int) "a+b needs 2 cubes" 2
    (List.length (Qm.min_cover tt));
  (* 2-input xor is not mergeable: 2 minterm cubes *)
  Alcotest.(check int) "xor needs 2 cubes" 2
    (List.length (Qm.min_cover (Tt.xor_n 2)));
  (* 3-input majority: 3 cubes of 2 literals *)
  let maj =
    Tt.create 3 0b11101000
  in
  let cover = Qm.min_cover maj in
  Alcotest.(check int) "majority needs 3 cubes" 3 (List.length cover);
  Alcotest.(check int) "majority literal count" 6
    (Qm.literal_count cover)

let suite =
  [
    ("qm known minima", `Quick, test_qm_known_minimum);
    ("flowmap depth-optimal chain", `Quick, test_flowmap_depth_optimal_chain);
    ("flowmap single lut", `Quick, test_flowmap_single_lut_fits);
    ("simcheck detects difference", `Quick, test_simcheck_detects_difference);
    ("simcheck sequential", `Quick, test_simcheck_sequential);
    ("mapper on suite", `Quick, test_mapper_reduces_suite);
    QCheck_alcotest.to_alcotest prop_decompose_preserves;
    QCheck_alcotest.to_alcotest prop_flowmap_preserves;
    QCheck_alcotest.to_alcotest prop_flowmap_k_bound;
    QCheck_alcotest.to_alcotest prop_qm_cover_exact;
    QCheck_alcotest.to_alcotest prop_qm_not_larger_than_greedy;
    QCheck_alcotest.to_alcotest prop_qm_primes_cover;
  ]
