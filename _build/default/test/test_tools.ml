(* Tests for the tooling layer: VCD dumps, SPICE-deck export and the
   ASCII layout renderer. *)

open Netlist

(* ---------- VCD ---------- *)

let counter_net = lazy (Synth.Diviner.synthesize (Core.Bench_circuits.counter 4))

let run_vcd cycles =
  let net = Lazy.force counter_net in
  let st = Logic.sim_init net in
  let rec_ = Vcd.create net in
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl "rst" false;
  Hashtbl.replace tbl "en" true;
  let input_of nm =
    match Hashtbl.find_opt tbl nm with Some v -> v | None -> false
  in
  for cycle = 0 to cycles - 1 do
    Logic.sim_eval net st input_of;
    Vcd.sample rec_ st ~time:cycle;
    Logic.sim_step net st
  done;
  Vcd.contents rec_

let test_vcd_structure () =
  let text = run_vcd 8 in
  Alcotest.(check bool) "has timescale" true
    (String.length text > 0
    && Str_helpers.contains text "$timescale"
    && Str_helpers.contains text "$enddefinitions");
  (* every declared identifier code is unique *)
  let lines = String.split_on_char '\n' text in
  let vars =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "$var"; "wire"; "1"; code; _name; "$end" ] -> Some code
        | _ -> None)
      lines
  in
  Alcotest.(check bool) "some vars" true (List.length vars > 3);
  Alcotest.(check int) "codes unique" (List.length vars)
    (List.length (List.sort_uniq compare vars))

let test_vcd_changes_only () =
  let text = run_vcd 4 in
  (* rst and en are constant after cycle 0: each appears at most twice in
     the value-change section (initial value only) *)
  let body =
    match Str_helpers.split_once text "$enddefinitions $end\n" with
    | Some (_, b) -> b
    | None -> ""
  in
  let count_timestamps =
    List.length
      (List.filter
         (fun l -> String.length l > 0 && l.[0] = '#')
         (String.split_on_char '\n' body))
  in
  Alcotest.(check bool) "several timestamps" true (count_timestamps >= 3)

(* ---------- SPICE deck ---------- *)

let test_deck_export () =
  let c = Spice.Circuit.create Spice.Tech.stm018 in
  let vdd = Spice.Circuit.vdd_rail c in
  let a = Spice.Circuit.node c "a" and y = Spice.Circuit.node c "y" in
  Spice.Circuit.vsource c "vin" ~pos:a ~neg:Spice.Circuit.gnd
    (Spice.Waveform.pulse ~v1:1.8 ~delay:1e-9 ~rise:0.1e-9 ~fall:0.1e-9
       ~width:2e-9 ~period:5e-9 ());
  Spice.Stdcell.inverter c ~vdd ~input:a ~output:y ();
  Spice.Circuit.capacitor c y Spice.Circuit.gnd 10e-15;
  let deck = Spice.Deck.to_string ~title:"inverter test" c in
  Alcotest.(check bool) "has models" true
    (Str_helpers.contains deck ".MODEL NMOS"
    && Str_helpers.contains deck ".MODEL PMOS");
  Alcotest.(check bool) "has devices" true
    (Str_helpers.contains deck "\nM1 " && Str_helpers.contains deck "\nC");
  Alcotest.(check bool) "has pulse source" true
    (Str_helpers.contains deck "PULSE(");
  Alcotest.(check bool) "terminated" true (Str_helpers.contains deck ".end")

let test_deck_detff_exports () =
  (* every Table-1 candidate exports to a deck with the right device count *)
  List.iter
    (fun kind ->
      let c, ff_transistors = Spice.Ff_bench.build kind in
      let deck = Spice.Deck.to_string c in
      let mos_lines =
        List.filter
          (fun l -> String.length l > 1 && l.[0] = 'M')
          (String.split_on_char '\n' deck)
      in
      Alcotest.(check bool)
        (Spice.Detff.short_name kind ^ " device count")
        true
        (List.length mos_lines >= ff_transistors))
    Spice.Detff.kinds

(* ---------- layout renderer ---------- *)

let test_render_layout () =
  let r = Core.Flow.run_vhdl (Core.Bench_circuits.counter 8) in
  let text = Route.Render.to_string r.Core.Flow.routed in
  Alcotest.(check bool) "mentions clusters" true (Str_helpers.contains text "C0");
  Alcotest.(check bool) "mentions pads" true
    (Str_helpers.contains text "I" && Str_helpers.contains text "O");
  Alcotest.(check bool) "mentions width" true
    (Str_helpers.contains text
       (Printf.sprintf "of %d" r.Core.Flow.routed.Route.Router.width))

let suite =
  [
    ("vcd structure", `Quick, test_vcd_structure);
    ("vcd changes only", `Quick, test_vcd_changes_only);
    ("spice deck export", `Quick, test_deck_export);
    ("spice deck detffs", `Quick, test_deck_detff_exports);
    ("render layout", `Quick, test_render_layout);
  ]
