(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §3) plus the flow QoR table and the
   architecture ablations, and times the CAD stages with Bechamel.

   Usage:
     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- table1 table3 fig9 flow ablate stages
     dune exec bench/main.exe -- --ledger bench/ledger --suite suite flow

   With --ledger DIR the flow experiment appends one Ledger record per
   circuit to DIR/<suite>.jsonl (suite-order, post-join), which
   amdrel_report folds into BENCH_<suite>.json and gates. *)

open Spice

(* set by the driver from --ledger/--suite before experiments run *)
let ledger_dir : string option ref = ref None
let suite_name = ref "suite"

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let pct_change base v = 100.0 *. (v -. base) /. base

(* ---------- Table 1 ---------- *)

let table1 () =
  hr "Table 1: Energy, delay and energy-delay product of DET flip-flops";
  print_endline
    "(paper reports absolute fJ/ps in STM 0.18um; our substrate is the\n\
     built-in transistor-level simulator, so the orderings are the target:\n\
     Llopis-1 lowest energy, Chung-2 lowest EDP, Llopis-1 selected)\n";
  let results = Ff_bench.table1 () in
  Util.Tablefmt.print
    [ "Cell"; "Total Energy (fJ)"; "Delay (ps)"; "Energy-Delay Product" ]
    (List.map
       (fun (r : Ff_bench.result) ->
         [
           Detff.name r.kind;
           Util.Tablefmt.f1 r.energy_fj;
           Util.Tablefmt.f1 r.delay_ps;
           Util.Tablefmt.f1 r.edp;
         ])
       results);
  let best metric =
    List.fold_left
      (fun (best : Ff_bench.result) (r : Ff_bench.result) ->
        if metric r < metric best then r else best)
      (List.hd results) (List.tl results)
  in
  Printf.printf "\nlowest energy: %s   (paper: Llopis 1)\n"
    (Detff.name (best (fun r -> r.Ff_bench.energy_fj)).Ff_bench.kind);
  Printf.printf "lowest EDP:    %s   (paper: Chung 2)\n"
    (Detff.name (best (fun r -> r.Ff_bench.edp)).Ff_bench.kind);
  Printf.printf "selected:      %s   (paper: Llopis 1 — simpler structure)\n"
    (Detff.name Detff.Llopis1);
  print_endline
    "\nDET vs SET at matched data rate (the platform's motivation: the\n\
     DETFF clock runs at half frequency):";
  Util.Tablefmt.print
    [ "data activity"; "DET (fJ/cycle)"; "SET (fJ/cycle)"; "DET saving" ]
    (List.map
       (fun (p : Ff_bench.det_vs_set) ->
         [
           Util.Tablefmt.f2 p.activity;
           Util.Tablefmt.f1 p.det_energy_fj;
           Util.Tablefmt.f1 p.set_energy_fj;
           Util.Tablefmt.pct (1.0 -. (p.det_energy_fj /. p.set_energy_fj));
         ])
       (Ff_bench.det_vs_set_sweep ()))

(* ---------- Table 2 ---------- *)

let table2 () =
  hr "Table 2: Energy for single and gated clock (BLE level)";
  let rows = Clocking.table2 () in
  (match rows with
  | [ single; en1; en0 ] ->
      Util.Tablefmt.print
        [ "Condition"; "E (fJ/cycle)"; "vs single"; "paper" ]
        [
          [ single.Clocking.label; Util.Tablefmt.f2 single.Clocking.energy_fj;
            "-"; "E=40.76 fJ" ];
          [ en1.Clocking.label; Util.Tablefmt.f2 en1.Clocking.energy_fj;
            Util.Tablefmt.pct
              (pct_change single.Clocking.energy_fj en1.Clocking.energy_fj
              /. 100.0);
            "E=43.44 fJ (+6.2%)" ];
          [ en0.Clocking.label; Util.Tablefmt.f2 en0.Clocking.energy_fj;
            Util.Tablefmt.pct
              (pct_change single.Clocking.energy_fj en0.Clocking.energy_fj
              /. 100.0);
            "E=9.31 fJ (-77%)" ];
        ]
  | _ -> print_endline "unexpected table2 shape")

(* ---------- Table 3 ---------- *)

let table3 () =
  hr "Table 3: Energy for single and gated clock at CLB level";
  let rows = Clocking.table3 () in
  Util.Tablefmt.print
    [ "Condition"; "Single (fJ)"; "Gated (fJ)"; "change"; "paper" ]
    (List.map2
       (fun (r : Clocking.table3_row) paper ->
         [
           Clocking.condition_name r.condition;
           Util.Tablefmt.f1 r.single_fj;
           Util.Tablefmt.f1 r.gated_fj;
           Util.Tablefmt.pct (pct_change r.single_fj r.gated_fj /. 100.0);
           paper;
         ])
       rows
       [ "23.1 -> 3.9 (-83%)"; "24.1 -> 32.1 (+33%)"; "27.8 -> 35.8 (+29%)" ]);
  print_endline
    "\npaper conclusion: CLB-level gating pays when P(all F/Fs off) > 1/3 —\n\
     the same break-even follows from the rows above."

(* ---------- Figures 8, 9, 10 ---------- *)

let figure config ~fig ~paper_optima () =
  hr
    (Printf.sprintf
       "Figure %d: Energy-Delay-Area product vs routing pass-transistor \
        width (%s)"
       fig
       (Tech.wire_config_name config));
  let curves = Routing_exp.sweep ~config () in
  (* print one row per width, one column per wire length *)
  let widths =
    match curves with
    | cv :: _ -> List.map (fun (p : Routing_exp.point) -> p.width) cv.points
    | [] -> []
  in
  let header =
    "W (x min)"
    :: List.map
         (fun (cv : Routing_exp.curve) ->
           Printf.sprintf "L=%d EDA" cv.wire_length)
         curves
  in
  let rows =
    List.mapi
      (fun i w ->
        Printf.sprintf "%g" w
        :: List.map
             (fun (cv : Routing_exp.curve) ->
               let p = List.nth cv.points i in
               if Float.is_nan p.Routing_exp.eda then "n/a"
               else Util.Tablefmt.g3 (p.Routing_exp.eda *. 1e30))
             curves)
      widths
  in
  Util.Tablefmt.print header rows;
  print_endline "\noptimal width per wire length (E*D*A minimum):";
  List.iter2
    (fun (cv : Routing_exp.curve) paper ->
      Printf.printf "  L=%d: %gx   (paper: %s)\n" cv.wire_length
        (Routing_exp.optimal_width cv)
        paper)
    curves paper_optima

let fig8 () =
  figure Tech.Min_width_min_spacing ~fig:8
    ~paper_optima:[ "10-16 (tied)"; "10-16 (tied)"; "10-16 (tied)"; "64" ]
    ()

let fig9 () =
  figure Tech.Min_width_double_spacing ~fig:9
    ~paper_optima:[ "10"; "10"; "10"; "64" ]
    ()

let fig10 () =
  figure Tech.Double_width_double_spacing ~fig:10
    ~paper_optima:[ "10"; "10"; "10"; "16" ]
    ()

(* ---------- Flow QoR ---------- *)

let flow_qor () =
  hr "Flow QoR: the benchmark suite through the complete VHDL-to-bitstream flow";
  print_endline
    "(the functional demonstration of §4; every bitstream is round-trip\n\
     verified — the paper demonstrates the flow, QoR numbers are ours)\n";
  Printf.printf "domains: %d (AMDREL_JOBS overrides)\n\n"
    (Util.Parallel.default_jobs ());
  (* independent circuits fan out across the Domain pool; failures are
     reported after the join, in suite order.  Ledger records are built
     in the workers but appended post-join, so the ledger file order is
     the suite order regardless of which domain finished first. *)
  let suite = !suite_name in
  let outcomes =
    Util.Parallel.map_list
      (fun (name, vhdl) ->
        match Core.Flow.run_vhdl vhdl with
        | r ->
            let lrec =
              Option.map
                (fun _ ->
                  Ledger.of_result ~suite ~config:Core.Flow.default_config
                    ~source:vhdl r)
                !ledger_dir
            in
            Ok
              ( [
                  name;
                  string_of_int r.Core.Flow.mapped_stats.Netlist.Logic.n_gates;
                  string_of_int
                    r.Core.Flow.mapped_stats.Netlist.Logic.n_latches;
                  string_of_int r.Core.Flow.n_clusters;
                  Printf.sprintf "%dx%d" r.Core.Flow.grid.Fpga_arch.Grid.nx
                    r.Core.Flow.grid.Fpga_arch.Grid.ny;
                  (match
                     r.Core.Flow.route_stats.Route.Router.minimum_width
                   with
                  | Some w -> string_of_int w
                  | None -> "-");
                  Util.Tablefmt.f2
                    (r.Core.Flow.route_stats.Route.Router.critical_path_s
                    *. 1e9);
                  Util.Tablefmt.f3
                    (r.Core.Flow.power.Power.Model.total_w *. 1e3);
                  string_of_int r.Core.Flow.bitstream.Bitstream.Dagger.bits;
                  (if r.Core.Flow.bitstream_verified then "yes" else "NO");
                ],
                lrec )
        | exception Core.Flow.Flow_error (stage, e) ->
            Error (name, stage, Printexc.to_string e))
      Core.Bench_circuits.suite
    |> List.filter_map (function
         | Ok row -> Some row
         | Error (name, stage, e) ->
             Printf.printf "%s: FAILED at %s (%s)\n" name stage e;
             None)
  in
  Util.Tablefmt.print
    [
      "circuit"; "LUTs"; "FFs"; "CLBs"; "grid"; "Wmin"; "crit(ns)"; "P(mW)";
      "bits"; "verified";
    ]
    (List.map fst outcomes);
  match !ledger_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (_, lrec) -> Option.iter (Ledger.append ~dir) lrec)
        outcomes;
      Printf.printf "\nledger: appended %d record(s) to %s\n"
        (List.length (List.filter_map snd outcomes))
        (Ledger.path ~dir ~suite)

(* ---------- Ablations ---------- *)

let ablations () =
  hr "Ablation: cluster size N (paper selects N = 5)";
  Util.Tablefmt.print
    [ "N"; "P (mW)"; "crit (ns)"; "CLBs"; "Wmin"; "util" ]
    (List.map
       (fun (p : Core.Explore.sweep_point) ->
         [
           p.label;
           Util.Tablefmt.f3 p.avg_power_mw;
           Util.Tablefmt.f2 p.avg_crit_ns;
           Util.Tablefmt.f1 p.avg_clusters;
           Util.Tablefmt.f1 p.avg_min_width;
           Util.Tablefmt.f2 p.avg_utilization;
         ])
       (Core.Explore.cluster_size_sweep ()));
  hr "Ablation: LUT size K (paper cites K = 4 [24])";
  Util.Tablefmt.print
    [ "K"; "P (mW)"; "crit (ns)"; "CLBs"; "Wmin"; "util" ]
    (List.map
       (fun (p : Core.Explore.sweep_point) ->
         [
           p.label;
           Util.Tablefmt.f3 p.avg_power_mw;
           Util.Tablefmt.f2 p.avg_crit_ns;
           Util.Tablefmt.f1 p.avg_clusters;
           Util.Tablefmt.f1 p.avg_min_width;
           Util.Tablefmt.f2 p.avg_utilization;
         ])
       (Core.Explore.lut_size_sweep ()));
  hr "Ablation: the input rule I = (K/2)(N+1) (paper: ~98% utilisation at the rule)";
  Util.Tablefmt.print
    [ "I"; "BLE utilisation"; "avg CLBs" ]
    (List.map
       (fun (p : Core.Explore.input_rule_point) ->
         [
           (if p.i_value = p.rule_value then
              Printf.sprintf "%d (rule)" p.i_value
            else string_of_int p.i_value);
           Util.Tablefmt.f2 p.utilization;
           Util.Tablefmt.f1 p.clusters;
         ])
       (Core.Explore.input_rule_sweep ()));
  hr "Ablation: timing-driven vs routability-driven place & route";
  let td = Core.Explore.timing_driven_comparison () in
  Util.Tablefmt.print
    [ "circuit"; "crit rt (ns)"; "crit td (ns)"; "wire rt"; "wire td" ]
    (List.map
       (fun (p : Core.Explore.td_point) ->
         [
           p.circuit;
           Util.Tablefmt.f2 p.routability_crit_ns;
           Util.Tablefmt.f2 p.timing_driven_crit_ns;
           string_of_int p.routability_wire;
           string_of_int p.timing_driven_wire;
         ])
       td);
  let geo f = Util.Stats.geomean (Array.of_list (List.map f td)) in
  Printf.printf
    "\ngeomean critical path: %.2f ns routability-driven vs %.2f ns \
     timing-driven\n"
    (geo (fun p -> p.Core.Explore.routability_crit_ns))
    (geo (fun p -> p.Core.Explore.timing_driven_crit_ns));
  hr "Ablation: pass transistor vs tri-state buffer switches (§3.3.2)";
  Util.Tablefmt.print
    [ "style"; "E (fJ)"; "D (ps)"; "area"; "EDA" ]
    (List.map
       (fun (p : Core.Explore.switch_point) ->
         [
           (match p.style with
           | Routing_exp.Pass_transistor -> "pass transistor"
           | Routing_exp.Tristate_buffer -> "tri-state buffer");
           Util.Tablefmt.f1 p.energy_fj;
           Util.Tablefmt.f1 p.delay_ps;
           Util.Tablefmt.f1 p.area;
           Util.Tablefmt.g3 p.eda;
         ])
       (Core.Explore.switch_style_comparison ()))

(* ---------- Stress: larger workloads ---------- *)

let stress () =
  hr "Stress: larger workloads through the complete flow";
  print_endline
    "(scaling check: hundreds of LUTs, 7x7-10x10 arrays, all verified)\n";
  let circuits =
    [
      ("alu16", Core.Bench_circuits.alu 16);
      ("mult8", Core.Bench_circuits.multiplier 8);
      ("counter32", Core.Bench_circuits.counter 32);
      ("accum24", Core.Bench_circuits.accumulator 24);
      ("mult12", Core.Bench_circuits.multiplier 12);
    ]
  in
  Printf.printf "domains: %d (AMDREL_JOBS overrides)\n\n"
    (Util.Parallel.default_jobs ());
  let t_all0 = Unix.gettimeofday () in
  (* per-circuit wall time, not Sys.time: the CPU clock counts every
     domain, so it would charge each circuit for its neighbours *)
  let rows =
    Util.Parallel.map_list
      (fun (name, vhdl) ->
        let t0 = Unix.gettimeofday () in
        match Core.Flow.run_vhdl vhdl with
        | r ->
            Ok
              [
                name;
                string_of_int r.Core.Flow.mapped_stats.Netlist.Logic.n_gates;
                string_of_int r.Core.Flow.n_clusters;
                Printf.sprintf "%dx%d" r.Core.Flow.grid.Fpga_arch.Grid.nx
                  r.Core.Flow.grid.Fpga_arch.Grid.ny;
                (match r.Core.Flow.route_stats.Route.Router.minimum_width with
                | Some w -> string_of_int w
                | None -> "-");
                string_of_int
                  r.Core.Flow.route_stats.Route.Router.router_iterations;
                string_of_int r.Core.Flow.route_stats.Route.Router.heap_pops;
                Util.Tablefmt.f2
                  (r.Core.Flow.route_stats.Route.Router.critical_path_s *. 1e9);
                Util.Tablefmt.f2 (r.Core.Flow.power.Power.Model.total_w *. 1e3);
                (if r.Core.Flow.bitstream_verified && r.Core.Flow.fabric_verified
                 then "yes" else "NO");
                Util.Tablefmt.f1 (Unix.gettimeofday () -. t0);
              ]
        | exception Core.Flow.Flow_error (stage, e) ->
            Error (name, stage, Printexc.to_string e))
      circuits
    |> List.filter_map (function
         | Ok row -> Some row
         | Error (name, stage, e) ->
             Printf.printf "%s: FAILED at %s (%s)\n" name stage e;
             None)
  in
  Util.Tablefmt.print
    [ "circuit"; "LUTs"; "CLBs"; "grid"; "Wmin"; "rt iters"; "heap pops";
      "crit(ns)"; "P(mW)"; "verified"; "wall(s)" ]
    rows;
  Printf.printf "\ntotal wall time: %.1f s\n"
    (Unix.gettimeofday () -. t_all0)

(* ---------- Unified STA timing report ---------- *)

let timing () =
  hr "Unified STA: pre-route vs post-route critical paths across the suite";
  print_endline
    "(timing-driven place & route; pre is the placement-distance\n\
     estimate, post the routed-Elmore analysis — both from the unified\n\
     STA engine, the sole timing oracle)\n";
  let rows =
    Util.Parallel.map_list
      (fun (name, vhdl) ->
        let config =
          { Core.Flow.default_config with Core.Flow.timing_driven = true }
        in
        match Core.Flow.run_vhdl ~config vhdl with
        | r ->
            let pre = r.Core.Flow.sta_pre.Sta.Analysis.dmax in
            let post = r.Core.Flow.sta_post.Sta.Analysis.dmax in
            Ok
              ( name,
                r,
                [
                  name;
                  Util.Tablefmt.f2 (pre *. 1e9);
                  Util.Tablefmt.f2 (post *. 1e9);
                  Util.Tablefmt.pct ((post -. pre) /. pre);
                  string_of_int
                    (List.length (Sta.Report.paths r.Core.Flow.sta_post));
                ] )
        | exception Core.Flow.Flow_error (stage, e) ->
            Error (name, stage, Printexc.to_string e))
      Core.Bench_circuits.suite
  in
  let ok =
    List.filter_map
      (function
        | Ok row -> Some row
        | Error (name, stage, e) ->
            Printf.printf "%s: FAILED at %s (%s)\n" name stage e;
            None)
      rows
  in
  Util.Tablefmt.print
    [
      "circuit"; "pre dmax(ns)"; "post dmax(ns)"; "post vs pre"; "paths";
    ]
    (List.map (fun (_, _, row) -> row) ok);
  (* the worst path of the largest circuit, end to end *)
  (match
     List.find_opt (fun (name, _, _) -> name = "mult4") ok
   with
  | Some (_, r, _) ->
      print_newline ();
      print_string
        (Sta.Report.to_text ~title:"mult4 post-route critical path"
           r.Core.Flow.sta_post
           (Sta.Report.paths ~k:1 r.Core.Flow.sta_post))
  | None -> ());
  (* timing-driven vs routability-driven routing, unified-STA measured *)
  hr "Timing-driven routing (criticality-weighted PathFinder) vs routability";
  let compare_one (name, vhdl) =
    let run td =
      let config =
        { Core.Flow.default_config with Core.Flow.timing_driven = td }
      in
      Core.Flow.run_vhdl ~config vhdl
    in
    let rt = run false and td = run true in
    [
      name;
      Util.Tablefmt.f2 (rt.Core.Flow.sta_post.Sta.Analysis.dmax *. 1e9);
      Util.Tablefmt.f2 (td.Core.Flow.sta_post.Sta.Analysis.dmax *. 1e9);
      (match rt.Core.Flow.route_stats.Route.Router.minimum_width with
      | Some w -> string_of_int w
      | None -> "-");
      (match td.Core.Flow.route_stats.Route.Router.minimum_width with
      | Some w -> string_of_int w
      | None -> "-");
    ]
  in
  Util.Tablefmt.print
    [ "circuit"; "rt dmax(ns)"; "td dmax(ns)"; "rt Wmin"; "td Wmin" ]
    (Util.Parallel.map_list compare_one Core.Bench_circuits.quick_suite)

(* ---------- Bechamel stage timings ---------- *)

let stage_timings () =
  hr "CAD stage timings (Bechamel)";
  let open Bechamel in
  let vhdl = Core.Bench_circuits.alu 8 in
  let synth () = ignore (Synth.Diviner.synthesize vhdl) in
  let synthesized = Synth.Diviner.synthesize vhdl in
  let map () =
    ignore
      (Techmap.Mapper.map_network ~k:4 ~verify:false
         (Netlist.Logic.copy synthesized))
  in
  let mapped, _ =
    Techmap.Mapper.map_network ~k:4 ~verify:false
      (Netlist.Logic.copy synthesized)
  in
  let packf () = ignore (Pack.Cluster.pack ~n:5 ~i:12 mapped) in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let place () =
    ignore (Place.Anneal.run (Place.Problem.build packing))
  in
  let placed = Place.Anneal.run (Place.Problem.build packing) in
  let route () =
    ignore
      (Route.Router.route_min_width Fpga_arch.Params.amdrel
         placed.Place.Anneal.placement)
  in
  let routed =
    Route.Router.route_min_width Fpga_arch.Params.amdrel
      placed.Place.Anneal.placement
  in
  let power () = ignore (Power.Model.estimate routed) in
  let dagger () = ignore (Bitstream.Dagger.generate routed) in
  let tests =
    [
      Test.make ~name:"diviner-synth" (Staged.stage synth);
      Test.make ~name:"sis-flowmap" (Staged.stage map);
      Test.make ~name:"t-vpack" (Staged.stage packf);
      Test.make ~name:"vpr-place" (Staged.stage place);
      Test.make ~name:"vpr-route" (Staged.stage route);
      Test.make ~name:"powermodel" (Staged.stage power);
      Test.make ~name:"dagger" (Staged.stage dagger);
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          (* average ns per run from the measurement set *)
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              (Toolkit.Instance.monotonic_clock) raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] ->
              Printf.printf "  %-16s %10.3f ms/run\n" name (est /. 1e6)
          | _ -> Printf.printf "  %-16s (no estimate)\n" name)
        results)
    tests

(* ---------- driver ---------- *)

let all =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("flow", flow_qor);
    ("timing", timing);
    ("ablate", ablations);
    ("stress", stress);
    ("stages", stage_timings);
  ]

let () =
  (* peel --ledger DIR / --suite NAME off argv; the rest are experiments *)
  let rec parse_opts acc = function
    | "--ledger" :: dir :: rest ->
        ledger_dir := Some dir;
        parse_opts acc rest
    | "--suite" :: name :: rest ->
        suite_name := name;
        parse_opts acc rest
    | ("--ledger" | "--suite") :: [] ->
        Printf.eprintf "missing argument for --ledger/--suite\n";
        exit 1
    | name :: rest -> parse_opts (name :: acc) rest
    | [] -> List.rev acc
  in
  let requested =
    match parse_opts [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst all
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat ", " (List.map fst all));
          exit 1)
    requested
