(* Router micro-benchmark: times the routing stage alone, at a fixed
   channel width and through the full min-width search, on the larger
   bench circuits.  Emits one JSON line per circuit so before/after
   comparisons are machine-readable.

   Usage: dune exec bench/routebench.exe [-- circuit ...]            *)

let circuits =
  [
    ("counter16", Core.Bench_circuits.counter 16);
    ("alu16", Core.Bench_circuits.alu 16);
    ("mult12", Core.Bench_circuits.multiplier 12);
  ]

let place vhdl =
  let net = Synth.Diviner.synthesize vhdl in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  (Place.Anneal.run ~options:{ Place.Anneal.seed = 1; inner_num = 1.0 }
     problem)
    .Place.Anneal.placement

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst circuits
  in
  List.iter
    (fun name ->
      match List.assoc_opt name circuits with
      | None -> Printf.eprintf "unknown circuit %s\n" name
      | Some vhdl ->
          let placement = place vhdl in
          (* min-width search first: gives the fixed width used below *)
          let t0 = Unix.gettimeofday () in
          let routed =
            Route.Router.route_min_width Fpga_arch.Params.amdrel placement
          in
          let t_search = Unix.gettimeofday () -. t0 in
          let min_w =
            match routed.Route.Router.min_width with Some w -> w | None -> 0
          in
          (* fixed-width routing at the low-stress width, repeated *)
          let width = routed.Route.Router.width in
          let reps = 3 in
          let t0 = Unix.gettimeofday () in
          let fixed = ref routed in
          for _ = 1 to reps do
            fixed :=
              Route.Router.route_fixed Fpga_arch.Params.amdrel placement
                ~width
          done;
          let t_fixed = (Unix.gettimeofday () -. t0) /. float_of_int reps in
          let s = Route.Router.stats !fixed in
          (* one JSON line per circuit, via the shared Obs.Emit emitter
             (same field order as the historical hand-rolled printer) *)
          let line =
            Obs.Emit.Obj
              [
                ("circuit", Obs.Emit.String name);
                ("min_width", Obs.Emit.Int min_w);
                ("width", Obs.Emit.Int width);
                ("route_fixed_s", Obs.Emit.Float t_fixed);
                ("min_width_search_s", Obs.Emit.Float t_search);
                ("iterations", Obs.Emit.Int s.Route.Router.router_iterations);
                ("nets_rerouted", Obs.Emit.Int s.Route.Router.nets_rerouted);
                ("heap_pops", Obs.Emit.Int s.Route.Router.heap_pops);
                ("peak_overuse", Obs.Emit.Int s.Route.Router.peak_overuse);
                ("par_batches", Obs.Emit.Int s.Route.Router.par_batches);
                ("par_batch_max", Obs.Emit.Int s.Route.Router.par_batch_max);
                ( "par_serial_frac",
                  Obs.Emit.Float s.Route.Router.par_serial_frac );
                ("jobs", Obs.Emit.Int (Util.Parallel.default_jobs ()));
              ]
          in
          Printf.printf "%s\n%!" (Obs.Emit.to_string line))
    requested
