(* Router micro-benchmark: times the routing stage alone, at a fixed
   channel width and through the full min-width search, on the larger
   bench circuits.  Emits one JSON line per circuit so before/after
   comparisons are machine-readable.

   Usage: dune exec bench/routebench.exe [-- circuit ...]            *)

let circuits =
  [
    ("counter16", Core.Bench_circuits.counter 16);
    ("alu16", Core.Bench_circuits.alu 16);
    ("mult12", Core.Bench_circuits.multiplier 12);
  ]

let place vhdl =
  let net = Synth.Diviner.synthesize vhdl in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  (Place.Anneal.run ~options:{ Place.Anneal.seed = 1; inner_num = 1.0 }
     problem)
    .Place.Anneal.placement

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst circuits
  in
  List.iter
    (fun name ->
      match List.assoc_opt name circuits with
      | None -> Printf.eprintf "unknown circuit %s\n" name
      | Some vhdl ->
          let placement = place vhdl in
          (* min-width search first: gives the fixed width used below *)
          let t0 = Unix.gettimeofday () in
          let routed =
            Route.Router.route_min_width Fpga_arch.Params.amdrel placement
          in
          let t_search = Unix.gettimeofday () -. t0 in
          let min_w =
            match routed.Route.Router.min_width with Some w -> w | None -> 0
          in
          (* fixed-width routing at the low-stress width, repeated *)
          let width = routed.Route.Router.width in
          let reps = 3 in
          let t0 = Unix.gettimeofday () in
          let fixed = ref routed in
          for _ = 1 to reps do
            fixed :=
              Route.Router.route_fixed Fpga_arch.Params.amdrel placement
                ~width
          done;
          let t_fixed = (Unix.gettimeofday () -. t0) /. float_of_int reps in
          let s = Route.Router.stats !fixed in
          Printf.printf
            "{\"circuit\": \"%s\", \"min_width\": %d, \"width\": %d, \
             \"route_fixed_s\": %.4f, \"min_width_search_s\": %.4f, \
             \"iterations\": %d, \"nets_rerouted\": %d, \"heap_pops\": %d, \
             \"peak_overuse\": %d, \"par_batches\": %d, \
             \"par_batch_max\": %d, \"par_serial_frac\": %.4f, \
             \"jobs\": %d}\n%!"
            name min_w width t_fixed t_search
            s.Route.Router.router_iterations s.Route.Router.nets_rerouted
            s.Route.Router.heap_pops s.Route.Router.peak_overuse
            s.Route.Router.par_batches s.Route.Router.par_batch_max
            s.Route.Router.par_serial_frac
            (Util.Parallel.default_jobs ()))
    requested
