(* The integrated design framework CLI: VHDL in, bitstream out, with every
   intermediate product written next to the output (our substitute for the
   paper's GUI; the six GUI stages map to the six stage reports below).

   Two modes:
   - single design (default): INPUT.vhd, full stage reports on stdout;
   - batch (--batch): INPUT is a manifest listing one VHDL path per line;
     every design compiles over the Domain pool and writes
     BASE.result.json (QoR figures + full metric registry) next to its
     bitstream, one summary line each on stdout.

   Both modes memoise stage results in a content-addressed cache
   (_amdrel_cache/ by default; --cache-dir to move it, --no-cache to
   disable): a re-run of an unchanged design skips straight to the
   cached bitstream, an edited design re-runs only the stages whose
   inputs changed.  See docs/ARCHITECTURE.md.

   With --remote SOCKET either mode submits to a running amdreld
   compile-service daemon instead of compiling in-process: the daemon
   owns the cache and the domain pool, this process just ships sources
   and writes the returned artifacts (BASE.bit, BASE.result.json,
   BASE.timing.json) exactly where a local run would. *)

open Cmdliner

let make_config arch seed fixed_width jobs timing_report period_ns
    no_incremental_sta cache_dir =
  let params =
    match arch with
    | Some file -> Fpga_arch.Archfile.of_file file
    | None -> Core.Flow.default_config.Core.Flow.params
  in
  {
    Core.Flow.default_config with
    Core.Flow.params;
    seed;
    search_min_width = fixed_width = None;
    route_width = (match fixed_width with Some w -> w | None -> 12);
    timing_driven = timing_report || period_ns <> None;
    clock_period = Option.map (fun ns -> ns *. 1e-9) period_ns;
    jobs;
    incremental_sta = not no_incremental_sta;
    cache_dir;
  }

let counter_value metrics key =
  match Obs.Registry.find metrics key with
  | Some (Obs.Registry.Counter n) -> n
  | _ -> 0

(* ---------- run ledger ---------- *)

let ledger_append ~ledger ~suite ~config ~source r =
  match ledger with
  | None -> ()
  | Some dir ->
      Ledger.append ~dir (Ledger.of_result ~suite ~config ~source r);
      Printf.printf "ledger: appended %s to %s\n" r.Core.Flow.design
        (Filename.concat dir (suite ^ ".jsonl"))

(* ---------- local event capture (--events without --remote) ---------- *)

let write_events_file path events =
  let oc = open_out path in
  List.iter
    (fun ev -> output_string oc (Obs.Emit.to_string (Obs.Events.to_json ev) ^ "\n"))
    events;
  close_out oc;
  Printf.printf "events -> %s (%d records)\n" path (List.length events)

(* ---------- single-design mode (the paper's GUI walkthrough) ---------- *)

let run_single input outdir config timing_report metrics_json trace_file
    events_file ledger suite jobs =
  let text = Tool_common.read_file input in
  let base =
    Filename.concat outdir
      (Filename.remove_extension (Filename.basename input))
  in
  let w0 = Unix.gettimeofday () in
  let t0 = Sys.time () in
  let trace = Option.map (fun _ -> Obs.Span.create ()) trace_file in
  let sink = Option.map (fun _ -> Obs.Events.create ()) events_file in
  let r =
    let compile () =
      match trace with
      | Some tr ->
          Obs.Span.with_trace tr (fun () -> Core.Flow.run_vhdl ~config text)
      | None -> Core.Flow.run_vhdl ~config text
    in
    match sink with
    | Some s -> Obs.Events.with_sink s compile
    | None -> compile ()
  in
  let elapsed = Sys.time () -. t0 in
  let wall = Unix.gettimeofday () -. w0 in
  (* stage products *)
  Tool_common.write_file (base ^ ".edf") r.Core.Flow.edif;
  Tool_common.write_file (base ^ ".blif") r.Core.Flow.blif_mapped;
  Pack.Netfile.to_file (base ^ ".net") r.Core.Flow.packing;
  Fpga_arch.Archfile.to_file (base ^ ".arch") config.Core.Flow.params;
  Bitstream.Dagger.to_file (base ^ ".bit") r.Core.Flow.bitstream;
  (* stage reports, in the GUI's six-stage order *)
  Printf.printf "=== 1. File upload ===\n  %s (%d bytes)\n" input
    (String.length text);
  Format.printf "=== 2. Synthesis (DIVINER + DRUID) ===@.  %a -> %s@."
    Netlist.Logic.pp_stats r.Core.Flow.source_stats (base ^ ".edf");
  Format.printf "=== 3. Format translation (E2FMT + SIS) ===@.  %a -> %s@."
    Netlist.Logic.pp_stats r.Core.Flow.mapped_stats (base ^ ".blif");
  Printf.printf
    "=== 4. Packing (T-VPack) ===\n  %d clusters, %.1f%% utilisation -> %s\n"
    r.Core.Flow.n_clusters
    (100.0 *. r.Core.Flow.utilization)
    (base ^ ".net");
  Printf.printf
    "=== 5. Placement and routing (VPR) ===\n  %dx%d grid, bb cost %.2f, \
     channel width %d%s, critical path %.3f ns\n"
    r.Core.Flow.grid.Fpga_arch.Grid.nx r.Core.Flow.grid.Fpga_arch.Grid.ny
    r.Core.Flow.placement_cost
    r.Core.Flow.route_stats.Route.Router.channel_width
    (match r.Core.Flow.route_stats.Route.Router.minimum_width with
    | Some w -> Printf.sprintf " (minimum %d)" w
    | None -> "")
    (r.Core.Flow.route_stats.Route.Router.critical_path_s *. 1e9);
  print_endline "\nplaced-and-routed array:";
  print_string (Route.Render.to_string r.Core.Flow.routed);
  if timing_report then begin
    let pre = r.Core.Flow.sta_pre and post = r.Core.Flow.sta_post in
    let text =
      Sta.Report.to_text ~title:"pre-route timing (placement distance)" pre
        (Sta.Report.paths pre)
      ^ "\n"
      ^ Sta.Report.to_text ~title:"post-route timing (routed Elmore)" post
          (Sta.Report.paths post)
    in
    print_newline ();
    print_string text;
    let design = Filename.remove_extension (Filename.basename input) in
    Tool_common.write_file (base ^ ".timing.txt") text;
    Tool_common.write_file (base ^ ".timing.json")
      (Core.Flow.timing_report_json ~design r);
    Printf.printf "timing report -> %s, %s\n\n" (base ^ ".timing.txt")
      (base ^ ".timing.json")
  end;
  let design = Filename.remove_extension (Filename.basename input) in
  if metrics_json then begin
    let path = base ^ ".metrics.json" in
    Tool_common.write_file path
      (Obs.Emit.to_string
         (Obs.Emit.Obj
            [
              ("design", Obs.Emit.String design);
              ("metrics", Obs.Registry.to_json r.Core.Flow.metrics);
            ])
      ^ "\n");
    Printf.printf "metrics -> %s\n" path
  end;
  (match (trace, trace_file) with
  | Some tr, Some path ->
      Tool_common.write_file path (Obs.Span.to_chrome_string tr ^ "\n");
      Printf.printf "trace -> %s (chrome://tracing / Perfetto)\n" path
  | _ -> ());
  (match (sink, events_file) with
  | Some s, Some path -> write_events_file path (Obs.Events.drain s)
  | _ -> ());
  ledger_append ~ledger ~suite ~config ~source:text r;
  Format.printf "=== 6. Power estimation and FPGA program ===@.  %a@."
    Power.Model.pp r.Core.Flow.power;
  Printf.printf "  %s\n" (Bitstream.Dagger.summary r.Core.Flow.bitstream);
  Printf.printf "  bitstream %s, fabric emulation %s -> %s\n"
    (if r.Core.Flow.bitstream_verified then "verified" else "MISMATCH")
    (if r.Core.Flow.fabric_verified then "equivalent" else "MISMATCH")
    (base ^ ".bit");
  (match config.Core.Flow.cache_dir with
  | Some dir ->
      Printf.printf "  cache %s: %d hit, %d miss, %d stored\n" dir
        (counter_value r.Core.Flow.metrics "cache.hit")
        (counter_value r.Core.Flow.metrics "cache.miss")
        (counter_value r.Core.Flow.metrics "cache.store")
  | None -> ());
  Printf.printf
    "total: %.2f s wall, %.2f s CPU over %d domain(s) (stages: %s)\n" wall
    elapsed
    (Util.Parallel.resolve_jobs ?jobs ())
    (String.concat ", "
       (List.concat_map
          (fun (e : Obs.Registry.entry) ->
            match e.Obs.Registry.value with
            | Obs.Registry.Timer { wall_s; cpu_s; _ } ->
                [
                  Printf.sprintf "%s %.3fs" e.Obs.Registry.key cpu_s;
                  Printf.sprintf "%s.wall %.3fs" e.Obs.Registry.key wall_s;
                ]
            | Obs.Registry.Counter n ->
                [ Printf.sprintf "%s %g" e.Obs.Registry.key (float_of_int n) ]
            | Obs.Registry.Gauge v ->
                [ Printf.sprintf "%s %g" e.Obs.Registry.key v ]
            | Obs.Registry.Histogram _ -> [])
          r.Core.Flow.metrics))

(* ---------- batch mode ---------- *)

type batch_outcome = {
  source : string;
  design : string;
  line : string; (* printed summary line *)
  json : string; (* BASE.result.json contents *)
  ok : bool;
  hits : int;
  misses : int;
  lrec : Ledger.t option; (* ledger record, appended post-join in order *)
}

let compile_one config timing_report ~suite ~want_ledger outdir source =
  let design = Filename.remove_extension (Filename.basename source) in
  let base = Filename.concat outdir design in
  match
    let text = Tool_common.read_file source in
    let r = Core.Flow.run_vhdl ~config text in
    Bitstream.Dagger.to_file (base ^ ".bit") r.Core.Flow.bitstream;
    if timing_report then
      Tool_common.write_file (base ^ ".timing.json")
        (Core.Flow.timing_report_json ~design r);
    (text, r)
  with
  | text, r ->
      let json = Core.Flow.result_json ~source r in
      Tool_common.write_file (base ^ ".result.json") json;
      {
        source;
        design;
        line = Core.Flow.summary r;
        json;
        ok = true;
        hits = counter_value r.Core.Flow.metrics "cache.hit";
        misses = counter_value r.Core.Flow.metrics "cache.miss";
        lrec =
          (if want_ledger then
             Some (Ledger.of_result ~suite ~config ~source:text r)
           else None);
      }
  | exception e ->
      let msg =
        match e with
        | Core.Flow.Flow_error (stage, e) ->
            Printf.sprintf "%s: %s" stage (Printexc.to_string e)
        | e -> Printexc.to_string e
      in
      let json =
        Obs.Emit.to_string
          (Obs.Emit.Obj
             [
               ("design", Obs.Emit.String design);
               ("ok", Obs.Emit.Bool false);
               ("source", Obs.Emit.String source);
               ("error", Obs.Emit.String msg);
             ])
        ^ "\n"
      in
      Tool_common.write_file (base ^ ".result.json") json;
      {
        source;
        design;
        line = Printf.sprintf "%-12s FAILED: %s" design msg;
        json;
        ok = false;
        hits = 0;
        misses = 0;
        lrec = None;
      }

let run_batch manifest outdir config timing_report ledger suite jobs =
  (* Manifest entries resolve against the manifest's own directory
     (Service.Manifest) — never against the CWD, which used to pick up
     same-named files from wherever the driver happened to run. *)
  let sources = Service.Manifest.read manifest in
  if sources = [] then failwith (manifest ^ ": no designs listed");
  let w0 = Unix.gettimeofday () in
  (* one design per pool task; the per-design flows' own parallel stages
     degrade to sequential inside workers (Util.Parallel nesting rule),
     so the pool is never oversubscribed.  Outputs land in input order. *)
  let outcomes =
    Util.Parallel.map ?jobs
      (compile_one config timing_report ~suite ~want_ledger:(ledger <> None)
         outdir)
      (Array.of_list sources)
  in
  let wall = Unix.gettimeofday () -. w0 in
  Array.iter (fun o -> print_endline o.line) outcomes;
  (* ledger records append after the join, in manifest order, so the
     file order is deterministic at any jobs value *)
  (match ledger with
  | None -> ()
  | Some dir ->
      let n =
        Array.fold_left
          (fun n o ->
            match o.lrec with
            | Some rec_ ->
                Ledger.append ~dir rec_;
                n + 1
            | None -> n)
          0 outcomes
      in
      if n > 0 then
        Printf.printf "ledger: appended %d record(s) to %s\n" n
          (Filename.concat dir (suite ^ ".jsonl")));
  let failed =
    Array.fold_left (fun n o -> if o.ok then n else n + 1) 0 outcomes
  in
  let hits = Array.fold_left (fun n o -> n + o.hits) 0 outcomes in
  let misses = Array.fold_left (fun n o -> n + o.misses) 0 outcomes in
  Printf.printf
    "batch: %d design(s), %d failed, %.2f s wall over %d domain(s)%s -> %s\n"
    (Array.length outcomes) failed wall
    (Util.Parallel.resolve_jobs ?jobs ())
    (match config.Core.Flow.cache_dir with
    | Some dir ->
        Printf.sprintf ", cache %s: %d hit / %d miss" dir hits misses
    | None -> "")
    outdir;
  if failed > 0 then exit 1

(* ---------- architecture sweep mode ---------- *)

(* Segment-mix x channel-width sweep over the bench suite: the paper's
   §3.3 wire-length study run through the full CAD flow, one fabric per
   point, fanned out over the Domain pool.  Per point: minimum channel
   width, critical path, power, and energy per data cycle. *)
let run_arch_sweep outdir mixes widths jobs =
  let mixes = if mixes = [] then Core.Explore.default_mixes else mixes in
  let w0 = Unix.gettimeofday () in
  let points = Core.Explore.segment_mix_sweep ~mixes ~widths ?jobs () in
  Printf.printf "%-22s %6s %8s %9s %10s %6s\n" "mix" "Wmin" "crit/ns"
    "power/mW" "energy/pJ" "util";
  List.iter
    (fun (p : Core.Explore.arch_point) ->
      Printf.printf "%-22s %6.1f %8.2f %9.2f %10.2f %5.1f%%\n"
        p.Core.Explore.arch_label p.Core.Explore.point.Core.Explore.avg_min_width
        p.Core.Explore.point.Core.Explore.avg_crit_ns
        p.Core.Explore.point.Core.Explore.avg_power_mw
        p.Core.Explore.avg_energy_pj
        (100.0 *. p.Core.Explore.point.Core.Explore.avg_utilization))
    points;
  let json =
    Obs.Emit.List
      (List.map
         (fun (p : Core.Explore.arch_point) ->
           Obs.Emit.Obj
             [
               ("mix", Obs.Emit.String p.Core.Explore.mix);
               ( "width",
                 match p.Core.Explore.fixed_width with
                 | Some w -> Obs.Emit.Int w
                 | None -> Obs.Emit.Null );
               ( "wmin",
                 Obs.Emit.Float p.Core.Explore.point.Core.Explore.avg_min_width
               );
               ( "crit_ns",
                 Obs.Emit.Float p.Core.Explore.point.Core.Explore.avg_crit_ns );
               ( "power_mw",
                 Obs.Emit.Float p.Core.Explore.point.Core.Explore.avg_power_mw
               );
               ("energy_pj", Obs.Emit.Float p.Core.Explore.avg_energy_pj);
               ( "utilization",
                 Obs.Emit.Float
                   p.Core.Explore.point.Core.Explore.avg_utilization );
             ])
         points)
  in
  let path = Filename.concat outdir "arch_sweep.json" in
  Tool_common.write_file path (Obs.Emit.to_string json ^ "\n");
  Printf.printf "sweep: %d point(s), %.2f s wall over %d domain(s) -> %s\n"
    (List.length points)
    (Unix.gettimeofday () -. w0)
    (Util.Parallel.resolve_jobs ?jobs ())
    path

(* ---------- remote mode (submission to an amdreld daemon) ---------- *)

module J = Service.Jsonin

let make_submit seed fixed_width timing_report period_ns ~progress source =
  {
    Service.Protocol.default_submit with
    Service.Protocol.vhdl = Tool_common.read_file source;
    seed;
    route_width = fixed_width;
    timing_report;
    period_ns;
    progress;
  }

(* Live status line on stderr: each progress event overwrites the
   previous one; the final response clears it.  Deliberately terse —
   the raw stream (every record, untouched) goes to --events FILE. *)
let render_event design ev =
  let get name get_v = Option.bind (J.member name ev) get_v in
  let stat =
    match get "event" J.get_string with
    | Some "stage-begin" ->
        Option.map (Printf.sprintf "%s ...") (get "stage" J.get_string)
    | Some "stage-end" ->
        Option.map (Printf.sprintf "%s done") (get "stage" J.get_string)
    | Some "cache" ->
        Option.map
          (fun s ->
            Printf.sprintf "%s %s" s
              (if get "hit" J.get_bool = Some true then "(cache hit)"
               else "(cache miss)"))
          (get "stage" J.get_string)
    | Some "route-iteration" ->
        Some
          (Printf.sprintf "vpr-route iter %d, %d overused"
             (Option.value (get "iteration" J.get_int) ~default:0)
             (Option.value (get "overused" J.get_int) ~default:0))
    | Some "place-temperature" ->
        Some
          (Printf.sprintf "vpr-place step %d, accept %.0f%%"
             (Option.value (get "step" J.get_int) ~default:0)
             (100.0
             *. Option.value (get "accept_rate" J.get_float) ~default:0.0))
    | Some "heartbeat" -> Some "..."
    | _ -> None
  in
  match stat with
  | Some s -> Printf.eprintf "\r\027[K%-12s %s%!" design s
  | None -> ()

let clear_status () = Printf.eprintf "\r\027[K%!"

(* Submit with a progress stream: read the accepted line, then event
   lines (rendering each; appending raw lines to [events_oc]), until the
   completion record — the first response line without an "event"
   field.  A backpressure rejection arrives as that first line, before
   any event, so the caller's retry loop sees it like a plain submit. *)
let submit_streaming client events_oc design submit =
  Service.Client.send client (Service.Protocol.Submit submit);
  let first = Service.Client.recv client in
  if not (Service.Client.ok first) then first
  else begin
    let rec next () =
      let line = Service.Client.recv client in
      match J.member "event" line with
      | Some _ ->
          (match events_oc with
          | Some oc -> output_string oc (Obs.Emit.to_string line ^ "\n")
          | None -> ());
          render_event design line;
          next ()
      | None ->
          clear_status ();
          line
    in
    next ()
  end

(* One remote submit with bounded exponential backoff on transient
   rejections (the plain path delegates to Client.request_retry; the
   streaming path re-runs the submit/stream loop itself because the
   rejection arrives as the first stream line). *)
let remote_submit client ~retries ~wait_ms ~progress ~events_oc seed
    fixed_width timing_report period_ns source =
  let design = Filename.remove_extension (Filename.basename source) in
  let submit =
    make_submit seed fixed_width timing_report period_ns ~progress source
  in
  if not progress then
    Service.Client.request_retry ~retries ~wait_ms client
      (Service.Protocol.Submit submit)
  else
    let rec go attempt =
      let resp = submit_streaming client events_oc design submit in
      if
        (not (Service.Client.ok resp))
        && Service.Client.code resp = Some "backpressure"
        && attempt < retries
      then begin
        Unix.sleepf
          (Float.min 10_000.0
             (float_of_int wait_ms *. (2.0 ** float_of_int attempt))
          /. 1000.0);
        go (attempt + 1)
      end
      else resp
    in
    go 0

(* Write the same artifacts a local run would: BASE.bit (hex-decoded),
   BASE.result.json (the embedded per-design record, schema-identical
   to the batch driver's), BASE.timing.json when the server sent one. *)
let write_remote_outputs outdir source resp =
  let design =
    match Option.bind (J.member "design" resp) J.get_string with
    | Some d -> d
    | None -> Filename.remove_extension (Filename.basename source)
  in
  let base = Filename.concat outdir design in
  if not (Service.Client.ok resp) then begin
    Printf.printf "%-12s FAILED (remote): %s\n" design
      (Service.Client.error_message resp);
    false
  end
  else begin
    let result = J.member "result" resp in
    (match result with
    | Some r ->
        Tool_common.write_file (base ^ ".result.json")
          (Obs.Emit.to_string r ^ "\n")
    | None -> ());
    (match Option.bind (J.member "bitstream_hex" resp) J.get_string with
    | Some hex ->
        Tool_common.write_file (base ^ ".bit")
          (Tool_common.or_die (Service.Protocol.hex_decode hex))
    | None -> ());
    (match J.member "timing" resp with
    | Some timing ->
        Tool_common.write_file (base ^ ".timing.json")
          (Obs.Emit.to_string timing ^ "\n")
    | None -> ());
    let stat name =
      match Option.bind result (J.member name) with
      | Some (Obs.Emit.Int n) -> string_of_int n
      | _ -> "?"
    in
    Printf.printf "%-12s ok (remote) %s LUTs %s CLBs W=%s bits=%s -> %s\n"
      design (stat "luts") (stat "clbs") (stat "width") (stat "bits")
      (base ^ ".bit");
    true
  end

let run_remote socket input outdir seed fixed_width timing_report period_ns
    batch ~progress ~events_file ~retries ~wait_ms =
  let sources = if batch then Service.Manifest.read input else [ input ] in
  if sources = [] then failwith (input ^ ": no designs listed");
  let w0 = Unix.gettimeofday () in
  let events_oc = Option.map open_out events_file in
  let failed =
    Fun.protect
      ~finally:(fun () -> Option.iter close_out events_oc)
      (fun () ->
        let client = Service.Client.connect_retry ~retries ~wait_ms socket in
        Fun.protect
          ~finally:(fun () -> Service.Client.close client)
          (fun () ->
            List.fold_left
              (fun failed source ->
                let resp =
                  remote_submit client ~retries ~wait_ms ~progress ~events_oc
                    seed fixed_width timing_report period_ns source
                in
                if write_remote_outputs outdir source resp then failed
                else failed + 1)
              0 sources))
  in
  (match events_file with
  | Some path -> Printf.printf "events -> %s\n" path
  | None -> ());
  Printf.printf "remote: %d design(s), %d failed, %.2f s wall via %s -> %s\n"
    (List.length sources) failed
    (Unix.gettimeofday () -. w0)
    socket outdir;
  if failed > 0 then exit 1

(* ---------- entry ---------- *)

let run input outdir seed fixed_width jobs timing_report period_ns
    metrics_json trace_file no_incremental_sta batch no_cache cache_dir
    remote arch arch_sweep sweep_mixes sweep_widths progress events_file
    retries retry_wait_ms ledger suite =
  (try Sys.mkdir outdir 0o755 with Sys_error _ -> ());
  if arch_sweep then run_arch_sweep outdir sweep_mixes sweep_widths jobs
  else
    let input =
      match input with
      | Some i -> i
      | None -> failwith "INPUT is required (unless running --arch-sweep)"
    in
    match remote with
    | Some socket ->
        if ledger <> None then
          prerr_endline
            "amdrel_flow: --ledger is ignored with --remote (the record is \
             built from the local flow result; run the ledger on the \
             daemon side or compile locally)";
        (* --events alone also subscribes: an empty capture file from a
           non-streaming submit helps nobody *)
        run_remote socket input outdir seed fixed_width timing_report period_ns
          batch
          ~progress:(progress || events_file <> None)
          ~events_file ~retries ~wait_ms:retry_wait_ms
    | None ->
        if progress then
          prerr_endline
            "amdrel_flow: --progress streams from a daemon; without \
             --remote it is ignored (use --events FILE to capture the \
             event stream of a local run)";
        let cache_dir = if no_cache then None else Some cache_dir in
        let config =
          make_config arch seed fixed_width jobs timing_report period_ns
            no_incremental_sta cache_dir
        in
        if batch then
          run_batch input outdir config timing_report ledger suite jobs
        else
          run_single input outdir config timing_report metrics_json trace_file
            events_file ledger suite jobs

let input_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"INPUT"
        ~doc:
          "VHDL source to compile, or (with $(b,--batch)) a manifest \
           listing one VHDL path per line ($(b,#) comments and blank \
           lines ignored).  Not used with $(b,--arch-sweep).")

let outdir_arg =
  Arg.(
    value & opt string "flow_out"
    & info [ "d"; "outdir" ] ~docv:"DIR" ~doc:"output directory")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"placement seed")

let width_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "route-width" ] ~doc:"fixed channel width (skip the search)")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ]
        ~doc:
          "Domain pool size for the parallel stages (width search, \
           multi-start placement, batch compilation).  Default: the \
           AMDREL_JOBS environment variable or the machine's recommended \
           domain count.  Results are bit-identical for any value.")

let timing_report_arg =
  Arg.(
    value & flag
    & info [ "timing-report" ]
        ~doc:
          "Run the flow timing-driven and write a unified-STA path report \
           (pre-route and post-route critical paths, slack per endpoint) \
           as BASE.timing.txt and BASE.timing.json next to the other \
           products, in addition to printing it.  In batch mode, writes \
           BASE.timing.json per design.")

let period_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "period" ] ~docv:"NS"
        ~doc:
          "Target clock period in nanoseconds for the slack/WNS/TNS \
           figures (the platform's DETFFs clock on both edges, so half \
           the period budgets the combinational logic).  Implies \
           timing-driven place and route.  Without it slacks are \
           measured against the achieved critical path.")

let metrics_json_arg =
  Arg.(
    value & flag
    & info [ "metrics-json" ]
        ~doc:
          "Write the run's full typed metric registry (stage timers with \
           wall and CPU seconds, counters, gauges, histograms with \
           p50/p90) as BASE.metrics.json next to the other products.  \
           The schema is documented in docs/OBSERVABILITY.md.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run (nested spans \
           for every flow stage, PathFinder iteration and batch, \
           annealer temperature step and STA level sweep), loadable in \
           chrome://tracing or Perfetto.  Stages answered from the cache \
           run no code, so they are absent from the trace.")

let no_incremental_sta_arg =
  Arg.(
    value & flag
    & info [ "no-incremental-sta" ]
        ~doc:
          "Refresh the annealer's timing with a full STA per temperature \
           instead of the incremental cone update.  Results are \
           bit-identical either way; the flag exists to measure the \
           incremental path's speedup (see docs/EXPERIMENTS.md).")

let batch_arg =
  Arg.(
    value & flag
    & info [ "batch" ]
        ~doc:
          "Treat INPUT as a manifest of designs (one VHDL path per line) \
           and compile them all over the Domain pool, writing BASE.bit \
           and BASE.result.json (QoR summary + full metric registry, \
           schema in docs/OBSERVABILITY.md) per design into the output \
           directory, plus one summary line each on stdout.  Exits \
           non-zero if any design fails; the rest still complete.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the content-addressed stage cache: every stage \
           recomputes and nothing is read from or written to the cache \
           directory.  Outputs are byte-identical with or without the \
           cache; the flag exists for benchmarking and for pinning \
           cold-run telemetry.")

let cache_dir_arg =
  Arg.(
    value
    & opt string "_amdrel_cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory of the content-addressed stage-result store \
           (created on demand; safe to share between concurrent runs \
           and to delete at any time).  See docs/ARCHITECTURE.md for \
           the entry layout and the cache-key schema.")

let remote_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "remote" ] ~docv:"SOCKET"
        ~doc:
          "Submit to the amdreld compile-service daemon listening on the \
           given Unix-domain socket instead of compiling in-process.  \
           The daemon owns the stage cache and the domain pool; outputs \
           (BASE.bit, BASE.result.json, BASE.timing.json with \
           $(b,--timing-report)) are bit-identical to a local run and \
           land in the same places.  Works with $(b,--batch); the local \
           cache and jobs flags are the daemon's business and ignored.")

let arch_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "arch" ] ~docv:"FILE"
        ~doc:
          "Architecture file describing the target fabric (K, N, I, \
           channel width and the $(b,segment) mix lines — see the format \
           header in lib/fpga_arch/archfile.ml).  Default: the built-in \
           AMDREL platform (uniform length-1 segments).  The segment \
           spec is part of every route-stage cache key, so switching \
           architectures never reuses stale routings.")

let arch_sweep_arg =
  Arg.(
    value & flag
    & info [ "arch-sweep" ]
        ~doc:
          "Instead of compiling INPUT, sweep segment mixes (x channel \
           widths with $(b,--sweep-widths)) over the built-in bench \
           suite: each point runs the full flow on that fabric and \
           reports minimum channel width, critical path, power and \
           energy per cycle, as a table on stdout and \
           $(b,arch_sweep.json) in the output directory.  Points fan \
           out over the Domain pool; results are identical for any \
           $(b,--jobs).")

let sweep_mixes_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "sweep-mixes" ] ~docv:"MIX,..."
        ~doc:
          "Comma-separated segment mixes to sweep (e.g. \
           $(b,1xL1,2xL1+1xL4)).  Default: L1, L2 and L4 uniform fabrics \
           plus two mixed ones.")

let sweep_widths_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "sweep-widths" ] ~docv:"W,..."
        ~doc:
          "Fixed channel widths to pair with every mix; empty (default) \
           binary-searches the minimum width per point instead.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "With $(b,--remote): subscribe to the daemon's progress-event \
           stream for each submitted design and render a live status \
           line on stderr (stage begin/end, cache hits, PathFinder \
           iterations, annealer temperatures, heartbeats).  The final \
           outputs are byte-identical to a non-streaming run.  Schema in \
           docs/OBSERVABILITY.md.")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Persist the raw progress-event stream as newline-delimited \
           JSON: with $(b,--remote) the daemon's framed records exactly \
           as received (implies the subscription, with or without \
           $(b,--progress)); in local single-design mode the flow's own \
           event stream (drained at the end of the run).")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:
          "With $(b,--remote): retry up to $(docv) times, with bounded \
           exponential backoff, when the daemon is not accepting \
           connections yet (connection refused) or answers a submit with \
           a structured backpressure rejection.  Draining daemons are \
           never retried.  Default 0 (fail fast).")

let retry_wait_ms_arg =
  Arg.(
    value & opt int 200
    & info [ "retry-wait-ms" ] ~docv:"MS"
        ~doc:
          "Base backoff for $(b,--retry): attempt $(i,k) sleeps \
           $(docv)*2^$(i,k) milliseconds (capped at 10 s).")

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"DIR"
        ~doc:
          "Append one QoR/perf record per completed design to the run \
           ledger $(docv)/<suite>.jsonl (single and $(b,--batch) local \
           modes).  Fold and gate the ledger with $(b,amdrel_report).  \
           Schema in docs/OBSERVABILITY.md.")

let suite_arg =
  Arg.(
    value & opt string "suite"
    & info [ "suite" ] ~docv:"NAME"
        ~doc:"Suite name for $(b,--ledger) records (the ledger file stem).")

let cmd =
  Cmd.v
    (Cmd.info "amdrel_flow"
       ~doc:
         "Run the complete VHDL-to-bitstream design flow (single design \
          or --batch manifest), memoising stage results in a \
          content-addressed cache; --remote submits to an amdreld daemon \
          instead; --arch-sweep explores segment-mix architectures")
    Term.(
      const (fun i o s w j tr p mj tf ni b nc cd rm a asw sm sw pg ev rt rw ld
                 su ->
          Tool_common.protect (fun () ->
              run i o s w j tr p mj tf ni b nc cd rm a asw sm sw pg ev rt rw
                ld su))
      $ input_arg $ outdir_arg $ seed_arg $ width_arg $ jobs_arg
      $ timing_report_arg $ period_arg $ metrics_json_arg $ trace_arg
      $ no_incremental_sta_arg $ batch_arg $ no_cache_arg $ cache_dir_arg
      $ remote_arg $ arch_arg $ arch_sweep_arg $ sweep_mixes_arg
      $ sweep_widths_arg $ progress_arg $ events_arg $ retry_arg
      $ retry_wait_ms_arg $ ledger_arg $ suite_arg)

let () = exit (Cmd.eval cmd)
