(* amdrel_report: fold a run ledger into BENCH_<suite>.json, render the
   QoR trajectory, and gate on regressions.

   The ledger (lib/ledger, written by `amdrel_flow --ledger` and
   `bench/main.exe flow --ledger`) is the durable record; this tool is
   the read side: it groups records per design, writes the folded
   trajectory as one JSON file (the artifact CI uploads and the repo
   pins), prints a table, and compares each design's latest record
   against its previous comparable one — same design hash, params
   fingerprint and seed, so only records the determinism contract says
   must agree are compared.  A tracked metric moving past the tolerance
   in the bad direction (wmin/crit/power up, wns/tns down) exits 1. *)

open Cmdliner
module E = Obs.Emit
module L = Ledger

(* ---------- gate ---------- *)

type verdict = {
  v_design : string;
  v_metric : string;
  v_old : float;
  v_new : float;
}

(* Lower-better metrics; None when the record lacks the value. *)
let lower_better =
  [
    ("wmin", fun (r : L.t) -> Option.map float_of_int r.L.wmin);
    ("crit_s", fun (r : L.t) -> Some r.L.crit_s);
    ("power_w", fun (r : L.t) -> Some r.L.power_w);
  ]

(* Higher-better: slack metrics (<= 0; closer to 0 is better). *)
let higher_better =
  [
    ("wns_s", fun (r : L.t) -> Some r.L.wns_s);
    ("tns_s", fun (r : L.t) -> Some r.L.tns_s);
  ]

let comparable (a : L.t) (b : L.t) =
  a.L.design_hash = b.L.design_hash
  && a.L.params_fp = b.L.params_fp
  && a.L.seed = b.L.seed

let judge ~tolerance (prev : L.t) (latest : L.t) =
  let margin old = tolerance *. Float.max (Float.abs old) 1e-12 in
  let check acc (metric, get) ~worse =
    match (get prev, get latest) with
    | Some o, Some n when worse o n ->
        { v_design = latest.L.design; v_metric = metric; v_old = o; v_new = n }
        :: acc
    | _ -> acc
  in
  let acc =
    List.fold_left
      (fun acc m -> check acc m ~worse:(fun o n -> n > o +. margin o))
      [] lower_better
  in
  List.fold_left
    (fun acc m -> check acc m ~worse:(fun o n -> n < o -. margin o))
    acc higher_better
  |> List.rev

(* ---------- folding ---------- *)

let group_by_design records =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : L.t) ->
      if not (Hashtbl.mem tbl r.L.design) then begin
        order := r.L.design :: !order;
        Hashtbl.replace tbl r.L.design []
      end;
      Hashtbl.replace tbl r.L.design (r :: Hashtbl.find tbl r.L.design))
    records;
  List.rev_map
    (fun d -> (d, List.rev (Hashtbl.find tbl d)))
    !order
  |> List.rev

let wall_total (r : L.t) =
  List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.L.stage_wall

let trajectory_entry (r : L.t) =
  E.Obj
    [
      ("at", E.String r.L.at);
      ("git", E.String r.L.git);
      ("jobs", E.Int r.L.jobs);
      ("wmin", match r.L.wmin with Some w -> E.Int w | None -> E.Null);
      ("width", E.Int r.L.width);
      ("crit_s", E.Float r.L.crit_s);
      ("wns_s", E.Float r.L.wns_s);
      ("tns_s", E.Float r.L.tns_s);
      ("power_w", E.Float r.L.power_w);
      ("bits", E.Int r.L.bits);
      ("luts", E.Int r.L.luts);
      ("clbs", E.Int r.L.clbs);
      ("wall_s", E.Float (wall_total r));
      ("cache_hits", E.Int r.L.cache_hits);
      ("cache_misses", E.Int r.L.cache_misses);
    ]

let bench_json ~suite ~skipped ~tolerance ~groups ~verdicts ~compared =
  E.Obj
    [
      ("suite", E.String suite);
      ("generated", E.String (L.utc_now ()));
      ( "records",
        E.Int (List.fold_left (fun a (_, rs) -> a + List.length rs) 0 groups)
      );
      ("skipped", E.Int skipped);
      ( "designs",
        E.Obj
          (List.map
             (fun (design, runs) ->
               ( design,
                 E.Obj
                   [
                     ("runs", E.Int (List.length runs));
                     ( "latest",
                       L.to_json (List.nth runs (List.length runs - 1)) );
                     ("trajectory", E.List (List.map trajectory_entry runs));
                   ] ))
             groups) );
      ( "gate",
        E.Obj
          [
            ("tolerance", E.Float tolerance);
            ("compared", E.Int compared);
            ("ok", E.Bool (verdicts = []));
            ( "regressions",
              E.List
                (List.map
                   (fun v ->
                     E.Obj
                       [
                         ("design", E.String v.v_design);
                         ("metric", E.String v.v_metric);
                         ("previous", E.Float v.v_old);
                         ("latest", E.Float v.v_new);
                       ])
                   verdicts) );
          ] );
    ]

(* ---------- rendering ---------- *)

let print_table groups =
  Printf.printf "%-14s %4s %5s %5s %9s %9s %9s %6s\n" "design" "runs" "Wmin"
    "width" "crit_ns" "power_mW" "wall_s" "jobs";
  List.iter
    (fun (design, runs) ->
      let r = List.nth runs (List.length runs - 1) in
      Printf.printf "%-14s %4d %5s %5d %9.3f %9.3f %9.3f %6d\n" design
        (List.length runs)
        (match r.L.wmin with Some w -> string_of_int w | None -> "-")
        r.L.width (r.L.crit_s *. 1e9) (r.L.power_w *. 1e3) (wall_total r)
        r.L.jobs)
    groups

let run ledger_dir suite out tolerance no_gate quiet =
  let records, skipped = L.read ~dir:ledger_dir ~suite in
  if records = [] then begin
    Printf.eprintf "amdrel_report: no records for suite %S under %s\n" suite
      ledger_dir;
    exit 2
  end;
  let groups = group_by_design records in
  (* latest vs the previous comparable record, per design *)
  let compared = ref 0 in
  let verdicts =
    List.concat_map
      (fun (_, runs) ->
        let n = List.length runs in
        if n < 2 then []
        else
          let latest = List.nth runs (n - 1) in
          match
            List.find_opt (comparable latest)
              (List.rev (List.filteri (fun i _ -> i < n - 1) runs))
          with
          | None -> []
          | Some prev ->
              incr compared;
              judge ~tolerance prev latest)
      groups
  in
  let out_file =
    match out with Some f -> f | None -> Printf.sprintf "BENCH_%s.json" suite
  in
  let json =
    bench_json ~suite ~skipped ~tolerance ~groups ~verdicts
      ~compared:!compared
  in
  let oc = open_out out_file in
  output_string oc (E.to_string json ^ "\n");
  close_out oc;
  if not quiet then begin
    print_table groups;
    if skipped > 0 then
      Printf.printf "(%d malformed ledger line%s skipped)\n" skipped
        (if skipped = 1 then "" else "s");
    Printf.printf "wrote %s (%d records, %d design%s)\n" out_file
      (List.length records) (List.length groups)
      (if List.length groups = 1 then "" else "s")
  end;
  List.iter
    (fun v ->
      Printf.eprintf
        "REGRESSION %s.%s: %.6g -> %.6g (tolerance %.3g)\n" v.v_design
        v.v_metric v.v_old v.v_new tolerance)
    verdicts;
  if verdicts <> [] && not no_gate then exit 1

let ledger_arg =
  Arg.(
    value & opt string "bench/ledger"
    & info [ "ledger" ] ~docv:"DIR"
        ~doc:"Ledger directory holding $(docv)/<suite>.jsonl.")

let suite_arg =
  Arg.(
    value & opt string "suite"
    & info [ "suite" ] ~docv:"NAME" ~doc:"Suite name (the ledger file stem).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Output path for the folded report (default BENCH_<suite>.json).")

let tolerance_arg =
  Arg.(
    value & opt float 0.02
    & info [ "tolerance" ] ~docv:"FRAC"
        ~doc:
          "Relative regression tolerance: the latest record fails the \
           gate when a tracked metric is worse than the previous \
           comparable record by more than $(docv) of its magnitude.")

let no_gate_arg =
  Arg.(
    value & flag
    & info [ "no-gate" ]
        ~doc:
          "Report regressions on stderr but exit 0 anyway (fold-only \
           mode).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the trajectory table.")

let cmd =
  Cmd.v
    (Cmd.info "amdrel_report"
       ~doc:
         "Fold a run ledger into BENCH_<suite>.json, print the QoR \
          trajectory, and exit non-zero when a tracked metric regressed \
          beyond the tolerance")
    Term.(
      const (fun l s o t g q ->
          Tool_common.protect (fun () -> run l s o t g q))
      $ ledger_arg $ suite_arg $ out_arg $ tolerance_arg $ no_gate_arg
      $ quiet_arg)

let () = exit (Cmd.eval cmd)
