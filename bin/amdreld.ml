(* amdreld: the compile-service daemon.  A long-running process serving
   concurrent VHDL-to-bitstream compile requests over a Unix-domain
   socket, sharing one content-addressed stage cache and one domain
   budget across every client (lib/service documents the architecture;
   docs/ARCHITECTURE.md the protocol).  Submit with
   `amdrel_flow --remote SOCKET`, or speak the newline-delimited JSON
   protocol directly.  SIGTERM/SIGINT (or the shutdown verb) drain
   gracefully: queued and in-flight requests complete, responses flush,
   then the process exits 0. *)

open Cmdliner

let run socket queue_depth workers jobs no_cache cache_dir cache_max_bytes
    heartbeat_ms quiet =
  let log =
    if quiet then ignore
    else fun line -> Printf.eprintf "[amdreld] %s\n%!" line
  in
  let cfg =
    {
      Service.Server.socket_path = socket;
      queue_depth;
      workers;
      jobs = (match jobs with Some j -> j | None -> Util.Parallel.default_jobs ());
      cache_max_bytes;
      heartbeat_s = float_of_int (max 1 heartbeat_ms) /. 1000.0;
      flow =
        {
          Core.Flow.default_config with
          Core.Flow.cache_dir = (if no_cache then None else Some cache_dir);
        };
      log;
    }
  in
  let server = Service.Server.create cfg in
  let stop _signal = Service.Server.initiate_shutdown server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Service.Server.run server

let socket_arg =
  Arg.(
    value & opt string "amdreld.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on.  A leftover socket file from \
           a dead daemon is replaced; a live daemon on the same path is \
           an error.")

let queue_depth_arg =
  Arg.(
    value & opt int 32
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Admission-queue capacity.  Submits arriving with $(docv) \
           requests already queued are answered immediately with a \
           structured backpressure error instead of waiting.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Compile requests served concurrently.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Total Domain budget across concurrent requests; each request \
           runs its parallel stages with jobs/workers domains (at least \
           1).  Default: the AMDREL_JOBS environment variable or the \
           machine's recommended domain count.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Serve without the shared stage cache (every request recomputes).")

let cache_dir_arg =
  Arg.(
    value
    & opt string "_amdrel_cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory of the shared content-addressed stage cache.  \
           Requests for already-compiled designs answer from it across \
           clients and daemon restarts.")

let cache_max_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Byte budget for the shared cache.  The daemon evicts down to \
           it at startup and after completions — corrupt entries first, \
           then least recently used (hits refresh recency).  Unbounded \
           when omitted.")

let heartbeat_ms_arg =
  Arg.(
    value & opt int 1000
    & info [ "heartbeat-ms" ] ~docv:"MS"
        ~doc:
          "Progress-stream heartbeat cadence: a stream that has been \
           silent this long gets a synthetic heartbeat event, so watchers \
           can tell a long-running stage from a dead daemon.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet" ] ~doc:"Suppress the per-event log lines on stderr.")

let cmd =
  Cmd.v
    (Cmd.info "amdreld"
       ~doc:
         "Compile-service daemon: serve concurrent VHDL-to-bitstream \
          compile requests over a Unix-domain socket, sharing one stage \
          cache and one domain budget")
    Term.(
      const (fun s q w j nc cd cm hb qt ->
          Tool_common.protect (fun () -> run s q w j nc cd cm hb qt))
      $ socket_arg $ queue_depth_arg $ workers_arg $ jobs_arg $ no_cache_arg
      $ cache_dir_arg $ cache_max_bytes_arg $ heartbeat_ms_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
