(* Benchmark-circuit generator CLI: prints the VHDL of a named circuit
   from the evaluation suite (our stand-in for the MCNC set), so scripts
   and CI can feed the flow tools without checked-in sources, e.g.

     bcgen mult12 > mult12.vhd && amdrel_flow mult12.vhd --timing-report *)

open Cmdliner

(* the stress sizes the benches use, beyond the standard suite *)
let extras =
  [
    ("alu16", fun () -> Core.Bench_circuits.alu 16);
    ("mult8", fun () -> Core.Bench_circuits.multiplier 8);
    ("mult12", fun () -> Core.Bench_circuits.multiplier 12);
    ("counter32", fun () -> Core.Bench_circuits.counter 32);
    ("accum24", fun () -> Core.Bench_circuits.accumulator 24);
  ]

let catalog () =
  List.map (fun (n, v) -> (n, fun () -> v)) Core.Bench_circuits.suite @ extras

let run name list_only =
  if list_only then
    List.iter (fun (n, _) -> print_endline n) (catalog ())
  else
    match name with
    | None -> prerr_endline "bcgen: missing circuit name (try --list)"; exit 2
    | Some n -> (
        match List.assoc_opt n (catalog ()) with
        | Some gen -> print_string (gen ())
        | None ->
            Printf.eprintf "bcgen: unknown circuit %S (try --list)\n" n;
            exit 2)

let name_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"CIRCUIT")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"list available circuit names")

let cmd =
  Cmd.v
    (Cmd.info "bcgen"
       ~doc:"Print the VHDL of a benchmark circuit from the evaluation suite")
    Term.(const run $ name_arg $ list_arg)

let () = exit (Cmd.eval cmd)
