(* DUTYS: generate the architecture file describing the target FPGA. *)

open Cmdliner

let run output k n i_opt seg segments width =
  let i =
    match i_opt with
    | Some i -> i
    | None -> Fpga_arch.Params.recommended_inputs ~k ~n
  in
  let segs =
    match segments with
    | Some spec -> Fpga_arch.Params.segments_of_string spec
    | None -> []
  in
  let params =
    Fpga_arch.Params.validate
      {
        Fpga_arch.Params.amdrel with
        Fpga_arch.Params.k;
        n;
        i;
        segment_length = seg;
        segments = segs;
        switch_width = width;
      }
  in
  Fpga_arch.Archfile.to_file output params;
  Printf.printf "%s: K=%d N=%d I=%d seg=%s switch=%gx (%d config bits/CLB)\n"
    output k n i
    (Fpga_arch.Params.mix_name params)
    width
    (Fpga_arch.Params.clb_config_bits params)

let output_arg =
  Arg.(
    value
    & opt string "fpga.arch"
    & info [ "o"; "output" ] ~docv:"OUTPUT.arch" ~doc:"architecture file")

let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~doc:"LUT inputs")
let n_arg = Arg.(value & opt int 5 & info [ "n" ] ~doc:"BLEs per CLB")

let i_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "i" ] ~doc:"CLB inputs (default: the (K/2)(N+1) rule)")

let seg_arg =
  Arg.(
    value & opt int 1
    & info [ "segment" ]
        ~doc:"uniform wire segment length (ignored with $(b,--segments))")

let segments_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "segments" ] ~docv:"MIX"
        ~doc:
          "mixed-length segment spec, e.g. $(b,4xL1+4xL2+2xL4): each \
           term contributes COUNT tracks of length L to the repeating \
           per-channel pattern (Fc 1.0, min-width/double-spacing metal; \
           edit the generated file's $(b,segment) lines for per-type Fc \
           or metal)")

let width_arg =
  Arg.(
    value & opt float 10.0
    & info [ "switch-width" ] ~doc:"routing switch width (x minimum)")

let cmd =
  Cmd.v
    (Cmd.info "dutys" ~doc:"Generate the FPGA architecture description file")
    Term.(
      const (fun o k n i s sm w ->
          Tool_common.protect (fun () -> run o k n i s sm w))
      $ output_arg $ k_arg $ n_arg $ i_arg $ seg_arg $ segments_arg
      $ width_arg)

let () = exit (Cmd.eval cmd)
