(* Fabric emulation: load a decoded bitstream into a software model of the
   FPGA and reconstruct the logic it implements.

   This is the strongest verification DAGGER offers: connectivity is
   derived purely from the configuration — the ON pass transistors and
   connection-box switches form electrical nets exactly as they would in
   silicon (pass transistors are bidirectional, so a routed net is simply a
   connected component of configured switches), LUT contents come from the
   LUT bits, and the local crossbar codes select each LUT input.  The
   resulting Logic network can be simulated against the original design. *)

open Netlist

exception Invalid_configuration of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_configuration s)) fmt

let desc_str (tag, a, b, t, _) =
  match tag with
  | 0 -> Printf.sprintf "chanx(%d,%d,t%d)" a b t
  | 1 -> Printf.sprintf "chany(%d,%d,t%d)" a b t
  | 2 -> Printf.sprintf "opin(b%d,p%d)" a b
  | 3 -> Printf.sprintf "ipin(b%d,p%d)" a b
  | _ -> Printf.sprintf "desc(%d,%d,%d,%d)" tag a b t

(* Device-geometry validation: every configured routing switch must be a
   real switch point of the target device's segmented fabric.  Wire
   descriptors must name wires the track plan actually lays out,
   wire-wire switches may only join two same-track wires where both END
   (the disjoint Fs = 3 box taps segment endpoints only — a long wire
   passing over a switch point has no transistor there), and
   connection-box links must join a pin to a wire running past its
   block's tile.  A bitstream built for a different segment mix fails
   here, loudly, instead of configuring nonsense. *)
let validate_geometry (params : Fpga_arch.Params.t) (cfg : Layout.config) =
  let width = cfg.Layout.width in
  let expected = Layout.track_lengths params ~width in
  if cfg.Layout.track_lengths <> expected then
    fail "bitstream track table [%s] does not match device segment mix %s"
      (String.concat ";"
         (Array.to_list (Array.map string_of_int cfg.Layout.track_lengths)))
      (Fpga_arch.Params.mix_name params);
  let spans_x =
    Array.init width (fun t ->
        Route.Rrgraph.track_spans params ~width ~extent:cfg.Layout.nx ~track:t)
  in
  let spans_y =
    Array.init width (fun t ->
        Route.Rrgraph.track_spans params ~width ~extent:cfg.Layout.ny ~track:t)
  in
  (* tiles of the wire a descriptor names, None if no such wire *)
  let wire_tiles = function
    | 0, xs, _, t, _ when t >= 0 && t < width ->
        List.assoc_opt xs spans_x.(t)
    | 1, _, ys, t, _ when t >= 0 && t < width ->
        List.assoc_opt ys spans_y.(t)
    | _ -> None
  in
  (* the switch points S(x, y) at a wire's two ends *)
  let endpoints desc =
    match (wire_tiles desc, desc) with
    | None, _ -> fail "%s is not a wire of this fabric" (desc_str desc)
    | Some tiles, (0, xs, y, _, _) -> [ (xs - 1, y); (xs + tiles - 1, y) ]
    | Some tiles, (_, x, ys, _, _) -> [ (x, ys - 1); (x, ys + tiles - 1) ]
  in
  let track (_, _, _, t, _) = t in
  List.iter
    (fun (a, b) ->
      if track a <> track b then
        fail "switch %s-%s joins different tracks" (desc_str a) (desc_str b);
      let ea = endpoints a in
      if not (List.exists (fun p -> List.mem p ea) (endpoints b)) then
        fail "switch %s-%s does not join segment endpoints" (desc_str a)
          (desc_str b))
    cfg.Layout.switches;
  let block_xy = Hashtbl.create 16 in
  List.iter
    (fun (clb : Layout.clb_config) ->
      Hashtbl.replace block_xy clb.Layout.block (clb.Layout.x, clb.Layout.y))
    cfg.Layout.clbs;
  List.iter
    (fun (p : Layout.pad_config) ->
      Hashtbl.replace block_xy p.Layout.pad_block (p.Layout.pad_x, p.Layout.pad_y))
    cfg.Layout.pads;
  (* the wire the connection box at tile coordinate [v] taps on a track:
     the same covering-start formula the RR builder uses, including its
     clamp to the channel (edge pads sit off-channel, so their boxes tap
     the nearest wire — tile 0 taps the wire starting at 1) *)
  let segs = Array.of_list (Fpga_arch.Params.effective_segments params) in
  let plan = Fpga_arch.Params.track_plan params ~width in
  let covering_start t v =
    let len = segs.(fst plan.(t)).Fpga_arch.Params.s_length in
    let offset = snd plan.(t) in
    let rel = v - (1 - offset) in
    max 1 (v - (rel mod len))
  in
  let adjacent (x, y) desc =
    match (wire_tiles desc, desc) with
    | None, _ -> false
    | Some _, (0, xs, wy, t, _) ->
        (wy = y - 1 || wy = y) && xs = covering_start t x
    | Some _, (_, wx, ys, t, _) ->
        (wx = x - 1 || wx = x) && ys = covering_start t y
  in
  List.iter
    (fun (a, b) ->
      let tag (t, _, _, _, _) = t in
      let wire, pin =
        if tag a <= 1 && tag b >= 2 then (a, b)
        else if tag b <= 1 && tag a >= 2 then (b, a)
        else fail "pin link %s-%s is not pin-to-wire" (desc_str a) (desc_str b)
      in
      let _, blk, _, _, _ = pin in
      match Hashtbl.find_opt block_xy blk with
      | None -> fail "pin link %s references unknown block %d" (desc_str pin) blk
      | Some xy ->
          if not (adjacent xy wire) then
            fail "pin link %s-%s joins a pin to a wire not passing its tile"
              (desc_str pin) (desc_str wire))
    cfg.Layout.pin_links

(* Build the configured netlist.  [params] is the device's architecture
   (K, N, I), as a programmer would know it from the architecture file. *)
let to_logic (params : Fpga_arch.Params.t) (cfg : Layout.config) =
  validate_geometry params cfg;
  let k = params.Fpga_arch.Params.k in
  let n = params.Fpga_arch.Params.n in
  let i_pins = params.Fpga_arch.Params.i in
  (* ---- electrical nets: connected components of configured switches ---- *)
  let descs = Hashtbl.create 256 in
  let touch d =
    if not (Hashtbl.mem descs d) then Hashtbl.replace descs d (Hashtbl.length descs)
  in
  List.iter (fun (a, b) -> touch a; touch b) cfg.Layout.switches;
  List.iter (fun (a, b) -> touch a; touch b) cfg.Layout.pin_links;
  let uf = Util.Union_find.create (max 1 (Hashtbl.length descs)) in
  let union a b = Util.Union_find.union uf (Hashtbl.find descs a) (Hashtbl.find descs b) in
  List.iter (fun (a, b) -> union a b) cfg.Layout.switches;
  List.iter (fun (a, b) -> union a b) cfg.Layout.pin_links;
  let component d =
    match Hashtbl.find_opt descs d with
    | Some idx -> Some (Util.Union_find.find uf idx)
    | None -> None
  in
  (* ---- the reconstructed network ---- *)
  let net = Logic.create ~model:(cfg.Layout.design ^ "_fabric") () in
  (* driver signal of each electrical component, keyed by component root *)
  let comp_driver = Hashtbl.create 64 in
  (* BLE output signals: (block, slot) -> signal id (created lazily so
     feedback and cross-CLB references resolve in any order) *)
  let ble_out = Hashtbl.create 64 in
  List.iter
    (fun (clb : Layout.clb_config) ->
      Array.iteri
        (fun j (_ : Layout.ble_config) ->
          let nm = Printf.sprintf "clb%d_ble%d" clb.Layout.block j in
          Hashtbl.replace ble_out (clb.Layout.block, j) (Logic.add_input net nm))
        clb.Layout.bles)
    cfg.Layout.clbs;
  (* input pads drive their components *)
  List.iter
    (fun (p : Layout.pad_config) ->
      if p.Layout.pad_is_input then begin
        let id = Logic.add_input net p.Layout.pad_name in
        match component (2, p.Layout.pad_block, 0, 0, 0) with
        | Some root -> Hashtbl.replace comp_driver root id
        | None -> () (* an unconnected input pad is legal *)
      end)
    cfg.Layout.pads;
  (* CLB output pins drive their components *)
  List.iter
    (fun (clb : Layout.clb_config) ->
      Array.iteri
        (fun j (ble : Layout.ble_config) ->
          ignore ble;
          match component (2, clb.Layout.block, j, 0, 0) with
          | Some root ->
              Hashtbl.replace comp_driver root
                (Hashtbl.find ble_out (clb.Layout.block, j))
          | None -> ())
        clb.Layout.bles)
    cfg.Layout.clbs;
  (* signal arriving at an input pin, if its component is driven *)
  let at_ipin block pin =
    match component (3, block, pin, 0, 0) with
    | Some root -> Hashtbl.find_opt comp_driver root
    | None -> None
  in
  let const0 = lazy (Logic.add_const net (Logic.fresh_name net "gnd") false) in
  (* ---- realise each BLE ---- *)
  List.iter
    (fun (clb : Layout.clb_config) ->
      Array.iteri
        (fun j (ble : Layout.ble_config) ->
          let out = Hashtbl.find ble_out (clb.Layout.block, j) in
          if ble.Layout.lut_bits = 0 && not ble.Layout.registered then
            (* unused slot: tie low *)
            Logic.set_driver net out (Logic.Const false)
          else begin
            (* resolve the K crossbar codes *)
            let fanins =
              Array.map
                (fun code ->
                  if code < i_pins then
                    match at_ipin clb.Layout.block code with
                    | Some s -> s
                    | None ->
                        fail "CLB %d input pin %d selected but undriven"
                          clb.Layout.block code
                  else if code < i_pins + n then
                    Hashtbl.find ble_out (clb.Layout.block, code - i_pins)
                  else Lazy.force const0)
                ble.Layout.input_sources
            in
            if Array.length fanins <> k then
              fail "CLB %d BLE %d has %d sources" clb.Layout.block j
                (Array.length fanins);
            let tt = Tt.create k ble.Layout.lut_bits in
            (* drop don't-care inputs so the fabric netlist stays tidy *)
            let tt, sup = Tt.compact tt in
            let fanins = Array.of_list (List.map (fun s -> fanins.(s)) sup) in
            if ble.Layout.registered then begin
              let d =
                if Tt.arity tt = 0 then
                  Logic.add_const net (Logic.fresh_name net "c")
                    (Tt.is_const1 tt)
                else
                  Logic.add_gate net (Logic.fresh_name net "lut") tt fanins
              in
              Logic.set_driver net out
                (Logic.Latch { data = d; init = ble.Layout.ff_init })
            end
            else if Tt.arity tt = 0 then
              Logic.set_driver net out (Logic.Const (Tt.is_const1 tt))
            else Logic.set_driver net out (Logic.Gate { tt; fanins })
          end)
        clb.Layout.bles)
    cfg.Layout.clbs;
  (* ---- output pads ---- *)
  List.iter
    (fun (p : Layout.pad_config) ->
      if not p.Layout.pad_is_input then begin
        let src =
          match at_ipin p.Layout.pad_block 0 with
          | Some s -> s
          | None -> fail "output pad %s is undriven" p.Layout.pad_name
        in
        (* a pad-to-pad passthrough makes the output name coincide with the
           input pad's signal: mark that signal as the output directly *)
        if Logic.name net src = p.Layout.pad_name then Logic.set_output net src
        else begin
          let id = Logic.add_gate net p.Layout.pad_name Tt.buf [| src |] in
          Logic.set_output net id
        end
      end)
    cfg.Layout.pads;
  net

(* Emulate a raw bitstream string directly. *)
let of_bitstream (params : Fpga_arch.Params.t) bytes =
  to_logic params (Frames.decode bytes)

(* The programmer's final check: the configured fabric must behave exactly
   like the mapped netlist the flow produced. *)
let functionally_equivalent ?(vectors = 64) ?(cycles = 8)
    (params : Fpga_arch.Params.t) ~reference bytes =
  let fabric = of_bitstream params bytes in
  (* the fabric has no clock pin; output names match the reference's
     primary outputs, input pads its primary inputs *)
  Techmap.Simcheck.is_equivalent ~vectors ~cycles reference fabric
