(** Fabric emulation: load a decoded bitstream into a software model of
    the FPGA and reconstruct the logic it implements.

    Connectivity is derived purely from the configuration — the ON pass
    transistors form electrical nets exactly as in silicon (pass
    transistors are bidirectional, so a routed net is a connected
    component of configured switches); LUT contents come from the LUT
    bits; crossbar codes select each LUT input.  The resulting network
    can be simulated against the original design. *)

exception Invalid_configuration of string
(** An electrically or geometrically inconsistent configuration
    (undriven selected pin, undriven output pad, bad source code, a
    switch descriptor that is not a real switch point of the device's
    segmented fabric). *)

val validate_geometry : Fpga_arch.Params.t -> Layout.config -> unit
(** Check the configuration against the device geometry: the track
    table must match the device's segment mix, every wire descriptor
    must name a wire the track plan lays out, wire-wire switches may
    only join two same-track wires at a shared segment endpoint (the
    disjoint Fs = 3 box taps endpoints only), and connection-box links
    must join a pin to a wire passing its block's tile.
    @raise Invalid_configuration otherwise. *)

val to_logic : Fpga_arch.Params.t -> Layout.config -> Netlist.Logic.t
(** Reconstruct the implemented netlist (after {!validate_geometry}).
    Input pads become primary inputs under their pad names; output pads
    become primary outputs. *)

val of_bitstream : Fpga_arch.Params.t -> string -> Netlist.Logic.t
(** Decode and reconstruct in one step.
    @raise Frames.Corrupt / Invalid_configuration. *)

val functionally_equivalent :
  ?vectors:int -> ?cycles:int -> Fpga_arch.Params.t ->
  reference:Netlist.Logic.t -> string -> bool
(** The programmer's final check: the configured fabric must simulate
    identically to the mapped netlist the flow produced. *)
