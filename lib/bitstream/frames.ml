(* Bitstream serialisation: framed binary with a CRC-32 trailer.

   Layout:
     magic "AMD2"
     u32 header length | header: design name, nx, ny, width, k, n, i
     width x u32       | per-track declared segment length (device geometry
                         the switch descriptors are laid out against)
     u32 clb count     | per CLB: x, y, cluster, N x (lut_bits, flags, K sources)
     u32 pad count     | per pad: block, x, y, sub, direction, name
     u32 switch count  | per switch: two node descriptors (5 x u32 each)
     u32 pin-link count| same encoding
     u32 CRC-32 of everything above

   AMD2 extends AMD1 with the per-track segment-length table; AMD1
   streams (uniform length-1 era) are no longer accepted. *)

exception Corrupt of string

let magic = "AMD2"

(* ---------- primitive writers/readers ---------- *)

let w32 buf v =
  for shift = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * shift)) land 0xFF))
  done

let wstr buf s =
  w32 buf (String.length s);
  Buffer.add_string buf s

type reader = { data : string; mutable pos : int }

let r32 r =
  if r.pos + 4 > String.length r.data then raise (Corrupt "truncated");
  let v = ref 0 in
  for shift = 3 downto 0 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + shift]
  done;
  r.pos <- r.pos + 4;
  !v

let rstr r =
  let len = r32 r in
  if r.pos + len > String.length r.data then raise (Corrupt "truncated string");
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let w_desc buf (a, b, c, d, e) =
  w32 buf a; w32 buf b; w32 buf c; w32 buf d; w32 buf e

let r_desc r =
  let a = r32 r in
  let b = r32 r in
  let c = r32 r in
  let d = r32 r in
  let e = r32 r in
  (a, b, c, d, e)

(* ---------- encode ---------- *)

let encode (params : Fpga_arch.Params.t) (cfg : Layout.config) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  wstr buf cfg.Layout.design;
  w32 buf cfg.Layout.nx;
  w32 buf cfg.Layout.ny;
  w32 buf cfg.Layout.width;
  w32 buf params.Fpga_arch.Params.k;
  w32 buf params.Fpga_arch.Params.n;
  w32 buf params.Fpga_arch.Params.i;
  if Array.length cfg.Layout.track_lengths <> cfg.Layout.width then
    raise
      (Corrupt
         (Printf.sprintf "track table has %d entries for width %d"
            (Array.length cfg.Layout.track_lengths)
            cfg.Layout.width));
  Array.iter (fun l -> w32 buf l) cfg.Layout.track_lengths;
  w32 buf (List.length cfg.Layout.clbs);
  List.iter
    (fun (clb : Layout.clb_config) ->
      w32 buf clb.Layout.x;
      w32 buf clb.Layout.y;
      w32 buf clb.Layout.cluster;
      w32 buf clb.Layout.block;
      Array.iter
        (fun (ble : Layout.ble_config) ->
          w32 buf ble.Layout.lut_bits;
          w32 buf
            ((if ble.Layout.registered then 1 else 0)
            lor (if ble.Layout.clock_enable then 2 else 0)
            lor if ble.Layout.ff_init then 4 else 0);
          Array.iter (fun s -> w32 buf s) ble.Layout.input_sources)
        clb.Layout.bles)
    cfg.Layout.clbs;
  w32 buf (List.length cfg.Layout.pads);
  List.iter
    (fun (p : Layout.pad_config) ->
      w32 buf p.Layout.pad_block;
      w32 buf p.Layout.pad_x;
      w32 buf p.Layout.pad_y;
      w32 buf p.Layout.pad_sub;
      w32 buf (if p.Layout.pad_is_input then 1 else 0);
      wstr buf p.Layout.pad_name)
    cfg.Layout.pads;
  w32 buf (List.length cfg.Layout.switches);
  List.iter
    (fun (a, b) -> w_desc buf a; w_desc buf b)
    cfg.Layout.switches;
  w32 buf (List.length cfg.Layout.pin_links);
  List.iter
    (fun (a, b) -> w_desc buf a; w_desc buf b)
    cfg.Layout.pin_links;
  let body = Buffer.contents buf in
  let crc = Crc.of_string body in
  let out = Buffer.create (String.length body + 4) in
  Buffer.add_string out body;
  w32 out (Int32.to_int (Int32.logand crc 0xFFFFFFFFl) land 0xFFFFFFFF);
  Buffer.contents out

(* ---------- decode ---------- *)

let decode data =
  if String.length data < 8 then raise (Corrupt "too short");
  let body = String.sub data 0 (String.length data - 4) in
  let r = { data; pos = String.length data - 4 } in
  let stored_crc = r32 r in
  let crc = Int32.to_int (Int32.logand (Crc.of_string body) 0xFFFFFFFFl) land 0xFFFFFFFF in
  if stored_crc <> crc then raise (Corrupt "CRC mismatch");
  let r = { data = body; pos = 0 } in
  let m = String.sub body 0 4 in
  r.pos <- 4;
  if m <> magic then raise (Corrupt "bad magic");
  let design = rstr r in
  let nx = r32 r in
  let ny = r32 r in
  let width = r32 r in
  let k = r32 r in
  let n = r32 r in
  let i = r32 r in
  let track_lengths = Array.init width (fun _ -> r32 r) in
  let n_clbs = r32 r in
  let clbs =
    List.init n_clbs (fun _ ->
        let x = r32 r in
        let y = r32 r in
        let cluster = r32 r in
        let block = r32 r in
        let bles =
          Array.init n (fun _ ->
              let lut_bits = r32 r in
              let flags = r32 r in
              let input_sources = Array.init k (fun _ -> r32 r) in
              {
                Layout.lut_bits;
                registered = flags land 1 <> 0;
                clock_enable = flags land 2 <> 0;
                ff_init = flags land 4 <> 0;
                input_sources;
              })
        in
        { Layout.x; y; cluster; block; bles })
  in
  let n_pads = r32 r in
  let pads =
    List.init n_pads (fun _ ->
        let pad_block = r32 r in
        let pad_x = r32 r in
        let pad_y = r32 r in
        let pad_sub = r32 r in
        let dir = r32 r in
        let pad_name = rstr r in
        {
          Layout.pad_block;
          pad_x;
          pad_y;
          pad_sub;
          pad_is_input = dir = 1;
          pad_name;
        })
  in
  let n_sw = r32 r in
  let switches = List.init n_sw (fun _ ->
      let a = r_desc r in
      let b = r_desc r in
      (a, b))
  in
  let n_pl = r32 r in
  let pin_links = List.init n_pl (fun _ ->
      let a = r_desc r in
      let b = r_desc r in
      (a, b))
  in
  ignore i;
  { Layout.design; nx; ny; width; track_lengths; clbs; pads; switches;
    pin_links }
