(** Bitstream serialisation: framed binary with a CRC-32 trailer.

    Layout: magic "AMD2"; header (design name, nx, ny, width, K, N, I);
    per-track segment-length table; CLB frames; pad table; routing
    switch and pin-link descriptors; CRC-32 of everything above.  AMD2
    extends AMD1 with the track table for mixed-length segmented
    fabrics; AMD1 streams are no longer accepted. *)

exception Corrupt of string

val magic : string

val encode : Fpga_arch.Params.t -> Layout.config -> string

val decode : string -> Layout.config
(** @raise Corrupt on truncation, bad magic or CRC mismatch. *)
