(* Configuration extraction: from a placed-and-routed design to the explicit
   per-tile and per-switch configuration the bitstream encodes.

   CLB tile bits follow the platform of §3.1: per BLE a 2^K-bit LUT, an
   output-register select and a clock enable; a fully connected local
   crossbar gives every LUT input a source code (cluster input pin,
   BLE feedback, or unconnected).  Routing bits are the ON pass transistors
   (wire-to-wire) and the pin connection-box switches actually used. *)

open Netlist

type ble_config = {
  lut_bits : int;          (* 2^K bits; replicated over unused inputs *)
  registered : bool;
  clock_enable : bool;
  ff_init : bool;          (* power-up state of the flip-flop *)
  input_sources : int array; (* K codes: 0..I-1 pin, I..I+N-1 feedback,
                                I+N = unconnected *)
}

type clb_config = {
  x : int;
  y : int;
  cluster : int;
  block : int;               (* block index, as used in pin descriptors *)
  bles : ble_config array;   (* N entries; unused slots all-zero *)
}

(* A routing switch identified by its two wire endpoints (canonical node
   descriptors, see [node_desc]). *)
type node_desc = int * int * int * int * int

(* IO pad record: where the pad sits and which external signal it carries
   (the programming-file pin map that accompanies a device bitstream). *)
type pad_config = {
  pad_block : int; (* block index, as used in pin node descriptors *)
  pad_x : int;
  pad_y : int;
  pad_sub : int;
  pad_is_input : bool;
  pad_name : string;
}

type config = {
  design : string;
  nx : int;
  ny : int;
  width : int;
  track_lengths : int array; (* declared segment length per track: the
                                device geometry a programmer needs to
                                place the switch descriptors — and the
                                compatibility check [Fabric] enforces *)
  clbs : clb_config list;
  pads : pad_config list;
  switches : (node_desc * node_desc) list;   (* wire-wire pass transistors *)
  pin_links : (node_desc * node_desc) list;  (* pin-wire connection boxes *)
}

(* Per-track declared segment length, normalised from the segment spec:
   two specs that lay out the same tracks (e.g. the legacy uniform
   [segment_length] and an explicit single-entry mix) yield the same
   table, which keeps their bitstreams byte-identical. *)
let track_lengths (params : Fpga_arch.Params.t) ~width =
  let segs = Array.of_list (Fpga_arch.Params.effective_segments params) in
  Array.map
    (fun (si, _) -> segs.(si).Fpga_arch.Params.s_length)
    (Fpga_arch.Params.track_plan params ~width)

let node_desc (g : Route.Rrgraph.t) nd : node_desc =
  match g.Route.Rrgraph.nodes.(nd).Route.Rrgraph.kind with
  | Route.Rrgraph.Chanx (xs, y, t) -> (0, xs, y, t, 0)
  | Route.Rrgraph.Chany (x, ys, t) -> (1, x, ys, t, 0)
  | Route.Rrgraph.Opin (b, p) -> (2, b, p, 0, 0)
  | Route.Rrgraph.Ipin (b, p) -> (3, b, p, 0, 0)
  | Route.Rrgraph.Sink b -> (4, b, 0, 0, 0)

let is_wire (g : Route.Rrgraph.t) nd =
  match g.Route.Rrgraph.nodes.(nd).Route.Rrgraph.kind with
  | Route.Rrgraph.Chanx _ | Route.Rrgraph.Chany _ -> true
  | _ -> false

let is_pin (g : Route.Rrgraph.t) nd =
  match g.Route.Rrgraph.nodes.(nd).Route.Rrgraph.kind with
  | Route.Rrgraph.Opin _ | Route.Rrgraph.Ipin _ -> true
  | _ -> false

(* Pad a truth table out to [k] variables (unused inputs don't care). *)
let pad_tt tt k =
  let arity = Tt.arity tt in
  if arity > k then invalid_arg "Layout.pad_tt: LUT too wide";
  let perm = Array.init arity (fun i -> i) in
  ignore perm;
  (* evaluate tt on the low [arity] variables of each k-var row *)
  let bits = ref 0 in
  for row = 0 to (1 lsl k) - 1 do
    if Tt.eval tt (row land ((1 lsl arity) - 1)) then
      bits := !bits lor (1 lsl row)
  done;
  !bits

let extract (routed : Route.Router.routed) =
  let problem = routed.Route.Router.problem in
  let packing = problem.Place.Problem.packing in
  let lnet = packing.Pack.Cluster.net in
  let g = routed.Route.Router.graph in
  let params = g.Route.Rrgraph.params in
  let placement = routed.Route.Router.placement in
  let k = params.Fpga_arch.Params.k in
  let n = params.Fpga_arch.Params.n in
  let i_pins = params.Fpga_arch.Params.i in
  (* ---- input pin assignment from routing: (block, signal) -> ipin ---- *)
  let pin_of = Hashtbl.create 64 in
  Array.iter
    (fun (tr : Route.Pathfinder.route_tree) ->
      let net = problem.Place.Problem.nets.(tr.Route.Pathfinder.net_index) in
      List.iter
        (fun (v, parent) ->
          match g.Route.Rrgraph.nodes.(v).Route.Rrgraph.kind with
          | Route.Rrgraph.Sink b -> (
              match g.Route.Rrgraph.nodes.(parent).Route.Rrgraph.kind with
              | Route.Rrgraph.Ipin (_, pin) ->
                  Hashtbl.replace pin_of (b, net.Place.Problem.signal) pin
              | _ -> ())
          | _ -> ())
        tr.Route.Pathfinder.parents)
    routed.Route.Router.result.Route.Pathfinder.trees;
  (* block index of each cluster *)
  let block_of_cluster = Hashtbl.create 16 in
  Array.iteri
    (fun bidx kind ->
      match kind with
      | Place.Problem.Cluster_block cid -> Hashtbl.replace block_of_cluster cid bidx
      | _ -> ())
    problem.Place.Problem.blocks;
  (* ---- CLB configs ---- *)
  let clbs =
    Array.to_list packing.Pack.Cluster.clusters
    |> List.map (fun (c : Pack.Cluster.t) ->
           let bidx = Hashtbl.find block_of_cluster c.Pack.Cluster.id in
           let x, y = Place.Placement.coords placement bidx in
           let slot_of_signal = Hashtbl.create 8 in
           List.iteri
             (fun j (b : Pack.Ble.t) ->
               Hashtbl.replace slot_of_signal b.Pack.Ble.output j)
             c.Pack.Cluster.bles;
           let source_code s =
             match Hashtbl.find_opt slot_of_signal s with
             | Some j -> i_pins + j (* local feedback *)
             | None -> (
                 match Hashtbl.find_opt pin_of (bidx, s) with
                 | Some pin -> pin
                 | None -> i_pins + n (* unconnected (e.g. global clock) *))
           in
           let bles =
             Array.init n (fun j ->
                 match List.nth_opt c.Pack.Cluster.bles j with
                 | None ->
                     {
                       lut_bits = 0;
                       registered = false;
                       clock_enable = false;
                       ff_init = false;
                       input_sources = Array.make k (i_pins + n);
                     }
                 | Some b ->
                     let tt, fanins =
                       match b.Pack.Ble.lut with
                       | Some lsig -> (
                           match Logic.driver lnet lsig with
                           | Logic.Gate { tt; fanins } -> (tt, Array.to_list fanins)
                           | Logic.Const v ->
                               (* constant-generator LUT *)
                               ((if v then Tt.const1 0 else Tt.const0 0), [])
                           | _ -> (Tt.buf, [ lsig ]))
                       | None ->
                           (* FF-only BLE: LUT in buffer mode on input 0 *)
                           (Tt.buf, b.Pack.Ble.inputs)
                     in
                     let sources =
                       Array.init k (fun idx ->
                           match List.nth_opt fanins idx with
                           | Some s -> source_code s
                           | None -> i_pins + n)
                     in
                     let ff_init =
                       match b.Pack.Ble.ff with
                       | Some f -> (
                           match Logic.driver lnet f with
                           | Logic.Latch { init; _ } -> init
                           | _ -> false)
                       | None -> false
                     in
                     {
                       lut_bits = pad_tt tt k;
                       registered = b.Pack.Ble.ff <> None;
                       clock_enable = b.Pack.Ble.ff <> None;
                       ff_init;
                       input_sources = sources;
                     })
           in
           { x; y; cluster = c.Pack.Cluster.id; block = bidx; bles })
  in
  (* ---- routing switches in use ---- *)
  let switch_set = Hashtbl.create 256 in
  let pin_set = Hashtbl.create 256 in
  Array.iter
    (fun (tr : Route.Pathfinder.route_tree) ->
      List.iter
        (fun (v, parent) ->
          if is_wire g v && is_wire g parent then begin
            let a = node_desc g v and b = node_desc g parent in
            let key = if a < b then (a, b) else (b, a) in
            Hashtbl.replace switch_set key ()
          end
          else if (is_pin g v && is_wire g parent)
                  || (is_wire g v && is_pin g parent) then begin
            let a = node_desc g v and b = node_desc g parent in
            let key = if a < b then (a, b) else (b, a) in
            Hashtbl.replace pin_set key ()
          end)
        tr.Route.Pathfinder.parents)
    routed.Route.Router.result.Route.Pathfinder.trees;
  let sorted tbl = Hashtbl.fold (fun kv () acc -> kv :: acc) tbl [] |> List.sort compare in
  (* ---- IO pads ---- *)
  let pads =
    Array.to_list
      (Array.mapi
         (fun bidx kind ->
           match kind with
           | Place.Problem.Input_pad s | Place.Problem.Output_pad s -> (
               match Place.Placement.location placement bidx with
               | Fpga_arch.Grid.Pad (x, y, sub) ->
                   Some
                     {
                       pad_block = bidx;
                       pad_x = x;
                       pad_y = y;
                       pad_sub = sub;
                       pad_is_input =
                         (match kind with
                         | Place.Problem.Input_pad _ -> true
                         | _ -> false);
                       pad_name = Logic.name lnet s;
                     }
               | Fpga_arch.Grid.Clb _ -> None)
           | Place.Problem.Cluster_block _ -> None)
         problem.Place.Problem.blocks)
    |> List.filter_map (fun x -> x)
  in
  {
    design = lnet.Logic.model;
    nx = g.Route.Rrgraph.grid.Fpga_arch.Grid.nx;
    ny = g.Route.Rrgraph.grid.Fpga_arch.Grid.ny;
    width = routed.Route.Router.width;
    track_lengths = track_lengths params ~width:routed.Route.Router.width;
    clbs = List.sort (fun a b -> compare (a.x, a.y) (b.x, b.y)) clbs;
    pads = List.sort compare pads;
    switches = sorted switch_set;
    pin_links = sorted pin_set;
  }

(* Total configuration bits (for size reports). *)
let bit_count (params : Fpga_arch.Params.t) cfg =
  let clb_bits = Fpga_arch.Params.clb_config_bits params in
  (List.length cfg.clbs * clb_bits)
  + List.length cfg.switches + List.length cfg.pin_links
