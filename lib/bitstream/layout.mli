(** Configuration extraction: from a placed-and-routed design to the
    explicit per-tile and per-switch configuration the bitstream encodes.

    CLB tile bits follow the platform of §3.1: per BLE a 2^K-bit LUT, an
    output-register select and a clock enable; a fully connected local
    crossbar gives every LUT input a source code.  Routing bits are the
    ON pass transistors and pin connection-box switches actually used. *)

type ble_config = {
  lut_bits : int;      (** 2^K bits; replicated over unused inputs *)
  registered : bool;
  clock_enable : bool;
  ff_init : bool;      (** power-up state of the flip-flop *)
  input_sources : int array;
      (** K codes: 0..I-1 input pin, I..I+N-1 BLE feedback,
          I+N unconnected *)
}

type clb_config = {
  x : int;
  y : int;
  cluster : int;
  block : int; (** block index, as used in pin descriptors *)
  bles : ble_config array;
}

type node_desc = int * int * int * int * int
(** Canonical wire/pin descriptor: tag (0 chanx, 1 chany, 2 opin, 3 ipin,
    4 sink) plus coordinates. *)

type pad_config = {
  pad_block : int;
  pad_x : int;
  pad_y : int;
  pad_sub : int;
  pad_is_input : bool;
  pad_name : string; (** the external signal (pin-map entry) *)
}

type config = {
  design : string;
  nx : int;
  ny : int;
  width : int;
  track_lengths : int array;
      (** declared segment length per track — the device geometry the
          switch descriptors are laid out against, checked by
          [Fabric.to_logic] against the target device's segment mix *)
  clbs : clb_config list;
  pads : pad_config list;
  switches : (node_desc * node_desc) list;  (** wire-wire pass transistors *)
  pin_links : (node_desc * node_desc) list; (** pin-wire connection boxes *)
}

val track_lengths : Fpga_arch.Params.t -> width:int -> int array
(** Per-track declared segment length, normalised from the segment spec:
    specs that lay out the same tracks (the legacy uniform
    [segment_length] and the equivalent explicit mix) give the same
    table, keeping their bitstreams byte-identical. *)

val node_desc : Route.Rrgraph.t -> int -> node_desc

val pad_tt : Netlist.Tt.t -> int -> int
(** Pad a truth table out to K variables (unused inputs don't care).
    @raise Invalid_argument if the table is wider than K. *)

val extract : Route.Router.routed -> config

val bit_count : Fpga_arch.Params.t -> config -> int
(** Total configuration bits (size reports). *)
