(* Content-addressed persistent store: one marshaled file per entry,
   atomic rename writes, corrupt-tolerant reads.  See store.mli. *)

module R = Obs.Registry

type t = { dir : string; obs : R.t }

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
    (* lost a creation race to a concurrent opener: the directory is
       there, which is all we wanted *)
  end

let open_ ?obs dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { dir; obs = (match obs with Some o -> o | None -> R.create ()) }

let dir t = t.dir

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let path t k = Filename.concat t.dir k

(* Entries are Marshal of (key, payload): the echoed key lets a read
   reject a file that was renamed or hash-collided into the wrong slot. *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A hit touches the entry (atime and mtime to now, best-effort): the
   eviction pass orders entries by mtime, so recently used entries
   survive a size-bounded gc.  mtime rather than atime because relatime
   mounts update atime at most once a day — useless for LRU. *)
let touch p = try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ()

let find t k =
  let p = path t k in
  match read_all p with
  | exception _ ->
      R.incr t.obs "cache.miss";
      None
  | raw -> (
      match (Marshal.from_string raw 0 : string * _) with
      | k', v when String.equal k' k ->
          R.incr t.obs "cache.hit";
          R.incr ~by:(String.length raw) t.obs "cache.bytes";
          touch p;
          Some v
      | _ | (exception _) ->
          (* truncated, garbled, written by a different binary (closure
             code pointers fail to resolve), or a foreign file: all read
             as a miss and the caller recomputes *)
          R.incr t.obs "cache.corrupt";
          R.incr t.obs "cache.miss";
          None)

(* Temp names embed (pid, domain id, per-process counter), so concurrent
   writers — domains of one process or several processes sharing the
   directory — can never collide on a temp file; Open_excl backstops the
   guarantee (a collision fails the store rather than corrupting a
   half-written peer). *)
let temp_seq = Atomic.make 0

let temp_path t =
  Filename.concat t.dir
    (Printf.sprintf ".part-%d-%d-%d.tmp" (Unix.getpid ())
       (Domain.self () :> int)
       (Atomic.fetch_and_add temp_seq 1))

let store t k v =
  match
    let data = Marshal.to_string (k, v) [ Marshal.Closures ] in
    let tmp = temp_path t in
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_excl; Open_binary ] 0o644 tmp
    in
    (try
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc data)
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    (* same-directory rename: atomic on POSIX, so readers only ever see
       complete entries *)
    Sys.rename tmp (path t k);
    String.length data
  with
  | n ->
      R.incr t.obs "cache.store";
      R.incr ~by:n t.obs "cache.bytes"
  | exception _ -> ()
(* best-effort: a store that cannot be written (full disk, permissions)
   degrades to a cache that never hits *)

(* ---------- lifecycle: size scan and bounded eviction ---------- *)

type gc_stats = {
  entries : int;
  resident_bytes : int;
  evicted : int;
  evicted_bytes : int;
  evicted_corrupt : int;
}

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
let is_entry_name n = String.length n = 32 && String.for_all is_hex n

let is_temp_name n =
  String.length n > 10
  && String.sub n 0 6 = ".part-"
  && Filename.check_suffix n ".tmp"

(* Cheap corruption probe, without unmarshalling the payload: the Marshal
   header declares the stream's total size, which must match the file
   exactly.  Catches truncation, appended garbage and non-Marshal files;
   entries that pass but still fail a real [find] (e.g. foreign-binary
   closures) read as misses there. *)
let entry_intact p size =
  match
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let hdr = really_input_string ic Marshal.header_size in
        Marshal.total_size (Bytes.unsafe_of_string hdr) 0)
  with
  | total -> total = size
  | exception _ -> false

(* Temp files older than this are debris from crashed writers. *)
let stale_temp_age_s = 3600.0

let gc ?max_bytes t =
  let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
  let now = Unix.gettimeofday () in
  let entries = ref [] in
  Array.iter
    (fun name ->
      let p = Filename.concat t.dir name in
      match Unix.stat p with
      | exception Unix.Unix_error _ -> ()
      | st when st.Unix.st_kind <> Unix.S_REG -> ()
      | st ->
          if is_entry_name name then entries := (p, st) :: !entries
          else if is_temp_name name && now -. st.Unix.st_mtime > stale_temp_age_s
          then try Sys.remove p with Sys_error _ -> ())
    names;
  let size_of (_, st) = st.Unix.st_size in
  let total = List.fold_left (fun a e -> a + size_of e) 0 !entries in
  let stats =
    match max_bytes with
    | None ->
        {
          entries = List.length !entries;
          resident_bytes = total;
          evicted = 0;
          evicted_bytes = 0;
          evicted_corrupt = 0;
        }
    | Some budget ->
        (* Corrupt entries go first (they can only ever read as misses),
           then least-recently-used by mtime — which [find] refreshes on
           every hit — until the survivors fit the budget.  Equal mtimes
           break by name so concurrent gcs of one directory agree. *)
        let corrupt, intact =
          List.partition (fun (p, st) -> not (entry_intact p st.Unix.st_size))
            !entries
        in
        let by_age =
          List.sort
            (fun ((pa, sa) : string * Unix.stats) (pb, sb) ->
              match compare sa.Unix.st_mtime sb.Unix.st_mtime with
              | 0 -> compare pa pb
              | c -> c)
            intact
        in
        let evicted = ref 0 and evicted_bytes = ref 0 in
        let resident = ref total in
        let evict (p, st) =
          match Sys.remove p with
          | () ->
              incr evicted;
              evicted_bytes := !evicted_bytes + st.Unix.st_size;
              resident := !resident - st.Unix.st_size
          | exception Sys_error _ -> ()
        in
        List.iter evict corrupt;
        let evicted_corrupt = !evicted in
        List.iter
          (fun e -> if !resident > budget then evict e)
          by_age;
        {
          entries = List.length !entries - !evicted;
          resident_bytes = !resident;
          evicted = !evicted;
          evicted_bytes = !evicted_bytes;
          evicted_corrupt;
        }
  in
  if stats.evicted > 0 then R.incr ~by:stats.evicted t.obs "cache.evict";
  (* run-history-dependent, hence volatile (excluded from deterministic
     metric views) *)
  R.set ~volatile:true t.obs "cache.resident-bytes"
    (float_of_int stats.resident_bytes);
  stats
