(* Content-addressed persistent store: one marshaled file per entry,
   atomic rename writes, corrupt-tolerant reads.  See store.mli. *)

module R = Obs.Registry

type t = { dir : string; obs : R.t }

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
    (* lost a creation race to a concurrent opener: the directory is
       there, which is all we wanted *)
  end

let open_ ?obs dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { dir; obs = (match obs with Some o -> o | None -> R.create ()) }

let dir t = t.dir

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let path t k = Filename.concat t.dir k

(* Entries are Marshal of (key, payload): the echoed key lets a read
   reject a file that was renamed or hash-collided into the wrong slot. *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t k =
  match read_all (path t k) with
  | exception _ ->
      R.incr t.obs "cache.miss";
      None
  | raw -> (
      match (Marshal.from_string raw 0 : string * _) with
      | k', v when String.equal k' k ->
          R.incr t.obs "cache.hit";
          R.incr ~by:(String.length raw) t.obs "cache.bytes";
          Some v
      | _ | (exception _) ->
          (* truncated, garbled, written by a different binary (closure
             code pointers fail to resolve), or a foreign file: all read
             as a miss and the caller recomputes *)
          R.incr t.obs "cache.corrupt";
          R.incr t.obs "cache.miss";
          None)

let store t k v =
  match
    let data = Marshal.to_string (k, v) [ Marshal.Closures ] in
    let tmp, oc =
      Filename.open_temp_file ~temp_dir:t.dir ~mode:[ Open_binary ]
        ".part-" ".tmp"
    in
    (try
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc data)
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    (* same-directory rename: atomic on POSIX, so readers only ever see
       complete entries *)
    Sys.rename tmp (path t k);
    String.length data
  with
  | n ->
      R.incr t.obs "cache.store";
      R.incr ~by:n t.obs "cache.bytes"
  | exception _ -> ()
(* best-effort: a store that cannot be written (full disk, permissions)
   degrades to a cache that never hits *)
