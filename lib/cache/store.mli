(** Content-addressed persistent store for memoised flow-stage results.

    A store is a directory ([_amdrel_cache/] by convention) holding one
    file per entry, named by the entry's key — the hex digest {!key}
    derives from the stage name, its code-version tag and the content
    hashes of everything the stage's output depends on.  The flow wraps
    each of its stages in a lookup against this store, so a re-run of an
    unchanged design skips straight to the cached artifacts and an
    edited source re-runs only the stages whose inputs actually changed
    (docs/ARCHITECTURE.md documents the stage graph and the full
    cache-key schema).

    Design points:

    - {b Writes are atomic.}  [store] marshals into a temporary file in
      the same directory and [Sys.rename]s it over the final name, so
      concurrent writers (the batch driver's Domain pool, or several
      CLI invocations sharing one cache) can never expose a
      half-written entry; the last writer wins with a complete file.
    - {b Reads are corrupt-tolerant.}  A missing, truncated, garbled or
      wrong-binary entry is indistinguishable from a miss: [find]
      returns [None] and the caller recomputes (and re-stores).  A
      cache can therefore be deleted, truncated or copied between
      machines at any time without breaking a flow — the worst case is
      recomputation.
    - {b Every operation counts into the metric registry} passed at
      [open_] time, under the [cache.*] keys documented in
      docs/OBSERVABILITY.md: [cache.hit], [cache.miss], [cache.store],
      [cache.corrupt] and [cache.bytes] (payload bytes read on hits
      plus written on stores).
    - {b Entries are marshaled OCaml values} (with
      [Marshal.Closures], so stage results that embed functions — the
      STA analyses carry their delay provider — round-trip within the
      binary that wrote them).  An entry written by a different binary
      fails the unmarshal and reads as a miss, which is exactly the
      recompute-on-code-change behaviour the per-stage code-version
      tags promise.  The payload type is pinned by the key (stage name
      and version tag are always part of it); reading a key written at
      a different type is undefined behaviour, as with [Marshal] —
      never reuse a key across types without bumping the version tag. *)

type t
(** An open store rooted at one directory. *)

val open_ : ?obs:Obs.Registry.t -> string -> t
(** [open_ ?obs dir] opens (creating [dir] and its parents if needed)
    the store rooted at [dir].  [obs] receives the [cache.*] counters;
    omitted, the counters go to a private throwaway registry.
    @raise Sys_error when [dir] cannot be created. *)

val dir : t -> string
(** The store's root directory. *)

val key : string list -> string
(** [key parts] is the store key for a stage output whose identity is
    the ordered list [parts] — by convention
    [stage-name :: code-version-tag :: content-hashes-and-config].
    Deterministic across runs and processes; parts are
    NUL-separated before digesting, so no concatenation of distinct
    part lists collides textually. *)

val path : t -> string -> string
(** [path t k] is the file that does (or would) hold entry [k] —
    exposed for tests and cache inspection tooling. *)

val find : t -> string -> 'a option
(** [find t k] is the stored value for [k], or [None] when absent or
    unreadable (any corruption — truncation, garbage, a different
    writing binary — counts [cache.corrupt] and reads as a miss).
    Counts [cache.hit] or [cache.miss].

    The result type is pinned by the key, not checked at runtime: only
    read a key with the type it was stored at (see the module
    preamble). *)

val store : t -> string -> 'a -> unit
(** [store t k v] atomically writes [v] under [k] (temp file +
    rename), replacing any previous entry.  Counts [cache.store] and
    [cache.bytes].  Temp filenames embed the writing (pid, domain id,
    sequence number), so concurrent writers — several domains of one
    process or several processes sharing a directory — never collide
    mid-write; racing stores of the same key both succeed and the last
    rename wins with a complete entry.  I/O failures (full disk,
    read-only directory) are swallowed: caching is an optimisation,
    never a correctness dependency — the next [find] simply misses. *)

(** {1 Lifecycle at service scale}

    A store that lives for days (the compile-service daemon) must not
    grow without bound.  [gc] is the size-bounded eviction pass: it
    scans the directory, deletes debris (stale temp files from crashed
    writers), and — when a byte budget is given — evicts entries until
    the survivors fit, corrupt entries first (they can only ever read
    as misses), then least-recently-used.  Recency is the entry file's
    mtime, which {!find} refreshes on every hit, so hot entries
    survive.  The pass is safe to run concurrently with readers and
    writers of the same directory: eviction is [Sys.remove], which an
    in-flight read either wins or loses wholesale (a lost read is a
    miss and recomputes). *)

type gc_stats = {
  entries : int;         (** entries remaining after the pass *)
  resident_bytes : int;  (** bytes remaining after the pass *)
  evicted : int;         (** entries deleted (corrupt + LRU) *)
  evicted_bytes : int;
  evicted_corrupt : int; (** of [evicted], how many failed the
                             integrity probe *)
}

val gc : ?max_bytes:int -> t -> gc_stats
(** [gc ?max_bytes t] scans the store and, when [max_bytes] is given,
    evicts down to the budget.  Without [max_bytes] it is a pure size
    scan (plus stale-temp cleanup): no entry is deleted.  Records
    [cache.evict] (entries deleted, counter) and [cache.resident-bytes]
    (volatile gauge) into the store's registry.  Never raises on I/O
    errors — unreadable files are skipped, undeletable ones stay. *)
