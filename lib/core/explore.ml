(* Architecture exploration drivers: the CLB-level studies of §3.1 (cluster
   size, LUT size, the I = (K/2)(N+1) input rule) re-run through the full
   flow, plus the interconnect switch-style comparison of §3.3. *)

type sweep_point = {
  label : string;
  avg_power_mw : float;
  avg_crit_ns : float;
  avg_clusters : float;
  avg_min_width : float;
  avg_utilization : float;
}

(* Circuits are independent problems, so the suite fans out across a
   Domain pool; failures are collected with their stage and reported
   after the join, in suite order, exactly as the sequential loop did. *)
let run_suite ?(config = Flow.default_config) ?jobs circuits =
  Util.Parallel.map_list ?jobs
    (fun (name, vhdl) ->
      match Flow.run_vhdl ~config vhdl with
      | r -> Ok r
      | exception Flow.Flow_error (stage, e) -> Error (name, stage, e))
    circuits
  |> List.filter_map (function
       | Ok r -> Some r
       | Error (name, stage, e) ->
           Printf.eprintf "explore: %s failed at %s (%s)\n%!" name stage
             (Printexc.to_string e);
           None)

let summarize label results =
  let arr f = Array.of_list (List.map f results) in
  {
    label;
    avg_power_mw =
      Util.Stats.geomean (arr (fun r -> r.Flow.power.Power.Model.total_w *. 1e3));
    avg_crit_ns =
      Util.Stats.geomean
        (arr (fun r -> r.Flow.route_stats.Route.Router.critical_path_s *. 1e9));
    avg_clusters = Util.Stats.mean (arr (fun r -> float_of_int r.Flow.n_clusters));
    avg_min_width =
      Util.Stats.mean
        (arr (fun r ->
             float_of_int
               (Option.value r.Flow.route_stats.Route.Router.minimum_width
                  ~default:r.Flow.route_stats.Route.Router.channel_width)));
    avg_utilization = Util.Stats.mean (arr (fun r -> r.Flow.utilization));
  }

(* Cluster-size exploration (paper: N = 5 minimises energy). *)
let cluster_size_sweep ?(ns = [ 2; 3; 4; 5; 6; 8 ]) ?(circuits = Bench_circuits.suite) ?jobs () =
  List.map
    (fun n ->
      let params =
        Fpga_arch.Params.validate
          {
            Fpga_arch.Params.amdrel with
            Fpga_arch.Params.n;
            i = Fpga_arch.Params.recommended_inputs ~k:4 ~n;
          }
      in
      let config = { Flow.default_config with Flow.params } in
      summarize (Printf.sprintf "N=%d" n) (run_suite ~config ?jobs circuits))
    ns

(* LUT-size exploration (paper cites K = 4 as the energy sweet spot). *)
let lut_size_sweep ?(ks = [ 2; 3; 4; 5 ]) ?(circuits = Bench_circuits.suite) ?jobs () =
  List.map
    (fun k ->
      let params =
        Fpga_arch.Params.validate
          {
            Fpga_arch.Params.amdrel with
            Fpga_arch.Params.k;
            i = Fpga_arch.Params.recommended_inputs ~k ~n:5;
          }
      in
      let config = { Flow.default_config with Flow.params } in
      summarize (Printf.sprintf "K=%d" k) (run_suite ~config ?jobs circuits))
    ks

(* The input-count rule: utilisation versus I (paper: I = (K/2)(N+1) gives
   ~98% BLE utilisation; more inputs buy nothing, fewer waste BLEs). *)
type input_rule_point = {
  i_value : int;
  rule_value : int;
  utilization : float;
  clusters : float;
}

let input_rule_sweep ?(circuits = Bench_circuits.suite) ?jobs () =
  let rule = Fpga_arch.Params.recommended_inputs ~k:4 ~n:5 in
  List.map
    (fun i_value ->
      let params =
        Fpga_arch.Params.validate
          { Fpga_arch.Params.amdrel with Fpga_arch.Params.i = i_value }
      in
      let config = { Flow.default_config with Flow.params } in
      let results = run_suite ~config ?jobs circuits in
      let s = summarize (Printf.sprintf "I=%d" i_value) results in
      {
        i_value;
        rule_value = rule;
        utilization = s.avg_utilization;
        clusters = s.avg_clusters;
      })
    [ 6; 8; 10; rule; 14; 16; 20 ]

(* Segment-mix x channel-width architecture sweep (§3.3): each point is
   one (mix, width) fabric run over the circuit suite, reporting the
   usual quality metrics plus energy per data cycle.  Widths = [] means
   every point binary-searches its own minimum channel width, which is
   how the paper compares wire-length mixes fairly. *)
type arch_point = {
  arch_label : string;
  mix : string;              (* e.g. "2xL1+1xL2+1xL4" *)
  fixed_width : int option;  (* None = min-width search *)
  point : sweep_point;
  avg_energy_pj : float;     (* geomean energy per data cycle, pJ *)
}

let default_mixes =
  [ "1xL1"; "1xL2"; "1xL4"; "2xL1+1xL2+1xL4"; "1xL1+1xL4" ]

let segment_mix_sweep ?(mixes = default_mixes) ?(widths = [])
    ?(circuits = Bench_circuits.suite) ?jobs () =
  let points =
    List.concat_map
      (fun mix ->
        match widths with
        | [] -> [ (mix, None) ]
        | ws -> List.map (fun w -> (mix, Some w)) ws)
      mixes
  in
  (* points fan out across the pool; the nested [run_suite] pool calls
     degrade to sequential inside workers, so there is no
     over-subscription and the per-point results stay jobs-invariant *)
  Util.Parallel.map_list ?jobs
    (fun (mix, fixed_width) ->
      let params =
        Fpga_arch.Params.validate
          {
            Fpga_arch.Params.amdrel with
            Fpga_arch.Params.segments = Fpga_arch.Params.segments_of_string mix;
          }
      in
      let config =
        {
          Flow.default_config with
          Flow.params;
          Flow.search_min_width = fixed_width = None;
          Flow.route_width =
            Option.value fixed_width
              ~default:Flow.default_config.Flow.route_width;
        }
      in
      let label =
        Printf.sprintf "%s W=%s" mix
          (match fixed_width with
          | None -> "auto"
          | Some w -> string_of_int w)
      in
      let results = run_suite ~config ?jobs circuits in
      let f = Power.Model.default_options.Power.Model.frequency in
      let energies =
        Array.of_list
          (List.map
             (fun r -> r.Flow.power.Power.Model.total_w /. f *. 1e12)
             results)
      in
      {
        arch_label = label;
        mix;
        fixed_width;
        point = summarize label results;
        avg_energy_pj = Util.Stats.geomean energies;
      })
    points

(* Timing-driven vs routability-driven place & route (VPR's two modes). *)
type td_point = {
  circuit : string;
  routability_crit_ns : float;
  timing_driven_crit_ns : float;
  routability_wire : int;
  timing_driven_wire : int;
}

let timing_driven_comparison ?(circuits = Bench_circuits.suite) ?jobs () =
  Util.Parallel.map_list ?jobs
    (fun (name, vhdl) ->
      let run td =
        Flow.run_vhdl
          ~config:{ Flow.default_config with Flow.timing_driven = td }
          vhdl
      in
      match (run false, run true) with
      | a, b ->
          Ok
            {
              circuit = name;
              routability_crit_ns =
                a.Flow.route_stats.Route.Router.critical_path_s *. 1e9;
              timing_driven_crit_ns =
                b.Flow.route_stats.Route.Router.critical_path_s *. 1e9;
              routability_wire =
                a.Flow.route_stats.Route.Router.total_wire_tiles;
              timing_driven_wire =
                b.Flow.route_stats.Route.Router.total_wire_tiles;
            }
      | exception Flow.Flow_error (stage, e) -> Error (name, stage, e))
    circuits
  |> List.filter_map (function
       | Ok p -> Some p
       | Error (name, stage, e) ->
           Printf.eprintf "explore: %s failed at %s (%s)\n%!" name stage
             (Printexc.to_string e);
           None)

(* Switch-style comparison at the selected operating point (pass transistor
   vs tri-state buffer pairs, §3.3.2): circuit-level E/D/A. *)
type switch_point = {
  style : Spice.Routing_exp.switch_style;
  energy_fj : float;
  delay_ps : float;
  area : float;
  eda : float;
}

let switch_style_comparison ?(width = 10.0) ?(wire_length = 1)
    ?(cfg = Spice.Tech.Min_width_double_spacing) () =
  List.map
    (fun style ->
      let p =
        Spice.Routing_exp.measure ~wire_length ~width ~config:cfg ~style ()
      in
      {
        style;
        energy_fj = p.Spice.Routing_exp.energy_j *. 1e15;
        delay_ps = p.Spice.Routing_exp.delay_s *. 1e12;
        area = p.Spice.Routing_exp.area;
        eda = p.Spice.Routing_exp.eda;
      })
    [ Spice.Routing_exp.Pass_transistor; Spice.Routing_exp.Tristate_buffer ]
