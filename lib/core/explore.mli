(** Architecture exploration drivers: the CLB-level studies of §3.1
    (cluster size, LUT size, the input rule) re-run through the full
    flow, plus router-mode and switch-style comparisons. *)

type sweep_point = {
  label : string;
  avg_power_mw : float;    (** geomean over the suite *)
  avg_crit_ns : float;     (** geomean *)
  avg_clusters : float;
  avg_min_width : float;
  avg_utilization : float;
}

val run_suite :
  ?config:Flow.config -> ?jobs:int -> (string * string) list ->
  Flow.result list
(** Run circuits through the flow, skipping (and reporting) failures.
    Circuits fan out across a Domain pool of [jobs] workers (default
    {!Util.Parallel.default_jobs}); results and failure reports keep
    suite order, so the output is identical for any [jobs]. *)

val summarize : string -> Flow.result list -> sweep_point

val cluster_size_sweep :
  ?ns:int list -> ?circuits:(string * string) list -> ?jobs:int -> unit ->
  sweep_point list
(** Paper: N = 5 selected. *)

val lut_size_sweep :
  ?ks:int list -> ?circuits:(string * string) list -> ?jobs:int -> unit ->
  sweep_point list
(** Paper cites K = 4. *)

type input_rule_point = {
  i_value : int;
  rule_value : int;
  utilization : float;
  clusters : float;
}

val input_rule_sweep :
  ?circuits:(string * string) list -> ?jobs:int -> unit ->
  input_rule_point list
(** BLE utilisation versus I; saturates at I = (K/2)(N+1). *)

type arch_point = {
  arch_label : string;
  mix : string;             (** e.g. "2xL1+1xL2+1xL4" *)
  fixed_width : int option; (** [None] = per-point min-width search *)
  point : sweep_point;
  avg_energy_pj : float;    (** geomean energy per data cycle, pJ *)
}

val default_mixes : string list

val segment_mix_sweep :
  ?mixes:string list -> ?widths:int list ->
  ?circuits:(string * string) list -> ?jobs:int -> unit ->
  arch_point list
(** Segment-mix x channel-width architecture sweep: each (mix, width)
    point runs the circuit suite on a fabric whose channels carry that
    wire-length mix ({!Fpga_arch.Params.segments_of_string}), reporting
    Wmin / critical path / power / energy per point.  [widths] = []
    (default) lets every point binary-search its own minimum width.
    Points fan out over a [jobs]-domain pool; nested pools degrade to
    sequential, so results are identical for any [jobs]. *)

type td_point = {
  circuit : string;
  routability_crit_ns : float;
  timing_driven_crit_ns : float;
  routability_wire : int;
  timing_driven_wire : int;
}

val timing_driven_comparison :
  ?circuits:(string * string) list -> ?jobs:int -> unit -> td_point list

type switch_point = {
  style : Spice.Routing_exp.switch_style;
  energy_fj : float;
  delay_ps : float;
  area : float;
  eda : float;
}

val switch_style_comparison :
  ?width:float -> ?wire_length:int -> ?cfg:Spice.Tech.wire_config ->
  unit -> switch_point list
(** Pass transistor vs tri-state buffer at the selected operating point. *)
