(* The integrated design framework: VHDL -> configuration bitstream.

   This is the paper's primary contribution — the complete tool-supported
   flow of Fig. 11: VHDL Parser, DIVINER (synthesis), DRUID (EDIF fix-up),
   E2FMT (EDIF to BLIF), SIS (LUT mapping), T-VPack (packing), DUTYS
   (architecture file), VPR (place & route), PowerModel and DAGGER.  Every
   stage can also run standalone through the bin/ executables.

   The flow is organised as seven individually memoisable stages

     synth -> techmap -> pack -> place -> route -> sta -> bitstream

   each wrapped in a lookup against a content-addressed store
   (lib/cache) when [config.cache_dir] is set.  A stage's key is the
   digest of (stage name, code-version tag, content hash of its input
   artifact, the config fields that influence its output) — so a warm
   re-run of an unchanged design returns every artifact from the store
   byte-identically, and an edited source re-runs only the stages whose
   inputs actually changed (hashing the real input artifact, not the
   upstream key, gives early cutoff: a source edit that synthesises to
   the same netlist stops re-running at synth).  The full key schema
   and invalidation rules live in docs/ARCHITECTURE.md. *)

open Netlist
module R = Obs.Registry

type config = {
  params : Fpga_arch.Params.t;
  seed : int;
  io_rat : int;
  search_min_width : bool; (* binary-search the minimum channel width *)
  route_width : int;       (* channel width when [search_min_width] is off *)
  timing_driven : bool;    (* VPR's path-timing-driven place & route *)
  clock_period : float option; (* target clock period (seconds) the STA
                                  checks slack against; None = unconstrained
                                  (slacks measured against achieved Dmax) *)
  verify_mapping : bool;   (* random-simulation equivalence after SIS *)
  verify_bitstream : bool; (* DAGGER round-trip check *)
  verify_fabric : bool;    (* emulate the bitstream on the fabric model *)
  power_options : Power.Model.options;
  jobs : int option;       (* Domain pool size; None = AMDREL_JOBS or the
                              recommended domain count *)
  place_starts : int;      (* independent annealing seeds; best wins *)
  incremental_sta : bool;  (* cone-limited STA refreshes in the annealer *)
  sta_full_refresh_every : int;
                           (* full-analysis cadence of the incremental
                              chain (every Kth refresh); <= 0 = always
                              full *)
  place_prune_margin : float option;
                           (* multi-start pruning margin (fraction above
                              the incumbent); None = run all to the end *)
  place_prune_interval : int; (* temperature steps between prune points *)
  cache_dir : string option;
                           (* stage-result store directory; None = no
                              caching (every stage recomputes) *)
}

let default_config =
  {
    params = Fpga_arch.Params.amdrel;
    seed = 1;
    io_rat = 2;
    search_min_width = true;
    route_width = 12;
    timing_driven = false;
    clock_period = None;
    verify_mapping = true;
    verify_bitstream = true;
    verify_fabric = true;
    power_options = Power.Model.default_options;
    jobs = None;
    place_starts = 1;
    incremental_sta = true;
    sta_full_refresh_every = 8;
    place_prune_margin = Some 0.5;
    place_prune_interval = 4;
    cache_dir = None;
  }

type stage_times = (string * float) list (* seconds per stage *)

type result = {
  design : string;
  source_stats : Logic.stats;       (* after synthesis, library gates *)
  mapped : Logic.t;
  mapped_stats : Logic.stats;
  packing : Pack.Cluster.packing;
  n_clusters : int;
  utilization : float;
  grid : Fpga_arch.Grid.t;
  placement_cost : float;
  routed : Route.Router.routed;
  route_stats : Route.Router.stats;
  power : Power.Model.report;
  bitstream : Bitstream.Dagger.generated;
  bitstream_verified : bool;
  fabric_verified : bool;   (* bitstream emulated on the fabric model *)
  sta_pre : Sta.Analysis.t;         (* unified STA at the final placement *)
  sta_post : Sta.Analysis.t;        (* unified STA over the routed design *)
  edif : string;                    (* intermediate products, for the tools *)
  blif_mapped : string;
  metrics : R.snapshot;
  times : stage_times;
}

exception Flow_error of string * exn
(** Stage name and underlying failure. *)

(* Each stage is one registry timer (wall + CPU seconds) and one trace
   span of the same name.  Nothing is recorded when the stage fails. *)
let timed obs label f =
  Obs.Events.emit (Obs.Events.Stage_begin { stage = label });
  let t0 = Unix.gettimeofday () in
  let finish () =
    Obs.Events.emit
      (Obs.Events.Stage_end
         { stage = label; wall_s = Unix.gettimeofday () -. t0 })
  in
  match
    Obs.Span.with_ ~name:label (fun () ->
        try R.time obs label f with e -> raise (Flow_error (label, e)))
  with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* ---------- stage memoisation ---------- *)

(* Per-stage code-version tags.  A tag is part of every cache key for
   that stage, so bumping it invalidates exactly the stage(s) whose
   algorithm or cached-result shape changed — the cheap, explicit
   alternative to hashing the binary.  Bump on any change that alters a
   stage's output for identical inputs, or the type it stores. *)
let v_synth = "synth@1"
and v_techmap = "techmap@1"
and v_pack = "pack@1"
and v_place = "place@1"
and v_route = "route@2" (* @2: mixed-length segmented RR graph *)
and v_sta = "sta@1"
and v_bitstream = "bitstream@2" (* @2: AMD2 frames with track table *)
and v_routability = "routability@1"

(* Content hash of an artifact: digest of its unshared Marshal bytes.
   Marshal is deterministic for a given value graph (Hashtbl layouts
   included, since the stdlib tables are unseeded and every artifact is
   built by a deterministic operation sequence), and a value
   round-tripped through the store re-marshals to the same bytes — so
   hashes agree between a computed artifact and its cached copy, and
   across jobs values by the flow's determinism contract. *)
let artifact_hash v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let fp_bool b = if b then "1" else "0"
let fp_float f = Printf.sprintf "%h" f
let fp_float_opt = function None -> "-" | Some f -> fp_float f

type ctx = { config : config; obs : R.t; store : Cache.Store.t option }

let make_ctx ~config ~obs =
  {
    config;
    obs;
    store = Option.map (fun d -> Cache.Store.open_ ~obs d) config.cache_dir;
  }

(* Wrap one stage in a store lookup.  [key] (invoked only when a store
   is configured) lists the content hashes and config fingerprints the
   stage's output depends on.  On a hit the compute function — and with
   it every timer and span inside — is skipped entirely, which is why
   warm runs show neither the stage timers nor the stage spans; on a
   miss the computed value is stored for next time.  Nothing is stored
   when [compute] raises. *)
let stage ctx name version key compute =
  match ctx.store with
  | None -> compute ()
  | Some store -> (
      let k = Cache.Store.key (name :: version :: key ()) in
      match Cache.Store.find store k with
      | Some v ->
          Obs.Events.emit (Obs.Events.Cache_lookup { stage = name; hit = true });
          v
      | None ->
          Obs.Events.emit
            (Obs.Events.Cache_lookup { stage = name; hit = false });
          let v = compute () in
          Cache.Store.store store k v;
          v)

(* Shared back half of every entry point: from a Logic network in
   library-gate form to the bitstream, recording into [ctx.obs]. *)
let run_stages ~ctx (net : Logic.t) =
  let config = ctx.config and obs = ctx.obs in
  let p = config.params in
  let source_stats = Logic.stats net in
  (* DIVINER end: EDIF out; DRUID: normalise; E2FMT: back to BLIF/logic;
     SIS: LUT mapping.  One cache stage: the intermediate EDIF forms are
     worthless without the mapping that follows them. *)
  let edif_text, mapped =
    stage ctx "techmap" v_techmap
      (fun () ->
        [
          artifact_hash net;
          string_of_int p.Fpga_arch.Params.k;
          fp_bool config.verify_mapping;
        ])
      (fun () ->
        let edif =
          timed obs "diviner-edif" (fun () -> Netlist.Edif.of_logic net)
        in
        let edif_text = Netlist.Edif.to_string edif in
        let normalized =
          timed obs "druid" (fun () -> Synth.Druid.normalize edif)
        in
        let net2 =
          timed obs "e2fmt" (fun () -> Netlist.Edif.to_logic normalized)
        in
        let mapped, _map_report =
          timed obs "sis-flowmap" (fun () ->
              Techmap.Mapper.map_network ~k:p.Fpga_arch.Params.k
                ~verify:config.verify_mapping net2)
        in
        (edif_text, mapped))
  in
  let blif_mapped = Netlist.Blif.to_string mapped in
  (* T-VPack *)
  let packing =
    stage ctx "pack" v_pack
      (fun () ->
        [
          artifact_hash mapped;
          string_of_int p.Fpga_arch.Params.n;
          string_of_int p.Fpga_arch.Params.i;
        ])
      (fun () ->
        timed obs "t-vpack" (fun () ->
            Pack.Cluster.pack ~n:p.Fpga_arch.Params.n ~i:p.Fpga_arch.Params.i
              mapped))
  in
  let sta_constraints =
    { Sta.Analysis.default_constraints with
      Sta.Analysis.period = config.clock_period }
  in
  (* VPR placement.  vpr-setup also levelises the unified timing graph:
     it depends only on the packed netlist, so one build serves the
     annealer's per-temperature refreshes and its criticalities.  The
     speed-only knobs (jobs, incremental_sta, sta_full_refresh_every)
     are deliberately absent from the key: they are bit-identical
     switches, so flipping them must keep hitting the same entry. *)
  let anneal =
    stage ctx "place" v_place
      (fun () ->
        [
          artifact_hash packing;
          string_of_int config.io_rat;
          string_of_int config.seed;
          string_of_int config.place_starts;
          fp_bool config.timing_driven;
          fp_float_opt config.clock_period;
          fp_float_opt config.place_prune_margin;
          string_of_int config.place_prune_interval;
        ])
      (fun () ->
        let problem, sta_graph =
          timed obs "vpr-setup" (fun () ->
              let problem = Place.Problem.build ~io_rat:config.io_rat packing in
              (problem, Sta.Graph.build problem))
        in
        let provider_at coords =
          (* the graph's producing-block table doubles as the provider's,
             saving an O(signals) rebuild on every annealing refresh *)
          Sta.Delays.of_placement ~producer:sta_graph.Sta.Graph.block_of
            problem ~coords
        in
        let sta_at coords =
          Sta.Analysis.run ~constraints:sta_constraints ?jobs:config.jobs ~obs
            sta_graph (provider_at coords)
        in
        (* Incremental analysis chains for the annealer: one per annealing
           run (the factory is called at each run's initialisation), each
           holding the previous analysis and re-propagating only the moved
           blocks' cones, with a full re-analysis every
           [sta_full_refresh_every]-th refresh as a drift backstop — the
           incremental update is bit-exact, so the backstop guards the code,
           not the numbers. *)
        let make_incremental () =
          let state = ref None in
          let calls = ref 0 in
          fun ~coords ~changed_blocks ->
            let k = config.sta_full_refresh_every in
            let a =
              match !state with
              | Some prev when k > 0 && !calls mod k <> 0 ->
                  Sta.Analysis.update ?jobs:config.jobs ~obs ~changed_blocks
                    prev (provider_at coords)
              | _ ->
                  R.incr obs "sta.incr.full-refresh";
                  sta_at coords
            in
            incr calls;
            state := Some a;
            Sta.Analysis.to_td a
        in
        timed obs "vpr-place" (fun () ->
            let timing =
              if config.timing_driven then
                Some
                  (Place.Anneal.default_timing
                     ?make_incremental:
                       (if config.incremental_sta then Some make_incremental
                        else None)
                     ~analyze:(fun ~coords ->
                       Sta.Analysis.to_td (sta_at coords))
                     ())
              else None
            in
            Place.Anneal.run_multistart
              ~options:{ Place.Anneal.seed = config.seed; inner_num = 1.0 }
              ?timing ?jobs:config.jobs ~starts:config.place_starts
              ?prune_margin:config.place_prune_margin
              ~prune_interval:config.place_prune_interval ~obs problem))
  in
  let placement = anneal.Place.Anneal.placement in
  (* the exit cost is resummed from exact per-net costs; recording the
     from-scratch recomputation beside it turns any future drift
     regression into a metrics diff (CI asserts the two are equal).
     Emitted outside the cached stage so warm runs report the same
     deterministic gauges and counters as cold ones. *)
  R.set obs "place.final-cost" anneal.Place.Anneal.final_cost;
  R.set obs "place.final-cost-recomputed"
    (Place.Placement.total_cost placement);
  R.incr ~by:anneal.Place.Anneal.moves obs "place.moves";
  (* VPR routing.  Speculative width-search probes stay un-instrumented
     (the probe set depends on the pool size); only the final routing
     records, keeping every metric jobs-independent.  The width search
     additionally consults a persistent routability table — probe
     outcomes keyed on the exact (placement, params) pair — so a warm
     search at a known placement skips probe routings it already knows
     the answer to, even when the route stage itself must re-run (e.g.
     after toggling timing_driven). *)
  let placement_hash = lazy (artifact_hash placement) in
  let params_fp = lazy (artifact_hash p) in
  let routed =
    stage ctx "route" v_route
      (fun () ->
        [
          Lazy.force placement_hash;
          Lazy.force params_fp;
          fp_bool config.search_min_width;
          (if config.search_min_width then "-"
           else string_of_int config.route_width);
          fp_bool config.timing_driven;
        ])
      (fun () ->
        timed obs "vpr-route" (fun () ->
            let timing =
              if config.timing_driven then Some Place.Td_timing.default_model
              else None
            in
            if config.search_min_width then begin
              let rkey =
                lazy
                  (Cache.Store.key
                     [
                       "routability";
                       v_routability;
                       Lazy.force placement_hash;
                       Lazy.force params_fp;
                     ])
              in
              let table : (int, bool) Hashtbl.t = Hashtbl.create 16 in
              (match ctx.store with
              | Some store -> (
                  match Cache.Store.find store (Lazy.force rkey) with
                  | Some (entries : (int * bool) list) ->
                      List.iter
                        (fun (w, ok) -> Hashtbl.replace table w ok)
                        entries
                  | None -> ())
              | None -> ());
              let r =
                Route.Router.route_min_width ?timing ~table ?jobs:config.jobs
                  ~obs p placement
              in
              (match ctx.store with
              | Some store ->
                  let entries =
                    List.sort compare
                      (Hashtbl.fold (fun w ok acc -> (w, ok) :: acc) table [])
                  in
                  Cache.Store.store store (Lazy.force rkey) entries
              | None -> ());
              r
            end
            else
              Route.Router.route_fixed ?timing ?jobs:config.jobs ~obs p
                placement ~width:config.route_width))
  in
  (* Unified STA: the placement-distance analysis at the final placement
     and the routed-Elmore analysis over the actual route trees, both on
     the shared timing graph.  Headline figures ride in the registry as
     gauges (sta.* entries are seconds-of-delay/slack, not durations). *)
  let routed_hash = lazy (artifact_hash routed) in
  let sta_pre, sta_post =
    stage ctx "sta" v_sta
      (fun () -> [ Lazy.force routed_hash; fp_float_opt config.clock_period ])
      (fun () ->
        timed obs "sta" (fun () ->
            let sta_graph = Sta.Graph.build routed.Route.Router.problem in
            let provider =
              Sta.Delays.of_placement
                ~producer:sta_graph.Sta.Graph.block_of
                routed.Route.Router.problem
                ~coords:
                  (Place.Placement.coords routed.Route.Router.placement)
            in
            let pre =
              Sta.Analysis.run ~constraints:sta_constraints ?jobs:config.jobs
                ~obs sta_graph provider
            in
            let post =
              Route.Router.sta ~constraints:sta_constraints ~graph:sta_graph
                ~obs routed
            in
            (pre, post)))
  in
  R.set obs "sta.dmax" sta_post.Sta.Analysis.dmax;
  R.set obs "sta.wns" sta_post.Sta.Analysis.wns;
  R.set obs "sta.tns" sta_post.Sta.Analysis.tns;
  (* [stats] reuses the post-route analysis for its critical path *)
  let route_stats = Route.Router.stats ~sta:sta_post routed in
  (* router observability rides in the registry next to the stage timers,
     so benches and reports capture the iteration counters with no extra
     plumbing.  Derived from the routed artifact, so warm runs re-emit
     identical values. *)
  R.incr ~by:route_stats.Route.Router.router_iterations obs
    "vpr-route.iterations";
  R.incr ~by:route_stats.Route.Router.nets_rerouted obs
    "vpr-route.nets-rerouted";
  R.incr ~by:route_stats.Route.Router.heap_pops obs "vpr-route.heap-pops";
  R.incr ~by:route_stats.Route.Router.peak_overuse obs
    "vpr-route.peak-overuse";
  R.incr ~by:route_stats.Route.Router.long_wire_nodes obs
    "vpr-route.long-wires";
  R.incr ~by:route_stats.Route.Router.par_batches obs "route.par.batches";
  R.incr ~by:route_stats.Route.Router.par_batch_max obs "route.par.batch-max";
  R.set obs "route.par.serial-frac" route_stats.Route.Router.par_serial_frac;
  (* PowerModel + DAGGER + the two bitstream verifications, one stage:
     all pure functions of the routed design and the options. *)
  let power, bitstream, bitstream_verified, fabric_verified =
    stage ctx "bitstream" v_bitstream
      (fun () ->
        [
          Lazy.force routed_hash;
          artifact_hash config.power_options;
          fp_bool config.verify_bitstream;
          fp_bool config.verify_fabric;
        ])
      (fun () ->
        let power =
          timed obs "powermodel" (fun () ->
              Power.Model.estimate ~options:config.power_options routed)
        in
        let bitstream =
          timed obs "dagger" (fun () -> Bitstream.Dagger.generate routed)
        in
        let bitstream_verified =
          (not config.verify_bitstream)
          || Bitstream.Dagger.verify routed bitstream.Bitstream.Dagger.bytes
             = Bitstream.Dagger.Verified
        in
        let fabric_verified =
          (not config.verify_fabric)
          || timed obs "fabric-emulation" (fun () ->
                 Bitstream.Dagger.verify_functional routed
                   bitstream.Bitstream.Dagger.bytes)
        in
        (power, bitstream, bitstream_verified, fabric_verified))
  in
  (* pool observability: the configured worker count and the measured
     CPU/wall ratio summed over the stage timers (~1.0 sequential,
     approaches the job count when the parallel stages dominate).  Both
     are volatile gauges: time-derived, so excluded from the
     deterministic metrics view. *)
  let cpu_sum, wall_sum =
    List.fold_left
      (fun (c, w) (e : R.entry) ->
        match e.R.value with
        | R.Timer { wall_s; cpu_s; _ } when not (String.contains e.R.key '.')
          ->
            (c +. cpu_s, w +. wall_s)
        | _ -> (c, w))
      (0.0, 0.0) (R.snapshot obs)
  in
  R.set ~volatile:true obs "parallel.jobs"
    (float_of_int (Util.Parallel.resolve_jobs ?jobs:config.jobs ()));
  R.set ~volatile:true obs "parallel.speedup"
    (if wall_sum > 0.0 then cpu_sum /. wall_sum else 1.0);
  let metrics = R.snapshot obs in
  {
    design = net.Logic.model;
    source_stats;
    mapped;
    mapped_stats = Logic.stats mapped;
    packing;
    n_clusters = Pack.Cluster.cluster_count packing;
    utilization = Pack.Cluster.utilization packing;
    grid = routed.Route.Router.problem.Place.Problem.grid;
    placement_cost = anneal.Place.Anneal.final_cost;
    routed;
    route_stats;
    power;
    bitstream;
    bitstream_verified;
    fabric_verified;
    sta_pre;
    sta_post;
    edif = edif_text;
    blif_mapped;
    metrics;
    times = R.to_assoc metrics;
  }

(* Run from a Logic network already in library-gate form (the entry point
   the BLIF-based tools share). *)
let run_network ?(config = default_config) ?obs (net : Logic.t) =
  let obs = match obs with Some o -> o | None -> R.create () in
  let ctx = make_ctx ~config ~obs in
  Obs.Span.with_ ~name:"flow"
    ~args:[ ("design", Obs.Emit.String net.Logic.model) ]
    (fun () -> run_stages ~ctx net)

(* Full flow from VHDL source text. *)
let run_vhdl ?(config = default_config) ?obs text =
  let obs = match obs with Some o -> o | None -> R.create () in
  let ctx = make_ctx ~config ~obs in
  Obs.Span.with_ ~name:"flow" (fun () ->
      let net =
        (* synth keys on the source bytes alone: parsing and elaboration
           have no knobs.  Early cutoff happens one stage later — an
           edited source that still elaborates to the same network gives
           techmap an unchanged input hash. *)
        stage ctx "synth" v_synth
          (fun () -> [ Digest.to_hex (Digest.string text) ])
          (fun () ->
            let file =
              timed obs "vhdl-parser" (fun () ->
                  Netlist.Vhdl_parser.file_of_string text)
            in
            let top = List.nth file (List.length file - 1) in
            timed obs "diviner-synth" (fun () ->
                Synth.Diviner.synthesize_ast ~library:file top))
      in
      Obs.Span.annotate [ ("design", Obs.Emit.String net.Logic.model) ];
      run_stages ~ctx net)

(* Entry from a BLIF netlist (skips the VHDL/EDIF front end). *)
let run_blif ?(config = default_config) ?obs text =
  let net = Netlist.Blif.of_string text in
  run_network ~config ?obs net

(* Machine-readable timing report: the pre-route (placement-distance)
   and post-route (routed-Elmore) analyses side by side, one JSON object
   per design.  This exact shape is pinned by the golden fixtures under
   test/fixtures/ — extend it additively. *)
let timing_report_obj ?design (r : result) =
  let name = match design with Some d -> d | None -> r.design in
  let pre = r.sta_pre and post = r.sta_post in
  Obs.Emit.Obj
    [
      ("design", Obs.Emit.String name);
      ("pre_route", Sta.Report.json pre (Sta.Report.paths pre));
      ("post_route", Sta.Report.json post (Sta.Report.paths post));
    ]

let timing_report_json ?design r =
  Obs.Emit.to_string (timing_report_obj ?design r) ^ "\n"

(* One result as a JSON object: the batch driver's per-design record
   (docs/OBSERVABILITY.md documents the schema).  The compile service
   embeds the same object under ["result"] in submit responses, so the
   two entry points stay schema-identical by construction. *)
let result_obj ?source (r : result) =
  let open Obs.Emit in
  Obj
    ([ ("design", String r.design); ("ok", Bool true) ]
    @ (match source with Some s -> [ ("source", String s) ] | None -> [])
    @ [
        ("luts", Int r.mapped_stats.Logic.n_gates);
        ("ffs", Int r.mapped_stats.Logic.n_latches);
        ("clbs", Int r.n_clusters);
        ("nx", Int r.grid.Fpga_arch.Grid.nx);
        ("ny", Int r.grid.Fpga_arch.Grid.ny);
        ("width", Int r.route_stats.Route.Router.channel_width);
        ( "min_width",
          match r.route_stats.Route.Router.minimum_width with
          | Some w -> Int w
          | None -> Null );
        ("critical_path_s", Float r.route_stats.Route.Router.critical_path_s);
        ("power_w", Float r.power.Power.Model.total_w);
        ("bits", Int r.bitstream.Bitstream.Dagger.bits);
        ("verified", Bool (r.bitstream_verified && r.fabric_verified));
        ("metrics", R.to_json r.metrics);
      ])

let result_json ?source r = Obs.Emit.to_string (result_obj ?source r) ^ "\n"

(* One-line summary used by reports and the CLI. *)
let summary r =
  Printf.sprintf
    "%-12s %4d LUTs %3d FFs %3d CLBs %dx%d W=%s crit=%.2fns P=%.2fmW bits=%d %s"
    r.design r.mapped_stats.Logic.n_gates r.mapped_stats.Logic.n_latches
    r.n_clusters r.grid.Fpga_arch.Grid.nx r.grid.Fpga_arch.Grid.ny
    (match r.route_stats.Route.Router.minimum_width with
    | Some w -> string_of_int w
    | None -> string_of_int r.route_stats.Route.Router.channel_width)
    (r.route_stats.Route.Router.critical_path_s *. 1e9)
    (r.power.Power.Model.total_w *. 1e3)
    r.bitstream.Bitstream.Dagger.bits
    (match (r.bitstream_verified, r.fabric_verified) with
    | true, true -> "[verified+emulated]"
    | true, false -> "[FABRIC MISMATCH]"
    | false, _ -> "[BITSTREAM MISMATCH]")
