(* The integrated design framework: VHDL -> configuration bitstream.

   This is the paper's primary contribution — the complete tool-supported
   flow of Fig. 11: VHDL Parser, DIVINER (synthesis), DRUID (EDIF fix-up),
   E2FMT (EDIF to BLIF), SIS (LUT mapping), T-VPack (packing), DUTYS
   (architecture file), VPR (place & route), PowerModel and DAGGER.  Every
   stage can also run standalone through the bin/ executables. *)

open Netlist

type config = {
  params : Fpga_arch.Params.t;
  seed : int;
  io_rat : int;
  search_min_width : bool; (* binary-search the minimum channel width *)
  route_width : int;       (* channel width when [search_min_width] is off *)
  timing_driven : bool;    (* VPR's path-timing-driven place & route *)
  clock_period : float option; (* target clock period (seconds) the STA
                                  checks slack against; None = unconstrained
                                  (slacks measured against achieved Dmax) *)
  verify_mapping : bool;   (* random-simulation equivalence after SIS *)
  verify_bitstream : bool; (* DAGGER round-trip check *)
  verify_fabric : bool;    (* emulate the bitstream on the fabric model *)
  power_options : Power.Model.options;
  jobs : int option;       (* Domain pool size; None = AMDREL_JOBS or the
                              recommended domain count *)
  place_starts : int;      (* independent annealing seeds; best wins *)
}

let default_config =
  {
    params = Fpga_arch.Params.amdrel;
    seed = 1;
    io_rat = 2;
    search_min_width = true;
    route_width = 12;
    timing_driven = false;
    clock_period = None;
    verify_mapping = true;
    verify_bitstream = true;
    verify_fabric = true;
    power_options = Power.Model.default_options;
    jobs = None;
    place_starts = 1;
  }

type stage_times = (string * float) list (* seconds per stage *)

type result = {
  design : string;
  source_stats : Logic.stats;       (* after synthesis, library gates *)
  mapped : Logic.t;
  mapped_stats : Logic.stats;
  packing : Pack.Cluster.packing;
  n_clusters : int;
  utilization : float;
  grid : Fpga_arch.Grid.t;
  placement_cost : float;
  routed : Route.Router.routed;
  route_stats : Route.Router.stats;
  power : Power.Model.report;
  bitstream : Bitstream.Dagger.generated;
  bitstream_verified : bool;
  fabric_verified : bool;   (* bitstream emulated on the fabric model *)
  sta_pre : Sta.Analysis.t;         (* unified STA at the final placement *)
  sta_post : Sta.Analysis.t;        (* unified STA over the routed design *)
  edif : string;                    (* intermediate products, for the tools *)
  blif_mapped : string;
  times : stage_times;
}

exception Flow_error of string * exn
(** Stage name and underlying failure. *)

let timed times label f =
  let t0 = Sys.time () in
  match f () with
  | v ->
      times := (label, Sys.time () -. t0) :: !times;
      v
  | exception e -> raise (Flow_error (label, e))

(* Run from a Logic network already in library-gate form (the entry point
   the BLIF-based tools share). *)
let run_network ?(config = default_config) (net : Logic.t) =
  let times = ref [] in
  (* wall vs CPU clock over the whole run: with parallel stages the CPU
     clock (Sys.time counts every domain) runs ahead of the wall clock,
     and their ratio is the effective speedup recorded below *)
  let wall0 = Unix.gettimeofday () and cpu0 = Sys.time () in
  let source_stats = Logic.stats net in
  (* DIVINER end: EDIF out; DRUID: normalise; E2FMT: back to BLIF/logic *)
  let edif =
    timed times "diviner-edif" (fun () -> Netlist.Edif.of_logic net)
  in
  let edif_text = Netlist.Edif.to_string edif in
  let normalized =
    timed times "druid" (fun () -> Synth.Druid.normalize edif)
  in
  let net2 =
    timed times "e2fmt" (fun () -> Netlist.Edif.to_logic normalized)
  in
  (* SIS: LUT mapping *)
  let mapped, _map_report =
    timed times "sis-flowmap" (fun () ->
        Techmap.Mapper.map_network ~k:config.params.Fpga_arch.Params.k
          ~verify:config.verify_mapping net2)
  in
  let blif_mapped = Netlist.Blif.to_string mapped in
  (* T-VPack *)
  let packing =
    timed times "t-vpack" (fun () ->
        Pack.Cluster.pack ~n:config.params.Fpga_arch.Params.n
          ~i:config.params.Fpga_arch.Params.i mapped)
  in
  (* VPR placement.  vpr-setup also levelises the unified timing graph:
     it depends only on the packed netlist, so one build serves the
     annealer's per-temperature refreshes, the router's criticalities and
     both final analyses. *)
  let problem, sta_graph =
    timed times "vpr-setup" (fun () ->
        let problem = Place.Problem.build ~io_rat:config.io_rat packing in
        (problem, Sta.Graph.build problem))
  in
  let sta_constraints =
    { Sta.Analysis.default_constraints with
      Sta.Analysis.period = config.clock_period }
  in
  let sta_at coords =
    Sta.Analysis.run ~constraints:sta_constraints sta_graph
      (Sta.Delays.of_placement problem ~coords)
  in
  let anneal =
    timed times "vpr-place" (fun () ->
        let timing =
          if config.timing_driven then
            Some
              (Place.Anneal.default_timing
                 ~analyze:(fun ~coords -> Sta.Analysis.to_td (sta_at coords)))
          else None
        in
        Place.Anneal.run_multistart
          ~options:{ Place.Anneal.seed = config.seed; inner_num = 1.0 }
          ?timing ?jobs:config.jobs ~starts:config.place_starts problem)
  in
  (* VPR routing *)
  let routed =
    timed times "vpr-route" (fun () ->
        let timing =
          if config.timing_driven then Some Place.Td_timing.default_model
          else None
        in
        if config.search_min_width then
          Route.Router.route_min_width ?timing ?jobs:config.jobs
            config.params anneal.Place.Anneal.placement
        else
          Route.Router.route_fixed ?timing ?jobs:config.jobs config.params
            anneal.Place.Anneal.placement ~width:config.route_width)
  in
  (* Unified STA: the placement-distance analysis at the final placement
     and the routed-Elmore analysis over the actual route trees, both on
     the shared timing graph.  Headline figures ride in [times] as
     counters (sta.* entries are seconds-of-delay/slack, not durations). *)
  let sta_pre, sta_post =
    timed times "sta" (fun () ->
        let pre =
          sta_at (Place.Placement.coords anneal.Place.Anneal.placement)
        in
        let post =
          Route.Router.sta ~constraints:sta_constraints ~graph:sta_graph
            routed
        in
        (pre, post))
  in
  times :=
    ("sta.tns", sta_post.Sta.Analysis.tns)
    :: ("sta.wns", sta_post.Sta.Analysis.wns)
    :: ("sta.dmax", sta_post.Sta.Analysis.dmax)
    :: !times;
  (* [stats] reuses the post-route analysis for its critical path *)
  let route_stats = Route.Router.stats ~sta:sta_post routed in
  (* router observability rides in [times] next to the stage wall-times,
     so benches and reports capture the iteration counters with no extra
     plumbing (entries are counts, not seconds) *)
  times :=
    ("route.par.serial-frac", route_stats.Route.Router.par_serial_frac)
    :: ("route.par.batch-max",
        float_of_int route_stats.Route.Router.par_batch_max)
    :: ("route.par.batches", float_of_int route_stats.Route.Router.par_batches)
    :: ("vpr-route.peak-overuse",
        float_of_int route_stats.Route.Router.peak_overuse)
    :: ("vpr-route.heap-pops", float_of_int route_stats.Route.Router.heap_pops)
    :: ("vpr-route.nets-rerouted",
        float_of_int route_stats.Route.Router.nets_rerouted)
    :: ("vpr-route.iterations",
        float_of_int route_stats.Route.Router.router_iterations)
    :: !times;
  (* PowerModel *)
  let power =
    timed times "powermodel" (fun () ->
        Power.Model.estimate ~options:config.power_options routed)
  in
  (* DAGGER *)
  let bitstream =
    timed times "dagger" (fun () -> Bitstream.Dagger.generate routed)
  in
  let bitstream_verified =
    (not config.verify_bitstream)
    || Bitstream.Dagger.verify routed bitstream.Bitstream.Dagger.bytes
       = Bitstream.Dagger.Verified
  in
  let fabric_verified =
    (not config.verify_fabric)
    || timed times "fabric-emulation" (fun () ->
           Bitstream.Dagger.verify_functional routed
             bitstream.Bitstream.Dagger.bytes)
  in
  (* pool observability: the configured worker count and the measured
     CPU/wall ratio over the whole run (~1.0 sequential, approaches the
     job count when the parallel stages dominate).  Counters, not
     seconds, like the vpr-route.* entries above. *)
  let wall_s = Unix.gettimeofday () -. wall0 and cpu_s = Sys.time () -. cpu0 in
  times :=
    ("parallel.speedup", if wall_s > 0.0 then cpu_s /. wall_s else 1.0)
    :: ("parallel.jobs",
        float_of_int (Util.Parallel.resolve_jobs ?jobs:config.jobs ()))
    :: !times;
  {
    design = net.Logic.model;
    source_stats;
    mapped;
    mapped_stats = Logic.stats mapped;
    packing;
    n_clusters = Pack.Cluster.cluster_count packing;
    utilization = Pack.Cluster.utilization packing;
    grid = problem.Place.Problem.grid;
    placement_cost = anneal.Place.Anneal.final_cost;
    routed;
    route_stats;
    power;
    bitstream;
    bitstream_verified;
    fabric_verified;
    sta_pre;
    sta_post;
    edif = edif_text;
    blif_mapped;
    times = List.rev !times;
  }

(* Full flow from VHDL source text. *)
let run_vhdl ?(config = default_config) text =
  let times = ref [] in
  let file =
    timed times "vhdl-parser" (fun () -> Netlist.Vhdl_parser.file_of_string text)
  in
  let top = List.nth file (List.length file - 1) in
  let net =
    timed times "diviner-synth" (fun () ->
        Synth.Diviner.synthesize_ast ~library:file top)
  in
  let result = run_network ~config net in
  { result with times = List.rev !times @ result.times }

(* Entry from a BLIF netlist (skips the VHDL/EDIF front end). *)
let run_blif ?(config = default_config) text =
  let net = Netlist.Blif.of_string text in
  run_network ~config net

(* Machine-readable timing report: the pre-route (placement-distance)
   and post-route (routed-Elmore) analyses side by side, one JSON object
   per design.  This exact shape is pinned by the golden fixtures under
   test/fixtures/ — extend it additively. *)
let timing_report_json ?design (r : result) =
  let name = match design with Some d -> d | None -> r.design in
  let pre = r.sta_pre and post = r.sta_post in
  Printf.sprintf "{\"design\": \"%s\", \"pre_route\": %s, \"post_route\": %s}\n"
    name
    (Sta.Report.to_json pre (Sta.Report.paths pre))
    (Sta.Report.to_json post (Sta.Report.paths post))

(* One-line summary used by reports and the CLI. *)
let summary r =
  Printf.sprintf
    "%-12s %4d LUTs %3d FFs %3d CLBs %dx%d W=%s crit=%.2fns P=%.2fmW bits=%d %s"
    r.design r.mapped_stats.Logic.n_gates r.mapped_stats.Logic.n_latches
    r.n_clusters r.grid.Fpga_arch.Grid.nx r.grid.Fpga_arch.Grid.ny
    (match r.route_stats.Route.Router.minimum_width with
    | Some w -> string_of_int w
    | None -> string_of_int r.route_stats.Route.Router.channel_width)
    (r.route_stats.Route.Router.critical_path_s *. 1e9)
    (r.power.Power.Model.total_w *. 1e3)
    r.bitstream.Bitstream.Dagger.bits
    (match (r.bitstream_verified, r.fabric_verified) with
    | true, true -> "[verified+emulated]"
    | true, false -> "[FABRIC MISMATCH]"
    | false, _ -> "[BITSTREAM MISMATCH]")
