(** The integrated design framework: VHDL to configuration bitstream.

    This is the paper's primary contribution — the complete tool-supported
    flow of Fig. 11: VHDL Parser, DIVINER (synthesis), DRUID (EDIF
    fix-up), E2FMT (EDIF to BLIF), SIS (LUT mapping), T-VPack (packing),
    DUTYS (architecture), VPR (place & route), PowerModel and DAGGER.
    Every stage also runs standalone through the bin/ executables.

    The tools compose into seven {e individually memoisable stages}

    {v synth -> techmap -> pack -> place -> route -> sta -> bitstream v}

    each wrapped, when {!config.cache_dir} is set, in a lookup against a
    content-addressed store ({!Cache.Store}).  A stage's key digests its
    stage name, a code-version tag, the content hash of its input
    artifact and the config fields that influence its output — so a warm
    re-run of an unchanged design returns every artifact from the store
    byte-identically (same bitstream bytes, same timing report), while
    an edited source re-runs only the stages whose inputs actually
    changed.  Keys hash the {e real} input artifact rather than the
    upstream stage's key, giving early cutoff: a source edit that
    synthesises to the same netlist stops recomputing after synth.  On a
    stage hit the stage's timers and trace spans are skipped along with
    the work, and the [cache.hit]/[cache.miss]/[cache.store]/
    [cache.bytes] counters record the traffic; the deterministic
    counters and gauges derived from cached artifacts ([place.*],
    [vpr-route.*], [sta.dmax] …) are re-emitted identically either way.
    docs/ARCHITECTURE.md documents the stage graph, the full key schema
    and the invalidation rules. *)

type config = {
  params : Fpga_arch.Params.t;
  seed : int;
  io_rat : int;
  search_min_width : bool; (** binary-search the minimum channel width *)
  route_width : int;       (** channel width when [search_min_width] is off *)
  timing_driven : bool;    (** VPR's path-timing-driven place & route,
                               driven by the unified STA engine
                               ({!Sta.Analysis} over a timing graph
                               shared across placement, routing and the
                               final reports) *)
  clock_period : float option;
      (** target clock period in seconds for slack/WNS/TNS; [None]
          measures slack against the achieved critical path instead.
          The fabric's flip-flops are double-edge-triggered, so a
          period [p] leaves [p/2] for combinational logic. *)
  verify_mapping : bool;   (** random-simulation equivalence after SIS *)
  verify_bitstream : bool; (** DAGGER structural round-trip *)
  verify_fabric : bool;    (** emulate the bitstream on the fabric model *)
  power_options : Power.Model.options;
  jobs : int option;       (** Domain pool size for the parallel stages;
                               [None] = [AMDREL_JOBS] or the machine's
                               recommended domain count.  Outputs are
                               bit-identical for any value. *)
  place_starts : int;      (** independent annealing seeds; best final
                               cost wins (1 = single start) *)
  incremental_sta : bool;
      (** refresh the annealer's timing through {!Sta.Analysis.update}
          cone re-propagation instead of a full analysis per
          temperature.  Bit-identical results either way; this is a
          speed switch (kept as a switch so the equivalence stays
          testable end to end). *)
  sta_full_refresh_every : int;
      (** run a full analysis every Kth refresh of the incremental
          chain (a drift backstop; [<= 0] makes every refresh full) *)
  place_prune_margin : float option;
      (** multi-start budget pruning: abandon starts whose cost trails
          the incumbent by more than this fraction at each milestone
          ([None] runs every start to completion).  Deterministic and
          jobs-independent; see {!Place.Anneal.run_multistart}. *)
  place_prune_interval : int;
      (** temperature steps between pruning milestones *)
  cache_dir : string option;
      (** directory of the content-addressed stage-result store
          ([_amdrel_cache/] by convention; the CLI defaults to it,
          [--no-cache] maps to [None]).  [None] disables memoisation
          entirely: every stage recomputes, nothing touches the disk.
          Safe to share between concurrent runs — entries are written
          atomically and corrupt entries read as misses.  The speed-only
          config knobs ([jobs], [incremental_sta],
          [sta_full_refresh_every]) are excluded from stage keys, so
          flipping them still hits; every output-affecting field is
          included (see docs/ARCHITECTURE.md for the field-by-field
          schema). *)
}

val default_config : config
(** The paper's platform, all verifications on, width search on,
    routability-driven, single placement start, automatic job count,
    caching off. *)

type stage_times = (string * float) list
(** The legacy flat view of the metric registry
    ({!Obs.Registry.to_assoc} of {!result.metrics}): stage timers as
    [(stage, cpu_seconds)] immediately followed by
    [(stage ^ ".wall", wall_seconds)], counters and gauges as floats,
    histograms omitted.  Dotted names are counters/gauges rather than
    seconds: the ["vpr-route.*"] router counters (iterations, nets
    rerouted, heap pops, peak overuse), the ["route.par.*"] intra-route
    parallelism counters (batches, batch-max, serial-frac), the
    ["sta.*"] post-route timing figures (dmax/wns/tns), the
    ["sta.phase.*"] analysis-phase timers and the ["parallel.*"] pool
    metrics (see docs/OBSERVABILITY.md for the full schema). *)

type result = {
  design : string;
  source_stats : Netlist.Logic.stats; (** after synthesis, library gates *)
  mapped : Netlist.Logic.t;
  mapped_stats : Netlist.Logic.stats;
  packing : Pack.Cluster.packing;
  n_clusters : int;
  utilization : float;
  grid : Fpga_arch.Grid.t;
  placement_cost : float;
  routed : Route.Router.routed;
  route_stats : Route.Router.stats;
  power : Power.Model.report;
  bitstream : Bitstream.Dagger.generated;
  bitstream_verified : bool;
  fabric_verified : bool;
  sta_pre : Sta.Analysis.t;
      (** unified STA at the final placement (placement-distance delays) *)
  sta_post : Sta.Analysis.t;
      (** unified STA over the routed design (routed-Elmore delays);
          feed either to {!Sta.Report.paths} for critical-path reports *)
  edif : string;        (** intermediate products, for the tools *)
  blif_mapped : string;
  metrics : Obs.Registry.snapshot;
      (** the full typed telemetry of the run: every stage timer
          (wall + CPU), counter, gauge and histogram, merged across
          domains (see {!Obs.Registry}).  [times] is derived from this
          snapshot. *)
  times : stage_times;
}

exception Flow_error of string * exn
(** Stage name and the underlying failure. *)

val run_network : ?config:config -> ?obs:Obs.Registry.t -> Netlist.Logic.t -> result
(** Run from a Logic network already in library-gate form (the entry the
    BLIF-based tools share).  [?obs] supplies the metric registry to
    record into (a fresh one is created when omitted); spans are emitted
    into the ambient {!Obs.Span} trace, if any. *)

val run_vhdl : ?config:config -> ?obs:Obs.Registry.t -> string -> result
(** The full flow from VHDL source text (possibly several entities; the
    last is the top). *)

val run_blif : ?config:config -> ?obs:Obs.Registry.t -> string -> result

val timing_report_obj : ?design:string -> result -> Obs.Emit.t
(** One JSON object holding the pre-route and post-route
    {!Sta.Report.to_json} reports side by side ([design] overrides the
    name recorded in the result; the CLI passes the input's base name).
    The shape is pinned by the golden fixtures under [test/fixtures/] —
    extend additively. *)

val timing_report_json : ?design:string -> result -> string
(** [timing_report_obj] rendered compactly, newline-terminated. *)

val result_obj : ?source:string -> result -> Obs.Emit.t
(** One JSON object per compiled design: the batch driver's per-design
    record ([BASE.result.json]) — headline QoR figures (LUTs, FFs, CLBs,
    grid, channel width, critical path, power, bitstream bits, verified
    verdict) plus the full metric registry under ["metrics"].  [source]
    records the input path.  The compile service embeds the same object
    under ["result"] in submit responses.  Schema in
    docs/OBSERVABILITY.md. *)

val result_json : ?source:string -> result -> string
(** [result_obj] rendered compactly, newline-terminated. *)

val summary : result -> string
(** One line: LUTs/FFs/CLBs/grid/width/critical path/power/bits/verdicts. *)
