(** Architecture file generation and parsing (the DUTYS tool).

    A small keyword format, one entry per line; see {!to_string} output
    for the exact shape.  Repeatable [segment LENGTH COUNT [FC_IN
    FC_OUT METAL]] lines accumulate a mixed-length channel spec
    ({!Params.t.segments}); without any the channel is the legacy
    uniform [segment_length] architecture. *)

exception Parse_error of string

val to_string : Params.t -> string
val to_file : string -> Params.t -> unit

val of_string : string -> Params.t
(** Unspecified fields default to {!Params.amdrel}; the result is
    validated. @raise Parse_error / {!Params.Invalid_params}. *)

val of_file : string -> Params.t
