(* FPGA architecture parameters (what DUTYS captures in the architecture
   file).  Defaults are the platform the paper selected in §3:
   K = 4, N = 5, I = 12, pass-transistor switches at 10x minimum width,
   length-1 segments, disjoint switch boxes (Fs = 3), Fc = 1. *)

type switch_kind = Pass_transistor | Tristate_buffer

(* Metal configurations of the routing wires (the three layouts explored
   in Figs. 8-10).  Mirrored by [Spice.Tech.wire_config]; this library
   sits below lib/spice, so the electrical translation lives in the
   consumers (Route.Timing maps these onto the measured per-length RC). *)
type metal = Metal_min_min | Metal_min_double | Metal_double_double

let metal_name = function
  | Metal_min_min -> "min_min"
  | Metal_min_double -> "min_double"
  | Metal_double_double -> "double_double"

let metal_of_name = function
  | "min_min" -> Some Metal_min_min
  | "min_double" -> Some Metal_min_double
  | "double_double" -> Some Metal_double_double
  | _ -> None

(* One segment type of a mixed-length channel: [s_count] tracks out of
   every sum-of-counts tracks carry wires spanning [s_length] tiles, with
   their own connection-box fractions and metal layout.  A channel
   declaring [4xL1 + 4xL2 + 2xL4] repeats that 10-track pattern across
   the channel width (truncated to a prefix when the width is smaller
   than one repetition). *)
type segment = {
  s_length : int;   (* logic-block tiles spanned by one wire *)
  s_count : int;    (* tracks of this type per pattern repetition *)
  s_fc_in : float;  (* input-pin connection-box fraction, over this type *)
  s_fc_out : float; (* output-pin connection-box fraction, over this type *)
  s_metal : metal;
}

type t = {
  name : string;
  k : int;                 (* LUT inputs *)
  n : int;                 (* BLEs per CLB *)
  i : int;                 (* CLB inputs *)
  fc_in : float;           (* fraction of tracks an input pin connects to *)
  fc_out : float;          (* fraction of tracks an output pin connects to *)
  fs : int;                (* switch-box fanout per incoming wire *)
  segment_length : int;    (* logic blocks spanned by one wire segment *)
  segments : segment list; (* mixed-length channel spec; [] = uniform
                              [segment_length] wires at the global Fc *)
  switch : switch_kind;
  switch_width : float;    (* multiples of the minimum transistor width *)
  io_rat : int;            (* IO pads per perimeter grid position *)
  registered_outputs : bool;  (* all CLB outputs can be registered *)
  gated_clock : bool;         (* BLE + CLB gated clocks (paper Tables 2-3) *)
}

(* The paper's empirical rule: I = (K/2)(N+1) gives ~98% BLE utilisation. *)
let recommended_inputs ~k ~n = k * (n + 1) / 2

let amdrel =
  {
    name = "amdrel_018";
    k = 4;
    n = 5;
    i = recommended_inputs ~k:4 ~n:5;
    fc_in = 1.0;
    fc_out = 1.0;
    fs = 3;
    segment_length = 1;
    segments = [];
    switch = Pass_transistor;
    switch_width = 10.0;
    io_rat = 2;
    registered_outputs = true;
    gated_clock = true;
  }

exception Invalid_params of string

(* The spec the RR-graph builder actually consumes: the declared mix, or
   the legacy uniform channel (one type of [segment_length] wires at the
   global Fc, in the §3.3 min-width/double-spacing metal) when no mix is
   declared.  Never empty. *)
let effective_segments p =
  match p.segments with
  | [] ->
      [
        {
          s_length = p.segment_length;
          s_count = 1;
          s_fc_in = p.fc_in;
          s_fc_out = p.fc_out;
          s_metal = Metal_min_double;
        };
      ]
  | segs -> segs

let validate_segment idx (s : segment) =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Invalid_params (Printf.sprintf "segment %d (L%d): %s" idx s.s_length msg)))
      fmt
  in
  if s.s_length < 1 then
    fail "length must be a positive tile count (got %d)" s.s_length;
  if s.s_length > 64 then
    fail "length %d exceeds the supported maximum of 64 tiles" s.s_length;
  if s.s_count < 1 then
    fail "count must be a positive number of tracks per pattern (got %d)"
      s.s_count;
  if s.s_fc_in <= 0.0 || s.s_fc_in > 1.0 then
    fail "Fc_in must be in (0, 1] (got %g)" s.s_fc_in;
  if s.s_fc_out <= 0.0 || s.s_fc_out > 1.0 then
    fail "Fc_out must be in (0, 1] (got %g)" s.s_fc_out

let validate p =
  let fail msg = raise (Invalid_params msg) in
  if p.k < 2 || p.k > 5 then fail "K must be between 2 and 5";
  if p.n < 1 then fail "N must be positive";
  if p.i < p.k then fail "I must be at least K";
  if p.i > p.k * p.n then fail "I must not exceed K*N (a full crossbar)";
  if p.fc_in <= 0.0 || p.fc_in > 1.0 then fail "Fc_in must be in (0, 1]";
  if p.fc_out <= 0.0 || p.fc_out > 1.0 then fail "Fc_out must be in (0, 1]";
  if p.fs <> 3 then fail "only the disjoint switch box (Fs = 3) is supported";
  if p.segment_length < 1 then fail "segment length must be positive";
  List.iteri validate_segment p.segments;
  if p.switch_width < 1.0 then fail "switch width below minimum";
  if p.io_rat < 1 then fail "io_rat must be positive";
  p

(* ---------- segment-mix helpers ---------- *)

(* "4xL1+4xL2+2xL4" <-> a segment list (defaults for Fc and metal). *)
let segments_of_string ?(fc_in = 1.0) ?(fc_out = 1.0)
    ?(metal = Metal_min_double) text =
  let fail msg = raise (Invalid_params msg) in
  let text = String.trim text in
  if text = "" then fail "segment mix must be non-empty (e.g. \"4xL1+2xL4\")";
  String.split_on_char '+' text
  |> List.map (fun term ->
         let term = String.trim term in
         let count, rest =
           match String.index_opt term 'x' with
           | Some i ->
               let c =
                 try int_of_string (String.sub term 0 i)
                 with _ ->
                   fail
                     (Printf.sprintf
                        "bad segment term %S: expected COUNTxL<len>" term)
               in
               (c, String.sub term (i + 1) (String.length term - i - 1))
           | None -> (1, term)
         in
         let len =
           if String.length rest >= 2 && (rest.[0] = 'L' || rest.[0] = 'l')
           then
             try int_of_string (String.sub rest 1 (String.length rest - 1))
             with _ ->
               fail (Printf.sprintf "bad segment length in term %S" term)
           else fail (Printf.sprintf "bad segment term %S: expected L<len>" term)
         in
         {
           s_length = len;
           s_count = count;
           s_fc_in = fc_in;
           s_fc_out = fc_out;
           s_metal = metal;
         })

let mix_name p =
  effective_segments p
  |> List.map (fun s -> Printf.sprintf "%dxL%d" s.s_count s.s_length)
  |> String.concat "+"

(* Per-track channel composition: track [t] of a width-[width] channel
   carries segment type [fst plan.(t)] with stagger offset
   [snd plan.(t)] (the wire covering tile 1 on that track starts
   [offset] tiles before the channel, so consecutive tracks of one type
   break at evenly distributed positions).  For the uniform single-type
   channel this reduces to offset = t mod length — the legacy stagger. *)
let track_plan p ~width =
  let segs = Array.of_list (effective_segments p) in
  let pattern =
    Array.concat
      (List.mapi
         (fun si (s : segment) -> Array.make s.s_count si)
         (Array.to_list segs))
  in
  let plen = Array.length pattern in
  let seen = Array.make (Array.length segs) 0 in
  let plan = Array.make (max width 0) (0, 0) in
  for t = 0 to width - 1 do
    let si = pattern.(t mod plen) in
    let rank = seen.(si) in
    seen.(si) <- rank + 1;
    plan.(t) <- (si, rank mod segs.(si).s_length)
  done;
  plan

(* Follows the paper's utilisation rule? (informational) *)
let follows_input_rule p = p.i = recommended_inputs ~k:p.k ~n:p.n

(* Configuration bits per CLB tile, from the platform description in §3:
   - each BLE: 2^K LUT bits, 1 output-register select, 1 clock enable;
   - fully connected local crossbar: each of the N*K LUT inputs picks one
     of I + N sources (a (I+N)-to-1 mux, encoded one-hot-free in
     ceil(log2 (I+N+1)) bits — the +1 is the unconnected state). *)
let clb_config_bits p =
  let mux_inputs = p.i + p.n + 1 in
  let bits_per_mux =
    let rec log2up v acc = if v <= 1 then acc else log2up ((v + 1) / 2) (acc + 1) in
    log2up mux_inputs 0
  in
  (p.n * ((1 lsl p.k) + 2)) + (p.n * p.k * bits_per_mux)
