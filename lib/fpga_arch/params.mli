(** FPGA architecture parameters (what DUTYS captures in the architecture
    file).  Defaults are the platform the paper selected in §3. *)

type switch_kind = Pass_transistor | Tristate_buffer

type metal = Metal_min_min | Metal_min_double | Metal_double_double
(** Routing-wire metal layout (the three configurations of Figs. 8-10):
    minimum width / minimum spacing, minimum width / double spacing (the
    §3.3 selection), double width / double spacing.  Mirrors
    [Spice.Tech.wire_config]; the electrical translation lives in
    [Route.Timing] because this library sits below lib/spice. *)

val metal_name : metal -> string
(** ["min_min"], ["min_double"] or ["double_double"] (archfile keywords). *)

val metal_of_name : string -> metal option

type segment = {
  s_length : int;   (** logic-block tiles spanned by one wire *)
  s_count : int;    (** tracks of this type per pattern repetition *)
  s_fc_in : float;  (** input-pin connection fraction, over this type *)
  s_fc_out : float; (** output-pin connection fraction, over this type *)
  s_metal : metal;
}
(** One segment type of a mixed-length channel.  A channel declaring
    [4xL1 + 4xL2 + 2xL4] repeats that 10-track pattern across the
    channel width (truncated to a prefix when the width is smaller than
    one repetition). *)

type t = {
  name : string;
  k : int;                 (** LUT inputs *)
  n : int;                 (** BLEs per CLB *)
  i : int;                 (** CLB inputs *)
  fc_in : float;           (** fraction of tracks an input pin connects to *)
  fc_out : float;
  fs : int;                (** switch-box fanout per incoming wire *)
  segment_length : int;    (** logic blocks spanned by one wire segment *)
  segments : segment list;
      (** mixed-length channel spec; [[]] = uniform [segment_length]
          wires at the global Fc (the legacy single-type channel) *)
  switch : switch_kind;
  switch_width : float;    (** multiples of the minimum transistor width *)
  io_rat : int;            (** IO pads per perimeter grid position *)
  registered_outputs : bool;
  gated_clock : bool;      (** BLE + CLB gated clocks (Tables 2-3) *)
}

val recommended_inputs : k:int -> n:int -> int
(** The paper's empirical rule I = (K/2)(N+1) (~98 % BLE utilisation). *)

val amdrel : t
(** The selected platform: K=4, N=5, I=12, Fc=1, Fs=3, length-1 segments,
    10x pass-transistor switches, gated clocks. *)

exception Invalid_params of string

val validate : t -> t
(** Identity on valid parameters, including the full segment spec
    (positive lengths and counts, per-type Fc in (0, 1]).
    @raise Invalid_params otherwise, with an actionable message. *)

val effective_segments : t -> segment list
(** The spec the RR-graph builder consumes: the declared [segments]
    mix, or the legacy uniform channel (one type of [segment_length]
    wires at the global Fc in the min-width/double-spacing metal) when
    no mix is declared.  Never empty. *)

val segments_of_string :
  ?fc_in:float -> ?fc_out:float -> ?metal:metal -> string -> segment list
(** Parse a mix like ["4xL1+4xL2+2xL4"] (count defaults to 1, so ["L2"]
    is one track of length 2 per pattern); Fc and metal default per
    term from the optional arguments.
    @raise Invalid_params on an empty or malformed mix. *)

val mix_name : t -> string
(** The effective mix as ["4xL1+4xL2+2xL4"] (reports and sweep labels). *)

val track_plan : t -> width:int -> (int * int) array
(** Per-track channel composition: track [t] carries segment type
    [fst plan.(t)] (an index into {!effective_segments}) with stagger
    offset [snd plan.(t)].  The uniform single-type channel reduces to
    offset = t mod length — the legacy stagger. *)

val follows_input_rule : t -> bool

val clb_config_bits : t -> int
(** Configuration bits per CLB tile: LUT contents, register/clock-enable
    selects, and the fully connected input crossbar codes. *)
