(* Append-only per-suite run ledger.  See ledger.mli. *)

module E = Obs.Emit
module R = Obs.Registry
module F = Core.Flow

type t = {
  suite : string;
  design : string;
  design_hash : string;
  params_fp : string;
  mix : string;
  seed : int;
  jobs : int;
  git : string;
  at : string;
  luts : int;
  clbs : int;
  width : int;
  wmin : int option;
  crit_s : float;
  wns_s : float;
  tns_s : float;
  power_w : float;
  bits : int;
  stage_wall : (string * float) list;
  stage_cpu : (string * float) list;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
}

let utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let git_describe () =
  let read_first_line cmd =
    match Unix.open_process_in cmd with
    | exception _ -> None
    | ic -> (
        let line = try Some (String.trim (input_line ic)) with _ -> None in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 -> (
            match line with Some l when l <> "" -> Some l | _ -> None)
        | _ -> None)
  in
  match read_first_line "git describe --always --dirty 2>/dev/null" with
  | Some d -> d
  | None -> "-"

let counter snap key =
  match R.find snap key with Some (R.Counter n) -> n | _ -> 0

(* Top-level stage timers only: dotted keys such as sta.phase.forward
   or place.move-eval are sub-stage profiling, not the per-stage cost
   profile. *)
let stage_timers snap =
  List.filter_map
    (fun (e : R.entry) ->
      match e.R.value with
      | R.Timer { wall_s; cpu_s; _ } when not (String.contains e.R.key '.') ->
          Some (e.R.key, wall_s, cpu_s)
      | _ -> None)
    snap

let of_result ~suite ~config ~source (r : F.result) =
  let timers = stage_timers r.F.metrics in
  {
    suite;
    design = r.F.design;
    design_hash = Digest.to_hex (Digest.string source);
    params_fp =
      Digest.to_hex
        (Digest.string (Marshal.to_string config.F.params []));
    mix = Fpga_arch.Params.mix_name config.F.params;
    seed = config.F.seed;
    jobs = Util.Parallel.resolve_jobs ?jobs:config.F.jobs ();
    git = git_describe ();
    at = utc_now ();
    luts = r.F.mapped_stats.Netlist.Logic.n_gates;
    clbs = r.F.n_clusters;
    width = r.F.route_stats.Route.Router.channel_width;
    wmin = r.F.route_stats.Route.Router.minimum_width;
    crit_s = r.F.route_stats.Route.Router.critical_path_s;
    wns_s = r.F.sta_post.Sta.Analysis.wns;
    tns_s = r.F.sta_post.Sta.Analysis.tns;
    power_w = r.F.power.Power.Model.total_w;
    bits = r.F.bitstream.Bitstream.Dagger.bits;
    stage_wall = List.map (fun (k, w, _) -> (k, w)) timers;
    stage_cpu = List.map (fun (k, _, c) -> (k, c)) timers;
    cache_hits = counter r.F.metrics "cache.hit";
    cache_misses = counter r.F.metrics "cache.miss";
    cache_stores = counter r.F.metrics "cache.store";
  }

let to_json (t : t) =
  let secs kvs = E.Obj (List.map (fun (k, v) -> (k, E.Float v)) kvs) in
  E.Obj
    [
      ("suite", E.String t.suite);
      ("design", E.String t.design);
      ("design_hash", E.String t.design_hash);
      ("params_fp", E.String t.params_fp);
      ("mix", E.String t.mix);
      ("seed", E.Int t.seed);
      ("jobs", E.Int t.jobs);
      ("git", E.String t.git);
      ("at", E.String t.at);
      ("luts", E.Int t.luts);
      ("clbs", E.Int t.clbs);
      ("width", E.Int t.width);
      ("wmin", match t.wmin with Some w -> E.Int w | None -> E.Null);
      ("crit_s", E.Float t.crit_s);
      ("wns_s", E.Float t.wns_s);
      ("tns_s", E.Float t.tns_s);
      ("power_w", E.Float t.power_w);
      ("bits", E.Int t.bits);
      ("stage_wall_s", secs t.stage_wall);
      ("stage_cpu_s", secs t.stage_cpu);
      ("cache_hits", E.Int t.cache_hits);
      ("cache_misses", E.Int t.cache_misses);
      ("cache_stores", E.Int t.cache_stores);
    ]

let of_json json =
  let module J = Obs.Jsonin in
  let str k =
    match Option.bind (J.member k json) J.get_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" k)
  in
  let int k =
    match Option.bind (J.member k json) J.get_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing integer field %S" k)
  in
  let flt k =
    match Option.bind (J.member k json) J.get_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing number field %S" k)
  in
  let secs k =
    match J.member k json with
    | Some (E.Obj kvs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (key, v) :: rest -> (
              match J.get_float v with
              | Some f -> go ((key, f) :: acc) rest
              | None -> Error (Printf.sprintf "non-number in %S" k))
        in
        go [] kvs
    | _ -> Error (Printf.sprintf "missing object field %S" k)
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* suite = str "suite" in
  let* design = str "design" in
  let* design_hash = str "design_hash" in
  let* params_fp = str "params_fp" in
  let* mix = str "mix" in
  let* seed = int "seed" in
  let* jobs = int "jobs" in
  let* git = str "git" in
  let* at = str "at" in
  let* luts = int "luts" in
  let* clbs = int "clbs" in
  let* width = int "width" in
  let* wmin =
    match J.member "wmin" json with
    | None | Some E.Null -> Ok None
    | Some v -> (
        match J.get_int v with
        | Some w -> Ok (Some w)
        | None -> Error "field \"wmin\" has the wrong type")
  in
  let* crit_s = flt "crit_s" in
  let* wns_s = flt "wns_s" in
  let* tns_s = flt "tns_s" in
  let* power_w = flt "power_w" in
  let* bits = int "bits" in
  let* stage_wall = secs "stage_wall_s" in
  let* stage_cpu = secs "stage_cpu_s" in
  let* cache_hits = int "cache_hits" in
  let* cache_misses = int "cache_misses" in
  let* cache_stores = int "cache_stores" in
  Ok
    {
      suite;
      design;
      design_hash;
      params_fp;
      mix;
      seed;
      jobs;
      git;
      at;
      luts;
      clbs;
      width;
      wmin;
      crit_s;
      wns_s;
      tns_s;
      power_w;
      bits;
      stage_wall;
      stage_cpu;
      cache_hits;
      cache_misses;
      cache_stores;
    }

let path ~dir ~suite = Filename.concat dir (suite ^ ".jsonl")

let append ~dir t =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let fd =
    Unix.openfile
      (path ~dir ~suite:t.suite)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let line = E.to_string (to_json t) ^ "\n" in
      (* one write: O_APPEND makes whole-line interleaving atomic for
         concurrent appenders on a local fs *)
      ignore (Unix.write_substring fd line 0 (String.length line)))

let read ~dir ~suite =
  let file = path ~dir ~suite in
  if not (Sys.file_exists file) then ([], 0)
  else begin
    let ic = open_in file in
    let records = ref [] and skipped = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Obs.Jsonin.parse_result line with
           | Error _ -> incr skipped
           | Ok json -> (
               match of_json json with
               | Ok r -> records := r :: !records
               | Error _ -> incr skipped)
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !records, !skipped)
  end
