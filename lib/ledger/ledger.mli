(** The run ledger: one append-only JSONL file per suite, one record
    per completed flow — the durable QoR/perf trajectory the bench
    suite accumulates across commits.

    Each record carries identity (suite, design, a content hash of the
    design source, the architecture params fingerprint and segment-mix
    name, the seed, [git describe]), the QoR headline (minimum channel
    width, routed critical path, WNS/TNS, power, bitstream bits, LUT
    and CLB counts), and the run's cost profile (per-stage wall and CPU
    seconds, cache hit/miss/store counts, the jobs setting, a
    timestamp).  The QoR fields are deterministic for a given source +
    params + seed by the flow's determinism contract; the cost fields
    are measurements and vary run to run.  [amdrel_report] folds a
    ledger into [BENCH_<suite>.json] and gates on the deterministic
    fields only (docs/OBSERVABILITY.md § Run ledger documents both
    schemas).

    Appends are a single [O_APPEND] write of one line, so concurrent
    writers (the bench suite's designs, parallel CI shards on a shared
    volume) interleave whole records rather than corrupting bytes. *)

type t = {
  suite : string;
  design : string;
  design_hash : string;  (** MD5 hex of the design source text *)
  params_fp : string;    (** architecture-params fingerprint *)
  mix : string;          (** segment mix, e.g. ["2xL1+1xL4"] *)
  seed : int;
  jobs : int;
  git : string;          (** [git describe --always --dirty], or ["-"] *)
  at : string;           (** UTC timestamp, [YYYY-MM-DDThh:mm:ssZ] *)
  luts : int;
  clbs : int;
  width : int;           (** routed channel width *)
  wmin : int option;     (** minimum routable width, when searched *)
  crit_s : float;        (** routed critical path, s *)
  wns_s : float;
  tns_s : float;
  power_w : float;
  bits : int;
  stage_wall : (string * float) list;  (** top-level stage timers, s *)
  stage_cpu : (string * float) list;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
}

val of_result :
  suite:string ->
  config:Core.Flow.config ->
  source:string ->
  Core.Flow.result ->
  t
(** Build a record from a finished flow.  [source] is the design source
    text (hashed, not stored); identity fields come from [config],
    measurements from the result's metric snapshot. *)

val to_json : t -> Obs.Emit.t
val of_json : Obs.Emit.t -> (t, string) result

val path : dir:string -> suite:string -> string
(** [dir/<suite>.jsonl], the file {!append} and {!read} use. *)

val append : dir:string -> t -> unit
(** Append one line to [dir/<suite>.jsonl], creating [dir] (one level)
    and the file as needed. *)

val read : dir:string -> suite:string -> t list * int
(** All parseable records of [dir/<suite>.jsonl] in file order, plus
    the count of malformed/alien lines skipped.  ([[], 0]) when the
    file does not exist. *)

val git_describe : unit -> string
(** Best-effort [git describe --always --dirty] of the CWD's repo;
    ["-"] when git or the repo is unavailable. *)

val utc_now : unit -> string
(** The [at] timestamp format. *)
