(* The one JSON emitter every machine-readable surface shares (timing
   reports, routebench lines, metrics files, Chrome traces).  A tiny
   value tree rather than a printer per call site, so escaping and
   number formatting cannot drift between surfaces.

   Layout contract: objects and arrays render on one line with ", "
   between elements and ": " after keys — the byte layout the golden
   timing fixtures were recorded with. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.9g: enough digits that every deterministic metric round-trips to
   the same bytes on every run, short enough to stay readable.  JSON has
   no inf/nan tokens, so non-finite floats render as null. *)
let float_str f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.9g" f

let to_buffer b v =
  let add = Buffer.add_string b in
  let rec go = function
    | Null -> add "null"
    | Bool x -> add (if x then "true" else "false")
    | Int i -> add (string_of_int i)
    | Float f -> add (float_str f)
    | String s ->
        add "\"";
        add (escape s);
        add "\""
    | List xs ->
        add "[";
        List.iteri
          (fun i x ->
            if i > 0 then add ", ";
            go x)
          xs;
        add "]"
    | Obj kvs ->
        add "{";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then add ", ";
            add "\"";
            add (escape k);
            add "\": ";
            go x)
          kvs;
        add "}"
  in
  go v

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b
