(** Shared compact-JSON emitter for every machine-readable surface of
    the flow: timing reports, routebench lines, [--metrics-json] files
    and Chrome trace exports.

    Rendering contract (relied on by the golden timing fixtures):
    one line, [", "] between elements, [": "] after object keys,
    strings escaped with backslash escapes for quote, backslash and
    newline, and [\\uXXXX] for other control characters.  Floats render with [%.9g]; non-finite floats render as
    [null] (JSON has no inf/nan tokens). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-body escaping of [s] (no quotes). *)

val to_buffer : Buffer.t -> t -> unit
(** [to_buffer b v] appends the rendering of [v] to [b]. *)

val to_string : t -> string
(** [to_string v] renders [v] as compact single-line JSON. *)
