(* Bounded SPSC progress-event ring.

   The producer (the domain running a flow) publishes an event by
   writing its slot and then Atomic.set-ing [tail] — the release store
   that makes the slot visible.  The consumer (daemon IO loop or CLI)
   reads [tail] with an acquire load and walks [head..tail).  Overflow
   never blocks the producer: when the ring is full the event is counted
   into [dropped] and discarded, and the next drain synthesizes a
   [Dropped] record for the gap.

   The ambient slot mirrors Span's discipline exactly: one DLS cell per
   domain, [with_sink] installs/restores, pool worker domains see no
   ambient and their emissions vanish.  That — plus [without] around the
   jobs-dependent paths — is what keeps the event-kind sequence
   deterministic across jobs settings. *)

type kind =
  | Stage_begin of { stage : string }
  | Stage_end of { stage : string; wall_s : float }
  | Cache_lookup of { stage : string; hit : bool }
  | Route_iteration of {
      iteration : int;
      overused : int;
      rerouted : int;
      heap_pops : int;
    }
  | Place_temperature of { step : int; temperature : float; accept_rate : float }
  | Heartbeat
  | Dropped of { count : int }

type event = { seq : int; t_s : float; kind : kind }

type slot = { s_t : float; s_kind : kind }

type sink = {
  slots : slot option array;
  cap : int;
  head : int Atomic.t; (* consumer-owned: next index to read *)
  tail : int Atomic.t; (* producer-owned: next index to write *)
  dropped : int Atomic.t;
  epoch : float;
  mutable next_seq : int; (* consumer-owned *)
  mutable drop_seen : int; (* consumer-owned: drops already reported *)
}

let create ?(capacity = 8192) () =
  let cap = max 16 capacity in
  {
    slots = Array.make cap None;
    cap;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    dropped = Atomic.make 0;
    epoch = Unix.gettimeofday ();
    next_seq = 0;
    drop_seen = 0;
  }

let ambient : sink option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_sink s f =
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := Some s;
  Fun.protect ~finally:(fun () -> cell := saved) f

let without f =
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := None;
  Fun.protect ~finally:(fun () -> cell := saved) f

let active () = Option.is_some !(Domain.DLS.get ambient)

let emit_to s kind =
  let tail = Atomic.get s.tail in
  let head = Atomic.get s.head in
  if tail - head >= s.cap then Atomic.incr s.dropped
  else begin
    s.slots.(tail mod s.cap) <-
      Some { s_t = Unix.gettimeofday () -. s.epoch; s_kind = kind };
    (* release: publishes the slot write above *)
    Atomic.set s.tail (tail + 1)
  end

let emit kind =
  match !(Domain.DLS.get ambient) with
  | None -> ()
  | Some s -> emit_to s kind

let stamp s kind t_s =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  { seq; t_s; kind }

let next_seq s =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  seq

let heartbeat s = stamp s Heartbeat (Unix.gettimeofday () -. s.epoch)

let dropped_total s = Atomic.get s.dropped

let drain s =
  let tail = Atomic.get s.tail (* acquire: slots up to here are visible *) in
  let head = Atomic.get s.head in
  let gap =
    let d = Atomic.get s.dropped in
    let fresh = d - s.drop_seen in
    s.drop_seen <- d;
    fresh
  in
  let out = ref [] in
  if gap > 0 then
    out :=
      [ stamp s (Dropped { count = gap }) (Unix.gettimeofday () -. s.epoch) ];
  for i = head to tail - 1 do
    match s.slots.(i mod s.cap) with
    | None -> ()
    | Some sl ->
        s.slots.(i mod s.cap) <- None;
        out := stamp s sl.s_kind sl.s_t :: !out
  done;
  Atomic.set s.head tail;
  List.rev !out

let kind_name = function
  | Stage_begin _ -> "stage-begin"
  | Stage_end _ -> "stage-end"
  | Cache_lookup _ -> "cache"
  | Route_iteration _ -> "route-iteration"
  | Place_temperature _ -> "place-temperature"
  | Heartbeat -> "heartbeat"
  | Dropped _ -> "dropped"

let volatile = function Heartbeat | Dropped _ -> true | _ -> false

let kind_fields = function
  | Stage_begin { stage } -> [ ("stage", Emit.String stage) ]
  | Stage_end { stage; wall_s } ->
      [ ("stage", Emit.String stage); ("wall_s", Emit.Float wall_s) ]
  | Cache_lookup { stage; hit } ->
      [ ("stage", Emit.String stage); ("hit", Emit.Bool hit) ]
  | Route_iteration { iteration; overused; rerouted; heap_pops } ->
      [
        ("iteration", Emit.Int iteration);
        ("overused", Emit.Int overused);
        ("rerouted", Emit.Int rerouted);
        ("heap_pops", Emit.Int heap_pops);
      ]
  | Place_temperature { step; temperature; accept_rate } ->
      [
        ("step", Emit.Int step);
        ("temperature", Emit.Float temperature);
        ("accept_rate", Emit.Float accept_rate);
      ]
  | Heartbeat -> []
  | Dropped { count } -> [ ("count", Emit.Int count) ]

let to_fields ev =
  (("event", Emit.String (kind_name ev.kind)) :: ("seq", Emit.Int ev.seq)
  :: kind_fields ev.kind)
  @ [ ("t_s", Emit.Float ev.t_s) ]

let to_json ev = Emit.Obj (to_fields ev)

let deterministic_fields ev =
  if volatile ev.kind then None
  else
    Some
      (("event", Emit.String (kind_name ev.kind))
      :: List.filter (fun (k, _) -> k <> "wall_s") (kind_fields ev.kind))
