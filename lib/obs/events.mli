(** Bounded, lock-free progress-event sink: the flow's live telemetry
    channel.

    A {!sink} is a single-producer/single-consumer ring buffer of
    progress events.  The {e producer} is the domain running a flow
    (instrumentation sites call {!emit} against the ambient sink, a
    per-domain slot installed with {!with_sink} — exactly the
    {!Obs.Span} ambient discipline, so a site with no ambient sink costs
    one domain-local read).  The {e consumer} is whoever relays events
    onward: the compile daemon's IO loop framing them to subscribed
    clients, or a CLI draining the ring after a local run.  Producer and
    consumer may be different domains; the ring's head/tail are atomics,
    the hot path takes no lock and never blocks.

    {b Bounding and loss.}  The ring holds at most [capacity] events.
    When the producer outruns the consumer the overflowing event is
    {e dropped} (the flow is never back-pressured by a slow watcher) and
    counted; the next {!drain} reports the gap as a synthetic
    {!constructor:kind.Dropped} event so consumers can tell a quiet flow
    from a lossy one.

    {b Sequence numbers.}  The consumer stamps each event with a
    monotonically increasing sequence number at drain time (single
    consumer, so strictly increasing without coordination).  Synthetic
    consumer-side events ({!heartbeat}, {!next_seq}) draw from the same
    counter, so everything framed from one sink is strictly ordered.

    {b Determinism.}  Every event kind except [Heartbeat] and [Dropped]
    is emitted at a deterministic instrumentation site, in a
    deterministic order, on the domain that owns the flow — worker
    domains of a [Util.Parallel] pool have no ambient sink, and the
    jobs-dependent paths (width-search probes, multi-start annealing
    with more than one start) run under {!without}.  Stripped of
    sequence numbers, timestamps and wall durations, the event-kind
    sequence of a flow is therefore byte-identical at any [jobs]
    value.  docs/OBSERVABILITY.md documents the JSON schema and the
    ordering contract. *)

type kind =
  | Stage_begin of { stage : string }
      (** a flow stage (timer label) started *)
  | Stage_end of { stage : string; wall_s : float }
      (** ...and finished; [wall_s] is volatile *)
  | Cache_lookup of { stage : string; hit : bool }
      (** stage-store lookup outcome (only when a cache is configured) *)
  | Route_iteration of {
      iteration : int;
      overused : int;
      rerouted : int;
      heap_pops : int;
    }  (** one PathFinder iteration of the final routing *)
  | Place_temperature of { step : int; temperature : float; accept_rate : float }
      (** one annealer temperature checkpoint *)
  | Heartbeat  (** consumer-side liveness tick; volatile *)
  | Dropped of { count : int }
      (** [count] events were lost to the ring bound since the previous
          drain; volatile *)

type event = { seq : int; t_s : float; kind : kind }
(** [t_s] is wall seconds since the sink was created — volatile. *)

type sink

val create : ?capacity:int -> unit -> sink
(** A fresh sink.  [capacity] (default 8192) bounds the ring. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] runs [f] with [s] as this domain's ambient sink,
    restoring the previous ambient on exit (exceptions included). *)

val without : (unit -> 'a) -> 'a
(** [without f] runs [f] with no ambient sink: emissions inside are
    dropped.  Used around jobs-dependent work (width-search probes,
    multi-start annealing) to keep the event sequence deterministic. *)

val active : unit -> bool
(** True when a sink is ambient on this domain. *)

val emit : kind -> unit
(** Producer: append one event to the ambient sink, if any.  Never
    blocks; drops (and counts) when the ring is full. *)

val emit_to : sink -> kind -> unit
(** Producer: append directly to [s], bypassing the ambient slot. *)

(** {1 Consumer side}

    Everything below must be called from a single consumer (one domain
    at a time); it is safe to run concurrently with the producer. *)

val drain : sink -> event list
(** All events published since the previous drain, in emission order,
    seq-stamped.  A loss gap since the previous drain is reported first
    as a [Dropped] event. *)

val heartbeat : sink -> event
(** A consumer-synthesized [Heartbeat] carrying the next sequence
    number. *)

val next_seq : sink -> int
(** Allocate the next sequence number (for consumer-synthesized records
    framed outside this module, e.g. the daemon's [accepted]/[done]
    notices). *)

val dropped_total : sink -> int
(** Events lost to the ring bound over the sink's lifetime. *)

(** {1 Rendering} *)

val kind_name : kind -> string
(** The wire name of the kind: ["stage-begin"], ["stage-end"],
    ["cache"], ["route-iteration"], ["place-temperature"],
    ["heartbeat"], ["dropped"]. *)

val volatile : kind -> bool
(** True for [Heartbeat] and [Dropped] — kinds whose presence depends
    on timing, excluded from deterministic comparisons. *)

val to_fields : event -> (string * Emit.t) list
(** The event as JSON object fields, leading with ["event"] (the kind
    name), then ["seq"], the kind's own fields, and ["t_s"] last.
    Callers may prepend routing fields (the daemon adds ["id"]). *)

val to_json : event -> Emit.t
(** [Obj (to_fields e)]. *)

val deterministic_fields : event -> (string * Emit.t) list option
(** [to_fields] without the volatile parts: [None] for volatile kinds,
    and ["seq"]/["t_s"]/["wall_s"] stripped otherwise — the view two
    runs of the same flow must agree on byte-for-byte. *)
