(* Recursive-descent JSON parser producing Emit.t — the inverse of
   the flow's shared emitter, for the service wire protocol. *)

exception Parse_error of string

type state = { s : string; mutable i : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.i msg))

let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let next st =
  match peek st with
  | Some c ->
      st.i <- st.i + 1;
      c
  | None -> fail st "unexpected end of input"

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        st.i <- st.i + 1;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  let g = next st in
  if g <> c then fail st (Printf.sprintf "expected %C, got %C" c g)

let literal st word v =
  String.iter (fun c -> expect st c) word;
  v

let hex4 st =
  let d c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid \\u escape"
  in
  let a = d (next st) in
  let b = d (next st) in
  let c = d (next st) in
  let e = d (next st) in
  (((a * 16) + b) * 16 + c) * 16 + e

(* UTF-8 encode one scalar value (surrogate pairs already combined). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let cp = hex4 st in
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: a \uDC00-\uDFFF low half must follow *)
                expect st '\\';
                expect st 'u';
                let lo = hex4 st in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail st "unpaired surrogate"
                else 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                fail st "unpaired surrogate"
              else cp
            in
            add_utf8 buf cp
        | c -> fail st (Printf.sprintf "invalid escape \\%C" c));
        loop ()
    | c ->
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.i in
  let consume p =
    while match peek st with Some c when p c -> true | _ -> false do
      st.i <- st.i + 1
    done
  in
  if peek st = Some '-' then st.i <- st.i + 1;
  consume (fun c -> c >= '0' && c <= '9');
  let is_float = ref false in
  if peek st = Some '.' then begin
    is_float := true;
    st.i <- st.i + 1;
    consume (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      st.i <- st.i + 1;
      (match peek st with
      | Some ('+' | '-') -> st.i <- st.i + 1
      | _ -> ());
      consume (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.s start (st.i - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Emit.Float f
    | None -> fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some n -> Emit.Int n
    | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Emit.Float f
        | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Emit.String (parse_string st)
  | Some 't' -> literal st "true" (Emit.Bool true)
  | Some 'f' -> literal st "false" (Emit.Bool false)
  | Some 'n' -> literal st "null" Emit.Null
  | Some '[' ->
      st.i <- st.i + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.i <- st.i + 1;
        Emit.List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> items (v :: acc)
          | ']' -> Emit.List (List.rev (v :: acc))
          | c -> fail st (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        items []
  | Some '{' ->
      st.i <- st.i + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.i <- st.i + 1;
        Emit.Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Emit.Obj (List.rev ((k, v) :: acc))
          | c -> fail st (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        members []
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { s; i = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.i <> String.length s then fail st "trailing characters after value";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

let parse_result s =
  try Ok (parse s) with Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member k = function
  | Emit.Obj fields -> List.assoc_opt k fields
  | _ -> None

let get_string = function Emit.String s -> Some s | _ -> None
let get_bool = function Emit.Bool b -> Some b | _ -> None

let get_int = function
  | Emit.Int n -> Some n
  | Emit.Float f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None

let get_float = function
  | Emit.Float f -> Some f
  | Emit.Int n -> Some (float_of_int n)
  | _ -> None
