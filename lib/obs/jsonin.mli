(** Minimal JSON parser for the compile-service wire protocol.

    The flow has always {e emitted} JSON through one shared emitter
    ({!Emit}); the service protocol is the first surface that must
    also {e read} it.  This parser is the emitter's inverse: it accepts
    standard JSON (RFC 8259 — whitespace, nested containers, string
    escapes including [\uXXXX] with surrogate pairs decoded to UTF-8)
    and produces {!Emit.t} values, so one value type serves both
    directions.  Numbers without [.], [e] or [E] that fit an OCaml
    [int] parse as [Int]; everything else parses as [Float].
    [Emit.to_string] output round-trips exactly (floats through
    [%.9g] re-parse equal). *)

exception Parse_error of string
(** Position-tagged description of the first syntax error. *)

val parse : string -> Emit.t
(** Parse one JSON value (leading/trailing whitespace allowed; anything
    else after the value is an error).
    @raise Parse_error on malformed input. *)

val parse_opt : string -> Emit.t option

val parse_result : string -> (Emit.t, string) result
(** [parse] with the error as a value — for surfaces (ledger readers,
    stream consumers) that must report rather than raise. *)

(** {1 Accessors}

    Total functions over parsed values, for protocol field extraction:
    each returns [None] on a missing member or a kind mismatch. *)

val member : string -> Emit.t -> Emit.t option
(** Object member lookup (first binding wins). *)

val get_string : Emit.t -> string option
val get_bool : Emit.t -> bool option

val get_int : Emit.t -> int option
(** [Int n], or a [Float] with an exact integer value. *)

val get_float : Emit.t -> float option
(** [Float f] or [Int n] (as a float). *)
