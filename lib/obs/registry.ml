(* Typed metric registry with domain-safe recording.

   Each domain that records into a registry gets its own private buffer.
   A buffer is only ever mutated by its owning domain; the registry keeps
   a mutex-protected list of all buffers purely so [snapshot] can find
   them.  Worker domains spawned by Util.Parallel.map are joined before
   [map] returns, which gives the snapshotting domain a happens-before
   edge over every worker-side record.

   Buffer lookup is a one-entry per-domain cache (a single process-wide
   Domain.DLS slot holding the last (registry, buffer) pair this domain
   recorded into) backed by a mutex-protected domain-id -> buffer table
   in the registry itself.  The hot path — repeated records into the
   same registry, which is every flow stage — is one DLS read and a
   physical-equality check, no lock.  Crucially the process-wide
   footprint of a registry is bounded and collectable: creating one
   registry per request in a long-running daemon leaves behind nothing
   but the single cache slot per domain (holding at most the most
   recent registry), because DLS keys are never allocated per registry.
   (The previous design allocated a fresh Domain.DLS key per registry;
   DLS storage is append-only per domain, so a daemon serving millions
   of requests would have grown every domain's DLS array without
   bound.)

   Merge discipline (the deterministic-merge contract of
   docs/OBSERVABILITY.md): every merge operation is commutative and
   associative over the values actually recorded — counter sums, timer
   interval sums, histogram bucket-count sums, min/max — so the merged
   snapshot does not depend on which domain recorded what.  Histograms
   deliberately expose no sum/mean (float addition order would leak
   domain scheduling); percentiles are derived from integer bucket
   counts.  Gauges are last-write-wins by a global sequence number drawn
   from an atomic at [set] time. *)

type gcell = { mutable g : float; mutable g_seq : int; mutable g_volatile : bool }
type tcell = { mutable t_wall : float; mutable t_cpu : float; mutable t_n : int }

type hcell = {
  mutable h_n : int;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : (int, int ref) Hashtbl.t; (* frexp exponent -> count *)
}

type cell =
  | CCounter of int ref
  | CGauge of gcell
  | CTimer of tcell
  | CHist of hcell

type buffer = {
  cells : (string, cell) Hashtbl.t;
  mutable order : string list; (* first-record order, reversed *)
}

type t = {
  lock : Mutex.t;
  mutable buffers : buffer list; (* registration order, reversed *)
  mutable by_domain : (int * buffer) list; (* domain id -> buffer *)
  main : buffer; (* the creating domain's buffer: defines snapshot order *)
  seq : int Atomic.t;
}

let new_buffer () = { cells = Hashtbl.create 32; order = [] }

(* The process-wide per-domain cache: the last (registry, buffer) pair
   this domain recorded into.  One DLS key for every registry ever
   created, so registries are cheap and collectable at daemon scale. *)
let dls_cache : (t * buffer) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let create () =
  let main = new_buffer () in
  let t =
    {
      lock = Mutex.create ();
      buffers = [ main ];
      by_domain = [ ((Domain.self () :> int), main) ];
      main;
      seq = Atomic.make 0;
    }
  in
  (* Pre-seed the creating domain's cache with [main] so its records land
     there; other domains fall into the slow path of [buffer]. *)
  Domain.DLS.get dls_cache := Some (t, main);
  t

let buffer t =
  let cell = Domain.DLS.get dls_cache in
  match !cell with
  | Some (r, b) when r == t -> b
  | _ ->
      (* Domain switch (or first record on this domain): find or create
         this domain's buffer in the registry's table, then cache it.
         Domain ids are never shared by two live domains, so each buffer
         keeps a single writer even if an id is ever reused. *)
      let did = (Domain.self () :> int) in
      Mutex.lock t.lock;
      let b =
        match List.assq_opt did t.by_domain with
        | Some b -> b
        | None ->
            let b = new_buffer () in
            t.by_domain <- (did, b) :: t.by_domain;
            t.buffers <- b :: t.buffers;
            b
      in
      Mutex.unlock t.lock;
      cell := Some (t, b);
      b

let kind_name = function
  | CCounter _ -> "counter"
  | CGauge _ -> "gauge"
  | CTimer _ -> "timer"
  | CHist _ -> "histogram"

let conflict key c want =
  invalid_arg
    (Printf.sprintf "Obs.Registry: key %S already recorded as a %s, not a %s" key
       (kind_name c) want)

let cell b key make =
  match Hashtbl.find_opt b.cells key with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add b.cells key c;
      b.order <- key :: b.order;
      c

let incr ?(by = 1) t key =
  match cell (buffer t) key (fun () -> CCounter (ref 0)) with
  | CCounter r -> r := !r + by
  | c -> conflict key c "counter"

let set ?(volatile = false) t key v =
  let s = Atomic.fetch_and_add t.seq 1 in
  match cell (buffer t) key (fun () -> CGauge { g = v; g_seq = s; g_volatile = volatile }) with
  | CGauge c ->
      c.g <- v;
      c.g_seq <- s;
      if volatile then c.g_volatile <- true
  | c -> conflict key c "gauge"

(* v <= 0 gets its own bucket below every positive one; a positive v in
   [2^(e-1), 2^e) lands in bucket e = exponent of frexp. *)
let bucket_of v = if v <= 0.0 then min_int else snd (Float.frexp v)

let observe t key v =
  match
    cell (buffer t) key (fun () ->
        CHist { h_n = 0; h_min = infinity; h_max = neg_infinity; h_buckets = Hashtbl.create 8 })
  with
  | CHist h ->
      h.h_n <- h.h_n + 1;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let e = bucket_of v in
      (match Hashtbl.find_opt h.h_buckets e with
      | Some r -> Stdlib.incr r
      | None -> Hashtbl.add h.h_buckets e (ref 1))
  | c -> conflict key c "histogram"

let add_time t key ~wall_s ~cpu_s =
  match cell (buffer t) key (fun () -> CTimer { t_wall = 0.; t_cpu = 0.; t_n = 0 }) with
  | CTimer c ->
      c.t_wall <- c.t_wall +. wall_s;
      c.t_cpu <- c.t_cpu +. cpu_s;
      c.t_n <- c.t_n + 1
  | c -> conflict key c "timer"

let time t key f =
  let w0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let v = f () in
  add_time t key ~wall_s:(Unix.gettimeofday () -. w0) ~cpu_s:(Sys.time () -. c0);
  v

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type histogram = { count : int; min : float; max : float; p50 : float; p90 : float }

type value =
  | Counter of int
  | Gauge of float
  | Timer of { wall_s : float; cpu_s : float; intervals : int }
  | Histogram of histogram

type entry = { key : string; value : value; volatile : bool }
type snapshot = entry list

(* Percentile q of a merged histogram: walk buckets in ascending
   exponent order until the cumulative count reaches q*n; the answer is
   that bucket's upper bound 2^e, clamped into [min, max] so one-bucket
   histograms report exact values. *)
let percentile h q =
  if h.h_n = 0 then 0.0
  else
    let exps =
      Hashtbl.fold (fun e _ acc -> e :: acc) h.h_buckets [] |> List.sort compare
    in
    let need = q *. float_of_int h.h_n in
    let rec walk cum = function
      | [] -> h.h_max
      | e :: rest ->
          let cum = cum + !(Hashtbl.find h.h_buckets e) in
          if float_of_int cum >= need then
            let ub = if e = min_int then 0.0 else Float.ldexp 1.0 e in
            Float.min (Float.max ub h.h_min) h.h_max
          else walk cum rest
    in
    walk 0 exps

let copy_cell = function
  | CCounter r -> CCounter (ref !r)
  | CGauge g -> CGauge { g with g = g.g }
  | CTimer c -> CTimer { c with t_wall = c.t_wall }
  | CHist h ->
      let buckets = Hashtbl.create (Hashtbl.length h.h_buckets) in
      Hashtbl.iter (fun e r -> Hashtbl.add buckets e (ref !r)) h.h_buckets;
      CHist { h with h_buckets = buckets }

let merge_cell key a b =
  match (a, b) with
  | CCounter x, CCounter y -> x := !x + !y
  | CGauge x, CGauge y ->
      if y.g_seq >= x.g_seq then begin
        x.g <- y.g;
        x.g_seq <- y.g_seq
      end;
      x.g_volatile <- x.g_volatile || y.g_volatile
  | CTimer x, CTimer y ->
      x.t_wall <- x.t_wall +. y.t_wall;
      x.t_cpu <- x.t_cpu +. y.t_cpu;
      x.t_n <- x.t_n + y.t_n
  | CHist x, CHist y ->
      x.h_n <- x.h_n + y.h_n;
      if y.h_min < x.h_min then x.h_min <- y.h_min;
      if y.h_max > x.h_max then x.h_max <- y.h_max;
      Hashtbl.iter
        (fun e r ->
          match Hashtbl.find_opt x.h_buckets e with
          | Some rx -> rx := !rx + !r
          | None -> Hashtbl.add x.h_buckets e (ref !r))
        y.h_buckets
  | a, b -> conflict key a (kind_name b)

let value_of = function
  | CCounter r -> Counter !r
  | CGauge g -> Gauge g.g
  | CTimer c -> Timer { wall_s = c.t_wall; cpu_s = c.t_cpu; intervals = c.t_n }
  | CHist h ->
      let mn = if h.h_n = 0 then 0.0 else h.h_min in
      let mx = if h.h_n = 0 then 0.0 else h.h_max in
      Histogram { count = h.h_n; min = mn; max = mx; p50 = percentile h 0.5; p90 = percentile h 0.9 }

let volatile_of = function
  | CTimer _ -> true (* wall/CPU seconds can never reproduce across runs *)
  | CGauge g -> g.g_volatile
  | CCounter _ | CHist _ -> false

let snapshot t =
  Mutex.lock t.lock;
  let bufs = List.rev t.buffers in
  Mutex.unlock t.lock;
  let merged : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun key c ->
          match Hashtbl.find_opt merged key with
          | Some m -> merge_cell key m c
          | None -> Hashtbl.add merged key (copy_cell c))
        b.cells)
    bufs;
  (* Order: the creating domain's first-record order (the flow's stage
     order), then any worker-only keys in ascending key order — both
     independent of domain scheduling. *)
  let main_keys = List.rev t.main.order in
  let rest =
    Hashtbl.fold
      (fun key _ acc -> if Hashtbl.mem t.main.cells key then acc else key :: acc)
      merged []
    |> List.sort compare
  in
  List.map
    (fun key ->
      let c = Hashtbl.find merged key in
      { key; value = value_of c; volatile = volatile_of c })
    (main_keys @ rest)

let find snap key = List.find_map (fun e -> if e.key = key then Some e.value else None) snap

let to_assoc snap =
  List.concat_map
    (fun e ->
      match e.value with
      | Counter n -> [ (e.key, float_of_int n) ]
      | Gauge v -> [ (e.key, v) ]
      | Timer { wall_s; cpu_s; _ } -> [ (e.key, cpu_s); (e.key ^ ".wall", wall_s) ]
      | Histogram _ -> [])
    snap

let value_json = function
  | Counter n -> Emit.Obj [ ("kind", Emit.String "counter"); ("value", Emit.Int n) ]
  | Gauge v -> Emit.Obj [ ("kind", Emit.String "gauge"); ("value", Emit.Float v) ]
  | Timer { wall_s; cpu_s; intervals } ->
      Emit.Obj
        [
          ("kind", Emit.String "timer");
          ("cpu_s", Emit.Float cpu_s);
          ("wall_s", Emit.Float wall_s);
          ("intervals", Emit.Int intervals);
        ]
  | Histogram h ->
      Emit.Obj
        [
          ("kind", Emit.String "histogram");
          ("count", Emit.Int h.count);
          ("min", Emit.Float h.min);
          ("max", Emit.Float h.max);
          ("p50", Emit.Float h.p50);
          ("p90", Emit.Float h.p90);
        ]

let to_json ?(deterministic = false) snap =
  let entries = if deterministic then List.filter (fun e -> not e.volatile) snap else snap in
  let entries = List.sort (fun a b -> compare a.key b.key) entries in
  Emit.Obj (List.map (fun e -> (e.key, value_json e.value)) entries)
