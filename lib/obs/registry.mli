(** Typed metric registry with domain-safe recording and deterministic
    merge.

    A registry replaces the flow's previous stringly
    [times : (string * float) list] accumulation.  Four metric kinds:

    - {b Counter} — monotonic integer ([incr]); merged by summation.
    - {b Gauge} — a float set point-in-time ([set]); merged
      last-write-wins by a global sequence number.
    - {b Timer} — accumulated wall {e and} CPU seconds plus an interval
      count ([time] / [add_time]); merged by summation.  Timers are
      always {e volatile}: elapsed time never reproduces across runs, so
      the deterministic JSON view excludes them.
    - {b Histogram} — log-bucketed distribution ([observe]) reporting
      count/min/max/p50/p90.  Buckets are powers of two (frexp
      exponents, with one bucket for all values [<= 0]); percentiles are
      bucket upper bounds clamped into [[min, max]].  No sum or mean is
      exposed — float accumulation order would depend on domain
      scheduling.

    Recording is domain-safe and lock-free on the hot path: each domain
    writes to a private buffer, found through a one-entry per-domain
    cache of the last registry this domain recorded into; [snapshot]
    merges all buffers with commutative, order-independent operations,
    so the merged result is bit-identical at any [jobs] value provided
    the {e set of recorded values} is itself deterministic.  Snapshot
    only observes worker-side records that happened before the workers
    were joined (Util.Parallel.map joins its domains before returning).

    Registries are {e scoped and cheap}: all of a registry's state is
    reachable only from the registry value itself (plus the single
    per-domain cache slot, which holds at most the most recently used
    registry), so a long-running service can create one registry per
    request — isolating every request's metrics from every other's —
    without growing any process-wide structure.  Two back-to-back runs
    recording into two fresh registries produce byte-identical
    deterministic JSON to two fresh-process runs.

    Keys are dotted names following the docs/OBSERVABILITY.md schema.
    Recording a key with two different kinds raises [Invalid_argument]. *)

type t
(** A metric registry.  One per flow run. *)

val create : unit -> t
(** A fresh registry.  The creating domain's first-record key order
    defines the order of {!snapshot}.  Safe to call from any domain,
    any number of times per process (see the scoping note above). *)

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a counter. *)

val set : ?volatile:bool -> t -> string -> float -> unit
(** Set a gauge.  [~volatile:true] marks the value as run-dependent
    (e.g. [parallel.speedup]); volatile entries are excluded from the
    deterministic JSON view. *)

val observe : t -> string -> float -> unit
(** Record one sample into a histogram. *)

val add_time : t -> string -> wall_s:float -> cpu_s:float -> unit
(** Accumulate one measured interval into a timer. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t key f] runs [f ()], recording its wall and CPU seconds into
    the timer [key].  Nothing is recorded when [f] raises. *)

(** {1 Snapshots} *)

type histogram = { count : int; min : float; max : float; p50 : float; p90 : float }

type value =
  | Counter of int
  | Gauge of float
  | Timer of { wall_s : float; cpu_s : float; intervals : int }
  | Histogram of histogram

type entry = { key : string; value : value; volatile : bool }

type snapshot = entry list
(** Merged point-in-time view: the creating domain's first-record order
    first (the flow's stage order), then worker-only keys in ascending
    key order. *)

val snapshot : t -> snapshot
(** Merge every domain's buffer.  Safe to call repeatedly; the registry
    keeps accumulating afterwards. *)

val find : snapshot -> string -> value option

val to_assoc : snapshot -> (string * float) list
(** The legacy [Flow.times] view: counters and gauges as floats, each
    timer as [(key, cpu_s)] followed by [(key ^ ".wall", wall_s)],
    histograms omitted. *)

val to_json : ?deterministic:bool -> snapshot -> Emit.t
(** JSON object keyed by metric name (ascending key order), each value
    an object tagged with ["kind"].  [~deterministic:true] drops
    volatile entries (all timers, volatile gauges) so the output is
    byte-identical at any [jobs] value. *)
