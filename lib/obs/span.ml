(* Span tracing with Chrome trace-event export.

   A trace is an explicit object installed as the ambient trace of the
   current domain by [with_trace]; [with_ ~name f] is a no-op wrapper
   (just [f ()]) when no trace is ambient, so instrumented libraries pay
   one DLS read when tracing is off.  The ambient slot is domain-local:
   spans opened by pool workers are dropped rather than racing on the
   shared tree (Util.Parallel.map spawns fresh domains per call, so an
   ambient trace cannot be pre-installed in them).  Every span site the
   trace contract promises — flow stages, PathFinder iterations and
   batches, annealer temperatures, STA level sweeps — runs on the
   domain that owns the trace. *)

type span = {
  name : string;
  t0_us : float;
  mutable t1_us : float;
  mutable args : (string * Emit.t) list;
  mutable children : span list; (* reverse chronological *)
}

type trace = {
  epoch : float;
  mutable roots : span list; (* reverse chronological *)
  mutable stack : span list; (* innermost open span first *)
}

let ambient : trace option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let create () = { epoch = Unix.gettimeofday (); roots = []; stack = [] }

let now tr = (Unix.gettimeofday () -. tr.epoch) *. 1e6

let with_trace tr f =
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := Some tr;
  Fun.protect ~finally:(fun () -> cell := saved) f

let active () = Option.is_some !(Domain.DLS.get ambient)

let with_ ?(args = []) ~name f =
  match !(Domain.DLS.get ambient) with
  | None -> f ()
  | Some tr ->
      let sp = { name; t0_us = now tr; t1_us = 0.0; args; children = [] } in
      tr.stack <- sp :: tr.stack;
      Fun.protect f ~finally:(fun () ->
          sp.t1_us <- now tr;
          (match tr.stack with
          | top :: rest when top == sp -> tr.stack <- rest
          | _ -> () (* unbalanced finally under an exotic exception path *));
          match tr.stack with
          | parent :: _ -> parent.children <- sp :: parent.children
          | [] -> tr.roots <- sp :: tr.roots)

let annotate kvs =
  match !(Domain.DLS.get ambient) with
  | Some { stack = sp :: _; _ } -> sp.args <- sp.args @ kvs
  | _ -> ()

let rec ordered sp = { sp with children = List.rev_map ordered sp.children }

let roots tr = List.rev_map ordered tr.roots

(* Chrome trace-event format: a flat array of B/E duration events with
   microsecond timestamps, loadable by chrome://tracing and Perfetto.
   Children are emitted strictly inside their parent's B/E pair, so
   every E closes the most recent open B (stack discipline). *)
let to_chrome tr =
  let events = ref [] in
  let common name ph ts =
    [
      ("name", Emit.String name);
      ("cat", Emit.String "amdrel");
      ("ph", Emit.String ph);
      ("ts", Emit.Float ts);
      ("pid", Emit.Int 1);
      ("tid", Emit.Int 1);
    ]
  in
  let rec emit sp =
    let b = common sp.name "B" sp.t0_us in
    let b = if sp.args = [] then b else b @ [ ("args", Emit.Obj sp.args) ] in
    events := Emit.Obj b :: !events;
    List.iter emit sp.children;
    events := Emit.Obj (common sp.name "E" sp.t1_us) :: !events
  in
  List.iter emit (roots tr);
  Emit.Obj
    [
      ("displayTimeUnit", Emit.String "ms");
      ("traceEvents", Emit.List (List.rev !events));
    ]

let to_chrome_string tr = Emit.to_string (to_chrome tr)
