(** Nested span tracing with Chrome trace-event export.

    Usage: create a {!trace}, install it with {!with_trace} around the
    work to profile, and instrumented code paths wrap themselves in
    {!with_}.  When no trace is ambient — the default — {!with_} is
    [f ()] plus one domain-local read, so always-on instrumentation is
    effectively free.

    The ambient trace is per-domain.  Spans opened on pool worker
    domains (which are spawned fresh per [Util.Parallel.map] call and
    have no ambient trace) are silently dropped; all contractual span
    sites run on the domain that owns the trace. *)

type span = {
  name : string;
  t0_us : float;  (** start, microseconds since the trace epoch *)
  mutable t1_us : float;  (** end, microseconds since the trace epoch *)
  mutable args : (string * Emit.t) list;
  mutable children : span list;
}

type trace

val create : unit -> trace
(** A fresh trace; its epoch is the creation instant. *)

val with_trace : trace -> (unit -> 'a) -> 'a
(** [with_trace tr f] runs [f] with [tr] as the current domain's ambient
    trace, restoring the previous ambient on exit (exceptions
    included). *)

val active : unit -> bool
(** True when a trace is ambient on this domain. *)

val with_ : ?args:(string * Emit.t) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a new span when a trace is ambient,
    and is exactly [f ()] otherwise.  Spans nest by dynamic extent. *)

val annotate : (string * Emit.t) list -> unit
(** Append key/value args to the innermost open span, if any. *)

val roots : trace -> span list
(** Completed top-level spans in chronological order (children too). *)

val to_chrome : trace -> Emit.t
(** The trace as a Chrome trace-event JSON object ([traceEvents] array
    of B/E duration events, µs timestamps) — loadable in
    [chrome://tracing] and Perfetto. *)

val to_chrome_string : trace -> string
