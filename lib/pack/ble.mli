(** Basic Logic Element formation (the first half of T-VPack).

    A BLE holds one K-LUT and one flip-flop.  A LUT and the latch it
    feeds merge into one BLE when the latch is the LUT's only fanout (the
    classic packing rule); otherwise each gets its own BLE with the other
    half unused. *)

type t = {
  index : int;        (** position in the {!form} result *)
  lut : int option;   (** mapped-network signal computed by the LUT *)
  ff : int option;    (** latch signal registered in this BLE *)
  output : int;       (** the signal this BLE drives *)
  inputs : int list;  (** distinct input signals *)
  name : string;      (** the output signal's name, for reports *)
}

val uses_ff : t -> bool
(** Whether the BLE's flip-flop half is occupied ([ff <> None]). *)

val form : Netlist.Logic.t -> t array
(** Build BLEs from a K-LUT network: one per LUT and per latch, merged
    when the single-fanout rule allows.  Order follows the network's
    gate order (deterministic). *)
