(** Greedy attraction-based clustering (the second half of T-VPack).

    Clusters fill one at a time: an unclustered BLE with the most used
    inputs seeds the cluster; BLEs sharing the most nets are absorbed
    while the cluster stays within its size (N) and distinct-input (I)
    limits.  Inputs generated inside the cluster stop counting against I
    — the input-sharing effect the I = (K/2)(N+1) rule builds on. *)

type t = {
  id : int;                (** position in {!packing.clusters} *)
  bles : Ble.t list;       (** at most N *)
  input_nets : int list;   (** signals entering the cluster *)
  output_nets : int list;  (** BLE outputs used outside the cluster *)
}

type packing = {
  net : Netlist.Logic.t;   (** the mapped network the packing refers to *)
  clusters : t array;
  n : int;
  i : int;
  cluster_of_ble : (int, int) Hashtbl.t;
}

exception Infeasible of string
(** Raised when a single BLE already exceeds the input limit. *)

val pack : ?n:int -> ?i:int -> Netlist.Logic.t -> packing
(** Defaults: the platform's N = 5, I = 12. *)

val cluster_count : packing -> int
(** Number of clusters (the CLB demand placement must satisfy). *)

val ble_count : packing -> int
(** Total BLEs across all clusters (occupied slots, not capacity). *)

val check : packing -> bool
(** The N / I / one-cluster-per-BLE invariants (used by tests). *)

val utilization : packing -> float
(** Fraction of occupied BLE slots. *)
