(** T-VPack netlist file: the textual interchange between the packer and
    VPR, mirroring the role of VPR's .net format. *)

exception Parse_error of string
(** Malformed netlist file or a reference to a signal the mapped
    network does not define. *)

val to_string : Cluster.packing -> string
(** Render a packing in the .net text format (inverse of
    {!of_string}; the round trip is property-tested). *)

val to_file : string -> Cluster.packing -> unit

val of_string : Netlist.Logic.t -> string -> Cluster.packing
(** Rebuild a packing against the mapped network the file refers to.
    @raise Parse_error on malformed input or unknown signals. *)
