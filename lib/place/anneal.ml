(* Adaptive simulated annealing, following VPR's schedule:
   - initial temperature = 20 x the cost standard deviation of random moves;
   - moves per temperature = inner_num * Nblocks^(4/3);
   - temperature update factor chosen from the acceptance rate;
   - window (range) limiting tracks an 0.44 target acceptance rate;
   - exit when T drops below a small fraction of the cost per net.

   With [timing] options the annealer runs in VPR's path-timing-driven
   mode: cost = (1 - lambda) * bb/bb_norm + lambda * td/td_norm, where the
   timing cost of a connection is criticality^crit_exp x estimated delay;
   criticalities and normalisations refresh at every temperature. *)

type options = {
  seed : int;
  inner_num : float;  (* VPR's -inner_num; 1.0 reproduces the default effort *)
}

let default_options = { seed = 1; inner_num = 1.0 }

type timing_options = {
  lambda : float;     (* timing tradeoff; VPR default 0.5 *)
  crit_exp : float;   (* criticality exponent; VPR default 1.0 *)
  model : Td_timing.delay_model;
  analyze : coords:(int -> int * int) -> Td_timing.analysis;
      (* the timing analysis, called with the current block coordinates;
         the annealer owns no STA of its own (lib/place cannot depend on
         lib/sta), so the flow injects the unified engine here *)
}

let default_timing ~analyze =
  { lambda = 0.5; crit_exp = 1.0; model = Td_timing.default_model; analyze }

type result = {
  placement : Placement.t;
  initial_cost : float;
  final_cost : float;   (* bounding-box cost (comparable across modes) *)
  estimated_dmax : float option; (* timing-driven mode: final estimate *)
  moves : int;
  accepted : int;
}

(* Swap/move a block to a target slot; if the slot is occupied the occupants
   exchange places.  Returns an undo closure. *)
let apply_move (pl : Placement.t) b target =
  let clear l =
    match l with
    | Fpga_arch.Grid.Clb (x, y) -> pl.Placement.clb_at.(x).(y) <- -1
    | Fpga_arch.Grid.Pad (x, y, s) -> Hashtbl.remove pl.Placement.pad_at (x, y, s)
  in
  let put blk l =
    pl.Placement.loc.(blk) <- l;
    match l with
    | Fpga_arch.Grid.Clb (x, y) -> pl.Placement.clb_at.(x).(y) <- blk
    | Fpga_arch.Grid.Pad (x, y, s) ->
        Hashtbl.replace pl.Placement.pad_at (x, y, s) blk
  in
  let from = pl.Placement.loc.(b) in
  let occupant =
    match target with
    | Fpga_arch.Grid.Clb (x, y) ->
        let o = pl.Placement.clb_at.(x).(y) in
        if o >= 0 then Some o else None
    | Fpga_arch.Grid.Pad (x, y, s) -> Hashtbl.find_opt pl.Placement.pad_at (x, y, s)
  in
  let swap blk1 l1 blk2_opt l2 =
    (* clear both slots first so a swap never stomps the slot it fills *)
    clear l1;
    clear l2;
    put blk1 l1;
    match blk2_opt with Some o -> put o l2 | None -> ()
  in
  swap b target occupant from;
  fun () -> swap b from occupant target

(* Reusable per-net costing scratch.  A run fully overwrites the first
   n_nets slots of both arrays before reading them, so a scratch can be
   handed to consecutive runs (multi-start seeds executing on the same
   domain) with no effect on any result — it only saves the per-start
   allocation. *)
type scratch = { mutable bb : float array; mutable td : float array }

let create_scratch () = { bb = [||]; td = [||] }

let scratch_arrays scratch n =
  match scratch with
  | Some s ->
      if Array.length s.bb < n then begin
        s.bb <- Array.make n 0.0;
        s.td <- Array.make n 0.0
      end;
      (s.bb, s.td)
  | None -> (Array.make n 0.0, Array.make n 0.0)

(* Nets touching a block. *)
let nets_of_block (problem : Problem.t) =
  let touch = Array.make (Array.length problem.Problem.blocks) [] in
  Array.iteri
    (fun ni (net : Problem.net) ->
      touch.(net.Problem.driver) <- ni :: touch.(net.Problem.driver);
      Array.iter (fun s -> touch.(s) <- ni :: touch.(s)) net.Problem.sinks)
    problem.Problem.nets;
  Array.map (List.sort_uniq compare) touch

let run ?(options = default_options) ?timing ?scratch ?obs
    (problem : Problem.t) =
  let rng = Util.Prng.create options.seed in
  let pl = Placement.initial ~seed:options.seed problem in
  let grid = problem.Problem.grid in
  let nets = problem.Problem.nets in
  let n_blocks = Array.length problem.Problem.blocks in
  let n_nets = Array.length nets in
  if n_nets = 0 || n_blocks <= 1 then
    {
      placement = pl;
      initial_cost = 0.0;
      final_cost = 0.0;
      estimated_dmax = None;
      moves = 0;
      accepted = 0;
    }
  else begin
    let touch = nets_of_block problem in
    (* ---- cost bookkeeping (arrays possibly longer than n_nets when a
       shared scratch is in use; only the first n_nets slots are live) ---- *)
    let bb_costs, td_costs = scratch_arrays scratch n_nets in
    let sum arr =
      let s = ref 0.0 in
      for i = 0 to n_nets - 1 do
        s := !s +. arr.(i)
      done;
      !s
    in
    for ni = 0 to n_nets - 1 do
      bb_costs.(ni) <- Placement.net_cost pl nets.(ni)
    done;
    let bb_total = ref (sum bb_costs) in
    let initial_cost = !bb_total in
    (* timing-driven state *)
    let coords b = Placement.coords pl b in
    let analyze_timing t = t.analyze ~coords in
    let criticality =
      ref
        (match timing with
        | Some t -> (analyze_timing t).Td_timing.criticality
        | None -> [||])
    in
    let td_cost_of_net ni =
      match timing with
      | None -> 0.0
      | Some t ->
          let net = nets.(ni) in
          let dx, dy = coords net.Problem.driver in
          let acc = ref 0.0 in
          Array.iteri
            (fun si sink ->
              let sx, sy = coords sink in
              let delay =
                t.model.Td_timing.t_fixed
                +. (t.model.Td_timing.t_per_tile
                   *. float_of_int (abs (dx - sx) + abs (dy - sy)))
              in
              let crit = !criticality.(ni).(si) ** t.crit_exp in
              acc := !acc +. (crit *. delay))
            net.Problem.sinks;
          !acc
    in
    for ni = 0 to n_nets - 1 do
      td_costs.(ni) <- td_cost_of_net ni
    done;
    let td_total = ref (sum td_costs) in
    (* normalisation scales, refreshed per temperature *)
    let bb_scale = ref 0.0 and td_scale = ref 0.0 in
    let refresh_scales () =
      match timing with
      | None ->
          bb_scale := 1.0;
          td_scale := 0.0
      | Some t ->
          bb_scale := (1.0 -. t.lambda) /. Float.max !bb_total 1e-9;
          td_scale := t.lambda /. Float.max !td_total 1e-12
    in
    refresh_scales ();
    let pad_slots = Array.of_list (Fpga_arch.Grid.pad_positions grid) in
    let moves_total = ref 0 and accepted_total = ref 0 in
    let window = ref (float_of_int (max grid.Fpga_arch.Grid.nx 1)) in
    let propose () =
      let b = Util.Prng.int rng n_blocks in
      let bx, by = Placement.coords pl b in
      match problem.Problem.blocks.(b) with
      | Problem.Cluster_block _ ->
          let d = max 1 (int_of_float !window) in
          let x = bx + Util.Prng.int rng ((2 * d) + 1) - d in
          let y = by + Util.Prng.int rng ((2 * d) + 1) - d in
          let x = max 1 (min grid.Fpga_arch.Grid.nx x) in
          let y = max 1 (min grid.Fpga_arch.Grid.ny y) in
          if Fpga_arch.Grid.Clb (x, y) = pl.Placement.loc.(b) then None
          else Some (b, Fpga_arch.Grid.Clb (x, y))
      | Problem.Input_pad _ | Problem.Output_pad _ ->
          let x, y, s = Util.Prng.pick rng pad_slots in
          if Fpga_arch.Grid.Pad (x, y, s) = pl.Placement.loc.(b) then None
          else Some (b, Fpga_arch.Grid.Pad (x, y, s))
    in
    let affected_nets b target =
      let occ =
        match target with
        | Fpga_arch.Grid.Clb (x, y) ->
            let o = pl.Placement.clb_at.(x).(y) in
            if o >= 0 then Some o else None
        | Fpga_arch.Grid.Pad (x, y, s) ->
            Hashtbl.find_opt pl.Placement.pad_at (x, y, s)
      in
      match occ with
      | Some o -> List.sort_uniq compare (touch.(b) @ touch.(o))
      | None -> touch.(b)
    in
    (* combined delta over the touched nets for the current placement *)
    let eval_nets nets_touched =
      List.fold_left
        (fun (bb, td) ni ->
          (bb +. Placement.net_cost pl nets.(ni), td +. td_cost_of_net ni))
        (0.0, 0.0) nets_touched
    in
    let try_move temperature =
      match propose () with
      | None -> ()
      | Some (b, target) ->
          incr moves_total;
          let nets_touched = affected_nets b target in
          let bb_before, td_before =
            List.fold_left
              (fun (bb, td) ni -> (bb +. bb_costs.(ni), td +. td_costs.(ni)))
              (0.0, 0.0) nets_touched
          in
          let undo = apply_move pl b target in
          let bb_after, td_after = eval_nets nets_touched in
          let delta =
            ((bb_after -. bb_before) *. !bb_scale)
            +. ((td_after -. td_before) *. !td_scale)
          in
          let accept =
            delta <= 0.0
            || Util.Prng.float rng < exp (-.delta /. temperature)
          in
          if accept then begin
            incr accepted_total;
            List.iter
              (fun ni ->
                bb_total := !bb_total -. bb_costs.(ni);
                td_total := !td_total -. td_costs.(ni);
                bb_costs.(ni) <- Placement.net_cost pl nets.(ni);
                td_costs.(ni) <- td_cost_of_net ni;
                bb_total := !bb_total +. bb_costs.(ni);
                td_total := !td_total +. td_costs.(ni))
              nets_touched
          end
          else undo ()
    in
    (* initial temperature from random-move statistics *)
    let sample_deltas = Array.make (min 200 (20 * n_blocks)) 0.0 in
    Array.iteri
      (fun idx _ ->
        match propose () with
        | None -> ()
        | Some (b, target) ->
            let nets_touched = affected_nets b target in
            let bb_before, td_before =
              List.fold_left
                (fun (bb, td) ni -> (bb +. bb_costs.(ni), td +. td_costs.(ni)))
                (0.0, 0.0) nets_touched
            in
            let undo = apply_move pl b target in
            let bb_after, td_after = eval_nets nets_touched in
            sample_deltas.(idx) <-
              ((bb_after -. bb_before) *. !bb_scale)
              +. ((td_after -. td_before) *. !td_scale);
            undo ())
      sample_deltas;
    let t0 = 20.0 *. Util.Stats.stddev sample_deltas +. 1e-9 in
    let temperature = ref t0 in
    let inner =
      int_of_float
        (options.inner_num *. (float_of_int n_blocks ** (4.0 /. 3.0)))
      |> max 16
    in
    let exit_scale () =
      (* the floor guards degenerate placements whose cost reaches zero
         (e.g. only pad-to-pad nets): the schedule must still terminate *)
      Float.max 1e-9
        (match timing with
        | None -> 0.005 *. !bb_total /. float_of_int n_nets
        | Some _ ->
            (* costs are normalised to ~1 in timing mode *)
            0.005 /. float_of_int n_nets)
    in
    let stop = ref false in
    while not !stop do
      (* one temperature step = one trace span; the accept rate feeds the
         schedule and the place.accept-rate histogram (the sample set is
         seed-deterministic, so recording is jobs-independent) *)
      Obs.Span.with_ ~name:"place.temperature"
        ~args:[ ("T", Obs.Emit.Float !temperature) ]
      @@ fun () ->
      (* refresh criticalities and normalisations at each temperature *)
      (match timing with
      | Some t ->
          criticality := (analyze_timing t).Td_timing.criticality;
          for ni = 0 to n_nets - 1 do
            td_costs.(ni) <- td_cost_of_net ni
          done;
          td_total := sum td_costs
      | None -> ());
      refresh_scales ();
      let accepted_before = !accepted_total in
      for _ = 1 to inner do
        try_move !temperature
      done;
      let rate =
        float_of_int (!accepted_total - accepted_before) /. float_of_int inner
      in
      (match obs with
      | Some o -> Obs.Registry.observe o "place.accept-rate" rate
      | None -> ());
      Obs.Span.annotate [ ("accept_rate", Obs.Emit.Float rate) ];
      let alpha =
        if rate > 0.96 then 0.5
        else if rate > 0.8 then 0.9
        else if rate > 0.15 then 0.95
        else 0.8
      in
      temperature := !temperature *. alpha;
      window := !window *. (1.0 -. 0.44 +. rate);
      window :=
        Float.max 1.0 (Float.min !window (float_of_int grid.Fpga_arch.Grid.nx));
      if !temperature < exit_scale () then stop := true
    done;
    (* final greedy pass at T ~ 0 *)
    for _ = 1 to inner do
      try_move 1e-9
    done;
    let estimated_dmax =
      match timing with
      | Some t -> Some (analyze_timing t).Td_timing.dmax
      | None -> None
    in
    {
      placement = pl;
      initial_cost;
      final_cost = !bb_total;
      estimated_dmax;
      moves = !moves_total;
      accepted = !accepted_total;
    }
  end

(* Multi-start annealing: [starts] independent runs on seeds
   seed, seed+1, ..., the best final bounding-box cost wins.  Each run
   only reads the shared problem and derives all randomness from its own
   seed, so the runs parallelise shared-nothing across a Domain pool and
   the winner — ties broken toward the lowest seed offset, as a
   sequential scan would — is identical for any [jobs].

   The costing scratch is shared across the seeds a domain executes
   (domain-local storage, so workers never alias each other's arrays):
   sequentially that is one allocation for all starts instead of one per
   start, and a run overwrites every live slot before reading it, so the
   reuse is invisible in the results. *)
let scratch_slot : scratch Util.Parallel.scratch_slot =
  Util.Parallel.scratch_slot ()

let run_multistart ?(options = default_options) ?timing ?jobs ?(starts = 1)
    ?obs (problem : Problem.t) =
  if starts <= 1 then run ~options ?timing ?obs problem
  else begin
    let results =
      Util.Parallel.map ?jobs
        (fun k ->
          let scratch =
            Util.Parallel.scratch scratch_slot ~valid:(fun _ -> true)
              ~create:create_scratch
          in
          run ~options:{ options with seed = options.seed + k } ?timing
            ~scratch ?obs problem)
        (Array.init starts Fun.id)
    in
    (* strict < keeps the earliest seed on ties *)
    Array.fold_left
      (fun best r -> if r.final_cost < best.final_cost then r else best)
      results.(0) results
  end
