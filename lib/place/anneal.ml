(* Adaptive simulated annealing, following VPR's schedule:
   - initial temperature = 20 x the cost standard deviation of random moves;
   - moves per temperature = inner_num * Nblocks^(4/3);
   - temperature update factor chosen from the acceptance rate;
   - window (range) limiting tracks an 0.44 target acceptance rate;
   - exit when T drops below a small fraction of the cost per net.

   With [timing] options the annealer runs in VPR's path-timing-driven
   mode: cost = (1 - lambda) * bb/bb_norm + lambda * td/td_norm, where the
   timing cost of a connection is criticality^crit_exp x estimated delay;
   criticalities and normalisations refresh at every temperature (through
   the incremental hook, when the flow provides one, so the refresh costs
   a cone update rather than a full re-analysis).

   Move evaluation is incremental end to end: per-net bounding boxes are
   cached with count-at-boundary bookkeeping ([Placement.bbox_cache]), so
   a move's wirelength delta costs O(touched nets) with no terminal
   rescans.  Boxes keep integer extents, so cached costs are bit-identical
   to [Placement.net_cost] — and both running totals are nevertheless
   resummed from the per-net arrays at every temperature step and at
   exit, because a total accumulated incrementally across millions of
   moves carries unbounded float drift (the bb_total half of this was a
   real bug: td_total was resummed per temperature, bb_total never). *)

type options = {
  seed : int;
  inner_num : float;  (* VPR's -inner_num; 1.0 reproduces the default effort *)
}

let default_options = { seed = 1; inner_num = 1.0 }

type timing_options = {
  lambda : float;     (* timing tradeoff; VPR default 0.5 *)
  crit_exp : float;   (* criticality exponent; VPR default 1.0 *)
  model : Td_timing.delay_model;
  analyze : coords:(int -> int * int) -> Td_timing.analysis;
      (* the timing analysis, called with the current block coordinates;
         the annealer owns no STA of its own (lib/place cannot depend on
         lib/sta), so the flow injects the unified engine here *)
  make_incremental :
    (unit ->
    coords:(int -> int * int) -> changed_blocks:int list -> Td_timing.analysis)
    option;
      (* factory for a per-run incremental analysis chain: called once
         per annealing run, the returned hook is then fed the blocks
         moved since its previous call.  The chain owns its own state
         (and its own full-refresh cadence), so multi-start runs each
         get an independent chain and stay shared-nothing. *)
}

let default_timing ?make_incremental ~analyze () =
  {
    lambda = 0.5;
    crit_exp = 1.0;
    model = Td_timing.default_model;
    analyze;
    make_incremental;
  }

type result = {
  placement : Placement.t;
  initial_cost : float;
  final_cost : float;   (* bounding-box cost (comparable across modes) *)
  estimated_dmax : float option; (* timing-driven mode: final estimate *)
  moves : int;
  accepted : int;
}

(* Swap/move a block to a target slot; if the slot is occupied the occupants
   exchange places.  Returns an undo closure. *)
let apply_move (pl : Placement.t) b target =
  let clear l =
    match l with
    | Fpga_arch.Grid.Clb (x, y) -> pl.Placement.clb_at.(x).(y) <- -1
    | Fpga_arch.Grid.Pad (x, y, s) -> Hashtbl.remove pl.Placement.pad_at (x, y, s)
  in
  let put blk l =
    pl.Placement.loc.(blk) <- l;
    match l with
    | Fpga_arch.Grid.Clb (x, y) -> pl.Placement.clb_at.(x).(y) <- blk
    | Fpga_arch.Grid.Pad (x, y, s) ->
        Hashtbl.replace pl.Placement.pad_at (x, y, s) blk
  in
  let from = pl.Placement.loc.(b) in
  let occupant =
    match target with
    | Fpga_arch.Grid.Clb (x, y) ->
        let o = pl.Placement.clb_at.(x).(y) in
        if o >= 0 then Some o else None
    | Fpga_arch.Grid.Pad (x, y, s) -> Hashtbl.find_opt pl.Placement.pad_at (x, y, s)
  in
  let swap blk1 l1 blk2_opt l2 =
    (* clear both slots first so a swap never stomps the slot it fills *)
    clear l1;
    clear l2;
    put blk1 l1;
    match blk2_opt with Some o -> put o l2 | None -> ()
  in
  swap b target occupant from;
  fun () -> swap b from occupant target

(* Reusable per-net costing scratch.  A run fully overwrites the first
   n_nets slots of both arrays before reading them, so a scratch can be
   handed to consecutive runs (multi-start seeds executing on the same
   domain) with no effect on any result — it only saves the per-start
   allocation.  Never share a scratch between runs that are suspended
   concurrently (the pruned multi-start path allocates per state). *)
type scratch = { mutable bb : float array; mutable td : float array }

let create_scratch () = { bb = [||]; td = [||] }

let scratch_arrays scratch n =
  match scratch with
  | Some s ->
      if Array.length s.bb < n then begin
        s.bb <- Array.make n 0.0;
        s.td <- Array.make n 0.0
      end;
      (s.bb, s.td)
  | None -> (Array.make n 0.0, Array.make n 0.0)

(* Nets touching a block. *)
let nets_of_block (problem : Problem.t) =
  let touch = Array.make (Array.length problem.Problem.blocks) [] in
  Array.iteri
    (fun ni (net : Problem.net) ->
      touch.(net.Problem.driver) <- ni :: touch.(net.Problem.driver);
      Array.iter (fun s -> touch.(s) <- ni :: touch.(s)) net.Problem.sinks)
    problem.Problem.nets;
  Array.map (List.sort_uniq compare) touch

(* ---------------------------------------------------------------- *)
(* Annealing state.  One run = [init] + [temp_step] until finished +
   [finalize]; splitting the schedule into resumable temperature steps
   is what lets the pruned multi-start advance every seed to the same
   milestone before comparing costs. *)

type state = {
  pl : Placement.t;
  rng : Util.Prng.t;
  problem : Problem.t;
  options : options;
  timing : timing_options option;
  hook :
    (coords:(int -> int * int) -> changed_blocks:int list -> Td_timing.analysis)
    option;
  touch : int list array;              (* block -> net indices *)
  cache : Placement.bbox_cache;
  tmp_boxes : Placement.box array;     (* per net, move-evaluation copies *)
  tmp_settled : bool array;            (* tmp box was rescanned this move *)
  bb_costs : float array;
  td_costs : float array;
  mutable criticality : float array array;
  mutable bb_total : float;
  mutable td_total : float;
  mutable bb_scale : float;
  mutable td_scale : float;
  mutable temperature : float;
  mutable window : float;
  mutable moves : int;
  mutable accepted : int;
  mutable changed : bool array;        (* moved since last timing refresh *)
  mutable changed_list : int list;
  mutable last_dmax : float option;
  mutable steps : int;                 (* completed temperature steps *)
  mutable finished : bool;
  initial_cost : float;
  inner : int;
  pad_slots : (int * int * int) array;
  trivial : bool;
}

let coords st b = Placement.coords st.pl b

let sum_prefix arr n =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. arr.(i)
  done;
  !s

let n_nets st = Array.length st.problem.Problem.nets

let td_cost_of_net st ni =
  match st.timing with
  | None -> 0.0
  | Some t ->
      let net = st.problem.Problem.nets.(ni) in
      let dx, dy = coords st net.Problem.driver in
      let acc = ref 0.0 in
      Array.iteri
        (fun si sink ->
          let sx, sy = coords st sink in
          let delay =
            t.model.Td_timing.t_fixed
            +. (t.model.Td_timing.t_per_tile
               *. float_of_int (abs (dx - sx) + abs (dy - sy)))
          in
          let crit = st.criticality.(ni).(si) ** t.crit_exp in
          acc := !acc +. (crit *. delay))
        net.Problem.sinks;
      !acc

let refresh_scales st =
  match st.timing with
  | None ->
      st.bb_scale <- 1.0;
      st.td_scale <- 0.0
  | Some t ->
      st.bb_scale <- (1.0 -. t.lambda) /. Float.max st.bb_total 1e-9;
      st.td_scale <- t.lambda /. Float.max st.td_total 1e-12

let propose st =
  let grid = st.problem.Problem.grid in
  let b = Util.Prng.int st.rng (Array.length st.problem.Problem.blocks) in
  let bx, by = coords st b in
  match st.problem.Problem.blocks.(b) with
  | Problem.Cluster_block _ ->
      let d = max 1 (int_of_float st.window) in
      let x = bx + Util.Prng.int st.rng ((2 * d) + 1) - d in
      let y = by + Util.Prng.int st.rng ((2 * d) + 1) - d in
      let x = max 1 (min grid.Fpga_arch.Grid.nx x) in
      let y = max 1 (min grid.Fpga_arch.Grid.ny y) in
      if Fpga_arch.Grid.Clb (x, y) = st.pl.Placement.loc.(b) then None
      else Some (b, Fpga_arch.Grid.Clb (x, y))
  | Problem.Input_pad _ | Problem.Output_pad _ ->
      let x, y, s = Util.Prng.pick st.rng st.pad_slots in
      if Fpga_arch.Grid.Pad (x, y, s) = st.pl.Placement.loc.(b) then None
      else Some (b, Fpga_arch.Grid.Pad (x, y, s))

let affected_nets st b target =
  let occ =
    match target with
    | Fpga_arch.Grid.Clb (x, y) ->
        let o = st.pl.Placement.clb_at.(x).(y) in
        if o >= 0 then Some o else None
    | Fpga_arch.Grid.Pad (x, y, s) ->
        Hashtbl.find_opt st.pl.Placement.pad_at (x, y, s)
  in
  ( occ,
    match occ with
    | Some o -> List.sort_uniq compare (st.touch.(b) @ st.touch.(o))
    | None -> st.touch.(b) )

(* Shift the move-evaluation copy of every net touching [mover] for its
   [src] -> [dst] relocation; a box whose boundary emptied is rescanned
   from the (already fully updated) placement and settles — later movers
   are already reflected in the rescan, so it takes no further shifts. *)
let shift_mover st mover ~src ~dst =
  Array.iter
    (fun (ni, count) ->
      if not st.tmp_settled.(ni) then
        if not (Placement.shift_box st.tmp_boxes.(ni) ~count ~src ~dst) then begin
          Placement.scan_box st.pl ni st.tmp_boxes.(ni);
          st.tmp_settled.(ni) <- true
        end)
    st.cache.Placement.touch.(mover)

let tmp_box_cost st ni =
  let b = st.tmp_boxes.(ni) in
  st.cache.Placement.qs.(ni)
  *. float_of_int
       (b.Placement.xmax - b.Placement.xmin
       + (b.Placement.ymax - b.Placement.ymin))

(* Evaluate a move: apply it, maintain temp boxes for the touched nets,
   and return the undo closure plus the touched-net costs after.  The
   caller either commits (copy temp boxes into the cache, update the
   per-net arrays and totals) or undoes (the cache was never written). *)
let eval_move st b target =
  let b_src = coords st b in
  let occ, nets_touched = affected_nets st b target in
  let bb_before, td_before =
    List.fold_left
      (fun (bb, td) ni -> (bb +. st.bb_costs.(ni), td +. st.td_costs.(ni)))
      (0.0, 0.0) nets_touched
  in
  let occ_src = match occ with Some o -> coords st o | None -> (0, 0) in
  let undo = apply_move st.pl b target in
  List.iter
    (fun ni ->
      Placement.copy_box ~src:st.cache.Placement.boxes.(ni)
        ~dst:st.tmp_boxes.(ni);
      st.tmp_settled.(ni) <- false)
    nets_touched;
  shift_mover st b ~src:b_src ~dst:(coords st b);
  (match occ with
  | Some o -> shift_mover st o ~src:occ_src ~dst:(coords st o)
  | None -> ());
  let bb_after, td_after =
    List.fold_left
      (fun (bb, td) ni -> (bb +. tmp_box_cost st ni, td +. td_cost_of_net st ni))
      (0.0, 0.0) nets_touched
  in
  (occ, nets_touched, undo, bb_before, td_before, bb_after, td_after)

let mark_changed st b =
  if not st.changed.(b) then begin
    st.changed.(b) <- true;
    st.changed_list <- b :: st.changed_list
  end

let try_move st temperature =
  match propose st with
  | None -> ()
  | Some (b, target) ->
      st.moves <- st.moves + 1;
      let occ, nets_touched, undo, bb_before, td_before, bb_after, td_after =
        eval_move st b target
      in
      let delta =
        ((bb_after -. bb_before) *. st.bb_scale)
        +. ((td_after -. td_before) *. st.td_scale)
      in
      let accept =
        delta <= 0.0
        || Util.Prng.float st.rng < exp (-.delta /. temperature)
      in
      if accept then begin
        st.accepted <- st.accepted + 1;
        List.iter
          (fun ni ->
            Placement.copy_box ~src:st.tmp_boxes.(ni)
              ~dst:st.cache.Placement.boxes.(ni);
            st.bb_total <- st.bb_total -. st.bb_costs.(ni);
            st.td_total <- st.td_total -. st.td_costs.(ni);
            st.bb_costs.(ni) <- Placement.box_cost st.cache ni;
            st.td_costs.(ni) <- td_cost_of_net st ni;
            st.bb_total <- st.bb_total +. st.bb_costs.(ni);
            st.td_total <- st.td_total +. st.td_costs.(ni))
          nets_touched;
        mark_changed st b;
        match occ with Some o -> mark_changed st o | None -> ()
      end
      else undo ()

let exit_scale st =
  (* the floor guards degenerate placements whose cost reaches zero
     (e.g. only pad-to-pad nets): the schedule must still terminate *)
  Float.max 1e-9
    (match st.timing with
    | None -> 0.005 *. st.bb_total /. float_of_int (n_nets st)
    | Some _ ->
        (* costs are normalised to ~1 in timing mode *)
        0.005 /. float_of_int (n_nets st))

let refresh_timing st =
  match (st.timing, st.hook) with
  | Some _, Some hook ->
      let a = hook ~coords:(coords st) ~changed_blocks:st.changed_list in
      st.last_dmax <- Some a.Td_timing.dmax;
      st.criticality <- a.Td_timing.criticality;
      List.iter (fun b -> st.changed.(b) <- false) st.changed_list;
      st.changed_list <- [];
      for ni = 0 to n_nets st - 1 do
        st.td_costs.(ni) <- td_cost_of_net st ni
      done;
      st.td_total <- sum_prefix st.td_costs (n_nets st)
  | _ -> ()

let trivial_state options problem pl =
  {
    pl;
    rng = Util.Prng.create options.seed;
    problem;
    options;
    timing = None;
    hook = None;
    touch = [||];
    cache = { Placement.boxes = [||]; qs = [||]; touch = [||] };
    tmp_boxes = [||];
    tmp_settled = [||];
    bb_costs = [||];
    td_costs = [||];
    criticality = [||];
    bb_total = 0.0;
    td_total = 0.0;
    bb_scale = 1.0;
    td_scale = 0.0;
    temperature = 0.0;
    window = 1.0;
    moves = 0;
    accepted = 0;
    changed = [||];
    changed_list = [];
    last_dmax = None;
    steps = 0;
    finished = true;
    initial_cost = 0.0;
    inner = 0;
    pad_slots = [||];
    trivial = true;
  }

let init ?(options = default_options) ?timing ?scratch (problem : Problem.t) =
  let rng = Util.Prng.create options.seed in
  let pl = Placement.initial ~seed:options.seed problem in
  let grid = problem.Problem.grid in
  let n_blocks = Array.length problem.Problem.blocks in
  let n_nets = Array.length problem.Problem.nets in
  if n_nets = 0 || n_blocks <= 1 then trivial_state options problem pl
  else begin
    let touch = nets_of_block problem in
    (* arrays possibly longer than n_nets when a shared scratch is in
       use; only the first n_nets slots are live *)
    let bb_costs, td_costs = scratch_arrays scratch n_nets in
    let cache = Placement.bbox_cache pl in
    for ni = 0 to n_nets - 1 do
      bb_costs.(ni) <- Placement.box_cost cache ni
    done;
    let hook =
      Option.map
        (fun t ->
          match t.make_incremental with
          | Some f -> f ()
          | None -> fun ~coords ~changed_blocks:_ -> t.analyze ~coords)
        timing
    in
    let st =
      {
        pl;
        rng;
        problem;
        options;
        timing;
        hook;
        touch;
        cache;
        tmp_boxes = Array.init n_nets (fun _ -> Placement.empty_box ());
        tmp_settled = Array.make n_nets false;
        bb_costs;
        td_costs;
        criticality = [||];
        bb_total = sum_prefix bb_costs n_nets;
        td_total = 0.0;
        bb_scale = 1.0;
        td_scale = 0.0;
        temperature = 0.0;
        window = float_of_int (max grid.Fpga_arch.Grid.nx 1);
        moves = 0;
        accepted = 0;
        changed = Array.make n_blocks false;
        changed_list = [];
        last_dmax = None;
        steps = 0;
        finished = false;
        initial_cost = 0.0;
        inner =
          (int_of_float
             (options.inner_num *. (float_of_int n_blocks ** (4.0 /. 3.0)))
          |> max 16);
        pad_slots = Array.of_list (Fpga_arch.Grid.pad_positions grid);
        trivial = false;
      }
    in
    let st = { st with initial_cost = st.bb_total } in
    (match st.hook with
    | Some hook ->
        let a = hook ~coords:(coords st) ~changed_blocks:[] in
        st.last_dmax <- Some a.Td_timing.dmax;
        st.criticality <- a.Td_timing.criticality
    | None -> ());
    for ni = 0 to n_nets - 1 do
      td_costs.(ni) <- td_cost_of_net st ni
    done;
    st.td_total <- sum_prefix td_costs n_nets;
    refresh_scales st;
    (* initial temperature from random-move statistics *)
    let sample_deltas = Array.make (min 200 (20 * n_blocks)) 0.0 in
    Array.iteri
      (fun idx _ ->
        match propose st with
        | None -> ()
        | Some (b, target) ->
            let _, _, undo, bb_before, td_before, bb_after, td_after =
              eval_move st b target
            in
            sample_deltas.(idx) <-
              ((bb_after -. bb_before) *. st.bb_scale)
              +. ((td_after -. td_before) *. st.td_scale);
            undo ())
      sample_deltas;
    st.temperature <- (20.0 *. Util.Stats.stddev sample_deltas) +. 1e-9;
    st
  end

(* One temperature step: refresh criticalities / normalisations, run the
   inner move loop, cool and adapt the window, and detect the schedule
   exit (running the final greedy pass before marking finished). *)
let temp_step ?obs st =
  if not st.finished then begin
    Obs.Span.with_ ~name:"place.temperature"
      ~args:[ ("T", Obs.Emit.Float st.temperature) ]
    @@ fun () ->
    refresh_timing st;
    (* both totals resum from the exact per-net arrays: incremental
       accumulation across the inner loops must not survive a
       temperature boundary (bb_total's missing resum was the drift
       bug this mirrors td_total's fix onto) *)
    st.bb_total <- sum_prefix st.bb_costs (n_nets st);
    refresh_scales st;
    let accepted_before = st.accepted in
    let move_loop () =
      for _ = 1 to st.inner do
        try_move st st.temperature
      done
    in
    (match obs with
    | Some o -> Obs.Registry.time o "place.move-eval" move_loop
    | None -> move_loop ());
    let rate =
      float_of_int (st.accepted - accepted_before) /. float_of_int st.inner
    in
    (match obs with
    | Some o -> Obs.Registry.observe o "place.accept-rate" rate
    | None -> ());
    Obs.Span.annotate [ ("accept_rate", Obs.Emit.Float rate) ];
    Obs.Events.emit
      (Obs.Events.Place_temperature
         { step = st.steps; temperature = st.temperature; accept_rate = rate });
    let alpha =
      if rate > 0.96 then 0.5
      else if rate > 0.8 then 0.9
      else if rate > 0.15 then 0.95
      else 0.8
    in
    st.temperature <- st.temperature *. alpha;
    st.window <- st.window *. (1.0 -. 0.44 +. rate);
    st.window <-
      Float.max 1.0
        (Float.min st.window
           (float_of_int st.problem.Problem.grid.Fpga_arch.Grid.nx));
    st.steps <- st.steps + 1;
    if st.temperature < exit_scale st then begin
      (* final greedy pass at T ~ 0 *)
      let greedy () =
        for _ = 1 to st.inner do
          try_move st 1e-9
        done
      in
      (match obs with
      | Some o -> Obs.Registry.time o "place.move-eval" greedy
      | None -> greedy ());
      st.bb_total <- sum_prefix st.bb_costs (n_nets st);
      st.finished <- true
    end
  end

let finalize st =
  let estimated_dmax =
    if st.trivial then None
    else
      match st.hook with
      | Some hook ->
          let a = hook ~coords:(coords st) ~changed_blocks:st.changed_list in
          List.iter (fun b -> st.changed.(b) <- false) st.changed_list;
          st.changed_list <- [];
          Some a.Td_timing.dmax
      | None -> None
  in
  (* exact exit cost: resummed from per-net costs, themselves exact *)
  if not st.trivial then st.bb_total <- sum_prefix st.bb_costs (n_nets st);
  {
    placement = st.pl;
    initial_cost = st.initial_cost;
    final_cost = st.bb_total;
    estimated_dmax;
    moves = st.moves;
    accepted = st.accepted;
  }

let run ?options ?timing ?scratch ?obs (problem : Problem.t) =
  let st = init ?options ?timing ?scratch problem in
  while not st.finished do
    temp_step ?obs st
  done;
  finalize st

(* Multi-start annealing: [starts] independent runs on seeds
   seed, seed+1, ..., the best final bounding-box cost wins.  Each run
   only reads the shared problem and derives all randomness from its own
   seed, so the runs parallelise shared-nothing across a Domain pool and
   the winner — ties broken toward the lowest seed offset, as a
   sequential scan would — is identical for any [jobs].

   The costing scratch is shared across the seeds a domain executes
   (domain-local storage, so workers never alias each other's arrays):
   sequentially that is one allocation for all starts instead of one per
   start, and a run overwrites every live slot before reading it, so the
   reuse is invisible in the results. *)
let scratch_slot : scratch Util.Parallel.scratch_slot =
  Util.Parallel.scratch_slot ()

(* Budget-adaptive pruning: advance every live seed [prune_interval]
   temperature steps, then compare the merged snapshot of their exact
   (resummed) bounding-box totals and kill the unfinished seeds trailing
   the incumbent by more than [margin].  Every comparison happens at a
   barrier over the same deterministic snapshot and the incumbent is
   never killed, so the surviving set — and hence the winner — is
   identical for any [jobs].  States suspend between segments, so each
   allocates its own costing arrays (never the domain-shared scratch:
   two suspended states on one domain must not alias). *)
let run_pruned ~options ~timing ~jobs ~starts ~margin ~interval ~obs problem =
  let states =
    Util.Parallel.map ?jobs
      (fun k ->
        init ~options:{ options with seed = options.seed + k } ?timing problem)
      (Array.init starts Fun.id)
  in
  let live = Array.make starts true in
  let running = ref true in
  while !running do
    let active =
      Array.of_list
        (List.filter
           (fun i -> live.(i) && not states.(i).finished)
           (List.init starts Fun.id))
    in
    if Array.length active = 0 then running := false
    else begin
      ignore
        (Util.Parallel.map ?jobs
           (fun i ->
             let st = states.(i) in
             let n = ref 0 in
             while (not st.finished) && !n < interval do
               temp_step ?obs st;
               incr n
             done)
           active);
      (* milestone: exact totals were resummed at each state's last
         temperature boundary, so the snapshot is drift-free *)
      let best = ref infinity in
      Array.iteri
        (fun i st -> if live.(i) && st.bb_total < !best then best := st.bb_total)
        states;
      let cutoff = (1.0 +. margin) *. !best in
      Array.iteri
        (fun i st ->
          if live.(i) && (not st.finished) && st.bb_total > cutoff then
            live.(i) <- false)
        states
    end
  done;
  let results =
    Array.to_list
      (Array.mapi
         (fun i st -> if live.(i) && st.finished then Some (finalize st) else None)
         states)
    |> List.filter_map Fun.id
  in
  match results with
  | [] -> assert false (* the incumbent is never killed *)
  | first :: rest ->
      (* strict < keeps the earliest surviving seed on ties *)
      List.fold_left
        (fun best r -> if r.final_cost < best.final_cost then r else best)
        first rest

let run_multistart ?(options = default_options) ?timing ?jobs ?(starts = 1)
    ?prune_margin ?(prune_interval = 4) ?obs (problem : Problem.t) =
  if starts <= 1 then run ~options ?timing ?obs problem
  else
    (* starts > 1 anneals inside Parallel.map, which runs inline at
       jobs=1 but on pool domains otherwise — suppress progress events
       so the emitted sequence stays jobs-independent *)
    Obs.Events.without @@ fun () ->
    match prune_margin with
    | Some margin ->
        run_pruned ~options ~timing ~jobs ~starts ~margin
          ~interval:(max 1 prune_interval) ~obs problem
    | None ->
        let results =
          Util.Parallel.map ?jobs
            (fun k ->
              let scratch =
                Util.Parallel.scratch scratch_slot ~valid:(fun _ -> true)
                  ~create:create_scratch
              in
              run
                ~options:{ options with seed = options.seed + k }
                ?timing ~scratch ?obs problem)
            (Array.init starts Fun.id)
        in
        (* strict < keeps the earliest seed on ties *)
        Array.fold_left
          (fun best r -> if r.final_cost < best.final_cost then r else best)
          results.(0) results
