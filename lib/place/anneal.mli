(** Adaptive simulated annealing, following VPR's schedule: initial
    temperature from random-move statistics, inner_num x Nblocks^(4/3)
    moves per temperature, acceptance-driven cooling and range limiting.

    With [timing] options the annealer runs in VPR's path-timing-driven
    mode: cost = (1-lambda) x bb/bb_norm + lambda x td/td_norm, where a
    connection's timing cost is criticality^crit_exp x estimated delay;
    criticalities and normalisations refresh every temperature.

    Move evaluation is incremental: per-net bounding boxes are cached
    ({!Placement.bbox_cache}) so a move's wirelength delta costs
    O(touched nets), and both cost totals are resummed from the exact
    per-net arrays at every temperature boundary and at exit —
    [final_cost] equals a from-scratch {!Placement.total_cost} of the
    returned placement up to the summation order (same ascending net
    order, hence bit-identical). *)

type options = {
  seed : int;
  inner_num : float; (** 1.0 reproduces VPR's default effort *)
}

val default_options : options

type timing_options = {
  lambda : float;   (** timing tradeoff; VPR default 0.5 *)
  crit_exp : float; (** criticality exponent; VPR default 1.0 *)
  model : Td_timing.delay_model;
  analyze : coords:(int -> int * int) -> Td_timing.analysis;
      (** the timing analysis, refreshed at every temperature with the
          current block coordinates.  The annealer has no STA of its own
          (lib/place cannot depend on lib/sta); the flow injects the
          unified engine ([Sta.Analysis] over a shared timing graph,
          adapted via [Sta.Analysis.to_td]).  The hook must be pure —
          multi-start runs call it concurrently from several domains. *)
  make_incremental :
    (unit ->
    coords:(int -> int * int) -> changed_blocks:int list -> Td_timing.analysis)
    option;
      (** factory for an incremental analysis chain.  When present, each
          annealing run calls it once at initialisation and then feeds
          the returned hook the list of blocks moved since its previous
          call (first call: [[]]); the hook may re-propagate only the
          affected timing cones ([Sta.Analysis.update]) as long as the
          result is identical to a fresh analysis.  The chain owns its
          own state, so multi-start runs stay shared-nothing: the
          factory must be safe to call from any domain, and each
          returned hook is only ever used by the run that created it. *)
}

val default_timing :
  ?make_incremental:
    (unit ->
    coords:(int -> int * int) -> changed_blocks:int list -> Td_timing.analysis) ->
  analyze:(coords:(int -> int * int) -> Td_timing.analysis) ->
  unit ->
  timing_options
(** lambda 0.5, crit_exp 1.0, default distance model, the given
    analysis (and optional incremental factory). *)

type result = {
  placement : Placement.t;
  initial_cost : float;
  final_cost : float;  (** bounding-box cost (comparable across modes) *)
  estimated_dmax : float option; (** timing-driven mode only *)
  moves : int;
  accepted : int;
}

val apply_move :
  Placement.t -> int -> Fpga_arch.Grid.location -> unit -> unit
(** Move/swap a block to a target slot; returns the undo closure.
    Exposed for testing. *)

type scratch
(** Reusable per-net costing buffers (bounding-box and timing cost
    arrays).  A run overwrites every live slot before reading it, so
    passing the same scratch to consecutive runs changes nothing but
    the allocation count. *)

val create_scratch : unit -> scratch
(** An empty scratch; grows to fit the largest problem it serves. *)

val run :
  ?options:options -> ?timing:timing_options -> ?scratch:scratch ->
  ?obs:Obs.Registry.t -> Problem.t -> result
(** One annealing run.  Fully deterministic in [options.seed]: all
    randomness derives from the explicit {!Util.Prng} stream.
    [scratch] (optional) reuses costing buffers from a previous run on
    the same domain instead of allocating fresh ones.  [obs] records the
    per-temperature acceptance rate into the ["place.accept-rate"]
    histogram and the inner move loops under the ["place.move-eval"]
    timer; each temperature step also emits one ["place.temperature"]
    span into the ambient {!Obs.Span} trace. *)

val run_multistart :
  ?options:options -> ?timing:timing_options -> ?jobs:int -> ?starts:int ->
  ?prune_margin:float -> ?prune_interval:int ->
  ?obs:Obs.Registry.t -> Problem.t -> result
(** [starts] independent runs on seeds [seed, seed+1, ...]; the lowest
    final bounding-box cost wins, ties broken toward the lowest seed
    offset.  Runs are shared-nothing and execute on a Domain pool of
    [jobs] workers (default {!Util.Parallel.default_jobs}); the winner
    is identical for any [jobs].  [starts <= 1] is exactly {!run}.

    [prune_margin] enables budget-adaptive pruning: every
    [prune_interval] (default 4) temperature steps all live starts
    synchronise, their exact (resummed) bounding-box totals are compared
    as one merged snapshot, and unfinished starts trailing the incumbent
    by more than [prune_margin] (a fraction: [0.5] = 50% above the best)
    are abandoned.  The incumbent is never pruned and every decision
    happens at a deterministic barrier, so the winner is still identical
    for any [jobs] — pruning trades exhaustiveness for wall-clock only.
    Without [prune_margin] every start runs to completion (and each
    domain reuses one costing scratch across its seeds; pruned states
    suspend between segments, so there each state owns its arrays). *)
