(* A placement assignment plus the bounding-box wirelength cost. *)

type t = {
  problem : Problem.t;
  loc : Fpga_arch.Grid.location array;       (* per block *)
  clb_at : int array array;                  (* (x, y) -> block or -1 *)
  pad_at : (int * int * int, int) Hashtbl.t; (* (x, y, sub) -> block *)
}

let location t b = t.loc.(b)

let coords t b =
  match t.loc.(b) with
  | Fpga_arch.Grid.Clb (x, y) -> (x, y)
  | Fpga_arch.Grid.Pad (x, y, _) -> (x, y)

(* Random initial placement. *)
let initial ?(seed = 1) (problem : Problem.t) =
  let rng = Util.Prng.create seed in
  let grid = problem.Problem.grid in
  let clb_slots = Array.of_list (Fpga_arch.Grid.clb_positions grid) in
  let pad_slots = Array.of_list (Fpga_arch.Grid.pad_positions grid) in
  Util.Prng.shuffle rng clb_slots;
  Util.Prng.shuffle rng pad_slots;
  let loc =
    Array.make (Array.length problem.Problem.blocks) (Fpga_arch.Grid.Clb (0, 0))
  in
  let clb_at = Array.make_matrix (grid.Fpga_arch.Grid.nx + 2)
      (grid.Fpga_arch.Grid.ny + 2) (-1) in
  let pad_at = Hashtbl.create 64 in
  let next_clb = ref 0 and next_pad = ref 0 in
  Array.iteri
    (fun b kind ->
      match kind with
      | Problem.Cluster_block _ ->
          let x, y = clb_slots.(!next_clb) in
          incr next_clb;
          loc.(b) <- Fpga_arch.Grid.Clb (x, y);
          clb_at.(x).(y) <- b
      | Problem.Input_pad _ | Problem.Output_pad _ ->
          let x, y, sub = pad_slots.(!next_pad) in
          incr next_pad;
          loc.(b) <- Fpga_arch.Grid.Pad (x, y, sub);
          Hashtbl.replace pad_at (x, y, sub) b)
    problem.Problem.blocks;
  { problem; loc; clb_at; pad_at }

(* ---------- cost ---------- *)

(* VPR's bounding-box wirelength: half-perimeter scaled by a fanout
   correction factor q (Cheng's values, linearised above 3 terminals). *)
let q_factor terminals =
  if terminals <= 3 then 1.0
  else 0.8624 +. (0.1 *. float_of_int (terminals - 3))

let net_bbox t (net : Problem.net) =
  let x0, y0 = coords t net.Problem.driver in
  let xmin = ref x0 and xmax = ref x0 and ymin = ref y0 and ymax = ref y0 in
  Array.iter
    (fun s ->
      let x, y = coords t s in
      if x < !xmin then xmin := x;
      if x > !xmax then xmax := x;
      if y < !ymin then ymin := y;
      if y > !ymax then ymax := y)
    net.Problem.sinks;
  (!xmin, !xmax, !ymin, !ymax)

let net_cost t net =
  let xmin, xmax, ymin, ymax = net_bbox t net in
  let terminals = 1 + Array.length net.Problem.sinks in
  q_factor terminals *. float_of_int (xmax - xmin + (ymax - ymin))

let total_cost t =
  Array.fold_left (fun acc net -> acc +. net_cost t net) 0.0
    t.problem.Problem.nets

(* ---------- incremental bounding boxes (VPR's update_bb) ----------

   The annealer evaluates millions of moves; rescanning every touched
   net's terminals per move is the placement hot path.  A [box] caches a
   net's extents plus how many terminals sit on each boundary: moving a
   terminal updates the box in O(1) unless the last occupant of a
   boundary moves inward, in which case the extent is unknown and the
   net is rescanned (VPR's get_bb_from_scratch case — rare, amortized
   away).  Extents are integers, so a maintained box yields costs
   bit-identical to {!net_cost}'s scan. *)

type box = {
  mutable xmin : int;
  mutable xmax : int;
  mutable ymin : int;
  mutable ymax : int;
  mutable on_xmin : int;  (* terminals currently at each boundary *)
  mutable on_xmax : int;
  mutable on_ymin : int;
  mutable on_ymax : int;
}

type bbox_cache = {
  boxes : box array;      (* per net *)
  qs : float array;       (* q_factor per net, precomputed *)
  touch : (int * int) array array;
      (* per block: (net index, terminal multiplicity) pairs, ascending
         net index.  Multiplicity covers degenerate nets whose driver
         re-appears among the sinks (never produced by Problem.build,
         but representable and exercised by tests). *)
}

let scan_box t ni box =
  let net = t.problem.Problem.nets.(ni) in
  let x0, y0 = coords t net.Problem.driver in
  box.xmin <- x0;
  box.xmax <- x0;
  box.ymin <- y0;
  box.ymax <- y0;
  box.on_xmin <- 1;
  box.on_xmax <- 1;
  box.on_ymin <- 1;
  box.on_ymax <- 1;
  Array.iter
    (fun s ->
      let x, y = coords t s in
      if x < box.xmin then begin box.xmin <- x; box.on_xmin <- 1 end
      else if x = box.xmin then box.on_xmin <- box.on_xmin + 1;
      if x > box.xmax then begin box.xmax <- x; box.on_xmax <- 1 end
      else if x = box.xmax then box.on_xmax <- box.on_xmax + 1;
      if y < box.ymin then begin box.ymin <- y; box.on_ymin <- 1 end
      else if y = box.ymin then box.on_ymin <- box.on_ymin + 1;
      if y > box.ymax then begin box.ymax <- y; box.on_ymax <- 1 end
      else if y = box.ymax then box.on_ymax <- box.on_ymax + 1)
    net.Problem.sinks

let copy_box ~src ~dst =
  dst.xmin <- src.xmin;
  dst.xmax <- src.xmax;
  dst.ymin <- src.ymin;
  dst.ymax <- src.ymax;
  dst.on_xmin <- src.on_xmin;
  dst.on_xmax <- src.on_xmax;
  dst.on_ymin <- src.on_ymin;
  dst.on_ymax <- src.on_ymax

let empty_box () =
  { xmin = 0; xmax = 0; ymin = 0; ymax = 0;
    on_xmin = 0; on_xmax = 0; on_ymin = 0; on_ymax = 0 }

let bbox_cache t =
  let nets = t.problem.Problem.nets in
  let n_nets = Array.length nets in
  let boxes = Array.init n_nets (fun _ -> empty_box ()) in
  for ni = 0 to n_nets - 1 do
    scan_box t ni boxes.(ni)
  done;
  let qs =
    Array.map
      (fun (net : Problem.net) ->
        q_factor (1 + Array.length net.Problem.sinks))
      nets
  in
  let touch = Array.make (Array.length t.problem.Problem.blocks) [] in
  let bump b ni =
    match touch.(b) with
    | (ni', m) :: rest when ni' = ni -> touch.(b) <- (ni', m + 1) :: rest
    | l -> touch.(b) <- (ni, 1) :: l
  in
  Array.iteri
    (fun ni (net : Problem.net) ->
      bump net.Problem.driver ni;
      Array.iter (fun s -> bump s ni) net.Problem.sinks)
    nets;
  (* per-net terminal walks emit ascending runs, so sorting by net index
     and merging runs yields exact multiplicities *)
  let touch =
    Array.map
      (fun l ->
        List.sort compare l
        |> List.fold_left
             (fun acc (ni, m) ->
               match acc with
               | (ni', m') :: rest when ni' = ni -> (ni', m' + m) :: rest
               | _ -> (ni, m) :: acc)
             []
        |> List.rev |> Array.of_list)
      touch
  in
  { boxes; qs; touch }

let box_cost cache ni =
  let b = cache.boxes.(ni) in
  cache.qs.(ni) *. float_of_int (b.xmax - b.xmin + (b.ymax - b.ymin))

(* Move [count] terminals of a box from [src] to [dst].  Returns false
   when a boundary lost its last occupant and the new extent is unknown
   (the caller must {!scan_box}). *)
let shift_box box ~count ~src:(ox, oy) ~dst:(nx, ny) =
  let exact = ref true in
  if nx <> ox then begin
    if ox = box.xmin then box.on_xmin <- box.on_xmin - count;
    if ox = box.xmax then box.on_xmax <- box.on_xmax - count;
    if nx < box.xmin then begin
      box.xmin <- nx;
      box.on_xmin <- count
    end
    else if nx = box.xmin then box.on_xmin <- box.on_xmin + count;
    if nx > box.xmax then begin
      box.xmax <- nx;
      box.on_xmax <- count
    end
    else if nx = box.xmax then box.on_xmax <- box.on_xmax + count;
    if box.on_xmin = 0 || box.on_xmax = 0 then exact := false
  end;
  if ny <> oy then begin
    if oy = box.ymin then box.on_ymin <- box.on_ymin - count;
    if oy = box.ymax then box.on_ymax <- box.on_ymax - count;
    if ny < box.ymin then begin
      box.ymin <- ny;
      box.on_ymin <- count
    end
    else if ny = box.ymin then box.on_ymin <- box.on_ymin + count;
    if ny > box.ymax then begin
      box.ymax <- ny;
      box.on_ymax <- count
    end
    else if ny = box.ymax then box.on_ymax <- box.on_ymax + count;
    if box.on_ymin = 0 || box.on_ymax = 0 then exact := false
  end;
  !exact

(* ---------- legality (used by tests) ---------- *)

let legal t =
  let grid = t.problem.Problem.grid in
  let ok = ref true in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun b kind ->
      (match (kind, t.loc.(b)) with
      | Problem.Cluster_block _, Fpga_arch.Grid.Clb (x, y) ->
          if not (Fpga_arch.Grid.in_clb_range grid (x, y)) then ok := false
      | (Problem.Input_pad _ | Problem.Output_pad _), Fpga_arch.Grid.Pad (x, y, sub)
        ->
          if not (Fpga_arch.Grid.is_perimeter grid (x, y)) then ok := false;
          if sub < 0 || sub >= grid.Fpga_arch.Grid.io_rat then ok := false
      | _ -> ok := false);
      if Hashtbl.mem seen t.loc.(b) then ok := false;
      Hashtbl.replace seen t.loc.(b) ())
    t.problem.Problem.blocks;
  !ok
