(** A placement assignment plus the bounding-box wirelength cost. *)

type t = {
  problem : Problem.t;
  loc : Fpga_arch.Grid.location array;       (** per block *)
  clb_at : int array array;                  (** (x, y) -> block or -1 *)
  pad_at : (int * int * int, int) Hashtbl.t;
}

val location : t -> int -> Fpga_arch.Grid.location
(** Slot currently holding a block. *)

val coords : t -> int -> int * int
(** Grid coordinates of a block (pads report their perimeter position). *)

val initial : ?seed:int -> Problem.t -> t
(** Random legal placement. *)

val q_factor : int -> float
(** VPR's fanout correction for the half-perimeter metric. *)

val net_bbox : t -> Problem.net -> int * int * int * int
(** (xmin, xmax, ymin, ymax). *)

val net_cost : t -> Problem.net -> float
(** q(fanout) x half-perimeter. *)

val total_cost : t -> float
(** Sum of {!net_cost} over every net (the annealer's objective). *)

val legal : t -> bool
(** Every block on a distinct slot of the right kind (used by tests). *)
