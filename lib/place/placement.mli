(** A placement assignment plus the bounding-box wirelength cost. *)

type t = {
  problem : Problem.t;
  loc : Fpga_arch.Grid.location array;       (** per block *)
  clb_at : int array array;                  (** (x, y) -> block or -1 *)
  pad_at : (int * int * int, int) Hashtbl.t;
}

val location : t -> int -> Fpga_arch.Grid.location
(** Slot currently holding a block. *)

val coords : t -> int -> int * int
(** Grid coordinates of a block (pads report their perimeter position). *)

val initial : ?seed:int -> Problem.t -> t
(** Random legal placement. *)

val q_factor : int -> float
(** VPR's fanout correction for the half-perimeter metric. *)

val net_bbox : t -> Problem.net -> int * int * int * int
(** (xmin, xmax, ymin, ymax). *)

val net_cost : t -> Problem.net -> float
(** q(fanout) x half-perimeter. *)

val total_cost : t -> float
(** Sum of {!net_cost} over every net (the annealer's objective). *)

(** {1 Incremental bounding boxes}

    VPR-style cached net extents with count-at-boundary bookkeeping, so
    the annealer evaluates a move's wirelength delta in O(touched nets)
    instead of rescanning terminals.  Extents are integers: a maintained
    box yields costs {e bit-identical} to {!net_cost}'s scan. *)

type box = {
  mutable xmin : int;
  mutable xmax : int;
  mutable ymin : int;
  mutable ymax : int;
  mutable on_xmin : int;  (** terminals currently at each boundary *)
  mutable on_xmax : int;
  mutable on_ymin : int;
  mutable on_ymax : int;
}

type bbox_cache = {
  boxes : box array;  (** per net *)
  qs : float array;   (** {!q_factor} per net, precomputed *)
  touch : (int * int) array array;
      (** per block: (net index, terminal multiplicity) pairs, ascending
          net index *)
}

val bbox_cache : t -> bbox_cache
(** Scan every net of the current placement into a fresh cache. *)

val box_cost : bbox_cache -> int -> float
(** q x half-perimeter from the cached box; equals {!net_cost} whenever
    the box matches the placement. *)

val scan_box : t -> int -> box -> unit
(** Recompute net [ni]'s box from the current placement (the
    get-from-scratch fallback). *)

val copy_box : src:box -> dst:box -> unit

val empty_box : unit -> box

val shift_box : box -> count:int -> src:int * int -> dst:int * int -> bool
(** Move [count] terminals of the box from [src] to [dst] coordinates.
    Returns [false] when a boundary lost its last occupant, leaving the
    extent unknown — the caller must {!scan_box} (with every mover
    already at its final location) and apply no further shifts for that
    net this move. *)

val legal : t -> bool
(** Every block on a distinct slot of the right kind (used by tests). *)
