(* Pre-route static timing for timing-driven placement (T-VPlace style).

   Interconnect delays are estimated from placement distance (a linear
   per-tile model); a forward/backward pass over the mapped netlist yields
   per-connection slacks, and criticality = 1 - slack / Dmax weights the
   placement cost so critical connections pull their endpoints together. *)


type delay_model = {
  t_local : float;    (* intra-cluster connection, s *)
  t_per_tile : float; (* per Manhattan tile of separation, s *)
  t_fixed : float;    (* pin/buffer overhead of any inter-block hop, s *)
  t_logic : float;    (* LUT delay, s *)
  t_clk_q : float;
  t_setup : float;
}

let default_model =
  {
    t_local = 0.18e-9;
    t_per_tile = 0.25e-9;
    t_fixed = 0.35e-9;
    t_logic = 0.45e-9;
    t_clk_q = 0.20e-9;
    t_setup = 0.10e-9;
  }

(* Per-signal producing block (clusters and input pads). *)
let block_of_signal (problem : Problem.t) =
  let packing = problem.Problem.packing in
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun bidx kind ->
      match kind with
      | Problem.Cluster_block cid ->
          List.iter
            (fun (b : Pack.Ble.t) ->
              Hashtbl.replace tbl b.Pack.Ble.output bidx)
            packing.Pack.Cluster.clusters.(cid).Pack.Cluster.bles
      | Problem.Input_pad s -> Hashtbl.replace tbl s bidx
      | Problem.Output_pad _ -> ())
    problem.Problem.blocks;
  tbl

type analysis = {
  dmax : float;
  (* criticality of each (net index, sink block): flattened per net *)
  criticality : float array array;
}

