(** Pre-route timing-driven placement support (T-VPlace style): the
    placement-distance delay model, the producing-block map, and the
    analysis record the annealer's timing hook returns.  The analysis
    itself runs in the unified STA engine (lib/sta) — criticality =
    1 - slack / Dmax weights the placement cost. *)

type delay_model = {
  t_local : float;    (** intra-cluster connection, s *)
  t_per_tile : float; (** per Manhattan tile of separation, s *)
  t_fixed : float;    (** pin/buffer overhead of an inter-block hop, s *)
  t_logic : float;    (** LUT delay, s *)
  t_clk_q : float;
  t_setup : float;
}

val default_model : delay_model

val block_of_signal : Problem.t -> (int, int) Hashtbl.t
(** Producing block of every cluster-output / input-pad signal. *)

type analysis = {
  dmax : float;  (** estimated critical path, s *)
  criticality : float array array;
      (** per (net index, sink position): in [0, 1] *)
}
(** The record the annealer's timing hook returns.  The built-in
    standalone analyzer is retired: analyses come from the unified STA
    engine ([Sta.Analysis.run] with the placement-distance provider,
    adapted by [Sta.Analysis.to_td]). *)
