(** Switching-activity estimation by random-vector simulation (the
    Poon/Wilton FPGA power model's default mode).

    The mapped network is clocked with fresh random primary inputs each
    cycle; every signal's transition count and high-state occupancy are
    accumulated. *)

type t = {
  activity : float array;    (** signal id -> transitions per cycle *)
  probability : float array; (** signal id -> P(high) *)
  cycles : int;
}

val estimate : ?cycles:int -> ?seed:int -> Netlist.Logic.t -> t
(** Simulation mode: random vectors over [cycles] clock cycles
    (default 512), deterministic in [seed]. *)

val tt_probability : Netlist.Tt.t -> float array -> float
(** P(f = 1) under independent input probabilities. *)

val boolean_difference : Netlist.Tt.t -> int -> float array -> float
(** P(the output is sensitive to input [i]). *)

val estimate_static : ?iterations:int -> Netlist.Logic.t -> t
(** Analytic mode: exact per-gate probability propagation plus Najm's
    transition-density rule, inputs at P = 0.5 / D = 1; latch statistics
    iterate to a fixed point.  [cycles] in the result is 0. *)
