(* The PowerModel tool: dynamic, short-circuit and leakage power of a
   placed-and-routed design (after Poon/Yan/Wilton's flexible FPGA power
   model, adapted to the paper's platform).

   Dynamic power: 0.5 * V^2 * f * sum over nets of activity * capacitance,
   where routed nets get wire + switch capacitance from their routing trees
   and intra-cluster nets get the local-crossbar capacitance.  The clock
   network is modelled per CLB (local wire + DETFF loads); the platform's
   DETFF halves the clock frequency for the same data rate, and the
   BLE/CLB gated clocks scale the idle fraction down to the Table-2/3
   residual.

   Short-circuit power: 10 % of dynamic (the model's default assumption).
   Leakage: per configuration SRAM cell plus per-BLE constant. *)

open Netlist

type report = {
  dynamic_w : float;
  clock_w : float;
  short_circuit_w : float;
  leakage_w : float;
  total_w : float;
  net_energy_breakdown : (string * float) list; (* top consumers, J/cycle *)
}

type activity_mode = Simulated | Analytic

type options = {
  frequency : float;       (* data rate, Hz *)
  vdd : float;
  activity_cycles : int;
  activity_mode : activity_mode;
}

let default_options =
  { frequency = 100e6; vdd = Spice.Tech.stm018.Spice.Tech.vdd;
    activity_cycles = 512; activity_mode = Simulated }

(* capacitance constants (F) *)
let c_ipin = 5e-15
let c_ff_clock = 4e-15        (* DETFF clock load (Table 1 platform FF) *)

(* The CLB is fully connected (17-to-1 multiplexing on every LUT input in
   the selected platform), so any signal entering the local network — a BLE
   feedback or a cluster input — drives one leg of each of the N*K input
   multiplexers.  This is the architectural cost of large clusters the
   paper's exploration trades off against routing savings. *)
let c_crossbar_load (params : Fpga_arch.Params.t) =
  float_of_int (params.Fpga_arch.Params.n * params.Fpga_arch.Params.k)
  *. 0.8e-15

let c_local_net params = 1.5e-15 +. c_crossbar_load params

(* LUT mux-tree switched capacitance doubles with each extra input. *)
let c_lut_internal (params : Fpga_arch.Params.t) =
  float_of_int (1 lsl params.Fpga_arch.Params.k) *. 0.8e-15

(* CLB local clock network grows with the number of BLEs. *)
let c_clb_clock_wire (params : Fpga_arch.Params.t) =
  float_of_int params.Fpga_arch.Params.n *. 4e-15
let gated_idle_residual = 0.17 (* Table 3: gated/single, all FFs off *)
let leak_per_sram_bit = 8e-9  (* W per configuration cell *)
let leak_per_ble = 60e-9      (* W *)

let estimate ?(options = default_options) (routed : Route.Router.routed) =
  let problem = routed.Route.Router.problem in
  let packing = problem.Place.Problem.packing in
  let lnet = packing.Pack.Cluster.net in
  let params = routed.Route.Router.graph.Route.Rrgraph.params in
  let consts = routed.Route.Router.constants in
  let act =
    match options.activity_mode with
    | Simulated -> Activity.estimate ~cycles:options.activity_cycles lnet
    | Analytic -> Activity.estimate_static lnet
  in
  let v2 = options.vdd *. options.vdd in
  let f = options.frequency in
  (* ---- routed inter-cluster nets ---- *)
  let net_cap = Hashtbl.create 64 in
  Array.iter
    (fun (tr : Route.Pathfinder.route_tree) ->
      let net = problem.Place.Problem.nets.(tr.Route.Pathfinder.net_index) in
      let cap = ref 0.0 in
      List.iter
        (fun nd ->
          let node = routed.Route.Router.graph.Route.Rrgraph.nodes.(nd) in
          match node.Route.Rrgraph.kind with
          | Route.Rrgraph.Chanx _ | Route.Rrgraph.Chany _ ->
              cap :=
                !cap
                +. (Route.Timing.wire_c consts node.Route.Rrgraph.seg
                   *. float_of_int node.Route.Rrgraph.wire_tiles)
                +. consts.Route.Timing.c_switch
          | Route.Rrgraph.Ipin _ ->
              (* entering the cluster also loads the local crossbar *)
              cap := !cap +. c_ipin +. c_crossbar_load params
          | Route.Rrgraph.Opin _ -> cap := !cap +. consts.Route.Timing.c_switch
          | Route.Rrgraph.Sink _ -> ())
        tr.Route.Pathfinder.nodes;
      Hashtbl.replace net_cap net.Place.Problem.signal !cap)
    routed.Route.Router.result.Route.Pathfinder.trees;
  (* ---- intra-cluster nets: BLE outputs consumed locally ---- *)
  Array.iter
    (fun (c : Pack.Cluster.t) ->
      List.iter
        (fun (b : Pack.Ble.t) ->
          let s = b.Pack.Ble.output in
          if not (Hashtbl.mem net_cap s) then
            Hashtbl.replace net_cap s (c_local_net params))
        c.Pack.Cluster.bles)
    packing.Pack.Cluster.clusters;
  (* ---- dynamic signal power ---- *)
  let breakdown = ref [] in
  let dynamic =
    Hashtbl.fold
      (fun s cap acc ->
        let a = act.Activity.activity.(s) in
        let e = 0.5 *. a *. cap *. v2 in
        breakdown := (Logic.name lnet s, e) :: !breakdown;
        acc +. e)
      net_cap 0.0
  in
  (* LUT internal energy per evaluation: scale with output activity *)
  let lut_internal =
    List.fold_left
      (fun acc g ->
        acc +. (0.5 *. act.Activity.activity.(g) *. c_lut_internal params *. v2))
      0.0 (Logic.gates lnet)
  in
  let dynamic_w = (dynamic +. lut_internal) *. f in
  (* ---- clock network ---- *)
  (* DETFFs run the clock at f/2 for data rate f *)
  let f_clk = f /. 2.0 in
  let clock_w =
    Array.fold_left
      (fun acc (c : Pack.Cluster.t) ->
        let ffs =
          List.filter (fun (b : Pack.Ble.t) -> Pack.Ble.uses_ff b)
            c.Pack.Cluster.bles
        in
        let n_ff = List.length ffs in
        if n_ff = 0 && params.Fpga_arch.Params.gated_clock then
          (* whole CLB gated off: Table 3 residual *)
          acc +. (gated_idle_residual *. c_clb_clock_wire params *. v2 *. f_clk)
        else begin
          let ff_cap = float_of_int n_ff *. c_ff_clock in
          (* with BLE-level gating, idle BLEs stop their FF clock load;
             estimate idleness from the latch output activity *)
          let effective_ff_cap =
            if params.Fpga_arch.Params.gated_clock then
              List.fold_left
                (fun a (b : Pack.Ble.t) ->
                  match b.Pack.Ble.ff with
                  | Some ff_sig ->
                      let idle = act.Activity.activity.(ff_sig) < 0.01 in
                      a +. (if idle then gated_idle_residual else 1.06)
                           *. c_ff_clock
                  | None -> a)
                0.0 ffs
            else ff_cap
          in
          acc +. ((c_clb_clock_wire params +. effective_ff_cap) *. v2 *. f_clk)
        end)
      0.0 packing.Pack.Cluster.clusters
  in
  (* ---- leakage ---- *)
  let n_clbs = Array.length packing.Pack.Cluster.clusters in
  let clb_bits = Fpga_arch.Params.clb_config_bits params in
  let routing_bits_per_tile = 4 * routed.Route.Router.width in
  let leakage_w =
    float_of_int n_clbs
    *. ((float_of_int (clb_bits + routing_bits_per_tile) *. leak_per_sram_bit)
       +. (float_of_int params.Fpga_arch.Params.n *. leak_per_ble))
  in
  let short_circuit_w = 0.1 *. (dynamic_w +. clock_w) in
  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) !breakdown
    |> List.filteri (fun i _ -> i < 10)
  in
  {
    dynamic_w;
    clock_w;
    short_circuit_w;
    leakage_w;
    total_w = dynamic_w +. clock_w +. short_circuit_w +. leakage_w;
    net_energy_breakdown = top;
  }

let pp fmt r =
  Format.fprintf fmt
    "dynamic %.3f mW, clock %.3f mW, short-circuit %.3f mW, leakage %.3f mW, \
     total %.3f mW"
    (r.dynamic_w *. 1e3) (r.clock_w *. 1e3) (r.short_circuit_w *. 1e3)
    (r.leakage_w *. 1e3) (r.total_w *. 1e3)
