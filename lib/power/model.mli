(** The PowerModel tool: dynamic, short-circuit and leakage power of a
    placed-and-routed design (after Poon/Yan/Wilton's flexible FPGA power
    model, adapted to the paper's platform).

    Routed nets get wire + switch capacitance from their routing trees;
    intra-cluster nets get the (N x K)-leg crossbar capacitance; the
    clock network runs at f/2 (DETFFs) with the Table-2/3 gated-clock
    residuals; short-circuit is 10 % of dynamic; leakage is per
    configuration cell plus per BLE. *)

type report = {
  dynamic_w : float;        (** signal-toggling power, routed + local nets *)
  clock_w : float;          (** clock network at f/2 (DETFF), gating residuals *)
  short_circuit_w : float;  (** 10 % of dynamic (the model's convention) *)
  leakage_w : float;        (** per configuration cell + per BLE *)
  total_w : float;          (** sum of the four components *)
  net_energy_breakdown : (string * float) list;
      (** top consumers, J per cycle *)
}

type activity_mode =
  | Simulated (** random-vector simulation (see {!Activity.estimate}) *)
  | Analytic  (** probability propagation ({!Activity.estimate_static}) *)

type options = {
  frequency : float; (** data rate, Hz *)
  vdd : float;       (** supply voltage; energies scale as VDD^2 *)
  activity_cycles : int; (** simulation length for {!Simulated} mode *)
  activity_mode : activity_mode;
}

val default_options : options
(** 100 MHz, the process VDD, 512 simulated activity cycles. *)

val estimate : ?options:options -> Route.Router.routed -> report
(** Power of a placed-and-routed design: activity estimation over the
    mapped network, then capacitance extraction from the routing trees
    and cluster crossbars.  Deterministic (fixed activity seed). *)

val pp : Format.formatter -> report -> unit
(** One line: the four components and the total, in mW. *)
