(* PathFinder negotiated-congestion routing (McMurchie & Ebeling), the
   algorithm VPR uses.

   Iteration 1 routes every net with A*-directed Dijkstra over node costs
   base * (1 + acc_fac * history) * present, where [present] penalises
   current overuse and grows geometrically between iterations.  Later
   iterations are incremental: only nets whose trees touch an
   over-capacity node are ripped up and rerouted; legal trees keep their
   routing and their occupancy.  Convergence = no node used beyond its
   capacity.

   The inner loop is net-parallel: each iteration's reroute list is
   partitioned into batches of pairwise-disjoint bounding boxes
   ([partition_batches]); a batch rips up all its nets, routes them
   concurrently on the [Util.Parallel] Domain pool against the frozen
   cost state, then commits occupancy and trees in ascending net-id
   order.  Because every net of a batch sees the identical snapshot and
   the merge order is fixed, the routing is bit-identical for any [jobs]
   value — the deterministic-merge contract (docs/OBSERVABILITY.md). *)

type net_spec = {
  index : int;               (* position in the problem's net array *)
  source : int;              (* driver OPIN node *)
  sinks : int list;          (* SINK nodes *)
  crit : float;              (* timing criticality in [0,1]; 0 = pure
                                congestion-driven routing *)
}

type route_tree = {
  net_index : int;
  nodes : int list;          (* all RR nodes of the net's routing *)
  parents : (int * int) list; (* (node, parent-node) edges of the tree *)
}

type iter_stat = {
  iteration : int;
  overused_nodes : int;      (* nodes above capacity after the iteration *)
  nets_rerouted : int;       (* nets ripped up and rerouted *)
  heap_pops : int;           (* wavefront size: heap pops this iteration *)
  batches : int;             (* bbox-disjoint reroute batches *)
  batch_max : int;           (* nets in the largest batch *)
  serial_nets : int;         (* nets that routed in singleton batches *)
}

type result = {
  graph : Rrgraph.t;
  trees : route_tree array;
  iterations : int;
  success : bool;
  iter_stats : iter_stat list; (* chronological, one per iteration *)
}

type state = {
  occ : int array;
  history : float array;
  mutable pres_fac : float;
}

let node_cost (g : Rrgraph.t) st n ~extra =
  let node = g.Rrgraph.nodes.(n) in
  let over = st.occ.(n) + extra + 1 - node.Rrgraph.capacity in
  let present = if over > 0 then 1.0 +. (float_of_int over *. st.pres_fac) else 1.0 in
  node.Rrgraph.base_cost *. (1.0 +. st.history.(n)) *. present

(* Timing-driven blend (the VPR router's cost): a critical net weighs node
   delay, a non-critical net weighs congestion.  [delay_norm] scales the
   delay term into [0,1]; it is the largest per-node delay of the graph,
   so the blend is architecture-independent. *)
let blended_cost (g : Rrgraph.t) st ?node_delay ~delay_norm ~crit n =
  match node_delay with
  | Some delays when crit > 0.0 ->
      (crit *. delays.(n) /. delay_norm)
      +. ((1.0 -. crit) *. node_cost g st n ~extra:0)
  | _ -> node_cost g st n ~extra:0

(* Scratch buffers shared across nets and iterations within one [route]
   call.  [dist]/[prev] are validated by a generation stamp instead of
   being re-filled per sink: a slot is live only when [stamp.(v) = epoch],
   so starting a fresh search is an integer increment, not an O(n) fill. *)
type scratch = {
  dist : float array;
  prev : int array;
  stamp : int array;
  mutable epoch : int;
  in_tree : bool array;
  is_sink : bool array;
  heap : int Util.Pqueue.t;
  mutable pops : int;        (* heap pops since last reset (observability) *)
}

let make_scratch n =
  {
    dist = Array.make n infinity;
    prev = Array.make n (-1);
    stamp = Array.make n 0;
    epoch = 0;
    in_tree = Array.make n false;
    is_sink = Array.make n false;
    heap = Util.Pqueue.create ();
    pops = 0;
  }

(* One scratch per domain: nets of a batch route concurrently, each
   worker on its own generation-stamped arrays; the calling domain keeps
   its scratch across batches, iterations and [route] calls (a slot is
   live only when stamped with the current epoch, so reuse across graphs
   of equal node count is invisible). *)
let scratch_slot : scratch Util.Parallel.scratch_slot =
  Util.Parallel.scratch_slot ()

let domain_scratch n =
  Util.Parallel.scratch scratch_slot
    ~valid:(fun sc -> Array.length sc.dist >= n)
    ~create:(fun () -> make_scratch n)

let dist_of sc v = if sc.stamp.(v) = sc.epoch then sc.dist.(v) else infinity

let set_dist sc v d p =
  sc.stamp.(v) <- sc.epoch;
  sc.dist.(v) <- d;
  sc.prev.(v) <- p

(* Route one net: grow a tree from the driver OPIN to every sink.  Each
   wavefront expands from the whole current tree and stops at whichever
   remaining sink is cheapest (the classic PathFinder order); the A*
   lookahead directs it with the Manhattan gap between a node's extent
   and the remaining sinks — admissible, since a wire of L tiles costs at
   least L (base_cost = tiles, congestion multipliers >= 1), so crossing
   d tiles never costs less than d.  A wire's whole span counts: once
   paid for, it can be exited at any switch point along it.  [bounds], if
   given, restricts the search to nodes intersecting the rectangle (VPR's
   bounding-box routing). *)
let route_net (g : Rrgraph.t) st sc ?node_delay ?bounds ~delay_norm
    ~astar_fac ~crit ~source ~sinks () =
  let inside =
    match bounds with
    | None -> fun _ -> true
    | Some (bx0, bx1, by0, by1) ->
        fun v ->
          g.Rrgraph.xhi.(v) >= bx0 && g.Rrgraph.xlo.(v) <= bx1
          && g.Rrgraph.yhi.(v) >= by0 && g.Rrgraph.ylo.(v) <= by1
  in
  let tree_nodes = ref [ source ] in
  let tree_parents = ref [] in
  sc.in_tree.(source) <- true;
  List.iter (fun t -> sc.is_sink.(t) <- true) sinks;
  let remaining = ref sinks in
  let cleanup () =
    List.iter (fun t -> sc.is_sink.(t) <- false) sinks;
    List.iter (fun t -> sc.in_tree.(t) <- false) !tree_nodes
  in
  let gap lo1 hi1 lo2 hi2 =
    let d1 = lo2 - hi1 and d2 = lo1 - hi2 in
    if d1 > 0 then d1 else if d2 > 0 then d2 else 0
  in
  (* lookahead to the cheapest-to-reach remaining sink: min over the sinks
     for small fanout, their bounding hull for large (both admissible) *)
  let make_lookahead rem =
    if astar_fac = 0.0 then fun _ -> 0.0
    else if List.length rem <= 6 then
      fun v ->
        let x0 = g.Rrgraph.xlo.(v) and x1 = g.Rrgraph.xhi.(v) in
        let y0 = g.Rrgraph.ylo.(v) and y1 = g.Rrgraph.yhi.(v) in
        astar_fac
        *. float_of_int
             (List.fold_left
                (fun m t ->
                  min m
                    (gap x0 x1 g.Rrgraph.xlo.(t) g.Rrgraph.xhi.(t)
                    + gap y0 y1 g.Rrgraph.ylo.(t) g.Rrgraph.yhi.(t)))
                max_int rem)
    else begin
      let hx0 = List.fold_left (fun m t -> min m g.Rrgraph.xlo.(t)) max_int rem in
      let hx1 = List.fold_left (fun m t -> max m g.Rrgraph.xhi.(t)) min_int rem in
      let hy0 = List.fold_left (fun m t -> min m g.Rrgraph.ylo.(t)) max_int rem in
      let hy1 = List.fold_left (fun m t -> max m g.Rrgraph.yhi.(t)) min_int rem in
      fun v ->
        astar_fac
        *. float_of_int
             (gap g.Rrgraph.xlo.(v) g.Rrgraph.xhi.(v) hx0 hx1
             + gap g.Rrgraph.ylo.(v) g.Rrgraph.yhi.(v) hy0 hy1)
    end
  in
  (try
     while !remaining <> [] do
       (* multi-source directed search from the current tree *)
       let lookahead = make_lookahead !remaining in
       sc.epoch <- sc.epoch + 1;
       Util.Pqueue.clear sc.heap;
       List.iter
         (fun t ->
           set_dist sc t 0.0 (-1);
           Util.Pqueue.push sc.heap (lookahead t) t)
         !tree_nodes;
       let target = ref (-1) in
       (try
          while not (Util.Pqueue.is_empty sc.heap) do
            let f, u = Util.Pqueue.pop sc.heap in
            sc.pops <- sc.pops + 1;
            (* stale-entry check: the pushed key was dist + lookahead *)
            if f <= dist_of sc u +. lookahead u then begin
              if sc.is_sink.(u) then begin
                target := u;
                raise Exit
              end;
              let du = dist_of sc u in
              Array.iter
                (fun v ->
                  if inside v then begin
                    let c = blended_cost g st ?node_delay ~delay_norm ~crit v in
                    let nd = du +. c in
                    if nd < dist_of sc v then begin
                      set_dist sc v nd u;
                      Util.Pqueue.push sc.heap (nd +. lookahead v) v
                    end
                  end)
                g.Rrgraph.edges.(u)
            end
          done
        with Exit -> ());
       if !target < 0 then raise Not_found;
       (* trace back, adding path nodes to the tree *)
       let rec back v =
         if not sc.in_tree.(v) then begin
           sc.in_tree.(v) <- true;
           tree_nodes := v :: !tree_nodes;
           tree_parents := (v, sc.prev.(v)) :: !tree_parents;
           back sc.prev.(v)
         end
       in
       back !target;
       sc.is_sink.(!target) <- false;
       remaining := List.filter (fun t -> t <> !target) !remaining
     done
   with e -> cleanup (); raise e);
  cleanup ();
  (List.sort_uniq compare !tree_nodes, !tree_parents)

let occupy st nodes = List.iter (fun nd -> st.occ.(nd) <- st.occ.(nd) + 1) nodes

let release st nodes = List.iter (fun nd -> st.occ.(nd) <- st.occ.(nd) - 1) nodes

(* ---------- net-parallel batches ---------- *)

(* Two bounding boxes are disjoint when they share no tile in x or in y.
   Disjoint nets cannot contend for an RR node: every node a bounded
   search may read or claim intersects the net's box. *)
let bbox_disjoint (ax0, ax1, ay0, ay1) (bx0, bx1, by0, by1) =
  ax1 < bx0 || bx1 < ax0 || ay1 < by0 || by1 < ay0

(* Partition a reroute list (ascending net ids, one bounding box each)
   into batches of pairwise-disjoint boxes: sort by x-start and first-fit
   each interval into the earliest batch whose x-extents it clears — the
   classic interval-partitioning sweep, so overlapping nets land in
   different batches and a fully-overlapping list degrades to singleton
   batches.  Deterministic: ties sort by net id, batches keep creation
   order, members come back in ascending net id. *)
let partition_batches items =
  let by_x =
    List.sort
      (fun (i, (ax0, _, _, _)) (j, (bx0, _, _, _)) -> compare (ax0, i) (bx0, j))
      items
  in
  let batches = ref [] in (* (max-xhi ref, members ref) in creation order *)
  List.iter
    (fun ((_, (x0, x1, _, _)) as item) ->
      let rec place = function
        | [] -> batches := !batches @ [ (ref x1, ref [ item ]) ]
        | (hi, members) :: rest ->
            if x0 > !hi then begin
              hi := max !hi x1;
              members := item :: !members
            end
            else place rest
      in
      place !batches)
    by_x;
  List.map
    (fun (_, members) ->
      List.sort (fun (i, _) (j, _) -> compare i j) !members)
    !batches

let route ?(max_iterations = 30) ?(pres_fac0 = 0.5) ?(pres_mult = 1.6)
    ?(acc_fac = 0.4) ?(astar_fac = 1.0) ?(incremental = true) ?jobs ?obs
    ?node_delay (g : Rrgraph.t) (nets : net_spec array) =
  let jobs = Util.Parallel.resolve_jobs ?jobs () in
  (* telemetry: histogram samples go to the caller's registry (if any);
     both sites below run on the calling domain, and the sample set is
     the deterministic routing itself, so recording is jobs-independent *)
  let observe key v =
    match obs with Some o -> Obs.Registry.observe o key v | None -> ()
  in
  let n = Rrgraph.node_count g in
  let st = { occ = Array.make n 0; history = Array.make n 0.0; pres_fac = pres_fac0 } in
  let delay_norm =
    match node_delay with
    | Some delays ->
        let m = Array.fold_left Float.max 0.0 delays in
        if m > 0.0 then m else 1.0
    | None -> 1.0
  in
  let trees =
    Array.map (fun spec -> { net_index = spec.index; nodes = []; parents = [] }) nets
  in
  let iteration = ref 0 in
  let done_ = ref false in
  let hopeless = ref false in
  (* early exit on stagnation: congestion that stops improving will not
     converge at this width, so stop burning iterations (VPR does the same) *)
  let best_overuse = ref max_int in
  let since_improvement = ref 0 in
  let over_hist = ref [] in  (* total overuse per iteration, latest first *)
  let iter_stats = ref [] in
  let total_overuse () =
    let k = ref 0 in
    Array.iteri
      (fun i used ->
        let over = used - g.Rrgraph.nodes.(i).Rrgraph.capacity in
        if over > 0 then k := !k + over)
      st.occ;
    !k
  in
  let overused_count () =
    let k = ref 0 in
    Array.iteri
      (fun i used ->
        if used > g.Rrgraph.nodes.(i).Rrgraph.capacity then incr k)
      st.occ;
    !k
  in
  (* a net must reroute when it has no tree yet or its tree touches an
     over-capacity node (its routing is part of the congestion) *)
  let congested tr =
    tr.nodes = []
    || List.exists
         (fun nd -> st.occ.(nd) > g.Rrgraph.nodes.(nd).Rrgraph.capacity)
         tr.nodes
  in
  (* bounding box of a net's terminals, expanded by 3 tiles; a net that
     cannot route inside it retries unrestricted *)
  let search_bounds idx =
    let spec = nets.(idx) in
    let terminals = spec.source :: spec.sinks in
    let margin = 3 in
    ( List.fold_left (fun m t -> min m g.Rrgraph.xlo.(t)) max_int terminals
      - margin,
      List.fold_left (fun m t -> max m g.Rrgraph.xhi.(t)) 0 terminals + margin,
      List.fold_left (fun m t -> min m g.Rrgraph.ylo.(t)) max_int terminals
      - margin,
      List.fold_left (fun m t -> max m g.Rrgraph.yhi.(t)) 0 terminals + margin )
  in
  (* the batch bbox additionally covers the net's current tree: ripping a
     batch-mate up must not touch nodes another member's bounded search
     reads (a tree can stray outside its terminals' box after an
     unrestricted retry) *)
  let batch_bbox idx ((bx0, bx1, by0, by1) as bounds) =
    match trees.(idx).nodes with
    | [] -> bounds
    | tree_nodes ->
        List.fold_left
          (fun (x0, x1, y0, y1) nd ->
            ( min x0 g.Rrgraph.xlo.(nd),
              max x1 g.Rrgraph.xhi.(nd),
              min y0 g.Rrgraph.ylo.(nd),
              max y1 g.Rrgraph.yhi.(nd) ))
          (bx0, bx1, by0, by1) tree_nodes
  in
  (* Route one net against the current (frozen) cost state, on this
     domain's scratch.  Reads [st] and the graph only; all writes land in
     domain-local scratch, so a batch of these runs race-free. *)
  let route_one (idx, bounds) =
    let sc = domain_scratch n in
    let spec = nets.(idx) in
    (* per-net jitter on the lookahead strength: breaking cost ties
       toward the target herds competing nets onto the same corridors,
       so give each net a slightly different preference (all factors
       <= 1 keep the lookahead admissible) *)
    let astar_fac =
      let phi = Float.rem (float_of_int idx *. 0.6180339887) 1.0 in
      astar_fac *. (0.7 +. (0.3 *. phi))
    in
    let pops0 = sc.pops in
    let nodes, parents =
      match
        route_net g st sc ?node_delay ~bounds ~delay_norm ~astar_fac
          ~crit:spec.crit ~source:spec.source ~sinks:spec.sinks ()
      with
      | r -> r
      | exception Not_found ->
          route_net g st sc ?node_delay ~delay_norm ~astar_fac
            ~crit:spec.crit ~source:spec.source ~sinks:spec.sinks ()
    in
    (nodes, parents, sc.pops - pops0)
  in
  (* incremental rip-up can wedge: legal nets freeze on resources the
     congested ones need.  When overuse stops improving, fall back to one
     classic full rip-up iteration to reshuffle the negotiation. *)
  let force_full = ref false in
  while (not !done_) && (not !hopeless) && !iteration < max_iterations do
    incr iteration;
    Obs.Span.with_ ~name:"route.iteration"
      ~args:[ ("iteration", Obs.Emit.Int !iteration) ]
    @@ fun () ->
    let full = (not incremental) || !iteration = 1 || !force_full in
    force_full := false;
    (* the iteration's reroute list, ascending net id *)
    let reroute = ref [] in
    Array.iteri
      (fun idx _ ->
        if full || congested trees.(idx) then reroute := idx :: !reroute)
      nets;
    let reroute = List.rev !reroute in
    let rerouted = List.length reroute in
    (* group the list into batches of pairwise-disjoint bounding boxes;
       batches run in order, and within a batch every net routes against
       the same frozen cost state, so the result is identical for any
       [jobs] — the deterministic-merge contract *)
    let with_bounds =
      List.map (fun idx -> (idx, search_bounds idx)) reroute
    in
    let batches =
      partition_batches
        (List.map (fun (idx, b) -> (idx, batch_bbox idx b)) with_bounds)
    in
    let bounds_of = Hashtbl.create (max 16 rerouted) in
    List.iter (fun (idx, b) -> Hashtbl.replace bounds_of idx b) with_bounds;
    let iter_pops = ref 0 in
    let iter_batches = ref 0 and iter_batch_max = ref 0 in
    let iter_serial = ref 0 in
    List.iter
      (fun batch ->
        incr iter_batches;
        let k = List.length batch in
        if k > !iter_batch_max then iter_batch_max := k;
        if k = 1 then incr iter_serial;
        Obs.Span.with_ ~name:"route.batch"
          ~args:[ ("nets", Obs.Emit.Int k) ]
        @@ fun () ->
        (* rip up the whole batch, then route against the frozen state *)
        List.iter (fun (idx, _) -> release st trees.(idx).nodes) batch;
        let tasks =
          Array.of_list
            (List.map (fun (idx, _) -> (idx, Hashtbl.find bounds_of idx)) batch)
        in
        let results =
          if jobs > 1 && k > 1 then Util.Parallel.map ~jobs route_one tasks
          else Array.map route_one tasks
        in
        (* commit occupancy and trees in ascending net-id order *)
        Array.iteri
          (fun i (idx, _) ->
            let nodes, parents, pops = results.(i) in
            occupy st nodes;
            trees.(idx) <- { net_index = nets.(idx).index; nodes; parents };
            observe "route.net-heap-pops" (float_of_int pops);
            iter_pops := !iter_pops + pops)
          tasks)
      batches;
    let over = total_overuse () in
    let overused = overused_count () in
    observe "route.iter-overuse" (float_of_int overused);
    Obs.Span.annotate
      [
        ("rerouted", Obs.Emit.Int rerouted);
        ("overused_nodes", Obs.Emit.Int overused);
        ("heap_pops", Obs.Emit.Int !iter_pops);
      ];
    Obs.Events.emit
      (Obs.Events.Route_iteration
         {
           iteration = !iteration;
           overused;
           rerouted;
           heap_pops = !iter_pops;
         });
    iter_stats :=
      {
        iteration = !iteration;
        overused_nodes = overused;
        nets_rerouted = rerouted;
        heap_pops = !iter_pops;
        batches = !iter_batches;
        batch_max = !iter_batch_max;
        serial_nets = !iter_serial;
      }
      :: !iter_stats;
    over_hist := over :: !over_hist;
    if over = 0 then done_ := true
    else begin
      (* trend cutoff: a wide infeasible width decays overuse slowly but
         monotonically enough to dodge the no-improvement counter for the
         whole iteration budget.  Demand real progress — 25% down vs 8
         iterations ago — once warmed up, unless overuse is already tiny
         (the endgame clears a handful of nodes in lumpy steps). *)
      (if incremental && !iteration >= 16 && over > 12 then
         match List.nth_opt !over_hist 8 with
         | Some prev when float_of_int over > 0.75 *. float_of_int prev ->
             hopeless := true
         | _ -> ());
      if over < !best_overuse then begin
        best_overuse := over;
        since_improvement := 0
      end
      else begin
        incr since_improvement;
        (* near convergence (small overuse) a wedge needs sustained
           shaking: go full every stagnant iteration.  Far from
           convergence full rip-ups are expensive and the width is
           probably infeasible, so only shake periodically. *)
        if
          incremental
          && (if over <= 12 then !since_improvement >= 2
              else !since_improvement mod 3 = 0)
        then force_full := true
      end;
      (* incremental iterations are cheap, so stagnation gets more
         patience there (it covers several full-rip-up shake-ups) *)
      if !since_improvement >= (if incremental then 16 else 8) then
        hopeless := true;
      (* update history on overused nodes, sharpen the present penalty *)
      Array.iteri
        (fun i used ->
          let o = used - g.Rrgraph.nodes.(i).Rrgraph.capacity in
          if o > 0 then
            st.history.(i) <- st.history.(i) +. (acc_fac *. float_of_int o))
        st.occ;
      st.pres_fac <- st.pres_fac *. pres_mult
    end
  done;
  {
    graph = g;
    trees;
    iterations = !iteration;
    success = !done_;
    iter_stats = List.rev !iter_stats;
  }

(* ---------- verification helpers ---------- *)

(* No node is used beyond capacity. *)
let no_overuse (r : result) =
  let n = Rrgraph.node_count r.graph in
  let occ = Array.make n 0 in
  Array.iter
    (fun tr -> List.iter (fun nd -> occ.(nd) <- occ.(nd) + 1) tr.nodes)
    r.trees;
  let ok = ref true in
  for i = 0 to n - 1 do
    if occ.(i) > r.graph.Rrgraph.nodes.(i).Rrgraph.capacity then ok := false
  done;
  !ok

(* Every tree is connected and reaches its sinks. *)
let tree_connects ~source ~sinks tr =
  let member v = List.mem v tr.nodes in
  member source
  && List.for_all member sinks
  && List.for_all (fun (v, p) -> member v && member p) tr.parents

(* The parent edges form a forest rooted at [source]: every sink's parent
   chain reaches the source without revisiting a node. *)
let tree_acyclic ~source ~sinks tr =
  let parent = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun (v, p) ->
      if Hashtbl.mem parent v then ok := false else Hashtbl.add parent v p)
    tr.parents;
  (not (Hashtbl.mem parent source))
  && !ok
  && List.for_all
       (fun sink ->
         let seen = Hashtbl.create 16 in
         let rec climb v =
           if v = source then true
           else if Hashtbl.mem seen v then false
           else begin
             Hashtbl.add seen v ();
             match Hashtbl.find_opt parent v with
             | Some p -> climb p
             | None -> false
           end
         in
         climb sink)
       sinks
