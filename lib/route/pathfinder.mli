(** PathFinder negotiated-congestion routing (McMurchie & Ebeling), the
    algorithm VPR uses.

    Iteration 1 routes every net with an A*-directed Dijkstra (the
    lookahead is the Manhattan gap to the target's extent, admissible
    because a wire of L tiles costs at least L) over node costs
    base x (1 + acc x history) x present; the present-overuse penalty
    grows geometrically between iterations.  Later iterations are
    incremental: only nets whose trees touch an over-capacity node are
    ripped up and rerouted, legal trees keep their routing and occupancy.
    Convergence = no node used beyond its capacity.  With [node_delay],
    nets blend in a criticality-weighted delay term (the timing-driven
    router). *)

type net_spec = {
  index : int;     (** position in the problem's net array *)
  source : int;    (** driver OPIN node *)
  sinks : int list;
  crit : float;    (** timing criticality in [0,1]; 0 = congestion only *)
}

type route_tree = {
  net_index : int;
  nodes : int list;
  parents : (int * int) list; (** (node, parent) edges of the tree *)
}

type iter_stat = {
  iteration : int;
  overused_nodes : int; (** nodes above capacity after the iteration *)
  nets_rerouted : int;  (** nets ripped up and rerouted *)
  heap_pops : int;      (** wavefront size: heap pops this iteration *)
  batches : int;        (** bbox-disjoint reroute batches this iteration *)
  batch_max : int;      (** nets in the largest batch *)
  serial_nets : int;    (** nets that routed in singleton batches *)
}

type result = {
  graph : Rrgraph.t;
  trees : route_tree array;
  iterations : int;
  success : bool;
  iter_stats : iter_stat list; (** chronological, one per iteration *)
}

val route :
  ?max_iterations:int -> ?pres_fac0:float -> ?pres_mult:float ->
  ?acc_fac:float -> ?astar_fac:float -> ?incremental:bool ->
  ?jobs:int -> ?obs:Obs.Registry.t ->
  ?node_delay:float array -> Rrgraph.t -> net_spec array -> result
(** [astar_fac] scales the directed lookahead (0 = plain Dijkstra,
    1 = admissible A*, the default; larger trades optimality for speed).
    [incremental] (default true) enables congested-only rip-up after the
    first iteration; [false] restores full rip-up every iteration.
    [jobs] bounds the Domain pool used to route a batch's nets
    concurrently; the routed result is bit-identical for every value
    (defaults to [AMDREL_JOBS] / the machine's core count, see
    {!Util.Parallel}).
    [obs] records the ["route.net-heap-pops"] (per committed net) and
    ["route.iter-overuse"] (per iteration) histograms; one
    ["route.iteration"] span (with a ["route.batch"] child per batch) is
    emitted into the ambient {!Obs.Span} trace per iteration.
    @raise Not_found if some sink is unreachable in the graph. *)

val bbox_disjoint : int * int * int * int -> int * int * int * int -> bool
(** [(xlo, xhi, ylo, yhi)] boxes, bounds inclusive: true when the two
    boxes share no tile. *)

val partition_batches :
  (int * (int * int * int * int)) list ->
  (int * (int * int * int * int)) list list
(** Greedy interval partition of [(id, bbox)] items into batches whose
    members have pairwise-disjoint bboxes: sweep the items in ascending
    [(xlo, id)] order and first-fit each into the earliest batch whose
    running max-xhi it clears (x-disjointness implies bbox-disjointness).
    Every item lands in exactly one batch, members are in ascending id
    order, and concatenating the batches' ids sorted ascending recovers
    the input's ids; fully-overlapping input degrades to singleton
    batches. *)

val no_overuse : result -> bool
(** Independent capacity re-check (used by tests). *)

val tree_connects : source:int -> sinks:int list -> route_tree -> bool

val tree_acyclic : source:int -> sinks:int list -> route_tree -> bool
(** The parent edges form a forest rooted at [source] and every sink's
    parent chain reaches it without revisiting a node (used by tests). *)
