(** ASCII rendering of the placed-and-routed FPGA — the textual
    counterpart of VPR's graphics window (and of the paper's GUI
    placement view).  CLB tiles show cluster id and BLE count, pads their
    direction, channels their used-track counts. *)

val channel_usage : Router.routed -> (bool * int * int, int) Hashtbl.t
(** Used tracks per channel position: key (is_chanx, x, y). *)

val to_string : Router.routed -> string
(** Render the full array (tiles plus channel usage) as ASCII art. *)
