(* Routing driver: pin assignment, channel-width search and the routed
   design record the rest of the flow consumes. *)

type routed = {
  problem : Place.Problem.t;
  placement : Place.Placement.t;
  graph : Rrgraph.t;
  result : Pathfinder.result;
  width : int;                (* channel width used *)
  min_width : int option;     (* smallest routable width, if searched *)
  constants : Timing.constants;
}

(* Net specs (driver OPIN, SINK nodes, criticality) for every routable net.
   [criticalities], if given, supplies per-net timing weights (index-aligned
   with the problem's net array). *)
let net_terminals ?criticalities (g : Rrgraph.t) (problem : Place.Problem.t) =
  let packing = problem.Place.Problem.packing in
  Array.mapi
    (fun ni (net : Place.Problem.net) ->
      let source =
        match problem.Place.Problem.blocks.(net.Place.Problem.driver) with
        | Place.Problem.Cluster_block cid ->
            let cluster = packing.Pack.Cluster.clusters.(cid) in
            let slot = ref (-1) in
            List.iteri
              (fun k (b : Pack.Ble.t) ->
                if b.Pack.Ble.output = net.Place.Problem.signal then slot := k)
              cluster.Pack.Cluster.bles;
            if !slot < 0 then
              failwith
                (Printf.sprintf
                   "Router.net_terminals: net %d (signal %d) claims driver \
                    block %d (cluster %d), but no BLE there outputs that \
                    signal"
                   ni net.Place.Problem.signal net.Place.Problem.driver cid);
            Hashtbl.find g.Rrgraph.node_of_opin (net.Place.Problem.driver, !slot)
        | Place.Problem.Input_pad _ | Place.Problem.Output_pad _ ->
            Hashtbl.find g.Rrgraph.node_of_opin (net.Place.Problem.driver, 0)
      in
      let sinks =
        Array.to_list net.Place.Problem.sinks
        |> List.map (fun b -> Hashtbl.find g.Rrgraph.node_of_sink b)
        |> List.sort_uniq compare
      in
      let crit =
        match criticalities with Some c -> c.(ni) | None -> 0.0
      in
      { Pathfinder.index = ni; source; sinks; crit })
    problem.Place.Problem.nets

(* Elmore-style per-node delay estimate used by the timing-driven router. *)
let node_delays (g : Rrgraph.t) (consts : Timing.constants) =
  Array.map
    (fun (node : Rrgraph.node) ->
      match node.Rrgraph.kind with
      | Rrgraph.Chanx _ | Rrgraph.Chany _ ->
          let tiles = float_of_int node.Rrgraph.wire_tiles in
          let r_tile = Timing.wire_r consts node.Rrgraph.seg in
          let c_tile = Timing.wire_c consts node.Rrgraph.seg in
          (consts.Timing.r_switch +. (r_tile *. tiles))
          *. (consts.Timing.c_switch +. (c_tile *. tiles))
      | Rrgraph.Ipin _ -> consts.Timing.t_ipin /. 10.0
      | Rrgraph.Opin _ -> consts.Timing.r_switch *. consts.Timing.c_switch
      | Rrgraph.Sink _ -> 0.0)
    g.Rrgraph.nodes

(* Per-net timing weights for the criticality-weighted PathFinder cost:
   one unified STA pass (placement-distance provider) over the packed
   netlist.  Criticality is capped so the congestion term never vanishes
   and PathFinder can still negotiate overuse away (VPR does the same).
   The weights depend only on the placement, not the channel width, so a
   width search computes them once for its final timing-driven routing. *)
let net_criticalities ?(model = Place.Td_timing.default_model)
    (placement : Place.Placement.t) =
  let problem = placement.Place.Placement.problem in
  let graph = Sta.Graph.build problem in
  let provider =
    Sta.Delays.of_placement ~model problem
      ~coords:(Place.Placement.coords placement)
  in
  let a = Sta.Analysis.run graph provider in
  Array.map (Float.min 0.95) a.Sta.Analysis.net_criticality

let try_width ?(max_iterations = 60) ?crit ?jobs ?obs
    (params : Fpga_arch.Params.t) (placement : Place.Placement.t) width =
  let problem = placement.Place.Placement.problem in
  let g = Rrgraph.build params problem.Place.Problem.grid placement ~width in
  let criticalities, node_delay =
    match crit with
    | None -> (None, None)
    | Some per_net ->
        (Some per_net, Some (node_delays g (Timing.default_constants params)))
  in
  let nets = net_terminals ?criticalities g problem in
  match Pathfinder.route ~max_iterations ?jobs ?obs ?node_delay g nets with
  | r when r.Pathfinder.success -> Some (g, r)
  | _ -> None
  | exception Not_found -> None

(* Route at a fixed width (raises if infeasible). *)
let route_fixed ?(max_iterations = 60) ?timing ?jobs ?obs
    (params : Fpga_arch.Params.t) (placement : Place.Placement.t) ~width =
  let crit = Option.map (fun model -> net_criticalities ~model placement) timing in
  match try_width ~max_iterations ?crit ?jobs ?obs params placement width with
  | Some (g, r) ->
      {
        problem = placement.Place.Placement.problem;
        placement;
        graph = g;
        result = r;
        width;
        min_width = None;
        constants = Timing.default_constants params;
      }
  | None -> failwith (Printf.sprintf "unroutable at channel width %d" width)

(* Find the minimum routable channel width (VPR's headline metric), then
   return the routing at low stress (1.2x the minimum, the usual practice).

   A probe (is width w routable?) is a pure function of (params,
   placement, w): the RR graph is rebuilt per probe and PathFinder is
   deterministic.  That makes the search speculatively parallel: with a
   [jobs]-domain pool we probe, each round, every width the sequential
   search could possibly need next — the doubling sequence during the
   grow phase, the frontier of the binary-search decision tree during
   the shrink phase — memoise the outcomes, and then advance exactly the
   sequential decision path over the cache.  The returned minimum width
   (and hence the final routing) is bit-identical for any [jobs]. *)
let route_min_width ?(max_iterations = 60) ?(start = 6) ?timing ?table ?jobs
    ?obs (params : Fpga_arch.Params.t) (placement : Place.Placement.t) =
  let jobs = Util.Parallel.resolve_jobs ?jobs () in
  (* width -> routable?; probes are deterministic, so caching loses
     nothing and speculation never repeats work.  [table], when given,
     IS the memo: entries seeded by the caller (e.g. from the flow's
     persistent routability table) are outcomes this search never has
     to probe for, and the table is mutated in place so the caller can
     persist whatever this search learned.  Seeding only ever changes
     which probes run, never their outcomes, so the found minimum (and
     the final routing) stays bit-identical to an unseeded search. *)
  let cache : (int, bool) Hashtbl.t =
    match table with Some t -> t | None -> Hashtbl.create 16
  in
  let probes = ref 0 in
  let probe_batch widths =
    match List.filter (fun w -> not (Hashtbl.mem cache w)) widths with
    | [] -> ()
    | fresh ->
        let arr = Array.of_list (List.sort_uniq compare fresh) in
        probes := !probes + Array.length arr;
        (* probe routings are speculative and their set depends on the
           pool size; suppress their progress events so the stream only
           carries the final routing's iterations, identically at any
           jobs value *)
        let res =
          Obs.Events.without (fun () ->
              Util.Parallel.map ~jobs
                (fun w ->
                  Option.is_some (try_width ~max_iterations params placement w))
                arr)
        in
        Array.iteri (fun i w -> Hashtbl.replace cache w res.(i)) arr
  in
  let probe w =
    match Hashtbl.find_opt cache w with
    | Some b -> b
    | None ->
        probe_batch [ w ];
        Hashtbl.find cache w
  in
  (* grow phase: the doubling sequence start, 2*start, ... <= 128 — the
     sequential probe order; with a pool, the next [jobs] widths of the
     sequence are probed concurrently before scanning in order *)
  let rec doubling w = if w > 128 then [] else w :: doubling (2 * w) in
  let rec grow = function
    | [] -> failwith "unroutable even at channel width 128"
    | ws ->
        let batch = List.filteri (fun i _ -> i < jobs) ws in
        probe_batch batch;
        (match List.find_opt probe batch with
        | Some w -> w
        | None -> grow (List.filteri (fun i _ -> i >= jobs) ws))
  in
  let hi = grow (doubling start) in
  (* shrink phase: binary search down over (lo, hi]; lo = 0 is by
     definition unroutable, so the whole untested range below [start] is
     covered.  [frontier] walks the decision tree from (lo, hi) through
     the cache and collects, breadth-first, up to [budget] midpoints the
     sequential search might still need — the immediate midpoint first,
     then both speculative children of each unknown outcome. *)
  let frontier lo hi budget =
    let acc = ref [] and count = ref 0 in
    let q = Queue.create () in
    Queue.push (lo, hi) q;
    while !count < budget && not (Queue.is_empty q) do
      let l, h = Queue.pop q in
      if h - l > 1 then begin
        let mid = (l + h) / 2 in
        match Hashtbl.find_opt cache mid with
        | Some true -> Queue.push (l, mid) q
        | Some false -> Queue.push (mid, h) q
        | None ->
            acc := mid :: !acc;
            incr count;
            Queue.push (l, mid) q;
            Queue.push (mid, h) q
      end
    done;
    !acc
  in
  let rec shrink lo hi =
    (* invariant: hi routable, lo not (or lo = 0) *)
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      match Hashtbl.find_opt cache mid with
      | Some true -> shrink lo mid
      | Some false -> shrink mid hi
      | None ->
          (* each round resolves at least [mid], so this terminates *)
          if jobs > 1 then probe_batch (frontier lo hi jobs)
          else ignore (probe mid);
          shrink lo hi
    end
  in
  let min_w = shrink 0 hi in
  (* how many probe routings this search actually ran: with a warm
     seeded [table] it is strictly below the cold count (0 when the
     table already covers the whole decision path).  Volatile because
     the probe set also depends on the pool size (speculation), so the
     deterministic metrics view must exclude it. *)
  (match obs with
  | Some o ->
      Obs.Registry.set ~volatile:true o "route.width-probes"
        (float_of_int !probes)
  | None -> ());
  (* low-stress final routing, timing-driven if requested; width probes
     above stay congestion-only AND un-instrumented (the probe set
     depends on the pool size, so only the final routing records into
     [obs] — metrics stay jobs-independent), so the criticalities are
     computed once here, for the final routing alone *)
  let crit = Option.map (fun model -> net_criticalities ~model placement) timing in
  let final_w = max min_w (int_of_float (Float.ceil (1.2 *. float_of_int min_w))) in
  let g, r =
    match
      try_width ~max_iterations:(2 * max_iterations) ?crit ~jobs ?obs params
        placement final_w
    with
    | Some ok -> ok
    | None -> (
        match
          try_width ~max_iterations:(2 * max_iterations) ?crit ~jobs ?obs
            params placement (2 * final_w)
        with
        | Some ok -> ok
        | None -> failwith "low-stress routing failed")
  in
  {
    problem = placement.Place.Placement.problem;
    placement;
    graph = g;
    result = r;
    width = g.Rrgraph.width;
    min_width = Some min_w;
    constants = Timing.default_constants params;
  }

(* Unified post-route STA over the actual routing trees: the routed
   Elmore delays feed the same propagation engine the placer uses, so
   pre- and post-route figures are directly comparable.  [graph] reuses
   a previously built timing graph (it depends only on the problem, not
   the routing). *)
let sta ?constraints ?graph ?obs (r : routed) =
  let g =
    match graph with Some g -> g | None -> Sta.Graph.build r.problem
  in
  let provider = Sta_provider.routed r.problem r.graph r.constants r.result in
  Sta.Analysis.run ?constraints ?obs g provider

(* ---------- statistics ---------- *)

type stats = {
  channel_width : int;
  minimum_width : int option;
  total_wire_tiles : int;     (* wirelength in tile units *)
  switches_used : int;
  long_wire_nodes : int;      (* routed wire nodes of declared length > 1 *)
  critical_path_s : float;
  router_iterations : int;    (* PathFinder iterations of the final routing *)
  nets_rerouted : int;        (* rip-up/reroute operations, all iterations *)
  heap_pops : int;            (* wavefront size, all iterations *)
  peak_overuse : int;         (* worst per-iteration overused-node count *)
  par_batches : int;          (* bbox-disjoint reroute batches, all iterations *)
  par_batch_max : int;        (* largest batch seen *)
  par_serial_frac : float;    (* rerouted nets that ran in singleton batches *)
}

let stats ?sta:analysis (r : routed) =
  let seg_len =
    Fpga_arch.Params.effective_segments r.graph.Rrgraph.params
    |> List.map (fun (s : Fpga_arch.Params.segment) -> s.Fpga_arch.Params.s_length)
    |> Array.of_list
  in
  let wire = ref 0 and switches = ref 0 and long_wires = ref 0 in
  Array.iter
    (fun (tr : Pathfinder.route_tree) ->
      List.iter
        (fun nd ->
          let node = r.graph.Rrgraph.nodes.(nd) in
          match node.Rrgraph.kind with
          | Rrgraph.Chanx _ | Rrgraph.Chany _ ->
              wire := !wire + node.Rrgraph.wire_tiles;
              incr switches;
              if
                node.Rrgraph.seg < Array.length seg_len
                && seg_len.(node.Rrgraph.seg) > 1
              then incr long_wires
          | _ -> ())
        tr.Pathfinder.nodes)
    r.result.Pathfinder.trees;
  let iters = r.result.Pathfinder.iter_stats in
  let sum f = List.fold_left (fun a (s : Pathfinder.iter_stat) -> a + f s) 0 iters in
  let rerouted = sum (fun s -> s.Pathfinder.nets_rerouted) in
  let serial = sum (fun s -> s.Pathfinder.serial_nets) in
  (* critical path from the unified STA over the routed trees; [?sta]
     reuses an analysis the caller already ran (the flow's post-route
     report) instead of rebuilding the timing graph *)
  let a = match analysis with Some a -> a | None -> sta r in
  {
    channel_width = r.width;
    minimum_width = r.min_width;
    total_wire_tiles = !wire;
    switches_used = !switches;
    long_wire_nodes = !long_wires;
    critical_path_s = a.Sta.Analysis.dmax;
    router_iterations = r.result.Pathfinder.iterations;
    nets_rerouted = rerouted;
    heap_pops = sum (fun s -> s.Pathfinder.heap_pops);
    peak_overuse =
      List.fold_left (fun a (s : Pathfinder.iter_stat) -> max a s.Pathfinder.overused_nodes) 0 iters;
    par_batches = sum (fun s -> s.Pathfinder.batches);
    par_batch_max =
      List.fold_left (fun a (s : Pathfinder.iter_stat) -> max a s.Pathfinder.batch_max) 0 iters;
    par_serial_frac =
      (if rerouted = 0 then 0.0
       else float_of_int serial /. float_of_int rerouted);
  }
