(** Routing driver: pin assignment, channel-width search and the routed
    design record the rest of the flow consumes. *)

type routed = {
  problem : Place.Problem.t;
  placement : Place.Placement.t;
  graph : Rrgraph.t;
  result : Pathfinder.result;
  width : int;
  min_width : int option; (** smallest routable width, if searched *)
  constants : Timing.constants;
}

val net_terminals :
  ?criticalities:float array -> Rrgraph.t -> Place.Problem.t ->
  Pathfinder.net_spec array
(** Driver OPIN and SINK nodes for every routable net; [criticalities]
    supplies per-net timing weights. *)

val node_delays : Rrgraph.t -> Timing.constants -> float array
(** Per-node delay estimate for the timing-driven router. *)

val net_criticalities :
  ?model:Place.Td_timing.delay_model -> Place.Placement.t -> float array
(** Per-net timing weights for the criticality-weighted PathFinder cost:
    one unified-STA pass ({!Sta.Analysis.run} with the placement-distance
    provider), capped at 0.95 so the congestion term never vanishes.
    Index-aligned with the problem's net array. *)

val try_width :
  ?max_iterations:int -> ?crit:float array -> ?jobs:int ->
  ?obs:Obs.Registry.t ->
  Fpga_arch.Params.t -> Place.Placement.t -> int ->
  (Rrgraph.t * Pathfinder.result) option
(** Attempt a routing at the given channel width; None if infeasible.
    [crit] (per-net, pre-capped — see {!net_criticalities}) enables the
    timing-driven cost.  [jobs] bounds the intra-route Domain pool (the
    routed result is bit-identical for every value); [obs] forwards to
    {!Pathfinder.route}. *)

val route_fixed :
  ?max_iterations:int -> ?timing:Place.Td_timing.delay_model -> ?jobs:int ->
  ?obs:Obs.Registry.t ->
  Fpga_arch.Params.t -> Place.Placement.t -> width:int -> routed
(** @raise Failure when unroutable at that width. *)

val route_min_width :
  ?max_iterations:int -> ?start:int -> ?timing:Place.Td_timing.delay_model ->
  ?table:(int, bool) Hashtbl.t ->
  ?jobs:int -> ?obs:Obs.Registry.t ->
  Fpga_arch.Params.t -> Place.Placement.t -> routed
(** Binary-search the minimum channel width (VPR's headline metric), then
    return a low-stress (1.2x) routing — timing-driven if requested.

    With [jobs] > 1 (default {!Util.Parallel.default_jobs}) the search
    probes candidate widths speculatively on a Domain pool: each probe
    is a pure function of the width, so the memoised outcomes replay the
    sequential decision path exactly and the result is bit-identical to
    [jobs = 1].  Width probes are congestion-only; the final low-stress
    routing is timing-driven when [timing] is given (criticalities from
    one unified-STA pass at the final placement).  Only the final routing
    records into [obs]: the speculative probe set depends on the pool
    size, so instrumenting it would make metrics jobs-dependent.

    [table] is the probe memo ([width -> routable?]), exposed so a
    caller can persist routability across runs: entries already present
    are trusted and never re-probed, and the table is updated in place
    with every outcome this search learns.  Seeding affects which probes
    run, never their outcomes — callers must only seed entries obtained
    from an identical (params, placement) search, which is exactly what
    the flow's persistent routability table keys on
    (docs/ARCHITECTURE.md).  The number of probe routings actually run
    is recorded into [obs] as the {e volatile} gauge
    [route.width-probes] (volatile: the probe set depends on the pool
    size as well as the seed, so it is excluded from the deterministic
    metrics view); a warm table yields strictly fewer probes than a
    cold search, down to 0 when it covers the whole decision path.
    @raise Failure when unroutable even at width 128. *)

val sta :
  ?constraints:Sta.Analysis.constraints -> ?graph:Sta.Graph.t ->
  ?obs:Obs.Registry.t -> routed ->
  Sta.Analysis.t
(** Post-route unified STA: routed-Elmore delays ({!Sta_provider.routed})
    through {!Sta.Analysis.run}, directly comparable with the pre-route
    (placement-distance) analysis.  [graph] reuses an already-built
    timing graph — it depends only on the problem, not the routing. *)

type stats = {
  channel_width : int;
  minimum_width : int option;
  total_wire_tiles : int; (** wirelength in tile units *)
  switches_used : int;
  long_wire_nodes : int;
      (** routed wire nodes whose segment type has declared length > 1 —
          0 on a uniform length-1 fabric, so tests can assert a mixed
          fabric actually routed through its long wires *)
  critical_path_s : float; (** post-route {!Sta.Analysis} dmax *)
  router_iterations : int; (** PathFinder iterations of the final routing *)
  nets_rerouted : int;     (** rip-up/reroute operations, all iterations *)
  heap_pops : int;         (** wavefront size, all iterations *)
  peak_overuse : int;      (** worst per-iteration overused-node count *)
  par_batches : int;       (** bbox-disjoint reroute batches, all iterations *)
  par_batch_max : int;     (** largest batch seen *)
  par_serial_frac : float; (** fraction of rerouted nets in singleton batches *)
}

val stats : ?sta:Sta.Analysis.t -> routed -> stats
(** [sta] reuses a post-route analysis the caller already ran for the
    [critical_path_s] figure; omitted, one is computed via {!sta}. *)
