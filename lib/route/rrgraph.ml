(* Routing-resource graph for the island-style interconnect of §3.3.

   Geometry (VPR conventions):
   - horizontal channels chanx(x, y) for x in 1..nx, y in 0..ny (the channel
     above row y; y = 0 is below the first row);
   - vertical channels chany(x, y) for x in 0..nx, y in 1..ny;
   - the switch box S(x, y) joins chanx(x, y), chanx(x+1, y), chany(x, y)
     and chany(x, y+1) with the disjoint pattern (Fs = 3): track t connects
     only to track t of the other three channels, and only where wires
     END — a long wire passing over a switch point is not tapped, so
     switches sit at segment endpoints exactly;
   - each channel carries the declared segment mix
     (Params.effective_segments): track t's type and stagger offset come
     from Params.track_plan, so ends of one type distribute evenly across
     its tracks; the uniform single-type channel reduces to the legacy
     offset = t mod len stagger;
   - every logic block touches the four surrounding channels; pins connect
     to an Fc fraction of the tracks OF EACH SEGMENT TYPE crossing the
     tile (per-type Fc_in/Fc_out); each block has one SINK node fed by its
     input pins (capacity = I), so the router chooses input pins
     naturally.  Output pins are per-BLE. *)

type node_kind =
  | Opin of int * int (* block index, pin *)
  | Ipin of int * int (* block index, pin *)
  | Sink of int       (* block index *)
  | Chanx of int * int * int (* x-start, y, track *)
  | Chany of int * int * int (* x, y-start, track *)

type node = {
  kind : node_kind;
  capacity : int;
  base_cost : float;
  wire_tiles : int; (* tiles spanned; 0 for pins *)
  seg : int;        (* segment-type index (Params.effective_segments);
                       0 for pins *)
}

type t = {
  nodes : node array;
  edges : int array array;     (* adjacency: node -> successor nodes *)
  node_of_opin : (int * int, int) Hashtbl.t;
  node_of_sink : (int, int) Hashtbl.t;
  width : int;                 (* tracks per channel *)
  params : Fpga_arch.Params.t;
  grid : Fpga_arch.Grid.t;
  (* spatial extent of each node, for bounding-box-limited routing *)
  xlo : int array;
  xhi : int array;
  ylo : int array;
  yhi : int array;
}

let node_count g = Array.length g.nodes

(* The wires along one track of a channel spanning tiles 1..extent:
   (start, tiles) per wire, ascending.  A track of length [len] with
   stagger [offset] breaks at positions 1 - offset + k*len; wires are
   clipped to the channel, so edge wires can span fewer than [len]
   tiles. *)
let spans ~len ~offset ~extent =
  let out = ref [] in
  let xs = ref (1 - offset) in
  while !xs <= extent do
    let xe = min extent (!xs + len - 1) in
    let x0 = max 1 !xs in
    let tiles = xe - x0 + 1 in
    if tiles > 0 then out := (x0, tiles) :: !out;
    xs := !xs + len
  done;
  List.rev !out

let track_spans (params : Fpga_arch.Params.t) ~width ~extent ~track =
  if track < 0 || track >= width then
    invalid_arg "Rrgraph.track_spans: track out of range";
  let segs = Array.of_list (Fpga_arch.Params.effective_segments params) in
  let plan = Fpga_arch.Params.track_plan params ~width in
  let si, offset = plan.(track) in
  spans ~len:segs.(si).Fpga_arch.Params.s_length ~offset ~extent

(* Wires are described by their start coordinate; a chanx wire starting at
   (xs, y) covers tiles xs..xs+len-1, clipped to the grid. *)
let build (params : Fpga_arch.Params.t) (grid : Fpga_arch.Grid.t)
    (placement : Place.Placement.t) ~width =
  let problem = placement.Place.Placement.problem in
  let blocks = problem.Place.Problem.blocks in
  let nx = grid.Fpga_arch.Grid.nx and ny = grid.Fpga_arch.Grid.ny in
  let segs = Array.of_list (Fpga_arch.Params.effective_segments params) in
  let plan = Fpga_arch.Params.track_plan params ~width in
  let seg_of t = fst plan.(t) in
  let len_of t = segs.(seg_of t).Fpga_arch.Params.s_length in
  let offset_of t = snd plan.(t) in
  let nodes = ref [] and n_nodes = ref 0 in
  let node_tbl = Hashtbl.create 1024 in
  let add kind capacity base_cost wire_tiles seg =
    let n = { kind; capacity; base_cost; wire_tiles; seg } in
    nodes := n :: !nodes;
    Hashtbl.replace node_tbl !n_nodes n;
    incr n_nodes;
    !n_nodes - 1
  in
  let node_rec id = Hashtbl.find node_tbl id in
  let edges = Hashtbl.create 1024 in
  let add_edge a b =
    let cur = Option.value (Hashtbl.find_opt edges a) ~default:[] in
    if not (List.mem b cur) then Hashtbl.replace edges a (b :: cur)
  in
  (* ---- wire nodes ---- *)
  (* chanx wires: for y in 0..ny, track t, starts xs where wires tile the
     row in steps of the track's segment length at its stagger offset *)
  let chanx_node = Hashtbl.create 256 in
  (* (xs, y, t) -> node *)
  let chany_node = Hashtbl.create 256 in
  for y = 0 to ny do
    for t = 0 to width - 1 do
      List.iter
        (fun (x0, tiles) ->
          let id = add (Chanx (x0, y, t)) 1 (float_of_int tiles) tiles (seg_of t) in
          Hashtbl.replace chanx_node (x0, y, t) id)
        (spans ~len:(len_of t) ~offset:(offset_of t) ~extent:nx)
    done
  done;
  for x = 0 to nx do
    for t = 0 to width - 1 do
      List.iter
        (fun (y0, tiles) ->
          let id = add (Chany (x, y0, t)) 1 (float_of_int tiles) tiles (seg_of t) in
          Hashtbl.replace chany_node (x, y0, t) id)
        (spans ~len:(len_of t) ~offset:(offset_of t) ~extent:ny)
    done
  done;
  (* wire lookup: the chanx wire covering tile x at (row) y, track t *)
  let chanx_covering x y t =
    let len = len_of t and offset = offset_of t in
    (* wire starts at positions 1 - offset + k*len *)
    let rel = x - (1 - offset) in
    let xs = x - (rel mod len) in
    let x0 = max 1 xs in
    Hashtbl.find_opt chanx_node (x0, y, t)
  in
  let chany_covering x y t =
    let len = len_of t and offset = offset_of t in
    let rel = y - (1 - offset) in
    let ys = y - (rel mod len) in
    let y0 = max 1 ys in
    Hashtbl.find_opt chany_node (x, y0, t)
  in
  (* ---- switch boxes (disjoint, Fs = 3) ---- *)
  (* at S(x, y) for x in 0..nx, y in 0..ny: the four incident wires on track
     t are pairwise connected (bidirectional pass transistors) when the
     switch point falls at a wire end *)
  let ends_at_switch_x xs tiles ~sx = xs - 1 = sx || xs + tiles - 1 = sx in
  let ends_at_switch_y ys tiles ~sy = ys - 1 = sy || ys + tiles - 1 = sy in
  for sx = 0 to nx do
    for sy = 0 to ny do
      for t = 0 to width - 1 do
        (* wires whose END touches this switch point *)
        let touching = ref [] in
        let consider id_opt ends =
          match id_opt with
          | Some id when ends (node_rec id) && not (List.mem id !touching) ->
              touching := id :: !touching
          | _ -> ()
        in
        consider (chanx_covering sx sy t) (fun n ->
            match n.kind with
            | Chanx (xs, _, _) -> ends_at_switch_x xs n.wire_tiles ~sx
            | _ -> false);
        consider (chanx_covering (sx + 1) sy t) (fun n ->
            match n.kind with Chanx (xs, _, _) -> xs - 1 = sx | _ -> false);
        consider (chany_covering sx sy t) (fun n ->
            match n.kind with
            | Chany (_, ys, _) -> ends_at_switch_y ys n.wire_tiles ~sy
            | _ -> false);
        consider (chany_covering sx (sy + 1) t) (fun n ->
            match n.kind with Chany (_, ys, _) -> ys - 1 = sy | _ -> false);
        let touching = List.sort_uniq compare !touching in
        List.iter
          (fun a ->
            List.iter (fun b -> if a <> b then begin add_edge a b; add_edge b a end)
              touching)
          touching
      done
    done
  done;
  (* ---- block pins ---- *)
  let node_of_opin = Hashtbl.create 64 in
  let node_of_sink = Hashtbl.create 64 in
  (* tracks of each segment type, in ascending track order *)
  let type_tracks =
    let acc = Array.make (Array.length segs) [] in
    for t = width - 1 downto 0 do
      acc.(seg_of t) <- t :: acc.(seg_of t)
    done;
    Array.map Array.of_list acc
  in
  (* connection-box track count for fraction [fc] of [n] same-type
     tracks: at least one (when any exist), at most all of them *)
  let fc_tracks fc n =
    if n = 0 then 0
    else
      let k = int_of_float (Float.round (fc *. float_of_int n)) in
      max 1 (min n k)
  in
  (* channels adjacent to tile (x, y) *)
  let adjacent_wires x y t =
    List.filter_map
      (fun f -> f ())
      [
        (fun () -> chanx_covering x (y - 1) t);
        (fun () -> chanx_covering x y t);
        (fun () -> chany_covering (x - 1) y t);
        (fun () -> chany_covering x y t);
      ]
  in
  (* connect pin [pin] of the block at (x, y) through [connect] to an Fc
     fraction of each segment type's tracks, offset by pin for diversity *)
  let connect_pin ~fc_of ~pin ~x ~y connect =
    Array.iteri
      (fun si tks ->
        let n = Array.length tks in
        let c = fc_tracks (fc_of segs.(si)) n in
        for j = 0 to c - 1 do
          let t = tks.((pin + (j * n / c)) mod n) in
          List.iter connect (adjacent_wires x y t)
        done)
      type_tracks
  in
  let fc_in_of (s : Fpga_arch.Params.segment) = s.Fpga_arch.Params.s_fc_in in
  let fc_out_of (s : Fpga_arch.Params.segment) = s.Fpga_arch.Params.s_fc_out in
  Array.iteri
    (fun b kind ->
      let x, y = Place.Placement.coords placement b in
      match kind with
      | Place.Problem.Cluster_block cid ->
          let cluster =
            problem.Place.Problem.packing.Pack.Cluster.clusters.(cid)
          in
          let n_bles = List.length cluster.Pack.Cluster.bles in
          (* output pins: one per BLE slot *)
          for pin = 0 to n_bles - 1 do
            let id = add (Opin (b, pin)) 1 1.0 0 0 in
            Hashtbl.replace node_of_opin (b, pin) id;
            connect_pin ~fc_of:fc_out_of ~pin ~x ~y (fun w -> add_edge id w)
          done;
          (* input pins -> sink *)
          let sink = add (Sink b) params.Fpga_arch.Params.i 0.0 0 0 in
          Hashtbl.replace node_of_sink b sink;
          for pin = 0 to params.Fpga_arch.Params.i - 1 do
            let id = add (Ipin (b, pin)) 1 0.95 0 0 in
            add_edge id sink;
            connect_pin ~fc_of:fc_in_of ~pin ~x ~y (fun w -> add_edge w id)
          done
      | Place.Problem.Input_pad _ ->
          let id = add (Opin (b, 0)) 1 1.0 0 0 in
          Hashtbl.replace node_of_opin (b, 0) id;
          connect_pin ~fc_of:fc_out_of ~pin:0 ~x ~y (fun w -> add_edge id w)
      | Place.Problem.Output_pad _ ->
          let sink = add (Sink b) 1 0.0 0 0 in
          Hashtbl.replace node_of_sink b sink;
          let id = add (Ipin (b, 0)) 1 0.95 0 0 in
          add_edge id sink;
          connect_pin ~fc_of:fc_in_of ~pin:0 ~x ~y (fun w -> add_edge w id))
    blocks;
  let nodes = Array.of_list (List.rev !nodes) in
  let edge_arr =
    Array.init (Array.length nodes) (fun i ->
        Array.of_list (Option.value (Hashtbl.find_opt edges i) ~default:[]))
  in
  (* spatial extents (pins take their block's coordinates) *)
  let m = Array.length nodes in
  let xlo = Array.make m 0 and xhi = Array.make m 0 in
  let ylo = Array.make m 0 and yhi = Array.make m 0 in
  let block_xy b = Place.Placement.coords placement b in
  Array.iteri
    (fun i nd ->
      let x0, x1, y0, y1 =
        match nd.kind with
        | Chanx (xs, y, _) -> (xs, xs + nd.wire_tiles - 1, y, y + 1)
        | Chany (x, ys, _) -> (x, x + 1, ys, ys + nd.wire_tiles - 1)
        | Opin (b, _) | Ipin (b, _) | Sink b ->
            let x, y = block_xy b in
            (x, x, y, y)
      in
      xlo.(i) <- x0; xhi.(i) <- x1; ylo.(i) <- y0; yhi.(i) <- y1)
    nodes;
  {
    nodes;
    edges = edge_arr;
    node_of_opin;
    node_of_sink;
    width;
    params;
    grid;
    xlo;
    xhi;
    ylo;
    yhi;
  }
