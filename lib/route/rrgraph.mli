(** Routing-resource graph for the island-style interconnect of §3.3.

    Geometry (VPR conventions): horizontal channels chanx(x, y) for
    y = 0..ny, vertical channels chany(x, y) for x = 0..nx; the disjoint
    switch box (Fs = 3) joins same-numbered tracks at segment endpoints
    only (a long wire passing over a switch point is not tapped); each
    channel carries the declared segment mix
    ({!Fpga_arch.Params.effective_segments}) with per-track stagger from
    {!Fpga_arch.Params.track_plan}; every logic block touches the four
    surrounding channels; pins connect to an Fc fraction of each segment
    type's tracks (per-type Fc_in/Fc_out); each block has one SINK fed
    by its input pins so the router chooses pins naturally; output pins
    are per-BLE. *)

type node_kind =
  | Opin of int * int        (** block index, pin *)
  | Ipin of int * int
  | Sink of int              (** block index *)
  | Chanx of int * int * int (** x-start, y, track *)
  | Chany of int * int * int (** x, y-start, track *)

type node = {
  kind : node_kind;
  capacity : int;
  base_cost : float;
  wire_tiles : int; (** tiles spanned; 0 for pins *)
  seg : int;
      (** segment-type index into
          {!Fpga_arch.Params.effective_segments}; 0 for pins.  Keys the
          per-type RC in {!Timing} and the per-type capacitance in
          [Power.Model]. *)
}

type t = {
  nodes : node array;
  edges : int array array; (** adjacency: node -> successors *)
  node_of_opin : (int * int, int) Hashtbl.t;
  node_of_sink : (int, int) Hashtbl.t;
  width : int;             (** tracks per channel *)
  params : Fpga_arch.Params.t;
  grid : Fpga_arch.Grid.t;
  xlo : int array;
  (** spatial extent per node: drives the router's bounding-box pruning
      and the admissible A* lookahead (a wire's whole span counts — once
      paid for it can be exited at any switch point along it) *)
  xhi : int array;
  ylo : int array;
  yhi : int array;
}

val node_count : t -> int
(** Number of RR nodes in the graph. *)

val track_spans :
  Fpga_arch.Params.t -> width:int -> extent:int -> track:int ->
  (int * int) list
(** The wires along one track of a channel spanning tiles 1..[extent]:
    (start, tiles) per wire, ascending.  Wires are clipped to the
    channel, so edge wires can span fewer tiles than the track's
    declared segment length.  [Bitstream.Fabric] uses this to validate
    that decoded switch patterns join real segment endpoints, and the
    structural tests to pin the stagger. *)

val build :
  Fpga_arch.Params.t -> Fpga_arch.Grid.t -> Place.Placement.t ->
  width:int -> t
(** Build the routing-resource graph for a placed design at the given
    channel [width].  Pure in its inputs: equal parameters, grid,
    placement and width give a structurally identical graph, which is
    what makes speculative width probes safe to run concurrently. *)
