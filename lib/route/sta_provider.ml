(* Routed-Elmore delay provider: post-route interconnect delays from
   the actual routing trees (Timing.elmore over each tree), wrapped as a
   [Sta.Delays.provider] so the unified STA engine can analyse the
   routed design with the same propagation it uses pre-route.

   Delay semantics: same-block connections cost the intra-cluster
   feedback delay,
   inter-block connections the Elmore delay of the routed net (falling
   back to the local delay when no route reaches that block), pad-bound
   signals the routed delay to the pad (0 when unrouted). *)

let routed (problem : Place.Problem.t) (g : Rrgraph.t)
    (consts : Timing.constants) (routes : Pathfinder.result) =
  let block_of = Place.Td_timing.block_of_signal problem in
  (* routed delays per (signal, sink block) *)
  let routed_tbl = Hashtbl.create 64 in
  Array.iter
    (fun (tr : Pathfinder.route_tree) ->
      let net = problem.Place.Problem.nets.(tr.Pathfinder.net_index) in
      let source_node =
        match
          List.find_opt
            (fun nd ->
              match g.Rrgraph.nodes.(nd).Rrgraph.kind with
              | Rrgraph.Opin _ -> true
              | _ -> false)
            tr.Pathfinder.nodes
        with
        | Some s -> s
        | None -> List.hd tr.Pathfinder.nodes
      in
      let ds = Timing.net_delays g consts ~source:source_node tr in
      Hashtbl.iter
        (fun sink_block d ->
          Hashtbl.replace routed_tbl (net.Place.Problem.signal, sink_block) d)
        ds)
    routes.Pathfinder.trees;
  let conn s u =
    match (Hashtbl.find_opt block_of s, Hashtbl.find_opt block_of u) with
    | Some a, Some b when a = b -> consts.Timing.t_ble_local
    | _, Some b -> (
        match Hashtbl.find_opt routed_tbl (s, b) with
        | Some d -> d
        | None -> consts.Timing.t_ble_local)
    | _ -> consts.Timing.t_ble_local
  in
  let pad s block =
    match Hashtbl.find_opt routed_tbl (s, block) with
    | Some d -> d
    | None -> 0.0
  in
  {
    Sta.Delays.name = "routed-elmore";
    conn;
    pad;
    t_logic = consts.Timing.t_lut;
    t_clk_q = consts.Timing.t_clk_q;
    t_setup = consts.Timing.t_setup;
  }
