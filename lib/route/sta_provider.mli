(** Routed-Elmore delay provider for the unified STA engine.

    Wraps {!Timing.elmore} over the actual routing trees as a
    [Sta.Delays.provider], so [Sta.Analysis.run] reports post-route
    critical paths, slacks and criticalities.  Delay semantics match
    the legacy {!Timing.critical_path} estimator exactly (the parity the
    STA tests assert). *)

val routed :
  Place.Problem.t -> Rrgraph.t -> Timing.constants -> Pathfinder.result ->
  Sta.Delays.provider
