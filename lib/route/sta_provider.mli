(** Routed-Elmore delay provider for the unified STA engine.

    Wraps {!Timing.elmore} over the actual routing trees as a
    [Sta.Delays.provider], so [Sta.Analysis.run] reports post-route
    critical paths, slacks and criticalities — the sole post-route
    timing oracle now that the legacy standalone estimator is retired
    (golden fixtures under [test/fixtures/] pin its output). *)

val routed :
  Place.Problem.t -> Rrgraph.t -> Timing.constants -> Pathfinder.result ->
  Sta.Delays.provider
