(* Delay estimation over routed nets: Elmore delay on the routing trees.
   [Sta_provider.routed] feeds these per-sink delays into the unified
   STA engine, which owns the post-route critical-path computation.

   Electrical constants derive from the platform's circuit design (§3):
   pass-transistor switches at [switch_width] x minimum, length-1 metal-3
   segments with the min-width/double-spacing RC selected in §3.3. *)


type constants = {
  r_switch : float;   (* routing switch on-resistance, ohm *)
  c_switch : float;   (* switch junction capacitance, F *)
  r_wire_tile : float;
  c_wire_tile : float;
  t_lut : float;      (* LUT + local-interconnect delay, s *)
  t_ble_local : float;(* intra-cluster feedback delay, s *)
  t_clk_q : float;    (* DETFF clock-to-Q, s *)
  t_setup : float;
  t_ipin : float;     (* connection-box + input buffer delay, s *)
}

(* On-resistance of an NMOS pass transistor of the given width multiple in
   the 0.18 um-class process (linear-region estimate at VDD). *)
let pass_resistance (tech : Spice.Tech.t) width_mult =
  let wl = width_mult *. tech.Spice.Tech.w_min /. tech.Spice.Tech.l_min in
  let vov = tech.Spice.Tech.vdd -. tech.Spice.Tech.vt_n in
  1.0 /. (tech.Spice.Tech.kp_n *. wl *. vov)

let default_constants (params : Fpga_arch.Params.t) =
  let tech = Spice.Tech.stm018 in
  let cfg = Spice.Tech.Min_width_double_spacing in
  let r_switch = pass_resistance tech params.Fpga_arch.Params.switch_width in
  let c_switch =
    2.0 *. tech.Spice.Tech.cj *. params.Fpga_arch.Params.switch_width
    *. tech.Spice.Tech.w_min
  in
  {
    r_switch;
    c_switch;
    r_wire_tile = Spice.Tech.wire_r_per_m cfg *. Spice.Tech.tile_length;
    c_wire_tile = Spice.Tech.wire_c_per_m cfg *. Spice.Tech.tile_length;
    t_lut = 0.45e-9;
    t_ble_local = 0.18e-9;
    t_clk_q = 0.20e-9;
    t_setup = 0.10e-9;
    t_ipin = 0.25e-9;
  }

(* Elmore delay from the source to every node of one routing tree.

   The tree parents list gives (node, parent) pairs; we accumulate
   downstream capacitance bottom-up, then delays top-down. *)
let elmore (g : Rrgraph.t) consts ~source (tree : Pathfinder.route_tree) =
  let node_r n =
    let node = g.Rrgraph.nodes.(n) in
    match node.Rrgraph.kind with
    | Rrgraph.Chanx _ | Rrgraph.Chany _ ->
        consts.r_switch
        +. (consts.r_wire_tile *. float_of_int node.Rrgraph.wire_tiles)
    | Rrgraph.Ipin _ -> consts.r_switch
    | Rrgraph.Opin _ -> consts.r_switch
    | Rrgraph.Sink _ -> 0.0
  in
  let node_c n =
    let node = g.Rrgraph.nodes.(n) in
    match node.Rrgraph.kind with
    | Rrgraph.Chanx _ | Rrgraph.Chany _ ->
        consts.c_switch
        +. (consts.c_wire_tile *. float_of_int node.Rrgraph.wire_tiles)
    | Rrgraph.Ipin _ -> 5e-15
    | Rrgraph.Opin _ -> consts.c_switch
    | Rrgraph.Sink _ -> 0.0
  in
  let children = Hashtbl.create 16 in
  List.iter
    (fun (v, p) ->
      let cur = Option.value (Hashtbl.find_opt children p) ~default:[] in
      Hashtbl.replace children p (v :: cur))
    tree.Pathfinder.parents;
  (* downstream capacitance *)
  let cdown = Hashtbl.create 16 in
  let rec down v =
    match Hashtbl.find_opt cdown v with
    | Some c -> c
    | None ->
        let kids = Option.value (Hashtbl.find_opt children v) ~default:[] in
        let c = node_c v +. List.fold_left (fun acc k -> acc +. down k) 0.0 kids in
        Hashtbl.replace cdown v c;
        c
  in
  ignore (down source);
  (* delay accumulation *)
  let delay = Hashtbl.create 16 in
  let rec walk v t =
    Hashtbl.replace delay v t;
    let kids = Option.value (Hashtbl.find_opt children v) ~default:[] in
    List.iter (fun k -> walk k (t +. (node_r k *. down k))) kids
  in
  walk source (node_r source *. down source);
  delay

(* Routed delay from the net's source block to each sink block. *)
type net_delays = (int, float) Hashtbl.t (* sink block -> delay *)

let net_delays (g : Rrgraph.t) consts ~source (tree : Pathfinder.route_tree) =
  let d = elmore g consts ~source tree in
  let out : net_delays = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      match g.Rrgraph.nodes.(nd).Rrgraph.kind with
      | Rrgraph.Sink b ->
          let t = Option.value (Hashtbl.find_opt d nd) ~default:0.0 in
          Hashtbl.replace out b (t +. consts.t_ipin)
      | _ -> ())
    tree.Pathfinder.nodes;
  out

