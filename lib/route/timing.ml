(* Delay estimation over routed nets: Elmore delay on the routing trees.
   [Sta_provider.routed] feeds these per-sink delays into the unified
   STA engine, which owns the post-route critical-path computation.

   Electrical constants derive from the platform's circuit design (§3):
   pass-transistor switches at [switch_width] x minimum, length-1 metal-3
   segments with the min-width/double-spacing RC selected in §3.3. *)


type constants = {
  r_switch : float;   (* routing switch on-resistance, ohm *)
  c_switch : float;   (* switch junction capacitance, F *)
  r_wire_tile : float; (* per-tile RC of the default segment type *)
  c_wire_tile : float;
  seg_r_tile : float array; (* per-tile RC per segment type, indexed by
                               Rrgraph node [seg] (one entry per
                               Params.effective_segments element) *)
  seg_c_tile : float array;
  t_lut : float;      (* LUT + local-interconnect delay, s *)
  t_ble_local : float;(* intra-cluster feedback delay, s *)
  t_clk_q : float;    (* DETFF clock-to-Q, s *)
  t_setup : float;
  t_ipin : float;     (* connection-box + input buffer delay, s *)
}

(* Per-tile RC of a wire node's segment type (scalar fallback keeps
   hand-built constants without the arrays working). *)
let wire_r consts seg =
  if seg >= 0 && seg < Array.length consts.seg_r_tile then
    consts.seg_r_tile.(seg)
  else consts.r_wire_tile

let wire_c consts seg =
  if seg >= 0 && seg < Array.length consts.seg_c_tile then
    consts.seg_c_tile.(seg)
  else consts.c_wire_tile

let wire_config_of_metal = function
  | Fpga_arch.Params.Metal_min_min -> Spice.Tech.Min_width_min_spacing
  | Fpga_arch.Params.Metal_min_double -> Spice.Tech.Min_width_double_spacing
  | Fpga_arch.Params.Metal_double_double ->
      Spice.Tech.Double_width_double_spacing

(* On-resistance of an NMOS pass transistor of the given width multiple in
   the 0.18 um-class process (linear-region estimate at VDD). *)
let pass_resistance (tech : Spice.Tech.t) width_mult =
  let wl = width_mult *. tech.Spice.Tech.w_min /. tech.Spice.Tech.l_min in
  let vov = tech.Spice.Tech.vdd -. tech.Spice.Tech.vt_n in
  1.0 /. (tech.Spice.Tech.kp_n *. wl *. vov)

let default_constants (params : Fpga_arch.Params.t) =
  let tech = Spice.Tech.stm018 in
  let r_switch = pass_resistance tech params.Fpga_arch.Params.switch_width in
  let c_switch =
    2.0 *. tech.Spice.Tech.cj *. params.Fpga_arch.Params.switch_width
    *. tech.Spice.Tech.w_min
  in
  (* per-segment-type RC from the measured wire model behind the
     Fig. 8-10 sizing experiments, one entry per declared segment type
     in the metal configuration the type selects *)
  let segs = Array.of_list (Fpga_arch.Params.effective_segments params) in
  let rc =
    Array.map
      (fun (s : Fpga_arch.Params.segment) ->
        Spice.Routing_exp.wire_rc_per_tile
          ~config:(wire_config_of_metal s.Fpga_arch.Params.s_metal))
      segs
  in
  let r0, c0 =
    Spice.Routing_exp.wire_rc_per_tile
      ~config:Spice.Tech.Min_width_double_spacing
  in
  {
    r_switch;
    c_switch;
    r_wire_tile = r0;
    c_wire_tile = c0;
    seg_r_tile = Array.map fst rc;
    seg_c_tile = Array.map snd rc;
    t_lut = 0.45e-9;
    t_ble_local = 0.18e-9;
    t_clk_q = 0.20e-9;
    t_setup = 0.10e-9;
    t_ipin = 0.25e-9;
  }

(* Elmore delay from the source to every node of one routing tree.

   The tree parents list gives (node, parent) pairs; we accumulate
   downstream capacitance bottom-up, then delays top-down. *)
let elmore (g : Rrgraph.t) consts ~source (tree : Pathfinder.route_tree) =
  let node_r n =
    let node = g.Rrgraph.nodes.(n) in
    match node.Rrgraph.kind with
    | Rrgraph.Chanx _ | Rrgraph.Chany _ ->
        consts.r_switch
        +. (wire_r consts node.Rrgraph.seg
           *. float_of_int node.Rrgraph.wire_tiles)
    | Rrgraph.Ipin _ -> consts.r_switch
    | Rrgraph.Opin _ -> consts.r_switch
    | Rrgraph.Sink _ -> 0.0
  in
  let node_c n =
    let node = g.Rrgraph.nodes.(n) in
    match node.Rrgraph.kind with
    | Rrgraph.Chanx _ | Rrgraph.Chany _ ->
        consts.c_switch
        +. (wire_c consts node.Rrgraph.seg
           *. float_of_int node.Rrgraph.wire_tiles)
    | Rrgraph.Ipin _ -> 5e-15
    | Rrgraph.Opin _ -> consts.c_switch
    | Rrgraph.Sink _ -> 0.0
  in
  let children = Hashtbl.create 16 in
  List.iter
    (fun (v, p) ->
      let cur = Option.value (Hashtbl.find_opt children p) ~default:[] in
      Hashtbl.replace children p (v :: cur))
    tree.Pathfinder.parents;
  (* downstream capacitance *)
  let cdown = Hashtbl.create 16 in
  let rec down v =
    match Hashtbl.find_opt cdown v with
    | Some c -> c
    | None ->
        let kids = Option.value (Hashtbl.find_opt children v) ~default:[] in
        let c = node_c v +. List.fold_left (fun acc k -> acc +. down k) 0.0 kids in
        Hashtbl.replace cdown v c;
        c
  in
  ignore (down source);
  (* delay accumulation *)
  let delay = Hashtbl.create 16 in
  let rec walk v t =
    Hashtbl.replace delay v t;
    let kids = Option.value (Hashtbl.find_opt children v) ~default:[] in
    List.iter (fun k -> walk k (t +. (node_r k *. down k))) kids
  in
  walk source (node_r source *. down source);
  delay

(* Routed delay from the net's source block to each sink block. *)
type net_delays = (int, float) Hashtbl.t (* sink block -> delay *)

let net_delays (g : Rrgraph.t) consts ~source (tree : Pathfinder.route_tree) =
  let d = elmore g consts ~source tree in
  let out : net_delays = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      match g.Rrgraph.nodes.(nd).Rrgraph.kind with
      | Rrgraph.Sink b ->
          let t = Option.value (Hashtbl.find_opt d nd) ~default:0.0 in
          Hashtbl.replace out b (t +. consts.t_ipin)
      | _ -> ())
    tree.Pathfinder.nodes;
  out

