(** Delay estimation over routed nets: Elmore delay on the routing trees.
    {!Sta_provider.routed} feeds the per-sink delays into the unified
    STA engine, which owns the post-route critical-path computation.

    Electrical constants derive from the platform's circuit design (§3):
    pass-transistor switches at [switch_width] x minimum; per-tile wire
    RC comes from {!Spice.Routing_exp.wire_rc_per_tile}, one entry per
    declared segment type in the metal configuration that type selects
    ({!Fpga_arch.Params.segment.s_metal}). *)

type constants = {
  r_switch : float;    (** routing switch on-resistance, ohm *)
  c_switch : float;    (** switch junction capacitance, F *)
  r_wire_tile : float; (** per-tile RC of the default segment type *)
  c_wire_tile : float;
  seg_r_tile : float array;
      (** per-tile RC per segment type, indexed by the Rrgraph node
          [seg] field (one entry per
          {!Fpga_arch.Params.effective_segments} element) *)
  seg_c_tile : float array;
  t_lut : float;       (** LUT + local-interconnect delay, s *)
  t_ble_local : float; (** intra-cluster feedback delay, s *)
  t_clk_q : float;
  t_setup : float;
  t_ipin : float;      (** connection-box + input buffer delay, s *)
}

val wire_r : constants -> int -> float
(** [wire_r consts seg] is the per-tile wire resistance of segment type
    [seg]; falls back to [r_wire_tile] when [seg] is out of range (e.g.
    hand-built constants without the arrays). *)

val wire_c : constants -> int -> float

val wire_config_of_metal :
  Fpga_arch.Params.metal -> Spice.Tech.wire_config
(** Map the architecture-level metal choice onto the SPICE wire model.
    Lives here because [Fpga_arch] must not depend on [Spice]. *)

val pass_resistance : Spice.Tech.t -> float -> float
(** Linear-region on-resistance of an NMOS pass transistor of the given
    width multiple. *)

val default_constants : Fpga_arch.Params.t -> constants

val elmore :
  Rrgraph.t -> constants -> source:int -> Pathfinder.route_tree ->
  (int, float) Hashtbl.t
(** Elmore delay from the source to every node of one routing tree. *)

type net_delays = (int, float) Hashtbl.t
(** sink block -> delay *)

val net_delays :
  Rrgraph.t -> constants -> source:int -> Pathfinder.route_tree -> net_delays
(** Post-route critical-path figures come from {!Sta.Analysis} with the
    {!Sta_provider.routed} delay provider, which consumes these Elmore
    delays; the old standalone [critical_path] estimator is gone. *)
