(** Delay estimation over routed nets: Elmore delay on the routing trees.
    {!Sta_provider.routed} feeds the per-sink delays into the unified
    STA engine, which owns the post-route critical-path computation.

    Electrical constants derive from the platform's circuit design (§3):
    pass-transistor switches at [switch_width] x minimum, length-1
    metal-3 segments in the min-width/double-spacing configuration. *)

type constants = {
  r_switch : float;    (** routing switch on-resistance, ohm *)
  c_switch : float;    (** switch junction capacitance, F *)
  r_wire_tile : float;
  c_wire_tile : float;
  t_lut : float;       (** LUT + local-interconnect delay, s *)
  t_ble_local : float; (** intra-cluster feedback delay, s *)
  t_clk_q : float;
  t_setup : float;
  t_ipin : float;      (** connection-box + input buffer delay, s *)
}

val pass_resistance : Spice.Tech.t -> float -> float
(** Linear-region on-resistance of an NMOS pass transistor of the given
    width multiple. *)

val default_constants : Fpga_arch.Params.t -> constants

val elmore :
  Rrgraph.t -> constants -> source:int -> Pathfinder.route_tree ->
  (int, float) Hashtbl.t
(** Elmore delay from the source to every node of one routing tree. *)

type net_delays = (int, float) Hashtbl.t
(** sink block -> delay *)

val net_delays :
  Rrgraph.t -> constants -> source:int -> Pathfinder.route_tree -> net_delays
(** Post-route critical-path figures come from {!Sta.Analysis} with the
    {!Sta_provider.routed} delay provider, which consumes these Elmore
    delays; the old standalone [critical_path] estimator is gone. *)
