(* Blocking compile-service client.  See client.mli. *)

module E = Obs.Emit

type t = { fd : Unix.file_descr; ic : in_channel }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let close t = try close_in t.ic (* closes the fd *) with Sys_error _ -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | written -> go (off + written)
  in
  go 0

let send t req =
  write_all t.fd (E.to_string (Protocol.request_to_json req) ^ "\n")

let recv t = Jsonin.parse (input_line t.ic)

let request t req =
  send t req;
  recv t

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let ok json =
  match Option.bind (Jsonin.member "ok" json) Jsonin.get_bool with
  | Some b -> b
  | None -> false

let code json = Option.bind (Jsonin.member "code" json) Jsonin.get_string

(* ---------- retry policy ---------- *)

(* Bounded exponential backoff.  Retryable conditions are the two
   transient ones a well-behaved client sees from a healthy deployment:
   nobody listening yet / daemon restarting (connection refused, socket
   path briefly absent) and a full admission queue (the structured
   backpressure rejection).  "draining" is deliberately NOT retried at
   the same address — the daemon has told us it is going away. *)

let backoff ~attempt ~wait_ms =
  let ms = float_of_int wait_ms *. (2.0 ** float_of_int attempt) in
  Unix.sleepf (Float.min 10_000.0 ms /. 1000.0)

let connect_retry ?(retries = 0) ?(wait_ms = 200) path =
  let rec go attempt =
    match connect path with
    | t -> t
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < retries ->
        backoff ~attempt ~wait_ms;
        go (attempt + 1)
  in
  go 0

let request_retry ?(retries = 0) ?(wait_ms = 200) t req =
  let rec go attempt =
    let resp = request t req in
    if (not (ok resp)) && code resp = Some "backpressure" && attempt < retries
    then begin
      backoff ~attempt ~wait_ms;
      go (attempt + 1)
    end
    else resp
  in
  go 0

let error_message json =
  let str name =
    Option.bind (Jsonin.member name json) Jsonin.get_string
  in
  let msg = Option.value (str "error") ~default:"unknown error" in
  let tag name =
    match str name with Some v -> Printf.sprintf " [%s %s]" name v | None -> ""
  in
  msg ^ tag "code" ^ tag "stage"
