(** Blocking client for the compile service.

    One connection, one request/response at a time: {!request} writes a
    {!Protocol.request} as one JSON line and blocks until the matching
    response line arrives (for [submit], that is when the compile
    finishes — immediate errors like backpressure come straight back).
    [amdrel_flow --remote] is built on this; tests drive concurrent
    clients by running one connection per domain. *)

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error when nobody is listening. *)

val close : t -> unit

val request : t -> Protocol.request -> Obs.Emit.t
(** Send one request, wait for one response, parse it.
    @raise End_of_file when the server closes the connection first.
    @raise Jsonin.Parse_error on a malformed response line. *)

val send : t -> Protocol.request -> unit
(** Fire a request without waiting.  Pipelined submits get their
    responses in {e completion} order, not submission order — match
    them up by ["id"] (immediate errors such as backpressure carry no
    id and overtake in-flight compiles). *)

val recv : t -> Obs.Emit.t
(** Block for the next response line.  [request t r] is
    [send t r; recv t]. *)

val with_connection : string -> (t -> 'a) -> 'a
(** [with_connection path f] connects, runs [f], and closes — also on
    exceptions. *)

(** {1 Response accessors} *)

val ok : Obs.Emit.t -> bool
(** The response's ["ok"] field ([false] when absent). *)

val error_message : Obs.Emit.t -> string
(** Human-readable failure description: ["error"] plus ["code"] and
    ["stage"] when present.  Meaningful only when [ok] is [false]. *)
