(** Blocking client for the compile service.

    One connection, one request/response at a time: {!request} writes a
    {!Protocol.request} as one JSON line and blocks until the matching
    response line arrives (for [submit], that is when the compile
    finishes — immediate errors like backpressure come straight back).
    [amdrel_flow --remote] is built on this; tests drive concurrent
    clients by running one connection per domain. *)

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error when nobody is listening. *)

val connect_retry : ?retries:int -> ?wait_ms:int -> string -> t
(** {!connect} with bounded exponential backoff on [ECONNREFUSED] and
    [ENOENT] (daemon not up yet, or restarting): up to [retries] extra
    attempts (default 0 — identical to {!connect}), sleeping
    [wait_ms * 2^attempt] milliseconds (default 200, capped at 10 s)
    between attempts.  Other errors raise immediately. *)

val close : t -> unit

val request : t -> Protocol.request -> Obs.Emit.t
(** Send one request, wait for one response, parse it.
    @raise End_of_file when the server closes the connection first.
    @raise Jsonin.Parse_error on a malformed response line. *)

val send : t -> Protocol.request -> unit
(** Fire a request without waiting.  Pipelined submits get their
    responses in {e completion} order, not submission order — match
    them up by ["id"] (immediate errors such as backpressure carry no
    id and overtake in-flight compiles). *)

val recv : t -> Obs.Emit.t
(** Block for the next response line.  [request t r] is
    [send t r; recv t]. *)

val with_connection : string -> (t -> 'a) -> 'a
(** [with_connection path f] connects, runs [f], and closes — also on
    exceptions. *)

(** {1 Response accessors} *)

val request_retry :
  ?retries:int -> ?wait_ms:int -> t -> Protocol.request -> Obs.Emit.t
(** {!request} with the same backoff schedule on structured
    [backpressure] rejections (a full admission queue is transient; the
    queued work ahead of us is finite).  [draining] rejections are
    {e not} retried — that daemon is going away; pick another address.
    Returns the last response (still a rejection when the budget runs
    out). *)

val ok : Obs.Emit.t -> bool
(** The response's ["ok"] field ([false] when absent). *)

val code : Obs.Emit.t -> string option
(** The response's machine-readable ["code"] field, when present
    ([backpressure] | [draining] | [bad-request] | [compile-error] |
    [unknown-id]). *)

val error_message : Obs.Emit.t -> string
(** Human-readable failure description: ["error"] plus ["code"] and
    ["stage"] when present.  Meaningful only when [ok] is [false]. *)
