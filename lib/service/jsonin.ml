(* The wire-protocol parser lives beside the emitter in lib/obs (one
   value type, both directions); re-exported here so protocol code and
   existing callers keep their [Jsonin] name. *)

include Obs.Jsonin
