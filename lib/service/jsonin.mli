(** Minimal JSON parser for the compile-service wire protocol.

    The flow has always {e emitted} JSON through one shared emitter
    ({!Obs.Emit}); the service protocol is the first surface that must
    also {e read} it.  This parser is the emitter's inverse: it accepts
    standard JSON (RFC 8259 — whitespace, nested containers, string
    escapes including [\uXXXX] with surrogate pairs decoded to UTF-8)
    and produces {!Obs.Emit.t} values, so one value type serves both
    directions.  Numbers without [.], [e] or [E] that fit an OCaml
    [int] parse as [Int]; everything else parses as [Float].
    [Obs.Emit.to_string] output round-trips exactly (floats through
    [%.9g] re-parse equal). *)

exception Parse_error of string
(** Position-tagged description of the first syntax error. *)

val parse : string -> Obs.Emit.t
(** Parse one JSON value (leading/trailing whitespace allowed; anything
    else after the value is an error).
    @raise Parse_error on malformed input. *)

val parse_opt : string -> Obs.Emit.t option

(** {1 Accessors}

    Total functions over parsed values, for protocol field extraction:
    each returns [None] on a missing member or a kind mismatch. *)

val member : string -> Obs.Emit.t -> Obs.Emit.t option
(** Object member lookup (first binding wins). *)

val get_string : Obs.Emit.t -> string option
val get_bool : Obs.Emit.t -> bool option

val get_int : Obs.Emit.t -> int option
(** [Int n], or a [Float] with an exact integer value. *)

val get_float : Obs.Emit.t -> float option
(** [Float f] or [Int n] (as a float). *)
