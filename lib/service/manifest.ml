(* Batch manifest parsing: one design path per line, resolved against
   the manifest's own directory.  See manifest.mli. *)

let resolve ~manifest line =
  if Filename.is_relative line then
    Filename.concat (Filename.dirname manifest) line
  else line

let read path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else Some (resolve ~manifest:path line))
