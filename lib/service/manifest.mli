(** Batch manifests: one design source path per line.

    Shared by [amdrel_flow --batch] (local compilation) and
    [amdrel_flow --batch --remote] (submission to a daemon).  Blank
    lines and [#] comments are skipped.  Relative paths resolve against
    the {e manifest file's} directory — not the process working
    directory — so a manifest can be checked in next to its designs and
    used from anywhere.  (Resolving against the CWD first, as the batch
    driver originally did, silently compiled the wrong file when the
    CWD happened to contain a same-named design.) *)

val resolve : manifest:string -> string -> string
(** [resolve ~manifest line] is the design path for one manifest entry:
    [line] itself when absolute, otherwise [dirname manifest / line]. *)

val read : string -> string list
(** [read path] parses the manifest at [path] into design paths, in
    file order.
    @raise Sys_error when the manifest cannot be read. *)
