(* Wire protocol: newline-delimited JSON requests/responses.  See
   protocol.mli for the verb semantics and docs/ARCHITECTURE.md for the
   response schemas. *)

module E = Obs.Emit

type submit = {
  vhdl : string;
  seed : int;
  route_width : int option;
  timing_report : bool;
  period_ns : float option;
  place_starts : int;
  progress : bool;
}

let default_submit =
  {
    vhdl = "";
    seed = 1;
    route_width = None;
    timing_report = false;
    period_ns = None;
    place_starts = 1;
    progress = false;
  }

type request = Submit of submit | Status | Metrics | Shutdown | Watch of int

let request_to_json = function
  | Status -> E.Obj [ ("verb", E.String "status") ]
  | Metrics -> E.Obj [ ("verb", E.String "metrics") ]
  | Shutdown -> E.Obj [ ("verb", E.String "shutdown") ]
  | Watch id -> E.Obj [ ("verb", E.String "watch"); ("id", E.Int id) ]
  | Submit s ->
      E.Obj
        ([ ("verb", E.String "submit"); ("vhdl", E.String s.vhdl) ]
        @ (if s.seed <> default_submit.seed then [ ("seed", E.Int s.seed) ]
           else [])
        @ (match s.route_width with
          | Some w -> [ ("route_width", E.Int w) ]
          | None -> [])
        @ (if s.timing_report then [ ("timing_report", E.Bool true) ] else [])
        @ (match s.period_ns with
          | Some ns -> [ ("period_ns", E.Float ns) ]
          | None -> [])
        @ (if s.place_starts <> default_submit.place_starts then
             [ ("place_starts", E.Int s.place_starts) ]
           else [])
        @ if s.progress then [ ("progress", E.Bool true) ] else [])

(* Field extraction: absent optional fields default; present fields of
   the wrong kind are protocol errors (never silently ignored). *)
let field json name get ~default =
  match Jsonin.member name json with
  | None | Some E.Null -> Ok default
  | Some v -> (
      match get v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let submit_of_json json =
  let d = default_submit in
  let* vhdl =
    match Jsonin.member "vhdl" json with
    | Some v -> (
        match Jsonin.get_string v with
        | Some s -> Ok s
        | None -> Error "field \"vhdl\" has the wrong type")
    | None -> Error "submit requires a \"vhdl\" field"
  in
  let* seed = field json "seed" Jsonin.get_int ~default:d.seed in
  let* route_width =
    field json "route_width"
      (fun v -> Option.map Option.some (Jsonin.get_int v))
      ~default:d.route_width
  in
  let* timing_report =
    field json "timing_report" Jsonin.get_bool ~default:d.timing_report
  in
  let* period_ns =
    field json "period_ns"
      (fun v -> Option.map Option.some (Jsonin.get_float v))
      ~default:d.period_ns
  in
  let* place_starts =
    field json "place_starts" Jsonin.get_int ~default:d.place_starts
  in
  let* progress = field json "progress" Jsonin.get_bool ~default:d.progress in
  Ok
    (Submit
       {
         vhdl;
         seed;
         route_width;
         timing_report;
         period_ns;
         place_starts;
         progress;
       })

let request_of_json json =
  match Option.bind (Jsonin.member "verb" json) Jsonin.get_string with
  | None -> Error "request requires a string \"verb\" field"
  | Some "status" -> Ok Status
  | Some "metrics" -> Ok Metrics
  | Some "shutdown" -> Ok Shutdown
  | Some "submit" -> submit_of_json json
  | Some "watch" -> (
      match Option.bind (Jsonin.member "id" json) Jsonin.get_int with
      | Some id -> Ok (Watch id)
      | None -> Error "watch requires an integer \"id\" field")
  | Some verb -> Error (Printf.sprintf "unknown verb %S" verb)

(* ---------- bitstream transport ---------- *)

let hex_chars = "0123456789abcdef"

let hex_encode s =
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      Bytes.set out (2 * i) hex_chars.[b lsr 4];
      Bytes.set out ((2 * i) + 1) hex_chars.[b land 0xF])
    s;
  Bytes.unsafe_to_string out

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok (Bytes.unsafe_to_string out)
      else
        match (digit s.[2 * i], digit s.[(2 * i) + 1]) with
        | Some hi, Some lo ->
            Bytes.set out i (Char.chr ((hi lsl 4) lor lo));
            go (i + 1)
        | _ -> Error (Printf.sprintf "invalid hex at offset %d" (2 * i))
    in
    go 0
