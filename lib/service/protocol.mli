(** The compile-service wire protocol: newline-delimited JSON over a
    Unix-domain socket.

    Each request is one JSON object on one line; each response is one
    JSON object on one line.  Five verbs:

    - [submit] — compile one design.  Carries the VHDL source text and
      the output-affecting config the client may choose (seed, fixed
      channel width, timing report, clock period, placement starts);
      everything else — cache directory, job budget — is the server's.
      The response arrives when the compile finishes (or immediately,
      with [code = "backpressure"], when the admission queue is full).
    - [status] — queue depth, in-flight count, lifetime counters, and
      the queued requests' positions and ages.  Answered immediately.
    - [watch] — subscribe this connection to the progress-event stream
      of a queued or running request (one submitted with
      [progress = true]); answered with an immediate acknowledgement
      line, then event lines until the request completes.  See
      docs/OBSERVABILITY.md § Progress event stream for the framing.
    - [metrics] — the server's full metric registry ([service.*] and
      [cache.*] keys; docs/OBSERVABILITY.md).  Answered immediately.
    - [shutdown] — begin a graceful drain: stop admitting, finish
      queued and in-flight work, flush responses, exit.  Equivalent to
      SIGTERM on the daemon.

    Response schemas are documented in docs/ARCHITECTURE.md (Compile
    service section).  Every response object carries ["ok"]; failures
    carry ["error"] and a machine-readable ["code"]
    ([backpressure] | [draining] | [bad-request] | [compile-error]),
    and compile errors additionally name the flow ["stage"] that
    raised.  Success responses to [submit] embed the same per-design
    record as [amdrel_flow --batch]'s [BASE.result.json]
    ({!Core.Flow.result_json}) under ["result"], the bitstream bytes
    hex-encoded under ["bitstream_hex"], and the run's deterministic
    metric view under ["deterministic_metrics"]. *)

type submit = {
  vhdl : string;             (** VHDL source text (possibly several
                                 entities; the last is the top) *)
  seed : int;                (** placement seed (default 1) *)
  route_width : int option;  (** fixed channel width; [None] searches
                                 the minimum *)
  timing_report : bool;      (** timing-driven + a timing report in the
                                 response under ["timing"] *)
  period_ns : float option;  (** target clock period (implies
                                 timing-driven) *)
  place_starts : int;        (** independent annealing starts *)
  progress : bool;           (** stream progress events to this
                                 connection while the compile runs:
                                 the submit is acknowledged with an
                                 [accepted] line carrying the request
                                 id, event lines follow, and the
                                 compile response arrives last *)
}

val default_submit : submit
(** Empty source, seed 1, width search, no timing report, 1 start,
    no progress stream. *)

type request = Submit of submit | Status | Metrics | Shutdown | Watch of int

val request_to_json : request -> Obs.Emit.t

val request_of_json : Obs.Emit.t -> (request, string) result
(** Inverse of {!request_to_json}; [Error] describes the malformation.
    Unknown verbs and missing/mistyped required fields are errors;
    omitted optional submit fields take {!default_submit}'s values. *)

(** {1 Bitstream transport} *)

val hex_encode : string -> string
(** Lowercase hex, two characters per byte. *)

val hex_decode : string -> (string, string) result
