(* The compile-service daemon core: accept loop, bounded admission
   queue, worker domains, graceful drain.  See server.mli for the
   architecture overview; threading discipline in one line: the IO loop
   (the domain calling [run]) owns every file descriptor, the server
   registry and the server-side cache handle; workers own nothing but
   the job they popped.  The only shared state is the admission queue
   (qlock/qcond), the completion queue (clock) and two atomics. *)

module E = Obs.Emit
module R = Obs.Registry
module F = Core.Flow
module P = Protocol

type config = {
  socket_path : string;
  queue_depth : int;
  workers : int;
  jobs : int;
  cache_max_bytes : int option;
  heartbeat_s : float;
  flow : F.config;
  log : string -> unit;
}

let default_config =
  {
    socket_path = "amdreld.sock";
    queue_depth = 32;
    workers = 2;
    jobs = Util.Parallel.default_jobs ();
    cache_max_bytes = None;
    heartbeat_s = 1.0;
    flow = { F.default_config with F.cache_dir = Some "_amdrel_cache" };
    log = ignore;
  }

(* One admitted compile request.  [sink] is present when the client
   asked for progress streaming: the worker publishes events into it,
   the IO loop drains and frames them (the sink is the only object a
   worker and the IO loop share per-request, and it is SPSC by
   construction — worker produces, IO loop consumes). *)
type job = {
  id : int;
  conn_uid : int;
  submit : P.submit;
  enqueued_at : float;
  sink : Obs.Events.sink option;
}

(* IO-loop-owned view of one progress stream. *)
type stream = {
  st_id : int;
  st_sink : Obs.Events.sink;
  st_owner : int; (* submitting conn uid *)
  mutable st_watchers : int list; (* extra conn uids via [watch] *)
  mutable st_last : float; (* last line framed; heartbeat timer *)
}

(* What a worker hands back to the IO loop: the finished response line
   plus the headline telemetry the loop folds into the server registry
   (workers never record into it directly — single-writer keeps the
   registry race-free without any locking discipline beyond this). *)
type completion = {
  c_id : int;
  c_conn : int;
  c_line : string;
  c_ok : bool;
  c_design : string;
  c_wait_s : float;
  c_wall_s : float;
  c_cpu_s : float;
  c_hits : int;
  c_misses : int;
}

type conn = {
  fd : Unix.file_descr;
  uid : int;
  inbuf : Buffer.t;   (* bytes read, not yet newline-terminated *)
  outbox : Buffer.t;  (* response bytes not yet written *)
  mutable out_pos : int;  (* consumed prefix of [outbox] *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (* self-pipe: workers nudge the select loop *)
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  (* admission queue: IO loop pushes, workers pop *)
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t;
  mutable q_closed : bool;
  (* finished work: workers push, IO loop drains (after a wake) *)
  clock : Mutex.t;
  completions : completion Queue.t;
  (* IO-loop-owned state: no lock, single domain *)
  obs : R.t;
  store : Cache.Store.t option;
  per_request_jobs : int;
  mutable draining : bool;
  mutable next_id : int;
  mutable accepted : int;
  mutable completed : int;
  mutable rejected : int;
  conns : (int, conn) Hashtbl.t;
  mutable next_uid : int;
  streams : (int, stream) Hashtbl.t; (* request id -> live stream *)
}

let wake_byte = Bytes.make 1 '!'

let wake t =
  (* Best-effort: a full pipe already guarantees a pending wake. *)
  try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

let initiate_shutdown t =
  Atomic.set t.stop true;
  wake t

(* ---------- responses ---------- *)

let error_json ?id ~code msg =
  E.Obj
    ((match id with Some i -> [ ("id", E.Int i) ] | None -> [])
    @ [
        ("ok", E.Bool false);
        ("code", E.String code);
        ("error", E.String msg);
      ])

let send conn json = Buffer.add_string conn.outbox (E.to_string json ^ "\n")

let queue_len t =
  Mutex.lock t.qlock;
  let n = Queue.length t.queue in
  Mutex.unlock t.qlock;
  n

let status_json t =
  (* Snapshot the queued requests with their FIFO positions and ages in
     one lock hold, so position/age pairs are mutually consistent. *)
  let now = Unix.gettimeofday () in
  Mutex.lock t.qlock;
  let queued =
    Queue.fold
      (fun acc (j : job) ->
        E.Obj
          [
            ("id", E.Int j.id);
            ("position", E.Int (List.length acc + 1));
            ( "age_us",
              E.Int (int_of_float ((now -. j.enqueued_at) *. 1e6)) );
          ]
        :: acc)
      [] t.queue
  in
  Mutex.unlock t.qlock;
  let queued = List.rev queued in
  let q = List.length queued in
  E.Obj
    [
      ("ok", E.Bool true);
      ("queue_depth", E.Int q);
      ("queue_capacity", E.Int t.cfg.queue_depth);
      ("in_flight", E.Int (t.accepted - t.completed - q));
      ("workers", E.Int t.cfg.workers);
      ("per_request_jobs", E.Int t.per_request_jobs);
      ("accepted", E.Int t.accepted);
      ("completed", E.Int t.completed);
      ("rejected", E.Int t.rejected);
      ("draining", E.Bool (t.draining || Atomic.get t.stop));
      ("queued", E.List queued);
    ]

let metrics_json t =
  let q = queue_len t in
  R.set ~volatile:true t.obs "service.queue-depth" (float_of_int q);
  R.set ~volatile:true t.obs "service.in-flight"
    (float_of_int (t.accepted - t.completed - q));
  E.Obj
    [ ("ok", E.Bool true); ("metrics", R.to_json (R.snapshot t.obs)) ]

(* ---------- workers ---------- *)

let counter snap key =
  match R.find snap key with Some (R.Counter n) -> n | _ -> 0

(* Runs on a worker domain.  Fresh registry per request: nothing a
   request records can bleed into another request or the server. *)
let compile t job =
  let t0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let wait_s = t0 -. job.enqueued_at in
  let s = job.submit in
  let base = t.cfg.flow in
  let config =
    {
      base with
      F.seed = s.P.seed;
      search_min_width = s.P.route_width = None;
      route_width =
        (match s.P.route_width with Some w -> w | None -> base.F.route_width);
      timing_driven =
        base.F.timing_driven || s.P.timing_report || s.P.period_ns <> None;
      clock_period =
        (match s.P.period_ns with
        | Some ns -> Some (ns *. 1e-9)
        | None -> base.F.clock_period);
      place_starts = s.P.place_starts;
      jobs = Some t.per_request_jobs;
    }
  in
  let obs = R.create () in
  let run () =
    match job.sink with
    | None -> F.run_vhdl ~config ~obs s.P.vhdl
    | Some sink ->
        Obs.Events.with_sink sink (fun () -> F.run_vhdl ~config ~obs s.P.vhdl)
  in
  let resp, ok, design, hits, misses =
    match run () with
    | r ->
        let json =
          E.Obj
            ([
               ("id", E.Int job.id);
               ("ok", E.Bool true);
               ("design", E.String r.F.design);
               ("queue_wait_s", E.Float wait_s);
               ("result", F.result_obj r);
               ( "deterministic_metrics",
                 R.to_json ~deterministic:true r.F.metrics );
               ( "bitstream_hex",
                 E.String (P.hex_encode r.F.bitstream.Bitstream.Dagger.bytes)
               );
             ]
            @
            if s.P.timing_report then
              [ ("timing", F.timing_report_obj r) ]
            else [])
        in
        ( json,
          true,
          r.F.design,
          counter r.F.metrics "cache.hit",
          counter r.F.metrics "cache.miss" )
    | exception e ->
        let stage, err =
          match e with
          | F.Flow_error (stage, e) -> (stage, Printexc.to_string e)
          | e -> ("flow", Printexc.to_string e)
        in
        let json =
          E.Obj
            [
              ("id", E.Int job.id);
              ("ok", E.Bool false);
              ("code", E.String "compile-error");
              ("stage", E.String stage);
              ("error", E.String err);
            ]
        in
        (json, false, "-", 0, 0)
  in
  {
    c_id = job.id;
    c_conn = job.conn_uid;
    c_line = E.to_string resp ^ "\n";
    c_ok = ok;
    c_design = design;
    c_wait_s = wait_s;
    c_wall_s = Unix.gettimeofday () -. t0;
    c_cpu_s = Sys.time () -. c0;
    c_hits = hits;
    c_misses = misses;
  }

let worker t () =
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not t.q_closed do
      Condition.wait t.qcond t.qlock
    done;
    let job =
      if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
    in
    Mutex.unlock t.qlock;
    match job with
    | None -> () (* closed and drained: exit *)
    | Some job ->
        let c = compile t job in
        Mutex.lock t.clock;
        Queue.push c t.completions;
        Mutex.unlock t.clock;
        wake t;
        loop ()
  in
  loop ()

(* ---------- request handling (IO loop) ---------- *)

let reject t conn ~code msg =
  t.rejected <- t.rejected + 1;
  R.incr t.obs "service.rejected";
  send conn (error_json ~code msg)

let submit t conn s =
  R.incr t.obs "service.requests";
  if t.draining || Atomic.get t.stop then
    reject t conn ~code:"draining" "server is draining; resubmit elsewhere"
  else begin
    Mutex.lock t.qlock;
    if Queue.length t.queue >= t.cfg.queue_depth then begin
      Mutex.unlock t.qlock;
      reject t conn ~code:"backpressure"
        (Printf.sprintf "admission queue full (capacity %d)"
           t.cfg.queue_depth)
    end
    else begin
      let id = t.next_id in
      t.next_id <- id + 1;
      let sink =
        if s.P.progress then Some (Obs.Events.create ()) else None
      in
      Queue.push
        {
          id;
          conn_uid = conn.uid;
          submit = s;
          enqueued_at = Unix.gettimeofday ();
          sink;
        }
        t.queue;
      let position = Queue.length t.queue in
      Condition.signal t.qcond;
      Mutex.unlock t.qlock;
      t.accepted <- t.accepted + 1;
      R.incr t.obs "service.accepted";
      match sink with
      | None -> ()
      | Some sk ->
          (* The stream is registered before the worker can finish the
             job: completions are only drained by this same domain. *)
          Hashtbl.replace t.streams id
            {
              st_id = id;
              st_sink = sk;
              st_owner = conn.uid;
              st_watchers = [];
              st_last = Unix.gettimeofday ();
            };
          R.incr t.obs "service.streams";
          send conn
            (E.Obj
               [
                 ("id", E.Int id);
                 ("ok", E.Bool true);
                 ("accepted", E.Bool true);
                 ("queue_position", E.Int position);
               ])
    end
  end

let handle_line t conn line =
  let req =
    match Jsonin.parse line with
    | exception Jsonin.Parse_error m -> Error ("invalid JSON: " ^ m)
    | json -> P.request_of_json json
  in
  match req with
  | Error msg -> send conn (error_json ~code:"bad-request" msg)
  | Ok P.Status -> send conn (status_json t)
  | Ok P.Metrics -> send conn (metrics_json t)
  | Ok P.Shutdown ->
      send conn (E.Obj [ ("ok", E.Bool true); ("draining", E.Bool true) ]);
      initiate_shutdown t
  | Ok (P.Watch id) -> (
      match Hashtbl.find_opt t.streams id with
      | None ->
          send conn
            (error_json ~id ~code:"unknown-id"
               "no live progress stream with that id (not submitted with \
                progress, or already completed)")
      | Some st ->
          if not (List.mem conn.uid st.st_watchers) then
            st.st_watchers <- conn.uid :: st.st_watchers;
          let state =
            let queued = ref false in
            Mutex.lock t.qlock;
            Queue.iter (fun (j : job) -> if j.id = id then queued := true)
              t.queue;
            Mutex.unlock t.qlock;
            if !queued then "queued" else "running"
          in
          send conn
            (E.Obj
               [
                 ("id", E.Int id);
                 ("ok", E.Bool true);
                 ("state", E.String state);
               ]))
  | Ok (P.Submit s) -> submit t conn s

(* ---------- connection IO ---------- *)

let close_conn t conn =
  Hashtbl.remove t.conns conn.uid;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let process_lines t conn =
  let data = Buffer.contents conn.inbuf in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None ->
        if start > 0 then begin
          Buffer.clear conn.inbuf;
          Buffer.add_substring conn.inbuf data start
            (String.length data - start)
        end
    | Some i ->
        let line = String.sub data start (i - start) in
        if String.trim line <> "" then handle_line t conn line;
        go (i + 1)
  in
  go 0

let readable t conn buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn
  | 0 -> close_conn t conn
  | n ->
      Buffer.add_subbytes conn.inbuf buf 0 n;
      process_lines t conn

let writable t conn =
  let len = Buffer.length conn.outbox - conn.out_pos in
  if len > 0 then begin
    let chunk = Buffer.sub conn.outbox conn.out_pos (min len 65536) in
    match Unix.write_substring conn.fd chunk 0 (String.length chunk) with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn t conn
    | n ->
        conn.out_pos <- conn.out_pos + n;
        if conn.out_pos = Buffer.length conn.outbox then begin
          Buffer.clear conn.outbox;
          conn.out_pos <- 0
        end
  end

let rec accept_ready t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_ready t
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      let uid = t.next_uid in
      t.next_uid <- uid + 1;
      Hashtbl.replace t.conns uid
        {
          fd;
          uid;
          inbuf = Buffer.create 4096;
          outbox = Buffer.create 4096;
          out_pos = 0;
        };
      accept_ready t

let rec drain_pipe t buf =
  match Unix.read t.wake_r buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_pipe t buf
  | 0 -> ()
  | _ -> drain_pipe t buf

(* ---------- progress streams (IO loop) ---------- *)

(* Frame one event line to the stream's owner and watchers.  Dead
   connections drop their copy silently — a slow or vanished watcher
   never stalls the compile (the ring bound upstream already guarantees
   the producer side of that). *)
let deliver_line t st line =
  let to_uid uid =
    match Hashtbl.find_opt t.conns uid with
    | Some conn -> Buffer.add_string conn.outbox line
    | None -> ()
  in
  to_uid st.st_owner;
  List.iter (fun uid -> if uid <> st.st_owner then to_uid uid) st.st_watchers

let frame_event t st ev =
  deliver_line t st
    (E.to_string (E.Obj (("id", E.Int st.st_id) :: Obs.Events.to_fields ev))
    ^ "\n")

(* Drain every live stream; synthesize a heartbeat when a stream has
   been silent past the cadence, so watchers can tell a long-running
   stage from a dead server.  Called once per IO-loop pass — the 0.2 s
   select timeout bounds event latency. *)
let pump_streams t =
  Hashtbl.iter
    (fun _ st ->
      match Obs.Events.drain st.st_sink with
      | [] ->
          let now = Unix.gettimeofday () in
          if now -. st.st_last >= t.cfg.heartbeat_s then begin
            frame_event t st (Obs.Events.heartbeat st.st_sink);
            st.st_last <- now
          end
      | evs ->
          List.iter (frame_event t st) evs;
          st.st_last <- Unix.gettimeofday ())
    t.streams

(* The worker finished this request (its events all precede the
   completion by the clock-mutex ordering): flush the stream's tail so
   every event line lands before the final response line, tell watchers
   it is over, and retire the stream. *)
let finish_stream t c_id ~ok =
  match Hashtbl.find_opt t.streams c_id with
  | None -> ()
  | Some st ->
      List.iter (frame_event t st) (Obs.Events.drain st.st_sink);
      let dropped = Obs.Events.dropped_total st.st_sink in
      deliver_line t st
        (E.to_string
           (E.Obj
              ([
                 ("id", E.Int st.st_id);
                 ("event", E.String "done");
                 ("seq", E.Int (Obs.Events.next_seq st.st_sink));
                 ("ok", E.Bool ok);
               ]
              @
              if dropped > 0 then [ ("dropped_total", E.Int dropped) ]
              else []))
        ^ "\n");
      Hashtbl.remove t.streams c_id

(* ---------- completions and cache upkeep (IO loop) ---------- *)

let run_gc t =
  match t.store with
  | None -> ()
  | Some s ->
      let g = Cache.Store.gc ?max_bytes:t.cfg.cache_max_bytes s in
      if g.Cache.Store.evicted > 0 then
        t.cfg.log
          (Printf.sprintf
             "cache: evicted %d entries (%d bytes, %d corrupt); %d bytes \
              resident"
             g.Cache.Store.evicted g.Cache.Store.evicted_bytes
             g.Cache.Store.evicted_corrupt g.Cache.Store.resident_bytes)

let drain_completions t =
  Mutex.lock t.clock;
  let comps = List.of_seq (Queue.to_seq t.completions) in
  Queue.clear t.completions;
  Mutex.unlock t.clock;
  List.iter
    (fun c ->
      t.completed <- t.completed + 1;
      R.incr t.obs "service.completed";
      if not c.c_ok then R.incr t.obs "service.errors";
      R.add_time t.obs "service.queue-wait" ~wall_s:c.c_wait_s ~cpu_s:0.0;
      R.add_time t.obs "service.compile" ~wall_s:c.c_wall_s ~cpu_s:c.c_cpu_s;
      if c.c_hits > 0 then R.incr ~by:c.c_hits t.obs "cache.hit";
      if c.c_misses > 0 then R.incr ~by:c.c_misses t.obs "cache.miss";
      finish_stream t c.c_id ~ok:c.c_ok;
      (match Hashtbl.find_opt t.conns c.c_conn with
      | Some conn -> Buffer.add_string conn.outbox c.c_line
      | None -> () (* client went away; response has nowhere to go *));
      t.cfg.log
        (Printf.sprintf "req %d %s ok=%b wait=%.3fs compile=%.3fs" c.c_id
           c.c_design c.c_ok c.c_wait_s c.c_wall_s))
    comps;
  if comps <> [] then run_gc t

(* ---------- lifecycle ---------- *)

let create cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = cfg.socket_path in
  (if Sys.file_exists sock then
     match (Unix.lstat sock).Unix.st_kind with
     | Unix.S_SOCK ->
         (* Only replace a dead server's leftover: probe with a
            connect first so two daemons can't fight over one path. *)
         let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         let live =
           match Unix.connect probe (Unix.ADDR_UNIX sock) with
           | () -> true
           | exception Unix.Unix_error _ -> false
         in
         (try Unix.close probe with Unix.Unix_error _ -> ());
         if live then
           failwith (sock ^ ": a compile server is already listening");
         (try Unix.unlink sock with Unix.Unix_error _ -> ())
     | _ ->
         failwith (sock ^ " exists and is not a socket; refusing to replace"));
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX sock);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let obs = R.create () in
  let store =
    Option.map (fun d -> Cache.Store.open_ ~obs d) cfg.flow.F.cache_dir
  in
  (match store with
  | Some s ->
      let g = Cache.Store.gc ?max_bytes:cfg.cache_max_bytes s in
      cfg.log
        (Printf.sprintf "cache %s: %d entries, %d bytes resident%s"
           (Cache.Store.dir s) g.Cache.Store.entries
           g.Cache.Store.resident_bytes
           (if g.Cache.Store.evicted > 0 then
              Printf.sprintf ", evicted %d (%d bytes)" g.Cache.Store.evicted
                g.Cache.Store.evicted_bytes
            else ""))
  | None -> ());
  let per_request_jobs = max 1 (cfg.jobs / max 1 cfg.workers) in
  let t =
    {
      cfg;
      listen_fd;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      qlock = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      q_closed = false;
      clock = Mutex.create ();
      completions = Queue.create ();
      obs;
      store;
      per_request_jobs;
      draining = false;
      next_id = 1;
      accepted = 0;
      completed = 0;
      rejected = 0;
      conns = Hashtbl.create 16;
      next_uid = 1;
      streams = Hashtbl.create 8;
    }
  in
  cfg.log
    (Printf.sprintf
       "listening on %s (workers=%d, jobs=%d, per-request jobs=%d, queue \
        capacity %d)"
       sock cfg.workers cfg.jobs per_request_jobs cfg.queue_depth);
  t

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run t =
  let workers = Array.init t.cfg.workers (fun _ -> Domain.spawn (worker t)) in
  let buf = Bytes.create 65536 in
  let flush_deadline = ref None in
  let running = ref true in
  while !running do
    if Atomic.get t.stop && not t.draining then begin
      t.draining <- true;
      (* Take the socket path off the filesystem immediately so new
         clients fail fast instead of queueing on a dying server. *)
      (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
      Mutex.lock t.qlock;
      t.q_closed <- true;
      Condition.broadcast t.qcond;
      Mutex.unlock t.qlock;
      t.cfg.log "draining: finishing queued and in-flight requests"
    end;
    pump_streams t;
    drain_completions t;
    let pending_out =
      Hashtbl.fold
        (fun _ c acc -> acc || Buffer.length c.outbox > c.out_pos)
        t.conns false
    in
    let work_done =
      t.draining && queue_len t = 0 && t.accepted = t.completed
    in
    if work_done && not pending_out then running := false
    else begin
      (if work_done then
         (* All work finished; allow a bounded grace period to flush
            the last responses to slow readers. *)
         match !flush_deadline with
         | None -> flush_deadline := Some (Unix.gettimeofday () +. 10.0)
         | Some d when Unix.gettimeofday () > d -> running := false
         | Some _ -> ());
      if !running then begin
        let conn_fds =
          Hashtbl.fold (fun _ c acc -> (c.fd, c) :: acc) t.conns []
        in
        let rfds =
          (t.wake_r :: (if t.draining then [] else [ t.listen_fd ]))
          @ List.map fst conn_fds
        in
        let wfds =
          List.filter_map
            (fun (fd, c) ->
              if Buffer.length c.outbox > c.out_pos then Some fd else None)
            conn_fds
        in
        match Unix.select rfds wfds [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | r, w, _ ->
            if List.memq t.wake_r r then drain_pipe t buf;
            if (not t.draining) && List.memq t.listen_fd r then
              accept_ready t;
            List.iter
              (fun (fd, c) ->
                if List.memq fd r && Hashtbl.mem t.conns c.uid then
                  readable t c buf)
              conn_fds;
            List.iter
              (fun (fd, c) ->
                if List.memq fd w && Hashtbl.mem t.conns c.uid then
                  writable t c)
              conn_fds
      end
    end
  done;
  Mutex.lock t.qlock;
  t.q_closed <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  Array.iter Domain.join workers;
  drain_completions t;
  Hashtbl.iter (fun _ c -> close_quietly c.fd) t.conns;
  Hashtbl.reset t.conns;
  close_quietly t.listen_fd;
  close_quietly t.wake_r;
  close_quietly t.wake_w;
  if not t.draining then
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  t.cfg.log
    (Printf.sprintf "drained: %d completed, %d rejected" t.completed
       t.rejected)
