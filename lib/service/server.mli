(** The compile service: a long-running server answering
    {!Protocol} requests over a Unix-domain socket.

    One server owns one listening socket, one bounded FIFO admission
    queue and a fixed pool of compile workers (OCaml domains).  The
    accept/IO loop runs on the calling domain and is the {e only}
    domain that touches sockets, the server's metric registry and the
    server-side cache handle; workers only compile.  Life of a submit:

    + the IO loop reads the request line, parses it, and either
      enqueues a job (FIFO, bounded by [queue_depth]) or answers
      immediately with a structured [backpressure] error — admission
      never blocks the client behind other clients' work;
    + a worker dequeues the job and runs the full flow with a {e fresh
      per-request metric registry} (so no request's metrics or spans
      leak into another's) and a jobs budget of
      [jobs / workers] (so [workers] concurrent compiles never
      oversubscribe the configured domain budget);
    + the worker hands the finished response line back to the IO loop,
      which writes it out and folds the request's headline telemetry
      ([service.*] timers/counters, cache traffic) into the server
      registry;
    + a submit with [progress = true] additionally gets a per-request
      {!Obs.Events} sink: the worker publishes stage/iteration events
      into it while compiling, and the IO loop — the single consumer —
      drains it every pass, framing each event as one JSON line to the
      submitting connection (and any connection subscribed via the
      [watch] verb), heartbeating when the stream is silent, and
      flushing the tail of the stream before the final response line;
    + when the server runs over a cache with a byte budget, the IO loop
      runs {!Cache.Store.gc} after completions, so a daemon serving
      requests for days keeps the shared store under
      [cache_max_bytes].

    Graceful drain: {!initiate_shutdown} (called by the daemon's
    SIGTERM/SIGINT handlers, or by the [shutdown] verb) stops
    accepting connections and admitting work; queued and in-flight
    requests complete and their responses are flushed before {!run}
    returns.  All compiled outputs are bit-identical to standalone
    [amdrel_flow] runs of the same designs — the flow's determinism
    contract holds across process boundaries. *)

type config = {
  socket_path : string;  (** Unix-domain socket path; a stale socket
                             file from a dead server is replaced *)
  queue_depth : int;     (** admission-queue bound; further submits get
                             [code = "backpressure"] *)
  workers : int;         (** concurrent compile requests *)
  jobs : int;            (** total Domain budget; each request runs
                             with [max 1 (jobs / workers)] *)
  cache_max_bytes : int option;
      (** size bound for the shared store ({!Cache.Store.gc} after
          completions and at startup); [None] = unbounded *)
  heartbeat_s : float;
      (** progress-stream heartbeat cadence: a stream silent this long
          gets a synthetic [heartbeat] event so watchers can tell a
          long stage from a dead server *)
  flow : Core.Flow.config;
      (** base flow config — notably [cache_dir], the shared store.
          Per-request fields (seed, widths, timing, starts) are
          overridden by each submit; [jobs] is overridden by the server
          budget. *)
  log : string -> unit;  (** one line per lifecycle event (listen,
                             request completion, drain, eviction) *)
}

val default_config : config
(** [amdreld.sock], queue 32, 2 workers, the machine's default job
    count, unbounded cache, 1 s heartbeats, [Core.Flow.default_config]
    with the conventional [_amdrel_cache/] store, silent log. *)

type t

val create : config -> t
(** Bind and listen.  Replaces a leftover socket {e file} at
    [socket_path] only if it is a dead server's socket (refuses to
    unlink a non-socket).  Runs the startup cache scan (and, with
    [cache_max_bytes], the first eviction pass).  Ignores [SIGPIPE]
    process-wide (clients may vanish mid-response).
    @raise Unix.Unix_error when the socket cannot be bound. *)

val run : t -> unit
(** Serve until a drain completes: spawns the workers, runs the IO
    loop on the calling domain, and returns once
    {!initiate_shutdown} (or a [shutdown] verb) has been seen {e and}
    queued plus in-flight requests have completed and their responses
    flushed.  The socket is closed and unlinked on return. *)

val initiate_shutdown : t -> unit
(** Request a graceful drain.  Safe to call from a signal handler or
    another domain; returns immediately. *)
