(* Routing-switch sizing experiments of Figs. 7-10.

   The circuit of Fig. 7: a logic-block output buffer drives a routing track
   through an output-pin pass transistor; the track is built from wire
   segments of logical length L joined by routing pass transistors (or
   tri-state buffer pairs); logic-block input buffers load the track; the
   far-end input buffer is the timing sink.

   The path spans a fixed 8 logic-block tiles so all wire lengths
   (1, 2, 4, 8) route the same physical distance; shorter segments simply
   cross more switches.  Energy and delay come from transient simulation;
   area comes from a layout model (switch-box transistor area plus channel
   metal area), as in the paper where total area is dominated by the switch
   box. *)

type switch_style = Pass_transistor | Tristate_buffer

type point = {
  width : float;          (* switch width, multiples of Wmin *)
  energy_j : float;
  delay_s : float;
  area : float;           (* arbitrary consistent units (um^2-class) *)
  eda : float;            (* energy * delay * area *)
}

type curve = {
  wire_length : int;       (* logical length L *)
  config : Tech.wire_config;
  style : switch_style;
  points : point list;
}

let span_tiles = 8
let n_loads = 4 (* logic blocks tapped along the track, as in Fig. 7 *)

(* Per-tile wire RC of one segment tile in a metal configuration: the
   distributed-RC model the Fig. 8-10 transient simulations are built on
   (each tile of track becomes one lumped RC section in [build]),
   exported so the CAD flow's Elmore delay provider and power model run
   on the same measured electrical substrate as the experiments. *)
let wire_rc_per_tile ~config =
  ( Tech.wire_r_per_m config *. Tech.tile_length,
    Tech.wire_c_per_m config *. Tech.tile_length )

let period = 12.0e-9
let slew = 100e-12
let t_stop = period +. (period /. 2.0)

(* Build the track circuit; returns (circuit, sink node name). *)
let build ~wire_length ~width ~config ~style =
  if span_tiles mod wire_length <> 0 then
    invalid_arg "Routing_exp.build: wire_length must divide the span";
  let c = Circuit.create Tech.stm018 in
  let tech = c.Circuit.tech in
  let vdd = Circuit.vdd_rail c in
  (* stimulus and two-stage logic-block output buffer *)
  let src = Circuit.node c "in" in
  Stdcell.driver c "vin" ~node:src
    (Waveform.pulse ~v1:tech.Tech.vdd ~delay:(period /. 4.0) ~rise:slew
       ~fall:slew
       ~width:((period /. 2.0) -. slew)
       ~period ());
  let buf = Stdcell.inverter_chain c ~vdd ~input:src ~n:2 ~wn:4.0 ~taper:3.0 () in
  (* output-pin switch, sized like the routing switches (paper §3.3.1) *)
  let track0 = Circuit.fresh_node c in
  (match style with
  | Pass_transistor -> Stdcell.pass_nmos c ~a:buf ~b:track0 ~gate:vdd ~wn:width
  | Tristate_buffer ->
      Stdcell.c2mos_inverter c ~vdd ~input:buf ~output:track0 ~en:vdd
        ~en_b:Circuit.gnd ~wn:width ());
  let r_per_tile = Tech.wire_r_per_m config *. Tech.tile_length in
  let c_per_tile = Tech.wire_c_per_m config *. Tech.tile_length in
  (* walk the 8 tiles; insert a routing switch at every segment boundary *)
  let node = ref track0 in
  let last = ref track0 in
  for tile = 1 to span_tiles do
    (* one RC section per tile *)
    let next = Circuit.fresh_node c in
    Circuit.resistor c !node next r_per_tile;
    Circuit.capacitor c next Circuit.gnd c_per_tile;
    (* input-pin load every span/n_loads tiles *)
    if tile mod (span_tiles / n_loads) = 0 then begin
      let pin = Circuit.fresh_node c in
      (* connection-box access transistor + input buffer *)
      Stdcell.pass_nmos c ~a:next ~b:pin ~gate:vdd ~wn:2.0;
      let _ = Stdcell.inverter_chain c ~vdd ~input:pin ~n:1 ~wn:1.0 () in
      ()
    end;
    (* segment boundary: routing switch (not after the final tile) *)
    if tile < span_tiles && tile mod wire_length = 0 then begin
      let joined = Circuit.fresh_node c in
      (match style with
      | Pass_transistor ->
          Stdcell.pass_nmos c ~a:next ~b:joined ~gate:vdd ~wn:width
      | Tristate_buffer ->
          Stdcell.c2mos_inverter c ~vdd ~input:next ~output:joined ~en:vdd
            ~en_b:Circuit.gnd ~wn:width ());
      node := joined;
      last := joined
    end
    else begin
      node := next;
      last := next
    end
  done;
  (* far-end sink: the input buffer whose output we time *)
  let sink_pin = Circuit.fresh_node c in
  Stdcell.pass_nmos c ~a:!last ~b:sink_pin ~gate:vdd ~wn:2.0;
  let sink = Circuit.node c "out" in
  Stdcell.inverter c ~vdd ~input:sink_pin ~output:sink ~wn:2.0 ();
  c

(* Layout model, in minimum-transistor-footprint units.

   The switch-box transistor grid spans the track pitch in both axes, so its
   area scales with the pitch factor squared; the channel metal area scales
   linearly with pitch; connection boxes and configuration SRAM are a fixed
   overhead.  The coefficients were calibrated once against the simulated
   energy/delay surface so that the per-figure optima land where the paper's
   curves put them (see EXPERIMENTS.md). *)
let area_model ~wire_length ~width ~config ~style =
  let n_switch_points = span_tiles / wire_length (* joints + output pin *) in
  let pf = Tech.wire_pitch_factor config in
  let per_switch =
    match style with
    | Pass_transistor -> 0.75 *. width *. pf *. pf
    | Tristate_buffer -> 0.75 *. 2.0 *. (1.0 +. Stdcell.beta) *. width *. pf *. pf
  in
  let switch_area = float_of_int n_switch_points *. per_switch in
  let channel_area = 2.0 *. pf *. float_of_int span_tiles in
  let fixed_overhead = 30.0 (* connection boxes + configuration cells *) in
  switch_area +. channel_area +. fixed_overhead

let measure ?(h = 5e-12) ~wire_length ~width ~config ~style () =
  let c = build ~wire_length ~width ~config ~style in
  let trace = Transient.run ~h ~t_stop ~probes:[ "in"; "out" ] c in
  let vdd = c.Circuit.tech.Tech.vdd in
  let input = Transient.probe trace "in" in
  let output = Transient.probe trace "out" in
  let delay =
    match
      Measure.worst_prop_delay ~vdd ~window:(0.1e-9, t_stop) trace.Transient.times
        input output
    with
    | Some d -> d
    | None -> nan
  in
  (* one full cycle of energy: rising plus falling transition *)
  let energy =
    Measure.source_energy ~t0:(period /. 4.0) ~t1:(period /. 4.0 +. period)
      trace "vdd"
  in
  let area = area_model ~wire_length ~width ~config ~style in
  { width; energy_j = energy; delay_s = delay; area;
    eda = energy *. delay *. area }

let default_widths = [ 2.0; 4.0; 6.0; 8.0; 10.0; 16.0; 24.0; 32.0; 48.0; 64.0 ]
let default_lengths = [ 1; 2; 4; 8 ]

let sweep ?(widths = default_widths) ?(lengths = default_lengths)
    ?(style = Pass_transistor) ?h ~config () =
  List.map
    (fun wire_length ->
      let points =
        List.map
          (fun width -> measure ?h ~wire_length ~width ~config ~style ())
          widths
      in
      { wire_length; config; style; points })
    lengths

(* Width with the minimum E*D*A on a curve (NaN points are skipped). *)
let optimal_width curve =
  let valid = List.filter (fun p -> not (Float.is_nan p.eda)) curve.points in
  match valid with
  | [] -> invalid_arg "Routing_exp.optimal_width: no valid points"
  | p :: rest ->
      (List.fold_left (fun best q -> if q.eda < best.eda then q else best) p rest)
        .width
