(** Routing-switch sizing experiments of Figs. 7-10.

    The Fig. 7 circuit: a logic-block output buffer drives a routing track
    through an output-pin switch; the track is built from wire segments of
    logical length L joined by routing switches; logic-block input buffers
    load the track; the far-end input buffer is the timing sink.  The path
    spans a fixed 8 tiles so all wire lengths route the same distance.

    Energy and delay come from transient simulation; area from a layout
    model (switch area scales with width x pitch^2, plus channel metal and
    fixed overhead) calibrated once against the simulated energy/delay
    surface — see EXPERIMENTS.md. *)

type switch_style = Pass_transistor | Tristate_buffer

type point = {
  width : float;    (** switch width, multiples of Wmin *)
  energy_j : float;
  delay_s : float;
  area : float;     (** layout-model units *)
  eda : float;      (** energy x delay x area *)
}

type curve = {
  wire_length : int; (** logical length L *)
  config : Tech.wire_config;
  style : switch_style;
  points : point list;
}

val span_tiles : int
val n_loads : int

val wire_rc_per_tile : config:Tech.wire_config -> float * float
(** (R, C) of one segment tile in the given metal configuration — the
    same distributed-RC sections the Fig. 8-10 transient simulations
    lump per tile.  The CAD flow's Elmore provider ([Route.Timing]) and
    [Power.Model] consume these so routed-fabric delays and energies sit
    on the measured electrical substrate of the experiments. *)

val build :
  wire_length:int -> width:float -> config:Tech.wire_config ->
  style:switch_style -> Circuit.t
(** The experiment circuit for one operating point.
    @raise Invalid_argument if [wire_length] does not divide the span. *)

val area_model :
  wire_length:int -> width:float -> config:Tech.wire_config ->
  style:switch_style -> float

val measure :
  ?h:float -> wire_length:int -> width:float -> config:Tech.wire_config ->
  style:switch_style -> unit -> point
(** Simulate one operating point. *)

val default_widths : float list
val default_lengths : int list

val sweep :
  ?widths:float list -> ?lengths:int list -> ?style:switch_style ->
  ?h:float -> config:Tech.wire_config -> unit -> curve list
(** One figure's worth of curves. *)

val optimal_width : curve -> float
(** Width minimising E*D*A (NaN points skipped).
    @raise Invalid_argument if no point is valid. *)
