(* Forward/backward static timing over a levelized graph.

   Arrival times propagate level by level from the sources (inputs,
   constants, latch Q outputs); the backward pass computes, per signal,
   the worst *downstream* delay to any endpoint.  Required times are the
   derived view [required = dmax - downstream], anchored at the
   critical-path delay Dmax so the worst path has zero anchor-slack
   (VPR's convention).  Keeping the downstream form primary makes the
   backward data Dmax-independent, which is what lets {!update}
   re-propagate only through the fan-in/fan-out cones of moved blocks:
   a global Dmax shift rescales every criticality but dirties no
   per-node backward value.

   Criticality of a connection s -> u is the path length through it,
   P = arrival(s) + conn + t_logic + downstream(u), as a fraction of
   Dmax, clamped to [0, 1] — algebraically VPR's 1 - slack / Dmax.  The
   per-connection path lengths are cached per (net, sink) so a
   re-analysis after a few moves only re-extracts the rows of dirty
   nets; the division by the (possibly shifted) Dmax is recomputed for
   every row, it costs one flop per sink.

   The user-visible slack/WNS/TNS are measured against the effective
   period: the clock constraint, halved when the platform's
   double-edge-triggered flip-flops are in use (data must traverse in
   half a clock cycle), or Dmax itself when unconstrained.

   Wide levels propagate on the [Util.Parallel] Domain pool: nodes of a
   level depend only on strictly lower levels, so a level maps
   race-free; narrow levels (the common case inside the annealer's
   refresh loop) stay sequential to avoid domain-spawn overhead.  The
   per-net criticality extraction is threshold-gated the same way. *)

open Netlist

type constraints = {
  period : float option;
  detff : bool;
}

let default_constraints = { period = None; detff = true }

type t = {
  graph : Graph.t;
  provider : Delays.provider;
  constraints : constraints;
  arrival : float array;
  required : float array;
  downstream : float array;
  ep_arc : float array;
  endpoint_arrival : float array;
  dmax : float;
  budget : float;
  wns : float;
  tns : float;
  path_len : float array array;
  criticality : float array array;
  net_criticality : float array;
}

(* Levels narrower than this propagate sequentially: a Domain spawn per
   level costs more than it saves on small circuits (and the annealer's
   per-temperature refreshes run inside pool workers anyway, where
   [Util.Parallel.map] already degrades to sequential). *)
let par_threshold = 512

let map_level ?jobs compute level (dst : float array) =
  if Array.length level >= par_threshold then begin
    let vals = Util.Parallel.map ?jobs compute level in
    Array.iteri (fun i id -> dst.(id) <- vals.(i)) level
  end
  else Array.iter (fun id -> dst.(id) <- compute id) level

let clamp01 c = Float.min 1.0 (Float.max 0.0 c)

(* ---- shared kernels: run and update MUST compute every value through
   these so the incremental results are bit-identical to a fresh
   analysis ---- *)

let arrive (g : Graph.t) (p : Delays.provider) (arrival : float array) id =
  match Logic.driver g.Graph.net id with
  | Logic.Input | Logic.Const _ -> 0.0
  | Logic.Latch _ -> p.Delays.t_clk_q
  | Logic.Gate { fanins; _ } ->
      p.Delays.t_logic
      +. Array.fold_left
           (fun acc f -> Float.max acc (arrival.(f) +. p.Delays.conn f id))
           0.0 fanins

let endpoint_arrive (p : Delays.provider) (arrival : float array) = function
  | Graph.Reg_data { latch; data } ->
      arrival.(data) +. p.Delays.conn data latch +. p.Delays.t_setup
  | Graph.Pad_out { block; signal } ->
      arrival.(signal) +. p.Delays.pad signal block

(* Per-node worst endpoint arc: the delay an endpoint adds past the
   node's own arrival.  [neg_infinity] for non-endpoint signals. *)
let ep_arc_array (g : Graph.t) (p : Delays.provider) =
  let arc = Array.make g.Graph.n neg_infinity in
  Array.iter
    (function
      | Graph.Reg_data { latch; data } ->
          arc.(data) <-
            Float.max arc.(data)
              (p.Delays.conn data latch +. p.Delays.t_setup)
      | Graph.Pad_out { block; signal } ->
          arc.(signal) <-
            Float.max arc.(signal) (p.Delays.pad signal block))
    g.Graph.endpoints;
  arc

let downstream_of (g : Graph.t) (p : Delays.provider) (ep_arc : float array)
    (downstream : float array) id =
  List.fold_left
    (fun acc u ->
      Float.max acc (downstream.(u) +. p.Delays.t_logic +. p.Delays.conn id u))
    ep_arc.(id) g.Graph.consumers.(id)

(* Worst path length through each connection of a net: for a pad sink
   the net signal's own worst path; for a logic sink the worst over the
   signals consumed there of arrival + conn + logic + downstream.
   [neg_infinity] when no endpoint lies downstream (criticality 0). *)
let path_len_row (g : Graph.t) (p : Delays.provider) (arrival : float array)
    (downstream : float array) ni =
  let net = g.Graph.problem.Place.Problem.nets.(ni) in
  let s = net.Place.Problem.signal in
  Array.map
    (fun sink_block ->
      match g.Graph.problem.Place.Problem.blocks.(sink_block) with
      | Place.Problem.Output_pad _ -> arrival.(s) +. downstream.(s)
      | _ ->
          let users =
            Option.value
              (Hashtbl.find_opt g.Graph.consumers_at (s, sink_block))
              ~default:[]
          in
          List.fold_left
            (fun acc u ->
              Float.max acc
                (arrival.(s) +. p.Delays.conn s u +. p.Delays.t_logic
                +. downstream.(u)))
            neg_infinity users)
    net.Place.Problem.sinks

let crit_row dmax row = Array.map (fun pl -> clamp01 (pl /. dmax)) row

let wns_tns budget endpoint_arrival =
  let wns, tns =
    Array.fold_left
      (fun (wns, tns) a ->
        let slack = budget -. a in
        (Float.min wns slack, tns +. Float.min 0.0 slack))
      (infinity, 0.0) endpoint_arrival
  in
  ((if wns = infinity then 0.0 else wns), tns)

let budget_of constraints dmax =
  match constraints.period with
  | None -> dmax
  | Some period -> if constraints.detff then period /. 2.0 else period

(* Per-net map, threshold-gated like the level sweeps: rows are
   independent and come back in input order, so the result is identical
   for any [jobs]. *)
let map_nets ?jobs f nets =
  if Array.length nets >= par_threshold then Util.Parallel.map ?jobs f nets
  else Array.map f nets

let run ?(constraints = default_constraints) ?jobs ?obs (g : Graph.t)
    (p : Delays.provider) =
  (* phase timers answer ROADMAP's profiling question (where does an
     analysis spend its time?); they accumulate across the many [run]
     calls of a flow (annealer refreshes, pre- and post-route) into the
     sta.phase.* keys of the caller's registry *)
  let phase key f =
    match obs with Some o -> Obs.Registry.time o key f | None -> f ()
  in
  let observe key v =
    match obs with Some o -> Obs.Registry.observe o key v | None -> ()
  in
  let n = g.Graph.n in
  (* ---- forward: arrival times, level by level ---- *)
  let arrival = Array.make n 0.0 in
  phase "sta.phase.forward" (fun () ->
      Obs.Span.with_ ~name:"sta.forward" (fun () ->
          Array.iteri
            (fun li level ->
              observe "sta.level-nodes" (float_of_int (Array.length level));
              Obs.Span.with_ ~name:"sta.level"
                ~args:
                  [
                    ("level", Obs.Emit.Int li);
                    ("nodes", Obs.Emit.Int (Array.length level));
                  ]
                (fun () -> map_level ?jobs (arrive g p arrival) level arrival))
            g.Graph.levels));
  (* ---- endpoint arrivals and the critical path ---- *)
  let endpoint_arrival =
    phase "sta.phase.endpoints" (fun () ->
        Array.map (endpoint_arrive p arrival) g.Graph.endpoints)
  in
  let dmax = Array.fold_left Float.max 1e-12 endpoint_arrival in
  (* ---- backward: downstream-to-endpoint delays, pulled level by level
     from each node's consumers (race-free: a consumer is always at a
     strictly higher level); required is the dmax-anchored view ---- *)
  let ep_arc = ep_arc_array g p in
  let downstream = Array.make n neg_infinity in
  phase "sta.phase.backward" (fun () ->
      Obs.Span.with_ ~name:"sta.backward" (fun () ->
          for l = Array.length g.Graph.levels - 1 downto 0 do
            Obs.Span.with_ ~name:"sta.level"
              ~args:
                [
                  ("level", Obs.Emit.Int l);
                  ("nodes", Obs.Emit.Int (Array.length g.Graph.levels.(l)));
                ]
              (fun () ->
                map_level ?jobs
                  (downstream_of g p ep_arc downstream)
                  g.Graph.levels.(l) downstream)
          done));
  let required = Array.map (fun d -> dmax -. d) downstream in
  (* ---- effective timing budget, WNS / TNS ---- *)
  let budget = budget_of constraints dmax in
  let wns, tns =
    phase "sta.phase.endpoints" (fun () -> wns_tns budget endpoint_arrival)
  in
  (* ---- per-connection criticality, mirroring the T-VPlace shape:
     for each net, for each sink block, the worst path length through
     the connection as a fraction of dmax ---- *)
  let path_len =
    phase "sta.phase.criticality" (fun () ->
        map_nets ?jobs
          (fun ni -> path_len_row g p arrival downstream ni)
          (Array.init (Array.length g.Graph.problem.Place.Problem.nets) Fun.id))
  in
  let criticality =
    phase "sta.phase.criticality" (fun () -> Array.map (crit_row dmax) path_len)
  in
  let net_criticality =
    phase "sta.phase.criticality" (fun () ->
        Array.map (Array.fold_left Float.max 0.0) criticality)
  in
  {
    graph = g;
    provider = p;
    constraints;
    arrival;
    required;
    downstream;
    ep_arc;
    endpoint_arrival;
    dmax;
    budget;
    wns;
    tns;
    path_len;
    criticality;
    net_criticality;
  }

(* ---- incremental re-analysis ----

   After a placement change only the arcs incident to moved blocks carry
   new delays, so arrival times can only change inside the fan-out cones
   of the signals those blocks produce, and downstream delays only
   inside the fan-in cones.  Propagation stops the moment a recomputed
   value equals the stored one (float equality is exact here: an
   untouched node's inputs are bit-identical, so its recomputation is
   too).  Endpoint arrivals, dmax, wns/tns and required are recomputed
   outright — they are O(endpoints + n) folds, negligible next to the
   per-level sweeps and the criticality extraction this path avoids. *)
let update ?jobs ?obs ~changed_blocks (prev : t) (p : Delays.provider) =
  let g = prev.graph in
  let n = g.Graph.n in
  let touched = ref 0 in
  (match obs with
  | Some o ->
      Obs.Registry.incr ~by:(List.length changed_blocks) o "sta.incr.cones"
  | None -> ());
  let n_blocks = Array.length g.Graph.problem.Place.Problem.blocks in
  if 4 * List.length changed_blocks >= n_blocks then begin
    (* degenerate cone: a quarter or more of the blocks moved (the bulk
       of an annealing schedule, where most proposals are accepted), so
       nearly the whole graph is dirty and the pending-set bookkeeping
       would cost more than it saves.  A fresh full pass computes the
       same values through the same kernels — still bit-identical, and
       never slower than the cone walk. *)
    (match obs with
    | Some o -> Obs.Registry.incr ~by:n o "sta.incr.nodes-touched"
    | None -> ());
    run ~constraints:prev.constraints ?jobs ?obs g p
  end
  else begin
  let arrival = prev.arrival in
  let downstream = prev.downstream in
  let n_levels = Array.length g.Graph.levels in
  (* pending-node buckets, one per level; a node enters at most once *)
  let pending = Array.make n false in
  let buckets = Array.make n_levels [] in
  let push id =
    if not pending.(id) then begin
      pending.(id) <- true;
      let l = g.Graph.level_of.(id) in
      buckets.(l) <- id :: buckets.(l)
    end
  in
  let arr_changed = Array.make n false in
  (* ---- forward cone: signals of moved blocks (their input arcs
     changed) and consumers of those signals (one input arc changed) *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          push s;
          List.iter push g.Graph.consumers.(s))
        g.Graph.produced_by.(b))
    changed_blocks;
  for l = 0 to n_levels - 1 do
    List.iter
      (fun id ->
        pending.(id) <- false;
        incr touched;
        let v = arrive g p arrival id in
        if v <> arrival.(id) then begin
          arrival.(id) <- v;
          arr_changed.(id) <- true;
          List.iter push g.Graph.consumers.(id)
        end)
      buckets.(l);
    buckets.(l) <- []
  done;
  (* ---- endpoints and dmax: full recompute, same folds as [run] *)
  let endpoint_arrival = prev.endpoint_arrival in
  Array.iteri
    (fun i ep -> endpoint_arrival.(i) <- endpoint_arrive p arrival ep)
    g.Graph.endpoints;
  let dmax = Array.fold_left Float.max 1e-12 endpoint_arrival in
  (* ---- backward cone: nodes whose endpoint arc or outgoing arcs
     changed, plus fanins of signals in moved blocks *)
  let ep_arc = ep_arc_array g p in
  let d_changed = Array.make n false in
  Array.iter
    (fun ep ->
      let s = Graph.endpoint_signal ep in
      if ep_arc.(s) <> prev.ep_arc.(s) then push s)
    g.Graph.endpoints;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          push s;
          Array.iter push g.Graph.fanins_of.(s))
        g.Graph.produced_by.(b))
    changed_blocks;
  for l = n_levels - 1 downto 0 do
    List.iter
      (fun id ->
        pending.(id) <- false;
        incr touched;
        let v = downstream_of g p ep_arc downstream id in
        if v <> downstream.(id) then begin
          downstream.(id) <- v;
          d_changed.(id) <- true;
          Array.iter push g.Graph.fanins_of.(id)
        end)
      buckets.(l);
    buckets.(l) <- []
  done;
  let required = prev.required in
  for id = 0 to n - 1 do
    required.(id) <- dmax -. downstream.(id)
  done;
  let budget = budget_of prev.constraints dmax in
  let wns, tns = wns_tns budget endpoint_arrival in
  (* ---- lazy criticality: re-extract path lengths only for dirty nets
     (touched by a moved block, or carrying a changed arrival /
     feeding a changed downstream); every row then rescales by the new
     dmax, one division per sink *)
  let n_nets = Array.length g.Graph.problem.Place.Problem.nets in
  let dirty = Array.make n_nets false in
  let mark ni = if ni >= 0 then dirty.(ni) <- true in
  List.iter
    (fun b -> List.iter mark g.Graph.nets_of_block.(b))
    changed_blocks;
  for s = 0 to n - 1 do
    if arr_changed.(s) then mark g.Graph.net_of_signal.(s);
    if d_changed.(s) then begin
      mark g.Graph.net_of_signal.(s);
      Array.iter
        (fun f -> mark g.Graph.net_of_signal.(f))
        g.Graph.fanins_of.(s)
    end
  done;
  let dirty_nets =
    let acc = ref [] in
    for ni = n_nets - 1 downto 0 do
      if dirty.(ni) then acc := ni :: !acc
    done;
    Array.of_list !acc
  in
  let fresh_rows =
    map_nets ?jobs (fun ni -> path_len_row g p arrival downstream ni) dirty_nets
  in
  let path_len = Array.copy prev.path_len in
  Array.iteri (fun i ni -> path_len.(ni) <- fresh_rows.(i)) dirty_nets;
  let criticality = Array.map (crit_row dmax) path_len in
  let net_criticality = Array.map (Array.fold_left Float.max 0.0) criticality in
  (match obs with
  | Some o -> Obs.Registry.incr ~by:!touched o "sta.incr.nodes-touched"
  | None -> ());
  {
    prev with
    provider = p;
    arrival;
    required;
    downstream;
    ep_arc;
    endpoint_arrival;
    dmax;
    budget;
    wns;
    tns;
    path_len;
    criticality;
    net_criticality;
  }
  end

let endpoint_slack a i = a.budget -. a.endpoint_arrival.(i)

let to_td (a : t) =
  { Place.Td_timing.dmax = a.dmax; criticality = a.criticality }
