(* Forward/backward static timing over a levelized graph.

   Arrival times propagate level by level from the sources (inputs,
   constants, latch Q outputs); required times propagate back from the
   endpoints, anchored at the critical-path delay Dmax so the worst path
   has zero anchor-slack (VPR's convention — criticality then falls out
   as 1 - slack / Dmax regardless of the external constraint).  The
   user-visible slack/WNS/TNS are measured against the effective period:
   the clock constraint, halved when the platform's double-edge-triggered
   flip-flops are in use (data must traverse in half a clock cycle), or
   Dmax itself when unconstrained.

   Wide levels propagate on the [Util.Parallel] Domain pool: nodes of a
   level depend only on strictly lower levels, so a level maps
   race-free; narrow levels (the common case inside the annealer's
   refresh loop) stay sequential to avoid domain-spawn overhead. *)

open Netlist

type constraints = {
  period : float option;
  detff : bool;
}

let default_constraints = { period = None; detff = true }

type t = {
  graph : Graph.t;
  provider : Delays.provider;
  constraints : constraints;
  arrival : float array;
  required : float array;
  endpoint_arrival : float array;
  dmax : float;
  budget : float;
  wns : float;
  tns : float;
  criticality : float array array;
  net_criticality : float array;
}

(* Levels narrower than this propagate sequentially: a Domain spawn per
   level costs more than it saves on small circuits (and the annealer's
   per-temperature refreshes run inside pool workers anyway, where
   [Util.Parallel.map] already degrades to sequential). *)
let par_threshold = 512

let map_level ?jobs compute level (dst : float array) =
  if Array.length level >= par_threshold then begin
    let vals = Util.Parallel.map ?jobs compute level in
    Array.iteri (fun i id -> dst.(id) <- vals.(i)) level
  end
  else Array.iter (fun id -> dst.(id) <- compute id) level

let clamp01 c = Float.min 1.0 (Float.max 0.0 c)

let run ?(constraints = default_constraints) ?jobs ?obs (g : Graph.t)
    (p : Delays.provider) =
  (* phase timers answer ROADMAP's profiling question (where does an
     analysis spend its time?); they accumulate across the many [run]
     calls of a flow (annealer refreshes, pre- and post-route) into the
     sta.phase.* keys of the caller's registry *)
  let phase key f =
    match obs with Some o -> Obs.Registry.time o key f | None -> f ()
  in
  let observe key v =
    match obs with Some o -> Obs.Registry.observe o key v | None -> ()
  in
  let n = g.Graph.n in
  let net = g.Graph.net in
  (* ---- forward: arrival times, level by level ---- *)
  let arrival = Array.make n 0.0 in
  let arrive id =
    match Logic.driver net id with
    | Logic.Input | Logic.Const _ -> 0.0
    | Logic.Latch _ -> p.Delays.t_clk_q
    | Logic.Gate { fanins; _ } ->
        p.Delays.t_logic
        +. Array.fold_left
             (fun acc f -> Float.max acc (arrival.(f) +. p.Delays.conn f id))
             0.0 fanins
  in
  phase "sta.phase.forward" (fun () ->
      Obs.Span.with_ ~name:"sta.forward" (fun () ->
          Array.iteri
            (fun li level ->
              observe "sta.level-nodes" (float_of_int (Array.length level));
              Obs.Span.with_ ~name:"sta.level"
                ~args:
                  [
                    ("level", Obs.Emit.Int li);
                    ("nodes", Obs.Emit.Int (Array.length level));
                  ]
                (fun () -> map_level ?jobs arrive level arrival))
            g.Graph.levels));
  (* ---- endpoint arrivals and the critical path ---- *)
  let endpoint_arrival =
    phase "sta.phase.endpoints" (fun () ->
        Array.map
          (function
            | Graph.Reg_data { latch; data } ->
                arrival.(data) +. p.Delays.conn data latch +. p.Delays.t_setup
            | Graph.Pad_out { block; signal } ->
                arrival.(signal) +. p.Delays.pad signal block)
          g.Graph.endpoints)
  in
  let dmax = Array.fold_left Float.max 1e-12 endpoint_arrival in
  (* ---- backward: required times anchored at dmax, pulled level by
     level from each node's consumers (race-free: a consumer is always
     at a strictly higher level) ---- *)
  let required = Array.make n infinity in
  phase "sta.phase.backward" (fun () ->
      Obs.Span.with_ ~name:"sta.backward" (fun () ->
          let ep_contrib = Array.make n infinity in
          Array.iter
            (function
              | Graph.Reg_data { latch; data } ->
                  ep_contrib.(data) <-
                    Float.min ep_contrib.(data)
                      (dmax -. p.Delays.conn data latch -. p.Delays.t_setup)
              | Graph.Pad_out { block; signal } ->
                  ep_contrib.(signal) <-
                    Float.min ep_contrib.(signal)
                      (dmax -. p.Delays.pad signal block))
            g.Graph.endpoints;
          let require id =
            List.fold_left
              (fun acc u ->
                Float.min acc
                  (required.(u) -. p.Delays.t_logic -. p.Delays.conn id u))
              ep_contrib.(id) g.Graph.consumers.(id)
          in
          for l = Array.length g.Graph.levels - 1 downto 0 do
            Obs.Span.with_ ~name:"sta.level"
              ~args:
                [
                  ("level", Obs.Emit.Int l);
                  ("nodes", Obs.Emit.Int (Array.length g.Graph.levels.(l)));
                ]
              (fun () -> map_level ?jobs require g.Graph.levels.(l) required)
          done));
  (* ---- effective timing budget, WNS / TNS ---- *)
  let budget =
    match constraints.period with
    | None -> dmax
    | Some period -> if constraints.detff then period /. 2.0 else period
  in
  let wns, tns =
    phase "sta.phase.endpoints" (fun () ->
        Array.fold_left
          (fun (wns, tns) a ->
            let slack = budget -. a in
            (Float.min wns slack, tns +. Float.min 0.0 slack))
          (infinity, 0.0) endpoint_arrival)
  in
  let wns = if wns = infinity then 0.0 else wns in
  (* ---- per-connection criticality, mirroring the T-VPlace shape:
     for each net, for each sink block, the worst criticality over the
     signals consumed there ---- *)
  let crit_of_connection s sink_block =
    let users =
      Option.value
        (Hashtbl.find_opt g.Graph.consumers_at (s, sink_block))
        ~default:[]
    in
    List.fold_left
      (fun acc u ->
        let slack =
          required.(u) -. p.Delays.t_logic -. p.Delays.conn s u -. arrival.(s)
        in
        let c = 1.0 -. (Float.max 0.0 slack /. dmax) in
        Float.max acc (clamp01 c))
      0.0 users
  in
  let criticality =
    phase "sta.phase.criticality" @@ fun () ->
    Array.map
      (fun (net : Place.Problem.net) ->
        Array.map
          (fun sink_block ->
            match g.Graph.problem.Place.Problem.blocks.(sink_block) with
            | Place.Problem.Output_pad _ ->
                let slack =
                  required.(net.Place.Problem.signal)
                  -. arrival.(net.Place.Problem.signal)
                in
                clamp01 (1.0 -. (Float.max 0.0 slack /. dmax))
            | _ -> crit_of_connection net.Place.Problem.signal sink_block)
          net.Place.Problem.sinks)
      g.Graph.problem.Place.Problem.nets
  in
  let net_criticality =
    phase "sta.phase.criticality" (fun () ->
        Array.map (Array.fold_left Float.max 0.0) criticality)
  in
  {
    graph = g;
    provider = p;
    constraints;
    arrival;
    required;
    endpoint_arrival;
    dmax;
    budget;
    wns;
    tns;
    criticality;
    net_criticality;
  }

let endpoint_slack a i = a.budget -. a.endpoint_arrival.(i)

let to_td (a : t) =
  { Place.Td_timing.dmax = a.dmax; criticality = a.criticality }
