(** Forward/backward static timing over a levelized graph.

    Arrival times propagate level by level from the sources; required
    times propagate back from the endpoints, anchored at the
    critical-path delay Dmax (VPR's zero-slack convention, from which
    criticality = 1 - slack / Dmax).  User-visible slack, WNS and TNS
    are measured against the effective period: the clock constraint,
    {e halved} when the platform's double-edge-triggered flip-flops are
    in use (data must traverse in half a clock cycle), or Dmax itself
    when unconstrained.

    Wide levels propagate on the [Util.Parallel] Domain pool — nodes of
    a level depend only on strictly lower levels, so a level maps
    race-free; narrow levels stay sequential.  Results are identical for
    any [jobs]. *)

type constraints = {
  period : float option;
      (** clock period, s; [None] = unconstrained (zero-slack at Dmax) *)
  detff : bool;
      (** double-edge-triggered flip-flops: data is captured on both
          clock edges, so the combinational budget is [period / 2] *)
}

val default_constraints : constraints
(** Unconstrained, DETFF clocking (the platform's BLE design). *)

type t = {
  graph : Graph.t;
  provider : Delays.provider;
  constraints : constraints;
  arrival : float array;            (** per signal, s *)
  required : float array;
      (** per signal, anchored at {!field-dmax}; [infinity] for signals
          on no endpoint-bound path *)
  endpoint_arrival : float array;   (** aligned with [graph.endpoints] *)
  dmax : float;                     (** critical-path delay, s *)
  budget : float;
      (** effective timing budget: [period] (halved under DETFF) or
          [dmax] when unconstrained *)
  wns : float;  (** worst negative slack vs [budget] (0 when unconstrained) *)
  tns : float;  (** total negative slack vs [budget], <= 0 *)
  criticality : float array array;
      (** per (net index, sink position), in [0,1] — the same shape
          [Place.Td_timing.analysis] exposes *)
  net_criticality : float array;
      (** per net: worst sink criticality (the router's weight) *)
}

val run :
  ?constraints:constraints -> ?jobs:int -> ?obs:Obs.Registry.t ->
  Graph.t -> Delays.provider -> t
(** One full analysis.  The graph and provider are only read, so
    concurrent [run]s on the same graph are safe.  [obs] accumulates the
    ["sta.phase.forward"/"backward"/"endpoints"/"criticality"] timers
    (summed over every [run] a flow performs) and the
    ["sta.level-nodes"] histogram; the forward and backward sweeps also
    emit ["sta.forward"]/["sta.backward"] spans with one ["sta.level"]
    child per level into the ambient {!Obs.Span} trace. *)

val endpoint_slack : t -> int -> float
(** Slack of endpoint [i] against the effective budget (negative =
    violated).  Monotone in the period: increasing the constraint can
    only increase every slack. *)

val to_td : t -> Place.Td_timing.analysis
(** The analysis in [Place.Td_timing]'s record shape, for the
    annealer's timing hook. *)
