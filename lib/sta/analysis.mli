(** Forward/backward static timing over a levelized graph.

    Arrival times propagate level by level from the sources; required
    times propagate back from the endpoints, anchored at the
    critical-path delay Dmax (VPR's zero-slack convention, from which
    criticality = 1 - slack / Dmax).  User-visible slack, WNS and TNS
    are measured against the effective period: the clock constraint,
    {e halved} when the platform's double-edge-triggered flip-flops are
    in use (data must traverse in half a clock cycle), or Dmax itself
    when unconstrained.

    Wide levels propagate on the [Util.Parallel] Domain pool — nodes of
    a level depend only on strictly lower levels, so a level maps
    race-free; narrow levels stay sequential.  Results are identical for
    any [jobs]. *)

type constraints = {
  period : float option;
      (** clock period, s; [None] = unconstrained (zero-slack at Dmax) *)
  detff : bool;
      (** double-edge-triggered flip-flops: data is captured on both
          clock edges, so the combinational budget is [period / 2] *)
}

val default_constraints : constraints
(** Unconstrained, DETFF clocking (the platform's BLE design). *)

type t = {
  graph : Graph.t;
  provider : Delays.provider;
  constraints : constraints;
  arrival : float array;            (** per signal, s *)
  required : float array;
      (** per signal, anchored at {!field-dmax}; [infinity] for signals
          on no endpoint-bound path.  The derived view
          [dmax -. downstream]. *)
  downstream : float array;
      (** per signal: worst delay from the signal's output to any
          endpoint ([neg_infinity] when none lies downstream).  The
          primary backward result; Dmax-independent, which is what lets
          {!update} confine re-propagation to moved-block cones *)
  ep_arc : float array;
      (** per signal: worst endpoint arc leaving it (setup / pad
          delay); [neg_infinity] for non-endpoint signals *)
  endpoint_arrival : float array;   (** aligned with [graph.endpoints] *)
  dmax : float;                     (** critical-path delay, s *)
  budget : float;
      (** effective timing budget: [period] (halved under DETFF) or
          [dmax] when unconstrained *)
  wns : float;  (** worst negative slack vs [budget] (0 when unconstrained) *)
  tns : float;  (** total negative slack vs [budget], <= 0 *)
  path_len : float array array;
      (** per (net index, sink position): worst endpoint-to-endpoint
          path length through that connection, s; criticality is this
          over [dmax], cached so {!update} re-extracts only dirty nets *)
  criticality : float array array;
      (** per (net index, sink position), in [0,1] — the same shape
          [Place.Td_timing.analysis] exposes *)
  net_criticality : float array;
      (** per net: worst sink criticality (the router's weight) *)
}

val run :
  ?constraints:constraints -> ?jobs:int -> ?obs:Obs.Registry.t ->
  Graph.t -> Delays.provider -> t
(** One full analysis.  The graph and provider are only read, so
    concurrent [run]s on the same graph are safe.  [obs] accumulates the
    ["sta.phase.forward"/"backward"/"endpoints"/"criticality"] timers
    (summed over every [run] a flow performs) and the
    ["sta.level-nodes"] histogram; the forward and backward sweeps also
    emit ["sta.forward"]/["sta.backward"] spans with one ["sta.level"]
    child per level into the ambient {!Obs.Span} trace. *)

val update :
  ?jobs:int -> ?obs:Obs.Registry.t -> changed_blocks:int list ->
  t -> Delays.provider -> t
(** [update ~changed_blocks prev p] re-analyzes after a placement
    change, assuming [p] differs from [prev.provider] only on arcs
    incident to [changed_blocks] (the contract the placement-distance
    provider satisfies when exactly those blocks moved).  Arrival and
    downstream times re-propagate only through the fan-in/fan-out cones
    of the moved blocks' signals, stopping where a recomputed value is
    bit-equal to the stored one; criticality is re-extracted only for
    dirty nets and rescaled against the new Dmax everywhere.  The
    result is {e bit-identical} to a fresh {!run} on the same graph and
    provider, for any [jobs].

    [prev] is consumed: its arrays are reused in place, so only the
    returned analysis may be used afterwards.  [obs] accumulates the
    ["sta.incr.cones"] (moved blocks) and ["sta.incr.nodes-touched"]
    (cone nodes re-evaluated) counters. *)

val endpoint_slack : t -> int -> float
(** Slack of endpoint [i] against the effective budget (negative =
    violated).  Monotone in the period: increasing the constraint can
    only increase every slack. *)

val to_td : t -> Place.Td_timing.analysis
(** The analysis in [Place.Td_timing]'s record shape, for the
    annealer's timing hook. *)
