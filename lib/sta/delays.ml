(* Pluggable delay providers for the STA engine.

   A provider answers "how long does this connection take?" for every
   arc of the timing graph; the engine itself is provider-agnostic.  The
   flow uses two: the placement-distance provider below (pre-route, the
   linear per-tile model T-VPlace uses) and the routed-Elmore provider
   built by [Route.Sta_provider] from the actual routing trees. *)

type provider = {
  name : string;
  (** provider identity, carried into timing reports *)
  conn : int -> int -> float;
  (** [conn src dst]: interconnect delay of the connection from signal
      [src] to consuming signal [dst], s *)
  pad : int -> int -> float;
  (** [pad src block]: delay from signal [src] to the output pad at
      block index [block], s *)
  t_logic : float;  (** LUT + local-interconnect delay, s *)
  t_clk_q : float;  (** flip-flop clock-to-Q, s *)
  t_setup : float;  (** flip-flop setup, s *)
}

(* Placement-distance provider: the linear per-tile model of
   [Place.Td_timing], expressed as a provider.  Connections between
   signals produced and consumed in the same block cost the local
   feedback delay; inter-block hops cost a fixed pin/buffer overhead
   plus a per-Manhattan-tile term.  Signals with no known producing
   block (LUT outputs folded into a merged BLE) stay local. *)
let of_placement ?(model = Place.Td_timing.default_model) ?producer
    (problem : Place.Problem.t) ~coords =
  let {
    Place.Td_timing.t_local;
    t_per_tile;
    t_fixed;
    t_logic;
    t_clk_q;
    t_setup;
  } =
    model
  in
  let producer =
    (* building the producing-block table is O(signals); callers that
       refresh the provider every temperature step (the annealer's
       incremental hook) pass the graph's shared table instead *)
    match producer with
    | Some tbl -> tbl
    | None -> Place.Td_timing.block_of_signal problem
  in
  let hop a b =
    let ax, ay = coords a and bx, by = coords b in
    t_fixed +. (t_per_tile *. float_of_int (abs (ax - bx) + abs (ay - by)))
  in
  let conn src dst =
    match (Hashtbl.find_opt producer src, Hashtbl.find_opt producer dst) with
    | Some a, Some b when a = b -> t_local
    | Some a, Some b -> hop a b
    | _ -> t_local
  in
  let pad src block =
    match Hashtbl.find_opt producer src with
    | Some a when a <> block -> hop a block
    | _ -> t_local
  in
  { name = "placement-distance"; conn; pad; t_logic; t_clk_q; t_setup }
