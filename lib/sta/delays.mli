(** Pluggable delay providers for the STA engine.

    A provider answers "how long does this connection take?" for every
    arc of the timing graph, which keeps the propagation engine
    independent of where the delays come from.  Two providers cover the
    flow: the placement-distance provider here (pre-route) and the
    routed-Elmore provider built by [Route.Sta_provider] from the actual
    routing trees (post-route). *)

type provider = {
  name : string;  (** provider identity, carried into timing reports *)
  conn : int -> int -> float;
      (** [conn src dst]: interconnect delay of the connection from
          signal [src] to consuming signal [dst], s *)
  pad : int -> int -> float;
      (** [pad src block]: delay from signal [src] to the output pad at
          block index [block], s *)
  t_logic : float;  (** LUT + local-interconnect delay, s *)
  t_clk_q : float;  (** flip-flop clock-to-Q, s *)
  t_setup : float;  (** flip-flop setup, s *)
}

val of_placement :
  ?model:Place.Td_timing.delay_model ->
  ?producer:(int, int) Hashtbl.t ->
  Place.Problem.t ->
  coords:(int -> int * int) ->
  provider
(** The pre-route provider: the linear per-tile distance model of
    [Place.Td_timing] (same-block connections cost the local feedback
    delay, inter-block hops a fixed overhead plus a per-Manhattan-tile
    term), closed over the given block [coords].  Safe to share across
    domains: it only reads the problem and the coordinates.

    [producer] supplies the signal-to-producing-block table instead of
    rebuilding it (pass [Sta.Graph.block_of] when a timing graph exists;
    the table is only read).  Rebuilding per provider is wasteful for
    callers that refresh delays every annealing temperature. *)
