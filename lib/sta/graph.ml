(* Levelized timing graph over the packed netlist.

   Nodes are the signals of the mapped network (every BLE pin carries
   exactly one signal, so this is the BLE-pin graph of the packing);
   edges are the combinational arcs (fanin -> gate) plus the sequential
   endpoint arcs (data -> latch setup, signal -> output pad).  The graph
   is provider-independent and placement-independent: it is built once
   per packing and shared by every analysis — pre-route, post-route, and
   the per-temperature refreshes inside the annealer. *)

open Netlist

type endpoint =
  | Reg_data of { latch : int; data : int }
  | Pad_out of { block : int; signal : int }

type t = {
  problem : Place.Problem.t;
  net : Logic.t;
  n : int;
  levels : int array array;
  level_of : int array;
  consumers : int list array;
  consumers_at : (int * int, int list) Hashtbl.t;
  block_of : (int, int) Hashtbl.t;
  endpoints : endpoint array;
  (* incremental-update support: the inverse maps that bound a moved
     block's fan-in/fan-out cones *)
  fanins_of : int array array;
  produced_by : int list array;
  net_of_signal : int array;
  nets_of_block : int list array;
}

let depth g = Array.length g.levels - 1

let endpoint_name g = function
  | Reg_data { latch; _ } -> Logic.name g.net latch
  | Pad_out { block; _ } -> Place.Problem.block_name g.problem block

let endpoint_signal = function
  | Reg_data { data; _ } -> data
  | Pad_out { signal; _ } -> signal

let build (problem : Place.Problem.t) =
  let net = problem.Place.Problem.packing.Pack.Cluster.net in
  let n = Logic.signal_count net in
  let order = Logic.topo_order net in
  (* levelization: sources at 0, a gate one past its deepest fanin *)
  let level_of = Array.make n 0 in
  List.iter
    (fun id ->
      match Logic.driver net id with
      | Logic.Gate { fanins; _ } ->
          level_of.(id) <-
            1 + Array.fold_left (fun acc f -> max acc level_of.(f)) 0 fanins
      | Logic.Input | Logic.Const _ | Logic.Latch _ -> level_of.(id) <- 0)
    order;
  let depth = Array.fold_left max 0 level_of in
  let buckets = Array.make (depth + 1) [] in
  for id = n - 1 downto 0 do
    buckets.(level_of.(id)) <- id :: buckets.(level_of.(id))
  done;
  let levels = Array.map Array.of_list buckets in
  (* combinational consumers, ascending id per signal (the backward pass
     pulls required times through these) *)
  let consumers = Array.make n [] in
  for id = n - 1 downto 0 do
    match Logic.driver net id with
    | Logic.Gate { fanins; _ } ->
        Array.iter (fun f -> consumers.(f) <- id :: consumers.(f)) fanins
    | _ -> ()
  done;
  let block_of = Place.Td_timing.block_of_signal problem in
  (* (signal, consuming block) -> consuming signal ids, mirroring the
     construction criticality extraction groups connections by *)
  let consumers_at = Hashtbl.create 64 in
  for id = 0 to n - 1 do
    List.iter
      (fun f ->
        match Hashtbl.find_opt block_of id with
        | Some b ->
            let key = (f, b) in
            let cur =
              Option.value (Hashtbl.find_opt consumers_at key) ~default:[]
            in
            Hashtbl.replace consumers_at key (id :: cur)
        | None -> ())
      (Logic.fanins net id)
  done;
  (* endpoints: latch data pins (declaration order), then output pads
     (ascending block index) *)
  let eps = ref [] in
  Array.iteri
    (fun bidx kind ->
      match kind with
      | Place.Problem.Output_pad s ->
          eps := Pad_out { block = bidx; signal = s } :: !eps
      | _ -> ())
    problem.Place.Problem.blocks;
  List.iter
    (fun l ->
      match Logic.driver net l with
      | Logic.Latch { data; _ } -> eps := Reg_data { latch = l; data } :: !eps
      | _ -> ())
    (List.rev (Logic.latches net));
  let endpoints = Array.of_list !eps in
  (* combinational fanins per signal (empty for sources), shared with the
     Logic network — read-only, like every other table here *)
  let fanins_of =
    Array.init n (fun id ->
        match Logic.driver net id with
        | Logic.Gate { fanins; _ } -> fanins
        | _ -> [||])
  in
  (* block -> signals it produces (ascending id): the seed set of a moved
     block's timing cones *)
  let n_blocks = Array.length problem.Place.Problem.blocks in
  let produced_by = Array.make n_blocks [] in
  Hashtbl.iter
    (fun s b -> produced_by.(b) <- s :: produced_by.(b))
    block_of;
  Array.iteri
    (fun b ss -> produced_by.(b) <- List.sort_uniq compare ss)
    produced_by;
  (* signal -> routable net index (-1 when the signal has no net) *)
  let net_of_signal = Array.make n (-1) in
  Array.iteri
    (fun ni (pnet : Place.Problem.net) ->
      net_of_signal.(pnet.Place.Problem.signal) <- ni)
    problem.Place.Problem.nets;
  (* block -> nets touching it (driver or sink), for the lazy
     criticality refresh of moved blocks *)
  let nets_of_block = Array.make n_blocks [] in
  Array.iteri
    (fun ni (pnet : Place.Problem.net) ->
      nets_of_block.(pnet.Place.Problem.driver) <-
        ni :: nets_of_block.(pnet.Place.Problem.driver);
      Array.iter
        (fun b -> nets_of_block.(b) <- ni :: nets_of_block.(b))
        pnet.Place.Problem.sinks)
    problem.Place.Problem.nets;
  Array.iteri
    (fun b ns -> nets_of_block.(b) <- List.sort_uniq compare ns)
    nets_of_block;
  {
    problem;
    net;
    n;
    levels;
    level_of;
    consumers;
    consumers_at;
    block_of;
    endpoints;
    fanins_of;
    produced_by;
    net_of_signal;
    nets_of_block;
  }
