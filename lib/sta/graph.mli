(** Levelized timing graph over the packed netlist.

    Nodes are the signals of the mapped network (every BLE pin carries
    exactly one signal, so this is the BLE-pin graph of the packing);
    edges are the combinational arcs (fanin to gate) plus the sequential
    endpoint arcs (latch-data setup, output pad).  The graph is
    provider- and placement-independent: build it once per packing and
    share it across every analysis — pre-route, post-route, and the
    per-temperature refreshes inside the annealer.  All tables are
    read-only after {!build}, so a graph is safe to share across
    domains. *)

type endpoint =
  | Reg_data of { latch : int; data : int }
      (** setup check at a flip-flop data pin: the path ends [t_setup]
          after the connection from [data] into [latch] *)
  | Pad_out of { block : int; signal : int }
      (** pad-bound path: [signal] leaves the array at pad [block] *)

type t = {
  problem : Place.Problem.t;
  net : Netlist.Logic.t;      (** the mapped network the graph indexes *)
  n : int;                    (** signal count (node count) *)
  levels : int array array;   (** nodes per topological level, ascending
                                  id; level 0 holds the sources *)
  level_of : int array;       (** level per signal *)
  consumers : int list array; (** combinational consumers per signal,
                                  ascending id (backward-pass pull) *)
  consumers_at : (int * int, int list) Hashtbl.t;
      (** (signal, consuming block) -> consuming signal ids, the
          grouping criticality extraction uses *)
  block_of : (int, int) Hashtbl.t;
      (** producing block of every cluster-output / input-pad signal *)
  endpoints : endpoint array; (** pads (ascending block), then latches
                                  (declaration order) *)
  fanins_of : int array array;
      (** combinational fanins per signal (empty for sources); the
          backward cone of {!Analysis.update} walks these *)
  produced_by : int list array;
      (** block index -> signals it produces, ascending — the seed set
          of a moved block's fan-in/fan-out cones *)
  net_of_signal : int array;
      (** signal -> index into [problem.nets], or [-1] when the signal
          has no routable net *)
  nets_of_block : int list array;
      (** block index -> nets touching it (driver or sink), ascending *)
}

val build : Place.Problem.t -> t

val depth : t -> int
(** Deepest combinational level. *)

val endpoint_name : t -> endpoint -> string
(** Human-readable endpoint identity (latch signal or pad block name). *)

val endpoint_signal : endpoint -> int
(** The signal whose arrival time the endpoint samples. *)
