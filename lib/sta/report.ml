(* Timing reports: top-K critical paths with named endpoints, rendered
   as text and as JSON (the machine-readable half of the schema in
   docs/OBSERVABILITY.md). *)

open Netlist

type hop = {
  signal : int;
  name : string;
  arrival_s : float;
  incr_s : float; (* delay added by this hop (interconnect + logic) *)
}

type path = {
  rank : int;
  endpoint : Graph.endpoint;
  endpoint_name : string;
  kind : string; (* "reg-setup" or "output-pad" *)
  arrival_s : float;
  slack_s : float;
  hops : hop list; (* startpoint first, endpoint signal last *)
}

(* Walk back from a signal through the worst-arrival fanin chain. *)
let trace (a : Analysis.t) last =
  let g = a.Analysis.graph in
  let p = a.Analysis.provider in
  let rec back id acc =
    let acc = id :: acc in
    match Logic.driver g.Graph.net id with
    | Logic.Input | Logic.Const _ | Logic.Latch _ -> acc
    | Logic.Gate { fanins; _ } ->
        if Array.length fanins = 0 then acc
        else begin
          let best = ref fanins.(0) and best_t = ref neg_infinity in
          Array.iter
            (fun f ->
              let t = a.Analysis.arrival.(f) +. p.Delays.conn f id in
              if t > !best_t then begin
                best := f;
                best_t := t
              end)
            fanins;
          back !best acc
        end
  in
  let chain = back last [] in
  let _, hops =
    List.fold_left
      (fun (prev, acc) id ->
        let t = a.Analysis.arrival.(id) in
        let incr = match prev with None -> t | Some pt -> t -. pt in
        ( Some t,
          { signal = id; name = Logic.name g.Graph.net id; arrival_s = t;
            incr_s = incr }
          :: acc ))
      (None, []) chain
  in
  List.rev hops

let paths ?(k = 5) (a : Analysis.t) =
  let g = a.Analysis.graph in
  let order =
    Array.init (Array.length g.Graph.endpoints) Fun.id |> Array.to_list
    |> List.sort (fun i j ->
           compare
             (a.Analysis.endpoint_arrival.(j), i)
             (a.Analysis.endpoint_arrival.(i), j))
  in
  List.filteri (fun i _ -> i < k) order
  |> List.mapi (fun rank i ->
         let ep = g.Graph.endpoints.(i) in
         {
           rank = rank + 1;
           endpoint = ep;
           endpoint_name = Graph.endpoint_name g ep;
           kind =
             (match ep with
             | Graph.Reg_data _ -> "reg-setup"
             | Graph.Pad_out _ -> "output-pad");
           arrival_s = a.Analysis.endpoint_arrival.(i);
           slack_s = Analysis.endpoint_slack a i;
           hops = trace a (Graph.endpoint_signal ep);
         })

(* ---------- text rendering ---------- *)

let ns t = t *. 1e9

let to_text ?(title = "timing report") (a : Analysis.t) ps =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%s (%s)\n" title a.Analysis.provider.Delays.name;
  pf "  critical path %.3f ns" (ns a.Analysis.dmax);
  (match a.Analysis.constraints.Analysis.period with
  | Some p ->
      pf ", period %.3f ns (budget %.3f ns%s), wns %.3f ns, tns %.3f ns\n"
        (ns p) (ns a.Analysis.budget)
        (if a.Analysis.constraints.Analysis.detff then ", DETFF half-cycle"
         else "")
        (ns a.Analysis.wns) (ns a.Analysis.tns)
  | None -> pf " (unconstrained)\n");
  List.iter
    (fun p ->
      pf "  path %d: %s %s  arrival %.3f ns  slack %.3f ns\n" p.rank p.kind
        p.endpoint_name (ns p.arrival_s) (ns p.slack_s);
      List.iter
        (fun (h : hop) ->
          pf "    %8.3f ns  +%.3f  %s\n" (ns h.arrival_s) (ns h.incr_s) h.name)
        p.hops;
      (* the endpoint arc (interconnect + setup / pad) closes the path *)
      match p.hops with
      | [] -> ()
      | hs ->
          let last = List.nth hs (List.length hs - 1) in
          pf "    %8.3f ns  +%.3f  %s (%s)\n" (ns p.arrival_s)
            (ns (p.arrival_s -. last.arrival_s))
            p.endpoint_name p.kind)
    ps;
  Buffer.contents b

(* ---------- JSON rendering ---------- *)

(* The shared Obs.Emit emitter reproduces the separators and string
   escaping of the original hand-rolled printer byte for byte; float
   formatting (%.9g vs the old %.6e) is absorbed by the golden harness's
   tolerant numeric compare. *)
let json (a : Analysis.t) ps =
  let open Obs.Emit in
  let hop_json (h : hop) =
    Obj
      [
        ("signal", String h.name);
        ("arrival_s", Float h.arrival_s);
        ("incr_s", Float h.incr_s);
      ]
  in
  let path_json p =
    Obj
      [
        ("rank", Int p.rank);
        ("endpoint", String p.endpoint_name);
        ("kind", String p.kind);
        ("arrival_s", Float p.arrival_s);
        ("slack_s", Float p.slack_s);
        ("hops", List (List.map hop_json p.hops));
      ]
  in
  Obj
    [
      ("provider", String a.Analysis.provider.Delays.name);
      ("dmax_s", Float a.Analysis.dmax);
      ("budget_s", Float a.Analysis.budget);
      ( "period_s",
        match a.Analysis.constraints.Analysis.period with
        | Some p -> Float p
        | None -> Null );
      ("detff", Bool a.Analysis.constraints.Analysis.detff);
      ("wns_s", Float a.Analysis.wns);
      ("tns_s", Float a.Analysis.tns);
      ("endpoints", Int (Array.length a.Analysis.graph.Graph.endpoints));
      ("paths", List (List.map path_json ps));
    ]

let to_json a ps = Obs.Emit.to_string (json a ps)
