(** Timing reports: top-K critical-path enumeration with named
    endpoints, rendered as text and as JSON.

    The JSON schema is part of the observability contract — see
    docs/OBSERVABILITY.md ("timing-report JSON"). *)

type hop = {
  signal : int;
  name : string;
  arrival_s : float;
  incr_s : float;  (** delay this hop added (interconnect + logic), s *)
}

type path = {
  rank : int;                (** 1 = most critical *)
  endpoint : Graph.endpoint;
  endpoint_name : string;
  kind : string;             (** ["reg-setup"] or ["output-pad"] *)
  arrival_s : float;
  slack_s : float;           (** against the analysis budget *)
  hops : hop list;           (** startpoint first; the endpoint arc
                                 (setup / pad) is implicit in
                                 [arrival_s] minus the last hop *)
}

val paths : ?k:int -> Analysis.t -> path list
(** The [k] (default 5) worst endpoints by arrival time, each traced
    back through its worst-arrival fanin chain.  Ties break toward the
    lower endpoint index, so the enumeration is deterministic. *)

val to_text : ?title:string -> Analysis.t -> path list -> string
(** Human-readable report: summary line (dmax, budget, WNS/TNS when
    constrained) followed by one block per path. *)

val json : Analysis.t -> path list -> Obs.Emit.t
(** One JSON object: provider, dmax/budget/period/wns/tns, endpoint
    count and the path list (see docs/OBSERVABILITY.md).  Built on the
    shared {!Obs.Emit} emitter so it can embed in larger documents
    (e.g. [Flow.timing_report_json]). *)

val to_json : Analysis.t -> path list -> string
(** [Obs.Emit.to_string] of {!json}. *)
