(** DIVINER: the behavioural VHDL synthesizer of the flow.

    VHDL source -> parse -> elaborate -> optimise -> decompose to library
    gates -> EDIF netlist (the interchange of the paper's Fig. 11). *)

val decompose_to_library : Netlist.Logic.t -> Netlist.Logic.t
(** Express every gate in library cells, Shannon-expanding arbitrary
    truth tables into MUX2/INV trees. *)

val synthesize_ast :
  ?library:Netlist.Vhdl_ast.design list -> Netlist.Vhdl_ast.design ->
  Netlist.Logic.t
(** Elaborate, optimise and decompose one parsed design. *)

val synthesize : string -> Netlist.Logic.t
(** Full synthesis from VHDL text.  The file may contain several
    entities; the last is the top and the others form the instantiation
    library. *)

val to_edif : string -> Netlist.Edif.t
(** Synthesize VHDL text straight to the EDIF interchange form (what
    the standalone [diviner] tool writes). *)

val to_edif_string : string -> string
(** {!to_edif} rendered as EDIF text. *)
