(** DRUID: EDIF normalisation.

    Adapts commercial-tool EDIF output for the downstream academic tools:
    identifier sanitisation, library-cell validation, removal of dangling
    nets and duplicate logic, canonical naming — implemented as a round
    trip through the Logic IR with a cleanup in between. *)

exception Druid_error of string
(** A netlist the flow cannot accept (unknown library cell, unconnected
    instance, conflicting drivers). *)

val normalize : Netlist.Edif.t -> Netlist.Edif.t
(** @raise Druid_error on a netlist the flow cannot accept. *)

val normalize_string : string -> string
(** {!normalize} on EDIF text, returning EDIF text (the standalone
    [druid] tool's pipe mode). *)
