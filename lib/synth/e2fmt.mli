(** E2FMT: EDIF to BLIF netlist translation. *)

val to_logic : Netlist.Edif.t -> Netlist.Logic.t
(** Reconstruct the Logic IR from an EDIF netlist (cell instances back
    to library gates, net joins back to signal identity). *)

val edif_to_blif : string -> string
(** EDIF text in, BLIF text out. *)

val file_to_file : edif_path:string -> blif_path:string -> unit
(** {!edif_to_blif} between files (the standalone [e2fmt] tool). *)
