(** Technology-independent netlist optimisation (the SIS-style cleanup
    DIVINER runs before writing EDIF, and the mapper runs again before
    LUT mapping).

    Passes: constant propagation, duplicate-fanin merging, non-support
    fanin pruning, buffer collapsing, structural CSE and dead-node
    sweeping.  All passes preserve circuit function (property-tested). *)

val rewire : Netlist.Logic.t -> from_:int -> to_:int -> bool
(** Redirect every reference of one signal to another; returns whether
    anything actually moved. *)

val simplify_round : Netlist.Logic.t -> bool
(** One local-simplification sweep (in place); true if anything changed. *)

val collapse_buffers : Netlist.Logic.t -> bool
(** Rewire fanouts of identity gates (single-input buffers) to the
    buffer's own fanin; true if anything changed. *)

val cse : Netlist.Logic.t -> bool
(** Structural common-subexpression elimination: gates with identical
    function and fanins merge into one; true if anything changed. *)

val garbage_collect : Netlist.Logic.t -> Netlist.Logic.t
(** Rebuild without unreferenced signals (primary inputs are kept). *)

val optimize : Netlist.Logic.t -> Netlist.Logic.t
(** Iterate all passes to a fixed point, then garbage-collect.  The input
    network is mutated; the returned network is fresh. *)
