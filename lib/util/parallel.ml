(* Fixed-size Domain work pool for embarrassingly-parallel stages.

   Tasks are claimed from a shared atomic counter (work stealing over
   indices), results land in a per-index slot, and the caller's domain
   participates as the last worker, so [jobs = k] spawns only k-1
   domains.  Determinism contract: result order is input order, and the
   lowest-index task exception is the one re-raised — both identical to
   what a sequential Array.map would produce. *)

let env_jobs () =
  match Sys.getenv_opt "AMDREL_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

(* Nested-parallelism guard: a map running inside a pool worker executes
   sequentially, so composed parallel stages (e.g. a parallel benchmark
   suite whose circuits each run a parallel width search) never multiply
   their domain counts. *)
let worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get worker_key

let resolve_jobs ?jobs () =
  if in_worker () then 1
  else max 1 (match jobs with Some n -> n | None -> default_jobs ())

type 'b outcome =
  | Ok_ of 'b
  | Err of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let n = Array.length xs in
  let jobs = min (resolve_jobs ?jobs ()) n in
  if jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set worker_key true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            (match f xs.(i) with
            | v -> Some (Ok_ v)
            | exception e -> Some (Err (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is the pool's last worker *)
    worker ();
    Domain.DLS.set worker_key false;
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok_ v) -> v
        | Some (Err (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was claimed *))
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

(* Per-domain scratch slots: mutable working storage a parallel stage's
   tasks need (Dijkstra arrays, costing buffers).  Each domain lazily
   builds its own value, so tasks running on different domains never
   alias, while tasks that land on the same domain (including the caller,
   across successive [map] calls) reuse one allocation. *)
type 'a scratch_slot = 'a option ref Domain.DLS.key

let scratch_slot () : 'a scratch_slot = Domain.DLS.new_key (fun () -> ref None)

let scratch slot ~valid ~create =
  let cell = Domain.DLS.get slot in
  match !cell with
  | Some v when valid v -> v
  | _ ->
      let v = create () in
      cell := Some v;
      v

let map_reduce ?jobs ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?jobs f xs)
