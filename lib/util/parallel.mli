(** Fixed-size Domain work pool for embarrassingly-parallel stages.

    The flow's coarse-grained hot paths (speculative channel-width
    probes, independent circuits of a benchmark suite, multi-start
    annealing seeds) are shared-nothing: each task builds its own
    problem state and only reads immutable inputs.  This module runs
    such task arrays across OCaml 5 domains while keeping every
    observable output identical to the sequential path:

    - results come back in input order, regardless of completion order;
    - an exception raised by a task is re-raised in the caller, and when
      several tasks fail the one with the {e lowest index} wins, exactly
      as a sequential loop would have surfaced it;
    - nested calls degrade to sequential execution (a worker domain
      never spawns further domains), so composed parallel stages cannot
      oversubscribe the machine.

    The pool size comes from, in priority order: the [?jobs] argument,
    the [AMDREL_JOBS] environment variable, then
    [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** Pool size used when [?jobs] is omitted: [AMDREL_JOBS] when set to a
    positive integer, otherwise [Domain.recommended_domain_count ()]. *)

val resolve_jobs : ?jobs:int -> unit -> int
(** The worker count a [map] with the same [?jobs] would use before
    clamping to the task count: [max 1 jobs], [default_jobs ()] when
    omitted, and [1] inside a worker domain (nested parallelism runs
    sequentially).  Exposed so callers can report the effective pool
    size (e.g. the flow's [parallel.jobs] counter). *)

val in_worker : unit -> bool
(** True while executing inside a pool worker (nested [map]s then run
    sequentially). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?jobs f xs] is [Array.map f xs] computed on up to [jobs]
    domains.  Results are in input order; the first (lowest-index) task
    exception is re-raised with its backtrace.  [jobs <= 1], singleton
    and empty inputs, and nested calls run sequentially in the calling
    domain. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

type 'a scratch_slot
(** A per-domain cache of mutable working storage.  Tasks of a parallel
    stage often need scratch buffers (Dijkstra arrays, costing vectors);
    a slot gives every domain its own lazily-built copy, so concurrent
    tasks never alias each other's buffers while tasks executing on the
    same domain — including the calling domain across successive {!map}
    calls — reuse one allocation.  Scratch contents must never influence
    results (validate-by-stamp or overwrite-before-read disciplines), so
    reuse is invisible to any output. *)

val scratch_slot : unit -> 'a scratch_slot
(** A fresh slot.  Create once at module level, not per call: each
    domain's cache lives as long as the slot's key. *)

val scratch : 'a scratch_slot -> valid:('a -> bool) -> create:(unit -> 'a) -> 'a
(** [scratch slot ~valid ~create] returns this domain's cached value when
    [valid] accepts it (e.g. the buffer is large enough), otherwise
    [create]s, caches and returns a replacement. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c ->
  'a array -> 'c
(** [map_reduce ?jobs ~map ~reduce ~init xs] maps in parallel, then
    folds the results {e left-to-right in input order} — the fold is
    sequential and deterministic, so [reduce] need not be associative
    or commutative. *)
