(* Binary-heap priority queue with float priorities (min-heap).

   Used by the PathFinder router (Dijkstra/A* wavefront) and FlowMap.
   Stale entries are handled by the caller (decrease-key is emulated by
   re-insertion, the standard trick for Dijkstra).

   Elements live in an ['a option] array so that [pop] and [clear] can
   drop their references: the router reuses one queue across every net
   of a routing, and retaining popped payloads would keep them reachable
   for the whole run. *)

type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create () = { prio = [||]; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let clear t =
  Array.fill t.data 0 t.size None;
  t.size <- 0

let grow t =
  let cap = Array.length t.prio in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let np = Array.make ncap 0.0 and nd = Array.make ncap None in
  Array.blit t.prio 0 np 0 t.size;
  Array.blit t.data 0 nd 0 t.size;
  t.prio <- np;
  t.data <- nd

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      let p = t.prio.(i) and d = t.data.(i) in
      t.prio.(i) <- t.prio.(parent);
      t.data.(i) <- t.data.(parent);
      t.prio.(parent) <- p;
      t.data.(parent) <- d;
      sift_up t parent
    end
  end

let push t prio x =
  if t.size >= Array.length t.prio then grow t;
  t.prio.(t.size) <- prio;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.size && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let p = t.prio.(i) and d = t.data.(i) in
    t.prio.(i) <- t.prio.(!smallest);
    t.data.(i) <- t.data.(!smallest);
    t.prio.(!smallest) <- p;
    t.data.(!smallest) <- d;
    sift_down t !smallest
  end

(* Remove and return the minimum-priority element with its priority. *)
let pop t =
  if t.size = 0 then raise Not_found;
  let p = t.prio.(0) in
  let x = match t.data.(0) with Some x -> x | None -> assert false in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.prio.(0) <- t.prio.(t.size);
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    sift_down t 0
  end
  else t.data.(0) <- None;
  (p, x)

let peek t =
  if t.size = 0 then raise Not_found;
  match t.data.(0) with Some x -> (t.prio.(0), x) | None -> assert false
