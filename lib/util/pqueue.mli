(** Binary-heap priority queue with float priorities (min-heap).

    Used by the PathFinder router's Dijkstra/A* wavefront and by FlowMap.
    Decrease-key is emulated by re-insertion (the standard Dijkstra trick);
    stale entries are the caller's concern.

    [pop] and [clear] drop their references to removed elements, so a
    queue may be reused across many searches (the router keeps one alive
    for a whole routing) without retaining popped payloads. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Remove every element, dropping the references they held
    (O(length); storage is retained). *)

val push : 'a t -> float -> 'a -> unit
(** [push q priority x] inserts [x]. *)

val pop : 'a t -> float * 'a
(** Remove and return the minimum-priority entry.
    @raise Not_found when empty. *)

val peek : 'a t -> float * 'a
(** The minimum-priority entry without removing it.
    @raise Not_found when empty. *)
